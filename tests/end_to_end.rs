//! Cross-crate integration tests: the whole stack (workload → simulator →
//! daemon → migration) exercised end-to-end at reduced scale.

use m5::baselines::anb::{Anb, AnbConfig};
use m5::baselines::damon::{Damon, DamonConfig};
use m5::core::manager::M5Manager;
use m5::core::policy;
use m5::profilers::pac::{Pac, PacConfig};
use m5::sim::memory::NodeId;
use m5::sim::prelude::*;
use m5::sim::system::{run, MigrationDaemon, NoMigration};
use m5::workloads::registry::Benchmark;

const ACCESSES: u64 = 600_000;

fn system_for(bench: Benchmark) -> (System, cxl_sim::system::Region) {
    let spec = bench.spec();
    let config = SystemConfig::scaled_default()
        .with_cxl_frames(spec.footprint_pages + 1024)
        .with_ddr_frames(spec.footprint_pages / 2);
    let mut sys = System::new(config);
    let region = sys
        .alloc_region(spec.footprint_pages, Placement::AllOnCxl)
        .expect("CXL sized to fit");
    (sys, region)
}

fn run_daemon(bench: Benchmark, daemon: &mut dyn MigrationDaemon, seed: u64) -> RunReport {
    let (mut sys, region) = system_for(bench);
    let mut wl = bench.spec().build(region.base, ACCESSES + 64, seed);
    run(&mut sys, &mut wl, daemon, ACCESSES)
}

#[test]
fn migration_beats_no_migration_on_skewed_workloads() {
    // roms is the most skew-rewarding benchmark in the paper (Figure 10).
    // Long enough that migration costs amortize (§7.2: one page move pays
    // off after ~318 saved CXL accesses).
    const LONG: u64 = 2_500_000;
    let spec = Benchmark::Roms.spec();
    let (mut sys_a, region) = system_for(Benchmark::Roms);
    let trace = spec.build(region.base, LONG + 64, 1);
    let base = run(&mut sys_a, &mut trace.fresh(), &mut NoMigration, LONG);
    let (mut sys_b, _) = system_for(Benchmark::Roms);
    let m5 = run(
        &mut sys_b,
        &mut trace.fresh(),
        &mut M5Manager::new(policy::simple_hpt_policy()),
        LONG,
    );
    assert!(
        m5.total_time < base.total_time,
        "M5 {} should beat no-migration {}",
        m5.total_time,
        base.total_time
    );
    assert!(m5.migrations.promotions > 0);
    // Hot traffic moved to the fast tier.
    assert!(m5.reads_on(NodeId::Ddr) > 0);
}

#[test]
fn every_daemon_completes_on_every_benchmark_class() {
    // One representative per workload family to keep CI quick.
    for bench in [
        Benchmark::Redis,
        Benchmark::Pr,
        Benchmark::Mcf,
        Benchmark::Liblinear,
    ] {
        for which in 0..3 {
            let report = match which {
                0 => run_daemon(bench, &mut Anb::new(AnbConfig::default()), 2),
                1 => run_daemon(bench, &mut Damon::new(DamonConfig::default()), 2),
                _ => run_daemon(bench, &mut M5Manager::new(policy::simple_hpt_policy()), 2),
            };
            assert_eq!(report.accesses, ACCESSES, "{bench}: short run");
            assert!(report.total_time > Nanos::ZERO);
        }
    }
}

#[test]
fn pac_counts_exactly_the_cxl_reads() {
    let (mut sys, region) = system_for(Benchmark::Mcf);
    let pac_handle = sys.attach_device(Pac::new(PacConfig::covering_cxl(&sys)));
    let mut wl = Benchmark::Mcf.spec().build(region.base, ACCESSES + 64, 3);
    let report = run(&mut sys, &mut wl, &mut NoMigration, ACCESSES);
    let pac: &Pac = sys.device(pac_handle).unwrap();
    // Without migration every LLC miss fill goes to CXL; PAC snoops both
    // the fills (reads) and the dirty writebacks, like the real hardware
    // counting every access between the CXL IP and the MCs.
    assert_eq!(
        pac.total_counted(),
        report.reads_on(NodeId::Cxl) + sys.perfmon().total_writebacks(NodeId::Cxl)
    );
    assert_eq!(report.reads_on(NodeId::Ddr), 0);
}

#[test]
fn m5_identification_is_cheaper_than_cpu_driven() {
    let anb = run_daemon(Benchmark::Mcf, &mut Anb::new(AnbConfig::record_only()), 4);
    let damon = run_daemon(
        Benchmark::Mcf,
        &mut Damon::new(DamonConfig::record_only()),
        4,
    );
    let mut m5_daemon = M5Manager::new(m5::core::manager::M5Config {
        record_only: true,
        ..policy::simple_hpt_policy()
    });
    let m5 = run_daemon(Benchmark::Mcf, &mut m5_daemon, 4);
    let m5_cost = m5.kernel.identification_total();
    assert!(
        m5_cost < anb.kernel.identification_total(),
        "M5 {} vs ANB {}",
        m5_cost,
        anb.kernel.identification_total()
    );
    assert!(
        m5_cost < damon.kernel.identification_total(),
        "M5 {} vs DAMON {}",
        m5_cost,
        damon.kernel.identification_total()
    );
}

#[test]
fn demotion_keeps_ddr_within_capacity() {
    let (mut sys, region) = system_for(Benchmark::Roms);
    let cap = sys.config().ddr.capacity_frames;
    let mut wl = Benchmark::Roms.spec().build(region.base, ACCESSES + 64, 5);
    let mut m5 = M5Manager::new(policy::simple_hpt_policy());
    let report = run(&mut sys, &mut wl, &mut m5, ACCESSES);
    assert!(sys.nr_pages(NodeId::Ddr) <= cap);
    // Once DDR filled, promotions must be matched by demotions.
    if report.migrations.promotions > cap {
        assert!(report.migrations.demotions > 0);
    }
}

#[test]
fn identical_traces_replay_identically_across_daemons() {
    let spec = Benchmark::Redis.spec();
    let (mut sys_a, region_a) = system_for(Benchmark::Redis);
    let (mut sys_b, region_b) = system_for(Benchmark::Redis);
    assert_eq!(region_a.base, region_b.base);
    let wl = spec.build(region_a.base, 50_000, 6);
    let a = run(&mut sys_a, &mut wl.fresh(), &mut NoMigration, u64::MAX);
    let b = run(&mut sys_b, &mut wl.fresh(), &mut NoMigration, u64::MAX);
    assert_eq!(a.accesses, b.accesses);
    assert_eq!(a.total_time, b.total_time);
    assert_eq!(a.llc_misses, b.llc_misses);
}
