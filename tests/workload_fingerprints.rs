//! DRAM-level workload fingerprints.
//!
//! The figure harnesses depend on each benchmark exhibiting its paper
//! role *after cache filtering* (what PAC and the trackers actually see),
//! not just at trace level. These tests pin those properties down.

use m5::profilers::pac::{Pac, PacConfig};
use m5::profilers::wac::{Wac, WacConfig};
use m5::sim::prelude::*;
use m5::sim::system::NoMigration;
use m5::workloads::registry::Benchmark;

const ACCESSES: u64 = 3_000_000;

fn pac_counts(bench: Benchmark) -> Vec<u64> {
    let spec = bench.spec();
    let config = SystemConfig::scaled_default()
        .with_cxl_frames(spec.footprint_pages + 1024)
        .with_ddr_frames(16);
    let mut sys = System::new(config);
    let region = sys
        .alloc_region(spec.footprint_pages, Placement::AllOnCxl)
        .unwrap();
    let pac = sys.attach_device(Pac::new(PacConfig::covering_cxl(&sys)));
    let mut wl = spec.build(region.base, ACCESSES, 31);
    let _ = m5::sim::system::run(&mut sys, &mut wl, &mut NoMigration, u64::MAX);
    let pac: &Pac = sys.device(pac).unwrap();
    let mut counts: Vec<u64> = pac.iter_counts().map(|(_, c)| c).collect();
    counts.sort_unstable();
    counts
}

fn pct(counts: &[u64], p: f64) -> f64 {
    counts[((counts.len() - 1) as f64 * p) as usize] as f64
}

#[test]
fn roms_is_the_most_skewed_spec_benchmark_at_dram_level() {
    let counts = pac_counts(Benchmark::Roms);
    let p50 = pct(&counts, 0.5).max(1.0);
    assert!(
        pct(&counts, 0.90) / p50 >= 1.5,
        "p90 {}",
        pct(&counts, 0.90) / p50
    );
    assert!(
        pct(&counts, 0.99) / p50 >= 5.0,
        "p99 {}",
        pct(&counts, 0.99) / p50
    );
    // ...and clearly more skewed than the uniform stencils. (A partial
    // final sweep bounds the stencil ratio at 2: consecutive sweep
    // counts.)
    let cactu = pac_counts(Benchmark::CactuBssn);
    let cactu_p99_ratio = pct(&cactu, 0.99) / pct(&cactu, 0.5).max(1.0);
    assert!(cactu_p99_ratio <= 2.05, "cactu p99/p50 {cactu_p99_ratio}");
}

#[test]
fn stencils_are_uniform_at_dram_level() {
    for bench in [Benchmark::CactuBssn, Benchmark::Fotonik3d] {
        let counts = pac_counts(bench);
        // Bounded by 2 even when the run ends mid-sweep (counts are
        // consecutive integers across the sweep boundary).
        let ratio = pct(&counts, 0.95) / pct(&counts, 0.5).max(1.0);
        assert!(ratio <= 2.05, "{bench}: p95/p50 = {ratio}");
    }
}

#[test]
fn liblinear_weight_skew_survives_the_llc() {
    let counts = pac_counts(Benchmark::Liblinear);
    let ratio = pct(&counts, 0.99) / pct(&counts, 0.5).max(1.0);
    assert!(ratio >= 3.0, "lib. p99/p50 = {ratio}");
}

#[test]
fn redis_index_pages_are_the_dram_hot_set() {
    // The hash index (highest VPNs) must be the hottest pages PAC sees —
    // the dense hot structure M5 promotes first.
    let spec = Benchmark::Redis.spec();
    let config = SystemConfig::scaled_default()
        .with_cxl_frames(spec.footprint_pages + 1024)
        .with_ddr_frames(16);
    let mut sys = System::new(config);
    let region = sys
        .alloc_region(spec.footprint_pages, Placement::AllOnCxl)
        .unwrap();
    let pac = sys.attach_device(Pac::new(PacConfig::covering_cxl(&sys)));
    let mut wl = spec.build(region.base, ACCESSES, 31);
    let _ = m5::sim::system::run(&mut sys, &mut wl, &mut NoMigration, u64::MAX);
    let pac: &Pac = sys.device(pac).unwrap();
    let index_vpn_start = spec.footprint_pages - 112; // 112 index pages
    let top: Vec<_> = pac.hottest(50);
    let index_hits = top
        .iter()
        .filter(|(pfn, _)| {
            sys.page_table()
                .vpn_of(*pfn)
                .is_some_and(|v| v.0 >= index_vpn_start)
        })
        .count();
    assert!(
        index_hits >= 40,
        "only {index_hits}/50 of the hottest pages are index pages"
    );
}

#[test]
fn kv_pages_stay_sparse_under_wac() {
    let spec = Benchmark::Redis.spec();
    let config = SystemConfig::scaled_default()
        .with_cxl_frames(spec.footprint_pages + 1024)
        .with_ddr_frames(16);
    let mut sys = System::new(config);
    let region = sys
        .alloc_region(spec.footprint_pages, Placement::AllOnCxl)
        .unwrap();
    let wac = sys.attach_device(Wac::new(WacConfig::covering_cxl(&sys)));
    let mut wl = spec.build(region.base, ACCESSES, 31);
    let _ = m5::sim::system::run(&mut sys, &mut wl, &mut NoMigration, u64::MAX);
    let wac: &Wac = sys.device(wac).unwrap();
    let uniq = wac.unique_words_per_page();
    let sparse = uniq.values().filter(|&&w| w <= 16).count();
    let frac = sparse as f64 / uniq.len().max(1) as f64;
    assert!(frac > 0.75, "redis sparse fraction {frac:.2}");
}

#[test]
fn graph_kernels_touch_their_whole_layout_classes() {
    // PR must touch offsets, targets, and both rank arrays; its DRAM
    // traffic must dwarf the page count (real reuse).
    let counts = pac_counts(Benchmark::Pr);
    assert!(
        counts.len() > 1_500,
        "pr touched only {} pages",
        counts.len()
    );
    let total: u64 = counts.iter().sum();
    assert!(total as usize > counts.len() * 50, "pr pages barely reused");
}
