//! Cross-crate property tests: invariants that must hold under arbitrary
//! interleavings of accesses, migrations, and daemon actions.

use m5::profilers::pac::{Pac, PacConfig};
use m5::profilers::wac::{Wac, WacConfig};
use m5::sim::addr::{Pfn, VirtAddr, Vpn, PAGE_SIZE};
use m5::sim::controller::CxlDevice;
use m5::sim::faults::{DeviceFault, FaultPlan};
use m5::sim::memory::{NodeId, CXL_BASE_PFN};
use m5::sim::prelude::*;
use m5::trackers::sketch::CmSketch;
use m5::trackers::spacesaving::SpaceSaving;
use m5::trackers::topk::{CmSketchTopK, TopKAlgorithm};
use proptest::prelude::*;
use std::collections::HashMap;

const PAGES: u64 = 32;

/// An arbitrary step in a system torture run.
#[derive(Clone, Debug)]
enum Step {
    Access { page: u64, word: u8, write: bool },
    Promote { page: u64 },
    Demote { page: u64 },
    Age,
    ClearPresent { page: u64 },
    Pin { page: u64, on: bool },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        6 => (0..PAGES, 0u8..64, any::<bool>())
            .prop_map(|(page, word, write)| Step::Access { page, word, write }),
        2 => (0..PAGES).prop_map(|page| Step::Promote { page }),
        1 => (0..PAGES).prop_map(|page| Step::Demote { page }),
        1 => Just(Step::Age),
        1 => (0..PAGES).prop_map(|page| Step::ClearPresent { page }),
        1 => (0..PAGES, any::<bool>()).prop_map(|(page, on)| Step::Pin { page, on }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No frames are ever lost or duplicated, every mapped page stays
    /// mapped, and allocation counters agree with the page table, no
    /// matter what sequence of operations runs.
    #[test]
    fn system_conserves_frames_under_torture(steps in prop::collection::vec(step_strategy(), 1..200)) {
        let mut sys = System::new(SystemConfig::small());
        let region = sys.alloc_region(PAGES, Placement::AllOnCxl).unwrap();
        for step in steps {
            match step {
                Step::Access { page, word, write } => {
                    let addr = region.base.offset(page * PAGE_SIZE as u64 + word as u64 * 64);
                    sys.access(addr, write);
                }
                Step::Promote { page } => {
                    let _ = sys.migrate_page(Vpn(page), NodeId::Ddr);
                }
                Step::Demote { page } => {
                    let _ = sys.migrate_page(Vpn(page), NodeId::Cxl);
                }
                Step::Age => {
                    sys.mglru_age();
                }
                Step::ClearPresent { page } => {
                    sys.page_table_mut().clear_present(Vpn(page));
                    sys.tlb_mut().invalidate(Vpn(page));
                }
                Step::Pin { page, on } => {
                    sys.page_table_mut().set_pinned(Vpn(page), on);
                }
            }
            // Invariants after every step:
            prop_assert_eq!(sys.page_table().mapped_pages(), PAGES);
            prop_assert_eq!(
                sys.nr_pages(NodeId::Ddr) + sys.nr_pages(NodeId::Cxl),
                PAGES
            );
            // Every PTE's frame resolves back through the reverse map.
            let mut seen_pfns = std::collections::HashSet::new();
            for (vpn, pte) in sys.page_table().iter_mapped() {
                prop_assert!(seen_pfns.insert(pte.pfn), "duplicate frame {:?}", pte.pfn);
                prop_assert_eq!(sys.page_table().vpn_of(pte.pfn), Some(vpn));
            }
        }
    }

    /// PAC's total equals the number of CXL DRAM reads, and per-page
    /// counts are exact, under random access patterns and counter widths.
    #[test]
    fn pac_is_exact_for_any_counter_width(
        accesses in prop::collection::vec((0..8u64, 0u8..64), 1..500),
        bits in 2u32..17,
    ) {
        let mut pac = Pac::new(PacConfig {
            counter_bits: bits,
            base: Pfn(CXL_BASE_PFN),
            pages: 8,
        });
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &(page, word) in &accesses {
            let line = Pfn(CXL_BASE_PFN + page)
                .word(m5::sim::addr::WordIndex(word))
                .cache_line();
            use m5::sim::controller::CxlDevice;
            pac.on_access(line, false, Nanos::ZERO);
            *truth.entry(page).or_default() += 1;
        }
        prop_assert_eq!(pac.total_counted(), accesses.len() as u64);
        for (&page, &count) in &truth {
            prop_assert_eq!(pac.count(Pfn(CXL_BASE_PFN + page)), count);
        }
    }

    /// CM-Sketch estimates never fall below true counts (the hardware's
    /// comparator-tree minimum can only overestimate).
    #[test]
    fn cm_sketch_never_underestimates(keys in prop::collection::vec(0..64u64, 1..2000)) {
        let mut sketch = CmSketch::new(4, 16, 7);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &k in &keys {
            sketch.update(k);
            *truth.entry(k).or_default() += 1;
        }
        for (&k, &c) in &truth {
            prop_assert!(sketch.estimate(k) >= c);
        }
    }

    /// Space-Saving's classic error bound: every monitored count
    /// overestimates by at most total/N, and the recorded error bounds the
    /// actual overestimate.
    #[test]
    fn space_saving_error_bound(keys in prop::collection::vec(0..100u64, 1..2000)) {
        let n = 8;
        let mut ss = SpaceSaving::new(n);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &k in &keys {
            ss.update(k);
            *truth.entry(k).or_default() += 1;
        }
        for e in ss.entries() {
            let t = truth.get(&e.addr).copied().unwrap_or(0);
            prop_assert!(e.count >= t);
            prop_assert!(e.count - t <= e.error);
            prop_assert!(e.error <= ss.total() / n as u64);
        }
    }

    /// The CM-Sketch top-K CAM reports a subset of tracked addresses in
    /// non-increasing order, and never more than K of them.
    #[test]
    fn topk_output_is_sorted_and_bounded(keys in prop::collection::vec(0..32u64, 1..1000), k in 1usize..8) {
        let mut t = CmSketchTopK::with_total_entries(4, 256, k, 3);
        for &key in &keys {
            t.record(key);
        }
        let top = t.top_k();
        prop_assert!(top.len() <= k);
        for w in top.windows(2) {
            prop_assert!(w[0].1 >= w[1].1, "CAM out of order: {:?}", top);
        }
        for (addr, _) in &top {
            prop_assert!(keys.contains(addr), "CAM invented address {addr}");
        }
    }

    /// Replay determinism: a recorded workload trace replays to identical
    /// simulator state (time, misses, reads) on identical machines.
    #[test]
    fn replay_is_deterministic(seed in any::<u64>()) {
        use m5::workloads::kv::{generate, KvConfig};
        let mut c = KvConfig::redis(600);
        c.seed = seed;
        let wl = generate(&c, VirtAddr(0), 5_000);
        let run_once = || {
            let mut sys = System::new(SystemConfig::small().with_cxl_frames(2048));
            let _ = sys.alloc_region(c.footprint_pages(), Placement::AllOnCxl).unwrap();
            let report = m5::sim::system::run(
                &mut sys,
                &mut wl.fresh(),
                &mut m5::sim::system::NoMigration,
                u64::MAX,
            );
            (report.total_time, report.llc_misses, report.reads_on(NodeId::Cxl))
        };
        prop_assert_eq!(run_once(), run_once());
    }

    /// Retrying a promotion batch — as the Promoter does after transient
    /// failures — is idempotent: pages promoted once are rejected as
    /// already-resident on re-submission, never promoted twice.
    #[test]
    fn batch_retry_is_idempotent(pages in prop::collection::vec(0..PAGES, 1..40)) {
        // DDR is large enough that no demotion churn can move pages back.
        let mut sys = System::new(SystemConfig::small().with_ddr_frames(64));
        let _ = sys.alloc_region(PAGES, Placement::AllOnCxl).unwrap();
        let vpns: Vec<Vpn> = pages.iter().map(|&p| Vpn(p)).collect();
        let distinct: std::collections::HashSet<Vpn> = vpns.iter().copied().collect();

        let first = sys.promote_with_demotion(&vpns, 8);
        prop_assert_eq!(first.migrated.len(), distinct.len());
        let promotions_after_first = sys.migration_stats().promotions;

        // Re-submit the identical batch (the degenerate retry).
        let second = sys.promote_with_demotion(&vpns, 8);
        prop_assert!(second.migrated.is_empty(), "retry double-promoted");
        prop_assert_eq!(sys.migration_stats().promotions, promotions_after_first);
        prop_assert_eq!(sys.nr_pages(NodeId::Ddr), distinct.len() as u64);
    }

    /// Injected SRAM corruption (saturation, bit flips) may garble counts,
    /// but PAC and WAC hot-set candidates always stay inside the monitored
    /// address range — corruption never invents addresses.
    #[test]
    fn saturated_profilers_never_invent_candidates(
        accesses in prop::collection::vec((0..8u64, 0u8..64), 1..300),
        slot in any::<u64>(),
        bit in 0u32..16,
    ) {
        let mut pac = Pac::new(PacConfig {
            counter_bits: 4,
            base: Pfn(CXL_BASE_PFN),
            pages: 8,
        });
        let mut wac = Wac::new(WacConfig {
            counter_bits: 4,
            window_base: Pfn(CXL_BASE_PFN).base().cache_line(),
            window_words: 8 * 64,
        });
        let half = accesses.len() / 2;
        for (i, &(page, word)) in accesses.iter().enumerate() {
            if i == half {
                pac.on_fault(DeviceFault::SramSaturate);
                pac.on_fault(DeviceFault::SramBitFlip { slot, bit });
                wac.on_fault(DeviceFault::SramSaturate);
                wac.on_fault(DeviceFault::SramBitFlip { slot, bit });
            }
            let line = Pfn(CXL_BASE_PFN + page)
                .word(m5::sim::addr::WordIndex(word))
                .cache_line();
            pac.on_access(line, false, Nanos::ZERO);
            wac.on_access(line, false, Nanos::ZERO);
        }
        for (pfn, _) in pac.hottest(1000) {
            let rel = pfn.0.wrapping_sub(CXL_BASE_PFN);
            prop_assert!(rel < 8, "PAC invented {pfn:?}");
        }
        let base = Pfn(CXL_BASE_PFN).base().cache_line().0;
        for (line, _) in wac.hottest(10_000) {
            let rel = line.0.wrapping_sub(base);
            prop_assert!(rel < 8 * 64, "WAC invented {line:?}");
        }
    }
}

proptest! {
    // Whole-system chaos runs are heavier; fewer cases keep the suite fast.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Fault-injection determinism: identical workload and fault seeds
    /// reproduce the entire run report, byte for byte.
    #[test]
    fn fault_injection_is_deterministic(wseed in any::<u64>(), fseed in any::<u64>()) {
        use m5::workloads::kv::{generate, KvConfig};
        let mut c = KvConfig::redis(600);
        c.seed = wseed;
        let wl = generate(&c, VirtAddr(0), 5_000);
        let plan = FaultPlan::chaos(fseed, Nanos(1_000_000));
        let run_once = || {
            let mut sys =
                System::with_fault_plan(SystemConfig::small().with_cxl_frames(2048), &plan);
            let _ = sys.alloc_region(c.footprint_pages(), Placement::AllOnCxl).unwrap();
            m5::sim::system::run(
                &mut sys,
                &mut wl.fresh(),
                &mut m5::sim::system::NoMigration,
                u64::MAX,
            )
        };
        prop_assert_eq!(run_once(), run_once());
    }
}
