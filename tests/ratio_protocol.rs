//! Integration test of the §4.1 access-count-ratio protocol: on a skewed
//! workload, M5's CXL-driven tracker identifies hotter pages than the
//! CPU-driven baselines — the paper's headline qualitative claim
//! (Figures 3 and 8) at test scale.

use m5::baselines::anb::{Anb, AnbConfig};
use m5::baselines::damon::{Damon, DamonConfig};
use m5::core::manager::{M5Config, M5Manager};
use m5::core::policy;
use m5::profilers::pac::{Pac, PacConfig};
use m5::sim::addr::Pfn;
use m5::sim::prelude::*;
use m5::sim::system::{run, MigrationDaemon};
use m5::workloads::registry::Benchmark;

const ACCESSES: u64 = 800_000;
const K: usize = 256;

/// Runs `daemon` in record-only fashion under PAC and scores its
/// identified pages against PAC's top-K (§4.1 S1–S5).
fn ratio_under<D: MigrationDaemon>(
    bench: Benchmark,
    daemon: &mut D,
    log_pfns: impl Fn(&D) -> Vec<Pfn>,
) -> f64 {
    let spec = bench.spec();
    let config = SystemConfig::scaled_default()
        .with_cxl_frames(spec.footprint_pages + 1024)
        .with_ddr_frames(spec.footprint_pages / 2);
    let mut sys = System::new(config);
    let region = sys
        .alloc_region(spec.footprint_pages, Placement::AllOnCxl)
        .unwrap();
    let pac_handle = sys.attach_device(Pac::new(PacConfig::covering_cxl(&sys)));
    let mut wl = spec.build(region.base, ACCESSES + 64, 12);
    let _ = run(&mut sys, &mut wl, daemon, ACCESSES);
    let pac: &Pac = sys.device(pac_handle).unwrap();
    let identified: Vec<_> = log_pfns(daemon).into_iter().take(K).collect();
    let k_eff = identified.len().max(1);
    pac.sum_counts_of(identified) as f64 / pac.top_k_sum(k_eff).max(1) as f64
}

#[test]
fn m5_identifies_hotter_pages_than_cpu_driven_solutions() {
    let bench = Benchmark::Roms;

    let mut anb = Anb::new(AnbConfig::record_only());
    let anb_ratio = ratio_under(bench, &mut anb, |d| d.hot_log().pfns().collect());

    let mut damon = Damon::new(DamonConfig::record_only());
    let damon_ratio = ratio_under(bench, &mut damon, |d| d.hot_log().pfns().collect());

    let mut m5 = M5Manager::new(M5Config {
        record_only: true,
        ..policy::simple_hpt_policy()
    });
    let m5_ratio = ratio_under(bench, &mut m5, |d| d.hot_log().pfns().collect());

    assert!(
        m5_ratio > anb_ratio,
        "M5 ratio {m5_ratio:.3} should beat ANB {anb_ratio:.3}"
    );
    assert!(
        m5_ratio > damon_ratio * 0.95,
        "M5 ratio {m5_ratio:.3} should be at least DAMON-class {damon_ratio:.3}"
    );
    assert!(m5_ratio > 0.3, "M5 ratio {m5_ratio:.3} unexpectedly low");
}

#[test]
fn space_saving_50_trails_cm_sketch_32k() {
    let bench = Benchmark::Roms;
    let mut cm = M5Manager::new(M5Config {
        record_only: true,
        ..policy::simple_hpt_policy()
    });
    let cm_ratio = ratio_under(bench, &mut cm, |d| d.hot_log().pfns().collect());

    let mut ss = M5Manager::new(M5Config {
        record_only: true,
        ..policy::space_saving_50_policy()
    });
    let ss_ratio = ratio_under(bench, &mut ss, |d| d.hot_log().pfns().collect());

    // The paper's Figure 8: CM-Sketch(32K) ≥ Space-Saving(50), modestly.
    assert!(
        cm_ratio >= ss_ratio * 0.9,
        "CM(32K) {cm_ratio:.3} vs SS(50) {ss_ratio:.3}"
    );
}
