//! Property tests for the log2 histogram and the counter registry: the
//! invariants every instrumented hot path leans on.

use m5_telemetry::{log2_bucket, log2_bucket_lower_bound, Log2Histogram, Telemetry, LOG2_BUCKETS};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Histogram totals equal event counts, the sum is exact, the bucket
    /// counts partition the total, and quantiles stay within range.
    #[test]
    fn totals_equal_event_counts(values in prop::collection::vec(any::<u64>(), 0..500)) {
        let mut h = Log2Histogram::new();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        let exact: u128 = values.iter().map(|&v| v as u128).sum();
        prop_assert_eq!(h.sum(), exact);
        prop_assert_eq!(h.max(), values.iter().copied().max().unwrap_or(0));
        let bucket_total: u64 = h.buckets().iter().sum();
        prop_assert_eq!(bucket_total, h.count(), "buckets partition the count");
        if let Some(p50) = h.quantile(0.5) {
            // A quantile is a bucket lower bound, so it can never exceed
            // the true max.
            prop_assert!(p50 <= h.max());
        } else {
            prop_assert!(values.is_empty());
        }
    }

    /// Every value lands in the bucket whose range contains it.
    #[test]
    fn bucket_ranges_contain_their_values(v in any::<u64>()) {
        let b = log2_bucket(v);
        prop_assert!(b < LOG2_BUCKETS);
        prop_assert!(log2_bucket_lower_bound(b) <= v);
        if b + 1 < LOG2_BUCKETS {
            prop_assert!(v < log2_bucket_lower_bound(b + 1));
        }
    }

    /// Counters through the bus are monotone: adding deltas never makes a
    /// counter shrink, and the final value is the exact sum.
    #[test]
    fn bus_counters_are_monotone_and_exact(deltas in prop::collection::vec(0u64..1 << 32, 1..100)) {
        let mut t = Telemetry::enabled();
        let mut prev = 0;
        for &d in &deltas {
            t.counter_add("prop.counter", "x", d);
            let now = t.snapshot().counter("prop.counter", "x").unwrap();
            prop_assert!(now >= prev, "counter went backwards");
            prop_assert_eq!(now - prev, d);
            prev = now;
        }
        prop_assert_eq!(prev, deltas.iter().sum::<u64>());
    }
}
