//! Metric primitives: counters, gauges, and fixed-geometry log2 histograms.
//!
//! Every metric is addressed by a [`MetricKey`]: a `&'static str` name plus
//! a `&'static str` label (the empty label means "no label"). Static keys
//! keep the hot recording path allocation-free; anything dynamic (a
//! degradation message, a fault detail) belongs in an event, not a metric.

use std::collections::HashMap;
use std::fmt;

/// A metric's identity: `name` plus an optional dimension `label`
/// (e.g. `("sim.dram.reads", "cxl")`). The empty label means unlabelled.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name, dot-separated by convention (`sim.llc`).
    pub name: &'static str,
    /// Dimension label (`"ddr"`, `"hit"`, …) or `""`.
    pub label: &'static str,
}

impl MetricKey {
    /// Builds a key.
    pub const fn new(name: &'static str, label: &'static str) -> MetricKey {
        MetricKey { name, label }
    }
}

impl fmt::Display for MetricKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.label.is_empty() {
            f.write_str(self.name)
        } else {
            write!(f, "{}{{{}}}", self.name, self.label)
        }
    }
}

/// Number of buckets in a [`Log2Histogram`]: one per possible position of
/// the highest set bit of a `u64`, plus one for zero.
pub const LOG2_BUCKETS: usize = 65;

/// A fixed-size power-of-two histogram of `u64` samples.
///
/// Bucket `0` holds the value `0`; bucket `b ≥ 1` holds values whose
/// highest set bit is `b - 1`, i.e. the half-open range `[2^(b-1), 2^b)`.
/// Storage is constant (65 buckets) no matter how many samples are
/// recorded, so a histogram can sit on a per-access hot path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Log2Histogram {
    counts: [u64; LOG2_BUCKETS],
    total: u64,
    sum: u128,
    max: u64,
}

/// The bucket index of `v`.
#[inline]
pub fn log2_bucket(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// The smallest value that falls in bucket `b`.
pub fn log2_bucket_lower_bound(b: usize) -> u64 {
    match b {
        0 => 0,
        _ => 1u64 << (b - 1),
    }
}

impl Default for Log2Histogram {
    fn default() -> Log2Histogram {
        Log2Histogram {
            counts: [0; LOG2_BUCKETS],
            total: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Log2Histogram {
        Log2Histogram::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[log2_bucket(v)] += 1;
        self.total += 1;
        self.sum += v as u128;
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact sum of all recorded samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// The largest sample recorded (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact mean of recorded samples, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        Some(self.sum as f64 / self.total as f64)
    }

    /// The approximate `q`-quantile (`q` in `[0, 1]`) as the lower bound of
    /// the bucket holding that rank, or `None` if empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(log2_bucket_lower_bound(b));
            }
        }
        Some(self.max)
    }

    /// Per-bucket counts (index = bucket).
    pub fn buckets(&self) -> &[u64; LOG2_BUCKETS] {
        &self.counts
    }

    /// Merges `other` into `self`. All aggregates combine exactly
    /// (bucket-wise sums, total, sum, max), so recording N samples into a
    /// scratch histogram and merging once is indistinguishable from
    /// recording them here directly — the invariant the batched telemetry
    /// hot path relies on.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Resets the histogram to empty without releasing storage.
    pub fn clear(&mut self) {
        self.counts = [0; LOG2_BUCKETS];
        self.total = 0;
        self.sum = 0;
        self.max = 0;
    }

    /// Rebuilds a histogram from previously exported aggregates (the
    /// checkpoint/restore path). Returns `None` when `counts` does not have
    /// exactly [`LOG2_BUCKETS`] entries or the bucket counts do not sum to
    /// `total` — a histogram that lies about its own count would silently
    /// corrupt every downstream quantile.
    pub fn from_parts(counts: &[u64], sum: u128, max: u64) -> Option<Log2Histogram> {
        let counts: [u64; LOG2_BUCKETS] = counts.try_into().ok()?;
        let total: u64 = counts.iter().sum();
        Some(Log2Histogram {
            counts,
            total,
            sum,
            max,
        })
    }
}

/// A point-in-time copy of one histogram's aggregates, cheap to compare
/// and serialize.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Exact sum of samples.
    pub sum: u128,
    /// Largest sample.
    pub max: u64,
    /// Approximate median (bucket lower bound; 0 if empty).
    pub p50: u64,
    /// Approximate 99th percentile (bucket lower bound; 0 if empty).
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Snapshots `h`.
    pub fn of(h: &Log2Histogram) -> HistogramSnapshot {
        HistogramSnapshot {
            count: h.count(),
            sum: h.sum(),
            max: h.max(),
            p50: h.quantile(0.50).unwrap_or(0),
            p99: h.quantile(0.99).unwrap_or(0),
        }
    }
}

/// A point-in-time copy of every registered metric, sorted by key so two
/// snapshots of identical state compare (and render) identically.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotone counters.
    pub counters: Vec<(MetricKey, u64)>,
    /// Last-write-wins gauges.
    pub gauges: Vec<(MetricKey, f64)>,
    /// Histogram aggregates.
    pub histograms: Vec<(MetricKey, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// The counter value under `name{label}`, or `None` if never written.
    pub fn counter(&self, name: &str, label: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k.name == name && k.label == label)
            .map(|&(_, v)| v)
    }

    /// The gauge value under `name{label}`, or `None` if never written.
    pub fn gauge(&self, name: &str, label: &str) -> Option<f64> {
        self.gauges
            .iter()
            .find(|(k, _)| k.name == name && k.label == label)
            .map(|&(_, v)| v)
    }

    /// The histogram aggregates under `name{label}`, or `None`.
    pub fn histogram(&self, name: &str, label: &str) -> Option<HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(k, _)| k.name == name && k.label == label)
            .map(|&(_, v)| v)
    }

    /// Sum of a counter across all labels (0 if absent).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|&(_, v)| v)
            .sum()
    }
}

impl fmt::Display for MetricsSnapshot {
    /// A human-readable summary table (the "summary sink" format).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "telemetry snapshot")?;
        if !self.counters.is_empty() {
            writeln!(f, "  counters:")?;
            for (k, v) in &self.counters {
                writeln!(f, "    {k:<42} {v}")?;
            }
        }
        if !self.gauges.is_empty() {
            writeln!(f, "  gauges:")?;
            for (k, v) in &self.gauges {
                writeln!(f, "    {k:<42} {v:.3}")?;
            }
        }
        if !self.histograms.is_empty() {
            writeln!(f, "  histograms:")?;
            for (k, h) in &self.histograms {
                writeln!(
                    f,
                    "    {k:<42} n={} p50={} p99={} max={}",
                    h.count, h.p50, h.p99, h.max
                )?;
            }
        }
        Ok(())
    }
}

/// An insertion-ordered map of metric values with O(1) amortized lookup.
#[derive(Clone, Debug, Default)]
pub(crate) struct Registry<V> {
    slots: Vec<(MetricKey, V)>,
    index: HashMap<MetricKey, usize>,
}

impl<V: Default> Registry<V> {
    pub(crate) fn entry(&mut self, key: MetricKey) -> &mut V {
        let i = *self.index.entry(key).or_insert_with(|| {
            self.slots.push((key, V::default()));
            self.slots.len() - 1
        });
        &mut self.slots[i].1
    }

    pub(crate) fn get(&self, key: &MetricKey) -> Option<&V> {
        self.index.get(key).map(|&i| &self.slots[i].1)
    }

    pub(crate) fn sorted(&self) -> Vec<(MetricKey, &V)> {
        let mut out: Vec<(MetricKey, &V)> = self.slots.iter().map(|(k, v)| (*k, v)).collect();
        out.sort_by_key(|&(k, _)| k);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_geometry() {
        assert_eq!(log2_bucket(0), 0);
        assert_eq!(log2_bucket(1), 1);
        assert_eq!(log2_bucket(2), 2);
        assert_eq!(log2_bucket(3), 2);
        assert_eq!(log2_bucket(4), 3);
        assert_eq!(log2_bucket(u64::MAX), 64);
        for b in 0..LOG2_BUCKETS {
            let lo = log2_bucket_lower_bound(b);
            assert_eq!(log2_bucket(lo), b, "lower bound of bucket {b}");
        }
    }

    #[test]
    fn histogram_aggregates_are_exact_where_promised() {
        let mut h = Log2Histogram::new();
        for v in [0u64, 1, 5, 100, 1000, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 2106);
        assert_eq!(h.max(), 1000);
        assert!((h.mean().unwrap() - 351.0).abs() < 1.0);
        // Quantiles are bucket lower bounds: p99 of this set lives in
        // [512, 1024).
        assert_eq!(h.quantile(0.99), Some(512));
        assert_eq!(Log2Histogram::new().quantile(0.5), None);
        assert_eq!(Log2Histogram::new().mean(), None);
    }

    #[test]
    fn snapshot_lookup_by_name_and_label() {
        let snap = MetricsSnapshot {
            counters: vec![
                (MetricKey::new("a", "x"), 1),
                (MetricKey::new("a", "y"), 2),
                (MetricKey::new("b", ""), 7),
            ],
            gauges: vec![(MetricKey::new("g", ""), 1.5)],
            histograms: Vec::new(),
        };
        assert_eq!(snap.counter("a", "x"), Some(1));
        assert_eq!(snap.counter("a", "z"), None);
        assert_eq!(snap.counter_total("a"), 3);
        assert_eq!(snap.gauge("g", ""), Some(1.5));
        let s = snap.to_string();
        assert!(s.contains("a{x}"), "{s}");
        assert!(s.contains("b "), "{s}");
    }

    #[test]
    fn key_display_formats() {
        assert_eq!(MetricKey::new("sim.llc", "hit").to_string(), "sim.llc{hit}");
        assert_eq!(
            MetricKey::new("sim.accesses", "").to_string(),
            "sim.accesses"
        );
    }
}
