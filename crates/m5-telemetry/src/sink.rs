//! Telemetry sinks: where events and snapshots go.
//!
//! Three implementations cover the repo's needs:
//!
//! * [`MemorySink`] — buffers everything behind an `Arc<Mutex<…>>` handle;
//!   the harness of choice for tests and the golden-trace differ.
//! * [`JsonlSink`] — streams one JSON object per line to any
//!   `Write + Send`; the machine-readable trace for CI artifacts. JSON is
//!   emitted by hand (two dozen lines below) so the vendored-dependency
//!   budget stays untouched.
//! * [`SummarySink`] — renders the human-readable snapshot table on flush.

use crate::metrics::{HistogramSnapshot, MetricsSnapshot};
use std::io::{self, Write};
use std::sync::{Arc, Mutex};

/// What happened at one traced instant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened.
    SpanStart,
    /// A span closed; `duration_ns` is `end - start` in simulated ns.
    SpanEnd {
        /// Span length in simulated nanoseconds.
        duration_ns: u64,
    },
    /// A point event with no duration.
    Instant,
}

/// One traced event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Simulated timestamp in nanoseconds.
    pub ts_ns: u64,
    /// Event (or span) name, dot-separated by convention.
    pub name: &'static str,
    /// Free-form detail: a tier, a fault class, a degradation message.
    pub label: String,
    /// Start / end / instant.
    pub kind: EventKind,
}

/// A consumer of telemetry output.
///
/// All methods default to no-ops so a sink may care only about events (the
/// JSONL stream) or only about snapshots (the summary table).
pub trait Sink: Send {
    /// Observes one event as it happens.
    fn on_event(&mut self, _event: &Event) {}

    /// Observes a metrics snapshot (taken on [`crate::Telemetry::flush`]).
    fn on_snapshot(&mut self, _snapshot: &MetricsSnapshot) {}

    /// Flushes any buffered output.
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Shared buffer behind a [`MemorySink`].
#[derive(Debug, Default)]
pub struct MemoryBuffer {
    /// Every event observed, in order.
    pub events: Vec<Event>,
    /// The most recent snapshot observed, if any.
    pub last_snapshot: Option<MetricsSnapshot>,
}

/// An in-memory sink for tests: records events and the latest snapshot
/// into a buffer shared with the handle returned by [`MemorySink::new`].
#[derive(Debug)]
pub struct MemorySink {
    buf: Arc<Mutex<MemoryBuffer>>,
}

impl MemorySink {
    /// Builds a sink and the read handle to its buffer.
    pub fn new() -> (MemorySink, Arc<Mutex<MemoryBuffer>>) {
        let buf = Arc::new(Mutex::new(MemoryBuffer::default()));
        (
            MemorySink {
                buf: Arc::clone(&buf),
            },
            buf,
        )
    }
}

impl Sink for MemorySink {
    fn on_event(&mut self, event: &Event) {
        self.buf
            .lock()
            .expect("memory sink poisoned")
            .events
            .push(event.clone());
    }

    fn on_snapshot(&mut self, snapshot: &MetricsSnapshot) {
        self.buf.lock().expect("memory sink poisoned").last_snapshot = Some(snapshot.clone());
    }
}

/// Escapes `s` for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Streams events (and snapshots) as JSON Lines to a writer.
pub struct JsonlSink<W: Write + Send> {
    w: W,
    error: Option<io::Error>,
}

impl<W: Write + Send> JsonlSink<W> {
    /// A sink writing to `w`.
    pub fn new(w: W) -> JsonlSink<W> {
        JsonlSink { w, error: None }
    }

    /// The first I/O error hit while streaming, if any (streaming is
    /// infallible at the call site; errors surface here and on `flush`).
    pub fn error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    fn write_line(&mut self, line: String) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = writeln!(self.w, "{line}") {
            self.error = Some(e);
        }
    }
}

/// Renders one event as a single-line JSON object.
pub fn event_to_json(e: &Event) -> String {
    let (ty, extra) = match e.kind {
        EventKind::SpanStart => ("span_start", String::new()),
        EventKind::SpanEnd { duration_ns } => {
            ("span_end", format!(",\"duration_ns\":{duration_ns}"))
        }
        EventKind::Instant => ("event", String::new()),
    };
    format!(
        "{{\"type\":\"{ty}\",\"ts_ns\":{},\"name\":\"{}\",\"label\":\"{}\"{extra}}}",
        e.ts_ns,
        json_escape(e.name),
        json_escape(&e.label),
    )
}

/// Renders a snapshot as a single-line JSON object.
pub fn snapshot_to_json(s: &MetricsSnapshot) -> String {
    let mut out = String::from("{\"type\":\"snapshot\",\"counters\":{");
    let counters: Vec<String> = s
        .counters
        .iter()
        .map(|(k, v)| format!("\"{}\":{v}", json_escape(&k.to_string())))
        .collect();
    out.push_str(&counters.join(","));
    out.push_str("},\"gauges\":{");
    let gauges: Vec<String> = s
        .gauges
        .iter()
        .map(|(k, v)| format!("\"{}\":{v}", json_escape(&k.to_string())))
        .collect();
    out.push_str(&gauges.join(","));
    out.push_str("},\"histograms\":{");
    let hists: Vec<String> = s
        .histograms
        .iter()
        .map(|(k, h): &(_, HistogramSnapshot)| {
            format!(
                "\"{}\":{{\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p99\":{}}}",
                json_escape(&k.to_string()),
                h.count,
                h.sum,
                h.max,
                h.p50,
                h.p99
            )
        })
        .collect();
    out.push_str(&hists.join(","));
    out.push_str("}}");
    out
}

impl<W: Write + Send> Sink for JsonlSink<W> {
    fn on_event(&mut self, event: &Event) {
        self.write_line(event_to_json(event));
    }

    fn on_snapshot(&mut self, snapshot: &MetricsSnapshot) {
        self.write_line(snapshot_to_json(snapshot));
    }

    fn flush(&mut self) -> io::Result<()> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.w.flush()
    }
}

/// Writes the human-readable snapshot table ([`MetricsSnapshot`]'s
/// `Display`) to a writer on every snapshot. Events are ignored.
pub struct SummarySink<W: Write + Send> {
    w: W,
}

impl<W: Write + Send> SummarySink<W> {
    /// A sink writing to `w`.
    pub fn new(w: W) -> SummarySink<W> {
        SummarySink { w }
    }
}

impl<W: Write + Send> Sink for SummarySink<W> {
    fn on_snapshot(&mut self, snapshot: &MetricsSnapshot) {
        let _ = write!(self.w, "{snapshot}");
    }

    fn flush(&mut self) -> io::Result<()> {
        self.w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricKey;

    #[test]
    fn memory_sink_shares_its_buffer() {
        let (mut sink, handle) = MemorySink::new();
        sink.on_event(&Event {
            ts_ns: 5,
            name: "x",
            label: "l".into(),
            kind: EventKind::Instant,
        });
        sink.on_snapshot(&MetricsSnapshot::default());
        let buf = handle.lock().unwrap();
        assert_eq!(buf.events.len(), 1);
        assert_eq!(buf.events[0].ts_ns, 5);
        assert!(buf.last_snapshot.is_some());
    }

    #[test]
    fn jsonl_lines_are_valid_shape() {
        let e = Event {
            ts_ns: 42,
            name: "m5.epoch",
            label: "migrate \"x\"\n".into(),
            kind: EventKind::SpanEnd { duration_ns: 7 },
        };
        let line = event_to_json(&e);
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"duration_ns\":7"), "{line}");
        assert!(line.contains("migrate \\\"x\\\"\\n"), "{line}");
        assert!(!line.contains('\n'), "single line");
    }

    #[test]
    fn jsonl_sink_streams_to_writer() {
        let mut out = Vec::new();
        {
            let mut sink = JsonlSink::new(&mut out);
            sink.on_event(&Event {
                ts_ns: 1,
                name: "a",
                label: String::new(),
                kind: EventKind::Instant,
            });
            sink.on_snapshot(&MetricsSnapshot {
                counters: vec![(MetricKey::new("c", "x"), 3)],
                ..Default::default()
            });
            sink.flush().unwrap();
        }
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"type\":\"event\""));
        assert!(lines[1].contains("\"c{x}\":3"), "{}", lines[1]);
    }

    #[test]
    fn summary_sink_renders_table() {
        let mut out = Vec::new();
        {
            let mut sink = SummarySink::new(&mut out);
            sink.on_snapshot(&MetricsSnapshot {
                counters: vec![(MetricKey::new("sim.llc", "hit"), 10)],
                ..Default::default()
            });
        }
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("sim.llc{hit}"), "{text}");
    }

    #[test]
    fn escape_covers_control_chars() {
        assert_eq!(json_escape("a\"b\\c\u{1}"), "a\\\"b\\\\c\\u0001");
    }
}
