//! `m5-telemetry` — a zero-cost-when-disabled event/metric bus for the M5
//! stack.
//!
//! The design splits into three small pieces:
//!
//! * **Metrics** ([`metrics`]): monotone counters, last-write-wins gauges,
//!   and fixed-geometry log2 histograms, all addressed by static
//!   [`MetricKey`]s so the hot recording path never allocates.
//! * **Spans and events** ([`sink::Event`]): span-style tracing for
//!   migration epochs, fault windows, and tracker report batches, plus
//!   instant events for one-off occurrences (fallback engaged, page
//!   poisoned).
//! * **Sinks** ([`sink`]): pluggable consumers — in-memory for tests,
//!   JSONL stream for CI artifacts, human-readable summary for people.
//!
//! # Zero cost when disabled
//!
//! [`Telemetry::disabled`] holds no allocation at all
//! (`inner: Option<Box<…>>` is `None`); every recording method starts with
//! a branch on that `Option` and returns immediately. Instrumented code
//! embeds a `Telemetry` value and calls it unconditionally — no `cfg`
//! flags, no feature gates, and a measured overhead under 2% on the
//! `m5-bench` protocols (see DESIGN.md §Telemetry).
//!
//! # Example
//!
//! ```
//! use m5_telemetry::{MemorySink, Telemetry};
//!
//! let mut t = Telemetry::enabled();
//! let (sink, buf) = MemorySink::new();
//! t.add_sink(Box::new(sink));
//!
//! t.counter_add("sim.llc", "hit", 3);
//! t.histogram_record("sim.access.latency", "", 210);
//! let span = t.span_start(100, "m5.epoch", "1");
//! t.span_end(900, span);
//! t.flush();
//!
//! let snap = t.snapshot();
//! assert_eq!(snap.counter("sim.llc", "hit"), Some(3));
//! assert_eq!(buf.lock().unwrap().events.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod sink;

pub use metrics::{
    log2_bucket, log2_bucket_lower_bound, HistogramSnapshot, Log2Histogram, MetricKey,
    MetricsSnapshot, LOG2_BUCKETS,
};
pub use sink::{Event, EventKind, JsonlSink, MemoryBuffer, MemorySink, Sink, SummarySink};

use metrics::Registry;

/// Handle to an open span, returned by [`Telemetry::span_start`] and
/// consumed by [`Telemetry::span_end`].
///
/// A handle from a disabled `Telemetry` is inert; ending it is a no-op.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanId(u64);

struct OpenSpan {
    id: u64,
    start_ns: u64,
    name: &'static str,
    label: String,
}

#[derive(Default)]
struct Inner {
    counters: Registry<u64>,
    gauges: Registry<f64>,
    histograms: Registry<Log2Histogram>,
    sinks: Vec<Box<dyn Sink>>,
    open_spans: Vec<OpenSpan>,
    next_span: u64,
}

/// The full metric state of an enabled bus as owned plain data, produced
/// by [`Telemetry::export_state`] and consumed by [`Telemetry::from_state`].
/// Entries are sorted by key, so two buses with identical metric state
/// export identical (comparable) values.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TelemetryState {
    /// `(name, label, value)` per counter.
    pub counters: Vec<(String, String, u64)>,
    /// `(name, label, value)` per gauge.
    pub gauges: Vec<(String, String, f64)>,
    /// `(name, label, exact buckets)` per histogram.
    pub histograms: Vec<(String, String, Log2Histogram)>,
    /// The span-id allocator position, so span ids stay unique across a
    /// restore.
    pub next_span: u64,
}

/// The telemetry bus. Embed one per instrumented component (the simulator
/// owns one; the M5 manager records through the simulator's).
///
/// Disabled is the default and costs one `Option` discriminant check per
/// call. Enable with [`Telemetry::enabled`], then attach sinks.
#[derive(Default)]
pub struct Telemetry {
    inner: Option<Box<Inner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_struct("Telemetry");
        d.field("enabled", &self.is_enabled());
        if let Some(inner) = &self.inner {
            d.field("sinks", &inner.sinks.len());
            d.field("open_spans", &inner.open_spans.len());
        }
        d.finish()
    }
}

impl Telemetry {
    /// A disabled bus: every method is a near-free no-op.
    pub fn disabled() -> Telemetry {
        Telemetry { inner: None }
    }

    /// An enabled bus with no sinks attached (metrics still accumulate and
    /// can be read back via [`Telemetry::snapshot`]).
    pub fn enabled() -> Telemetry {
        Telemetry {
            inner: Some(Box::default()),
        }
    }

    /// Whether recording is active.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Attaches a sink. No-op when disabled.
    pub fn add_sink(&mut self, sink: Box<dyn Sink>) {
        if let Some(inner) = &mut self.inner {
            inner.sinks.push(sink);
        }
    }

    /// Adds `delta` to the counter `name{label}`.
    #[inline]
    pub fn counter_add(&mut self, name: &'static str, label: &'static str, delta: u64) {
        if let Some(inner) = &mut self.inner {
            *inner.counters.entry(MetricKey::new(name, label)) += delta;
        }
    }

    /// Sets the gauge `name{label}` to `value`.
    #[inline]
    pub fn gauge_set(&mut self, name: &'static str, label: &'static str, value: f64) {
        if let Some(inner) = &mut self.inner {
            *inner.gauges.entry(MetricKey::new(name, label)) = value;
        }
    }

    /// Records `value` into the histogram `name{label}`.
    #[inline]
    pub fn histogram_record(&mut self, name: &'static str, label: &'static str, value: u64) {
        if let Some(inner) = &mut self.inner {
            inner
                .histograms
                .entry(MetricKey::new(name, label))
                .record(value);
        }
    }

    /// Merges a locally accumulated histogram into `name{label}` in one
    /// registry probe — the flush half of a batched hot path. Merging is
    /// exact (see [`Log2Histogram::merge`]); empty histograms are skipped
    /// so an idle flush never materializes the metric.
    pub fn histogram_merge(&mut self, name: &'static str, label: &'static str, h: &Log2Histogram) {
        if h.count() == 0 {
            return;
        }
        if let Some(inner) = &mut self.inner {
            inner.histograms.entry(MetricKey::new(name, label)).merge(h);
        }
    }

    /// Opens a span at simulated time `ts_ns`. The label carries dynamic
    /// detail (an epoch number, a fault class).
    pub fn span_start(
        &mut self,
        ts_ns: u64,
        name: &'static str,
        label: impl Into<String>,
    ) -> SpanId {
        let Some(inner) = &mut self.inner else {
            return SpanId(0);
        };
        inner.next_span += 1;
        let id = inner.next_span;
        let label = label.into();
        let event = Event {
            ts_ns,
            name,
            label: label.clone(),
            kind: EventKind::SpanStart,
        };
        for s in &mut inner.sinks {
            s.on_event(&event);
        }
        inner.open_spans.push(OpenSpan {
            id,
            start_ns: ts_ns,
            name,
            label,
        });
        SpanId(id)
    }

    /// Closes a span at simulated time `ts_ns`, emitting a `SpanEnd` event
    /// with the elapsed duration. Unknown or inert handles are ignored.
    pub fn span_end(&mut self, ts_ns: u64, span: SpanId) {
        let Some(inner) = &mut self.inner else {
            return;
        };
        let Some(pos) = inner.open_spans.iter().position(|s| s.id == span.0) else {
            return;
        };
        let open = inner.open_spans.swap_remove(pos);
        let event = Event {
            ts_ns,
            name: open.name,
            label: open.label,
            kind: EventKind::SpanEnd {
                duration_ns: ts_ns.saturating_sub(open.start_ns),
            },
        };
        for s in &mut inner.sinks {
            s.on_event(&event);
        }
    }

    /// Emits an instant event.
    pub fn event(&mut self, ts_ns: u64, name: &'static str, label: impl Into<String>) {
        let Some(inner) = &mut self.inner else {
            return;
        };
        let event = Event {
            ts_ns,
            name,
            label: label.into(),
            kind: EventKind::Instant,
        };
        for s in &mut inner.sinks {
            s.on_event(&event);
        }
    }

    /// A sorted, deterministic snapshot of every metric. Empty when
    /// disabled.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let Some(inner) = &self.inner else {
            return MetricsSnapshot::default();
        };
        MetricsSnapshot {
            counters: inner
                .counters
                .sorted()
                .into_iter()
                .map(|(k, v)| (k, *v))
                .collect(),
            gauges: inner
                .gauges
                .sorted()
                .into_iter()
                .map(|(k, v)| (k, *v))
                .collect(),
            histograms: inner
                .histograms
                .sorted()
                .into_iter()
                .map(|(k, h)| (k, HistogramSnapshot::of(h)))
                .collect(),
        }
    }

    /// The raw histogram under `name{label}`, for tests that need bucket
    /// counts rather than aggregates.
    pub fn histogram(&self, name: &'static str, label: &'static str) -> Option<&Log2Histogram> {
        self.inner
            .as_ref()
            .and_then(|i| i.histograms.get(&MetricKey::new(name, label)))
    }

    /// Exports the full metric state — exact histogram buckets, not just
    /// aggregates — as owned plain data for checkpointing. `None` when
    /// disabled. Sinks and open spans are not exported: sinks are live I/O
    /// the restoring process re-attaches itself, and a span open across a
    /// checkpoint is re-opened by its owner after restore.
    pub fn export_state(&self) -> Option<TelemetryState> {
        let inner = self.inner.as_ref()?;
        Some(TelemetryState {
            counters: inner
                .counters
                .sorted()
                .into_iter()
                .map(|(k, v)| (k.name.to_string(), k.label.to_string(), *v))
                .collect(),
            gauges: inner
                .gauges
                .sorted()
                .into_iter()
                .map(|(k, v)| (k.name.to_string(), k.label.to_string(), *v))
                .collect(),
            histograms: inner
                .histograms
                .sorted()
                .into_iter()
                .map(|(k, h)| (k.name.to_string(), k.label.to_string(), h.clone()))
                .collect(),
            next_span: inner.next_span,
        })
    }

    /// Rebuilds an enabled bus (no sinks attached) from exported state.
    /// Metric keys are interned by leaking the owned strings: the registry
    /// addresses metrics by `&'static str`, and a restore happens a bounded
    /// number of times per process, so the leak is a few hundred bytes —
    /// never per-access.
    pub fn from_state(state: &TelemetryState) -> Telemetry {
        fn intern(s: &str) -> &'static str {
            Box::leak(s.to_string().into_boxed_str())
        }
        let mut t = Telemetry::enabled();
        let inner = t.inner.as_mut().expect("freshly enabled bus has state");
        for (name, label, v) in &state.counters {
            *inner
                .counters
                .entry(MetricKey::new(intern(name), intern(label))) = *v;
        }
        for (name, label, v) in &state.gauges {
            *inner
                .gauges
                .entry(MetricKey::new(intern(name), intern(label))) = *v;
        }
        for (name, label, h) in &state.histograms {
            *inner
                .histograms
                .entry(MetricKey::new(intern(name), intern(label))) = h.clone();
        }
        inner.next_span = state.next_span;
        t
    }

    /// Pushes the current snapshot to every sink, then flushes them.
    /// I/O errors are swallowed (telemetry must never fail a run); the
    /// JSONL sink exposes its first error via [`JsonlSink::error`].
    pub fn flush(&mut self) {
        let snap = self.snapshot();
        if let Some(inner) = &mut self.inner {
            for s in &mut inner.sinks {
                s.on_snapshot(&snap);
                let _ = s.flush();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_inert_and_allocation_free() {
        let mut t = Telemetry::disabled();
        assert!(!t.is_enabled());
        t.counter_add("c", "", 1);
        t.gauge_set("g", "", 1.0);
        t.histogram_record("h", "", 1);
        let span = t.span_start(0, "s", "");
        t.span_end(10, span);
        t.event(5, "e", "");
        t.flush();
        assert_eq!(t.snapshot(), MetricsSnapshot::default());
        assert_eq!(
            std::mem::size_of::<Telemetry>(),
            std::mem::size_of::<usize>()
        );
    }

    #[test]
    fn counters_gauges_histograms_accumulate() {
        let mut t = Telemetry::enabled();
        t.counter_add("sim.llc", "hit", 2);
        t.counter_add("sim.llc", "hit", 3);
        t.counter_add("sim.llc", "miss", 1);
        t.gauge_set("bw", "ddr", 1.0);
        t.gauge_set("bw", "ddr", 2.5);
        t.histogram_record("lat", "", 100);
        t.histogram_record("lat", "", 300);

        let snap = t.snapshot();
        assert_eq!(snap.counter("sim.llc", "hit"), Some(5));
        assert_eq!(snap.counter("sim.llc", "miss"), Some(1));
        assert_eq!(snap.counter_total("sim.llc"), 6);
        assert_eq!(snap.gauge("bw", "ddr"), Some(2.5));
        let h = snap.histogram("lat", "").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 400);
        assert_eq!(h.max, 300);
    }

    #[test]
    fn snapshots_are_sorted_and_deterministic() {
        let mut a = Telemetry::enabled();
        let mut b = Telemetry::enabled();
        // Insert in different orders; snapshots must still be identical.
        a.counter_add("z", "", 1);
        a.counter_add("a", "x", 2);
        b.counter_add("a", "x", 2);
        b.counter_add("z", "", 1);
        assert_eq!(a.snapshot(), b.snapshot());
        assert_eq!(a.snapshot().counters[0].0, MetricKey::new("a", "x"));
    }

    #[test]
    fn spans_emit_paired_events_with_duration() {
        let mut t = Telemetry::enabled();
        let (sink, buf) = MemorySink::new();
        t.add_sink(Box::new(sink));

        let outer = t.span_start(100, "m5.epoch", "1");
        let inner = t.span_start(150, "sim.fault.window", "cxl-latency-spike");
        t.span_end(400, inner);
        t.span_end(1100, outer);
        t.span_end(1100, outer); // double-end is ignored

        let events = buf.lock().unwrap().events.clone();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].kind, EventKind::SpanStart);
        assert_eq!(events[2].kind, EventKind::SpanEnd { duration_ns: 250 });
        assert_eq!(events[2].name, "sim.fault.window");
        assert_eq!(events[3].kind, EventKind::SpanEnd { duration_ns: 1000 });
    }

    #[test]
    fn flush_pushes_snapshot_to_sinks() {
        let mut t = Telemetry::enabled();
        let (sink, buf) = MemorySink::new();
        t.add_sink(Box::new(sink));
        t.counter_add("c", "", 9);
        t.flush();
        let snap = buf.lock().unwrap().last_snapshot.clone().unwrap();
        assert_eq!(snap.counter("c", ""), Some(9));
    }

    #[test]
    fn telemetry_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Telemetry>();
    }

    #[test]
    fn export_import_roundtrip_preserves_snapshots_and_span_ids() {
        let mut t = Telemetry::enabled();
        t.counter_add("sim.llc", "hit", 7);
        t.gauge_set("bw", "cxl", 2.25);
        t.histogram_record("lat", "", 100);
        t.histogram_record("lat", "", 900);
        let s1 = t.span_start(0, "s", "a");
        t.span_end(5, s1);
        let _open = t.span_start(10, "s", "b");

        let state = t.export_state().unwrap();
        let restored = Telemetry::from_state(&state);
        assert_eq!(restored.snapshot(), t.snapshot());
        // Exact buckets survive, not just aggregates.
        assert_eq!(restored.histogram("lat", ""), t.histogram("lat", ""));
        // Span ids continue past the checkpointed allocator position.
        let mut restored = restored;
        let s3 = restored.span_start(20, "s", "c");
        assert_eq!(s3, SpanId(3));
        // Disabled buses export nothing.
        assert!(Telemetry::disabled().export_state().is_none());
    }

    #[test]
    fn histogram_from_parts_validates_geometry() {
        let mut h = Log2Histogram::new();
        for v in [3u64, 900, 0] {
            h.record(v);
        }
        let rebuilt = Log2Histogram::from_parts(h.buckets(), h.sum(), h.max()).unwrap();
        assert_eq!(rebuilt, h);
        assert!(Log2Histogram::from_parts(&[0; 3], 0, 0).is_none());
    }

    #[test]
    fn histogram_merge_matches_direct_recording() {
        let mut direct = Telemetry::enabled();
        let mut batched = Telemetry::enabled();
        let mut scratch = Log2Histogram::new();
        for v in [0u64, 1, 7, 63, 64, 900, 4096, u64::MAX] {
            direct.histogram_record("lat", "cxl", v);
            scratch.record(v);
        }
        batched.histogram_merge("lat", "cxl", &scratch);
        assert_eq!(direct.snapshot(), batched.snapshot());
        // A second merge keeps accumulating.
        batched.histogram_merge("lat", "cxl", &scratch);
        assert_eq!(
            batched.snapshot().histogram("lat", "cxl").unwrap().count,
            16
        );
        // Merging an empty histogram neither fails nor creates the metric.
        let mut idle = Telemetry::enabled();
        idle.histogram_merge("lat", "cxl", &Log2Histogram::new());
        assert!(idle.snapshot().histograms.is_empty());
        scratch.clear();
        assert_eq!(scratch.count(), 0);
        assert_eq!(scratch.max(), 0);
    }
}
