//! DAMON — region-based PTE-scanning monitoring (§2.1 Solution 2), with a
//! DAMOS `migrate_hot`-style promotion scheme.
//!
//! DAMON divides the monitored address space into regions, assumes pages
//! within a region share access behaviour, and each *sampling interval*
//! checks (and clears) the PTE accessed bit of one random page per region.
//! Every *aggregation interval* it acts on the counts — here, promoting the
//! slow-tier pages of the hottest regions — and adapts the region layout by
//! merging similar neighbours and splitting regions while below the region
//! cap.
//!
//! Fidelity notes that matter for the paper's observations:
//!
//! * The accessed bit is only set by a hardware walk on a TLB miss, so
//!   TLB-resident hot pages go *unseen* — one source of warm-page
//!   misidentification (Observation 1).
//! * A region's count is Boolean per sample regardless of how many accesses
//!   hit it, so access magnitude is invisible (§2.1).
//! * DAMON keeps scanning and acting at equilibrium; with a uniform
//!   workload (Redis) the scheme keeps migrating interchangeable pages,
//!   which costs more than it earns (Figure 9's Redis regression).

use crate::daemon::{migration_allowance, HotPageLog};
use cxl_sim::addr::Vpn;
use cxl_sim::kernel::CostKind;
use cxl_sim::memory::NodeId;
use cxl_sim::system::{MigrationDaemon, System};
use cxl_sim::time::Nanos;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// DAMON tuning knobs (kernel equivalents noted).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DamonConfig {
    /// Sampling interval (`sample_interval`, kernel default 5 ms).
    pub sample_interval: Nanos,
    /// Samples per aggregation (`aggr_interval / sample_interval`, 20).
    pub aggr_samples: u32,
    /// Lower bound on regions (`min_nr_regions`).
    pub min_regions: usize,
    /// Upper bound on regions (`max_nr_regions`).
    pub max_regions: usize,
    /// Adjacent regions merge when counts differ by at most this.
    pub merge_threshold: u32,
    /// A region is hot when `nr_accesses ≥ hot_fraction × aggr_samples`.
    pub hot_fraction: f64,
    /// Max pages promoted per aggregation (DAMOS quota).
    pub quota_pages: usize,
    /// Whether to migrate (false = §4.1 record-only mode).
    pub migrate: bool,
    /// Cold pages demoted per capacity miss.
    pub demote_batch: usize,
    /// Hot-page log capacity.
    pub hot_log_cap: usize,
    /// DAMOS time quota: skip applying the scheme while cumulative
    /// migration time exceeds this fraction of elapsed time (the kernel's
    /// `quotas.ms` throttle). This is what bounds DAMON's equilibrium
    /// churn on uniform workloads — without it Redis would collapse
    /// instead of losing the paper's ~16 %.
    pub migration_time_budget: f64,
    /// RNG seed for sampling and split points.
    pub seed: u64,
}

impl Default for DamonConfig {
    fn default() -> DamonConfig {
        DamonConfig {
            sample_interval: Nanos::from_micros(250),
            aggr_samples: 20,
            min_regions: 10,
            max_regions: 100,
            merge_threshold: 1,
            hot_fraction: 0.4,
            quota_pages: 128,
            migrate: true,
            demote_batch: 64,
            hot_log_cap: 128 * 1024,
            migration_time_budget: 0.25,
            seed: 0xda40,
        }
    }
}

impl DamonConfig {
    /// The §4.1 configuration: identify hot pages but never migrate.
    pub fn record_only() -> DamonConfig {
        DamonConfig {
            migrate: false,
            ..DamonConfig::default()
        }
    }
}

/// One monitored region: `[start, end)` in VPNs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DamonRegion {
    /// First VPN of the region.
    pub start: u64,
    /// One past the last VPN.
    pub end: u64,
    /// Samples in the current aggregation window that found the accessed
    /// bit set.
    pub nr_accesses: u32,
    /// Aggregations this region has survived unmerged/unsplit.
    pub age: u32,
}

impl DamonRegion {
    fn len(&self) -> u64 {
        self.end - self.start
    }
}

/// The DAMON daemon.
#[derive(Clone, Debug)]
pub struct Damon {
    config: DamonConfig,
    regions: Vec<DamonRegion>,
    wake: Option<Nanos>,
    samples_done: u32,
    rng: SmallRng,
    log: HotPageLog,
    ptes_sampled: u64,
    aggregations: u64,
}

impl Damon {
    /// Builds a DAMON daemon.
    pub fn new(config: DamonConfig) -> Damon {
        Damon {
            regions: Vec::new(),
            wake: None,
            samples_done: 0,
            rng: SmallRng::seed_from_u64(config.seed),
            log: HotPageLog::new(config.hot_log_cap),
            ptes_sampled: 0,
            aggregations: 0,
            config,
        }
    }

    /// The hot pages identified so far.
    pub fn hot_log(&self) -> &HotPageLog {
        &self.log
    }

    /// The current region layout.
    pub fn regions(&self) -> &[DamonRegion] {
        &self.regions
    }

    /// PTEs sampled so far.
    pub fn ptes_sampled(&self) -> u64 {
        self.ptes_sampled
    }

    /// Aggregation intervals completed.
    pub fn aggregations(&self) -> u64 {
        self.aggregations
    }

    fn init_regions(&mut self, extent: u64) {
        self.regions.clear();
        if extent == 0 {
            return;
        }
        let n = (self.config.min_regions as u64).min(extent).max(1);
        let chunk = extent / n;
        for i in 0..n {
            let start = i * chunk;
            let end = if i == n - 1 { extent } else { (i + 1) * chunk };
            self.regions.push(DamonRegion {
                start,
                end,
                nr_accesses: 0,
                age: 0,
            });
        }
    }

    /// One sampling pass: one random PTE per region. Clearing the young
    /// bit also invalidates the sampled page's TLB entry (the kernel's
    /// `ptep_clear_flush_young` path) — without the flush, a TLB-resident
    /// hot page would never re-set its bit and the sampler would score
    /// hot regions *below* cold ones.
    fn sample(&mut self, sys: &mut System) {
        let per_pte = sys.config().costs.pte_sample_walk;
        for r in &mut self.regions {
            let vpn = Vpn(self.rng.gen_range(r.start..r.end));
            self.ptes_sampled += 1;
            if sys.page_table_mut().test_and_clear_accessed(vpn) {
                r.nr_accesses = (r.nr_accesses + 1).min(self.config.aggr_samples);
                sys.tlb_mut().invalidate(vpn);
            }
        }
        sys.daemon_bill(CostKind::PteScan, per_pte * self.regions.len() as u64);
    }

    /// The DAMOS action: promote slow-tier pages of hot regions.
    fn apply_scheme(&mut self, sys: &mut System) {
        let hot_min = (self.config.hot_fraction * self.config.aggr_samples as f64).ceil() as u32;
        let mut order: Vec<usize> = (0..self.regions.len()).collect();
        order.sort_by(|&a, &b| {
            self.regions[b]
                .nr_accesses
                .cmp(&self.regions[a].nr_accesses)
        });

        let mut batch: Vec<Vpn> = Vec::with_capacity(self.config.quota_pages);
        let per_pte = sys.config().costs.pte_scan_per_entry;
        let mut walked = 0u64;
        'outer: for &i in &order {
            let r = self.regions[i];
            if r.nr_accesses < hot_min {
                break;
            }
            for vpn in (r.start..r.end).map(Vpn) {
                walked += 1;
                let Some(pte) = sys.page_table().get(vpn) else {
                    continue;
                };
                if pte.node() == NodeId::Cxl {
                    self.log.record(vpn, pte.pfn);
                    batch.push(vpn);
                    if batch.len() >= self.config.quota_pages {
                        break 'outer;
                    }
                }
            }
        }
        // The scheme walks region PTEs to find movable pages.
        sys.daemon_bill(CostKind::PteScan, per_pte * walked);
        let allowed = migration_allowance(sys, self.config.migration_time_budget);
        batch.truncate(allowed);
        if self.config.migrate && !batch.is_empty() {
            if sys.free_frames(NodeId::Ddr) < batch.len() as u64 {
                sys.mglru_age();
            }
            sys.promote_with_demotion(&batch, self.config.demote_batch);
        }
    }

    /// Merge similar neighbours, then split while under the region cap.
    fn adapt_regions(&mut self) {
        // Merge pass.
        let mut merged: Vec<DamonRegion> = Vec::with_capacity(self.regions.len());
        for r in self.regions.drain(..) {
            match merged.last_mut() {
                Some(last)
                    if last.end == r.start
                        && last.nr_accesses.abs_diff(r.nr_accesses)
                            <= self.config.merge_threshold =>
                {
                    last.end = r.end;
                    last.nr_accesses = last.nr_accesses.max(r.nr_accesses);
                    last.age = last.age.min(r.age);
                }
                _ => merged.push(r),
            }
        }
        self.regions = merged;
        // Split pass: while below half the cap, split every splittable
        // region at a random interior point (the kernel splits into 2–3
        // subregions under the same condition).
        if self.regions.len() < self.config.max_regions / 2 {
            let mut split: Vec<DamonRegion> = Vec::with_capacity(self.regions.len() * 2);
            for r in self.regions.drain(..) {
                if r.len() >= 2 && split.len() + 2 <= self.config.max_regions {
                    // Split at a random interior point: mid ∈ [start+1, end-1].
                    let mid = r.start + 1 + self.rng.gen_range(0..r.len() - 1);
                    split.push(DamonRegion {
                        start: r.start,
                        end: mid,
                        nr_accesses: r.nr_accesses,
                        age: r.age + 1,
                    });
                    split.push(DamonRegion {
                        start: mid,
                        end: r.end,
                        nr_accesses: r.nr_accesses,
                        age: r.age + 1,
                    });
                } else {
                    split.push(r);
                }
            }
            self.regions = split;
        }
        for r in &mut self.regions {
            r.nr_accesses = 0;
        }
    }
}

impl MigrationDaemon for Damon {
    fn name(&self) -> &str {
        if self.config.migrate {
            "damon"
        } else {
            "damon-record"
        }
    }

    fn on_start(&mut self, sys: &mut System) {
        self.init_regions(sys.page_table().extent());
        self.wake = Some(sys.now() + self.config.sample_interval);
    }

    fn next_wake(&self) -> Option<Nanos> {
        self.wake
    }

    fn on_tick(&mut self, sys: &mut System) {
        if self.regions.is_empty() {
            self.init_regions(sys.page_table().extent());
        }
        self.sample(sys);
        self.samples_done += 1;
        if self.samples_done >= self.config.aggr_samples {
            self.samples_done = 0;
            self.aggregations += 1;
            self.apply_scheme(sys);
            self.adapt_regions();
        }
        self.wake = Some(sys.now() + self.config.sample_interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxl_sim::config::{Placement, SystemConfig};
    use cxl_sim::system::{run, Access, AccessStream};

    struct SkewedStream {
        region: cxl_sim::system::Region,
        hot: u64,
        rng: SmallRng,
        remaining: u64,
    }

    impl AccessStream for SkewedStream {
        fn next_access(&mut self) -> Option<Access> {
            if self.remaining == 0 {
                return None;
            }
            self.remaining -= 1;
            let page = if self.rng.gen::<f64>() < 0.98 {
                self.rng.gen_range(0..self.hot)
            } else {
                self.rng.gen_range(self.hot..self.region.pages)
            };
            let off = self.rng.gen_range(0u64..64) * 64;
            Some(Access::read(self.region.base.offset(page * 4096 + off)))
        }
    }

    fn setup(migrate: bool) -> (System, SkewedStream, Damon) {
        // The footprint must exceed the TLB reach, or hot pages never take a
        // TLB miss and their accessed bits are never set — DAMON would be
        // structurally blind (the paper's warm-page pathology taken to the
        // extreme).
        let mut sys = System::new(
            SystemConfig::small()
                .with_cxl_frames(1024)
                .with_ddr_frames(512),
        );
        let region = sys.alloc_region(1024, Placement::AllOnCxl).unwrap();
        let wl = SkewedStream {
            region,
            hot: 16,
            rng: SmallRng::seed_from_u64(2),
            remaining: 700_000,
        };
        let mut cfg = if migrate {
            DamonConfig::default()
        } else {
            DamonConfig::record_only()
        };
        cfg.sample_interval = Nanos::from_micros(50);
        cfg.min_regions = 8;
        cfg.max_regions = 128;
        cfg.quota_pages = 16;
        (sys, wl, Damon::new(cfg))
    }

    #[test]
    fn damon_promotes_hot_region_pages() {
        let (mut sys, mut wl, mut damon) = setup(true);
        let report = run(&mut sys, &mut wl, &mut damon, u64::MAX);
        assert!(report.migrations.promotions > 0);
        assert!(damon.aggregations() > 0);
        assert!(!damon.hot_log().is_empty());
        let hot_on_ddr = (0..16)
            .filter(|&p| sys.page_table().get(Vpn(p)).unwrap().node() == NodeId::Ddr)
            .count();
        assert!(hot_on_ddr >= 8, "only {hot_on_ddr}/16 hot pages promoted");
    }

    #[test]
    fn record_only_identifies_without_migrating() {
        let (mut sys, mut wl, mut damon) = setup(false);
        let report = run(&mut sys, &mut wl, &mut damon, u64::MAX);
        assert_eq!(report.migrations.promotions, 0);
        assert!(!damon.hot_log().is_empty());
        assert_eq!(damon.name(), "damon-record");
    }

    #[test]
    fn sampling_bills_pte_scans_continuously() {
        let (mut sys, mut wl, mut damon) = setup(true);
        let report = run(&mut sys, &mut wl, &mut damon, u64::MAX);
        assert!(report.kernel.of(CostKind::PteScan) > Nanos::ZERO);
        assert!(damon.ptes_sampled() > 100);
        // Unlike ANB, DAMON takes no hinting faults.
        assert_eq!(report.hinting_faults, 0);
        assert_eq!(report.kernel.of(CostKind::HintingFault), Nanos::ZERO);
    }

    #[test]
    fn regions_stay_within_bounds_and_cover_the_space() {
        let (mut sys, mut wl, mut damon) = setup(true);
        let _ = run(&mut sys, &mut wl, &mut damon, u64::MAX);
        let regions = damon.regions();
        assert!(!regions.is_empty());
        assert!(regions.len() <= 128);
        // Contiguous cover of [0, extent).
        assert_eq!(regions[0].start, 0);
        for w in regions.windows(2) {
            assert_eq!(w[0].end, w[1].start, "gap between regions");
        }
        assert_eq!(regions.last().unwrap().end, sys.page_table().extent());
    }

    #[test]
    fn time_quota_caps_migration() {
        let (mut sys, mut wl, _) = setup(true);
        let cfg = DamonConfig {
            sample_interval: Nanos::from_micros(50),
            migration_time_budget: 0.05,
            ..Default::default()
        };
        let mut damon = Damon::new(cfg);
        let report = run(&mut sys, &mut wl, &mut damon, u64::MAX);
        let spent = report.kernel.of(CostKind::Migration).0 as f64;
        let elapsed = report.total_time.0 as f64;
        assert!(
            spent <= 0.05 * elapsed * 2.0,
            "migration {spent}ns exceeds 5% quota of {elapsed}ns"
        );
    }

    #[test]
    fn init_handles_empty_address_space() {
        let mut sys = System::new(SystemConfig::small());
        let mut damon = Damon::new(DamonConfig::default());
        damon.on_start(&mut sys);
        assert!(damon.regions().is_empty());
    }
}
