//! Shared daemon scaffolding: hot-page logs and adaptive periods.

pub use cxl_sim::hotlog::HotPageLog;
use cxl_sim::time::Nanos;

/// How many pages a daemon may still migrate under a time quota: the
/// number of `migrate_per_page` slots left before cumulative migration
/// time reaches `budget × elapsed`. Each promotion implies a matching
/// demotion once the fast tier is full, so a factor of two is reserved.
pub fn migration_allowance(sys: &cxl_sim::system::System, budget: f64) -> usize {
    let spent = sys
        .kernel_costs()
        .of(cxl_sim::kernel::CostKind::Migration)
        .0 as f64;
    let allowed = budget * sys.now().0.max(1) as f64 - spent;
    let per_page = sys.config().costs.migrate_per_page.0.max(1) as f64 * 2.0;
    (allowed / per_page).max(0.0) as usize
}

/// An exponentially adaptive period between `min` and `max`: back off
/// (double) when work is unproductive, speed up (halve) when productive —
/// ANB's scan-rate adaptation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdaptivePeriod {
    current: Nanos,
    min: Nanos,
    max: Nanos,
}

impl AdaptivePeriod {
    /// Builds a period starting at `min`.
    ///
    /// # Panics
    ///
    /// Panics if `min` is zero or exceeds `max`.
    pub fn new(min: Nanos, max: Nanos) -> AdaptivePeriod {
        assert!(min > Nanos::ZERO && min <= max, "need 0 < min <= max");
        AdaptivePeriod {
            current: min,
            min,
            max,
        }
    }

    /// The current period.
    pub fn current(&self) -> Nanos {
        self.current
    }

    /// Signals that the last interval's work was productive (hot pages
    /// found and migrated): speed up.
    pub fn productive(&mut self) {
        self.current = (self.current / 2).max(self.min);
    }

    /// Signals that the last interval's work was wasted: back off.
    pub fn unproductive(&mut self) {
        self.current = (self.current * 2).min(self.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_period_bounces_between_bounds() {
        let mut p = AdaptivePeriod::new(Nanos(100), Nanos(800));
        p.unproductive();
        p.unproductive();
        assert_eq!(p.current(), Nanos(400));
        p.unproductive();
        p.unproductive();
        assert_eq!(p.current(), Nanos(800), "clamped at max");
        p.productive();
        assert_eq!(p.current(), Nanos(400));
        for _ in 0..10 {
            p.productive();
        }
        assert_eq!(p.current(), Nanos(100), "clamped at min");
    }

    #[test]
    #[should_panic(expected = "min <= max")]
    fn invalid_bounds_panic() {
        let _ = AdaptivePeriod::new(Nanos(10), Nanos(5));
    }
}
