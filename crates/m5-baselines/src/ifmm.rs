//! IFMM — Intel Flat Memory Mode (§9 related work), a trace-level model.
//!
//! In flat memory mode the memory controller treats local DDR as an
//! *exclusive cache* of CXL memory with a one-to-one (direct-mapped)
//! 64 B-word correspondence: accessing a CXL word swaps it with the DDR
//! word in its slot — no TLB shootdown, no PTE update, no 4 KiB copy.
//! The catch the paper points out: the one-to-one mapping requires
//! DDR capacity ≥ the covered CXL range, and a conflicting word evicts
//! the previous tenant, so dense working sets thrash slots.
//!
//! This model replays a cache-filtered DRAM trace and reports how many
//! accesses each scheme serves from fast memory:
//!
//! * IFMM alone (word swaps, direct-mapped slots),
//! * page migration alone (an oracle promoting the hottest pages that
//!   fit), and
//! * the hybrid the paper proposes: M5 migrates dense hot pages while
//!   IFMM swaps hot words of the remaining sparse pages.
//!
//! It quantifies the §9 synergy claim: sparse-page workloads love word
//! swaps, dense-page workloads love page migration, and the hybrid
//! dominates both.

use cxl_sim::addr::{CacheLineAddr, Pfn, WORDS_PER_PAGE};
use cxl_sim::trace::TraceRecord;
use std::collections::{HashMap, HashSet};

/// The direct-mapped word-swap state.
#[derive(Clone, Debug)]
pub struct FlatMemoryMode {
    /// DDR slots (one per 64 B word of the covered range): which CXL word
    /// currently occupies each slot.
    slots: Vec<Option<u64>>,
    swaps: u64,
    fast_hits: u64,
    accesses: u64,
}

impl FlatMemoryMode {
    /// A flat-mode controller with `slots` DDR word slots.
    ///
    /// # Panics
    ///
    /// Panics if `slots` is zero.
    pub fn new(slots: usize) -> FlatMemoryMode {
        assert!(slots > 0, "need at least one slot");
        FlatMemoryMode {
            slots: vec![None; slots],
            swaps: 0,
            fast_hits: 0,
            accesses: 0,
        }
    }

    /// Observes one CXL word access: a hit if the word already occupies
    /// its slot, otherwise a swap that installs it (evicting the previous
    /// tenant back to CXL).
    pub fn access(&mut self, line: CacheLineAddr) -> bool {
        self.accesses += 1;
        let slot = (line.0 as usize) % self.slots.len();
        if self.slots[slot] == Some(line.0) {
            self.fast_hits += 1;
            true
        } else {
            self.slots[slot] = Some(line.0);
            self.swaps += 1;
            false
        }
    }

    /// Fraction of accesses served from fast memory.
    pub fn fast_fraction(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.fast_hits as f64 / self.accesses as f64
        }
    }

    /// Word swaps performed (each one a 64 B + 64 B transfer).
    pub fn swaps(&self) -> u64 {
        self.swaps
    }

    /// Accesses observed.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }
}

/// The outcome of replaying one trace under the three schemes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IfmmComparison {
    /// Fast-memory hit fraction under IFMM word swapping alone.
    pub ifmm_fast_fraction: f64,
    /// Fast-memory hit fraction under oracle page migration alone.
    pub paging_fast_fraction: f64,
    /// Fast-memory hit fraction under the §9 hybrid (M5 pages + IFMM
    /// words for the rest).
    pub hybrid_fast_fraction: f64,
    /// Word swaps IFMM performed (its traffic cost).
    pub ifmm_swaps: u64,
}

/// Replays `trace` under the three schemes with a fast tier of
/// `ddr_pages` 4 KiB pages.
///
/// The paging scheme is an *oracle*: it promotes the `ddr_pages` hottest
/// pages of the whole trace (an upper bound for any real migration
/// policy). The hybrid gives half the fast tier to oracle page migration
/// and runs IFMM word swapping in the other half for the remaining
/// pages' words.
pub fn compare(trace: &[TraceRecord], ddr_pages: usize) -> IfmmComparison {
    // Per-page access counts for the paging oracle.
    let mut page_counts: HashMap<Pfn, u64> = HashMap::new();
    for r in trace {
        *page_counts.entry(r.line.pfn()).or_default() += 1;
    }
    let mut pages: Vec<(Pfn, u64)> = page_counts.into_iter().collect();
    pages.sort_unstable_by_key(|&(_, c)| std::cmp::Reverse(c));

    let paging_hits: u64 = pages.iter().take(ddr_pages).map(|&(_, c)| c).sum();
    let total: u64 = pages.iter().map(|&(_, c)| c).sum();

    // IFMM alone: all DDR capacity as word slots.
    let mut ifmm = FlatMemoryMode::new(ddr_pages.max(1) * WORDS_PER_PAGE);
    for r in trace {
        ifmm.access(r.line);
    }

    // Hybrid: half the capacity to the hottest pages, half to word slots
    // for everything else.
    let half = ddr_pages / 2;
    let hybrid_pages: HashSet<Pfn> = pages.iter().take(half).map(|&(p, _)| p).collect();
    let mut hybrid_ifmm = FlatMemoryMode::new((ddr_pages - half).max(1) * WORDS_PER_PAGE);
    let mut hybrid_hits = 0u64;
    for r in trace {
        // Short-circuit keeps pinned-page hits out of the word cache.
        if hybrid_pages.contains(&r.line.pfn()) || hybrid_ifmm.access(r.line) {
            hybrid_hits += 1;
        }
    }

    let frac = |hits: u64| {
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    };
    IfmmComparison {
        ifmm_fast_fraction: ifmm.fast_fraction(),
        paging_fast_fraction: frac(paging_hits),
        hybrid_fast_fraction: frac(hybrid_hits),
        ifmm_swaps: ifmm.swaps(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxl_sim::addr::WordIndex;
    use cxl_sim::memory::CXL_BASE_PFN;
    use cxl_sim::time::Nanos;

    fn rec(page: u64, word: u8) -> TraceRecord {
        TraceRecord {
            line: Pfn(CXL_BASE_PFN + page).word(WordIndex(word)).cache_line(),
            is_write: false,
            ts: Nanos::ZERO,
        }
    }

    #[test]
    fn repeated_word_hits_after_first_swap() {
        let mut fm = FlatMemoryMode::new(64);
        let line = rec(0, 5).line;
        assert!(!fm.access(line), "first access swaps");
        assert!(fm.access(line), "then it is fast");
        assert_eq!(fm.swaps(), 1);
        assert!((fm.fast_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn conflicting_words_thrash_a_slot() {
        let mut fm = FlatMemoryMode::new(64);
        let a = rec(0, 3).line;
        // Same slot: word 3 of a page exactly `slots` lines away.
        let b = CacheLineAddr(a.0 + 64);
        for _ in 0..10 {
            assert!(!fm.access(a));
            assert!(!fm.access(b));
        }
        assert_eq!(fm.fast_hits, 0, "alternating conflicts never hit");
    }

    /// The §9 synergy: sparse hot words favour IFMM, dense hot pages
    /// favour paging, and the hybrid beats IFMM alone on a mixed trace.
    #[test]
    fn hybrid_wins_on_a_mixed_workload() {
        let mut trace = Vec::new();
        // Dense hot page 0: all 64 words, repeatedly.
        for _ in 0..50 {
            for w in 0..64u8 {
                trace.push(rec(0, w));
            }
        }
        // Sparse hot words: one word in each of 40 pages, at distinct
        // in-page offsets so they occupy distinct direct-mapped slots.
        for _ in 0..50 {
            for p in 1..=40u64 {
                trace.push(rec(p, ((7 + p) % 64) as u8));
            }
        }
        let cmp = compare(&trace, 2);
        // Paging with 2 pages catches the dense page but almost none of
        // the sparse traffic; IFMM catches the sparse words but conflicts
        // on the dense page... the hybrid gets both.
        assert!(
            cmp.hybrid_fast_fraction >= cmp.paging_fast_fraction - 1e-9,
            "hybrid {:.3} < paging {:.3}",
            cmp.hybrid_fast_fraction,
            cmp.paging_fast_fraction
        );
        assert!(
            cmp.hybrid_fast_fraction > cmp.ifmm_fast_fraction,
            "hybrid {:.3} <= ifmm {:.3}",
            cmp.hybrid_fast_fraction,
            cmp.ifmm_fast_fraction
        );
        assert!(cmp.ifmm_swaps > 0);
    }

    #[test]
    fn empty_trace_is_harmless() {
        let cmp = compare(&[], 4);
        assert_eq!(cmp.ifmm_fast_fraction, 0.0);
        assert_eq!(cmp.paging_fast_fraction, 0.0);
    }
}
