//! PEBS-style sampling (§2.1 Solution 3) — the Memtis-class baseline.
//!
//! The real Intel PEBS cannot sample LLC misses to CXL memory, which is
//! why the paper had to exclude Memtis from its evaluation (§4). The
//! simulator has no such limitation, so this daemon reproduces the
//! mechanism as an *extension*: sample one of every `sample_period` LLC
//! miss addresses into a buffer; when the buffer fills, take an interrupt
//! (billed kernel time) and fold the samples into per-page counters; on a
//! migration epoch, promote the hottest sampled slow-tier pages.
//!
//! The §2.1 trade-off is built in: a lower `sample_period` identifies hot
//! pages more precisely but interrupts the CPU more often — recent work
//! reports >15 % slowdown at 1/100 sampling (§4.2's closing note).
//!
//! The sampler taps the miss stream by attaching a [`PebsBuffer`] as a
//! [`CxlDevice`] at `on_start` — conceptually where PEBS sits — and each
//! daemon tick drains whatever the buffer accumulated. (Note the one
//! modelling liberty: a controller-side device sees CXL misses only,
//! whereas real PEBS samples on the CPU; since all baselines here manage
//! only the CXL tier, the streams coincide.)

use crate::daemon::{migration_allowance, HotPageLog};
use cxl_sim::addr::{CacheLineAddr, Pfn};
use cxl_sim::controller::{CxlDevice, DeviceHandle};
use cxl_sim::kernel::CostKind;
use cxl_sim::memory::NodeId;
use cxl_sim::system::{MigrationDaemon, System};
use cxl_sim::time::Nanos;
use std::any::Any;
use std::collections::HashMap;

/// The sampling front-end attached to the controller: keeps every
/// `period`-th miss address in a bounded buffer, like the PEBS hardware.
#[derive(Clone, Debug)]
pub struct PebsBuffer {
    period: u64,
    capacity: usize,
    countdown: u64,
    samples: Vec<CacheLineAddr>,
    overflows: u64,
}

impl PebsBuffer {
    /// A buffer sampling one in `period` accesses, holding `capacity`
    /// records.
    pub fn new(period: u64, capacity: usize) -> PebsBuffer {
        PebsBuffer {
            period: period.max(1),
            capacity,
            countdown: period.max(1),
            samples: Vec::with_capacity(capacity),
            overflows: 0,
        }
    }

    /// Drains the buffered samples.
    pub fn drain(&mut self) -> Vec<CacheLineAddr> {
        std::mem::take(&mut self.samples)
    }

    /// Samples dropped because the buffer was full (the interrupt lagged).
    pub fn overflows(&self) -> u64 {
        self.overflows
    }

    /// Number of buffered samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

impl CxlDevice for PebsBuffer {
    fn name(&self) -> &str {
        "pebs-buffer"
    }

    fn on_access(&mut self, line: CacheLineAddr, _is_write: bool, _now: Nanos) {
        self.countdown -= 1;
        if self.countdown == 0 {
            self.countdown = self.period;
            if self.samples.len() < self.capacity {
                self.samples.push(line);
            } else {
                self.overflows += 1;
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// PEBS daemon tuning knobs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PebsConfig {
    /// Sample one of this many CXL misses (Memtis-style setups use
    /// hundreds to thousands).
    pub sample_period: u64,
    /// PEBS buffer capacity; a full buffer costs an interrupt.
    pub buffer_capacity: usize,
    /// Time between daemon ticks (buffer processing + possible migration).
    pub tick_period: Nanos,
    /// Pages promoted per migration epoch.
    pub promote_batch: usize,
    /// Cold pages demoted per capacity miss.
    pub demote_batch: usize,
    /// Whether to migrate (false = record-only).
    pub migrate: bool,
    /// Hot-page log capacity.
    pub hot_log_cap: usize,
    /// Kernel time to process one interrupt's worth of samples.
    pub interrupt_cost: Nanos,
    /// Migration rate limit as a fraction of elapsed time.
    pub migration_time_budget: f64,
}

impl Default for PebsConfig {
    fn default() -> PebsConfig {
        PebsConfig {
            sample_period: 128,
            buffer_capacity: 512,
            tick_period: Nanos::from_millis(1),
            promote_batch: 32,
            demote_batch: 64,
            migrate: true,
            hot_log_cap: 128 * 1024,
            interrupt_cost: Nanos::from_micros(5),
            migration_time_budget: 0.25,
        }
    }
}

impl PebsConfig {
    /// The §4.1 record-only configuration.
    pub fn record_only() -> PebsConfig {
        PebsConfig {
            migrate: false,
            ..PebsConfig::default()
        }
    }
}

/// The sampling-based migration daemon.
#[derive(Debug)]
pub struct PebsSampler {
    config: PebsConfig,
    buffer: Option<DeviceHandle>,
    counts: HashMap<Pfn, u64>,
    log: HotPageLog,
    wake: Option<Nanos>,
    interrupts: u64,
    samples_processed: u64,
}

impl PebsSampler {
    /// Builds a PEBS-style daemon.
    pub fn new(config: PebsConfig) -> PebsSampler {
        PebsSampler {
            log: HotPageLog::new(config.hot_log_cap),
            buffer: None,
            counts: HashMap::new(),
            wake: None,
            interrupts: 0,
            samples_processed: 0,
            config,
        }
    }

    /// The identified hot pages.
    pub fn hot_log(&self) -> &HotPageLog {
        &self.log
    }

    /// Buffer-full interrupts taken.
    pub fn interrupts(&self) -> u64 {
        self.interrupts
    }

    /// Samples folded into the per-page histogram.
    pub fn samples_processed(&self) -> u64 {
        self.samples_processed
    }
}

impl MigrationDaemon for PebsSampler {
    fn name(&self) -> &str {
        if self.config.migrate {
            "pebs"
        } else {
            "pebs-record"
        }
    }

    fn on_start(&mut self, sys: &mut System) {
        self.buffer = Some(sys.attach_device(PebsBuffer::new(
            self.config.sample_period,
            self.config.buffer_capacity,
        )));
        self.wake = Some(sys.now() + self.config.tick_period);
    }

    fn next_wake(&self) -> Option<Nanos> {
        self.wake
    }

    fn on_tick(&mut self, sys: &mut System) {
        let Some(handle) = self.buffer else { return };
        let samples = sys
            .device_mut::<PebsBuffer>(handle)
            .map(|b| b.drain())
            .unwrap_or_default();
        if !samples.is_empty() {
            // The interrupt + per-sample analysis is the CPU cost §2.1
            // describes; higher precision (lower period) = more of these.
            self.interrupts += 1;
            self.samples_processed += samples.len() as u64;
            sys.daemon_bill(CostKind::DaemonOther, self.config.interrupt_cost);
            for line in samples {
                *self.counts.entry(line.pfn()).or_default() += 1;
            }
        }
        // Migration epoch: promote the hottest sampled slow-tier pages.
        let mut hot: Vec<(Pfn, u64)> = self.counts.iter().map(|(&p, &c)| (p, c)).collect();
        hot.sort_unstable_by_key(|&(_, c)| std::cmp::Reverse(c));
        let mut batch = Vec::with_capacity(self.config.promote_batch);
        for (pfn, _) in hot.into_iter().take(self.config.promote_batch * 2) {
            if let Some(vpn) = sys.page_table().vpn_of(pfn) {
                if sys
                    .page_table()
                    .get(vpn)
                    .is_some_and(|pte| pte.node() == NodeId::Cxl)
                {
                    self.log.record(vpn, pfn);
                    batch.push(vpn);
                    if batch.len() >= self.config.promote_batch {
                        break;
                    }
                }
            }
        }
        batch.truncate(migration_allowance(sys, self.config.migration_time_budget));
        if self.config.migrate && !batch.is_empty() {
            sys.promote_with_demotion(&batch, self.config.demote_batch);
        }
        // Sampled counts age out so the histogram tracks the current phase.
        self.counts.retain(|_, c| {
            *c /= 2;
            *c > 0
        });
        self.wake = Some(sys.now() + self.config.tick_period);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxl_sim::config::{Placement, SystemConfig};
    use cxl_sim::system::{run, Access, AccessStream};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    struct SkewedStream {
        base: cxl_sim::addr::VirtAddr,
        pages: u64,
        hot: u64,
        rng: SmallRng,
        remaining: u64,
    }

    impl AccessStream for SkewedStream {
        fn next_access(&mut self) -> Option<Access> {
            if self.remaining == 0 {
                return None;
            }
            self.remaining -= 1;
            let page = if self.rng.gen::<f64>() < 0.9 {
                self.rng.gen_range(0..self.hot)
            } else {
                self.rng.gen_range(self.hot..self.pages)
            };
            Some(Access::read(
                self.base
                    .offset(page * 4096 + self.rng.gen_range(0u64..64) * 64),
            ))
        }
    }

    #[test]
    fn buffer_samples_one_in_period() {
        let mut buf = PebsBuffer::new(10, 100);
        for i in 0..100u64 {
            buf.on_access(CacheLineAddr(i), false, Nanos::ZERO);
        }
        assert_eq!(buf.len(), 10);
        let drained = buf.drain();
        assert_eq!(drained.len(), 10);
        assert!(buf.is_empty());
        assert_eq!(drained[0], CacheLineAddr(9), "every 10th access kept");
    }

    #[test]
    fn buffer_overflow_drops_and_counts() {
        let mut buf = PebsBuffer::new(1, 4);
        for i in 0..10u64 {
            buf.on_access(CacheLineAddr(i), false, Nanos::ZERO);
        }
        assert_eq!(buf.len(), 4);
        assert_eq!(buf.overflows(), 6);
    }

    #[test]
    fn sampler_promotes_hot_pages() {
        let mut sys = System::new(
            SystemConfig::small()
                .with_cxl_frames(512)
                .with_ddr_frames(256),
        );
        let region = sys.alloc_region(256, Placement::AllOnCxl).unwrap();
        let mut wl = SkewedStream {
            base: region.base,
            pages: 256,
            hot: 8,
            rng: SmallRng::seed_from_u64(4),
            remaining: 400_000,
        };
        let mut pebs = PebsSampler::new(PebsConfig {
            sample_period: 16,
            tick_period: Nanos::from_micros(200),
            ..PebsConfig::default()
        });
        let report = run(&mut sys, &mut wl, &mut pebs, u64::MAX);
        assert!(report.migrations.promotions > 0);
        assert!(pebs.interrupts() > 0);
        assert!(pebs.samples_processed() > 100);
        let hot_on_ddr = (0..8)
            .filter(|&p| sys.page_table().get(cxl_sim::addr::Vpn(p)).unwrap().node() == NodeId::Ddr)
            .count();
        assert!(hot_on_ddr >= 6, "only {hot_on_ddr}/8 promoted");
    }

    #[test]
    fn sparser_sampling_is_less_precise_but_cheaper() {
        let run_with_period = |period: u64| {
            let mut sys = System::new(
                SystemConfig::small()
                    .with_cxl_frames(512)
                    .with_ddr_frames(256),
            );
            let region = sys.alloc_region(256, Placement::AllOnCxl).unwrap();
            let mut wl = SkewedStream {
                base: region.base,
                pages: 256,
                hot: 8,
                rng: SmallRng::seed_from_u64(4),
                remaining: 200_000,
            };
            let mut pebs = PebsSampler::new(PebsConfig {
                sample_period: period,
                tick_period: Nanos::from_micros(200),
                migrate: false,
                ..PebsConfig::default()
            });
            let report = run(&mut sys, &mut wl, &mut pebs, u64::MAX);
            (
                pebs.samples_processed(),
                report.kernel.of(CostKind::DaemonOther),
            )
        };
        let (dense_samples, dense_cost) = run_with_period(8);
        let (sparse_samples, sparse_cost) = run_with_period(512);
        assert!(dense_samples > sparse_samples * 8);
        assert!(dense_cost > sparse_cost, "denser sampling costs more CPU");
    }

    #[test]
    fn record_only_never_migrates() {
        let mut sys = System::new(
            SystemConfig::small()
                .with_cxl_frames(512)
                .with_ddr_frames(256),
        );
        let region = sys.alloc_region(128, Placement::AllOnCxl).unwrap();
        let mut wl = SkewedStream {
            base: region.base,
            pages: 128,
            hot: 8,
            rng: SmallRng::seed_from_u64(4),
            remaining: 100_000,
        };
        let mut pebs = PebsSampler::new(PebsConfig::record_only());
        let report = run(&mut sys, &mut wl, &mut pebs, u64::MAX);
        assert_eq!(report.migrations.promotions, 0);
        assert_eq!(pebs.name(), "pebs-record");
        assert!(!pebs.hot_log().is_empty());
    }
}
