//! # m5-baselines — the CPU-driven page-migration solutions
//!
//! Faithful behavioural models of the two baselines the paper evaluates
//! (§2.1, §4, §7):
//!
//! * [`anb::Anb`] — **Automatic NUMA Balancing** (Solution 1: hinting page
//!   faults). A scanner periodically unmaps batches of slow-tier pages
//!   (clearing present bits and shooting down TLB entries); the soft fault
//!   taken on the next touch identifies the page as hot and triggers
//!   promotion. The scan period adapts: it backs off when faults stop
//!   producing migrations, which is why ANB goes quiet at equilibrium
//!   (§7.2's Redis discussion).
//! * [`damon::Damon`] — **DAMON** (Solution 2: PTE scanning). Region-based
//!   monitoring with adaptive region split/merge; every sampling interval
//!   one page per region has its PTE accessed bit tested and cleared, and
//!   at each aggregation interval the hottest regions' slow-tier pages are
//!   promoted (a DAMOS `migrate_hot`-style scheme). DAMON keeps scanning
//!   and migrating at equilibrium — the behaviour that hurts Redis in the
//!   paper's Figure 9.
//!
//! Both daemons support a **record-only** mode implementing the paper's
//! §4.1 protocol (S1): identified hot pages are appended to a
//! [`daemon::HotPageLog`] *without* migrating them, so PAC can later score
//! how hot the identified pages really were.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anb;
pub mod daemon;
pub mod damon;
pub mod ifmm;
pub mod pebs;
