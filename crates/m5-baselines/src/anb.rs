//! ANB — Automatic NUMA Balancing (§2.1 Solution 1).
//!
//! The kernel's balancer periodically *unmaps* a batch of pages resident on
//! the slow node (clears their present bits and invalidates their TLB
//! entries). The next touch takes a NUMA hinting fault; the fault handler
//! treats the page as hot on the faulting node and promotes it. Costs:
//! PTE writes and (batched) TLB shootdowns at scan time, plus a soft fault
//! per identified page — the overheads the paper measures in §4.2.
//!
//! The scan period adapts like the kernel's `numa_scan_period`: it backs
//! off when faults stop producing migrations and speeds back up when they
//! do — which is why ANB incurs little overhead once migration reaches an
//! equilibrium (§7.2's Redis observation).
//!
//! The *warm-page problem* the paper demonstrates (Observation 1) emerges
//! naturally from this protocol: a single touch of a sampled page is enough
//! to mark it hot, so rarely-accessed pages that happen to be touched once
//! during the scan window get promoted alongside truly hot ones.

use crate::daemon::{migration_allowance, AdaptivePeriod, HotPageLog};
use cxl_sim::addr::Vpn;
use cxl_sim::kernel::CostKind;
use cxl_sim::memory::NodeId;
use cxl_sim::system::{MigrationDaemon, System};
use cxl_sim::time::Nanos;

/// ANB tuning knobs (defaults scaled to the simulator's time/footprint
/// scale; the kernel's equivalents are noted).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AnbConfig {
    /// Fastest scan cadence (`numa_scan_period_min`).
    pub scan_period_min: Nanos,
    /// Slowest scan cadence after back-off (`numa_scan_period_max`).
    pub scan_period_max: Nanos,
    /// Pages unmapped per scan (`numa_scan_size`-equivalent).
    pub scan_pages: usize,
    /// Unmapped pages per batched TLB shootdown IPI.
    pub shootdown_batch: usize,
    /// Whether faults trigger migration (false = §4.1 record-only mode).
    pub migrate: bool,
    /// Cold pages demoted per capacity miss.
    pub demote_batch: usize,
    /// Hot-page log capacity (the paper collects up to 128K pages).
    pub hot_log_cap: usize,
    /// Migration rate limit as a fraction of elapsed time (the kernel's
    /// NUMA migration ratelimit): faults over budget still *identify*
    /// pages but do not move them.
    pub migration_time_budget: f64,
    /// Seed for the scan cursor's starting position. The kernel's scanner
    /// resumes wherever a task's previous scan stopped, which over many
    /// tasks is effectively a random phase — starting at VPN 0 would bias
    /// the first identifications toward whatever a workload happens to
    /// place at the bottom of its address space.
    pub seed: u64,
}

impl Default for AnbConfig {
    fn default() -> AnbConfig {
        AnbConfig {
            scan_period_min: Nanos::from_millis(4),
            scan_period_max: Nanos::from_millis(64),
            scan_pages: 128,
            shootdown_batch: 32,
            migrate: true,
            demote_batch: 64,
            hot_log_cap: 128 * 1024,
            migration_time_budget: 0.25,
            seed: 0x1537,
        }
    }
}

impl AnbConfig {
    /// The §4.1 configuration: identify hot pages but never migrate.
    pub fn record_only() -> AnbConfig {
        AnbConfig {
            migrate: false,
            ..AnbConfig::default()
        }
    }
}

/// The ANB daemon.
#[derive(Clone, Debug)]
pub struct Anb {
    config: AnbConfig,
    period: AdaptivePeriod,
    wake: Option<Nanos>,
    cursor: u64,
    log: HotPageLog,
    promotions_since_scan: u64,
    faults_since_scan: u64,
    faults_taken: u64,
    pages_unmapped: u64,
}

impl Anb {
    /// Builds an ANB daemon.
    pub fn new(config: AnbConfig) -> Anb {
        Anb {
            period: AdaptivePeriod::new(config.scan_period_min, config.scan_period_max),
            wake: None,
            cursor: 0,
            log: HotPageLog::new(config.hot_log_cap),
            promotions_since_scan: 0,
            faults_since_scan: 0,
            faults_taken: 0,
            pages_unmapped: 0,
            config,
        }
    }

    /// The hot pages identified so far (§4.1 S1 list).
    pub fn hot_log(&self) -> &HotPageLog {
        &self.log
    }

    /// NUMA hinting faults handled so far.
    pub fn faults_taken(&self) -> u64 {
        self.faults_taken
    }

    /// Pages unmapped by the scanner so far.
    pub fn pages_unmapped(&self) -> u64 {
        self.pages_unmapped
    }

    /// The current (adaptive) scan period.
    pub fn scan_period(&self) -> Nanos {
        self.period.current()
    }

    /// Unmaps up to `scan_pages` CXL-resident pages, round-robin over the
    /// virtual address space.
    fn scan(&mut self, sys: &mut System) {
        let extent = sys.page_table().extent();
        if extent == 0 {
            return;
        }
        let costs = sys.config().costs;
        let mut unmapped = 0usize;
        let mut walked = 0u64;
        while unmapped < self.config.scan_pages && walked < extent {
            let vpn = Vpn(self.cursor % extent);
            self.cursor = (self.cursor + 1) % extent;
            walked += 1;
            let on_cxl = sys
                .page_table()
                .get(vpn)
                .is_some_and(|pte| pte.node() == NodeId::Cxl && pte.flags.present());
            if on_cxl {
                sys.page_table_mut().clear_present(vpn);
                sys.tlb_mut().invalidate(vpn);
                sys.daemon_bill(CostKind::PteScan, costs.pte_scan_per_entry);
                unmapped += 1;
                self.pages_unmapped += 1;
                if unmapped.is_multiple_of(self.config.shootdown_batch) {
                    sys.daemon_bill(CostKind::TlbShootdown, costs.tlb_shootdown);
                }
            }
        }
        if unmapped > 0 && !unmapped.is_multiple_of(self.config.shootdown_batch) {
            sys.daemon_bill(CostKind::TlbShootdown, costs.tlb_shootdown);
        }
    }
}

impl MigrationDaemon for Anb {
    fn name(&self) -> &str {
        if self.config.migrate {
            "anb"
        } else {
            "anb-record"
        }
    }

    fn on_start(&mut self, sys: &mut System) {
        let extent = sys.page_table().extent();
        if extent > 0 {
            self.cursor = self.config.seed % extent;
        }
        self.wake = Some(sys.now() + self.period.current());
    }

    fn next_wake(&self) -> Option<Nanos> {
        self.wake
    }

    fn on_tick(&mut self, sys: &mut System) {
        // Adapt like `numa_scan_period`: keep scanning fast while faults
        // are productive (they identify pages, and — in migrate mode —
        // those pages actually move); back off toward the maximum period
        // at equilibrium. This is why ANB "rarely unmaps pages" once
        // migration settles (§7.2's Redis observation).
        let productive = if self.config.migrate {
            self.promotions_since_scan > (self.config.scan_pages as u64) / 8
        } else {
            self.faults_since_scan > (self.config.scan_pages as u64) / 8
        };
        if productive {
            self.period.productive();
        } else {
            self.period.unproductive();
        }
        self.promotions_since_scan = 0;
        self.faults_since_scan = 0;

        // kswapd watermark trickle: NUMA balancing itself never demotes —
        // reclaim frees a small batch of cold DDR frames when the node
        // runs dry, rate-limited by the scan cadence.
        if self.config.migrate && sys.free_frames(NodeId::Ddr) < self.config.demote_batch as u64 {
            sys.mglru_age();
            sys.demote_coldest(self.config.demote_batch);
        }
        self.scan(sys);
        self.wake = Some(sys.now() + self.period.current());
    }

    fn on_fault(&mut self, vpn: Vpn, sys: &mut System) {
        self.faults_taken += 1;
        self.faults_since_scan += 1;
        if let Some(pte) = sys.page_table().get(vpn) {
            if pte.node() == NodeId::Cxl {
                self.log.record(vpn, pte.pfn);
                if self.config.migrate
                    && migration_allowance(sys, self.config.migration_time_budget) > 0
                {
                    // `migrate_misplaced_page()`: promotion succeeds only if
                    // the fast tier has a free frame right now.
                    if sys.migrate_page(vpn, NodeId::Ddr).is_ok() {
                        self.promotions_since_scan += 1;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxl_sim::config::{Placement, SystemConfig};
    use cxl_sim::system::{run, Access, AccessStream};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// A workload hammering the first `hot` pages of its region and rarely
    /// touching the rest.
    struct SkewedStream {
        region: cxl_sim::system::Region,
        hot: u64,
        rng: SmallRng,
        remaining: u64,
    }

    impl AccessStream for SkewedStream {
        fn next_access(&mut self) -> Option<Access> {
            if self.remaining == 0 {
                return None;
            }
            self.remaining -= 1;
            let page = if self.rng.gen::<f64>() < 0.9 {
                self.rng.gen_range(0..self.hot)
            } else {
                self.rng.gen_range(self.hot..self.region.pages)
            };
            let off = self.rng.gen_range(0u64..64) * 64;
            Some(Access::read(self.region.base.offset(page * 4096 + off)))
        }
    }

    fn skewed_setup(migrate: bool) -> (System, SkewedStream, Anb) {
        let mut sys = System::new(SystemConfig::small());
        let region = sys.alloc_region(64, Placement::AllOnCxl).unwrap();
        let wl = SkewedStream {
            region,
            hot: 8,
            rng: SmallRng::seed_from_u64(1),
            remaining: 200_000,
        };
        let mut cfg = if migrate {
            AnbConfig::default()
        } else {
            AnbConfig::record_only()
        };
        cfg.scan_period_min = Nanos::from_micros(100);
        cfg.scan_period_max = Nanos::from_millis(4);
        (sys, wl, Anb::new(cfg))
    }

    #[test]
    fn anb_identifies_and_promotes_hot_pages() {
        let (mut sys, mut wl, mut anb) = skewed_setup(true);
        let report = run(&mut sys, &mut wl, &mut anb, u64::MAX);
        assert!(report.hinting_faults > 0, "scanner must cause faults");
        assert!(report.migrations.promotions > 0, "faults must promote");
        assert!(!anb.hot_log().is_empty());
        // The hammered pages end up on DDR.
        let on_ddr = (0..8)
            .filter(|&p| sys.page_table().get(Vpn(p)).unwrap().node() == NodeId::Ddr)
            .count();
        assert!(on_ddr >= 6, "only {on_ddr}/8 hot pages promoted");
    }

    #[test]
    fn record_only_mode_never_migrates() {
        let (mut sys, mut wl, mut anb) = skewed_setup(false);
        let report = run(&mut sys, &mut wl, &mut anb, u64::MAX);
        assert_eq!(report.migrations.promotions, 0);
        assert_eq!(report.migrations.demotions, 0);
        assert!(!anb.hot_log().is_empty(), "still identifies pages");
        assert!(report.hinting_faults > 0);
        assert_eq!(anb.name(), "anb-record");
    }

    #[test]
    fn scan_period_backs_off_at_equilibrium() {
        let (mut sys, mut wl, mut anb) = skewed_setup(true);
        let _ = run(&mut sys, &mut wl, &mut anb, u64::MAX);
        // After the hot set is promoted, scans stop producing migrations and
        // the period must have backed off beyond the minimum.
        assert!(
            anb.scan_period() > Nanos::from_micros(100),
            "period stayed at min: {}",
            anb.scan_period()
        );
    }

    #[test]
    fn scanner_bills_kernel_time() {
        let (mut sys, mut wl, mut anb) = skewed_setup(true);
        let report = run(&mut sys, &mut wl, &mut anb, u64::MAX);
        assert!(report.kernel.of(CostKind::TlbShootdown) > Nanos::ZERO);
        assert!(report.kernel.of(CostKind::HintingFault) > Nanos::ZERO);
        assert!(anb.pages_unmapped() > 0);
        assert!(anb.faults_taken() > 0);
    }
}
