//! A Multi-Generational LRU (MGLRU) for demotion-victim selection.
//!
//! M5 relies on the Linux kernel's MGLRU to choose which DDR pages to demote
//! once the fast tier fills up (§5.2). This model keeps the resident pages of
//! the fast tier sorted into `G` generations. An *aging pass* samples each
//! page's PTE accessed bit: recently accessed pages move to the youngest
//! generation, untouched ones drift one generation older. Demotion victims
//! are taken from the oldest populated generation, FIFO within a generation.

use crate::addr::Vpn;
use crate::paging::PageTable;
use std::collections::{HashMap, VecDeque};

/// Number of generations, matching the kernel's default `MAX_NR_GENS` tiers
/// in spirit (young → old).
pub const NR_GENS: usize = 4;

/// The MGLRU bookkeeping for one node's resident pages.
#[derive(Clone, Debug, Default)]
pub struct MgLru {
    gens: [VecDeque<Vpn>; NR_GENS],
    /// Current generation of each tracked page.
    index: HashMap<Vpn, usize>,
    aging_passes: u64,
}

impl MgLru {
    /// An empty LRU.
    pub fn new() -> MgLru {
        MgLru::default()
    }

    /// Number of pages tracked.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether no pages are tracked.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Number of pages in generation `g` (0 = youngest).
    pub fn gen_len(&self, g: usize) -> usize {
        self.gens[g].len()
    }

    /// Number of aging passes performed.
    pub fn aging_passes(&self) -> u64 {
        self.aging_passes
    }

    /// Starts tracking `vpn` in the youngest generation (a page was just
    /// promoted to, or allocated on, this node).
    pub fn insert(&mut self, vpn: Vpn) {
        if self.index.contains_key(&vpn) {
            return;
        }
        self.gens[0].push_back(vpn);
        self.index.insert(vpn, 0);
    }

    /// Stops tracking `vpn` (the page was demoted or unmapped). Returns
    /// whether it was tracked.
    pub fn remove(&mut self, vpn: Vpn) -> bool {
        match self.index.remove(&vpn) {
            Some(g) => {
                if let Some(pos) = self.gens[g].iter().position(|&v| v == vpn) {
                    self.gens[g].remove(pos);
                }
                true
            }
            None => false,
        }
    }

    /// One aging pass: samples and clears each tracked page's accessed bit
    /// in `pt`. Accessed pages are refreshed into the youngest generation;
    /// idle pages move one generation older. Returns the number of PTEs
    /// scanned (the caller bills that as kernel work).
    pub fn age(&mut self, pt: &mut PageTable) -> u64 {
        self.aging_passes += 1;
        let mut scanned = 0;
        let mut next: [VecDeque<Vpn>; NR_GENS] = Default::default();
        for g in 0..NR_GENS {
            while let Some(vpn) = self.gens[g].pop_front() {
                scanned += 1;
                let new_gen = if pt.test_and_clear_accessed(vpn) {
                    0
                } else {
                    (g + 1).min(NR_GENS - 1)
                };
                next[new_gen].push_back(vpn);
                self.index.insert(vpn, new_gen);
            }
        }
        self.gens = next;
        scanned
    }

    /// Picks up to `n` demotion victims from the oldest populated
    /// generations. The victims are removed from the LRU.
    pub fn pick_coldest(&mut self, n: usize) -> Vec<Vpn> {
        let mut out = Vec::with_capacity(n);
        for g in (0..NR_GENS).rev() {
            while out.len() < n {
                match self.gens[g].pop_front() {
                    Some(vpn) => {
                        self.index.remove(&vpn);
                        out.push(vpn);
                    }
                    None => break,
                }
            }
            if out.len() == n {
                break;
            }
        }
        out
    }

    /// Iterates over all tracked pages with their generation.
    pub fn iter(&self) -> impl Iterator<Item = (Vpn, usize)> + '_ {
        self.index.iter().map(|(&v, &g)| (v, g))
    }

    /// Serializes the generations (FIFO order within each — victim order is
    /// behavior-bearing) for a checkpoint. The index is derived state,
    /// rebuilt on restore.
    pub fn save(&self, w: &mut crate::checkpoint::StateWriter) {
        for gen in &self.gens {
            w.put_u64(gen.len() as u64);
            for &vpn in gen {
                w.put_u64(vpn.0);
            }
        }
        w.put_u64(self.aging_passes);
    }

    /// Rebuilds an MGLRU from a checkpoint section.
    ///
    /// # Errors
    ///
    /// Propagates codec errors from a truncated or corrupt payload.
    pub fn restore(
        r: &mut crate::checkpoint::StateReader<'_>,
    ) -> Result<MgLru, crate::checkpoint::CodecError> {
        let mut lru = MgLru::new();
        for g in 0..NR_GENS {
            let n = r.get_u64()? as usize;
            for _ in 0..n {
                let vpn = Vpn(r.get_u64()?);
                lru.gens[g].push_back(vpn);
                lru.index.insert(vpn, g);
            }
        }
        lru.aging_passes = r.get_u64()?;
        Ok(lru)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Pfn;

    fn pt_with(pages: u64) -> PageTable {
        let mut pt = PageTable::new();
        for i in 0..pages {
            pt.map(Vpn(i), Pfn(i));
        }
        pt
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut lru = MgLru::new();
        lru.insert(Vpn(1));
        lru.insert(Vpn(1)); // idempotent
        assert_eq!(lru.len(), 1);
        assert!(lru.remove(Vpn(1)));
        assert!(!lru.remove(Vpn(1)));
        assert!(lru.is_empty());
    }

    #[test]
    fn idle_pages_age_toward_oldest_generation() {
        let mut pt = pt_with(2);
        let mut lru = MgLru::new();
        lru.insert(Vpn(0));
        lru.insert(Vpn(1));
        for pass in 1..=NR_GENS {
            let scanned = lru.age(&mut pt);
            assert_eq!(scanned, 2);
            let expect = pass.min(NR_GENS - 1);
            assert_eq!(lru.gen_len(expect), 2, "after pass {pass}");
        }
        assert_eq!(lru.aging_passes(), NR_GENS as u64);
    }

    #[test]
    fn accessed_pages_return_to_youngest() {
        let mut pt = pt_with(2);
        let mut lru = MgLru::new();
        lru.insert(Vpn(0));
        lru.insert(Vpn(1));
        lru.age(&mut pt); // both now gen 1
        pt.set_accessed(Vpn(0));
        lru.age(&mut pt);
        assert_eq!(lru.gen_len(0), 1); // page 0 refreshed
        assert_eq!(lru.gen_len(2), 1); // page 1 aged further
                                       // The accessed bit was consumed by the aging pass.
        assert!(!pt.test_and_clear_accessed(Vpn(0)));
    }

    #[test]
    fn pick_coldest_prefers_oldest_generation() {
        let mut pt = pt_with(3);
        let mut lru = MgLru::new();
        lru.insert(Vpn(0));
        lru.age(&mut pt); // 0 -> gen 1
        lru.insert(Vpn(1));
        lru.age(&mut pt); // 0 -> gen 2, 1 -> gen 1
        lru.insert(Vpn(2)); // gen 0
        let victims = lru.pick_coldest(2);
        assert_eq!(victims, vec![Vpn(0), Vpn(1)]);
        assert_eq!(lru.len(), 1);
        assert_eq!(lru.pick_coldest(5), vec![Vpn(2)]);
        assert!(lru.pick_coldest(1).is_empty());
    }

    #[test]
    fn iter_reports_generations() {
        let mut pt = pt_with(1);
        let mut lru = MgLru::new();
        lru.insert(Vpn(0));
        lru.age(&mut pt);
        let all: Vec<_> = lru.iter().collect();
        assert_eq!(all, vec![(Vpn(0), 1)]);
    }
}
