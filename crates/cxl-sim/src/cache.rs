//! A set-associative, write-allocate last-level cache (LLC).
//!
//! Profilers and trackers in a CXL controller only ever see *cache-filtered*
//! traffic: the stream of LLC miss fills and writebacks. This module supplies
//! that filter. It also models the cache pollution caused by page migration
//! (§4.1): migrating a page drags all 64 of its lines through the hierarchy,
//! evicting useful data — one of the reasons migrating sparse pages is
//! harmful.

use crate::addr::CacheLineAddr;
use serde::{Deserialize, Serialize};

/// LLC geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LlcConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
}

impl LlcConfig {
    /// Scaled default: 1 MiB, 16-way. The paper CAT-partitions a 60 MB LLC
    /// proportionally to cores (≈37 MB for 5–7 GB footprints, a ~0.6 %
    /// LLC:footprint ratio); with ~32 MiB scaled footprints, 1 MiB keeps
    /// the ratio within the same regime (~3 %).
    pub fn scaled_default() -> LlcConfig {
        LlcConfig {
            size_bytes: 1 << 20,
            ways: 16,
        }
    }

    /// A tiny cache for unit tests.
    pub fn tiny() -> LlcConfig {
        LlcConfig {
            size_bytes: 4096,
            ways: 2,
        }
    }

    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> usize {
        self.size_bytes / 64 / self.ways
    }
}

/// The outcome of one cache access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheAccess {
    /// Whether the line was already resident.
    pub hit: bool,
    /// A dirty line evicted to make room, which must be written back to DRAM.
    pub writeback: Option<CacheLineAddr>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Line {
    addr: CacheLineAddr,
    dirty: bool,
}

/// A set-associative LLC with per-set LRU replacement and write-allocate,
/// writeback semantics.
#[derive(Clone, Debug)]
pub struct Llc {
    sets: Vec<Vec<Line>>,
    ways: usize,
    hits: u64,
    misses: u64,
    writebacks: u64,
}

impl Llc {
    /// Builds an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry yields zero sets.
    pub fn new(config: LlcConfig) -> Llc {
        let n_sets = config.sets();
        assert!(n_sets > 0, "LLC too small for its associativity");
        Llc {
            sets: vec![Vec::with_capacity(config.ways); n_sets],
            ways: config.ways,
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    fn set_index(&self, line: CacheLineAddr) -> usize {
        (line.0 as usize) % self.sets.len()
    }

    /// Performs a demand access to `line`. On a miss the line is allocated
    /// (write-allocate: even stores first fill the line).
    pub fn access(&mut self, line: CacheLineAddr, is_write: bool) -> CacheAccess {
        let idx = self.set_index(line);
        let ways = self.ways;
        let set = &mut self.sets[idx];
        if let Some(pos) = set.iter().position(|l| l.addr == line) {
            let mut l = set.remove(pos);
            l.dirty |= is_write;
            set.insert(0, l);
            self.hits += 1;
            return CacheAccess {
                hit: true,
                writeback: None,
            };
        }
        self.misses += 1;
        let writeback = if set.len() == ways {
            let victim = set.pop().expect("set is full");
            if victim.dirty {
                self.writebacks += 1;
                Some(victim.addr)
            } else {
                None
            }
        } else {
            None
        };
        set.insert(
            0,
            Line {
                addr: line,
                dirty: is_write,
            },
        );
        CacheAccess {
            hit: false,
            writeback,
        }
    }

    /// Fills `line` without a demand access (page-migration pollution: the
    /// copy engine pulls the line through the hierarchy). Returns a dirty
    /// victim needing writeback, if any.
    pub fn fill(&mut self, line: CacheLineAddr, dirty: bool) -> Option<CacheLineAddr> {
        let idx = self.set_index(line);
        let ways = self.ways;
        let set = &mut self.sets[idx];
        if let Some(pos) = set.iter().position(|l| l.addr == line) {
            let mut l = set.remove(pos);
            l.dirty |= dirty;
            set.insert(0, l);
            return None;
        }
        let writeback = if set.len() == ways {
            let victim = set.pop().expect("set is full");
            if victim.dirty {
                self.writebacks += 1;
                Some(victim.addr)
            } else {
                None
            }
        } else {
            None
        };
        set.insert(0, Line { addr: line, dirty });
        writeback
    }

    /// Invalidates `line` if resident, returning it if it was dirty.
    pub fn invalidate(&mut self, line: CacheLineAddr) -> Option<CacheLineAddr> {
        let idx = self.set_index(line);
        let set = &mut self.sets[idx];
        if let Some(pos) = set.iter().position(|l| l.addr == line) {
            let victim = set.remove(pos);
            if victim.dirty {
                self.writebacks += 1;
                return Some(victim.addr);
            }
        }
        None
    }

    /// Whether `line` is currently resident (does not touch LRU state).
    pub fn contains(&self, line: CacheLineAddr) -> bool {
        let idx = self.set_index(line);
        self.sets[idx].iter().any(|l| l.addr == line)
    }

    /// Demand hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Demand misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Dirty evictions so far.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Number of resident lines.
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let c = LlcConfig::tiny();
        assert_eq!(c.sets(), 32);
        assert_eq!(LlcConfig::scaled_default().sets(), 1024);
    }

    #[test]
    fn miss_then_hit() {
        let mut llc = Llc::new(LlcConfig::tiny());
        let a = CacheLineAddr(100);
        assert!(!llc.access(a, false).hit);
        assert!(llc.access(a, false).hit);
        assert_eq!(llc.hits(), 1);
        assert_eq!(llc.misses(), 1);
    }

    #[test]
    fn write_allocate_and_writeback() {
        // tiny: 32 sets, 2 ways. Lines 0, 32, 64 collide in set 0.
        let mut llc = Llc::new(LlcConfig::tiny());
        let (a, b, c) = (CacheLineAddr(0), CacheLineAddr(32), CacheLineAddr(64));
        llc.access(a, true); // dirty
        llc.access(b, false);
        let r = llc.access(c, false); // evicts a (LRU), which is dirty
        assert!(!r.hit);
        assert_eq!(r.writeback, Some(a));
        assert_eq!(llc.writebacks(), 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut llc = Llc::new(LlcConfig::tiny());
        llc.access(CacheLineAddr(0), false);
        llc.access(CacheLineAddr(32), false);
        let r = llc.access(CacheLineAddr(64), false);
        assert_eq!(r.writeback, None);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut llc = Llc::new(LlcConfig::tiny());
        llc.access(CacheLineAddr(0), false); // clean fill
        llc.access(CacheLineAddr(0), true); // dirtied by write hit
        llc.access(CacheLineAddr(32), false);
        llc.access(CacheLineAddr(0), false); // make 32 the LRU
        let r = llc.access(CacheLineAddr(64), false); // evicts 32 (clean)
        assert_eq!(r.writeback, None);
        let r = llc.access(CacheLineAddr(96), false); // evicts 0 (dirty)
        assert_eq!(r.writeback, Some(CacheLineAddr(0)));
    }

    #[test]
    fn fill_pollutes_and_can_evict() {
        let mut llc = Llc::new(LlcConfig::tiny());
        llc.access(CacheLineAddr(0), true);
        llc.access(CacheLineAddr(32), false);
        // Migration-style fill evicts the dirty LRU line 0.
        llc.access(CacheLineAddr(32), false); // make 0 LRU
        let wb = llc.fill(CacheLineAddr(64), false);
        assert_eq!(wb, Some(CacheLineAddr(0)));
        assert!(llc.contains(CacheLineAddr(64)));
    }

    #[test]
    fn invalidate_returns_dirty_line() {
        let mut llc = Llc::new(LlcConfig::tiny());
        llc.access(CacheLineAddr(5), true);
        assert_eq!(llc.invalidate(CacheLineAddr(5)), Some(CacheLineAddr(5)));
        assert!(!llc.contains(CacheLineAddr(5)));
        assert_eq!(llc.invalidate(CacheLineAddr(5)), None);
    }
}
