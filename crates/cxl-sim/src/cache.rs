//! A set-associative, write-allocate last-level cache (LLC).
//!
//! Profilers and trackers in a CXL controller only ever see *cache-filtered*
//! traffic: the stream of LLC miss fills and writebacks. This module supplies
//! that filter. It also models the cache pollution caused by page migration
//! (§4.1): migrating a page drags all 64 of its lines through the hierarchy,
//! evicting useful data — one of the reasons migrating sparse pages is
//! harmful.
//!
//! # Layout
//!
//! The cache is one contiguous `Vec<u64>` of `sets × ways` packed entries —
//! no per-set allocation, no pointer chasing. An entry packs the line
//! address in bits 0..63 and the dirty flag in bit 63; `u64::MAX` is the
//! empty sentinel (a real line address never reaches 2^63 − 1). Under the
//! default [`ReplacementPolicy::ExactLru`] each set's slice is
//! recency-ordered (way 0 = MRU, valid entries form a prefix), which
//! reproduces the original nested-`Vec` LRU decisions bit for bit. The
//! opt-in [`ReplacementPolicy::TreeLru`] keeps entries in stable ways and
//! drives victim selection from a per-set pseudo-LRU bit tree instead —
//! cheaper per touch, but it approximates LRU, so it is *not* the default:
//! golden traces are pinned to exact LRU.

use crate::addr::CacheLineAddr;
use serde::{Deserialize, Serialize};

/// LLC geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LlcConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
}

impl LlcConfig {
    /// Scaled default: 1 MiB, 16-way. The paper CAT-partitions a 60 MB LLC
    /// proportionally to cores (≈37 MB for 5–7 GB footprints, a ~0.6 %
    /// LLC:footprint ratio); with ~32 MiB scaled footprints, 1 MiB keeps
    /// the ratio within the same regime (~3 %).
    pub fn scaled_default() -> LlcConfig {
        LlcConfig {
            size_bytes: 1 << 20,
            ways: 16,
        }
    }

    /// A tiny cache for unit tests.
    pub fn tiny() -> LlcConfig {
        LlcConfig {
            size_bytes: 4096,
            ways: 2,
        }
    }

    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> usize {
        self.size_bytes / 64 / self.ways
    }
}

/// Victim-selection policy for [`Llc`] (and the TLB, which shares the
/// flat-array design).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ReplacementPolicy {
    /// True LRU, order-encoded within each set's contiguous slice. The
    /// default: byte-compatible with the original nested-`Vec`
    /// implementation and with every checked-in golden trace.
    #[default]
    ExactLru,
    /// Tree pseudo-LRU: a per-set binary bit tree points at the
    /// approximately-least-recent way. O(log ways) bit flips per touch
    /// instead of an O(ways) shift, at the cost of approximating LRU.
    /// Requires power-of-two associativity.
    TreeLru,
}

/// The outcome of one cache access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheAccess {
    /// Whether the line was already resident.
    pub hit: bool,
    /// A dirty line evicted to make room, which must be written back to DRAM.
    pub writeback: Option<CacheLineAddr>,
}

/// Empty-slot sentinel: all ones (dirty bit set *and* an impossible
/// address), so a single compare rules a slot out.
const EMPTY: u64 = u64::MAX;
/// Dirty flag, packed above the 63 usable address bits.
const DIRTY: u64 = 1 << 63;
const ADDR_MASK: u64 = !DIRTY;

/// "No writeback" sentinel in [`Llc::access_grouped`]'s output array (a
/// real line address never reaches `u64::MAX`).
pub const NO_WRITEBACK: u64 = u64::MAX;

/// Write flag in [`Llc::access_grouped`]'s packed request words (bit 63,
/// above the 63 usable address bits — the same packing as the entry array).
pub const REQ_WRITE_BIT: u64 = DIRTY;

/// Batch density (requests per set) above which [`Llc::access_grouped`]
/// switches from the prefetched in-order probe to the counting-sort
/// grouped sweep. Below this, most sets are touched at most once, so
/// grouping has no same-set locality to exploit and only adds sort
/// passes; well above it, consecutive same-set probes amortize each
/// set's entry lines across several accesses.
const GROUP_MIN_REQS_PER_SET: usize = 4;

/// Reusable counting-sort scratch for [`Llc::access_grouped`].
///
/// All buffers are preallocated to the cache's set count on first use and
/// only the touched entries are reset between batches, so a batch over `n`
/// accesses costs `O(n)` regardless of how many sets the cache has.
#[derive(Clone, Debug, Default)]
pub struct LlcSetScratch {
    /// Per-set access count for the current batch (zeroed lazily).
    count: Vec<u32>,
    /// Per-set write cursor while scattering (valid only for touched sets).
    cursor: Vec<u32>,
    /// Sets touched by the current batch, in first-appearance order.
    touched: Vec<u32>,
    /// Per-access set index.
    set_of: Vec<u32>,
    /// Access indices grouped by set, preserving per-set arrival order.
    order: Vec<u32>,
}

impl LlcSetScratch {
    fn ensure(&mut self, n_sets: usize) {
        if self.count.len() < n_sets {
            self.count.resize(n_sets, 0);
            self.cursor.resize(n_sets, 0);
        }
    }
}

/// A set-associative LLC with per-set LRU replacement and write-allocate,
/// writeback semantics, stored as a single flat array of packed entries.
#[derive(Clone, Debug)]
pub struct Llc {
    /// `n_sets × ways` packed entries; see module docs for the layout.
    entries: Vec<u64>,
    /// Per-set pseudo-LRU bit trees; empty unless `policy` is `TreeLru`.
    plru: Vec<u64>,
    policy: ReplacementPolicy,
    n_sets: usize,
    /// `n_sets − 1` when `n_sets` is a power of two (mask indexing), else 0.
    set_mask: usize,
    ways: usize,
    hits: u64,
    misses: u64,
    writebacks: u64,
}

#[inline]
fn pack(addr: CacheLineAddr, dirty: bool) -> u64 {
    debug_assert!(addr.0 < DIRTY, "line address overflows packed entry");
    addr.0 | if dirty { DIRTY } else { 0 }
}

/// Marks `way` most-recently-used: each tree bit on the root→leaf path is
/// pointed *away* from the way just touched.
#[inline]
pub(crate) fn plru_touch(tree: &mut u64, levels: u32, way: usize) {
    let mut node = 1usize;
    for level in (0..levels).rev() {
        let took_right = (way >> level) & 1;
        if took_right == 1 {
            *tree &= !(1u64 << node);
        } else {
            *tree |= 1u64 << node;
        }
        node = node * 2 + took_right;
    }
}

/// Follows the tree bits root→leaf to the pseudo-least-recent way.
#[inline]
pub(crate) fn plru_victim(tree: u64, levels: u32) -> usize {
    let mut node = 1usize;
    let mut way = 0usize;
    for _ in 0..levels {
        let bit = ((tree >> node) & 1) as usize;
        way = way * 2 + bit;
        node = node * 2 + bit;
    }
    way
}

/// Probes one exact-LRU set slice (valid entries form a recency-ordered
/// prefix, way 0 = MRU). The single source of the replacement decision,
/// shared by [`Llc`]'s whole-cache probes and [`LlcShard`]'s per-shard
/// probes so the two can never drift apart.
#[inline]
fn lru_probe_set(
    set: &mut [u64],
    line: CacheLineAddr,
    is_write: bool,
    hits: &mut u64,
    misses: &mut u64,
    writebacks: &mut u64,
) -> CacheAccess {
    let mut len = set.len();
    for (i, &e) in set.iter().enumerate() {
        if e == EMPTY {
            len = i;
            break;
        }
        if e & ADDR_MASK == line.0 {
            let promoted = e | if is_write { DIRTY } else { 0 };
            set.copy_within(0..i, 1);
            set[0] = promoted;
            *hits += 1;
            return CacheAccess {
                hit: true,
                writeback: None,
            };
        }
    }
    *misses += 1;
    let writeback = if len == set.len() {
        let victim = set[len - 1];
        if victim & DIRTY != 0 {
            *writebacks += 1;
            Some(CacheLineAddr(victim & ADDR_MASK))
        } else {
            None
        }
    } else {
        len += 1;
        None
    };
    set.copy_within(0..len - 1, 1);
    set[0] = pack(line, is_write);
    CacheAccess {
        hit: false,
        writeback,
    }
}

/// Probes one tree-pLRU set slice (stable ways, per-set bit tree).
/// Shared by [`Llc`] and [`LlcShard`], like [`lru_probe_set`].
#[inline]
#[allow(clippy::too_many_arguments)]
fn plru_probe_set(
    set: &mut [u64],
    tree: &mut u64,
    levels: u32,
    line: CacheLineAddr,
    is_write: bool,
    hits: &mut u64,
    misses: &mut u64,
    writebacks: &mut u64,
) -> CacheAccess {
    let mut empty_way = None;
    for (w, &e) in set.iter().enumerate() {
        if e == EMPTY {
            if empty_way.is_none() {
                empty_way = Some(w);
            }
            continue;
        }
        if e & ADDR_MASK == line.0 {
            set[w] = e | if is_write { DIRTY } else { 0 };
            plru_touch(tree, levels, w);
            *hits += 1;
            return CacheAccess {
                hit: true,
                writeback: None,
            };
        }
    }
    *misses += 1;
    let (way, writeback) = match empty_way {
        Some(w) => (w, None),
        None => {
            let w = plru_victim(*tree, levels);
            let victim = set[w];
            if victim & DIRTY != 0 {
                *writebacks += 1;
                (w, Some(CacheLineAddr(victim & ADDR_MASK)))
            } else {
                (w, None)
            }
        }
    };
    set[way] = pack(line, is_write);
    plru_touch(tree, levels, way);
    CacheAccess {
        hit: false,
        writeback,
    }
}

impl Llc {
    /// Builds an empty cache with the default exact-LRU policy.
    ///
    /// # Panics
    ///
    /// Panics if the geometry yields zero sets.
    pub fn new(config: LlcConfig) -> Llc {
        Llc::with_policy(config, ReplacementPolicy::ExactLru)
    }

    /// Builds an empty cache under an explicit replacement policy.
    ///
    /// # Panics
    ///
    /// Panics if the geometry yields zero sets, or if `TreeLru` is asked
    /// for with a non-power-of-two associativity.
    pub fn with_policy(config: LlcConfig, policy: ReplacementPolicy) -> Llc {
        let n_sets = config.sets();
        assert!(n_sets > 0, "LLC too small for its associativity");
        if policy == ReplacementPolicy::TreeLru {
            assert!(
                config.ways.is_power_of_two() && config.ways <= 64,
                "tree pseudo-LRU needs power-of-two associativity ≤ 64"
            );
        }
        Llc {
            entries: vec![EMPTY; n_sets * config.ways],
            plru: if policy == ReplacementPolicy::TreeLru {
                vec![0; n_sets]
            } else {
                Vec::new()
            },
            policy,
            n_sets,
            set_mask: if n_sets.is_power_of_two() {
                n_sets - 1
            } else {
                0
            },
            ways: config.ways,
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    /// The replacement policy this cache was built with.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// Serializes the packed entry array (LRU order included), pseudo-LRU
    /// trees, and hit/miss/writeback counters for a checkpoint. Geometry
    /// and policy are rebuilt from configuration on restore.
    pub fn save(&self, w: &mut crate::checkpoint::StateWriter) {
        w.put_u64_slice(&self.entries);
        w.put_u64_slice(&self.plru);
        w.put_u64(self.hits);
        w.put_u64(self.misses);
        w.put_u64(self.writebacks);
    }

    /// Rebuilds a cache from a checkpoint section.
    ///
    /// # Errors
    ///
    /// Propagates codec errors; rejects arrays that do not match the
    /// geometry implied by `config`/`policy`.
    pub fn restore(
        config: LlcConfig,
        policy: ReplacementPolicy,
        r: &mut crate::checkpoint::StateReader<'_>,
    ) -> Result<Llc, crate::checkpoint::CodecError> {
        let mut llc = Llc::with_policy(config, policy);
        let entries = r.get_u64_vec()?;
        if entries.len() != llc.entries.len() {
            return Err(crate::checkpoint::CodecError::BadValue {
                what: "llc entry count",
                value: entries.len() as u64,
            });
        }
        let plru = r.get_u64_vec()?;
        if plru.len() != llc.plru.len() {
            return Err(crate::checkpoint::CodecError::BadValue {
                what: "llc plru tree count",
                value: plru.len() as u64,
            });
        }
        llc.entries = entries;
        llc.plru = plru;
        llc.hits = r.get_u64()?;
        llc.misses = r.get_u64()?;
        llc.writebacks = r.get_u64()?;
        Ok(llc)
    }

    #[inline]
    fn set_index(&self, line: CacheLineAddr) -> usize {
        if self.set_mask != 0 {
            (line.0 as usize) & self.set_mask
        } else {
            (line.0 as usize) % self.n_sets
        }
    }

    #[inline]
    fn levels(&self) -> u32 {
        self.ways.trailing_zeros()
    }

    /// Prefetch hint for the entry slice of `set_idx`: touch-loads one
    /// entry per cache line of the set (the crate forbids `unsafe`, so
    /// this is a `black_box` read rather than a prefetch intrinsic — an
    /// out-of-order core overlaps the resulting fills all the same). The
    /// batch probe issues this a few requests ahead of the demand access,
    /// so the set's lines are in flight while earlier probes retire — the
    /// memory-level parallelism a serial probe loop cannot express. No
    /// observable effect: the loaded values are discarded.
    #[inline]
    fn prefetch_set(&self, set_idx: usize) {
        let base = set_idx * self.ways;
        std::hint::black_box(self.entries[base]);
        if self.ways > 8 {
            std::hint::black_box(self.entries[base + 8]);
        }
    }

    /// Performs a demand access to `line`. On a miss the line is allocated
    /// (write-allocate: even stores first fill the line).
    #[inline]
    pub fn access(&mut self, line: CacheLineAddr, is_write: bool) -> CacheAccess {
        match self.policy {
            ReplacementPolicy::ExactLru => self.access_lru(line, is_write),
            ReplacementPolicy::TreeLru => self.access_plru(line, is_write),
        }
    }

    /// One demand access with the set index already computed (the batch
    /// probe hands sets out in grouped order).
    #[inline]
    fn access_at(&mut self, set_idx: usize, line: CacheLineAddr, is_write: bool) -> CacheAccess {
        match self.policy {
            ReplacementPolicy::ExactLru => self.access_lru_at(set_idx, line, is_write),
            ReplacementPolicy::TreeLru => self.access_plru_at(set_idx, line, is_write),
        }
    }

    /// Probes the cache for a whole batch of packed requests (`line | `
    /// [`REQ_WRITE_BIT`]), choosing between two byte-identical probe
    /// orders by batch density.
    ///
    /// `hit_out[i]` / `wb_out[i]` ([`NO_WRITEBACK`] when none) receive the
    /// outcome of request `i` in the *original* order.
    ///
    /// **Dense batches** (several requests per set on average) are grouped
    /// by set with a stable counting sort so the per-set entry slice stays
    /// cache-resident across consecutive probes. Grouping preserves exact
    /// replacement semantics: a set's entries are touched only by accesses
    /// mapping to that set, and within each group the original arrival
    /// order is kept (the scatter is stable), so every hit/miss/victim/
    /// writeback decision — LRU recency order and pLRU tree alike — is
    /// identical to calling [`Llc::access`] per request in order. Only the
    /// interleaving *between* independent sets changes, which no cache
    /// state observes.
    ///
    /// **Sparse batches** (the common case: quiet-segment blocks are a few
    /// hundred to a few thousand requests over ~1 K sets, so most sets see
    /// at most one probe) gain nothing from grouping — there is no
    /// same-set reuse to create — and would pay the sort's extra passes.
    /// They run in original order with a [`Llc::prefetch_set`] lookahead
    /// instead: the whole request vector is known up front, so the probe
    /// `i` can start the line fills for request `i + 8` concurrently.
    pub fn access_grouped(
        &mut self,
        reqs: &[u64],
        hit_out: &mut Vec<bool>,
        wb_out: &mut Vec<u64>,
        scratch: &mut LlcSetScratch,
    ) {
        let n = reqs.len();
        hit_out.clear();
        hit_out.resize(n, false);
        wb_out.clear();
        wb_out.resize(n, NO_WRITEBACK);
        if n < GROUP_MIN_REQS_PER_SET * self.n_sets {
            // Probe in original order, one warm window at a time: a burst
            // of independent touch-loads pulls every set the window will
            // probe into L1 with full memory-level parallelism, then the
            // (serially dependent) probe loop runs against warm lines.
            // A window of 32 touches at most 64 cache lines — comfortably
            // L1-resident until the probe reaches them.
            const WARM_WINDOW: usize = 32;
            match self.policy {
                // Replacement policy hoisted out of the loop. Under exact
                // LRU, any probe — hit or fill — leaves its line at way 0
                // (MRU), so a *consecutive* re-probe of the same line
                // would scan exactly one entry and its move-to-front
                // would be a no-op: the only state changes are the dirty
                // bit and the hit counter, which the fast path applies
                // directly. Word-granular streams revisit the same 64 B
                // line in runs, so this skips most probes entirely.
                ReplacementPolicy::ExactLru => {
                    let mut prev = EMPTY; // no line address is ever EMPTY
                    let mut prev_base = 0usize;
                    let mut w0 = 0usize;
                    while w0 < n {
                        let w1 = (w0 + WARM_WINDOW).min(n);
                        for &r in &reqs[w0..w1] {
                            self.prefetch_set(self.set_index(CacheLineAddr(r & ADDR_MASK)));
                        }
                        for i in w0..w1 {
                            let r = reqs[i];
                            let line = r & ADDR_MASK;
                            if line == prev {
                                if r & REQ_WRITE_BIT != 0 {
                                    self.entries[prev_base] |= DIRTY;
                                }
                                self.hits += 1;
                                hit_out[i] = true;
                                continue;
                            }
                            let set_idx = self.set_index(CacheLineAddr(line));
                            let res = self.access_lru_at(
                                set_idx,
                                CacheLineAddr(line),
                                r & REQ_WRITE_BIT != 0,
                            );
                            hit_out[i] = res.hit;
                            if let Some(wb) = res.writeback {
                                wb_out[i] = wb.0;
                            }
                            prev = line;
                            prev_base = set_idx * self.ways;
                        }
                        w0 = w1;
                    }
                }
                ReplacementPolicy::TreeLru => {
                    let mut w0 = 0usize;
                    while w0 < n {
                        let w1 = (w0 + WARM_WINDOW).min(n);
                        for &r in &reqs[w0..w1] {
                            self.prefetch_set(self.set_index(CacheLineAddr(r & ADDR_MASK)));
                        }
                        for i in w0..w1 {
                            let line = CacheLineAddr(reqs[i] & ADDR_MASK);
                            let res = self.access_plru_at(
                                self.set_index(line),
                                line,
                                reqs[i] & REQ_WRITE_BIT != 0,
                            );
                            hit_out[i] = res.hit;
                            if let Some(wb) = res.writeback {
                                wb_out[i] = wb.0;
                            }
                        }
                        w0 = w1;
                    }
                }
            }
            return;
        }
        scratch.ensure(self.n_sets);
        scratch.set_of.clear();
        scratch.touched.clear();
        for &r in reqs {
            let si = self.set_index(CacheLineAddr(r & ADDR_MASK)) as u32;
            scratch.set_of.push(si);
            if scratch.count[si as usize] == 0 {
                scratch.touched.push(si);
            }
            scratch.count[si as usize] += 1;
        }
        let mut off = 0u32;
        for &si in &scratch.touched {
            scratch.cursor[si as usize] = off;
            off += scratch.count[si as usize];
        }
        scratch.order.clear();
        scratch.order.resize(n, 0);
        for (i, &si) in scratch.set_of.iter().enumerate() {
            let c = &mut scratch.cursor[si as usize];
            scratch.order[*c as usize] = i as u32;
            *c += 1;
        }
        let mut pos = 0usize;
        for (j, &si) in scratch.touched.iter().enumerate() {
            if let Some(&next) = scratch.touched.get(j + 1) {
                self.prefetch_set(next as usize);
            }
            let cnt = scratch.count[si as usize] as usize;
            for &i in &scratch.order[pos..pos + cnt] {
                let i = i as usize;
                let r = reqs[i];
                let res = self.access_at(
                    si as usize,
                    CacheLineAddr(r & ADDR_MASK),
                    r & REQ_WRITE_BIT != 0,
                );
                hit_out[i] = res.hit;
                if let Some(wb) = res.writeback {
                    wb_out[i] = wb.0;
                }
            }
            pos += cnt;
            scratch.count[si as usize] = 0;
        }
    }

    fn access_lru(&mut self, line: CacheLineAddr, is_write: bool) -> CacheAccess {
        self.access_lru_at(self.set_index(line), line, is_write)
    }

    #[inline]
    fn access_lru_at(
        &mut self,
        set_idx: usize,
        line: CacheLineAddr,
        is_write: bool,
    ) -> CacheAccess {
        let base = set_idx * self.ways;
        lru_probe_set(
            &mut self.entries[base..base + self.ways],
            line,
            is_write,
            &mut self.hits,
            &mut self.misses,
            &mut self.writebacks,
        )
    }

    fn access_plru(&mut self, line: CacheLineAddr, is_write: bool) -> CacheAccess {
        self.access_plru_at(self.set_index(line), line, is_write)
    }

    #[inline]
    fn access_plru_at(&mut self, idx: usize, line: CacheLineAddr, is_write: bool) -> CacheAccess {
        let base = idx * self.ways;
        let levels = self.levels();
        plru_probe_set(
            &mut self.entries[base..base + self.ways],
            &mut self.plru[idx],
            levels,
            line,
            is_write,
            &mut self.hits,
            &mut self.misses,
            &mut self.writebacks,
        )
    }

    /// Fills `line` without a demand access (page-migration pollution: the
    /// copy engine pulls the line through the hierarchy). Returns a dirty
    /// victim needing writeback, if any.
    pub fn fill(&mut self, line: CacheLineAddr, dirty: bool) -> Option<CacheLineAddr> {
        match self.policy {
            ReplacementPolicy::ExactLru => self.fill_lru(line, dirty),
            ReplacementPolicy::TreeLru => self.fill_plru(line, dirty),
        }
    }

    fn fill_lru(&mut self, line: CacheLineAddr, dirty: bool) -> Option<CacheLineAddr> {
        let base = self.set_index(line) * self.ways;
        let set = &mut self.entries[base..base + self.ways];
        let mut len = set.len();
        for (i, &e) in set.iter().enumerate() {
            if e == EMPTY {
                len = i;
                break;
            }
            if e & ADDR_MASK == line.0 {
                let promoted = e | if dirty { DIRTY } else { 0 };
                set.copy_within(0..i, 1);
                set[0] = promoted;
                return None;
            }
        }
        let writeback = if len == set.len() {
            let victim = set[len - 1];
            if victim & DIRTY != 0 {
                self.writebacks += 1;
                Some(CacheLineAddr(victim & ADDR_MASK))
            } else {
                None
            }
        } else {
            len += 1;
            None
        };
        set.copy_within(0..len - 1, 1);
        set[0] = pack(line, dirty);
        writeback
    }

    fn fill_plru(&mut self, line: CacheLineAddr, dirty: bool) -> Option<CacheLineAddr> {
        let idx = self.set_index(line);
        let base = idx * self.ways;
        let levels = self.levels();
        let set = &mut self.entries[base..base + self.ways];
        let mut empty_way = None;
        for (w, &e) in set.iter().enumerate() {
            if e == EMPTY {
                if empty_way.is_none() {
                    empty_way = Some(w);
                }
                continue;
            }
            if e & ADDR_MASK == line.0 {
                set[w] = e | if dirty { DIRTY } else { 0 };
                plru_touch(&mut self.plru[idx], levels, w);
                return None;
            }
        }
        let (way, writeback) = match empty_way {
            Some(w) => (w, None),
            None => {
                let w = plru_victim(self.plru[idx], levels);
                let victim = set[w];
                if victim & DIRTY != 0 {
                    self.writebacks += 1;
                    (w, Some(CacheLineAddr(victim & ADDR_MASK)))
                } else {
                    (w, None)
                }
            }
        };
        set[way] = pack(line, dirty);
        plru_touch(&mut self.plru[idx], levels, way);
        writeback
    }

    /// Invalidates `line` if resident, returning it if it was dirty.
    pub fn invalidate(&mut self, line: CacheLineAddr) -> Option<CacheLineAddr> {
        let base = self.set_index(line) * self.ways;
        let set = &mut self.entries[base..base + self.ways];
        for (i, &e) in set.iter().enumerate() {
            if e == EMPTY {
                break;
            }
            if e & ADDR_MASK == line.0 {
                match self.policy {
                    ReplacementPolicy::ExactLru => {
                        // Close the gap to keep the valid prefix contiguous.
                        set.copy_within(i + 1.., i);
                        set[self.ways - 1] = EMPTY;
                    }
                    ReplacementPolicy::TreeLru => set[i] = EMPTY,
                }
                if e & DIRTY != 0 {
                    self.writebacks += 1;
                    return Some(CacheLineAddr(e & ADDR_MASK));
                }
                return None;
            }
        }
        None
    }

    /// Whether `line` is currently resident (does not touch LRU state).
    #[inline]
    pub fn contains(&self, line: CacheLineAddr) -> bool {
        let base = self.set_index(line) * self.ways;
        self.entries[base..base + self.ways]
            .iter()
            .any(|&e| e != EMPTY && e & ADDR_MASK == line.0)
    }

    /// Demand hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Demand misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Dirty evictions so far.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Number of resident lines.
    pub fn occupancy(&self) -> usize {
        self.entries.iter().filter(|&&e| e != EMPTY).count()
    }

    /// Number of sets (the address space the sharded driver partitions).
    pub fn n_sets(&self) -> usize {
        self.n_sets
    }

    /// The set a packed request word (`line | ` [`REQ_WRITE_BIT`]) maps
    /// to. The sharded driver's partition pass routes each request to the
    /// lane of the shard owning this set.
    #[inline]
    pub fn req_set(&self, req: u64) -> u32 {
        self.set_index(CacheLineAddr(req & ADDR_MASK)) as u32
    }

    /// Splits the cache into disjoint mutable views over contiguous set
    /// ranges, one per shard. `bounds` must tile `0..n_sets` in ascending
    /// order (the shape [`crate::oplog::Partition::ranges`] produces;
    /// empty ranges are fine). Entries are stored set-major, so each
    /// view's slice is contiguous and the split is a plain `split_at_mut`
    /// chain — no `unsafe`, no overlap by construction.
    ///
    /// Hit/miss/writeback counts accumulate in each shard view and must
    /// be merged back with [`Llc::merge_shard_counters`] at the sync
    /// point; the sums are commutative, so the merge order cannot affect
    /// the totals.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` does not tile `0..n_sets` in order.
    pub fn shards<'a>(&'a mut self, bounds: &[std::ops::Range<usize>]) -> Vec<LlcShard<'a>> {
        let has_plru = self.policy == ReplacementPolicy::TreeLru;
        let levels = self.levels();
        let mut out = Vec::with_capacity(bounds.len());
        let mut entries = &mut self.entries[..];
        let mut plru = &mut self.plru[..];
        let mut next = 0usize;
        for r in bounds {
            assert_eq!(r.start, next, "shard ranges must tile the sets in order");
            assert!(r.end <= self.n_sets, "shard range past the last set");
            next = r.end;
            let n = r.end - r.start;
            let (e, rest) = entries.split_at_mut(n * self.ways);
            entries = rest;
            let (p, rest) = plru.split_at_mut(if has_plru { n } else { 0 });
            plru = rest;
            out.push(LlcShard {
                entries: e,
                plru: p,
                policy: self.policy,
                ways: self.ways,
                levels,
                n_sets: self.n_sets,
                set_mask: self.set_mask,
                set_lo: r.start,
                hits: 0,
                misses: 0,
                writebacks: 0,
            });
        }
        assert_eq!(next, self.n_sets, "shard ranges must cover every set");
        out
    }

    /// Folds shard-probe counters back into the cache's totals.
    pub fn merge_shard_counters(&mut self, counters: &[LlcShardCounters]) {
        for c in counters {
            self.hits += c.hits;
            self.misses += c.misses;
            self.writebacks += c.writebacks;
        }
    }
}

/// Hit/miss/writeback counts accumulated by one [`LlcShard`] probe pass,
/// handed back to the owning [`Llc`] at the sync point.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LlcShardCounters {
    /// Demand hits observed by the shard.
    pub hits: u64,
    /// Demand misses observed by the shard.
    pub misses: u64,
    /// Dirty evictions observed by the shard.
    pub writebacks: u64,
}

/// A mutable view of one shard's contiguous set range, produced by
/// [`Llc::shards`]. A worker probes its lane of requests against the view
/// while other workers do the same against theirs; the set states evolve
/// exactly as a sequential in-order probe would leave them, because each
/// set only ever sees its own requests in their original arrival order
/// (the lane preserves it) and sets are independent.
#[derive(Debug)]
pub struct LlcShard<'a> {
    /// This shard's `sets × ways` packed entries.
    entries: &'a mut [u64],
    /// This shard's pLRU trees (empty under exact LRU).
    plru: &'a mut [u64],
    policy: ReplacementPolicy,
    ways: usize,
    levels: u32,
    /// Whole-cache set count (set indexing is global, then rebased).
    n_sets: usize,
    /// Whole-cache set mask (see [`Llc::set_index`]).
    set_mask: usize,
    /// First global set index owned by this shard.
    set_lo: usize,
    hits: u64,
    misses: u64,
    writebacks: u64,
}

impl LlcShard<'_> {
    /// Global set index of a packed request (same mapping as
    /// [`Llc::req_set`]).
    #[inline]
    fn req_set(&self, req: u64) -> usize {
        let line = (req & ADDR_MASK) as usize;
        if self.set_mask != 0 {
            line & self.set_mask
        } else {
            line % self.n_sets
        }
    }

    /// Probes every packed request in `reqs` in lane order (each must map
    /// to a set this shard owns). `hit_out[i]` / `wb_out[i]`
    /// ([`NO_WRITEBACK`] when none) receive the outcomes, to be scattered
    /// back to dense positions by the caller.
    ///
    /// Mirrors the sparse-regime loop of [`Llc::access_grouped`],
    /// including the exact-LRU consecutive-same-line fast path: after any
    /// probe of `line`, that line is its set's MRU, and no other shard
    /// can touch this shard's sets — so a consecutive lane re-probe of
    /// the same line is certainly a hit whose move-to-front is a no-op,
    /// exactly as in the sequential engine.
    pub fn probe(&mut self, reqs: &[u64], hit_out: &mut [bool], wb_out: &mut [u64]) {
        debug_assert_eq!(reqs.len(), hit_out.len());
        debug_assert_eq!(reqs.len(), wb_out.len());
        const WARM_WINDOW: usize = 32;
        let n = reqs.len();
        let mut prev = EMPTY; // no line address is ever EMPTY
        let mut prev_base = 0usize;
        let mut w0 = 0usize;
        while w0 < n {
            let w1 = (w0 + WARM_WINDOW).min(n);
            for &r in &reqs[w0..w1] {
                let base = (self.req_set(r) - self.set_lo) * self.ways;
                std::hint::black_box(self.entries[base]);
                if self.ways > 8 {
                    std::hint::black_box(self.entries[base + 8]);
                }
            }
            for i in w0..w1 {
                let r = reqs[i];
                let line = r & ADDR_MASK;
                if self.policy == ReplacementPolicy::ExactLru && line == prev {
                    if r & REQ_WRITE_BIT != 0 {
                        self.entries[prev_base] |= DIRTY;
                    }
                    self.hits += 1;
                    hit_out[i] = true;
                    continue;
                }
                let local = self.req_set(r) - self.set_lo;
                let base = local * self.ways;
                let set = &mut self.entries[base..base + self.ways];
                let res = match self.policy {
                    ReplacementPolicy::ExactLru => lru_probe_set(
                        set,
                        CacheLineAddr(line),
                        r & REQ_WRITE_BIT != 0,
                        &mut self.hits,
                        &mut self.misses,
                        &mut self.writebacks,
                    ),
                    ReplacementPolicy::TreeLru => plru_probe_set(
                        set,
                        &mut self.plru[local],
                        self.levels,
                        CacheLineAddr(line),
                        r & REQ_WRITE_BIT != 0,
                        &mut self.hits,
                        &mut self.misses,
                        &mut self.writebacks,
                    ),
                };
                hit_out[i] = res.hit;
                if let Some(wb) = res.writeback {
                    wb_out[i] = wb.0;
                }
                prev = line;
                prev_base = base;
            }
            w0 = w1;
        }
    }

    /// The counters this shard accumulated, for
    /// [`Llc::merge_shard_counters`].
    pub fn counters(&self) -> LlcShardCounters {
        LlcShardCounters {
            hits: self.hits,
            misses: self.misses,
            writebacks: self.writebacks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let c = LlcConfig::tiny();
        assert_eq!(c.sets(), 32);
        assert_eq!(LlcConfig::scaled_default().sets(), 1024);
    }

    #[test]
    fn miss_then_hit() {
        let mut llc = Llc::new(LlcConfig::tiny());
        let a = CacheLineAddr(100);
        assert!(!llc.access(a, false).hit);
        assert!(llc.access(a, false).hit);
        assert_eq!(llc.hits(), 1);
        assert_eq!(llc.misses(), 1);
    }

    #[test]
    fn write_allocate_and_writeback() {
        // tiny: 32 sets, 2 ways. Lines 0, 32, 64 collide in set 0.
        let mut llc = Llc::new(LlcConfig::tiny());
        let (a, b, c) = (CacheLineAddr(0), CacheLineAddr(32), CacheLineAddr(64));
        llc.access(a, true); // dirty
        llc.access(b, false);
        let r = llc.access(c, false); // evicts a (LRU), which is dirty
        assert!(!r.hit);
        assert_eq!(r.writeback, Some(a));
        assert_eq!(llc.writebacks(), 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut llc = Llc::new(LlcConfig::tiny());
        llc.access(CacheLineAddr(0), false);
        llc.access(CacheLineAddr(32), false);
        let r = llc.access(CacheLineAddr(64), false);
        assert_eq!(r.writeback, None);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut llc = Llc::new(LlcConfig::tiny());
        llc.access(CacheLineAddr(0), false); // clean fill
        llc.access(CacheLineAddr(0), true); // dirtied by write hit
        llc.access(CacheLineAddr(32), false);
        llc.access(CacheLineAddr(0), false); // make 32 the LRU
        let r = llc.access(CacheLineAddr(64), false); // evicts 32 (clean)
        assert_eq!(r.writeback, None);
        let r = llc.access(CacheLineAddr(96), false); // evicts 0 (dirty)
        assert_eq!(r.writeback, Some(CacheLineAddr(0)));
    }

    #[test]
    fn fill_pollutes_and_can_evict() {
        let mut llc = Llc::new(LlcConfig::tiny());
        llc.access(CacheLineAddr(0), true);
        llc.access(CacheLineAddr(32), false);
        // Migration-style fill evicts the dirty LRU line 0.
        llc.access(CacheLineAddr(32), false); // make 0 LRU
        let wb = llc.fill(CacheLineAddr(64), false);
        assert_eq!(wb, Some(CacheLineAddr(0)));
        assert!(llc.contains(CacheLineAddr(64)));
    }

    #[test]
    fn invalidate_returns_dirty_line() {
        let mut llc = Llc::new(LlcConfig::tiny());
        llc.access(CacheLineAddr(5), true);
        assert_eq!(llc.invalidate(CacheLineAddr(5)), Some(CacheLineAddr(5)));
        assert!(!llc.contains(CacheLineAddr(5)));
        assert_eq!(llc.invalidate(CacheLineAddr(5)), None);
    }

    #[test]
    fn invalidate_middle_of_full_set_keeps_lru_order() {
        // 2-way tiny cache: fill set 0 with {32 (MRU), 0 (LRU)}, then
        // invalidate the MRU and check the survivor still evicts last.
        let mut llc = Llc::new(LlcConfig::tiny());
        llc.access(CacheLineAddr(0), false);
        llc.access(CacheLineAddr(32), false);
        llc.invalidate(CacheLineAddr(32));
        assert!(llc.contains(CacheLineAddr(0)));
        assert_eq!(llc.occupancy(), 1);
        llc.access(CacheLineAddr(64), false); // fills the freed way
        assert!(llc.contains(CacheLineAddr(0)));
        assert!(llc.contains(CacheLineAddr(64)));
    }

    #[test]
    fn tree_plru_basic_hit_miss_and_full_set_eviction() {
        let mut llc = Llc::with_policy(LlcConfig::tiny(), ReplacementPolicy::TreeLru);
        assert_eq!(llc.policy(), ReplacementPolicy::TreeLru);
        let (a, b) = (CacheLineAddr(0), CacheLineAddr(32));
        assert!(!llc.access(a, true).hit);
        assert!(!llc.access(b, false).hit);
        assert!(llc.access(a, false).hit);
        assert_eq!(llc.occupancy(), 2);
        // Set 0 is full; b was touched least recently, so the pLRU tree
        // must pick it (for 2 ways pLRU *is* exact LRU).
        let r = llc.access(CacheLineAddr(64), false);
        assert!(!r.hit);
        assert!(llc.contains(a));
        assert!(!llc.contains(b));
        assert_eq!(r.writeback, None, "b was clean");
        // a is dirty; evicting it must write back.
        let r = llc.access(CacheLineAddr(96), false);
        assert_eq!(r.writeback, Some(a));
    }

    #[test]
    fn tree_plru_invalidate_frees_the_way() {
        let mut llc = Llc::with_policy(LlcConfig::tiny(), ReplacementPolicy::TreeLru);
        llc.access(CacheLineAddr(0), true);
        assert_eq!(llc.invalidate(CacheLineAddr(0)), Some(CacheLineAddr(0)));
        assert_eq!(llc.occupancy(), 0);
        assert!(!llc.contains(CacheLineAddr(0)));
    }

    #[test]
    fn grouped_probe_matches_scalar_access_for_both_policies() {
        for policy in [ReplacementPolicy::ExactLru, ReplacementPolicy::TreeLru] {
            let mut scalar = Llc::with_policy(LlcConfig::tiny(), policy);
            let mut grouped = scalar.clone();
            let mut x = 0x1234_5u64;
            let reqs: Vec<u64> = (0..512)
                .map(|_| {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((x >> 20) % 256) | if x & 1 == 1 { REQ_WRITE_BIT } else { 0 }
                })
                .collect();
            let (mut hits, mut wbs) = (Vec::new(), Vec::new());
            let mut scratch = LlcSetScratch::default();
            // Two batches, to exercise the lazy scratch reset between them.
            for batch in reqs.chunks(256) {
                let expect: Vec<CacheAccess> = batch
                    .iter()
                    .map(|&r| {
                        scalar.access(CacheLineAddr(r & !REQ_WRITE_BIT), r & REQ_WRITE_BIT != 0)
                    })
                    .collect();
                grouped.access_grouped(batch, &mut hits, &mut wbs, &mut scratch);
                for (i, e) in expect.iter().enumerate() {
                    assert_eq!(hits[i], e.hit, "{policy:?} req {i}");
                    assert_eq!(
                        wbs[i],
                        e.writeback.map_or(NO_WRITEBACK, |w| w.0),
                        "{policy:?} req {i}"
                    );
                }
            }
            assert_eq!(scalar.entries, grouped.entries, "{policy:?}");
            assert_eq!(scalar.plru, grouped.plru, "{policy:?}");
            assert_eq!(
                (scalar.hits, scalar.misses, scalar.writebacks),
                (grouped.hits, grouped.misses, grouped.writebacks),
                "{policy:?}"
            );
        }
    }

    #[test]
    fn sharded_probe_matches_sequential_for_both_policies() {
        use crate::oplog::Partition;
        for policy in [ReplacementPolicy::ExactLru, ReplacementPolicy::TreeLru] {
            for shards in [1usize, 2, 3, 8] {
                let mut scalar = Llc::with_policy(LlcConfig::tiny(), policy);
                let mut sharded = scalar.clone();
                let mut x = 0xfeed_5eedu64;
                let reqs: Vec<u64> = (0..600)
                    .map(|_| {
                        x = x
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        ((x >> 19) % 512) | if x & 2 == 2 { REQ_WRITE_BIT } else { 0 }
                    })
                    .collect();
                let expect: Vec<CacheAccess> = reqs
                    .iter()
                    .map(|&r| {
                        scalar.access(CacheLineAddr(r & !REQ_WRITE_BIT), r & REQ_WRITE_BIT != 0)
                    })
                    .collect();

                // Route each request to the shard owning its set, probe
                // per shard, then scatter outcomes back by logical time.
                let part = Partition::new(sharded.n_sets(), shards);
                let mut lane_req: Vec<Vec<u64>> = vec![Vec::new(); shards];
                let mut lane_idx: Vec<Vec<u32>> = vec![Vec::new(); shards];
                for (i, &r) in reqs.iter().enumerate() {
                    let k = part.shard_of(sharded.req_set(r) as usize);
                    lane_req[k].push(r);
                    lane_idx[k].push(i as u32);
                }
                let bounds: Vec<_> = part.ranges().collect();
                let mut hits = vec![false; reqs.len()];
                let mut wbs = vec![NO_WRITEBACK; reqs.len()];
                let mut counters = Vec::new();
                for (k, mut view) in sharded.shards(&bounds).into_iter().enumerate() {
                    let mut h = vec![false; lane_req[k].len()];
                    let mut w = vec![NO_WRITEBACK; lane_req[k].len()];
                    view.probe(&lane_req[k], &mut h, &mut w);
                    counters.push(view.counters());
                    for (j, &i) in lane_idx[k].iter().enumerate() {
                        hits[i as usize] = h[j];
                        wbs[i as usize] = w[j];
                    }
                }
                sharded.merge_shard_counters(&counters);

                for (i, e) in expect.iter().enumerate() {
                    assert_eq!(hits[i], e.hit, "{policy:?} shards={shards} req {i}");
                    assert_eq!(
                        wbs[i],
                        e.writeback.map_or(NO_WRITEBACK, |w| w.0),
                        "{policy:?} shards={shards} req {i}"
                    );
                }
                assert_eq!(
                    scalar.entries, sharded.entries,
                    "{policy:?} shards={shards}"
                );
                assert_eq!(scalar.plru, sharded.plru, "{policy:?} shards={shards}");
                assert_eq!(
                    (scalar.hits, scalar.misses, scalar.writebacks),
                    (sharded.hits, sharded.misses, sharded.writebacks),
                    "{policy:?} shards={shards}"
                );
            }
        }
    }

    #[test]
    #[should_panic]
    fn shard_bounds_must_tile_all_sets() {
        let mut llc = Llc::new(LlcConfig::tiny());
        let _ = llc.shards(&[0..10]); // tiny has 32 sets
    }

    #[test]
    fn plru_tree_victim_walks_touch_history() {
        // 8 ways, 3 levels: touching every way in order leaves way 0 as
        // the pseudo-LRU victim (it was touched longest ago and no other
        // touch redirected the tree back toward it... verify against a
        // brute-force expectation for this specific sequence).
        let mut tree = 0u64;
        for w in 0..8 {
            plru_touch(&mut tree, 3, w);
        }
        assert_eq!(plru_victim(tree, 3), 0);
        plru_touch(&mut tree, 3, 0);
        assert_ne!(plru_victim(tree, 3), 0);
    }
}
