//! The composed machine and its run loop.
//!
//! A [`System`] wires together the tiered memory, page table, TLB, LLC,
//! CXL controller, performance monitor, MGLRU and the kernel-cost ledger.
//! The [`run`] driver pulls accesses from an [`AccessStream`] (a workload),
//! pushes them through [`System::access`], dispatches hinting faults and
//! periodic wakeups to a [`MigrationDaemon`], and assembles a
//! [`RunReport`].
//!
//! ## Timing model
//!
//! Each access advances the simulated clock by its end-to-end latency:
//! LLC hit time, plus a page walk on a TLB miss, plus the node's DRAM
//! latency on an LLC miss, plus soft-fault handling if the page was
//! unmapped. Kernel work performed by a migration daemon additionally
//! advances the clock when the daemon is co-located with the application
//! core (`SystemConfig::colocated_daemon`, the paper's §6 methodology) —
//! this is how identification overhead turns into application slowdown.
//!
//! Copy-engine traffic of page migration is *not* visible to the
//! performance monitor or the CXL snoop devices: we model it as a DCOH/DMA
//! transfer whose cost is folded into `CostModel::migrate_per_page`. This
//! keeps `bw()` an application-demand signal, which is what the
//! M5-manager's Monitor needs (§5.2), and keeps the profiled access counts
//! attributable to the application.

use crate::addr::{CacheLineAddr, Pfn, VirtAddr, Vpn, WordIndex, WORDS_PER_PAGE};
use crate::cache::{Llc, LlcSetScratch, LlcShardCounters, NO_WRITEBACK, REQ_WRITE_BIT};
use crate::chunk::{
    word_is_op_end, word_is_write, word_vaddr, AccessChunk, CHUNK_ADDR_MASK, CHUNK_OP_END_BIT,
    CHUNK_WRITE_BIT,
};
use crate::config::{Placement, SystemConfig};
use crate::contention::{Contention, TrafficClass};
use crate::controller::{CxlController, CxlDevice, DeviceHandle, SnoopEvent};
use crate::faults::{DeviceFault, FaultClass, FaultEvent, FaultInjector, FaultPlan, SimError};
use crate::journal::{MigrationJournal, RecoveryReport, TxnId, TxnState};
use crate::kernel::{CostKind, KernelCosts};
use crate::memory::{NodeId, OutOfFrames, TieredMemory, CXL_BASE_PFN};
use crate::mglru::MgLru;
use crate::migration::{BatchOutcome, MigrateError, MigrationStats};
use crate::oplog::{Lane, OpLog, Partition};
use crate::paging::{PageTable, PteFlags};
use crate::perfmon::{BandwidthStats, PerfMonitor};
use crate::ras::{EvacuationReport, NodeHealth, RasState};
use crate::report::{HealthReport, LatencyHistogram, RunReport};
use crate::time::{Clock, Nanos};
use crate::tlb::Tlb;
use m5_telemetry::{SpanId, Telemetry};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// A contiguous virtual region handed to a workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Region {
    /// First byte of the region.
    pub base: VirtAddr,
    /// Length in pages.
    pub pages: u64,
}

impl Region {
    /// Iterates over the region's virtual page numbers.
    pub fn vpns(&self) -> impl Iterator<Item = Vpn> {
        let first = self.base.vpn().0;
        (first..first + self.pages).map(Vpn)
    }

    /// Whether `vpn` falls inside this region.
    pub fn contains(&self, vpn: Vpn) -> bool {
        let first = self.base.vpn().0;
        (first..first + self.pages).contains(&vpn.0)
    }

    /// Length in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.pages * crate::addr::PAGE_SIZE as u64
    }
}

/// One memory access issued by a workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Access {
    /// The virtual byte address touched.
    pub vaddr: VirtAddr,
    /// Whether this is a store.
    pub is_write: bool,
    /// Whether this access completes a client-visible operation (used for
    /// per-op latency percentiles, e.g. Redis p99).
    pub op_end: bool,
}

impl Access {
    /// A load with no op marker.
    pub fn read(vaddr: VirtAddr) -> Access {
        Access {
            vaddr,
            is_write: false,
            op_end: false,
        }
    }

    /// A store with no op marker.
    pub fn write(vaddr: VirtAddr) -> Access {
        Access {
            vaddr,
            is_write: true,
            op_end: false,
        }
    }

    /// Marks this access as the end of an operation.
    pub fn end_op(mut self) -> Access {
        self.op_end = true;
        self
    }
}

/// A source of memory accesses (implemented by every workload in
/// `m5-workloads`).
pub trait AccessStream {
    /// Produces the next access, or `None` when the workload is complete.
    fn next_access(&mut self) -> Option<Access>;

    /// Appends accesses to `chunk` until it is full or the stream ends,
    /// returning how many were appended (0 means the stream is done).
    ///
    /// The default implementation loops [`AccessStream::next_access`], so
    /// every stream batches correctly; generators with a cheaper bulk path
    /// (recorded traces, co-runners) override it. Implementations must
    /// produce exactly the `next_access` sequence — the equivalence is what
    /// lets the chunked run driver replace the per-access loop
    /// byte-identically.
    fn fill_chunk(&mut self, chunk: &mut AccessChunk) -> usize {
        let mut n = 0;
        while !chunk.is_full() {
            match self.next_access() {
                Some(a) => {
                    chunk.push(a);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }
}

/// The result of one [`System::access`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessOutcome {
    /// End-to-end latency of the access (already applied to the clock).
    pub latency: Nanos,
    /// Whether the LLC served the access.
    pub llc_hit: bool,
    /// The node that served the miss fill, if any.
    pub dram_node: Option<NodeId>,
    /// The physical cache line touched in DRAM, if any.
    pub line: Option<CacheLineAddr>,
    /// Whether a soft (hinting) page fault was taken.
    pub hinting_fault: bool,
    /// Whether the read returned a poisoned line that memory-failure
    /// handling recovered (fault injection only; the latency includes the
    /// repair cost).
    pub poisoned: bool,
}

/// A daemon that observes system events and migrates pages — ANB, DAMON, or
/// the M5-manager. The no-op implementation is [`NoMigration`].
pub trait MigrationDaemon {
    /// A short label used in reports.
    fn name(&self) -> &str;

    /// Called once before the run starts.
    fn on_start(&mut self, _sys: &mut System) {}

    /// The next simulated instant at which [`MigrationDaemon::on_tick`]
    /// should run, or `None` for a purely event-driven daemon.
    fn next_wake(&self) -> Option<Nanos> {
        None
    }

    /// Periodic work (scanning, querying trackers, migrating). The
    /// implementation must move its own `next_wake` forward, or the driver
    /// will stop invoking it for the current instant.
    fn on_tick(&mut self, _sys: &mut System) {}

    /// A hinting page fault was taken on `vpn` (ANB's migration trigger).
    fn on_fault(&mut self, _vpn: Vpn, _sys: &mut System) {}
}

/// The trivial daemon: never migrates (the paper's "no page migration"
/// baseline).
#[derive(Clone, Copy, Debug, Default)]
pub struct NoMigration;

impl MigrationDaemon for NoMigration {
    fn name(&self) -> &str {
        "none"
    }
}

/// Per-access telemetry deltas, accumulated locally and flushed to the
/// [`Telemetry`] registry once per tick instead of once per access.
///
/// `Telemetry::counter_add` costs a `HashMap` probe per call; the access
/// hot path bumps up to eight counters and one histogram per access, so on
/// instrumented runs the probes dominate. This struct holds those deltas
/// as plain array slots — indexed by node, snoop kind, or [`CostKind`] —
/// and [`System::flush_telemetry`] merges them in one probe per metric.
/// Flush points: every [`System::rollover_bandwidth`] (the Monitor tick),
/// every [`System::telemetry_mut`] borrow (so external writers/snapshots
/// never see a torn view), and the end of [`run`]. Counters only ever sum,
/// so the final snapshot is identical to per-access recording.
#[derive(Debug, Default)]
struct TelemetryBatch {
    pending: bool,
    /// `[read, write]`.
    accesses: [u64; 2],
    /// `[hit, miss]`.
    llc: [u64; 2],
    hinting_faults: u64,
    poison_repairs: u64,
    /// Indexed like [`NodeId::ALL`]: `[ddr, cxl]`.
    dram_reads: [u64; 2],
    dram_writebacks: [u64; 2],
    /// `[read, writeback, dropped]`.
    snoops: [u64; 3],
    /// Indexed like [`CostKind::ALL`].
    kernel_ns: [u64; CostKind::ALL.len()],
    kernel_events: [u64; CostKind::ALL.len()],
    /// Access-latency scratch histograms: `[llc, ddr, cxl]`.
    latency: [m5_telemetry::Log2Histogram; 3],
    /// Per-node contention queue-delay histograms (`[ddr, cxl]`); only
    /// ever recorded with the contention model enabled, so disabled runs
    /// never materialize the metric.
    contention_extra: [m5_telemetry::Log2Histogram; 2],
}

const BATCH_SNOOP_READ: usize = 0;
const BATCH_SNOOP_WRITEBACK: usize = 1;
const BATCH_SNOOP_DROPPED: usize = 2;
const BATCH_LAT_LLC: usize = 0;
const BATCH_LAT_DDR: usize = 1;
const BATCH_LAT_CXL: usize = 2;

/// Soft-offline candidates processed per [`System::ras_service`] epoch —
/// bounds the per-epoch stall predictive offlining can add.
const RAS_OFFLINE_BATCH: u64 = 8;

#[inline]
fn node_idx(node: NodeId) -> usize {
    match node {
        NodeId::Ddr => 0,
        NodeId::Cxl => 1,
    }
}

/// Page-table prefetch distance of the staged translate pass: far enough
/// ahead to overlap the PTE fill with the current run's work.
const PT_LOOKAHEAD: usize = 16;

/// A maximal same-page stretch of one gather slice, the unit logged by
/// the sharded translate gather. Continuations of a run cut by a slice
/// boundary surface as a new run whose VPN equals its predecessor's; the
/// sequential replay pass rejoins them.
#[derive(Clone, Copy, Debug)]
struct PageRun {
    /// The page every access of the run touches.
    vpn: Vpn,
    /// Accesses in the run.
    len: u32,
    /// OR of the run's write flags (PTE dirty accumulation).
    wrote: bool,
    /// The run's *first* access's write flag — the only one that counts
    /// when that access takes a hinting fault and truncates the block.
    first_write: bool,
}

/// One worker's input to the sharded translate gather: a contiguous slice
/// of the block's packed words, the matching `split_at_mut` slice of the
/// request scratch it owns exclusively, and a shared (read-only) view of
/// the page table.
struct GatherTask<'a> {
    /// Block-absolute index of `words[0]` (the slice's logical-time base).
    start: u32,
    words: &'a [u64],
    reqs: &'a mut [u64],
    pt: &'a PageTable,
}

/// Runs one gather slice: packs each access's LLC request (translations
/// are frozen for the block — PFNs only change at migration sync points,
/// never mid-block — so a read-only PTE walk is exact) and logs the
/// slice's page runs with block-absolute logical times. PTE *flags* are
/// deliberately not read here: the replay pass re-reads them fresh, after
/// earlier-in-block stores have landed.
fn gather_runs(t: GatherTask<'_>) -> Lane<PageRun> {
    let mut lane = Lane::new();
    let mut cur_vpn: Option<Vpn> = None;
    let mut cur_pfn = Pfn(0);
    for (j, &w) in t.words.iter().enumerate() {
        let vaddr = word_vaddr(w);
        let vpn = vaddr.vpn();
        let is_write = word_is_write(w);
        if cur_vpn != Some(vpn) {
            if let Some(&wa) = t.words.get(j + PT_LOOKAHEAD) {
                t.pt.prefetch(word_vaddr(wa).vpn());
            }
            let pte = match t.pt.get(vpn) {
                Some(p) => *p,
                None => panic!("{}", SimError::Unmapped(vaddr)),
            };
            cur_vpn = Some(vpn);
            cur_pfn = pte.pfn;
            lane.push(
                t.start + j as u32,
                PageRun {
                    vpn,
                    len: 0,
                    wrote: false,
                    first_write: is_write,
                },
            );
        }
        let run = lane.ops.last_mut().expect("run opened above");
        run.len += 1;
        run.wrote |= is_write;
        t.reqs[j] = cur_pfn.word(WordIndex(vaddr.word_index().0)).cache_line().0
            | if is_write { REQ_WRITE_BIT } else { 0 };
    }
    lane
}

/// Reusable struct-of-arrays scratch for the staged batch engine
/// ([`System::staged_block`]). Pure working memory: cleared at every use,
/// observable state never passes through it, and it is deliberately absent
/// from checkpoints — a restored system with empty scratch behaves
/// identically.
#[derive(Debug, Default)]
struct StagedScratch {
    /// Packed per-access LLC requests: line address | [`REQ_WRITE_BIT`].
    reqs: Vec<u64>,
    /// Pre-LLC latency (hinting fault + page walk) per access, ns.
    base_lat: Vec<u64>,
    /// Per-access LLC hit flags (stage 2 output).
    hits: Vec<bool>,
    /// Per-access dirty-victim lines ([`NO_WRITEBACK`] when none).
    wbs: Vec<u64>,
    /// CXL snoops deferred within the block, flushed in stage 4.
    snoops: Vec<SnoopEvent>,
    /// Counting-sort scratch for the set-grouped LLC probe.
    llc: LlcSetScratch,
}

/// Cumulative wall-clock spent in each staged pass, recorded only after
/// [`System::enable_stage_timing`] (the throughput bench's opt-in
/// stage-breakdown flag; timing syscalls are not free on the hot path).
#[derive(Clone, Copy, Debug, Default)]
pub struct StageTimes {
    /// Stage 1 — translate: paging, TLB, PTE-flag accumulation. Nanoseconds.
    pub translate_ns: u64,
    /// Stage 2 — set-grouped LLC probe. Nanoseconds.
    pub llc_ns: u64,
    /// Stage 3 — latency classification and billing. Nanoseconds.
    pub bill_ns: u64,
    /// Stage 4 — batched tracker/snoop feed. Nanoseconds.
    pub tracker_ns: u64,
    /// Staged blocks executed.
    pub blocks: u64,
    /// Accesses that went through the staged path (vs the scalar loop).
    pub staged_accesses: u64,
    /// Staged blocks that took the core-sharded fan-out (a subset of
    /// `blocks`; zero when `sim_shards <= 1` or blocks stay under the
    /// sharding threshold). Lets harnesses assert the sharded engine
    /// actually engaged rather than passing vacuously on the scalar path.
    pub sharded_blocks: u64,
}

/// The merged epoch-boundary view of the machine a manager tick samples
/// (see [`System::merged_view`]). All arrays are `[DDR, CXL]` ordered.
#[derive(Clone, Copy, Debug)]
pub struct MergedView {
    /// Pages allocated per node.
    pub nr_pages: [u64; 2],
    /// The just-closed measurement window's bandwidth stats per node.
    pub bw: [BandwidthStats; 2],
    /// Configured (unloaded) access latency per node.
    pub lat_unloaded: [Nanos; 2],
    /// Current loaded access latency per node (equals unloaded when the
    /// contention model is off or the link is idle).
    pub lat_loaded: [Nanos; 2],
}

/// The composed tiered-memory machine.
#[derive(Debug)]
pub struct System {
    config: SystemConfig,
    clock: Clock,
    memory: TieredMemory,
    page_table: PageTable,
    tlb: Tlb,
    llc: Llc,
    controller: CxlController,
    perfmon: PerfMonitor,
    kernel: KernelCosts,
    ddr_lru: MgLru,
    migrations: MigrationStats,
    journal: MigrationJournal,
    hinting_faults: u64,
    next_vpn: u64,
    placement_rng: SmallRng,
    last_tlb_flush: Nanos,
    faults: FaultInjector,
    degradations: Vec<String>,
    promoter_retried: u64,
    promoter_gave_up: u64,
    telemetry: Telemetry,
    /// Cached `telemetry.is_enabled()` so the access path tests one bool.
    telemetry_on: bool,
    contention: Contention,
    /// Cached `contention.enabled()` so the access path tests one bool;
    /// with it false the timing model is bit-for-bit the legacy fixed-cost
    /// path.
    contention_on: bool,
    batch: TelemetryBatch,
    fault_events_seen: usize,
    spike_span: Option<SpanId>,
    stall_span: Option<SpanId>,
    pressure_span: Option<SpanId>,
    ras: RasState,
    evac_span: Option<SpanId>,
    /// Whether the current evacuation already noted survivor-capacity
    /// exhaustion (one degradation entry per evacuation, not per epoch).
    evac_exhaustion_noted: bool,
    /// SoA scratch for the staged batch engine; transient, not checkpointed.
    staged: StagedScratch,
    /// Per-stage wall-clock accounting, when enabled (boxed: cold field).
    stage_times: Option<Box<StageTimes>>,
    /// Worker shards the staged engine fans out to (see
    /// [`System::set_sim_shards`]). A pure runtime performance knob:
    /// deliberately absent from `SystemConfig`, the config fingerprint,
    /// and checkpoints, because no observable state may depend on it —
    /// the sharded engine is byte-identical to the sequential one at
    /// every value.
    sim_shards: usize,
}

impl System {
    /// Builds a machine from `config` with no fault injection
    /// ([`FaultPlan::none`] — fault-free runs are byte-identical to builds
    /// without the fault module).
    pub fn new(config: SystemConfig) -> System {
        System::with_fault_plan(config, &FaultPlan::none())
    }

    /// Builds a machine from `config` executing `plan`.
    pub fn with_fault_plan(config: SystemConfig, plan: &FaultPlan) -> System {
        System {
            memory: TieredMemory::new(config.ddr.clone(), config.cxl.clone()),
            tlb: Tlb::new(config.tlb),
            llc: Llc::new(config.llc),
            controller: CxlController::new(),
            perfmon: PerfMonitor::new(),
            kernel: KernelCosts::new(),
            ddr_lru: MgLru::new(),
            migrations: MigrationStats::default(),
            journal: MigrationJournal::new(),
            hinting_faults: 0,
            next_vpn: 0,
            placement_rng: SmallRng::seed_from_u64(0x4d35_0001),
            last_tlb_flush: Nanos::ZERO,
            page_table: PageTable::new(),
            clock: Clock::new(),
            faults: FaultInjector::from_plan(plan),
            degradations: Vec::new(),
            promoter_retried: 0,
            promoter_gave_up: 0,
            telemetry: Telemetry::disabled(),
            telemetry_on: false,
            contention: Contention::new(
                &config.contention,
                [config.ddr.access_latency, config.cxl.access_latency],
            ),
            contention_on: config.contention.enabled,
            batch: TelemetryBatch::default(),
            fault_events_seen: 0,
            spike_span: None,
            stall_span: None,
            pressure_span: None,
            ras: RasState::new(config.ras),
            evac_span: None,
            evac_exhaustion_noted: false,
            staged: StagedScratch::default(),
            stage_times: None,
            sim_shards: 1,
            config,
        }
    }

    /// Installs a telemetry bus (typically [`Telemetry::enabled`] with sinks
    /// attached). The default is [`Telemetry::disabled`], which reduces every
    /// instrumentation point to a single branch.
    pub fn install_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
        self.telemetry_on = self.telemetry.is_enabled();
    }

    /// The telemetry bus (read-only: snapshots).
    ///
    /// Per-access `sim.*` counters accumulate in a local batch and become
    /// visible at flush points (see [`System::flush_telemetry`]); a
    /// snapshot taken between flushes can trail the current tick's
    /// accesses. Borrow via [`System::telemetry_mut`] first — it flushes —
    /// when an exact point-in-time view is needed.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The telemetry bus (mutable — daemons record manager-side metrics and
    /// spans through the system's bus so one snapshot covers the whole
    /// stack). Flushes the per-access batch first, so external writers and
    /// snapshot takers always see fully up-to-date counters.
    pub fn telemetry_mut(&mut self) -> &mut Telemetry {
        self.flush_telemetry();
        &mut self.telemetry
    }

    /// Drains the per-access telemetry batch into the bus registry: one
    /// probe per touched metric instead of one per access. Idempotent and
    /// cheap when nothing is pending. Called automatically on
    /// [`System::rollover_bandwidth`], [`System::telemetry_mut`], and at
    /// the end of [`run`].
    pub fn flush_telemetry(&mut self) {
        if !self.batch.pending {
            return;
        }
        let b = std::mem::take(&mut self.batch);
        let t = &mut self.telemetry;
        for (label, v) in [("read", b.accesses[0]), ("write", b.accesses[1])] {
            if v > 0 {
                t.counter_add("sim.accesses", label, v);
            }
        }
        for (label, v) in [("hit", b.llc[0]), ("miss", b.llc[1])] {
            if v > 0 {
                t.counter_add("sim.llc", label, v);
            }
        }
        if b.hinting_faults > 0 {
            t.counter_add("sim.hinting_faults", "", b.hinting_faults);
        }
        if b.poison_repairs > 0 {
            t.counter_add("sim.poison.repairs", "", b.poison_repairs);
        }
        for node in NodeId::ALL {
            let i = node_idx(node);
            if b.dram_reads[i] > 0 {
                t.counter_add("sim.dram.reads", node.label(), b.dram_reads[i]);
            }
            if b.dram_writebacks[i] > 0 {
                t.counter_add("sim.dram.writebacks", node.label(), b.dram_writebacks[i]);
            }
        }
        for (label, i) in [
            ("read", BATCH_SNOOP_READ),
            ("writeback", BATCH_SNOOP_WRITEBACK),
            ("dropped", BATCH_SNOOP_DROPPED),
        ] {
            if b.snoops[i] > 0 {
                t.counter_add("sim.snoops", label, b.snoops[i]);
            }
        }
        for (i, kind) in CostKind::ALL.iter().enumerate() {
            if b.kernel_ns[i] > 0 {
                t.counter_add("sim.kernel.ns", kind.label(), b.kernel_ns[i]);
            }
            if b.kernel_events[i] > 0 {
                t.counter_add("sim.kernel.events", kind.label(), b.kernel_events[i]);
            }
        }
        for (label, i) in [
            ("llc", BATCH_LAT_LLC),
            ("ddr", BATCH_LAT_DDR),
            ("cxl", BATCH_LAT_CXL),
        ] {
            t.histogram_merge("sim.access.latency", label, &b.latency[i]);
        }
        for node in NodeId::ALL {
            // Empty histograms are skipped by the merge, so contention-off
            // runs never grow a `sim.contention.*` metric.
            t.histogram_merge(
                "sim.contention.extra",
                node.label(),
                &b.contention_extra[node_idx(node)],
            );
        }
    }

    /// Replaces the fault plan (resets the injector; already-armed windows
    /// close, pending one-shot faults are dropped).
    pub fn install_fault_plan(&mut self, plan: &FaultPlan) {
        self.faults = FaultInjector::from_plan(plan);
    }

    /// The fault injector (read-only: counts, log, poison repairs).
    pub fn fault_injector(&self) -> &FaultInjector {
        &self.faults
    }

    /// Consumes the next armed torn-checkpoint fault, if any, returning the
    /// manifest section index at which the commit must be cut short. The
    /// checkpointing harness calls this immediately before each commit and
    /// switches to [`crate::checkpoint::Checkpoint::commit_torn`] when a
    /// fault is armed.
    pub fn take_torn_checkpoint(&mut self) -> Option<u64> {
        self.faults.take_torn_checkpoint()
    }

    /// Every fault armed so far, in arming order.
    pub fn fault_log(&self) -> &[FaultEvent] {
        self.faults.log()
    }

    /// Records a degradation-mode switch (e.g. a daemon falling back to
    /// software-only identification after tracker failure). Surfaces in
    /// [`RunReport::health`].
    pub fn note_degradation(&mut self, msg: impl Into<String>) {
        let msg = msg.into();
        if self.telemetry.is_enabled() {
            let now = self.clock.now().0;
            self.telemetry.event(now, "sim.degraded", msg.clone());
            self.telemetry.counter_add("sim.degraded", "", 1);
        }
        self.degradations.push(msg);
    }

    /// Degradation-mode switches recorded so far.
    pub fn degradations(&self) -> &[String] {
        &self.degradations
    }

    /// Accounts Promoter retry activity for [`RunReport::health`].
    pub fn note_promoter_retries(&mut self, retried: u64, gave_up: u64) {
        self.promoter_retried += retried;
        self.promoter_gave_up += gave_up;
    }

    /// Arms due faults and delivers queued device faults to the controller.
    #[inline]
    fn service_faults(&mut self) {
        let now = self.clock.now();
        // Fast path for fault-free operation (every golden run, most
        // benches): a quiescent injector with no open telemetry span and
        // no unseen log entries makes the rest of this function a no-op.
        if self.faults.quiescent(now)
            && self.fault_events_seen == self.faults.log().len()
            && self.spike_span.is_none()
            && self.stall_span.is_none()
            && self.pressure_span.is_none()
        {
            return;
        }
        self.faults.poll(now);
        while let Some(f) = self.faults.pop_device_fault() {
            self.controller.inject(f);
        }
        while let Some(f) = self.faults.pop_ras_fault() {
            self.ras_record(f);
        }
        if self.telemetry.is_enabled() {
            self.trace_faults();
        }
    }

    /// Delivers one RAS fault to the state machine and mirrors what changed
    /// to telemetry and the degradation log: `sim.ras` counters per fault
    /// class, the `sim.ras.health` gauge on transitions, and a
    /// `sim.ras.evacuation` span opened when the CXL node starts draining.
    fn ras_record(&mut self, fault: DeviceFault) {
        let now = self.clock.now();
        let capacity = self.config.cxl.capacity_frames;
        let delta = self.ras.record(fault, now, capacity);
        if self.telemetry.is_enabled() {
            let label = match fault {
                DeviceFault::CorrectableEcc { .. } => "ce",
                DeviceFault::LinkDegrade { .. } => "link-degrade",
                DeviceFault::HotRemovePrepare => "hot-remove",
                _ => "other",
            };
            self.telemetry.counter_add("sim.ras", label, 1);
            if delta.crossed_threshold {
                self.telemetry
                    .counter_add("sim.ras", "offline-nominated", 1);
            }
        }
        if let Some((from, to)) = delta.transition {
            if self.telemetry.is_enabled() {
                self.telemetry
                    .gauge_set("sim.ras.health", NodeId::Cxl.label(), to.gauge());
                if to == NodeHealth::Evacuating && self.evac_span.is_none() {
                    self.evac_span = Some(self.telemetry.span_start(
                        now.0,
                        "sim.ras.evacuation",
                        NodeId::Cxl.label(),
                    ));
                }
            }
            self.note_degradation(format!("RAS: CXL node health {from} -> {to}"));
        }
    }

    /// Emits instant events for newly-armed faults and opens/closes
    /// `sim.fault.window` spans as the injector's latency-spike, stall, and
    /// DDR-pressure windows come and go. Only called with telemetry enabled.
    fn trace_faults(&mut self) {
        let now = self.clock.now();
        for i in self.fault_events_seen..self.faults.log().len() {
            let ev = self.faults.log()[i];
            self.telemetry
                .counter_add("sim.faults", ev.class.label(), 1);
            self.telemetry.event(ev.at.0, "sim.fault", ev.class.label());
        }
        self.fault_events_seen = self.faults.log().len();

        let windows = [
            (
                self.faults.cxl_extra_latency(now) > Nanos::ZERO,
                &mut self.spike_span,
                FaultClass::LatencySpike,
            ),
            (
                self.faults.controller_stalled(now),
                &mut self.stall_span,
                FaultClass::ControllerStall,
            ),
            (
                self.faults.ddr_pressure(now),
                &mut self.pressure_span,
                FaultClass::DdrPressure,
            ),
        ];
        for (active, span, class) in windows {
            match (active, span.take()) {
                (true, None) => {
                    *span = Some(self.telemetry.span_start(
                        now.0,
                        "sim.fault.window",
                        class.label(),
                    ));
                }
                (false, Some(s)) => self.telemetry.span_end(now.0, s),
                (_, prev) => *span = prev,
            }
        }
    }

    /// The machine's configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Current simulated time.
    pub fn now(&self) -> Nanos {
        self.clock.now()
    }

    /// Allocates a region of `pages` pages placed per `placement`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfFrames`] if a node runs out of capacity
    /// (when interleaved placement finds DDR full it falls back to CXL and
    /// vice versa, so only total exhaustion fails), or
    /// [`SimError::NodeOffline`] if the target node is being evacuated or
    /// has been taken offline by the RAS layer.
    pub fn alloc_region(&mut self, pages: u64, placement: Placement) -> Result<Region, SimError> {
        let base_vpn = self.next_vpn;
        let mut rng = match placement {
            Placement::Interleaved { seed, .. } => SmallRng::seed_from_u64(seed),
            _ => SmallRng::seed_from_u64(self.placement_rng.gen()),
        };
        for i in 0..pages {
            let vpn = Vpn(base_vpn + i);
            let want = match placement {
                Placement::AllOnCxl => NodeId::Cxl,
                Placement::AllOnDdr => NodeId::Ddr,
                Placement::Interleaved { ddr_fraction, .. } => {
                    if rng.gen::<f64>() < ddr_fraction {
                        NodeId::Ddr
                    } else {
                        NodeId::Cxl
                    }
                }
            };
            if !self.ras.quiescent() && self.ras.health(want) >= NodeHealth::Evacuating {
                return Err(SimError::NodeOffline(want));
            }
            let pfn = match self.memory.alloc_on(want) {
                Ok(pfn) => pfn,
                Err(_) if matches!(placement, Placement::Interleaved { .. }) => {
                    self.memory.alloc_on(want.other())?
                }
                Err(e) => return Err(e.into()),
            };
            self.page_table.map(vpn, pfn);
            if NodeId::of_pfn(pfn) == NodeId::Ddr {
                self.ddr_lru.insert(vpn);
            }
        }
        self.next_vpn += pages;
        Ok(Region {
            base: Vpn(base_vpn).base(),
            pages,
        })
    }

    /// Performs one memory access, advancing the clock by its latency.
    ///
    /// # Panics
    ///
    /// Panics if `vaddr` is not mapped — workloads only touch regions they
    /// allocated, so an unmapped access is a bug. Use
    /// [`System::try_access`] where unmapped addresses are recoverable.
    pub fn access(&mut self, vaddr: VirtAddr, is_write: bool) -> AccessOutcome {
        self.try_access(vaddr, is_write)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Performs one memory access, advancing the clock by its latency.
    ///
    /// Injected faults are handled here: latency spikes inflate the CXL
    /// access time, controller stalls blind the snoop devices, and poisoned
    /// lines are recovered via the memory-failure path (billed, flagged on
    /// the outcome) — none of them fail the access.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Unmapped`] if `vaddr` is not mapped.
    pub fn try_access(
        &mut self,
        vaddr: VirtAddr,
        is_write: bool,
    ) -> Result<AccessOutcome, SimError> {
        self.service_faults();

        // Context-switch-style full TLB flush: the passive invalidation that
        // lets accessed bits get re-set for TLB-resident hot pages (§2.1).
        if let Some(interval) = self.config.tlb_flush_interval {
            if self.clock.now() - self.last_tlb_flush >= interval {
                self.tlb.flush();
                self.last_tlb_flush = self.clock.now();
            }
        }

        self.access_core(vaddr, is_write, true)
    }

    /// The access pipeline proper: paging, TLB, LLC, DRAM, telemetry.
    ///
    /// `faults_active = false` is the batch fast path: the caller has
    /// proven the injector quiescent up to a horizon (no stall window, no
    /// latency spike, no pending poison), so the per-access fault queries
    /// compile down to constants. With a quiescent injector both variants
    /// are exactly equivalent — `controller_stalled` is false,
    /// `cxl_extra_latency` is zero, `take_poisoned_read` is false — which
    /// keeps the chunked driver byte-identical to the per-access loop.
    #[inline]
    fn access_core(
        &mut self,
        vaddr: VirtAddr,
        is_write: bool,
        faults_active: bool,
    ) -> Result<AccessOutcome, SimError> {
        let vpn = vaddr.vpn();
        let costs = self.config.costs;
        let mut latency = Nanos::ZERO;
        let mut hinting_fault = false;

        let pte = match self.page_table.get(vpn) {
            Some(p) => *p,
            None => return Err(SimError::Unmapped(vaddr)),
        };
        // Flag updates accumulate locally and are stored once at the end:
        // nothing between here and the store reads the page table, and in
        // steady state (accessed already set, page already dirty) the store
        // is skipped entirely, saving a second random table lookup.
        let mut flags = pte.flags;

        if !flags.present() {
            // Soft (hinting) page fault: kernel re-establishes the mapping.
            hinting_fault = true;
            self.hinting_faults += 1;
            self.bill_kernel(CostKind::HintingFault, costs.hinting_fault);
            latency += costs.hinting_fault;
            flags = flags.with_present();
        }

        if !self.tlb.lookup(vpn) {
            latency += costs.page_walk;
            flags = flags.with_accessed();
            self.tlb.insert(vpn);
        }

        if is_write {
            flags = flags.with_dirty();
        }

        if flags != pte.flags {
            self.page_table.store_flags(vpn, flags);
        }

        let pfn = pte.pfn;
        let word = WordIndex(vaddr.word_index().0);
        let line = pfn.word(word).cache_line();
        latency += costs.llc_hit;

        let res = self.llc.access(line, is_write);
        let mut dram_node = None;
        let mut poisoned = false;
        let now = self.clock.now();
        let stalled = faults_active && self.faults.controller_stalled(now);
        if !res.hit {
            let node = NodeId::of_pfn(pfn);
            latency += self.memory.node(node).access_latency();
            self.perfmon.record_read(node);
            if self.contention_on {
                let extra = self.contention.demand_delay(node, now);
                latency += extra;
                if self.telemetry_on {
                    self.batch.pending = true;
                    self.batch.contention_extra[node_idx(node)].record(extra.0);
                }
            }
            if node == NodeId::Cxl {
                if faults_active {
                    latency += self.faults.cxl_extra_latency(now);
                    if !self.ras.quiescent() {
                        // Degraded-link penalty scales with the nominal
                        // node latency (a retrained link slows every fill).
                        latency += self
                            .ras
                            .extra_latency(node, self.memory.node(node).access_latency());
                    }
                    if self.faults.take_poisoned_read() {
                        // Uncorrectable ECC on the fill: the kernel's
                        // memory-failure path isolates the line, re-fetches,
                        // and resumes the load — slow but never fatal.
                        poisoned = true;
                        self.faults.note_poison_repaired();
                        self.bill_kernel(CostKind::DaemonOther, costs.poison_repair);
                        latency += costs.poison_repair;
                    }
                }
                if !stalled {
                    self.controller.snoop(line, false, now);
                }
                if self.telemetry_on {
                    self.batch.pending = true;
                    self.batch.snoops[if stalled {
                        BATCH_SNOOP_DROPPED
                    } else {
                        BATCH_SNOOP_READ
                    }] += 1;
                }
            }
            dram_node = Some(node);
        }
        if let Some(wb) = res.writeback {
            let wb_node = NodeId::of_pfn(wb.pfn());
            self.perfmon.record_writeback(wb_node);
            if self.contention_on {
                // Writebacks drain asynchronously: they consume (write-
                // asymmetric) link service that later fills wait on, but
                // this access does not stall for them.
                self.contention.writeback(wb_node, now);
            }
            if self.telemetry_on {
                self.batch.pending = true;
                self.batch.dram_writebacks[node_idx(wb_node)] += 1;
            }
            if wb_node == NodeId::Cxl {
                if !stalled {
                    self.controller.snoop(wb, true, now);
                }
                if self.telemetry_on {
                    self.batch.snoops[if stalled {
                        BATCH_SNOOP_DROPPED
                    } else {
                        BATCH_SNOOP_WRITEBACK
                    }] += 1;
                }
            }
        }

        if self.telemetry_on {
            self.batch.pending = true;
            self.batch.accesses[is_write as usize] += 1;
            self.batch.llc[!res.hit as usize] += 1;
            self.batch.hinting_faults += hinting_fault as u64;
            self.batch.poison_repairs += poisoned as u64;
            match dram_node {
                Some(node) => {
                    self.batch.dram_reads[node_idx(node)] += 1;
                    self.batch.latency[BATCH_LAT_DDR + node_idx(node)].record(latency.0);
                }
                None => self.batch.latency[BATCH_LAT_LLC].record(latency.0),
            }
        }

        self.clock.advance(latency);
        Ok(AccessOutcome {
            latency,
            llc_hit: res.hit,
            dram_node,
            line: if res.hit { None } else { Some(line) },
            hinting_fault,
            poisoned,
        })
    }

    /// Turns on per-stage wall-clock accounting for the staged batch
    /// engine. Opt-in: two monotonic-clock reads per stage are not free on
    /// the hot path, so the default build pays only one branch per block.
    pub fn enable_stage_timing(&mut self) {
        self.stage_times = Some(Box::default());
    }

    /// Cumulative staged-pass timings, if enabled.
    pub fn stage_times(&self) -> Option<&StageTimes> {
        self.stage_times.as_deref()
    }

    /// Sets the number of worker shards quiet-segment blocks fan out to
    /// (clamped to at least 1; 1 = the sequential staged engine). The
    /// sharded engine is byte-identical to the sequential one — reports,
    /// telemetry snapshots, and checkpoint images do not depend on this
    /// value — so drivers may pick whatever the host's core count
    /// suggests. Workers come from the global thread pool
    /// (`rayon::set_num_threads` pins its size).
    pub fn set_sim_shards(&mut self, n: usize) {
        self.sim_shards = n.max(1);
    }

    /// Current worker-shard count (see [`System::set_sim_shards`]).
    pub fn sim_shards(&self) -> usize {
        self.sim_shards
    }

    /// Strict upper bound on a single *non-faulting* quiet-segment
    /// access's latency: every additive term of [`System::access_core`]
    /// at its maximum — page walk, LLC hit, the slower node's fill, plus
    /// the contention cap. Fault and RAS extras are zero by the caller's
    /// quiescence proof.
    ///
    /// The hinting-fault cost is deliberately excluded even though a
    /// faulting access bills it: a hinting fault *terminates* the staged
    /// block (and the batch), so a faulting access's clock advance never
    /// contributes to a later access's start time. Block sizing only
    /// needs every access to **start** before the horizon, and start
    /// times are sums of preceding non-faulting advances — all bounded by
    /// this value. Including the (20–30× larger) fault cost would shrink
    /// blocks by an order of magnitude for a case that cannot gate them.
    ///
    /// The bound holds for a whole batch: node latencies are
    /// configuration, and contention's standing delay only moves at
    /// rollover, which happens at daemon ticks, never mid-batch.
    fn quiet_access_bound(&self) -> Nanos {
        let c = self.config.costs;
        let mut b = c.page_walk + c.llc_hit;
        b += self
            .memory
            .node(NodeId::Ddr)
            .access_latency()
            .max(self.memory.node(NodeId::Cxl).access_latency());
        if self.contention_on {
            b += self
                .contention
                .demand_delay_bound(NodeId::Ddr)
                .max(self.contention.demand_delay_bound(NodeId::Cxl));
        }
        b
    }

    /// Runs a quiet-segment block through the four staged struct-of-arrays
    /// passes: translate, set-grouped LLC probe, in-order billing, batched
    /// tracker feed. Returns how many accesses executed (the whole block,
    /// unless a hinting fault cut it short) and the faulting VPN, if any.
    ///
    /// The caller guarantees every access in `words` *starts* before its
    /// horizon (via [`System::quiet_access_bound`]), the injector is
    /// quiescent, and no TLB flush is due — the same preconditions as the
    /// scalar `access_core(.., false)` loop this replaces.
    ///
    /// ## Why the staging is byte-identical to the scalar loop
    ///
    /// Within a quiescent segment the per-access mutations partition:
    ///
    /// * **TLB + PTE flags** are touched only by translate logic. The TLB
    ///   evolves from the VPN sequence alone, which stage 1 replays in
    ///   order. Flag bits only accumulate (OR) within a segment and
    ///   nothing reads the page table until the next pause, so storing
    ///   once per page run instead of per access leaves identical state.
    /// * **LLC** state depends only on the `(line, is_write)` sequence;
    ///   see [`Llc::access_grouped`] for why set-grouping preserves it.
    /// * **Clock, contention, perfmon, telemetry, op latencies** are
    ///   billed by stage 3 strictly in access order with the same
    ///   pre-advance `now` per access, reproducing the exact clock
    ///   evolution — stages 1–2 never advance the clock.
    /// * **Snoop devices** are only read at daemon ticks (pauses), and
    ///   each sees its `(line, is_write, now)` sequence unchanged, so
    ///   deferring delivery to stage 4 is invisible (devices are mutually
    ///   independent; see [`CxlController::snoop_batch`]).
    fn staged_block(&mut self, words: &[u64], st: &mut BatchState) -> (usize, Option<Vpn>) {
        let timing = self.stage_times.is_some();
        let mut s = std::mem::take(&mut self.staged);
        let costs = self.config.costs;

        // Stage 1: translate every address, accumulating PTE flags per
        // page run and storing them once.
        let t0 = timing.then(std::time::Instant::now);
        s.reqs.clear();
        s.base_lat.clear();
        let mut cut = words.len();
        let mut fault_vpn = None;
        let mut cur_vpn: Option<Vpn> = None;
        let mut cur_pfn = Pfn(0);
        // Dummy until the first page run begins (cur_vpn is None).
        let mut cur_flags = PteFlags::new_mapped();
        let mut orig_flags = cur_flags;
        for (i, &w) in words.iter().enumerate() {
            let vaddr = word_vaddr(w);
            let vpn = vaddr.vpn();
            if cur_vpn == Some(vpn) {
                // In-page continuation: the run's first access proved the
                // page present (a hinting fault there truncates the block,
                // so no continuation exists) and left this VPN most
                // recently used in its TLB set via lookup-hit or insert —
                // with no intervening TLB traffic, the hit is certain and
                // its move-to-front a no-op. Only the hit counter, the
                // accumulated dirty bit, and the LLC request remain.
                self.tlb.repeat_hit();
                let is_write = word_is_write(w);
                if is_write {
                    cur_flags = cur_flags.with_dirty();
                }
                let line = cur_pfn.word(WordIndex(vaddr.word_index().0)).cache_line();
                s.reqs
                    .push(line.0 | if is_write { REQ_WRITE_BIT } else { 0 });
                s.base_lat.push(0);
                continue;
            }
            if let Some(&wa) = words.get(i + PT_LOOKAHEAD) {
                self.page_table.prefetch(word_vaddr(wa).vpn());
            }
            if let Some(pv) = cur_vpn {
                if cur_flags != orig_flags {
                    self.page_table.store_flags(pv, cur_flags);
                }
            }
            let pte = match self.page_table.get(vpn) {
                Some(p) => *p,
                None => panic!("{}", SimError::Unmapped(vaddr)),
            };
            cur_vpn = Some(vpn);
            cur_pfn = pte.pfn;
            cur_flags = pte.flags;
            orig_flags = pte.flags;
            let mut lat = 0u64;
            let mut hint = false;
            if !cur_flags.present() {
                hint = true;
                self.hinting_faults += 1;
                self.bill_kernel(CostKind::HintingFault, costs.hinting_fault);
                lat += costs.hinting_fault.0;
                cur_flags = cur_flags.with_present();
            }
            if !self.tlb.lookup(vpn) {
                lat += costs.page_walk.0;
                cur_flags = cur_flags.with_accessed();
                self.tlb.insert(vpn);
            }
            let is_write = word_is_write(w);
            if is_write {
                cur_flags = cur_flags.with_dirty();
            }
            let line = cur_pfn.word(WordIndex(vaddr.word_index().0)).cache_line();
            s.reqs
                .push(line.0 | if is_write { REQ_WRITE_BIT } else { 0 });
            s.base_lat.push(lat);
            if hint {
                // The batch pauses after a hinting fault (the driver
                // delivers it to the daemon); truncate the block here.
                cut = i + 1;
                fault_vpn = Some(vpn);
                break;
            }
        }
        if let Some(pv) = cur_vpn {
            if cur_flags != orig_flags {
                self.page_table.store_flags(pv, cur_flags);
            }
        }

        // Stage 2: probe the LLC for the whole block, set-grouped.
        let t1 = timing.then(std::time::Instant::now);
        self.llc
            .access_grouped(&s.reqs, &mut s.hits, &mut s.wbs, &mut s.llc);

        // Stages 3–4 are shared with the sharded front half.
        let t2 = timing.then(std::time::Instant::now);
        if let (Some(ts), Some(t0), Some(t1), Some(t2)) =
            (self.stage_times.as_deref_mut(), t0, t1, t2)
        {
            ts.translate_ns += (t1 - t0).as_nanos() as u64;
            ts.llc_ns += (t2 - t1).as_nanos() as u64;
        }
        self.staged_bill(words, cut, fault_vpn.is_some(), st, &mut s);
        self.staged = s;
        (cut, fault_vpn)
    }

    /// Stages 3–4 of the staged engine, shared verbatim by the sequential
    /// ([`System::staged_block`]) and sharded
    /// ([`System::staged_block_sharded`]) front halves: classify and bill
    /// the first `cut` accesses strictly in logical-time order (the clock,
    /// contention model, perfmon, and telemetry all observe the exact
    /// per-access sequence), then flush the deferred snoops to the tracker
    /// devices in one batched fan-out. `faulted` is whether the block was
    /// truncated by a hinting fault (for the telemetry counter).
    fn staged_bill(
        &mut self,
        words: &[u64],
        cut: usize,
        faulted: bool,
        st: &mut BatchState,
        s: &mut StagedScratch,
    ) {
        let timing = self.stage_times.is_some();
        let t2 = timing.then(std::time::Instant::now);
        let costs = self.config.costs;
        let node_lat = [
            self.memory.node(NodeId::Ddr).access_latency(),
            self.memory.node(NodeId::Cxl).access_latency(),
        ];
        s.snoops.clear();
        // The clock lives in a register for the whole pass, and every
        // telemetry counter below is a pure sum — accumulating the block's
        // deltas locally and merging them once leaves `batch` and the
        // clock in exactly the per-access state (histograms still record
        // per access; their state is commutative counters either way).
        let now0 = self.clock.now();
        let mut now = now0;
        let mut acc = [0u64; 2];
        let mut llc_hm = [0u64; 2];
        let mut dram_reads = [0u64; 2];
        let mut dram_wbs = [0u64; 2];
        let mut snoops_rw = [0u64; 2];
        for (i, &w) in words.iter().enumerate().take(cut) {
            let req = s.reqs[i];
            let line = CacheLineAddr(req & !REQ_WRITE_BIT);
            let is_write = req & REQ_WRITE_BIT != 0;
            let hit = s.hits[i];
            let mut latency = Nanos(s.base_lat[i]) + costs.llc_hit;
            let mut dram_node = None;
            if !hit {
                let node = NodeId::of_pfn(line.pfn());
                latency += node_lat[node_idx(node)];
                self.perfmon.record_read(node);
                if self.contention_on {
                    let extra = self.contention.demand_delay(node, now);
                    latency += extra;
                    if self.telemetry_on {
                        self.batch.contention_extra[node_idx(node)].record(extra.0);
                    }
                }
                if node == NodeId::Cxl {
                    s.snoops.push(SnoopEvent {
                        line,
                        is_write: false,
                        now,
                    });
                    snoops_rw[0] += 1;
                }
                dram_node = Some(node);
            }
            if s.wbs[i] != NO_WRITEBACK {
                let wb = CacheLineAddr(s.wbs[i]);
                let wb_node = NodeId::of_pfn(wb.pfn());
                self.perfmon.record_writeback(wb_node);
                if self.contention_on {
                    self.contention.writeback(wb_node, now);
                }
                dram_wbs[node_idx(wb_node)] += 1;
                if wb_node == NodeId::Cxl {
                    s.snoops.push(SnoopEvent {
                        line: wb,
                        is_write: true,
                        now,
                    });
                    snoops_rw[1] += 1;
                }
            }
            acc[is_write as usize] += 1;
            llc_hm[!hit as usize] += 1;
            match dram_node {
                Some(node) => {
                    dram_reads[node_idx(node)] += 1;
                    if self.telemetry_on {
                        self.batch.latency[BATCH_LAT_DDR + node_idx(node)].record(latency.0);
                    }
                }
                None if self.telemetry_on => self.batch.latency[BATCH_LAT_LLC].record(latency.0),
                None => {}
            }
            now += latency;
            if word_is_op_end(w) {
                st.record_op_end(now);
            }
        }
        self.clock.advance(now - now0);
        st.n += cut as u64;
        if self.telemetry_on {
            self.batch.pending = true;
            self.batch.accesses[0] += acc[0];
            self.batch.accesses[1] += acc[1];
            self.batch.llc[0] += llc_hm[0];
            self.batch.llc[1] += llc_hm[1];
            self.batch.dram_reads[0] += dram_reads[0];
            self.batch.dram_reads[1] += dram_reads[1];
            self.batch.dram_writebacks[0] += dram_wbs[0];
            self.batch.dram_writebacks[1] += dram_wbs[1];
            self.batch.snoops[BATCH_SNOOP_READ] += snoops_rw[0];
            self.batch.snoops[BATCH_SNOOP_WRITEBACK] += snoops_rw[1];
            self.batch.hinting_faults += faulted as u64;
        }

        // Stage 4: flush the deferred snoops to the tracker devices in
        // one batched fan-out.
        let t3 = timing.then(std::time::Instant::now);
        if !s.snoops.is_empty() {
            self.controller.snoop_batch(&s.snoops);
        }

        if let (Some(ts), Some(t2), Some(t3)) = (self.stage_times.as_deref_mut(), t2, t3) {
            ts.bill_ns += (t3 - t2).as_nanos() as u64;
            ts.tracker_ns += t3.elapsed().as_nanos() as u64;
            ts.blocks += 1;
            ts.staged_accesses += cut as u64;
        }
    }

    /// Core-sharded variant of [`System::staged_block`]: the translate
    /// gather and the LLC probe fan out across worker shards, with every
    /// cross-shard effect routed through a logical-time [`OpLog`] and
    /// applied by a sequential pass — see `crate::oplog` for the sync-
    /// point protocol. Byte-identical to the sequential engine at every
    /// shard count.
    ///
    /// ## Why the sharding is byte-identical
    ///
    /// * **Gather (parallel, by access range).** Each worker reads only
    ///   frozen state — PFNs cannot change mid-block (migrations happen at
    ///   pauses) — and writes only its own `split_at_mut` slice of the
    ///   request scratch plus its own run lane. PTE *flags* and the TLB
    ///   are not touched: a worker cannot know what flags an earlier slice
    ///   will store.
    /// * **Run replay (sequential, in logical time).** The merged run
    ///   lanes tile the block in order, so replaying them is exactly the
    ///   scalar translate loop with same-page stretches pre-compressed:
    ///   one TLB lookup/insert + fresh flag read per page run (fresh reads
    ///   observe earlier in-block stores), bulk repeat-hits for
    ///   continuations, one flag store per run. A non-present page is
    ///   only ever met at a run *start* (nothing clears the present bit
    ///   mid-block, and an earlier fault on the page would already have
    ///   truncated the block), so the fault cut lands on the same access
    ///   the scalar loop would have picked.
    /// * **LLC probe (parallel, by set range).** Requests are routed to
    ///   the shard owning their set, preserving per-set arrival order;
    ///   sets are independent and the per-shard probe replays
    ///   [`Llc::access_grouped`]'s decisions exactly (see
    ///   [`crate::cache::LlcShard::probe`]). Outcomes scatter back to
    ///   their logical-time positions; counter sums are commutative.
    /// * **Billing (sequential).** Stages 3–4 are the shared
    ///   [`System::staged_bill`], byte-for-byte the sequential path.
    fn staged_block_sharded(&mut self, words: &[u64], st: &mut BatchState) -> (usize, Option<Vpn>) {
        let timing = self.stage_times.is_some();
        let mut s = std::mem::take(&mut self.staged);
        let costs = self.config.costs;
        let n = words.len();
        // Slices shorter than the staged threshold are not worth a
        // work-queue round trip; the cap keeps per-worker slices at least
        // one threshold long (and depends only on the block length and
        // configuration, never on scheduling).
        let shards = self
            .sim_shards
            .min(n / self.config.staged_min_block.max(1))
            .max(1);

        // Stage 1a: parallel gather — pack LLC requests, log page runs.
        let t0 = timing.then(std::time::Instant::now);
        s.reqs.clear();
        s.reqs.resize(n, 0);
        s.base_lat.clear();
        s.base_lat.resize(n, 0);
        let part = Partition::new(n, shards);
        let lanes: Vec<Lane<PageRun>> = {
            let pt = &self.page_table;
            let mut tasks = Vec::with_capacity(shards);
            let mut req_rest = s.reqs.as_mut_slice();
            for r in part.ranges() {
                let (reqs, rest) = req_rest.split_at_mut(r.len());
                req_rest = rest;
                tasks.push(GatherTask {
                    start: r.start as u32,
                    words: &words[r],
                    reqs,
                    pt,
                });
            }
            tasks.into_par_iter().map(gather_runs).collect()
        };

        // Stage 1b: sequential replay of the merged run log — TLB, PTE
        // flags, and the hinting-fault cut, in logical-time order.
        let runlog = OpLog::from_lanes(lanes);
        let mut cut = n;
        let mut fault_vpn = None;
        let mut prev: Option<(Vpn, PteFlags, PteFlags)> = None;
        for (time, run) in runlog.iter_in_time() {
            let start = time as usize;
            if let Some((pv, flags, _)) = prev.as_mut() {
                if *pv == run.vpn {
                    // A slice boundary cut this page run in two: the
                    // front half already proved the page present and left
                    // its VPN most-recently-used, so every access here is
                    // a repeat hit.
                    self.tlb.repeat_hits(run.len as u64);
                    if run.wrote {
                        *flags = flags.with_dirty();
                    }
                    continue;
                }
            }
            if let Some((pv, flags, orig)) = prev.take() {
                if flags != orig {
                    self.page_table.store_flags(pv, flags);
                }
            }
            let pte = *self
                .page_table
                .get(run.vpn)
                .expect("gathered run lost its mapping");
            let mut flags = pte.flags;
            let orig = pte.flags;
            let mut lat = 0u64;
            let hint = !flags.present();
            if hint {
                self.hinting_faults += 1;
                self.bill_kernel(CostKind::HintingFault, costs.hinting_fault);
                lat += costs.hinting_fault.0;
                flags = flags.with_present();
            }
            if !self.tlb.lookup(run.vpn) {
                lat += costs.page_walk.0;
                flags = flags.with_accessed();
                self.tlb.insert(run.vpn);
            }
            s.base_lat[start] = lat;
            if hint {
                // The batch pauses after a hinting fault; truncate the
                // block at the faulting access (always a run start). Only
                // that access's own write flag reaches the dirty bit.
                if run.first_write {
                    flags = flags.with_dirty();
                }
                if flags != orig {
                    self.page_table.store_flags(run.vpn, flags);
                }
                cut = start + 1;
                fault_vpn = Some(run.vpn);
                break;
            }
            if run.wrote {
                flags = flags.with_dirty();
            }
            if run.len > 1 {
                self.tlb.repeat_hits(run.len as u64 - 1);
            }
            prev = Some((run.vpn, flags, orig));
        }
        if let Some((pv, flags, orig)) = prev {
            if flags != orig {
                self.page_table.store_flags(pv, flags);
            }
        }
        s.reqs.truncate(cut);

        // Stage 2a: route each request to the shard owning its LLC set
        // (lanes preserve per-set arrival order by construction).
        let t1 = timing.then(std::time::Instant::now);
        let lpart = Partition::new(self.llc.n_sets(), shards);
        let mut reqlog: OpLog<u64> = OpLog::new(shards);
        for (i, &r) in s.reqs.iter().enumerate() {
            reqlog.push(lpart.shard_of(self.llc.req_set(r) as usize), i as u32, r);
        }

        // Stage 2b: parallel per-shard probes over disjoint set-range
        // views of the cache.
        let bounds: Vec<std::ops::Range<usize>> = lpart.ranges().collect();
        let results: Vec<(Vec<bool>, Vec<u64>, LlcShardCounters)> = self
            .llc
            .shards(&bounds)
            .into_iter()
            .zip(reqlog.lanes())
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|(mut view, lane)| {
                let mut hits = vec![false; lane.len()];
                let mut wbs = vec![NO_WRITEBACK; lane.len()];
                view.probe(&lane.ops, &mut hits, &mut wbs);
                (hits, wbs, view.counters())
            })
            .collect();

        // Stage 2c: scatter outcomes back to their logical-time slots and
        // merge the (commutative) counters.
        s.hits.clear();
        s.hits.resize(cut, false);
        s.wbs.clear();
        s.wbs.resize(cut, NO_WRITEBACK);
        let mut counters = Vec::with_capacity(shards);
        for (lane, (hits, wbs, c)) in reqlog.lanes().iter().zip(&results) {
            for (j, &t) in lane.time.iter().enumerate() {
                s.hits[t as usize] = hits[j];
                s.wbs[t as usize] = wbs[j];
            }
            counters.push(*c);
        }
        self.llc.merge_shard_counters(&counters);

        // Stages 3–4: the shared sequential billing + tracker feed.
        let t2 = timing.then(std::time::Instant::now);
        if let Some(ts) = self.stage_times.as_deref_mut() {
            ts.sharded_blocks += 1;
            if let (Some(t0), Some(t1), Some(t2)) = (t0, t1, t2) {
                ts.translate_ns += (t1 - t0).as_nanos() as u64;
                ts.llc_ns += (t2 - t1).as_nanos() as u64;
            }
        }
        self.staged_bill(words, cut, fault_vpn.is_some(), st, &mut s);
        self.staged = s;
        (cut, fault_vpn)
    }

    /// Executes accesses from `chunk` starting at index `from`, returning
    /// the index of the first unexecuted access and why the batch paused.
    ///
    /// This is the batch core of the chunked run pipeline: instead of
    /// paying the epoch/fault/flush checks on every access, it computes the
    /// distance to the next *boundary* — the daemon's wake `deadline`, the
    /// periodic TLB flush, and the fault injector's next scheduled event —
    /// once, and runs a tight loop of bare [`System::access_core`] calls up
    /// to it. Accesses at or past a boundary fall back to the fully-checked
    /// [`System::try_access`] path one at a time, so the observable
    /// behaviour is identical to calling [`System::access`] in a loop.
    ///
    /// Sequencing contract (mirrors the per-access [`run`] loop):
    ///
    /// * at least one access is executed per call, even with
    ///   `deadline <= now` — the per-access loop likewise forces progress
    ///   after its bounded tick dispatch;
    /// * the batch pauses *before* the first access whose start time has
    ///   reached `deadline` (the driver dispatches daemon ticks, then
    ///   resumes);
    /// * the batch pauses *after* an access that took a hinting fault, so
    ///   the driver can deliver [`MigrationDaemon::on_fault`] in order.
    ///
    /// Op-latency state lives in `st` so one [`BatchState`] spans many
    /// chunks (ops may straddle chunk boundaries).
    ///
    /// # Panics
    ///
    /// Panics if an access touches an unmapped address, like
    /// [`System::access`].
    pub fn access_batch(
        &mut self,
        chunk: &AccessChunk,
        from: usize,
        max_accesses: u64,
        deadline: Option<Nanos>,
        st: &mut BatchState,
    ) -> (usize, BatchPause) {
        let words = chunk.words();
        let mut idx = from;
        let mut executed = false;
        loop {
            if idx >= words.len() {
                return (idx, BatchPause::Chunk);
            }
            if st.n >= max_accesses {
                return (idx, BatchPause::Budget);
            }
            if executed {
                if let Some(d) = deadline {
                    if self.clock.now() >= d {
                        return (idx, BatchPause::Wake);
                    }
                }
            }

            // Hot segment: while the injector is provably quiescent and no
            // flush or wake boundary has been reached, `service_faults`,
            // the flush-interval check, and the per-access fault queries
            // are all no-ops — skip them wholesale up to the horizon.
            let now = self.clock.now();
            let quiet = self.faults.quiescent(now)
                && self.ras.quiescent()
                && self.fault_events_seen == self.faults.log().len()
                && self.spike_span.is_none()
                && self.stall_span.is_none()
                && self.pressure_span.is_none();
            if quiet {
                let mut horizon = deadline.unwrap_or(Nanos(u64::MAX));
                if let Some(interval) = self.config.tlb_flush_interval {
                    horizon = horizon.min(self.last_tlb_flush + interval);
                }
                if let Some(at) = self.faults.next_scheduled() {
                    horizon = horizon.min(at);
                }
                if now < horizon {
                    // Staged fast path: bound how many accesses can start
                    // before the horizon (each access advances the clock by
                    // at most `quiet_access_bound`), and run that block
                    // through the four SoA passes in one go. The bound is
                    // conservative, so the block may undershoot the horizon
                    // — the outer loop simply sizes another block.
                    let avail = (words.len() - idx).min((max_accesses - st.n) as usize);
                    let block = if horizon.0 == u64::MAX {
                        avail
                    } else {
                        let u = self.quiet_access_bound().0.max(1);
                        (((horizon.0 - 1 - now.0) / u) + 1).min(avail as u64) as usize
                    };
                    if block >= self.config.staged_min_block {
                        // Shard the block across workers when asked to
                        // and the block is big enough to split (at least
                        // two threshold-sized slices); both engines are
                        // byte-identical, so this choice is purely a
                        // performance decision.
                        let sharded =
                            self.sim_shards > 1 && block >= 2 * self.config.staged_min_block.max(1);
                        let (done, fault) = if sharded {
                            self.staged_block_sharded(&words[idx..idx + block], st)
                        } else {
                            self.staged_block(&words[idx..idx + block], st)
                        };
                        idx += done;
                        executed = true;
                        if let Some(vpn) = fault {
                            return (idx, BatchPause::Fault(vpn));
                        }
                        continue;
                    }
                    while idx < words.len() && st.n < max_accesses && self.clock.now() < horizon {
                        let w = words[idx];
                        let out = self
                            .access_core(
                                VirtAddr(w & CHUNK_ADDR_MASK),
                                w & CHUNK_WRITE_BIT != 0,
                                false,
                            )
                            .unwrap_or_else(|e| panic!("{e}"));
                        idx += 1;
                        st.n += 1;
                        if w & CHUNK_OP_END_BIT != 0 {
                            st.record_op_end(self.clock.now());
                        }
                        if out.hinting_fault {
                            return (idx, BatchPause::Fault(VirtAddr(w & CHUNK_ADDR_MASK).vpn()));
                        }
                    }
                    executed = true;
                    continue;
                }
            }

            // Boundary (or non-quiescent injector): one fully-checked
            // access, then re-evaluate.
            let w = words[idx];
            let vaddr = VirtAddr(w & CHUNK_ADDR_MASK);
            let out = self.access(vaddr, w & CHUNK_WRITE_BIT != 0);
            idx += 1;
            st.n += 1;
            executed = true;
            if w & CHUNK_OP_END_BIT != 0 {
                st.record_op_end(self.clock.now());
            }
            if out.hinting_fault {
                return (idx, BatchPause::Fault(vaddr.vpn()));
            }
        }
    }

    /// Bills kernel work to the ledger and mirrors it to telemetry (via
    /// the per-tick batch; see [`TelemetryBatch`]).
    fn bill_kernel(&mut self, kind: CostKind, d: Nanos) {
        self.kernel.bill(kind, d);
        if self.telemetry_on {
            self.batch.pending = true;
            self.batch.kernel_ns[kind as usize] += d.0;
            self.batch.kernel_events[kind as usize] += 1;
        }
    }

    /// Bills daemon kernel work; when the daemon is co-located with the
    /// application core, the clock advances too (the application stalls).
    pub fn daemon_bill(&mut self, kind: CostKind, d: Nanos) {
        self.bill_kernel(kind, d);
        if self.config.colocated_daemon {
            self.clock.advance(d);
        }
    }

    /// Closes the perf-monitor measurement window at the current instant,
    /// returning both nodes' bandwidth stats (fast tier first) and updating
    /// the `sim.bw.bytes_per_sec` / `sim.nr_pages` telemetry gauges. This is
    /// the Monitor's sampling entry point (paper Table 1).
    pub fn rollover_bandwidth(&mut self) -> [BandwidthStats; 2] {
        self.flush_telemetry();
        let now = self.clock.now();
        let stats = self.perfmon.rollover(now);
        if self.telemetry.is_enabled() {
            for (node, bw) in NodeId::ALL.iter().zip(&stats) {
                self.telemetry
                    .gauge_set("sim.bw.bytes_per_sec", node.label(), bw.bytes_per_sec());
                self.telemetry.gauge_set(
                    "sim.nr_pages",
                    node.label(),
                    self.memory.node(*node).allocated_frames() as f64,
                );
            }
        }
        if self.contention_on {
            // The contention window rolls at the Monitor's cadence: each
            // closed epoch's offered bytes set the next epoch's curve.
            let windows = self.contention.rollover(now);
            if self.telemetry.is_enabled() {
                for node in NodeId::ALL {
                    self.telemetry.gauge_set(
                        "sim.contention.queue_ns",
                        node.label(),
                        self.contention.queue_ns(node, now) as f64,
                    );
                    self.telemetry.gauge_set(
                        "sim.contention.loaded_ns",
                        node.label(),
                        self.loaded_latency(node).0 as f64,
                    );
                }
                for class in TrafficClass::ALL {
                    let ns: u64 = windows.iter().map(|w| w.billed_ns[class as usize]).sum();
                    if ns > 0 {
                        self.telemetry
                            .counter_add("sim.contention.ns", class.label(), ns);
                    }
                }
            }
        }
        stats
    }

    /// Closes the measurement window and returns the merged epoch-boundary
    /// view a manager tick consumes: per-node page counts, bandwidth
    /// windows, and unloaded/loaded latencies, all `[DDR, CXL]` ordered.
    ///
    /// This is the sharded driver's **sync point for manager state**: by
    /// the oplog protocol (see `crate::oplog`) a daemon tick only runs
    /// between blocks, when every shard's effects have already been
    /// replayed into the owning state — so the "merge" is simply reading
    /// that state, and the view is identical at every shard count. (The
    /// quiescence holds structurally: daemon ticks are dispatched by the
    /// drivers only between batches, never while a block's scratch is
    /// checked out.)
    ///
    /// Wraps [`System::rollover_bandwidth`] (inheriting its telemetry
    /// gauge publication) and performs the exact same reads the manager's
    /// Monitor historically did inline, in the same order, so sampling
    /// through the view is byte-identical.
    pub fn merged_view(&mut self) -> MergedView {
        let bw = self.rollover_bandwidth();
        MergedView {
            bw,
            lat_unloaded: [
                self.config.ddr.access_latency,
                self.config.cxl.access_latency,
            ],
            lat_loaded: [
                self.loaded_latency(NodeId::Ddr),
                self.loaded_latency(NodeId::Cxl),
            ],
            nr_pages: [self.nr_pages(NodeId::Ddr), self.nr_pages(NodeId::Cxl)],
        }
    }

    /// The expected end-to-end latency of the next demand fill on `node`:
    /// the configured node latency plus, with the contention model on, the
    /// standing loaded-latency curve delay and the current (capped) queue
    /// backlog. Equals the configured latency exactly when contention is
    /// disabled.
    pub fn loaded_latency(&self, node: NodeId) -> Nanos {
        let base = self.memory.node(node).access_latency();
        if self.contention_on {
            base + self.contention.extra_estimate(node, self.clock.now())
        } else {
            base
        }
    }

    /// The contention model (read-only: queue depths, billing ledgers).
    pub fn contention(&self) -> &Contention {
        &self.contention
    }

    /// Migrates `vpn` to `dst`, with the Promoter-style safety checks.
    ///
    /// A failed call counts one rejected migration: a direct call is one
    /// request, and its failure is final. Retry-aware callers (the internal
    /// promote-with-demotion loop, the M5 Promoter's backoff rounds) must
    /// use [`System::migrate_page_uncounted`] for their re-attempts and
    /// count the *final* outcome exactly once — otherwise one rejected
    /// request inflates [`MigrationStats::rejected`] by the retry count.
    ///
    /// # Errors
    ///
    /// Returns a [`MigrateError`] if the page is unmapped, already on `dst`,
    /// pinned, node-bound, no shadow frame is available, the copy faults,
    /// the watchdog rolls the transaction back, or a controller reset
    /// fences the engine. No cost is billed on the pre-transaction safety
    /// rejections except for the rejected-stat bump.
    pub fn migrate_page(&mut self, vpn: Vpn, dst: NodeId) -> Result<(), MigrateError> {
        self.migrate_txn(vpn, dst, true)
    }

    /// [`System::migrate_page`] without the rejected-stat bump on failure,
    /// for callers that retry and account the final outcome themselves via
    /// [`System::note_rejected_migrations`]. Successful migrations are
    /// always counted (a success is never retried).
    pub fn migrate_page_uncounted(&mut self, vpn: Vpn, dst: NodeId) -> Result<(), MigrateError> {
        self.migrate_txn(vpn, dst, false)
    }

    /// The single migration entry point: counted/uncounted is a flag on the
    /// transaction, not a separate code path.
    fn migrate_txn(&mut self, vpn: Vpn, dst: NodeId, counted: bool) -> Result<(), MigrateError> {
        let r = self.migrate_txn_inner(vpn, dst, counted);
        if counted && r.is_err() {
            self.note_rejected_migrations(1);
        }
        r
    }

    /// Appends one journal record's worth of kernel time and consumes a
    /// controller reset due at the new step, fencing the engine. Returns
    /// `true` if a reset struck at this append (the append itself is
    /// durable; everything sequenced after it is lost).
    fn post_append(&mut self) -> bool {
        let cost = self.config.costs.journal_write;
        self.daemon_bill(CostKind::JournalWrite, cost);
        if self.contention_on {
            // The journal lives on the CXL device: each append is a 64 B
            // write on the shared link, contending with demand traffic.
            let now = self.clock.now();
            let d = self
                .contention
                .bulk_delay(NodeId::Cxl, TrafficClass::Migration, 64, true, now);
            if d > Nanos::ZERO {
                self.daemon_bill(CostKind::JournalWrite, d);
            }
        }
        if self.faults.take_reset(self.journal.steps()) {
            self.journal.fence();
            if self.telemetry.is_enabled() {
                let now = self.clock.now().0;
                self.telemetry.counter_add("sim.txn", "reset", 1);
                self.telemetry
                    .event(now, "sim.txn.reset", "controller reset at journal append");
            }
            true
        } else {
            false
        }
    }

    /// Drives `id` to a terminal `state`: appends the terminal record
    /// (billed, reset-checked — a reset on a terminal append only fences,
    /// the transaction itself is already retired), bumps the `sim.txn`
    /// counter, and closes the transaction's span.
    fn finish_txn(&mut self, id: TxnId, state: TxnState) {
        let retired = self.journal.transition(id, state);
        self.post_append();
        if self.telemetry.is_enabled() {
            self.telemetry.counter_add("sim.txn", state.label(), 1);
            if let Some(span) = retired.and_then(|t| t.span) {
                self.telemetry.span_end(self.clock.now().0, span);
            }
        }
    }

    fn migrate_txn_inner(
        &mut self,
        vpn: Vpn,
        dst: NodeId,
        counted: bool,
    ) -> Result<(), MigrateError> {
        self.service_faults();
        if self.journal.is_fenced() {
            return Err(MigrateError::NeedsRecovery);
        }
        let pte = match self.page_table.get(vpn) {
            Some(p) => *p,
            None => return Err(MigrateError::NotMapped),
        };
        // Promoter-style safety checks (§5.2) stay in front of the
        // transaction: a rejected request never opens a journal entry.
        let check = if pte.node() == dst {
            Some(MigrateError::AlreadyThere)
        } else if pte.flags.pinned() {
            Some(MigrateError::Pinned)
        } else if pte.flags.cxl_bound() && dst == NodeId::Ddr {
            Some(MigrateError::NodeBound)
        } else if !self.ras.quiescent() && self.ras.health(dst) >= NodeHealth::Evacuating {
            // No new pages may land on a node the RAS layer is draining —
            // otherwise the evacuation chases its own tail.
            Some(MigrateError::NodeOffline { node: dst })
        } else {
            None
        };
        if let Some(e) = check {
            return Err(e);
        }
        let src = pte.pfn;
        let costs = self.config.costs;

        // Phase 1 — Intent: the write-ahead promise.
        let id = self.journal.begin(vpn, src, dst, counted);
        if self.telemetry.is_enabled() {
            let span = self.telemetry.span_start(
                self.clock.now().0,
                "sim.migration.txn",
                match dst {
                    NodeId::Ddr => "promote",
                    NodeId::Cxl => "demote",
                },
            );
            self.journal.set_span(id, span);
        }
        if self.post_append() {
            return Err(MigrateError::Remap {
                phase: TxnState::Intent,
            });
        }

        // Phase 2 — shadow frame on the destination. Injected DDR pressure
        // makes the fast tier behave as full even though frames are
        // nominally free (another tenant grabbed them).
        let pressured = dst == NodeId::Ddr && self.faults.ddr_pressure(self.clock.now());
        let shadow = if pressured {
            Err(OutOfFrames { node: dst })
        } else {
            self.memory.alloc_on(dst)
        };
        let shadow = match shadow {
            Ok(p) => p,
            Err(e) => {
                let err = if !pressured && self.memory.node(dst).quarantined_frames() > 0 {
                    MigrateError::Quarantined { node: dst }
                } else {
                    MigrateError::NoFreeFrame(e)
                };
                self.finish_txn(id, TxnState::Aborted);
                return Err(err);
            }
        };
        self.journal.set_shadow(id, shadow);
        self.journal.transition(id, TxnState::CopyInProgress);
        if self.post_append() {
            return Err(MigrateError::Remap {
                phase: TxnState::CopyInProgress,
            });
        }

        // Watchdog: the copy engine moves data through the controller, so a
        // stalled controller blocks the copy. Wait out short stalls (billed
        // as migration time); roll back rather than wait past the deadline.
        let stall = self.faults.stall_remaining(self.clock.now());
        if stall > Nanos::ZERO {
            if stall > self.config.migration_watchdog {
                self.daemon_bill(CostKind::Migration, self.config.migration_watchdog);
                self.memory.free(shadow);
                self.finish_txn(id, TxnState::RolledBack);
                return Err(MigrateError::Stalled { waited: stall });
            }
            self.daemon_bill(CostKind::Migration, stall);
        }

        if self.faults.take_copy_failure() {
            // Copy-engine/DMA fault mid-copy: the shadow frame's contents
            // are suspect, so it leaves the allocator until scrubbed. The
            // source page is untouched.
            self.memory.quarantine(shadow);
            self.telemetry.counter_add("sim.quarantine", "poisoned", 1);
            self.finish_txn(id, TxnState::RolledBack);
            return Err(MigrateError::Copy {
                line: shadow.word(WordIndex(0)).cache_line(),
            });
        }

        // Phase 3 — atomic remap: shootdown, PTE switch, stale-line
        // eviction, optional pollution of the shadow frame's lines.
        self.tlb.invalidate(vpn);
        self.daemon_bill(CostKind::TlbShootdown, costs.tlb_shootdown);
        self.daemon_bill(CostKind::Migration, costs.migrate_per_page);
        if self.contention_on {
            // The copy DMA reads one page off the source link and writes
            // it to the destination link; both bursts wait out their
            // queues and feed the backlog demand fills will wait on.
            let now = self.clock.now();
            let page = crate::addr::PAGE_SIZE as u64;
            let src_node = NodeId::of_pfn(src);
            let d = self
                .contention
                .bulk_delay(src_node, TrafficClass::Migration, page, false, now)
                + self
                    .contention
                    .bulk_delay(dst, TrafficClass::Migration, page, true, now);
            if d > Nanos::ZERO {
                self.daemon_bill(CostKind::Migration, d);
            }
        }
        let old_pfn = self.page_table.remap(vpn, shadow);
        debug_assert_eq!(old_pfn, src, "page moved underneath an open transaction");
        for w in 0..WORDS_PER_PAGE as u8 {
            self.llc.invalidate(old_pfn.word(WordIndex(w)).cache_line());
        }
        if self.config.migration_pollutes_cache {
            for w in 0..WORDS_PER_PAGE as u8 {
                if let Some(wb) = self.llc.fill(shadow.word(WordIndex(w)).cache_line(), false) {
                    self.perfmon.record_writeback(NodeId::of_pfn(wb.pfn()));
                }
            }
        }
        self.journal.transition(id, TxnState::Remapped);
        if self.post_append() {
            // The remap is durable but the source frame was not freed:
            // recovery rolls this transaction forward and counts it.
            return Err(MigrateError::Remap {
                phase: TxnState::Remapped,
            });
        }

        // Phase 4 — source free + commit.
        self.memory.free(src);
        match dst {
            NodeId::Ddr => self.ddr_lru.insert(vpn),
            NodeId::Cxl => {
                self.ddr_lru.remove(vpn);
            }
        }
        self.migrations.record(dst);
        self.telemetry.counter_add(
            "sim.migrations",
            match dst {
                NodeId::Ddr => "promoted",
                NodeId::Cxl => "demoted",
            },
            1,
        );
        self.finish_txn(id, TxnState::Committed);
        Ok(())
    }

    /// Whether the migration engine is fenced after a controller reset and
    /// [`System::recover`] must run before new migrations.
    pub fn needs_recovery(&self) -> bool {
        self.journal.is_fenced()
    }

    /// The migration write-ahead journal (read-only: steps, open
    /// transactions, terminal counters).
    pub fn journal(&self) -> &MigrationJournal {
        &self.journal
    }

    /// Frames of `node` currently quarantined pending a scrub.
    pub fn quarantined_frames(&self, node: NodeId) -> u64 {
        self.memory.node(node).quarantined_frames()
    }

    /// Whether an armed controller reset has not yet struck — the crash
    /// sweep uses this to tell "reset fired and was recovered" apart from
    /// "the run finished before reaching the target journal step".
    pub fn reset_pending(&self) -> bool {
        self.faults.reset_pending()
    }

    /// Replays the migration journal after a controller reset, rolling each
    /// open transaction back or forward to a consistent state, and lifts
    /// the engine fence.
    ///
    /// Semantics per open transaction (the append that recorded its state
    /// is durable; mutations sequenced after it are lost):
    ///
    /// * `Intent` — nothing was mutated: abort.
    /// * `CopyInProgress` — the shadow frame was allocated but the mapping
    ///   is untouched: free the shadow, roll back.
    /// * `Remapped` — inspect the page table. If the PTE points at the
    ///   shadow frame the migration is effectively done: free the source,
    ///   fix the MGLRU, count it, commit (roll *forward*). Otherwise free
    ///   the shadow and roll back.
    ///
    /// Each closure appends a terminal journal record (billed as kernel
    /// time; resets are not consumed during recovery). Safe to call when
    /// nothing is pending — it is then a no-op that returns a clean report.
    pub fn recover(&mut self) -> RecoveryReport {
        let open = self.journal.take_open();
        let mut report = RecoveryReport {
            scanned: open.len() as u64,
            ..RecoveryReport::default()
        };
        let journal_cost = self.config.costs.journal_write;
        for txn in open {
            let terminal = match txn.state {
                TxnState::Intent => {
                    report.aborted += 1;
                    TxnState::Aborted
                }
                TxnState::CopyInProgress => {
                    if let Some(shadow) = txn.shadow {
                        self.memory.free(shadow);
                    }
                    report.rolled_back += 1;
                    TxnState::RolledBack
                }
                TxnState::Remapped => {
                    let shadow = txn.shadow.expect("Remapped txn always has a shadow frame");
                    let mapped_to_shadow =
                        self.page_table.get(txn.vpn).map(|p| p.pfn) == Some(shadow);
                    if mapped_to_shadow {
                        self.memory.free(txn.src);
                        match txn.dst {
                            NodeId::Ddr => self.ddr_lru.insert(txn.vpn),
                            NodeId::Cxl => {
                                self.ddr_lru.remove(txn.vpn);
                            }
                        }
                        self.migrations.record(txn.dst);
                        self.telemetry.counter_add(
                            "sim.migrations",
                            match txn.dst {
                                NodeId::Ddr => "promoted",
                                NodeId::Cxl => "demoted",
                            },
                            1,
                        );
                        report.rolled_forward += 1;
                        TxnState::Committed
                    } else {
                        self.memory.free(shadow);
                        report.rolled_back += 1;
                        TxnState::RolledBack
                    }
                }
                terminal => unreachable!("terminal txn {terminal} left open in journal"),
            };
            let retired = self.journal.append_terminal(txn, terminal);
            self.daemon_bill(CostKind::JournalWrite, journal_cost);
            if self.telemetry.is_enabled() {
                self.telemetry.counter_add("sim.txn", terminal.label(), 1);
                if let Some(span) = retired.span {
                    self.telemetry.span_end(self.clock.now().0, span);
                }
            }
        }
        self.journal.clear_fence();
        debug_assert!(
            self.check_invariants().is_empty(),
            "recovery left invariants broken: {:?}",
            self.check_invariants()
        );
        report
    }

    /// Scrubs up to `max` quarantined frames per node, returning them to
    /// the allocators; bills the scrub work. Returns the number of frames
    /// scrubbed across both nodes.
    pub fn scrub_quarantine(&mut self, max: u64) -> u64 {
        let mut total = 0;
        for node in NodeId::ALL {
            let n = self.memory.node_mut(node).scrub(max);
            total += n;
        }
        if total > 0 {
            let per = self.config.costs.scrub_per_frame;
            self.daemon_bill(CostKind::DaemonOther, per * total);
            self.telemetry
                .counter_add("sim.quarantine", "scrubbed", total);
        }
        total
    }

    /// The RAS state machine (read-only: per-node health, CE trends,
    /// evacuation reports).
    pub fn ras(&self) -> &RasState {
        &self.ras
    }

    /// Frames of `node` permanently retired by the RAS layer.
    pub fn offlined_frames(&self, node: NodeId) -> u64 {
        self.memory.node(node).offlined_frames()
    }

    /// One epoch of RAS service work, driven from the migration daemon's
    /// tick (the M5 manager calls this from its `on_tick` prologue):
    ///
    /// 1. **Predictive soft-offlining** — frames whose correctable-error
    ///    count crossed [`crate::ras::RasConfig::ce_offline_threshold`] have
    ///    their page migrated off through the journaled (crash-consistent)
    ///    migration path, then the frame is permanently retired. The patrol
    ///    walk behind the candidate harvest is billed as
    ///    [`CostKind::RasScrub`] and re-nominates frames whose earlier
    ///    attempt failed (stranded page, frame in flight).
    /// 2. **Bounded live evacuation** — while the CXL node is `Evacuating`,
    ///    up to `drain_budget` pages per call are migrated to the survivor.
    ///    The budget is the backpressure: demand traffic never waits on
    ///    more than one bounded drain per epoch, and a full survivor
    ///    degrades the drain gracefully instead of wedging it. The node
    ///    goes `Offline` — with an [`EvacuationReport`] — once nothing
    ///    drainable remains or the deadline expires.
    ///
    /// A no-op while the RAS layer is quiescent (fault-free runs) or the
    /// migration engine is fenced awaiting [`System::recover`].
    pub fn ras_service(&mut self, drain_budget: u64) -> RasServiceReport {
        let mut report = RasServiceReport::default();
        // Deliver any RAS faults queued since the last access first, so an
        // epoch that saw no demand traffic still notices the trend.
        self.service_faults();
        if self.ras.quiescent() || self.journal.is_fenced() {
            return report;
        }
        let now = self.clock.now();
        self.ras.decay(NodeId::Cxl, now);

        // Phase 1: soft-offline frames with a concerning CE trend.
        let capacity = self.config.cxl.capacity_frames;
        let (candidates, walked) =
            self.ras
                .harvest_offline_candidates(NodeId::Cxl, capacity, RAS_OFFLINE_BATCH);
        if walked > 0 {
            let per = self.config.costs.ras_patrol_per_frame;
            self.daemon_bill(CostKind::RasScrub, per * walked);
            if self.contention_on {
                // Patrol reads one line's worth of CE state per walked
                // frame over the same link demand traffic uses.
                let d = self.contention.bulk_delay(
                    NodeId::Cxl,
                    TrafficClass::Ras,
                    64 * walked,
                    false,
                    self.clock.now(),
                );
                if d > Nanos::ZERO {
                    self.daemon_bill(CostKind::RasScrub, d);
                }
            }
        }
        for idx in candidates {
            let pfn = Pfn(CXL_BASE_PFN + idx);
            if let Some(vpn) = self.page_table.vpn_of(pfn) {
                if self.migrate_page_uncounted(vpn, NodeId::Ddr).is_err() {
                    // Stranded (pinned page, full survivor, fenced engine):
                    // the patrol walk re-nominates the frame next epoch.
                    report.offline_retries += 1;
                    continue;
                }
            }
            if self.memory.node_mut(NodeId::Cxl).offline_frame(pfn) {
                self.ras.note_offlined(NodeId::Cxl, idx);
                report.frames_offlined += 1;
                if self.telemetry.is_enabled() {
                    self.telemetry.counter_add("sim.ras", "frame-offlined", 1);
                }
            } else {
                // Held by an open migration transaction; retry next epoch.
                report.offline_retries += 1;
            }
        }

        // Phase 2: bounded live-evacuation drain.
        if self.ras.health(NodeId::Cxl) != NodeHealth::Evacuating {
            return report;
        }
        if !self.ras.evac_deadline_passed(NodeId::Cxl, now) && drain_budget > 0 {
            let victims: Vec<Vpn> = self
                .page_table
                .pages_on(NodeId::Cxl)
                .filter(|(_, pte)| !pte.flags.pinned() && !pte.flags.cxl_bound())
                .map(|(vpn, _)| vpn)
                .take(drain_budget as usize)
                .collect();
            let mut exhausted = false;
            for vpn in victims {
                match self.migrate_page_uncounted(vpn, NodeId::Ddr) {
                    Ok(()) => report.pages_drained += 1,
                    Err(MigrateError::NoFreeFrame(_)) | Err(MigrateError::Quarantined { .. }) => {
                        exhausted = true;
                        break;
                    }
                    Err(MigrateError::NeedsRecovery) | Err(MigrateError::Remap { .. }) => break,
                    Err(_) => {}
                }
            }
            if report.pages_drained > 0 {
                self.ras.note_evacuated(NodeId::Cxl, report.pages_drained);
                if self.telemetry.is_enabled() {
                    self.telemetry
                        .counter_add("sim.ras", "pages-drained", report.pages_drained);
                }
            }
            if exhausted && !self.evac_exhaustion_noted {
                self.evac_exhaustion_noted = true;
                self.note_degradation(format!(
                    "RAS: evacuation drain stalled: {}",
                    SimError::CapacityExhausted(NodeId::Ddr)
                ));
            }
        }

        // Completion check: the node goes Offline once nothing drainable
        // remains (full drain, or only pinned/node-bound residents) or the
        // deadline expired with pages stranded on it.
        let mut residual = 0u64;
        let mut movable = false;
        for (_, pte) in self.page_table.pages_on(NodeId::Cxl) {
            residual += 1;
            if !pte.flags.pinned() && !pte.flags.cxl_bound() {
                movable = true;
            }
        }
        let now = self.clock.now();
        let expired = self.ras.evac_deadline_passed(NodeId::Cxl, now);
        if residual == 0 || !movable || expired {
            if let Some(done) = self.ras.complete_evacuation(NodeId::Cxl, now, residual) {
                report.evacuation = Some(done);
                self.evac_exhaustion_noted = false;
                let span = self.evac_span.take();
                if self.telemetry.is_enabled() {
                    self.telemetry.gauge_set(
                        "sim.ras.health",
                        NodeId::Cxl.label(),
                        NodeHealth::Offline.gauge(),
                    );
                    self.telemetry.counter_add("sim.ras", "evacuations", 1);
                    if let Some(span) = span {
                        self.telemetry.span_end(now.0, span);
                    }
                }
                self.note_degradation(format!(
                    "RAS: CXL node offline: {} pages drained, {} residual, deadline {}",
                    done.pages_moved,
                    done.residual,
                    if done.deadline_met { "met" } else { "missed" }
                ));
            }
        }
        report
    }

    /// Checks the crash-consistency invariants, returning a human-readable
    /// description of every violation (empty when consistent):
    ///
    /// * every mapped VPN points at exactly one frame, and no frame backs
    ///   two VPNs;
    /// * no mapped frame is simultaneously free, quarantined, or
    ///   RAS-offlined;
    /// * each node's free + allocated + quarantined + offlined partition
    ///   its capacity;
    /// * every allocated frame is accounted for — mapped by the page table
    ///   or in flight in an open migration transaction;
    /// * the journal's committed terminal counts reconcile with
    ///   [`MigrationStats`].
    pub fn check_invariants(&self) -> Vec<String> {
        let mut violations = Vec::new();

        // Frame uniqueness across the page table.
        let mut frame_owner: std::collections::HashMap<crate::addr::Pfn, Vpn> =
            std::collections::HashMap::new();
        for (vpn, pte) in self.page_table.iter_mapped() {
            if let Some(prev) = frame_owner.insert(pte.pfn, vpn) {
                violations.push(format!(
                    "frame {:?} double-mapped by {prev:?} and {vpn:?}",
                    pte.pfn
                ));
            }
        }

        // Frames legitimately held by open (in-flight) transactions.
        let mut in_flight: std::collections::HashSet<crate::addr::Pfn> =
            std::collections::HashSet::new();
        for txn in self.journal.open() {
            match txn.state {
                TxnState::Intent => {}
                TxnState::CopyInProgress => {
                    if let Some(shadow) = txn.shadow {
                        in_flight.insert(shadow);
                    }
                }
                TxnState::Remapped => {
                    if let Some(shadow) = txn.shadow {
                        // After the durable remap the *source* frame is the
                        // in-flight one; if the remap was lost, the shadow.
                        if self.page_table.get(txn.vpn).map(|p| p.pfn) == Some(shadow) {
                            in_flight.insert(txn.src);
                        } else {
                            in_flight.insert(shadow);
                        }
                    }
                }
                _ => violations.push(format!("terminal txn {:?} still open", txn.id)),
            }
        }

        for node in NodeId::ALL {
            let n = self.memory.node(node);
            let free: std::collections::HashSet<crate::addr::Pfn> = n.free_pfns().collect();
            let quarantined: std::collections::HashSet<crate::addr::Pfn> =
                n.quarantined_pfns().collect();
            let offlined: std::collections::HashSet<crate::addr::Pfn> = n.offlined_pfns().collect();

            for pfn in &quarantined {
                if free.contains(pfn) {
                    violations.push(format!("{node}: frame {pfn:?} both free and quarantined"));
                }
            }
            for pfn in &offlined {
                if free.contains(pfn) {
                    violations.push(format!("{node}: frame {pfn:?} both free and offlined"));
                }
                if quarantined.contains(pfn) {
                    violations.push(format!(
                        "{node}: frame {pfn:?} both quarantined and offlined"
                    ));
                }
            }
            let accounted = free.len() as u64
                + quarantined.len() as u64
                + offlined.len() as u64
                + n.allocated_frames();
            if accounted != n.capacity_frames() {
                violations.push(format!(
                    "{node}: free {} + quarantined {} + offlined {} + allocated {} != capacity {}",
                    free.len(),
                    quarantined.len(),
                    offlined.len(),
                    n.allocated_frames(),
                    n.capacity_frames()
                ));
            }

            let mut mapped_here = 0u64;
            for (vpn, pte) in self.page_table.iter_mapped() {
                if NodeId::of_pfn(pte.pfn) != node {
                    continue;
                }
                mapped_here += 1;
                if free.contains(&pte.pfn) {
                    violations.push(format!(
                        "{node}: mapped frame {:?} ({vpn:?}) is free",
                        pte.pfn
                    ));
                }
                if quarantined.contains(&pte.pfn) {
                    violations.push(format!(
                        "{node}: mapped frame {:?} ({vpn:?}) is quarantined",
                        pte.pfn
                    ));
                }
                if offlined.contains(&pte.pfn) {
                    violations.push(format!(
                        "{node}: mapped frame {:?} ({vpn:?}) is offlined",
                        pte.pfn
                    ));
                }
            }
            let in_flight_here = in_flight
                .iter()
                .filter(|p| NodeId::of_pfn(**p) == node)
                .count() as u64;
            if mapped_here + in_flight_here != n.allocated_frames() {
                violations.push(format!(
                    "{node}: mapped {mapped_here} + in-flight {in_flight_here} != allocated {}",
                    n.allocated_frames()
                ));
            }
        }

        // Journal terminal counters reconcile with migration stats.
        let counters = self.journal.counters();
        if counters.committed_promotions != self.migrations.promotions {
            violations.push(format!(
                "journal committed promotions {} != stats promotions {}",
                counters.committed_promotions, self.migrations.promotions
            ));
        }
        if counters.committed_demotions != self.migrations.demotions {
            violations.push(format!(
                "journal committed demotions {} != stats demotions {}",
                counters.committed_demotions, self.migrations.demotions
            ));
        }

        violations
    }

    /// Counts `n` migration requests whose final outcome was rejection.
    /// Paired with [`System::migrate_page_uncounted`]: a retrying caller
    /// calls this once per request it gives up on, never per attempt.
    pub fn note_rejected_migrations(&mut self, n: u64) {
        self.migrations.rejected += n;
        self.telemetry.counter_add("sim.migrations", "rejected", n);
    }

    /// Migrates a batch of pages to `dst`, collecting per-page outcomes
    /// (the `migrate_pages()` interface used by the Promoter).
    pub fn migrate_batch(&mut self, vpns: &[Vpn], dst: NodeId) -> BatchOutcome {
        let mut out = BatchOutcome::default();
        for &vpn in vpns {
            match self.migrate_page(vpn, dst) {
                Ok(()) => out.migrated.push(vpn),
                Err(e) => out.rejected.push((vpn, e)),
            }
        }
        out
    }

    /// Runs one MGLRU aging pass over the DDR-resident pages, billing the
    /// PTE scans, and returns the number of PTEs scanned.
    pub fn mglru_age(&mut self) -> u64 {
        let scanned = self.ddr_lru.age(&mut self.page_table);
        let per = self.config.costs.pte_scan_per_entry;
        self.daemon_bill(CostKind::PteScan, per * scanned);
        scanned
    }

    /// Demotes up to `n` of the coldest DDR pages to CXL, returning how many
    /// actually moved. Victims that fail the safety checks are put back.
    pub fn demote_coldest(&mut self, n: usize) -> usize {
        let victims = self.ddr_lru.pick_coldest(n);
        let mut moved = 0;
        for vpn in victims {
            match self.migrate_page(vpn, NodeId::Cxl) {
                Ok(()) => moved += 1,
                Err(_) => self.ddr_lru.insert(vpn),
            }
        }
        moved
    }

    /// Promotes `vpns` to DDR, demoting cold pages to make room when the
    /// fast tier fills up (the paper's §7.2 protocol: once DDR is full,
    /// every batch of promotions demotes an equal number of MGLRU-cold
    /// pages). Returns the batch outcome.
    ///
    /// Each requested page counts at most one rejected migration, no matter
    /// how many internal attempts (initial try, post-demotion retry) it
    /// took to reach that verdict.
    pub fn promote_with_demotion(&mut self, vpns: &[Vpn], demote_batch: usize) -> BatchOutcome {
        let out = self.promote_with_demotion_impl(vpns, demote_batch);
        self.note_rejected_migrations(out.rejected.len() as u64);
        out
    }

    /// [`System::promote_with_demotion`] without counting the rejections,
    /// for callers (the M5 Promoter) that retry transiently-failed pages in
    /// later rounds and count only the pages they finally give up on.
    pub fn promote_with_demotion_uncounted(
        &mut self,
        vpns: &[Vpn],
        demote_batch: usize,
    ) -> BatchOutcome {
        self.promote_with_demotion_impl(vpns, demote_batch)
    }

    /// The shared body: counted/uncounted differ only in whether the caller
    /// counts the final rejections (individual attempts inside this loop
    /// always go through the uncounted transactional path).
    fn promote_with_demotion_impl(&mut self, vpns: &[Vpn], demote_batch: usize) -> BatchOutcome {
        let mut out = BatchOutcome::default();
        let mut aged_this_call = false;
        for &vpn in vpns {
            match self.migrate_txn(vpn, NodeId::Ddr, false) {
                Ok(()) => out.migrated.push(vpn),
                Err(MigrateError::NoFreeFrame(_)) | Err(MigrateError::Quarantined { .. }) => {
                    // Age before the first demotion of this batch so
                    // recently-accessed pages are refreshed to the young
                    // generation — otherwise an undifferentiated gen-0
                    // FIFO would demote the *first-promoted* (typically
                    // hottest) pages first.
                    if !aged_this_call {
                        self.mglru_age();
                        aged_this_call = true;
                    }
                    let demoted = self.demote_coldest(demote_batch.max(1));
                    if demoted == 0 {
                        out.rejected.push((
                            vpn,
                            MigrateError::NoFreeFrame(OutOfFrames { node: NodeId::Ddr }),
                        ));
                        continue;
                    }
                    match self.migrate_txn(vpn, NodeId::Ddr, false) {
                        Ok(()) => out.migrated.push(vpn),
                        Err(e) => out.rejected.push((vpn, e)),
                    }
                }
                Err(e) => out.rejected.push((vpn, e)),
            }
        }
        out
    }

    /// Free frames remaining on `node`.
    pub fn free_frames(&self, node: NodeId) -> u64 {
        self.memory.node(node).free_frames()
    }

    /// Pages currently allocated on `node` (the `nr_pages()` Monitor
    /// function, Table 1).
    pub fn nr_pages(&self, node: NodeId) -> u64 {
        self.memory.node(node).allocated_frames()
    }

    /// Attaches a near-memory device to the CXL controller.
    pub fn attach_device<D: CxlDevice>(&mut self, device: D) -> DeviceHandle {
        self.controller.attach(device)
    }

    /// Borrows an attached device by handle.
    pub fn device<D: CxlDevice>(&self, handle: DeviceHandle) -> Option<&D> {
        self.controller.device(handle)
    }

    /// Mutably borrows an attached device by handle.
    pub fn device_mut<D: CxlDevice>(&mut self, handle: DeviceHandle) -> Option<&mut D> {
        self.controller.device_mut(handle)
    }

    /// The page table (read-only).
    pub fn page_table(&self) -> &PageTable {
        &self.page_table
    }

    /// The page table (mutable — used by daemons to sample/clear PTE bits
    /// and by tests).
    pub fn page_table_mut(&mut self) -> &mut PageTable {
        &mut self.page_table
    }

    /// The TLB (mutable — ANB's unmap protocol invalidates entries).
    pub fn tlb_mut(&mut self) -> &mut Tlb {
        &mut self.tlb
    }

    /// The TLB (read-only).
    pub fn tlb(&self) -> &Tlb {
        &self.tlb
    }

    /// The LLC (read-only).
    pub fn llc(&self) -> &Llc {
        &self.llc
    }

    /// The performance monitor.
    pub fn perfmon(&self) -> &PerfMonitor {
        &self.perfmon
    }

    /// The performance monitor (mutable — the Monitor component rolls its
    /// measurement window).
    pub fn perfmon_mut(&mut self) -> &mut PerfMonitor {
        &mut self.perfmon
    }

    /// The kernel-cost ledger.
    pub fn kernel_costs(&self) -> &KernelCosts {
        &self.kernel
    }

    /// Cumulative migration statistics.
    pub fn migration_stats(&self) -> MigrationStats {
        self.migrations
    }

    /// Soft page faults taken so far.
    pub fn hinting_faults(&self) -> u64 {
        self.hinting_faults
    }

    /// A cumulative snapshot of every aggregate a [`RunReport`] is built
    /// from. Capture one before a run, another after, and diff — this is
    /// the single accounting path used by [`run`], so reports and live
    /// telemetry can never disagree about what a counter means.
    pub fn stats(&self) -> SystemStats {
        SystemStats {
            now: self.clock.now(),
            llc_hits: self.llc.hits(),
            llc_misses: self.llc.misses(),
            dram_reads: [
                self.perfmon.total_reads(NodeId::Ddr),
                self.perfmon.total_reads(NodeId::Cxl),
            ],
            dram_writebacks: [
                self.perfmon.total_writebacks(NodeId::Ddr),
                self.perfmon.total_writebacks(NodeId::Cxl),
            ],
            hinting_faults: self.hinting_faults,
            kernel: self.kernel.clone(),
            migrations: self.migrations,
            fault_counts: {
                let mut c = [0u64; FaultClass::ALL.len()];
                for (slot, &class) in c.iter_mut().zip(FaultClass::ALL.iter()) {
                    *slot = self.faults.count_of(class);
                }
                c
            },
            poison_repairs: self.faults.poison_repairs(),
            degradations: self.degradations.len(),
            promoter_retried: self.promoter_retried,
            promoter_gave_up: self.promoter_gave_up,
        }
    }

    /// Assembles a [`RunReport`] covering everything since `before` (a
    /// snapshot from [`System::stats`]). `accesses` and `op_latency` come
    /// from the driver, which is the only place that can count them.
    pub fn report_since(
        &self,
        before: &SystemStats,
        daemon: String,
        accesses: u64,
        op_latency: LatencyHistogram,
    ) -> RunReport {
        let after = self.stats();
        let fault_counts: Vec<_> = FaultClass::ALL
            .iter()
            .enumerate()
            .filter_map(|(i, &class)| {
                let n = after.fault_counts[i] - before.fault_counts[i];
                (n > 0).then_some((class, n))
            })
            .collect();
        RunReport {
            daemon,
            total_time: after.now - before.now,
            accesses,
            llc_hits: after.llc_hits - before.llc_hits,
            llc_misses: after.llc_misses - before.llc_misses,
            dram_reads: [
                (NodeId::Ddr, after.dram_reads[0] - before.dram_reads[0]),
                (NodeId::Cxl, after.dram_reads[1] - before.dram_reads[1]),
            ],
            hinting_faults: after.hinting_faults - before.hinting_faults,
            migrations: MigrationStats {
                promotions: after.migrations.promotions - before.migrations.promotions,
                demotions: after.migrations.demotions - before.migrations.demotions,
                rejected: after.migrations.rejected - before.migrations.rejected,
            },
            kernel: after.kernel.delta_since(&before.kernel),
            op_latency,
            health: HealthReport {
                faults_injected: fault_counts.iter().map(|&(_, n)| n).sum(),
                fault_counts,
                poison_repairs: after.poison_repairs - before.poison_repairs,
                degraded: self.degradations[before.degradations..].to_vec(),
                promoter_retried: after.promoter_retried - before.promoter_retried,
                promoter_gave_up: after.promoter_gave_up - before.promoter_gave_up,
            },
        }
    }

    /// Captures a crash-consistent snapshot of the whole machine as a
    /// [`Checkpoint`]: memory partitions (free/allocated/quarantined/
    /// offlined, in hand-out order), page table, TLB and LLC arrays with
    /// their LRU order, migration journal, fault-injector arming state,
    /// RAS health ladder, contention queues, perfmon windows, MGLRU
    /// generations, kernel ledger, and the telemetry registry.
    ///
    /// The per-access telemetry batch is flushed first; counters and
    /// histogram merges are exact, so flushing early is observationally
    /// equivalent for every snapshot taken at or after the next flush
    /// point. Attached [`CxlDevice`]s are *not* captured — the restoring
    /// harness re-attaches its devices and reloads their SRAM state (the
    /// M5 manager does this in its own checkpoint section). Open telemetry
    /// spans are owned by their creators and re-opened after restore.
    pub fn checkpoint(&mut self) -> crate::checkpoint::Checkpoint {
        use crate::checkpoint::StateWriter;
        self.flush_telemetry();
        let mut cp = crate::checkpoint::Checkpoint::new();
        let mut section = |name: &str, f: &mut dyn FnMut(&mut StateWriter)| {
            let mut w = StateWriter::new();
            f(&mut w);
            cp.add_section(name, w.finish());
        };
        section("config", &mut |w| w.put_str(&format!("{:?}", self.config)));
        section("clock", &mut |w| w.put_u64(self.clock.now().0));
        section("memory", &mut |w| self.memory.save(w));
        section("paging", &mut |w| self.page_table.save(w));
        section("tlb", &mut |w| {
            w.put_u8(match self.tlb.policy() {
                crate::cache::ReplacementPolicy::ExactLru => 0,
                crate::cache::ReplacementPolicy::TreeLru => 1,
            });
            self.tlb.save(w);
        });
        section("llc", &mut |w| {
            w.put_u8(match self.llc.policy() {
                crate::cache::ReplacementPolicy::ExactLru => 0,
                crate::cache::ReplacementPolicy::TreeLru => 1,
            });
            self.llc.save(w);
        });
        section("perfmon", &mut |w| self.perfmon.save(w));
        section("kernel", &mut |w| self.kernel.save(w));
        section("mglru", &mut |w| self.ddr_lru.save(w));
        section("journal", &mut |w| self.journal.save(w));
        section("faults", &mut |w| self.faults.save(w));
        section("ras", &mut |w| self.ras.save(w));
        section("contention", &mut |w| self.contention.save(w));
        section("telemetry", &mut |w| match self.telemetry.export_state() {
            Some(state) => {
                w.put_bool(true);
                crate::checkpoint::save_telemetry_state(&state, w);
            }
            None => w.put_bool(false),
        });
        section("system", &mut |w| {
            w.put_u64(self.migrations.promotions);
            w.put_u64(self.migrations.demotions);
            w.put_u64(self.migrations.rejected);
            w.put_u64(self.hinting_faults);
            w.put_u64(self.next_vpn);
            w.put_u64_slice(&self.placement_rng.state());
            w.put_u64(self.last_tlb_flush.0);
            w.put_u64(self.degradations.len() as u64);
            for d in &self.degradations {
                w.put_str(d);
            }
            w.put_u64(self.promoter_retried);
            w.put_u64(self.promoter_gave_up);
            w.put_u64(self.fault_events_seen as u64);
            w.put_bool(self.evac_exhaustion_noted);
        });
        cp
    }

    /// Rebuilds a machine from a [`Checkpoint`] captured by
    /// [`System::checkpoint`]. `config` must be equal to the checkpointed
    /// configuration (validated against the stored config section) and
    /// `plan` must be the fault plan the checkpointed run was executing —
    /// the plan is pure data the caller supplies again; only the
    /// injector's arming cursor and armed-but-unconsumed faults are
    /// restored from the snapshot.
    ///
    /// Devices are not restored: the returned system has a fresh
    /// [`CxlController`] and the harness re-attaches daemon devices before
    /// resuming. Fault-window telemetry spans restart as closed (a window
    /// open across the snapshot re-opens on the next traced event).
    ///
    /// # Errors
    ///
    /// [`RestoreError::ConfigMismatch`] when `config` differs from the
    /// checkpointed one, [`RestoreError::MissingSection`] /
    /// [`RestoreError::Corrupt`] on structural damage a checksum did not
    /// catch (e.g. a version-compatible but truncated section).
    pub fn restore(
        config: SystemConfig,
        plan: &FaultPlan,
        cp: &crate::checkpoint::Checkpoint,
    ) -> Result<System, crate::checkpoint::RestoreError> {
        use crate::checkpoint::{section_err, RestoreError, StateReader};

        fn read_section<'c, T>(
            cp: &'c crate::checkpoint::Checkpoint,
            name: &'static str,
            f: impl FnOnce(&mut StateReader<'c>) -> Result<T, crate::checkpoint::CodecError>,
        ) -> Result<T, RestoreError> {
            let mut r = StateReader::new(cp.require(name)?);
            let out = f(&mut r).map_err(section_err(name))?;
            r.expect_end().map_err(section_err(name))?;
            Ok(out)
        }

        let stored = read_section(cp, "config", |r| r.get_str())?;
        if stored != format!("{config:?}") {
            return Err(RestoreError::ConfigMismatch);
        }

        fn policy_of(
            tag: u8,
        ) -> Result<crate::cache::ReplacementPolicy, crate::checkpoint::CodecError> {
            match tag {
                0 => Ok(crate::cache::ReplacementPolicy::ExactLru),
                1 => Ok(crate::cache::ReplacementPolicy::TreeLru),
                t => Err(crate::checkpoint::CodecError::BadValue {
                    what: "replacement-policy tag",
                    value: t as u64,
                }),
            }
        }

        let clock = read_section(cp, "clock", |r| Ok(Clock::at(Nanos(r.get_u64()?))))?;
        let memory = read_section(cp, "memory", |r| {
            TieredMemory::restore(config.ddr.clone(), config.cxl.clone(), r)
        })?;
        let page_table = read_section(cp, "paging", |r| PageTable::restore(r))?;
        let tlb = read_section(cp, "tlb", |r| {
            let policy = policy_of(r.get_u8()?)?;
            Tlb::restore(config.tlb, policy, r)
        })?;
        let llc = read_section(cp, "llc", |r| {
            let policy = policy_of(r.get_u8()?)?;
            Llc::restore(config.llc, policy, r)
        })?;
        let perfmon = read_section(cp, "perfmon", |r| PerfMonitor::restore(r))?;
        let kernel = read_section(cp, "kernel", |r| KernelCosts::restore(r))?;
        let ddr_lru = read_section(cp, "mglru", |r| MgLru::restore(r))?;
        let journal = read_section(cp, "journal", |r| MigrationJournal::restore(r))?;
        let faults = read_section(cp, "faults", |r| FaultInjector::restore(plan, r))?;
        let ras = read_section(cp, "ras", |r| RasState::restore(config.ras, r))?;
        let contention = read_section(cp, "contention", |r| {
            Contention::restore(
                &config.contention,
                [config.ddr.access_latency, config.cxl.access_latency],
                r,
            )
        })?;
        let telemetry = read_section(cp, "telemetry", |r| {
            if r.get_bool()? {
                let state = crate::checkpoint::restore_telemetry_state(r)?;
                Ok(Telemetry::from_state(&state))
            } else {
                Ok(Telemetry::disabled())
            }
        })?;

        struct Misc {
            migrations: MigrationStats,
            hinting_faults: u64,
            next_vpn: u64,
            rng_state: [u64; 4],
            last_tlb_flush: Nanos,
            degradations: Vec<String>,
            promoter_retried: u64,
            promoter_gave_up: u64,
            fault_events_seen: u64,
            evac_exhaustion_noted: bool,
        }
        let misc = read_section(cp, "system", |r| {
            let migrations = MigrationStats {
                promotions: r.get_u64()?,
                demotions: r.get_u64()?,
                rejected: r.get_u64()?,
            };
            let hinting_faults = r.get_u64()?;
            let next_vpn = r.get_u64()?;
            let rng_vec = r.get_u64_vec()?;
            let rng_state: [u64; 4] = rng_vec.as_slice().try_into().map_err(|_| {
                crate::checkpoint::CodecError::BadValue {
                    what: "placement-rng state length",
                    value: rng_vec.len() as u64,
                }
            })?;
            let last_tlb_flush = Nanos(r.get_u64()?);
            let nd = r.get_u64()?;
            let mut degradations = Vec::new();
            for _ in 0..nd {
                degradations.push(r.get_str()?);
            }
            Ok(Misc {
                migrations,
                hinting_faults,
                next_vpn,
                rng_state,
                last_tlb_flush,
                degradations,
                promoter_retried: r.get_u64()?,
                promoter_gave_up: r.get_u64()?,
                fault_events_seen: r.get_u64()?,
                evac_exhaustion_noted: r.get_bool()?,
            })
        })?;

        let telemetry_on = telemetry.is_enabled();
        Ok(System {
            clock,
            memory,
            page_table,
            tlb,
            llc,
            controller: CxlController::new(),
            perfmon,
            kernel,
            ddr_lru,
            migrations: misc.migrations,
            journal,
            hinting_faults: misc.hinting_faults,
            next_vpn: misc.next_vpn,
            placement_rng: SmallRng::from_state(misc.rng_state),
            last_tlb_flush: misc.last_tlb_flush,
            faults,
            degradations: misc.degradations,
            promoter_retried: misc.promoter_retried,
            promoter_gave_up: misc.promoter_gave_up,
            telemetry,
            telemetry_on,
            contention,
            contention_on: config.contention.enabled,
            batch: TelemetryBatch::default(),
            fault_events_seen: misc.fault_events_seen as usize,
            spike_span: None,
            stall_span: None,
            pressure_span: None,
            ras,
            evac_span: None,
            evac_exhaustion_noted: misc.evac_exhaustion_noted,
            staged: StagedScratch::default(),
            // Runtime performance knobs are not checkpointed state: a
            // restored machine starts sequential until the driver says
            // otherwise, and the images stay identical either way.
            sim_shards: 1,
            stage_times: None,
            config,
        })
    }
}

/// What one [`System::ras_service`] epoch accomplished.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RasServiceReport {
    /// Frames permanently retired this epoch.
    pub frames_offlined: u64,
    /// Offline candidates whose attempt failed this epoch (page stranded
    /// or frame in flight); the patrol walk re-nominates them.
    pub offline_retries: u64,
    /// Pages drained off the evacuating node this epoch.
    pub pages_drained: u64,
    /// The final evacuation report, when this epoch concluded it.
    pub evacuation: Option<EvacuationReport>,
}

/// A cumulative snapshot of the aggregates behind [`RunReport`], captured
/// with [`System::stats`]. All fields count from system construction;
/// subtract two snapshots for per-run deltas.
#[derive(Clone, Debug)]
pub struct SystemStats {
    /// Simulated time at capture.
    pub now: Nanos,
    /// Cumulative LLC hits.
    pub llc_hits: u64,
    /// Cumulative LLC misses.
    pub llc_misses: u64,
    /// Cumulative DRAM reads, `[DDR, CXL]`.
    pub dram_reads: [u64; 2],
    /// Cumulative DRAM writebacks, `[DDR, CXL]`.
    pub dram_writebacks: [u64; 2],
    /// Cumulative soft page faults.
    pub hinting_faults: u64,
    /// The kernel-time ledger.
    pub kernel: KernelCosts,
    /// Cumulative migration statistics.
    pub migrations: MigrationStats,
    /// Cumulative armed faults, indexed like [`FaultClass::ALL`].
    pub fault_counts: [u64; FaultClass::ALL.len()],
    /// Cumulative poisoned lines recovered.
    pub poison_repairs: u64,
    /// Number of degradation-mode switches recorded.
    pub degradations: usize,
    /// Cumulative Promoter retry rounds.
    pub promoter_retried: u64,
    /// Cumulative pages the Promoter gave up on.
    pub promoter_gave_up: u64,
}

impl SystemStats {
    /// Serializes the snapshot for a checkpoint (drivers persist their
    /// report baseline so a restored run's [`RunReport`] deltas match the
    /// uninterrupted run's).
    pub fn save(&self, w: &mut crate::checkpoint::StateWriter) {
        w.put_u64(self.now.0);
        w.put_u64(self.llc_hits);
        w.put_u64(self.llc_misses);
        w.put_u64_slice(&self.dram_reads);
        w.put_u64_slice(&self.dram_writebacks);
        w.put_u64(self.hinting_faults);
        self.kernel.save(w);
        w.put_u64(self.migrations.promotions);
        w.put_u64(self.migrations.demotions);
        w.put_u64(self.migrations.rejected);
        w.put_u64_slice(&self.fault_counts);
        w.put_u64(self.poison_repairs);
        w.put_u64(self.degradations as u64);
        w.put_u64(self.promoter_retried);
        w.put_u64(self.promoter_gave_up);
    }

    /// Rebuilds a snapshot from a checkpoint section.
    ///
    /// # Errors
    ///
    /// Propagates codec errors from a truncated or corrupt payload, or
    /// per-node/per-class vectors of the wrong length.
    pub fn restore(
        r: &mut crate::checkpoint::StateReader<'_>,
    ) -> Result<SystemStats, crate::checkpoint::CodecError> {
        use crate::checkpoint::CodecError;
        fn fixed<const N: usize>(v: Vec<u64>, what: &'static str) -> Result<[u64; N], CodecError> {
            let n = v.len();
            v.try_into().map_err(|_| CodecError::BadValue {
                what,
                value: n as u64,
            })
        }
        let now = Nanos(r.get_u64()?);
        let llc_hits = r.get_u64()?;
        let llc_misses = r.get_u64()?;
        let dram_reads = fixed::<2>(r.get_u64_vec()?, "stats dram-read vector length")?;
        let dram_writebacks = fixed::<2>(r.get_u64_vec()?, "stats dram-writeback vector length")?;
        let hinting_faults = r.get_u64()?;
        let kernel = KernelCosts::restore(r)?;
        let migrations = MigrationStats {
            promotions: r.get_u64()?,
            demotions: r.get_u64()?,
            rejected: r.get_u64()?,
        };
        let fault_counts = fixed::<{ FaultClass::ALL.len() }>(
            r.get_u64_vec()?,
            "stats fault-count vector length",
        )?;
        Ok(SystemStats {
            now,
            llc_hits,
            llc_misses,
            dram_reads,
            dram_writebacks,
            hinting_faults,
            kernel,
            migrations,
            fault_counts,
            poison_repairs: r.get_u64()?,
            degradations: r.get_u64()? as usize,
            promoter_retried: r.get_u64()?,
            promoter_gave_up: r.get_u64()?,
        })
    }
}

/// Why [`System::access_batch`] returned control to the driver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchPause {
    /// Every access in the chunk (from the starting index) was executed.
    Chunk,
    /// The access budget (`max_accesses`) was exhausted.
    Budget,
    /// The daemon's wake deadline was reached before the next access.
    Wake,
    /// The last executed access took a hinting fault on this page; the
    /// driver must deliver [`MigrationDaemon::on_fault`] before resuming.
    Fault(Vpn),
}

/// Per-run state threaded through [`System::access_batch`] calls: the
/// access count and the op-latency accumulators (ops may straddle chunk
/// boundaries, so this outlives any single chunk).
#[derive(Clone, Debug)]
pub struct BatchState {
    op_hist: LatencyHistogram,
    /// Scratch for `sim.op.latency`: merged once at the end instead of one
    /// registry probe per completed op.
    op_telemetry: m5_telemetry::Log2Histogram,
    op_start: Nanos,
    n: u64,
}

impl BatchState {
    /// Fresh state; `start` is the simulated time the run begins (the
    /// first op is measured from here).
    pub fn new(start: Nanos) -> BatchState {
        BatchState {
            op_hist: LatencyHistogram::new(),
            op_telemetry: m5_telemetry::Log2Histogram::new(),
            op_start: start,
            n: 0,
        }
    }

    /// Accesses executed so far.
    pub fn accesses(&self) -> u64 {
        self.n
    }

    #[inline]
    fn record_op_end(&mut self, now: Nanos) {
        let op = now - self.op_start;
        self.op_hist.record(op);
        self.op_telemetry.record(op.0);
        self.op_start = now;
    }

    /// Serializes the op-latency accumulators and access count for a
    /// checkpoint.
    pub fn save(&self, w: &mut crate::checkpoint::StateWriter) {
        self.op_hist.save(w);
        crate::checkpoint::save_log2_histogram(&self.op_telemetry, w);
        w.put_u64(self.op_start.0);
        w.put_u64(self.n);
    }

    /// Rebuilds batch state from a checkpoint section.
    ///
    /// # Errors
    ///
    /// Propagates codec errors from a truncated or corrupt payload.
    pub fn restore(
        r: &mut crate::checkpoint::StateReader<'_>,
    ) -> Result<BatchState, crate::checkpoint::CodecError> {
        Ok(BatchState {
            op_hist: LatencyHistogram::restore(r)?,
            op_telemetry: crate::checkpoint::restore_log2_histogram(r)?,
            op_start: Nanos(r.get_u64()?),
            n: r.get_u64()?,
        })
    }
}

/// The chunk-level run driver: owns the report baseline and the
/// [`BatchState`], and turns fully-generated [`AccessChunk`]s into
/// simulated accesses with daemon wakeups and fault delivery interleaved
/// exactly as the per-access loop would.
///
/// [`run_chunked`] is the everything-in-one-thread assembly; `m5-bench`
/// builds an overlapped double-buffered driver from the same three calls
/// (`begin` / `drive` / `finish`).
#[derive(Debug)]
pub struct ChunkedRun {
    before: SystemStats,
    st: BatchState,
}

impl ChunkedRun {
    /// Captures the report baseline and starts the daemon (in that order,
    /// matching the per-access loop).
    pub fn begin<D>(sys: &mut System, daemon: &mut D) -> ChunkedRun
    where
        D: MigrationDaemon + ?Sized,
    {
        let before = sys.stats();
        daemon.on_start(sys);
        let st = BatchState::new(sys.now());
        ChunkedRun { before, st }
    }

    /// Accesses executed so far.
    pub fn accesses(&self) -> u64 {
        self.st.n
    }

    /// Executes one chunk to completion (or until the budget is hit),
    /// dispatching due daemon wakeups between batch segments and
    /// delivering hinting faults in order. Returns whether budget remains.
    pub fn drive<D>(
        &mut self,
        sys: &mut System,
        daemon: &mut D,
        chunk: &AccessChunk,
        max_accesses: u64,
    ) -> bool
    where
        D: MigrationDaemon + ?Sized,
    {
        let mut idx = 0;
        while idx < chunk.len() && self.st.n < max_accesses {
            // Dispatch due wakeups (bounded to avoid a daemon that never
            // reschedules wedging the loop).
            let mut ticks = 0;
            while let Some(w) = daemon.next_wake() {
                if w > sys.now() || ticks >= 64 {
                    break;
                }
                daemon.on_tick(sys);
                ticks += 1;
            }

            let deadline = daemon.next_wake();
            let (next, pause) = sys.access_batch(chunk, idx, max_accesses, deadline, &mut self.st);
            idx = next;
            if let BatchPause::Fault(vpn) = pause {
                daemon.on_fault(vpn, sys);
            }
        }
        self.st.n < max_accesses
    }

    /// Serializes the run driver (report baseline + op-latency state) for
    /// a checkpoint.
    pub fn save(&self, w: &mut crate::checkpoint::StateWriter) {
        self.before.save(w);
        self.st.save(w);
    }

    /// Rebuilds a run driver from a checkpoint section. Unlike
    /// [`ChunkedRun::begin`], this does *not* capture a fresh baseline or
    /// call the daemon's `on_start` — the checkpointed run already did
    /// both; the caller re-attaches daemon devices and reloads their state
    /// separately.
    ///
    /// # Errors
    ///
    /// Propagates codec errors from a truncated or corrupt payload.
    pub fn resume(
        r: &mut crate::checkpoint::StateReader<'_>,
    ) -> Result<ChunkedRun, crate::checkpoint::CodecError> {
        Ok(ChunkedRun {
            before: SystemStats::restore(r)?,
            st: BatchState::restore(r)?,
        })
    }

    /// Flushes telemetry and assembles the [`RunReport`].
    pub fn finish<D>(self, sys: &mut System, daemon: &D) -> RunReport
    where
        D: MigrationDaemon + ?Sized,
    {
        sys.flush_telemetry();
        sys.telemetry
            .histogram_merge("sim.op.latency", "", &self.st.op_telemetry);
        sys.report_since(
            &self.before,
            daemon.name().to_string(),
            self.st.n,
            self.st.op_hist,
        )
    }
}

/// Default chunk capacity for [`run`]: big enough to amortise the
/// boundary checks, small enough that two live chunks stay cache-resident.
pub const DEFAULT_CHUNK_ACCESSES: usize = 4096;

/// Drives `workload` through `sys` under `daemon` for at most
/// `max_accesses` accesses (or until the stream ends), returning a report
/// of everything that happened during this run (deltas, so a `System` may
/// be reused across runs).
///
/// This is the chunked pipeline ([`run_chunked`] with
/// [`DEFAULT_CHUNK_ACCESSES`]); it produces byte-identical results to the
/// per-access reference loop [`run_per_access`].
pub fn run<W, D>(sys: &mut System, workload: &mut W, daemon: &mut D, max_accesses: u64) -> RunReport
where
    W: AccessStream + ?Sized,
    D: MigrationDaemon + ?Sized,
{
    run_chunked(sys, workload, daemon, max_accesses, DEFAULT_CHUNK_ACCESSES)
}

/// [`run`] with an explicit chunk capacity. The access budget caps every
/// fill, so the workload cursor never advances past `max_accesses` —
/// protocols that resume the same stream across calls (ratio protocols)
/// see exactly the per-access loop's consumption.
pub fn run_chunked<W, D>(
    sys: &mut System,
    workload: &mut W,
    daemon: &mut D,
    max_accesses: u64,
    chunk_capacity: usize,
) -> RunReport
where
    W: AccessStream + ?Sized,
    D: MigrationDaemon + ?Sized,
{
    let mut run = ChunkedRun::begin(sys, daemon);
    let mut chunk = AccessChunk::with_capacity(chunk_capacity);
    while run.accesses() < max_accesses {
        chunk.clear();
        let left = max_accesses - run.accesses();
        chunk.set_limit(left.min(chunk.capacity() as u64) as usize);
        if workload.fill_chunk(&mut chunk) == 0 {
            break;
        }
        run.drive(sys, daemon, &chunk, max_accesses);
    }
    run.finish(sys, daemon)
}

/// The per-access reference driver: pull one access, dispatch due
/// wakeups, execute, deliver faults. Kept as the semantic baseline the
/// chunked drivers are differentially tested against — do not optimise.
pub fn run_per_access<W, D>(
    sys: &mut System,
    workload: &mut W,
    daemon: &mut D,
    max_accesses: u64,
) -> RunReport
where
    W: AccessStream + ?Sized,
    D: MigrationDaemon + ?Sized,
{
    let before = sys.stats();

    daemon.on_start(sys);

    let mut op_hist = LatencyHistogram::new();
    // Scratch for `sim.op.latency`: merged once at the end instead of one
    // registry probe per completed op.
    let mut op_telemetry = m5_telemetry::Log2Histogram::new();
    let mut op_start = sys.now();
    let mut n = 0u64;
    while n < max_accesses {
        let Some(acc) = workload.next_access() else {
            break;
        };
        // Dispatch due wakeups (bounded to avoid a daemon that never
        // reschedules wedging the loop).
        let mut ticks = 0;
        while let Some(w) = daemon.next_wake() {
            if w > sys.now() || ticks >= 64 {
                break;
            }
            daemon.on_tick(sys);
            ticks += 1;
        }

        let out = sys.access(acc.vaddr, acc.is_write);
        if out.hinting_fault {
            daemon.on_fault(acc.vaddr.vpn(), sys);
        }
        n += 1;
        if acc.op_end {
            let now = sys.now();
            let op = now - op_start;
            op_hist.record(op);
            op_telemetry.record(op.0);
            op_start = now;
        }
    }

    sys.flush_telemetry();
    sys.telemetry
        .histogram_merge("sim.op.latency", "", &op_telemetry);
    sys.report_since(&before, daemon.name().to_string(), n, op_hist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PAGE_SIZE;
    use crate::faults::FaultKind;

    fn small_system() -> System {
        System::new(SystemConfig::small())
    }

    #[test]
    fn system_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<System>();
    }

    /// Deterministic exerciser used by the restore≡continue tests: mixes
    /// reads, writes, and migrations over `region`, indexed so two calls
    /// with the same range perform identical work.
    fn exercise(sys: &mut System, region: &Region, lo: u64, hi: u64) {
        let pages = region.pages;
        for i in lo..hi {
            let vpn = region.base.vpn().0 + (i * 7 + i / 3) % pages;
            let addr = VirtAddr(vpn * PAGE_SIZE as u64 + (i % 64) * 8);
            sys.access(addr, i % 3 == 0);
            if i % 97 == 13 {
                let _ = sys.migrate_page(Vpn(vpn), NodeId::Ddr);
            }
            if i % 131 == 40 {
                let _ = sys.migrate_page(Vpn(vpn), NodeId::Cxl);
            }
        }
    }

    fn differential_restore_continue(plan: FaultPlan, telemetry: bool) {
        let config = SystemConfig::small();
        let place = Placement::Interleaved {
            ddr_fraction: 0.5,
            seed: 7,
        };

        // Uninterrupted reference run.
        let mut a = System::with_fault_plan(config.clone(), &plan);
        if telemetry {
            a.install_telemetry(Telemetry::enabled());
        }
        let ra = a.alloc_region(32, place).unwrap();
        exercise(&mut a, &ra, 0, 1200);

        // Same run, checkpointed at an interior point and restored into a
        // fresh machine.
        let mut b = System::with_fault_plan(config.clone(), &plan);
        if telemetry {
            b.install_telemetry(Telemetry::enabled());
        }
        let rb = b.alloc_region(32, place).unwrap();
        assert_eq!(ra, rb);
        exercise(&mut b, &rb, 0, 700);
        let cp = b.checkpoint();
        drop(b);
        let mut b2 = System::restore(config, &plan, &cp).unwrap();
        assert!(b2.check_invariants().is_empty());
        exercise(&mut b2, &rb, 700, 1200);

        // The full machine state is byte-identical, not just the reports.
        assert_eq!(a.checkpoint().encode(), b2.checkpoint().encode());
        assert_eq!(format!("{:?}", a.stats()), format!("{:?}", b2.stats()));
        assert_eq!(a.telemetry().snapshot(), b2.telemetry().snapshot());
        assert!(a.check_invariants().is_empty());
    }

    #[test]
    fn checkpoint_restore_continue_matches_uninterrupted_run() {
        differential_restore_continue(FaultPlan::none(), false);
    }

    #[test]
    fn checkpoint_restore_continue_matches_with_telemetry() {
        differential_restore_continue(FaultPlan::none(), true);
    }

    #[test]
    fn checkpoint_restore_continue_matches_under_faults() {
        // A plan whose windows and consumables straddle the checkpoint
        // instant: armed-but-unconsumed state must survive the round trip.
        let plan = FaultPlan::none()
            .with(
                Nanos(2_000),
                FaultKind::LatencySpike {
                    extra: Nanos(400),
                    duration: Nanos(4_000_000),
                },
            )
            .with(Nanos(3_000), FaultKind::PoisonLine { reads: 2 })
            .with(Nanos(4_000), FaultKind::MigrationCopyFail { attempts: 2 })
            .with(
                Nanos(5_000),
                FaultKind::Device(DeviceFault::CorrectableEcc { pfn: 3 }),
            );
        differential_restore_continue(plan, false);
    }

    #[test]
    fn restore_rejects_mismatched_config() {
        let mut sys = System::new(SystemConfig::small());
        let r = sys.alloc_region(4, Placement::AllOnDdr).unwrap();
        exercise(&mut sys, &r, 0, 50);
        let cp = sys.checkpoint();
        let mut other = SystemConfig::small();
        other.colocated_daemon = !other.colocated_daemon;
        let err = System::restore(other, &FaultPlan::none(), &cp).unwrap_err();
        assert!(matches!(
            err,
            crate::checkpoint::RestoreError::ConfigMismatch
        ));
    }

    #[test]
    fn restore_reports_missing_and_corrupt_sections() {
        let mut sys = System::new(SystemConfig::small());
        let r = sys.alloc_region(4, Placement::AllOnDdr).unwrap();
        exercise(&mut sys, &r, 0, 50);
        let cp = sys.checkpoint();

        // A checkpoint with a section dropped restores with a named error.
        let mut partial = crate::checkpoint::Checkpoint::new();
        for name in cp.section_names() {
            if name != "journal" {
                partial.add_section(name, cp.section(name).unwrap().to_vec());
            }
        }
        let err = System::restore(SystemConfig::small(), &FaultPlan::none(), &partial).unwrap_err();
        assert!(matches!(
            err,
            crate::checkpoint::RestoreError::MissingSection { section: "journal" }
        ));

        // A truncated section payload is Corrupt, attributed to its section.
        let mut truncated = crate::checkpoint::Checkpoint::new();
        for name in cp.section_names() {
            let bytes = cp.section(name).unwrap();
            let keep = if name == "paging" {
                &bytes[..bytes.len() / 2]
            } else {
                bytes
            };
            truncated.add_section(name, keep.to_vec());
        }
        let err =
            System::restore(SystemConfig::small(), &FaultPlan::none(), &truncated).unwrap_err();
        assert!(matches!(
            err,
            crate::checkpoint::RestoreError::Corrupt {
                section: "paging",
                ..
            }
        ));
    }

    #[test]
    fn alloc_region_places_all_on_cxl() {
        let mut sys = small_system();
        let r = sys.alloc_region(10, Placement::AllOnCxl).unwrap();
        assert_eq!(r.pages, 10);
        assert_eq!(sys.nr_pages(NodeId::Cxl), 10);
        assert_eq!(sys.nr_pages(NodeId::Ddr), 0);
        for vpn in r.vpns() {
            assert_eq!(sys.page_table().get(vpn).unwrap().node(), NodeId::Cxl);
        }
    }

    #[test]
    fn interleaved_placement_respects_fraction_roughly() {
        let mut sys = System::new(
            SystemConfig::small()
                .with_ddr_frames(200)
                .with_cxl_frames(200),
        );
        sys.alloc_region(
            200,
            Placement::Interleaved {
                ddr_fraction: 0.5,
                seed: 42,
            },
        )
        .unwrap();
        let ddr = sys.nr_pages(NodeId::Ddr);
        assert!((60..=140).contains(&ddr), "ddr={ddr}");
    }

    #[test]
    fn access_latency_reflects_node_and_cache() {
        let mut sys = small_system();
        let r = sys.alloc_region(1, Placement::AllOnCxl).unwrap();
        let out = sys.access(r.base, false);
        // Cold access: page walk + LLC hit time + CXL DRAM.
        assert!(!out.llc_hit);
        assert_eq!(out.dram_node, Some(NodeId::Cxl));
        assert_eq!(out.latency, Nanos(60 + 20 + 270));
        // Second access to the same line: pure LLC hit.
        let out2 = sys.access(r.base, false);
        assert!(out2.llc_hit);
        assert_eq!(out2.dram_node, None);
        assert_eq!(out2.latency, Nanos(20));
    }

    #[test]
    fn hinting_fault_is_billed_and_cleared() {
        let mut sys = small_system();
        let r = sys.alloc_region(1, Placement::AllOnCxl).unwrap();
        let vpn = r.base.vpn();
        sys.access(r.base, false);
        sys.page_table_mut().clear_present(vpn);
        sys.tlb_mut().invalidate(vpn);
        let out = sys.access(r.base, false);
        assert!(out.hinting_fault);
        assert_eq!(sys.hinting_faults(), 1);
        assert!(sys.kernel_costs().of(CostKind::HintingFault) > Nanos::ZERO);
        assert!(sys.page_table().get(vpn).unwrap().flags.present());
    }

    #[test]
    fn migration_moves_page_and_bills_costs() {
        let mut sys = small_system();
        let r = sys.alloc_region(2, Placement::AllOnCxl).unwrap();
        let vpn = r.base.vpn();
        sys.access(r.base, false);
        sys.migrate_page(vpn, NodeId::Ddr).unwrap();
        assert_eq!(sys.nr_pages(NodeId::Ddr), 1);
        assert_eq!(sys.nr_pages(NodeId::Cxl), 1);
        assert_eq!(sys.page_table().get(vpn).unwrap().node(), NodeId::Ddr);
        assert_eq!(sys.migration_stats().promotions, 1);
        assert_eq!(
            sys.kernel_costs().of(CostKind::Migration),
            sys.config().costs.migrate_per_page
        );
        // The access now goes to DDR (and misses: old lines were invalidated,
        // pollution filled the *new* frame's lines, so actually it hits).
        let out = sys.access(r.base, false);
        assert!(out.llc_hit, "pollution pre-filled the new frame's lines");
    }

    #[test]
    fn migration_safety_checks() {
        let mut sys = small_system();
        let r = sys.alloc_region(3, Placement::AllOnCxl).unwrap();
        let a = r.base.vpn();
        let b = a.offset(1);
        sys.page_table_mut().set_pinned(a, true);
        sys.page_table_mut().set_cxl_bound(b, true);
        assert_eq!(sys.migrate_page(a, NodeId::Ddr), Err(MigrateError::Pinned));
        assert_eq!(
            sys.migrate_page(b, NodeId::Ddr),
            Err(MigrateError::NodeBound)
        );
        assert_eq!(
            sys.migrate_page(Vpn(999), NodeId::Ddr),
            Err(MigrateError::NotMapped)
        );
        let c = a.offset(2);
        sys.migrate_page(c, NodeId::Ddr).unwrap();
        assert_eq!(
            sys.migrate_page(c, NodeId::Ddr),
            Err(MigrateError::AlreadyThere)
        );
        // Pinned + NodeBound + NotMapped + AlreadyThere.
        assert_eq!(sys.migration_stats().rejected, 4);
    }

    #[test]
    fn destination_full_is_reported() {
        let mut sys = System::new(SystemConfig::small().with_ddr_frames(1));
        let r = sys.alloc_region(2, Placement::AllOnCxl).unwrap();
        let a = r.base.vpn();
        sys.migrate_page(a, NodeId::Ddr).unwrap();
        let err = sys.migrate_page(a.offset(1), NodeId::Ddr).unwrap_err();
        assert!(matches!(err, MigrateError::NoFreeFrame(_)));
        assert_eq!(sys.journal().counters().aborted, 1);
        assert!(sys.check_invariants().is_empty());
    }

    #[test]
    fn committed_migration_walks_the_journal() {
        let mut sys = small_system();
        let r = sys.alloc_region(2, Placement::AllOnCxl).unwrap();
        sys.migrate_page(r.base.vpn(), NodeId::Ddr).unwrap();
        let counters = sys.journal().counters();
        assert_eq!(counters.committed_promotions, 1);
        assert_eq!(counters.terminal(), 1);
        assert!(sys.journal().open().is_empty());
        // begin + copy-in-progress + remapped + committed = 4 appends.
        assert_eq!(sys.journal().steps(), 4);
        assert_eq!(sys.kernel_costs().events_of(CostKind::JournalWrite), 4);
        assert!(sys.check_invariants().is_empty());
    }

    #[test]
    fn copy_fault_quarantines_the_shadow_frame() {
        use crate::faults::FaultKind;
        let plan =
            FaultPlan::none().with(Nanos::ZERO, FaultKind::MigrationCopyFail { attempts: 1 });
        let mut sys = System::with_fault_plan(SystemConfig::small(), &plan);
        let r = sys.alloc_region(1, Placement::AllOnCxl).unwrap();
        let err = sys.migrate_page(r.base.vpn(), NodeId::Ddr).unwrap_err();
        assert!(matches!(err, MigrateError::Copy { .. }));
        assert_eq!(sys.quarantined_frames(NodeId::Ddr), 1);
        assert_eq!(sys.journal().counters().rolled_back, 1);
        assert!(sys.check_invariants().is_empty());
        // The source page is intact on CXL.
        assert_eq!(
            sys.page_table().get(r.base.vpn()).unwrap().node(),
            NodeId::Cxl
        );
        // A scrub pass returns the frame to circulation.
        assert_eq!(sys.scrub_quarantine(8), 1);
        assert_eq!(sys.quarantined_frames(NodeId::Ddr), 0);
        assert!(sys.check_invariants().is_empty());
        sys.migrate_page(r.base.vpn(), NodeId::Ddr).unwrap();
    }

    #[test]
    fn watchdog_rolls_back_long_stalls() {
        use crate::faults::FaultKind;
        // A stall much longer than the 200 µs watchdog deadline.
        let plan = FaultPlan::none().with(
            Nanos::ZERO,
            FaultKind::ControllerStall {
                duration: Nanos::from_millis(5),
            },
        );
        let mut sys = System::with_fault_plan(SystemConfig::small(), &plan);
        let r = sys.alloc_region(1, Placement::AllOnCxl).unwrap();
        let err = sys.migrate_page(r.base.vpn(), NodeId::Ddr).unwrap_err();
        assert!(matches!(err, MigrateError::Stalled { .. }));
        assert_eq!(sys.journal().counters().rolled_back, 1);
        assert_eq!(sys.free_frames(NodeId::Ddr), 256, "shadow frame returned");
        assert!(sys.check_invariants().is_empty());
        // Short stalls are waited out instead.
        let plan = FaultPlan::none().with(
            Nanos::ZERO,
            FaultKind::ControllerStall {
                duration: Nanos::from_micros(50),
            },
        );
        let mut sys = System::with_fault_plan(SystemConfig::small(), &plan);
        let r = sys.alloc_region(1, Placement::AllOnCxl).unwrap();
        sys.migrate_page(r.base.vpn(), NodeId::Ddr).unwrap();
        assert!(sys.check_invariants().is_empty());
    }

    #[test]
    fn reset_at_each_phase_recovers_consistently() {
        use crate::faults::FaultKind;
        // A committed migration appends 4 journal records; sweep a reset
        // over every step and make sure recovery restores the invariants.
        for at_step in 1..=4u64 {
            let plan = FaultPlan::none().with(Nanos::ZERO, FaultKind::ControllerReset { at_step });
            let mut sys = System::with_fault_plan(SystemConfig::small(), &plan);
            let r = sys.alloc_region(1, Placement::AllOnCxl).unwrap();
            let vpn = r.base.vpn();
            let res = sys.migrate_page(vpn, NodeId::Ddr);
            if at_step == 4 {
                // Reset on the terminal append: the commit is durable.
                assert!(res.is_ok(), "step 4 reset lands after the commit");
            } else {
                assert!(
                    matches!(res, Err(MigrateError::Remap { .. })),
                    "step {at_step}: {res:?}"
                );
            }
            assert!(sys.needs_recovery());
            assert_eq!(
                sys.migrate_page(vpn, NodeId::Cxl),
                Err(MigrateError::NeedsRecovery),
                "fenced engine rejects new work"
            );
            let report = sys.recover();
            assert!(!sys.needs_recovery());
            assert!(sys.check_invariants().is_empty(), "step {at_step}");
            match at_step {
                1 => assert_eq!(report.aborted, 1),
                2 => assert_eq!(report.rolled_back, 1),
                3 => assert_eq!(report.rolled_forward, 1),
                _ => assert!(report.is_clean()),
            }
            // The page ends up somewhere definite and usable.
            let node = sys.page_table().get(vpn).unwrap().node();
            if at_step >= 3 {
                assert_eq!(node, NodeId::Ddr, "step {at_step}: remap was durable");
            } else {
                assert_eq!(node, NodeId::Cxl, "step {at_step}: rolled back");
            }
        }
    }

    #[test]
    fn recovery_without_pending_work_is_a_clean_noop() {
        let mut sys = small_system();
        let report = sys.recover();
        assert!(report.is_clean());
        assert!(sys.check_invariants().is_empty());
    }

    #[test]
    fn invariant_checker_spots_double_mapping() {
        let mut sys = small_system();
        let r = sys.alloc_region(2, Placement::AllOnCxl).unwrap();
        let a = r.base.vpn();
        let pfn = sys.page_table().get(a).unwrap().pfn;
        // Corrupt the page table directly: map page 1 onto page 0's frame.
        sys.page_table_mut().remap(a.offset(1), pfn);
        let violations = sys.check_invariants();
        assert!(
            violations.iter().any(|v| v.contains("double-mapped")),
            "{violations:?}"
        );
    }

    #[test]
    fn demote_coldest_uses_mglru() {
        let mut sys = small_system();
        let r = sys.alloc_region(4, Placement::AllOnDdr).unwrap();
        // Age twice while touching only page 0: others grow cold.
        sys.access(r.base, false);
        sys.mglru_age();
        sys.access(r.base, false);
        sys.mglru_age();
        let moved = sys.demote_coldest(2);
        assert_eq!(moved, 2);
        assert_eq!(sys.nr_pages(NodeId::Cxl), 2);
        // Page 0 was kept hot, so it should still be on DDR.
        assert_eq!(
            sys.page_table().get(r.base.vpn()).unwrap().node(),
            NodeId::Ddr
        );
    }

    #[test]
    fn colocated_daemon_work_stalls_the_clock() {
        let mut sys = small_system();
        let before = sys.now();
        sys.daemon_bill(CostKind::PteScan, Nanos(1000));
        assert_eq!(sys.now() - before, Nanos(1000));

        let mut isolated = System::new(SystemConfig::small().with_isolated_daemon());
        let before = isolated.now();
        isolated.daemon_bill(CostKind::PteScan, Nanos(1000));
        assert_eq!(isolated.now(), before, "isolated daemon does not stall app");
        assert_eq!(isolated.kernel_costs().of(CostKind::PteScan), Nanos(1000));
    }

    struct SequentialStream {
        base: VirtAddr,
        n: u64,
        i: u64,
    }

    impl AccessStream for SequentialStream {
        fn next_access(&mut self) -> Option<Access> {
            if self.i >= self.n {
                return None;
            }
            let a = Access::read(self.base.offset(self.i * 64)).end_op();
            self.i += 1;
            Some(a)
        }
    }

    #[test]
    fn run_produces_consistent_report() {
        let mut sys = small_system();
        let r = sys.alloc_region(4, Placement::AllOnCxl).unwrap();
        let mut wl = SequentialStream {
            base: r.base,
            n: 4 * (PAGE_SIZE / 64) as u64,
            i: 0,
        };
        let report = run(&mut sys, &mut wl, &mut NoMigration, u64::MAX);
        assert_eq!(report.accesses, 256);
        assert_eq!(report.llc_misses, 256, "every line touched once");
        assert_eq!(report.reads_on(NodeId::Cxl), 256);
        assert_eq!(report.reads_on(NodeId::Ddr), 0);
        assert_eq!(report.op_latency.count(), 256);
        assert!(report.total_time >= Nanos(256 * 270));
        assert_eq!(report.daemon, "none");
    }

    #[test]
    fn run_reports_deltas_on_reused_system() {
        let mut sys = small_system();
        let r = sys.alloc_region(1, Placement::AllOnCxl).unwrap();
        let mut wl = SequentialStream {
            base: r.base,
            n: 10,
            i: 0,
        };
        let first = run(&mut sys, &mut wl, &mut NoMigration, u64::MAX);
        let mut wl2 = SequentialStream {
            base: r.base,
            n: 10,
            i: 0,
        };
        let second = run(&mut sys, &mut wl2, &mut NoMigration, u64::MAX);
        assert_eq!(first.accesses, 10);
        assert_eq!(second.accesses, 10);
        assert_eq!(second.llc_misses, 0, "lines already resident");
    }

    struct TickingDaemon {
        wake: Nanos,
        period: Nanos,
        ticks: u64,
    }

    impl MigrationDaemon for TickingDaemon {
        fn name(&self) -> &str {
            "ticker"
        }
        fn next_wake(&self) -> Option<Nanos> {
            Some(self.wake)
        }
        fn on_tick(&mut self, sys: &mut System) {
            self.ticks += 1;
            self.wake = sys.now() + self.period;
        }
    }

    #[test]
    fn daemon_ticks_fire_on_schedule() {
        let mut sys = small_system();
        let r = sys.alloc_region(4, Placement::AllOnCxl).unwrap();
        let mut wl = SequentialStream {
            base: r.base,
            n: 200,
            i: 0,
        };
        let mut d = TickingDaemon {
            wake: Nanos::ZERO,
            period: Nanos::from_micros(5),
            ticks: 0,
        };
        let report = run(&mut sys, &mut wl, &mut d, u64::MAX);
        assert!(d.ticks >= 5, "got {} ticks", d.ticks);
        assert!(report.total_time > Nanos::from_micros(5 * d.ticks / 2));
    }
}
