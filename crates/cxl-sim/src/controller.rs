//! The CXL controller's snoop bus.
//!
//! In the paper's hardware (Figure 1), near-memory functions sit between the
//! CXL transaction layer and the memory controllers, where they can observe
//! every access address (`PA[47:6]`) flowing from the host CPU to the CXL
//! DRAM. This module models that integration point: a [`CxlController`]
//! owns a set of attached [`CxlDevice`]s and forwards every post-LLC access
//! to CXL DRAM to all of them.
//!
//! Devices are attached by value and retrieved by downcast through their
//! [`DeviceHandle`], so callers (the M5-manager, the profiling scripts) keep
//! typed access to their own hardware while the `System` stays agnostic.
//!
//! Crucially, device updates cost **no host CPU time** — that is the
//! entire point of CXL-driven tracking (§5).

use crate::addr::CacheLineAddr;
use crate::faults::DeviceFault;
use crate::time::Nanos;
use std::any::Any;
use std::fmt;

/// One snooped CXL DRAM access, as delivered to [`CxlDevice::on_access`].
///
/// The staged batch engine defers snoops within a quiescent segment and
/// flushes them in one [`CxlController::snoop_batch`] call; each event
/// carries the simulated time the access *happened*, not the flush time,
/// so batched delivery is invisible to the devices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SnoopEvent {
    /// The accessed line (`PA[47:6]`).
    pub line: CacheLineAddr,
    /// Whether this was writeback traffic (vs a miss-fill read).
    pub is_write: bool,
    /// Simulated time of the access.
    pub now: Nanos,
}

/// A near-memory hardware function attached to the CXL controller.
///
/// Implementors include the profilers (PAC, WAC) and the M5 trackers
/// (HPT, HWT), as well as [`crate::trace::TraceCapture`].
pub trait CxlDevice: Any + Send {
    /// A short human-readable device name (for reports).
    fn name(&self) -> &str;

    /// Observes one 64 B access to CXL DRAM.
    ///
    /// `line` is `PA[47:6]`; `is_write` distinguishes writeback traffic from
    /// miss-fill reads; `now` is the simulated time of the access.
    fn on_access(&mut self, line: CacheLineAddr, is_write: bool, now: Nanos);

    /// Observes a batch of accesses, in order.
    ///
    /// Must leave the device in exactly the state the equivalent
    /// [`CxlDevice::on_access`] loop would. The default loops; devices
    /// with a cheaper bulk datapath (the M5 trackers) override it.
    fn on_access_batch(&mut self, events: &[SnoopEvent]) {
        for e in events {
            self.on_access(e.line, e.is_write, e.now);
        }
    }

    /// Delivers an injected hardware fault to the device's SRAM state.
    ///
    /// The default implementation ignores faults — a device that opts out
    /// simply cannot be corrupted. Trackers and profilers override this to
    /// model bit flips, counter saturation, and permanent failure.
    fn on_fault(&mut self, _fault: DeviceFault) {}

    /// Upcast for downcasting by [`CxlController::device`].
    fn as_any(&self) -> &dyn Any;

    /// Upcast for downcasting by [`CxlController::device_mut`].
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// A typed handle to a device attached to a controller.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DeviceHandle(usize);

/// One attached near-memory function, dispatched statically where the
/// concrete type lives in this crate.
///
/// The simulator's own devices get their own variants so the per-access
/// snoop fan-out is a direct call with no vtable load; everything defined
/// downstream (profilers, trackers, PEBS, test probes) rides in the
/// [`AttachedDevice::Dyn`] variant, which preserves the original
/// `Box<dyn CxlDevice>` behaviour exactly.
pub enum AttachedDevice {
    /// A [`crate::trace::TraceCapture`], dispatched statically.
    Trace(crate::trace::TraceCapture),
    /// Any other device, dispatched through its vtable.
    Dyn(Box<dyn CxlDevice>),
}

impl AttachedDevice {
    #[inline]
    fn on_access(&mut self, line: CacheLineAddr, is_write: bool, now: Nanos) {
        match self {
            AttachedDevice::Trace(t) => t.on_access(line, is_write, now),
            AttachedDevice::Dyn(d) => d.on_access(line, is_write, now),
        }
    }

    #[inline]
    fn on_access_batch(&mut self, events: &[SnoopEvent]) {
        match self {
            AttachedDevice::Trace(t) => t.on_access_batch(events),
            AttachedDevice::Dyn(d) => d.on_access_batch(events),
        }
    }

    fn on_fault(&mut self, fault: DeviceFault) {
        match self {
            AttachedDevice::Trace(t) => t.on_fault(fault),
            AttachedDevice::Dyn(d) => d.on_fault(fault),
        }
    }

    fn name(&self) -> &str {
        match self {
            AttachedDevice::Trace(t) => t.name(),
            AttachedDevice::Dyn(d) => d.name(),
        }
    }

    fn as_any(&self) -> &dyn Any {
        match self {
            AttachedDevice::Trace(t) => t,
            AttachedDevice::Dyn(d) => d.as_any(),
        }
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        match self {
            AttachedDevice::Trace(t) => t,
            AttachedDevice::Dyn(d) => d.as_any_mut(),
        }
    }
}

/// The controller: a registry of devices plus the snoop fan-out.
#[derive(Default)]
pub struct CxlController {
    devices: Vec<AttachedDevice>,
}

impl CxlController {
    /// An empty controller.
    pub fn new() -> CxlController {
        CxlController::default()
    }

    /// Attaches a device; the returned handle retrieves it later.
    ///
    /// Devices whose concrete type this crate knows are routed to a static
    /// [`AttachedDevice`] variant; anything else is boxed as before.
    pub fn attach<D: CxlDevice>(&mut self, device: D) -> DeviceHandle {
        // Stable-Rust specialization: downcast the concrete `Option<D>`
        // to claim crate-native types by value without a second box.
        let mut slot = Some(device);
        let any: &mut dyn Any = &mut slot;
        let entry = match any.downcast_mut::<Option<crate::trace::TraceCapture>>() {
            Some(t) => AttachedDevice::Trace(
                t.take()
                    .expect("slot was filled above and taken at most once"),
            ),
            None => AttachedDevice::Dyn(Box::new(
                slot.take()
                    .expect("downcast missed, so the slot still holds the device"),
            )),
        };
        self.devices.push(entry);
        DeviceHandle(self.devices.len() - 1)
    }

    /// Attaches an already-boxed device on the dynamic path, bypassing the
    /// static routing in [`CxlController::attach`] — the plugin/test
    /// escape hatch for exercising the vtable dispatch itself.
    pub fn attach_dyn(&mut self, device: Box<dyn CxlDevice>) -> DeviceHandle {
        self.devices.push(AttachedDevice::Dyn(device));
        DeviceHandle(self.devices.len() - 1)
    }

    /// Forwards one CXL DRAM access to every attached device.
    #[inline]
    pub fn snoop(&mut self, line: CacheLineAddr, is_write: bool, now: Nanos) {
        for d in &mut self.devices {
            d.on_access(line, is_write, now);
        }
    }

    /// Forwards an ordered batch of deferred accesses to every attached
    /// device.
    ///
    /// Devices are independent of one another, so fanning out whole-batch
    /// (device 0 sees all events, then device 1, …) rather than per-event
    /// produces identical per-device state to calling
    /// [`CxlController::snoop`] per event.
    #[inline]
    pub fn snoop_batch(&mut self, events: &[SnoopEvent]) {
        for d in &mut self.devices {
            d.on_access_batch(events);
        }
    }

    /// Whether any device is attached (lets callers skip snoop bookkeeping
    /// entirely on device-free machines).
    #[inline]
    pub fn has_devices(&self) -> bool {
        !self.devices.is_empty()
    }

    /// Delivers an injected fault to every attached device (the blast
    /// radius of SRAM corruption in the shared near-memory block).
    pub fn inject(&mut self, fault: DeviceFault) {
        for d in &mut self.devices {
            d.on_fault(fault);
        }
    }

    /// Borrows an attached device, downcast to its concrete type.
    ///
    /// Returns `None` if the handle is stale or the type does not match.
    pub fn device<D: CxlDevice>(&self, handle: DeviceHandle) -> Option<&D> {
        self.devices.get(handle.0)?.as_any().downcast_ref()
    }

    /// Mutably borrows an attached device, downcast to its concrete type.
    pub fn device_mut<D: CxlDevice>(&mut self, handle: DeviceHandle) -> Option<&mut D> {
        self.devices.get_mut(handle.0)?.as_any_mut().downcast_mut()
    }

    /// Number of attached devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Names of attached devices, in attach order.
    pub fn device_names(&self) -> Vec<&str> {
        self.devices.iter().map(|d| d.name()).collect()
    }
}

impl fmt::Debug for CxlController {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CxlController")
            .field("devices", &self.device_names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountingDevice {
        reads: u64,
        writes: u64,
        last: Option<CacheLineAddr>,
    }

    impl CxlDevice for CountingDevice {
        fn name(&self) -> &str {
            "counter"
        }
        fn on_access(&mut self, line: CacheLineAddr, is_write: bool, _now: Nanos) {
            if is_write {
                self.writes += 1;
            } else {
                self.reads += 1;
            }
            self.last = Some(line);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn counting() -> CountingDevice {
        CountingDevice {
            reads: 0,
            writes: 0,
            last: None,
        }
    }

    #[test]
    fn snoop_fans_out_to_all_devices() {
        let mut ctl = CxlController::new();
        let h1 = ctl.attach(counting());
        let h2 = ctl.attach(counting());
        ctl.snoop(CacheLineAddr(7), false, Nanos(1));
        ctl.snoop(CacheLineAddr(8), true, Nanos(2));
        for h in [h1, h2] {
            let d: &CountingDevice = ctl.device(h).unwrap();
            assert_eq!(d.reads, 1);
            assert_eq!(d.writes, 1);
            assert_eq!(d.last, Some(CacheLineAddr(8)));
        }
    }

    #[test]
    fn downcast_to_wrong_type_is_none() {
        struct Other;
        impl CxlDevice for Other {
            fn name(&self) -> &str {
                "other"
            }
            fn on_access(&mut self, _: CacheLineAddr, _: bool, _: Nanos) {}
            fn as_any(&self) -> &dyn Any {
                self
            }
            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
        let mut ctl = CxlController::new();
        let h = ctl.attach(counting());
        assert!(ctl.device::<Other>(h).is_none());
        assert!(ctl.device_mut::<CountingDevice>(h).is_some());
    }

    #[test]
    fn debug_lists_device_names() {
        let mut ctl = CxlController::new();
        ctl.attach(counting());
        assert!(format!("{ctl:?}").contains("counter"));
        assert_eq!(ctl.device_count(), 1);
    }

    #[test]
    fn trace_capture_routes_to_static_variant() {
        use crate::trace::TraceCapture;
        let mut ctl = CxlController::new();
        let h = ctl.attach(TraceCapture::new());
        assert!(matches!(ctl.devices[0], AttachedDevice::Trace(_)));
        ctl.snoop(CacheLineAddr(3), true, Nanos(5));
        let t: &TraceCapture = ctl.device(h).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.records()[0].line, CacheLineAddr(3));
        let t: &mut TraceCapture = ctl.device_mut(h).unwrap();
        assert_eq!(t.name(), "trace-capture");
    }

    #[test]
    fn attach_dyn_keeps_the_vtable_path() {
        let mut ctl = CxlController::new();
        // Even a crate-native type stays dynamic when boxed explicitly.
        let h_trace = ctl.attach_dyn(Box::new(crate::trace::TraceCapture::new()));
        let h_count = ctl.attach_dyn(Box::new(counting()));
        assert!(matches!(ctl.devices[0], AttachedDevice::Dyn(_)));
        assert!(matches!(ctl.devices[1], AttachedDevice::Dyn(_)));
        ctl.snoop(CacheLineAddr(1), false, Nanos(0));
        let t: &crate::trace::TraceCapture = ctl.device(h_trace).unwrap();
        assert_eq!(t.len(), 1);
        let d: &CountingDevice = ctl.device(h_count).unwrap();
        assert_eq!(d.reads, 1);
        assert!(ctl.has_devices());
    }
}
