//! Run reports: everything a figure harness needs from one simulation run.

use crate::faults::FaultClass;
use crate::kernel::{CostKind, KernelCosts};
use crate::memory::NodeId;
use crate::migration::MigrationStats;
use crate::time::Nanos;
use std::fmt;

/// A compact log-scale latency histogram for percentile estimation.
///
/// Buckets are ~2.5 % wide (64 sub-buckets per power of two), so a reported
/// percentile is within a few percent of the exact order statistic while
/// storage stays constant no matter how many operations are recorded — the
/// Redis YCSB runs record millions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// counts[b] where b encodes (exponent, 64ths mantissa).
    counts: Vec<u64>,
    total: u64,
    max: Nanos,
}

const SUB_BITS: u32 = 6;
const SUB: u64 = 1 << SUB_BITS;

fn bucket_of(ns: u64) -> usize {
    if ns < SUB {
        return ns as usize;
    }
    let exp = 63 - ns.leading_zeros() as u64;
    let mantissa = (ns >> (exp - SUB_BITS as u64)) - SUB;
    ((exp - SUB_BITS as u64 + 1) * SUB + mantissa) as usize
}

fn bucket_lower_bound(b: usize) -> u64 {
    let b = b as u64;
    if b < SUB {
        return b;
    }
    let exp = b / SUB + SUB_BITS as u64 - 1;
    let mantissa = b % SUB;
    (SUB + mantissa) << (exp - SUB_BITS as u64)
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: vec![0; (64 - SUB_BITS as usize + 1) * SUB as usize],
            total: 0,
            max: Nanos::ZERO,
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: Nanos) {
        self.counts[bucket_of(v.0)] += 1;
        self.total += 1;
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// The largest sample recorded.
    pub fn max(&self) -> Nanos {
        self.max
    }

    /// Serializes the histogram for a checkpoint.
    pub fn save(&self, w: &mut crate::checkpoint::StateWriter) {
        w.put_u64_slice(&self.counts);
        w.put_u64(self.total);
        w.put_u64(self.max.0);
    }

    /// Rebuilds a histogram from a checkpoint section.
    ///
    /// # Errors
    ///
    /// Propagates codec errors; rejects a bucket array of the wrong width.
    pub fn restore(
        r: &mut crate::checkpoint::StateReader<'_>,
    ) -> Result<LatencyHistogram, crate::checkpoint::CodecError> {
        let counts = r.get_u64_vec()?;
        let expected = (64 - SUB_BITS as usize + 1) * SUB as usize;
        if counts.len() != expected {
            return Err(crate::checkpoint::CodecError::BadValue {
                what: "latency-histogram bucket count",
                value: counts.len() as u64,
            });
        }
        Ok(LatencyHistogram {
            counts,
            total: r.get_u64()?,
            max: Nanos(r.get_u64()?),
        })
    }

    /// The approximate `q`-quantile (`q` in `[0, 1]`), or `None` if empty.
    pub fn quantile(&self, q: f64) -> Option<Nanos> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Nanos(bucket_lower_bound(b)));
            }
        }
        Some(self.max)
    }

    /// Mean of recorded samples (bucket lower bounds), or `None` if empty.
    pub fn mean(&self) -> Option<Nanos> {
        if self.total == 0 {
            return None;
        }
        let sum: u128 = self
            .counts
            .iter()
            .enumerate()
            .map(|(b, &c)| bucket_lower_bound(b) as u128 * c as u128)
            .sum();
        Some(Nanos((sum / self.total as u128) as u64))
    }
}

/// Fault-injection and degradation summary for one run.
///
/// Default (all-zero, empty) for fault-free runs; [`RunReport`]'s `Display`
/// prints a health section only when something actually went wrong, so
/// fault-free output is byte-identical to builds without fault injection.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HealthReport {
    /// Faults armed by the injector during this run.
    pub faults_injected: u64,
    /// Per-class fault counts (non-zero classes only, display order).
    pub fault_counts: Vec<(FaultClass, u64)>,
    /// Poisoned lines recovered by memory-failure handling.
    pub poison_repairs: u64,
    /// Degradation-mode switches recorded by daemons (e.g. a tracker
    /// failure forcing software-only identification).
    pub degraded: Vec<String>,
    /// Migration attempts the Promoter retried after transient failures.
    pub promoter_retried: u64,
    /// Migration attempts the Promoter abandoned after exhausting retries.
    pub promoter_gave_up: u64,
}

impl HealthReport {
    /// Whether the run saw no faults, no degradations, and no retries.
    pub fn is_clean(&self) -> bool {
        self == &HealthReport::default()
    }
}

impl fmt::Display for HealthReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "health: {} faults injected, {} poison repairs",
            self.faults_injected, self.poison_repairs
        )?;
        if !self.fault_counts.is_empty() {
            write!(f, " (")?;
            for (i, (class, n)) in self.fault_counts.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{class}: {n}")?;
            }
            write!(f, ")")?;
        }
        if self.promoter_retried > 0 || self.promoter_gave_up > 0 {
            write!(
                f,
                "; promoter retried {} / gave up {}",
                self.promoter_retried, self.promoter_gave_up
            )?;
        }
        for d in &self.degraded {
            write!(f, "\n  degraded: {d}")?;
        }
        Ok(())
    }
}

/// The result of driving a workload through [`crate::system::run`].
#[derive(Clone, Debug, PartialEq)]
pub struct RunReport {
    /// Label of the daemon that ran (e.g. "anb", "damon", "m5-hpt").
    pub daemon: String,
    /// Total simulated time consumed.
    pub total_time: Nanos,
    /// Number of workload accesses executed.
    pub accesses: u64,
    /// LLC demand hits.
    pub llc_hits: u64,
    /// LLC demand misses (DRAM reads).
    pub llc_misses: u64,
    /// 64 B reads served per node.
    pub dram_reads: [(NodeId, u64); 2],
    /// Hinting (soft) page faults taken.
    pub hinting_faults: u64,
    /// Migration statistics.
    pub migrations: MigrationStats,
    /// Kernel-time ledger.
    pub kernel: KernelCosts,
    /// Per-operation latency distribution (if the workload marks ops).
    pub op_latency: LatencyHistogram,
    /// Fault-injection and degradation summary (default when fault-free).
    pub health: HealthReport,
}

impl RunReport {
    /// Operations per simulated second (0 if no op markers were seen).
    pub fn ops_per_sec(&self) -> f64 {
        if self.total_time == Nanos::ZERO {
            return 0.0;
        }
        self.op_latency.count() as f64 / self.total_time.as_secs_f64()
    }

    /// Accesses per simulated second.
    pub fn accesses_per_sec(&self) -> f64 {
        if self.total_time == Nanos::ZERO {
            return 0.0;
        }
        self.accesses as f64 / self.total_time.as_secs_f64()
    }

    /// The p99 operation latency, if ops were recorded.
    pub fn p99(&self) -> Option<Nanos> {
        self.op_latency.quantile(0.99)
    }

    /// Reads served by `node`.
    pub fn reads_on(&self, node: NodeId) -> u64 {
        self.dram_reads
            .iter()
            .find(|(n, _)| *n == node)
            .map(|&(_, r)| r)
            .unwrap_or(0)
    }

    /// Speedup of this run relative to `baseline` (by total time; higher is
    /// better).
    pub fn speedup_vs(&self, baseline: &RunReport) -> f64 {
        baseline.total_time.0 as f64 / self.total_time.0 as f64
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "[{}] {} for {} accesses ({:.1} M accesses/s)",
            self.daemon,
            self.total_time,
            self.accesses,
            self.accesses_per_sec() / 1e6
        )?;
        writeln!(
            f,
            "  LLC: {} hits / {} misses; DRAM reads: DDR {} CXL {}",
            self.llc_hits,
            self.llc_misses,
            self.reads_on(NodeId::Ddr),
            self.reads_on(NodeId::Cxl)
        )?;
        writeln!(
            f,
            "  migrations: {} promoted, {} demoted, {} rejected; {} hinting faults",
            self.migrations.promotions,
            self.migrations.demotions,
            self.migrations.rejected,
            self.hinting_faults
        )?;
        write!(f, "  {}", self.kernel)?;
        if let Some(p99) = self.p99() {
            write!(f, "\n  op latency p50/p99: ")?;
            match self.op_latency.quantile(0.50) {
                Some(p50) => write!(f, "{p50}/{p99}")?,
                None => write!(f, "-/{p99}")?,
            }
        }
        if !self.health.is_clean() {
            write!(f, "\n  {}", self.health)?;
        }
        Ok(())
    }
}

/// Identification-only kernel time (everything except `Migration`) — used by
/// the §4.2 harness.
pub fn identification_cost(kernel: &KernelCosts) -> Nanos {
    kernel.identification_total()
}

/// A `(kind, time)` breakdown in display order, skipping zero rows.
pub fn kernel_breakdown(kernel: &KernelCosts) -> Vec<(CostKind, Nanos)> {
    CostKind::ALL
        .into_iter()
        .filter(|&k| kernel.of(k) > Nanos::ZERO)
        .map(|k| (k, kernel.of(k)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_roundtrip_is_monotone_and_tight() {
        let mut prev = 0;
        for ns in [
            0u64,
            1,
            63,
            64,
            65,
            100,
            1000,
            54_000,
            1_000_000,
            u32::MAX as u64,
        ] {
            let b = bucket_of(ns);
            let lo = bucket_lower_bound(b);
            assert!(lo <= ns, "lower bound {lo} > value {ns}");
            // Bucket width is < 1/32 of the value above 64 ns.
            if ns >= 64 {
                assert!(ns - lo <= ns / 32, "bucket too wide at {ns}");
            }
            assert!(b >= prev);
            prev = b;
        }
    }

    #[test]
    fn quantiles_of_uniform_samples() {
        let mut h = LatencyHistogram::new();
        for i in 1..=10_000u64 {
            h.record(Nanos(i));
        }
        assert_eq!(h.count(), 10_000);
        let p50 = h.quantile(0.5).unwrap().0;
        let p99 = h.quantile(0.99).unwrap().0;
        assert!((4800..=5200).contains(&p50), "p50={p50}");
        assert!((9500..=10_000).contains(&p99), "p99={p99}");
        assert!(h.quantile(1.0).unwrap().0 <= 10_000);
        assert!(h.mean().unwrap().0 > 4500);
    }

    #[test]
    fn empty_histogram_yields_none() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.99), None);
        assert_eq!(h.mean(), None);
    }

    fn dummy_report(total: u64) -> RunReport {
        RunReport {
            daemon: "test".into(),
            total_time: Nanos(total),
            accesses: 100,
            llc_hits: 60,
            llc_misses: 40,
            dram_reads: [(NodeId::Ddr, 10), (NodeId::Cxl, 30)],
            hinting_faults: 2,
            migrations: MigrationStats::default(),
            kernel: KernelCosts::new(),
            op_latency: LatencyHistogram::new(),
            health: HealthReport::default(),
        }
    }

    #[test]
    fn kernel_breakdown_skips_zero_rows() {
        let mut k = KernelCosts::new();
        k.bill(CostKind::PteScan, Nanos(30));
        k.bill(CostKind::Migration, Nanos(54_000));
        let rows = kernel_breakdown(&k);
        assert_eq!(rows.len(), 2);
        assert!(rows
            .iter()
            .any(|&(kind, t)| kind == CostKind::PteScan && t == Nanos(30)));
        assert_eq!(identification_cost(&k), Nanos(30));
    }

    #[test]
    fn display_includes_op_percentiles_when_present() {
        let mut r = dummy_report(1_000_000);
        r.op_latency.record(Nanos(100));
        r.op_latency.record(Nanos(2000));
        let s = r.to_string();
        assert!(s.contains("op latency p50/p99"), "{s}");
    }

    #[test]
    fn clean_health_is_invisible_in_display() {
        let r = dummy_report(1_000_000);
        assert!(r.health.is_clean());
        assert!(
            !r.to_string().contains("health:"),
            "clean runs show no health section"
        );
        let mut faulty = dummy_report(1_000_000);
        faulty.health.faults_injected = 3;
        faulty.health.fault_counts = vec![(FaultClass::PoisonedLine, 2)];
        faulty.health.degraded = vec!["hpt garbage; software-only fallback".into()];
        faulty.health.promoter_retried = 5;
        let s = faulty.to_string();
        assert!(s.contains("health: 3 faults injected"), "{s}");
        assert!(s.contains("poisoned-line: 2"), "{s}");
        assert!(s.contains("degraded: hpt garbage"), "{s}");
        assert!(s.contains("retried 5"), "{s}");
    }

    #[test]
    fn report_accessors() {
        let r = dummy_report(1_000_000_000);
        assert_eq!(r.reads_on(NodeId::Cxl), 30);
        assert!((r.accesses_per_sec() - 100.0).abs() < 1e-9);
        let faster = dummy_report(500_000_000);
        assert!((faster.speedup_vs(&r) - 2.0).abs() < 1e-12);
        assert!(r.to_string().contains("migrations"));
    }
}
