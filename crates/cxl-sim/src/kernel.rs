//! Kernel-time accounting.
//!
//! The paper's §4.2 quantifies the CPU cycles that page-migration solutions
//! burn inside the kernel — scanning PTEs (DAMON), invalidating TLBs and
//! handling hinting faults (ANB), and copying pages — by pinning the kernel
//! threads to the same core as the application and measuring the inflation.
//! This module reproduces that methodology with a ledger of simulated kernel
//! time per cost category; when the daemon is *co-located* (the default, as
//! in the paper), billed time also stalls the application clock.

use crate::time::Nanos;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Categories of kernel work, for the §4.2-style breakdown.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CostKind {
    /// Handling a soft (hinting) page fault, including entering/leaving the
    /// fault handler (ANB, Solution 1).
    HintingFault,
    /// Unmapping a sampled page: PTE write + remote TLB invalidation (ANB).
    TlbShootdown,
    /// Scanning one PTE and testing/clearing its accessed bit (DAMON,
    /// Solution 2; also MGLRU aging).
    PteScan,
    /// `migrate_pages()` work: copy, remap, flush (≈54 µs per 4 KiB page in
    /// the paper's setup).
    Migration,
    /// M5-manager work: MMIO queries of HPT/HWT, nominator processing,
    /// monitor sampling.
    ManagerQuery,
    /// Any other daemon bookkeeping.
    DaemonOther,
    /// Appending one record to the migration write-ahead journal (a
    /// cacheline write plus an ordering barrier per state transition).
    JournalWrite,
    /// RAS patrol scrub: reading one frame to harvest latent correctable
    /// errors, plus the soft-offline bookkeeping it triggers.
    RasScrub,
}

impl CostKind {
    /// All categories, in display order.
    pub const ALL: [CostKind; 8] = [
        CostKind::HintingFault,
        CostKind::TlbShootdown,
        CostKind::PteScan,
        CostKind::Migration,
        CostKind::ManagerQuery,
        CostKind::DaemonOther,
        CostKind::JournalWrite,
        CostKind::RasScrub,
    ];

    fn index(self) -> usize {
        match self {
            CostKind::HintingFault => 0,
            CostKind::TlbShootdown => 1,
            CostKind::PteScan => 2,
            CostKind::Migration => 3,
            CostKind::ManagerQuery => 4,
            CostKind::DaemonOther => 5,
            CostKind::JournalWrite => 6,
            CostKind::RasScrub => 7,
        }
    }

    /// The category's stable kebab-case name (also used as a telemetry
    /// label).
    pub const fn label(self) -> &'static str {
        match self {
            CostKind::HintingFault => "hinting-fault",
            CostKind::TlbShootdown => "tlb-shootdown",
            CostKind::PteScan => "pte-scan",
            CostKind::Migration => "migration",
            CostKind::ManagerQuery => "manager-query",
            CostKind::DaemonOther => "daemon-other",
            CostKind::JournalWrite => "journal-write",
            CostKind::RasScrub => "ras-scrub",
        }
    }
}

impl fmt::Display for CostKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Unit costs of kernel and hardware operations.
///
/// Defaults are drawn from the paper where it reports numbers (migration
/// ≈54 µs/page; DDR 100 ns vs CXL 270 ns loads) and from published
/// micro-architectural measurements elsewhere.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostModel {
    /// LLC hit service time.
    pub llc_hit: Nanos,
    /// Hardware page-table walk on a TLB miss (added to the access latency).
    pub page_walk: Nanos,
    /// Handling one soft/hinting page fault.
    pub hinting_fault: Nanos,
    /// One TLB shootdown (IPI + invalidation across cores).
    pub tlb_shootdown: Nanos,
    /// Scanning one PTE in a bulk linear walk (test/clear accessed bit).
    pub pte_scan_per_entry: Nanos,
    /// One *sampled* PTE check (DAMON-style): includes the software VMA
    /// lookup and page-table walk to reach an arbitrary address, far more
    /// expensive than the next entry of a linear scan.
    pub pte_sample_walk: Nanos,
    /// Migrating one 4 KiB page (copy + remap + flush).
    pub migrate_per_page: Nanos,
    /// One MMIO register read/write over CXL.io.
    pub mmio_reg_access: Nanos,
    /// Reading one top-K result batch from a tracker over MMIO.
    pub tracker_query: Nanos,
    /// Recovering one poisoned cache line via the kernel's memory-failure
    /// path (isolate the line, re-fetch/zero, resume). Billed only when the
    /// fault injector poisons a CXL read.
    pub poison_repair: Nanos,
    /// Appending one record to the migration write-ahead journal: a
    /// cacheline store plus the ordering barrier that makes it durable
    /// before the next migration step.
    pub journal_write: Nanos,
    /// Scrubbing (zero-fill + verify) one quarantined 4 KiB frame before it
    /// returns to the allocator.
    pub scrub_per_frame: Nanos,
    /// RAS patrol scrub of one 4 KiB frame: a streaming read that harvests
    /// latent correctable errors (much cheaper than the quarantine
    /// zero-fill — no write pass, no verify).
    pub ras_patrol_per_frame: Nanos,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            llc_hit: Nanos(20),
            page_walk: Nanos(60),
            hinting_fault: Nanos(1_500),
            tlb_shootdown: Nanos(4_000),
            pte_scan_per_entry: Nanos(15),
            pte_sample_walk: Nanos(70),
            migrate_per_page: Nanos::from_micros(54),
            mmio_reg_access: Nanos(400),
            tracker_query: Nanos(2_000),
            poison_repair: Nanos::from_micros(50),
            journal_write: Nanos(250),
            scrub_per_frame: Nanos::from_micros(5),
            ras_patrol_per_frame: Nanos(150),
        }
    }
}

/// The kernel-time ledger.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KernelCosts {
    by_kind: [Nanos; CostKind::ALL.len()],
    events: [u64; CostKind::ALL.len()],
}

impl KernelCosts {
    /// An empty ledger.
    pub fn new() -> KernelCosts {
        KernelCosts::default()
    }

    /// Records `d` nanoseconds of kernel work of kind `kind`.
    pub fn bill(&mut self, kind: CostKind, d: Nanos) {
        self.by_kind[kind.index()] += d;
        self.events[kind.index()] += 1;
    }

    /// Total kernel time of one kind.
    pub fn of(&self, kind: CostKind) -> Nanos {
        self.by_kind[kind.index()]
    }

    /// Number of billed events of one kind.
    pub fn events_of(&self, kind: CostKind) -> u64 {
        self.events[kind.index()]
    }

    /// Total kernel time across all kinds.
    pub fn total(&self) -> Nanos {
        self.by_kind.iter().copied().sum()
    }

    /// The ledger accumulated since `earlier` (which must be a past snapshot
    /// of this ledger), enabling per-run deltas on a reused system.
    pub fn delta_since(&self, earlier: &KernelCosts) -> KernelCosts {
        let mut out = KernelCosts::new();
        for k in CostKind::ALL {
            let i = k.index();
            out.by_kind[i] = self.by_kind[i] - earlier.by_kind[i];
            out.events[i] = self.events[i] - earlier.events[i];
        }
        out
    }

    /// Serializes the ledger for a checkpoint.
    pub fn save(&self, w: &mut crate::checkpoint::StateWriter) {
        for i in 0..CostKind::ALL.len() {
            w.put_u64(self.by_kind[i].0);
            w.put_u64(self.events[i]);
        }
    }

    /// Rebuilds a ledger from a checkpoint section.
    ///
    /// # Errors
    ///
    /// Propagates codec errors from a truncated or corrupt payload.
    pub fn restore(
        r: &mut crate::checkpoint::StateReader<'_>,
    ) -> Result<KernelCosts, crate::checkpoint::CodecError> {
        let mut out = KernelCosts::new();
        for i in 0..CostKind::ALL.len() {
            out.by_kind[i] = Nanos(r.get_u64()?);
            out.events[i] = r.get_u64()?;
        }
        Ok(out)
    }

    /// Total kernel time excluding migration itself — the paper's §4.2
    /// "identifying hot pages alone" metric (they disable `migrate_pages()`
    /// and measure what remains). Journal writes are part of the migration
    /// machinery, so they are excluded too: disabling `migrate_pages()`
    /// would eliminate them. RAS patrol scrubbing is maintenance, not
    /// identification, and is likewise excluded.
    pub fn identification_total(&self) -> Nanos {
        self.total()
            - self.of(CostKind::Migration)
            - self.of(CostKind::JournalWrite)
            - self.of(CostKind::RasScrub)
    }
}

impl fmt::Display for KernelCosts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "kernel time: {} total (", self.total())?;
        let mut first = true;
        for kind in CostKind::ALL {
            if self.of(kind) > Nanos::ZERO {
                if !first {
                    f.write_str(", ")?;
                }
                write!(f, "{kind}: {}", self.of(kind))?;
                first = false;
            }
        }
        f.write_str(")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn billing_accumulates_by_kind() {
        let mut k = KernelCosts::new();
        k.bill(CostKind::PteScan, Nanos(15));
        k.bill(CostKind::PteScan, Nanos(15));
        k.bill(CostKind::Migration, Nanos::from_micros(54));
        assert_eq!(k.of(CostKind::PteScan), Nanos(30));
        assert_eq!(k.events_of(CostKind::PteScan), 2);
        assert_eq!(k.total(), Nanos(54_030));
        assert_eq!(k.identification_total(), Nanos(30));
    }

    #[test]
    fn default_cost_model_matches_paper_anchors() {
        let m = CostModel::default();
        // 54 µs per migrated page, §7.2.
        assert_eq!(m.migrate_per_page, Nanos(54_000));
        // Migration amortization: cost / (CXL - DDR latency) ≈ 318 accesses.
        let amortize = m.migrate_per_page.0 / (270 - 100);
        assert!((315..=320).contains(&amortize));
    }

    #[test]
    fn journal_writes_count_as_migration_machinery() {
        let mut k = KernelCosts::new();
        k.bill(CostKind::JournalWrite, Nanos(250));
        k.bill(CostKind::PteScan, Nanos(15));
        assert_eq!(k.events_of(CostKind::JournalWrite), 1);
        assert_eq!(k.total(), Nanos(265));
        assert_eq!(
            k.identification_total(),
            Nanos(15),
            "journal appends vanish when migrate_pages() is disabled"
        );
    }

    #[test]
    fn display_reports_nonzero_kinds() {
        let mut k = KernelCosts::new();
        k.bill(CostKind::HintingFault, Nanos(1500));
        let s = k.to_string();
        assert!(s.contains("hinting-fault"));
        assert!(!s.contains("pte-scan"));
    }
}
