//! Address-space newtypes shared by the whole stack.
//!
//! The simulated machine follows the paper's hardware assumptions (§3): a
//! 48-bit physical address space, 4 KiB pages, and 64 B words (cache lines).
//! DRAM is therefore accessed with `PA[47:6]` and the page frame number of a
//! 4 KiB page is `PA[47:12]`.
//!
//! Every distinct interpretation of an address gets its own newtype so that
//! page numbers, word addresses, and byte addresses cannot be confused
//! (C-NEWTYPE). Conversions are explicit.

use std::fmt;

/// Size of a page in bytes (4 KiB).
pub const PAGE_SIZE: usize = 4096;
/// Size of a word (cache line) in bytes (64 B).
pub const WORD_SIZE: usize = 64;
/// Number of 64 B words in a 4 KiB page.
pub const WORDS_PER_PAGE: usize = PAGE_SIZE / WORD_SIZE;
/// log2 of [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 12;
/// log2 of [`WORD_SIZE`].
pub const WORD_SHIFT: u32 = 6;

/// A byte address in a workload's virtual address space.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(pub u64);

/// A byte address in the simulated physical address space.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(pub u64);

/// A virtual page number (`VirtAddr >> 12`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Vpn(pub u64);

/// A page frame number (`PhysAddr >> 12`), i.e. `PA[47:12]`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pfn(pub u64);

/// A cache-line (word) address, i.e. `PA[47:6]`. This is exactly what the
/// CXL controller's address-to-PFN converter snoops in the paper's Figure 2.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CacheLineAddr(pub u64);

/// The index of a 64 B word within its 4 KiB page (0..=63).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct WordIndex(pub u8);

impl VirtAddr {
    /// The virtual page number containing this address.
    #[inline]
    pub fn vpn(self) -> Vpn {
        Vpn(self.0 >> PAGE_SHIFT)
    }

    /// The byte offset of this address within its page.
    #[inline]
    pub fn page_offset(self) -> u64 {
        self.0 & (PAGE_SIZE as u64 - 1)
    }

    /// The word index of this address within its page.
    #[inline]
    pub fn word_index(self) -> WordIndex {
        WordIndex(((self.0 >> WORD_SHIFT) & (WORDS_PER_PAGE as u64 - 1)) as u8)
    }

    /// Returns this address displaced by `bytes`.
    #[inline]
    pub fn offset(self, bytes: u64) -> VirtAddr {
        VirtAddr(self.0 + bytes)
    }
}

impl PhysAddr {
    /// The page frame number containing this address (`PA[47:12]`).
    #[inline]
    pub fn pfn(self) -> Pfn {
        Pfn(self.0 >> PAGE_SHIFT)
    }

    /// The cache-line address of this address (`PA[47:6]`).
    #[inline]
    pub fn cache_line(self) -> CacheLineAddr {
        CacheLineAddr(self.0 >> WORD_SHIFT)
    }

    /// The word index of this address within its page.
    #[inline]
    pub fn word_index(self) -> WordIndex {
        WordIndex(((self.0 >> WORD_SHIFT) & (WORDS_PER_PAGE as u64 - 1)) as u8)
    }
}

impl Vpn {
    /// The base virtual address of this page.
    #[inline]
    pub fn base(self) -> VirtAddr {
        VirtAddr(self.0 << PAGE_SHIFT)
    }

    /// Returns the page `n` pages after this one.
    #[inline]
    pub fn offset(self, n: u64) -> Vpn {
        Vpn(self.0 + n)
    }
}

impl Pfn {
    /// The base physical address of this frame.
    #[inline]
    pub fn base(self) -> PhysAddr {
        PhysAddr(self.0 << PAGE_SHIFT)
    }

    /// The physical address of word `word` within this frame.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `word` is out of range (≥ 64).
    #[inline]
    pub fn word(self, word: WordIndex) -> PhysAddr {
        debug_assert!((word.0 as usize) < WORDS_PER_PAGE);
        PhysAddr((self.0 << PAGE_SHIFT) | ((word.0 as u64) << WORD_SHIFT))
    }
}

impl CacheLineAddr {
    /// The page frame number containing this cache line. This is the
    /// right-shift-by-6 performed by PAC's address-to-PFN converter.
    #[inline]
    pub fn pfn(self) -> Pfn {
        Pfn(self.0 >> (PAGE_SHIFT - WORD_SHIFT))
    }

    /// The byte address of the first byte of this cache line.
    #[inline]
    pub fn base(self) -> PhysAddr {
        PhysAddr(self.0 << WORD_SHIFT)
    }

    /// The word index of this cache line within its page.
    #[inline]
    pub fn word_index(self) -> WordIndex {
        WordIndex((self.0 & (WORDS_PER_PAGE as u64 - 1)) as u8)
    }
}

impl From<VirtAddr> for u64 {
    fn from(a: VirtAddr) -> u64 {
        a.0
    }
}

impl From<PhysAddr> for u64 {
    fn from(a: PhysAddr) -> u64 {
        a.0
    }
}

macro_rules! impl_addr_fmt {
    ($($t:ident),*) => {$(
        impl fmt::Debug for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($t), "({:#x})"), self.0)
            }
        }
        impl fmt::Display for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }
        impl fmt::LowerHex for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }
        impl fmt::UpperHex for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::UpperHex::fmt(&self.0, f)
            }
        }
    )*};
}

impl_addr_fmt!(VirtAddr, PhysAddr, Vpn, Pfn, CacheLineAddr, WordIndex);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virt_addr_decomposition() {
        let a = VirtAddr(0x1234_5678);
        assert_eq!(a.vpn(), Vpn(0x12345));
        assert_eq!(a.page_offset(), 0x678);
        assert_eq!(a.word_index(), WordIndex((0x678 >> 6) as u8));
    }

    #[test]
    fn phys_addr_decomposition() {
        let a = PhysAddr(0xdead_beef);
        assert_eq!(a.pfn(), Pfn(0xdead_beef >> 12));
        assert_eq!(a.cache_line(), CacheLineAddr(0xdead_beef >> 6));
        assert_eq!(a.word_index().0 as u64, (0xdead_beefu64 >> 6) & 63);
    }

    #[test]
    fn pfn_word_roundtrip() {
        let pfn = Pfn(42);
        for w in 0..WORDS_PER_PAGE as u8 {
            let pa = pfn.word(WordIndex(w));
            assert_eq!(pa.pfn(), pfn);
            assert_eq!(pa.word_index(), WordIndex(w));
        }
    }

    #[test]
    fn cache_line_to_pfn_is_right_shift_by_six() {
        // PAC converts PA[47:6] to a PFN by shifting right 6 bits (§3).
        let pa = PhysAddr(7 * PAGE_SIZE as u64 + 5 * WORD_SIZE as u64);
        let line = pa.cache_line();
        assert_eq!(line.pfn(), Pfn(7));
        assert_eq!(line.word_index(), WordIndex(5));
        assert_eq!(line.base(), PhysAddr(pa.0 & !(WORD_SIZE as u64 - 1)));
    }

    #[test]
    fn vpn_pfn_base_roundtrip() {
        assert_eq!(Vpn(9).base(), VirtAddr(9 * PAGE_SIZE as u64));
        assert_eq!(Pfn(9).base().pfn(), Pfn(9));
        assert_eq!(Vpn(3).offset(4), Vpn(7));
    }

    #[test]
    fn words_per_page_is_64() {
        assert_eq!(WORDS_PER_PAGE, 64);
    }

    #[test]
    fn debug_formats_are_nonempty() {
        assert!(!format!("{:?}", VirtAddr(0)).is_empty());
        assert!(!format!("{:?}", Pfn(0)).is_empty());
        assert_eq!(format!("{:x}", PhysAddr(0xff)), "ff");
    }
}
