//! Logical-time operation log for the core-sharded simulation driver.
//!
//! The sharded staged engine (`System::staged_block_sharded`) partitions a
//! quiet block's work by address — access-index slices for the translate
//! gather, contiguous LLC set ranges for the probe — and runs each
//! partition on a worker from the vendored work-queue pool. Workers never
//! touch shared state directly; anything with cross-shard effect is
//! *appended to a lane* of an [`OpLog`], stamped with its **logical time**
//! (the access index within the block), and applied at the next sync
//! point by a single sequential pass.
//!
//! ## Sync-point protocol
//!
//! 1. **Fan-out.** The coordinator fixes a [`Partition`] of the work and
//!    hands each worker its slice plus an empty [`Lane`]. A worker may
//!    only read shared state that is frozen for the block (the page
//!    table's translations, node latencies) and only write state it
//!    exclusively owns (its `split_at_mut` slice of a scratch array, its
//!    LLC set range).
//! 2. **Log.** Effects that cross shard boundaries — a page-run's TLB and
//!    PTE-flag evolution, a probe outcome destined for the global billing
//!    pass — are pushed into the worker's lane in slice order, stamped
//!    with the originating access index.
//! 3. **Sync.** After the barrier, the coordinator replays the merged log
//!    in ascending logical time ([`OpLog::iter_in_time`]) or scatters
//!    lane payloads back to their dense positions (disjoint by
//!    construction). Migrations, epoch and bandwidth-window rollover,
//!    fault windows, RAS service, and checkpoint capture all happen
//!    *between* blocks, where no lane is in flight — they observe the
//!    same merged state a sequential run would have produced.
//!
//! Because lane contents depend only on the worker's input slice (not on
//! scheduling), and the replay order depends only on the logical-time
//! stamps, the merged effect is deterministic: byte-identical to the
//! sequential engine no matter how the OS schedules workers, which is the
//! property the sharded-vs-sequential differential suites pin.

use std::ops::Range;

/// An even partition of `0..len` into `shards` contiguous ranges: the
/// first `len % shards` ranges get one extra element, so range sizes
/// differ by at most one and depend only on `(len, shards)` — never on
/// scheduling. Both the gather partition (access indices) and the LLC
/// probe partition (set indices) use this shape, so a shard count fully
/// determines who owns what.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Partition {
    len: usize,
    shards: usize,
    /// Base range size (`len / shards`).
    q: usize,
    /// Number of leading ranges sized `q + 1` (`len % shards`).
    r: usize,
}

impl Partition {
    /// Partitions `0..len` into `shards` contiguous ranges (empty ranges
    /// are allowed when `len < shards`).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(len: usize, shards: usize) -> Partition {
        assert!(shards > 0, "partition needs at least one shard");
        Partition {
            len,
            shards,
            q: len / shards,
            r: len % shards,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Total length partitioned.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the partitioned range is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The contiguous range owned by shard `k`.
    pub fn range(&self, k: usize) -> Range<usize> {
        debug_assert!(k < self.shards);
        let start = k * self.q + k.min(self.r);
        let end = start + self.q + usize::from(k < self.r);
        start..end
    }

    /// The shard owning element `i` (inverse of [`Partition::range`]).
    pub fn shard_of(&self, i: usize) -> usize {
        debug_assert!(i < self.len);
        let fat = self.r * (self.q + 1);
        if i < fat {
            i / (self.q + 1)
        } else {
            // Shards past the fat prefix are exactly `q` wide; `q` is
            // nonzero here because a fat prefix short of `i` implies
            // `len > r`, i.e. `q >= 1`.
            self.r + (i - fat) / self.q
        }
    }

    /// Iterates over every shard's range, in shard order.
    pub fn ranges(&self) -> impl Iterator<Item = Range<usize>> + '_ {
        (0..self.shards).map(|k| self.range(k))
    }
}

/// One shard's append-only operation lane: parallel arrays of logical
/// timestamps and payloads, pushed in ascending time order.
#[derive(Clone, Debug)]
pub struct Lane<T> {
    /// Logical time (access index) of each operation.
    pub time: Vec<u32>,
    /// Operation payloads, aligned with `time`.
    pub ops: Vec<T>,
}

impl<T> Default for Lane<T> {
    fn default() -> Lane<T> {
        Lane::new()
    }
}

impl<T> Lane<T> {
    /// An empty lane.
    pub fn new() -> Lane<T> {
        Lane {
            time: Vec::new(),
            ops: Vec::new(),
        }
    }

    /// Appends an operation stamped `time`. Callers must push in
    /// ascending time order (workers scan their slice left to right, so
    /// this is the natural order).
    #[inline]
    pub fn push(&mut self, time: u32, op: T) {
        debug_assert!(
            self.time.last().is_none_or(|&t| t <= time),
            "lane pushes must be time-ordered"
        );
        self.time.push(time);
        self.ops.push(op);
    }

    /// Number of logged operations.
    pub fn len(&self) -> usize {
        self.time.len()
    }

    /// Whether the lane is empty.
    pub fn is_empty(&self) -> bool {
        self.time.is_empty()
    }

    /// Drops all operations, keeping capacity.
    pub fn clear(&mut self) {
        self.time.clear();
        self.ops.clear();
    }
}

/// A per-shard set of [`Lane`]s with a deterministic merged view.
#[derive(Clone, Debug)]
pub struct OpLog<T> {
    lanes: Vec<Lane<T>>,
}

impl<T> OpLog<T> {
    /// An empty log with `shards` lanes.
    pub fn new(shards: usize) -> OpLog<T> {
        OpLog {
            lanes: (0..shards).map(|_| Lane::new()).collect(),
        }
    }

    /// Adopts lanes produced elsewhere (e.g. returned from workers).
    pub fn from_lanes(lanes: Vec<Lane<T>>) -> OpLog<T> {
        OpLog { lanes }
    }

    /// Appends an operation to shard `k`'s lane.
    #[inline]
    pub fn push(&mut self, k: usize, time: u32, op: T) {
        self.lanes[k].push(time, op);
    }

    /// The lanes, in shard order.
    pub fn lanes(&self) -> &[Lane<T>] {
        &self.lanes
    }

    /// The lanes, mutably (workers fill them through disjoint borrows).
    pub fn lanes_mut(&mut self) -> &mut [Lane<T>] {
        &mut self.lanes
    }

    /// Total operations across all lanes.
    pub fn total_len(&self) -> usize {
        self.lanes.iter().map(Lane::len).sum()
    }

    /// Clears every lane, keeping capacity.
    pub fn clear(&mut self) {
        for lane in &mut self.lanes {
            lane.clear();
        }
    }

    /// Merged view: every logged operation in ascending logical time,
    /// ties broken by lane index (shards own disjoint time slices, so
    /// ties cannot arise from a well-formed gather — the tiebreak just
    /// keeps the order total). This is the sync-point replay order, and
    /// it is independent of worker scheduling by construction.
    pub fn iter_in_time(&self) -> InTime<'_, T> {
        InTime {
            lanes: &self.lanes,
            cursor: vec![0; self.lanes.len()],
        }
    }
}

/// Iterator over an [`OpLog`]'s operations in ascending logical time
/// (a k-way merge over the lanes' cursors).
#[derive(Debug)]
pub struct InTime<'a, T> {
    lanes: &'a [Lane<T>],
    cursor: Vec<usize>,
}

impl<'a, T> Iterator for InTime<'a, T> {
    type Item = (u32, &'a T);

    fn next(&mut self) -> Option<(u32, &'a T)> {
        let mut best: Option<(u32, usize)> = None;
        for (k, lane) in self.lanes.iter().enumerate() {
            if let Some(&t) = lane.time.get(self.cursor[k]) {
                if best.is_none_or(|(bt, _)| t < bt) {
                    best = Some((t, k));
                }
            }
        }
        let (t, k) = best?;
        let op = &self.lanes[k].ops[self.cursor[k]];
        self.cursor[k] += 1;
        Some((t, op))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_tiles_exactly() {
        for len in [0usize, 1, 2, 7, 16, 1000, 4097] {
            for shards in [1usize, 2, 3, 5, 8, 16] {
                let p = Partition::new(len, shards);
                let mut next = 0;
                for (k, r) in p.ranges().enumerate() {
                    assert_eq!(r.start, next, "len={len} shards={shards} k={k}");
                    assert!(r.end - r.start <= len / shards + 1);
                    for i in r.clone() {
                        assert_eq!(p.shard_of(i), k, "len={len} shards={shards} i={i}");
                    }
                    next = r.end;
                }
                assert_eq!(next, len);
            }
        }
    }

    #[test]
    fn partition_sizes_differ_by_at_most_one() {
        let p = Partition::new(10, 4);
        let sizes: Vec<usize> = p.ranges().map(|r| r.len()).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
    }

    #[test]
    #[should_panic]
    fn zero_shards_rejected() {
        Partition::new(4, 0);
    }

    #[test]
    fn merge_is_time_ordered_regardless_of_lane_layout() {
        // The same operation set split across lanes two different ways
        // must replay identically.
        let mut a = OpLog::new(2);
        a.push(0, 0, 'x');
        a.push(0, 2, 'y');
        a.push(1, 5, 'z');
        let mut b = OpLog::new(3);
        b.push(2, 5, 'z');
        b.push(0, 0, 'x');
        b.push(1, 2, 'y');
        let flat = |log: &OpLog<char>| -> Vec<(u32, char)> {
            log.iter_in_time().map(|(t, &c)| (t, c)).collect()
        };
        assert_eq!(flat(&a), vec![(0, 'x'), (2, 'y'), (5, 'z')]);
        assert_eq!(flat(&a), flat(&b));
    }

    #[test]
    fn merge_breaks_ties_by_lane_index() {
        let mut log = OpLog::new(2);
        log.push(1, 7, 'b');
        log.push(0, 7, 'a');
        let order: Vec<char> = log.iter_in_time().map(|(_, &c)| c).collect();
        assert_eq!(order, vec!['a', 'b']);
    }

    #[test]
    fn clear_keeps_lane_count() {
        let mut log = OpLog::new(4);
        log.push(3, 1, 9u64);
        assert_eq!(log.total_len(), 1);
        log.clear();
        assert_eq!(log.total_len(), 0);
        assert_eq!(log.lanes().len(), 4);
    }

    #[test]
    fn from_lanes_round_trips() {
        let mut lane = Lane::new();
        lane.push(4, "op");
        let log = OpLog::from_lanes(vec![lane, Lane::new()]);
        assert_eq!(log.total_len(), 1);
        assert_eq!(log.iter_in_time().next(), Some((4, &"op")));
    }
}
