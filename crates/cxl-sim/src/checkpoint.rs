//! Crash-consistent checkpoint/restore for the simulated stack.
//!
//! A [`Checkpoint`] is an ordered list of named, checksummed sections, each
//! holding the hand-serialized state of one component ([`StateWriter`] /
//! [`StateReader`] are the codec). The on-disk manifest is versioned and
//! framed so every corruption mode is *detected*, never silently accepted:
//!
//! ```text
//! MAGIC(8) VERSION(u32) NSECTIONS(u32)
//!   [ name-len(u32) name payload-len(u64) fnv64(u64) payload ]*
//! END-MARKER(u64)
//! ```
//!
//! * a wrong magic or version fails with [`RestoreError::BadMagic`] /
//!   [`RestoreError::VersionSkew`],
//! * a bit-flip inside a payload fails that section's FNV-1a checksum,
//! * a truncation mid-payload fails with [`RestoreError::Truncated`], and a
//!   truncation at an exact section boundary is caught by the end marker.
//!
//! Commits are two-phase: the full image is written to `<path>.tmp`, the
//! previous checkpoint (if any) is renamed to `<path>.prev`, and only then
//! is the tmp file renamed into place. A crash at any point leaves either
//! the old or the new image loadable; [`Checkpoint::load`] transparently
//! falls back to `<path>.prev` when the primary is missing or torn.
//! [`Checkpoint::commit_torn`] simulates exactly such crashes (including
//! rename/data reordering, where torn bytes land under the final name) so
//! the fallback path is testable deterministically.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Manifest magic: identifies a cxl-sim checkpoint file.
pub const MAGIC: [u8; 8] = *b"M5CKPT01";

/// Current manifest version. Bump on any incompatible layout change.
pub const VERSION: u32 = 1;

/// Terminator written after the last section; catches truncation at an
/// exact section boundary (which no per-section checksum would see).
const END_MARKER: u64 = 0x4d35_454e_444d_4152; // "M5ENDMAR"

/// 64-bit FNV-1a over `bytes` — the per-section integrity checksum.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A decoding failure inside one section's payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The payload ended before the value being read.
    Truncated {
        /// Bytes the read needed.
        need: usize,
        /// Bytes that were left.
        have: usize,
    },
    /// A tag or flag byte held a value outside its domain.
    BadValue {
        /// What was being decoded.
        what: &'static str,
        /// The offending raw value.
        value: u64,
    },
    /// The payload had bytes left after the last expected field.
    Trailing {
        /// How many bytes were left over.
        bytes: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { need, have } => {
                write!(f, "payload truncated: needed {need} bytes, had {have}")
            }
            CodecError::BadValue { what, value } => {
                write!(f, "bad {what} value {value}")
            }
            CodecError::Trailing { bytes } => {
                write!(f, "{bytes} trailing bytes after last field")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// A failure while writing or committing a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// A filesystem operation failed.
    Io {
        /// What the operation was doing.
        context: String,
        /// The underlying error.
        source: io::Error,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { context, source } => {
                write!(f, "checkpoint io failure while {context}: {source}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// A failure while loading or applying a checkpoint.
#[derive(Debug)]
pub enum RestoreError {
    /// Reading the file failed.
    Io(io::Error),
    /// The file does not start with the checkpoint magic.
    BadMagic,
    /// The file was written by an incompatible manifest version.
    VersionSkew {
        /// Version found in the file.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// The file ended before the structure it was framing.
    Truncated {
        /// Which frame field was being read.
        context: &'static str,
    },
    /// A section's payload does not match its recorded checksum.
    ChecksumMismatch {
        /// Name of the corrupt section.
        section: String,
    },
    /// The end marker after the last section is missing or wrong.
    MissingEndMarker,
    /// A section the restore path requires is absent.
    MissingSection {
        /// Name of the missing section.
        section: &'static str,
    },
    /// The checkpoint was taken under a different system configuration.
    ConfigMismatch,
    /// A section's payload failed to decode field-by-field.
    Corrupt {
        /// Name of the corrupt section.
        section: &'static str,
        /// The codec-level cause.
        source: CodecError,
    },
    /// Neither the primary checkpoint nor its `.prev` fallback loaded.
    NoValidCheckpoint {
        /// Why the primary failed.
        primary: String,
        /// Why the fallback failed.
        fallback: String,
    },
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::Io(e) => write!(f, "checkpoint read failed: {e}"),
            RestoreError::BadMagic => f.write_str("not a cxl-sim checkpoint (bad magic)"),
            RestoreError::VersionSkew { found, expected } => {
                write!(f, "checkpoint version {found} incompatible with {expected}")
            }
            RestoreError::Truncated { context } => {
                write!(f, "checkpoint truncated while reading {context}")
            }
            RestoreError::ChecksumMismatch { section } => {
                write!(f, "section '{section}' failed its checksum")
            }
            RestoreError::MissingEndMarker => f.write_str("end marker missing or corrupt"),
            RestoreError::MissingSection { section } => {
                write!(f, "required section '{section}' missing")
            }
            RestoreError::ConfigMismatch => {
                f.write_str("checkpoint was taken under a different system configuration")
            }
            RestoreError::Corrupt { section, source } => {
                write!(f, "section '{section}' corrupt: {source}")
            }
            RestoreError::NoValidCheckpoint { primary, fallback } => {
                write!(
                    f,
                    "no valid checkpoint: primary: {primary}; fallback: {fallback}"
                )
            }
        }
    }
}

impl std::error::Error for RestoreError {}

impl From<CodecError> for RestoreError {
    fn from(e: CodecError) -> RestoreError {
        RestoreError::Corrupt {
            section: "<unknown>",
            source: e,
        }
    }
}

/// Tags a [`CodecError`] with the section being decoded — use as
/// `reader_work().map_err(section_err("llc"))`.
pub fn section_err(section: &'static str) -> impl Fn(CodecError) -> RestoreError {
    move |source| RestoreError::Corrupt { section, source }
}

/// Little-endian binary encoder for component state.
#[derive(Clone, Debug, Default)]
pub struct StateWriter {
    buf: Vec<u8>,
}

impl StateWriter {
    /// An empty writer.
    pub fn new() -> StateWriter {
        StateWriter::default()
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as a 0/1 byte.
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends a little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u128.
    pub fn put_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an f64 bit pattern (exact, no rounding).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a usize widened to u64.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a length-prefixed u64 slice.
    pub fn put_u64_slice(&mut self, s: &[u64]) {
        self.put_u64(s.len() as u64);
        for &v in s {
            self.put_u64(v);
        }
    }

    /// Appends a length-prefixed u32 slice.
    pub fn put_u32_slice(&mut self, s: &[u32]) {
        self.put_u64(s.len() as u64);
        for &v in s {
            self.put_u32(v);
        }
    }

    /// The encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Little-endian binary decoder, the mirror of [`StateWriter`].
#[derive(Clone, Debug)]
pub struct StateReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> StateReader<'a> {
    /// A reader over `buf`.
    pub fn new(buf: &'a [u8]) -> StateReader<'a> {
        StateReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let have = self.buf.len() - self.pos;
        if have < n {
            return Err(CodecError::Truncated { need: n, have });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a 0/1 byte as a bool.
    pub fn get_bool(&mut self) -> Result<bool, CodecError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(CodecError::BadValue {
                what: "bool",
                value: v as u64,
            }),
        }
    }

    /// Reads a little-endian u32.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian u64.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a little-endian u128.
    pub fn get_u128(&mut self) -> Result<u128, CodecError> {
        let b = self.take(16)?;
        let mut a = [0u8; 16];
        a.copy_from_slice(b);
        Ok(u128::from_le_bytes(a))
    }

    /// Reads an f64 bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a u64 narrowed to usize.
    pub fn get_usize(&mut self) -> Result<usize, CodecError> {
        Ok(self.get_u64()? as usize)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, CodecError> {
        let n = self.get_u32()? as usize;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| CodecError::BadValue {
            what: "utf-8 string",
            value: n as u64,
        })
    }

    /// Reads a length-prefixed u64 vector.
    pub fn get_u64_vec(&mut self) -> Result<Vec<u64>, CodecError> {
        let n = self.get_u64()? as usize;
        let mut v = Vec::with_capacity(n.min(self.buf.len() - self.pos));
        for _ in 0..n {
            v.push(self.get_u64()?);
        }
        Ok(v)
    }

    /// Reads a length-prefixed u32 vector.
    pub fn get_u32_vec(&mut self) -> Result<Vec<u32>, CodecError> {
        let n = self.get_u64()? as usize;
        let mut v = Vec::with_capacity(n.min(self.buf.len() - self.pos));
        for _ in 0..n {
            v.push(self.get_u32()?);
        }
        Ok(v)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless every byte was consumed.
    pub fn expect_end(&self) -> Result<(), CodecError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(CodecError::Trailing {
                bytes: self.buf.len() - self.pos,
            })
        }
    }
}

/// The result of [`Checkpoint::load`]: the image that loaded, and whether
/// the primary was torn and the `.prev` fallback served instead.
#[derive(Debug)]
pub struct LoadedCheckpoint {
    /// The decoded checkpoint.
    pub checkpoint: Checkpoint,
    /// `true` if the primary failed validation and `.prev` was used.
    pub fell_back: bool,
    /// Why the primary failed, when `fell_back` is set.
    pub primary_error: Option<RestoreError>,
}

/// A versioned, checksummed set of named state sections.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Checkpoint {
    sections: Vec<(String, Vec<u8>)>,
}

impl Checkpoint {
    /// An empty checkpoint.
    pub fn new() -> Checkpoint {
        Checkpoint::default()
    }

    /// Appends a named section. Section order is stable and indexable
    /// (torn-write injection addresses sections by position).
    pub fn add_section(&mut self, name: &str, payload: Vec<u8>) {
        debug_assert!(
            self.section(name).is_none(),
            "duplicate checkpoint section '{name}'"
        );
        self.sections.push((name.to_string(), payload));
    }

    /// The payload of section `name`, if present.
    pub fn section(&self, name: &str) -> Option<&[u8]> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, p)| p.as_slice())
    }

    /// The payload of section `name`, or a typed missing-section error.
    pub fn require(&self, name: &'static str) -> Result<&[u8], RestoreError> {
        self.section(name)
            .ok_or(RestoreError::MissingSection { section: name })
    }

    /// Section names in manifest order.
    pub fn section_names(&self) -> Vec<&str> {
        self.sections.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Number of sections.
    pub fn section_count(&self) -> usize {
        self.sections.len()
    }

    /// Serializes the full manifest.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for (name, payload) in &self.sections {
            Self::encode_section(&mut out, name, payload, payload.len());
        }
        out.extend_from_slice(&END_MARKER.to_le_bytes());
        out
    }

    fn encode_section(out: &mut Vec<u8>, name: &str, payload: &[u8], keep: usize) {
        out.extend_from_slice(&(name.len() as u32).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv64(payload).to_le_bytes());
        out.extend_from_slice(&payload[..keep]);
    }

    /// Serializes a manifest torn mid-way through section `at` (full frame
    /// header, half the payload, nothing after) — the image a crash leaves
    /// when data blocks never finished hitting disk.
    fn encode_truncated(&self, at: usize) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for (i, (name, payload)) in self.sections.iter().enumerate() {
            if i < at {
                Self::encode_section(&mut out, name, payload, payload.len());
            } else {
                Self::encode_section(&mut out, name, payload, payload.len() / 2);
                break;
            }
        }
        out
    }

    /// Parses and validates a manifest.
    ///
    /// # Errors
    ///
    /// Any framing, version, checksum, or truncation defect returns the
    /// corresponding [`RestoreError`]; a torn file is never accepted.
    pub fn decode(bytes: &[u8]) -> Result<Checkpoint, RestoreError> {
        let mut r = StateReader::new(bytes);
        let magic = r
            .take(8)
            .map_err(|_| RestoreError::Truncated { context: "magic" })?;
        if magic != MAGIC {
            return Err(RestoreError::BadMagic);
        }
        let version = r
            .get_u32()
            .map_err(|_| RestoreError::Truncated { context: "version" })?;
        if version != VERSION {
            return Err(RestoreError::VersionSkew {
                found: version,
                expected: VERSION,
            });
        }
        let n = r.get_u32().map_err(|_| RestoreError::Truncated {
            context: "section count",
        })? as usize;
        let mut sections = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let name = r.get_str().map_err(|_| RestoreError::Truncated {
                context: "section name",
            })?;
            let len = r.get_u64().map_err(|_| RestoreError::Truncated {
                context: "section length",
            })? as usize;
            let sum = r.get_u64().map_err(|_| RestoreError::Truncated {
                context: "section checksum",
            })?;
            let payload = r.take(len).map_err(|_| RestoreError::Truncated {
                context: "section payload",
            })?;
            if fnv64(payload) != sum {
                return Err(RestoreError::ChecksumMismatch { section: name });
            }
            sections.push((name, payload.to_vec()));
        }
        let end = r.get_u64().map_err(|_| RestoreError::MissingEndMarker)?;
        if end != END_MARKER {
            return Err(RestoreError::MissingEndMarker);
        }
        r.expect_end().map_err(|_| RestoreError::MissingEndMarker)?;
        Ok(Checkpoint { sections })
    }

    /// Commits this checkpoint to `path` with the two-phase protocol:
    /// write `<path>.tmp`, demote any existing `<path>` to `<path>.prev`,
    /// rename the tmp file into place.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] if any filesystem step fails; the previous
    /// checkpoint is untouched unless the final rename was reached.
    pub fn commit(&self, path: &Path) -> Result<(), CheckpointError> {
        self.commit_inner(path, None)
    }

    /// Commits with an injected torn write: a crash mid-way through writing
    /// section `at_section` (which still lands under the final name — the
    /// rename-before-data reordering real filesystems exhibit without
    /// fsync), or, when `at_section >= section_count()`, a crash between
    /// the two renames (old image already demoted, new never promoted).
    ///
    /// # Errors
    ///
    /// Same as [`Checkpoint::commit`].
    pub fn commit_torn(&self, path: &Path, at_section: u64) -> Result<(), CheckpointError> {
        self.commit_inner(path, Some(at_section))
    }

    fn commit_inner(&self, path: &Path, torn: Option<u64>) -> Result<(), CheckpointError> {
        let tmp = sibling(path, "tmp");
        let prev = sibling(path, "prev");
        let io_err = |context: &str| {
            let context = context.to_string();
            move |source: io::Error| CheckpointError::Io { context, source }
        };
        let (bytes, promote) = match torn {
            None => (self.encode(), true),
            Some(k) if (k as usize) < self.sections.len() => {
                (self.encode_truncated(k as usize), true)
            }
            // Crash between the renames: the tmp image is complete but
            // never promoted, and the old image was already demoted.
            Some(_) => (self.encode(), false),
        };
        fs::write(&tmp, &bytes).map_err(io_err("writing tmp image"))?;
        if path.exists() {
            fs::rename(path, &prev).map_err(io_err("demoting previous image"))?;
        }
        if promote {
            fs::rename(&tmp, path).map_err(io_err("promoting new image"))?;
        }
        Ok(())
    }

    /// Loads the checkpoint at `path`, falling back to `<path>.prev` when
    /// the primary is missing, torn, or corrupt.
    ///
    /// # Errors
    ///
    /// [`RestoreError::NoValidCheckpoint`] when neither image validates.
    pub fn load(path: &Path) -> Result<LoadedCheckpoint, RestoreError> {
        match Self::load_one(path) {
            Ok(checkpoint) => Ok(LoadedCheckpoint {
                checkpoint,
                fell_back: false,
                primary_error: None,
            }),
            Err(primary) => match Self::load_one(&sibling(path, "prev")) {
                Ok(checkpoint) => Ok(LoadedCheckpoint {
                    checkpoint,
                    fell_back: true,
                    primary_error: Some(primary),
                }),
                Err(fallback) => Err(RestoreError::NoValidCheckpoint {
                    primary: primary.to_string(),
                    fallback: fallback.to_string(),
                }),
            },
        }
    }

    fn load_one(path: &Path) -> Result<Checkpoint, RestoreError> {
        let bytes = fs::read(path).map_err(RestoreError::Io)?;
        Self::decode(&bytes)
    }
}

/// `<path>.<suffix>` beside `path` (appended, not replacing an extension).
fn sibling(path: &Path, suffix: &str) -> PathBuf {
    let mut s = path.as_os_str().to_os_string();
    s.push(".");
    s.push(suffix);
    PathBuf::from(s)
}

/// Serializes an exact telemetry log2 histogram (all buckets, not just
/// aggregates — restore must be lossless).
pub fn save_log2_histogram(h: &m5_telemetry::Log2Histogram, w: &mut StateWriter) {
    w.put_u64_slice(h.buckets());
    w.put_u128(h.sum());
    w.put_u64(h.max());
}

/// Restores a telemetry log2 histogram saved by [`save_log2_histogram`].
///
/// # Errors
///
/// Fails on truncation or a bucket vector of the wrong geometry.
pub fn restore_log2_histogram(
    r: &mut StateReader<'_>,
) -> Result<m5_telemetry::Log2Histogram, CodecError> {
    let buckets = r.get_u64_vec()?;
    let sum = r.get_u128()?;
    let max = r.get_u64()?;
    m5_telemetry::Log2Histogram::from_parts(&buckets, sum, max).ok_or(CodecError::BadValue {
        what: "log2-histogram bucket count",
        value: buckets.len() as u64,
    })
}

/// Serializes a full telemetry metric export ([`m5_telemetry::TelemetryState`]).
pub fn save_telemetry_state(s: &m5_telemetry::TelemetryState, w: &mut StateWriter) {
    w.put_u64(s.counters.len() as u64);
    for (name, label, v) in &s.counters {
        w.put_str(name);
        w.put_str(label);
        w.put_u64(*v);
    }
    w.put_u64(s.gauges.len() as u64);
    for (name, label, v) in &s.gauges {
        w.put_str(name);
        w.put_str(label);
        w.put_f64(*v);
    }
    w.put_u64(s.histograms.len() as u64);
    for (name, label, h) in &s.histograms {
        w.put_str(name);
        w.put_str(label);
        save_log2_histogram(h, w);
    }
    w.put_u64(s.next_span);
}

/// Restores a telemetry metric export saved by [`save_telemetry_state`].
///
/// # Errors
///
/// Propagates codec errors from a truncated or corrupt payload.
pub fn restore_telemetry_state(
    r: &mut StateReader<'_>,
) -> Result<m5_telemetry::TelemetryState, CodecError> {
    let mut s = m5_telemetry::TelemetryState::default();
    let nc = r.get_u64()?;
    for _ in 0..nc {
        let name = r.get_str()?;
        let label = r.get_str()?;
        s.counters.push((name, label, r.get_u64()?));
    }
    let ng = r.get_u64()?;
    for _ in 0..ng {
        let name = r.get_str()?;
        let label = r.get_str()?;
        s.gauges.push((name, label, r.get_f64()?));
    }
    let nh = r.get_u64()?;
    for _ in 0..nh {
        let name = r.get_str()?;
        let label = r.get_str()?;
        s.histograms.push((name, label, restore_log2_histogram(r)?));
    }
    s.next_span = r.get_u64()?;
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        let mut c = Checkpoint::new();
        c.add_section("alpha", vec![1, 2, 3, 4, 5, 6, 7, 8]);
        c.add_section("beta", b"hello world".to_vec());
        c.add_section("gamma", Vec::new());
        c
    }

    #[test]
    fn codec_roundtrip_covers_every_type() {
        let mut w = StateWriter::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX - 3);
        w.put_u128(u128::MAX / 3);
        w.put_f64(-0.125);
        w.put_usize(4096);
        w.put_str("checkpoint");
        w.put_u64_slice(&[9, 8, 7]);
        w.put_u32_slice(&[1, 2]);
        let bytes = w.finish();
        let mut r = StateReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_u128().unwrap(), u128::MAX / 3);
        assert_eq!(r.get_f64().unwrap(), -0.125);
        assert_eq!(r.get_usize().unwrap(), 4096);
        assert_eq!(r.get_str().unwrap(), "checkpoint");
        assert_eq!(r.get_u64_vec().unwrap(), vec![9, 8, 7]);
        assert_eq!(r.get_u32_vec().unwrap(), vec![1, 2]);
        r.expect_end().unwrap();
    }

    #[test]
    fn codec_rejects_bad_bool_and_truncation_and_trailing() {
        let mut r = StateReader::new(&[2]);
        assert!(matches!(
            r.get_bool(),
            Err(CodecError::BadValue { what: "bool", .. })
        ));
        let mut r = StateReader::new(&[1, 2]);
        assert!(matches!(r.get_u64(), Err(CodecError::Truncated { .. })));
        let r = StateReader::new(&[0]);
        assert!(matches!(
            r.expect_end(),
            Err(CodecError::Trailing { bytes: 1 })
        ));
    }

    #[test]
    fn manifest_roundtrip_preserves_sections_in_order() {
        let c = sample();
        let d = Checkpoint::decode(&c.encode()).unwrap();
        assert_eq!(c, d);
        assert_eq!(d.section_names(), vec!["alpha", "beta", "gamma"]);
        assert_eq!(d.section("beta").unwrap(), b"hello world");
        assert!(d.section("delta").is_none());
        assert!(matches!(
            d.require("delta"),
            Err(RestoreError::MissingSection { section: "delta" })
        ));
    }

    #[test]
    fn decode_rejects_bad_magic_and_version_skew() {
        let mut bytes = sample().encode();
        bytes[0] ^= 0xff;
        assert!(matches!(
            Checkpoint::decode(&bytes),
            Err(RestoreError::BadMagic)
        ));
        let mut bytes = sample().encode();
        bytes[8] = 99; // version field
        assert!(matches!(
            Checkpoint::decode(&bytes),
            Err(RestoreError::VersionSkew {
                found: 99,
                expected: VERSION
            })
        ));
    }

    #[test]
    fn decode_rejects_every_single_bit_flip_in_payloads() {
        let clean = sample().encode();
        // Flip each payload byte of the first section and confirm the
        // checksum catches it. Payload of "alpha" starts after
        // 8 magic + 4 version + 4 count + 4 namelen + 5 name + 8 len + 8 sum.
        let start = 8 + 4 + 4 + 4 + 5 + 8 + 8;
        for i in start..start + 8 {
            let mut bytes = clean.clone();
            bytes[i] ^= 1;
            assert!(
                matches!(
                    Checkpoint::decode(&bytes),
                    Err(RestoreError::ChecksumMismatch { ref section }) if section == "alpha"
                ),
                "bit flip at byte {i} was not caught"
            );
        }
    }

    #[test]
    fn decode_rejects_truncation_at_every_length() {
        let clean = sample().encode();
        for n in 0..clean.len() {
            assert!(
                Checkpoint::decode(&clean[..n]).is_err(),
                "truncation to {n} bytes was accepted"
            );
        }
        assert!(Checkpoint::decode(&clean).is_ok());
    }

    #[test]
    fn commit_then_load_roundtrips_and_keeps_prev() {
        let dir = std::env::temp_dir().join("cxl-sim-ckpt-commit-test");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.ckpt");
        let first = sample();
        first.commit(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        assert!(!loaded.fell_back);
        assert_eq!(loaded.checkpoint, first);

        let mut second = Checkpoint::new();
        second.add_section("alpha", vec![9]);
        second.commit(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        assert!(!loaded.fell_back);
        assert_eq!(loaded.checkpoint, second);
        // The first image survives as .prev.
        let prev = Checkpoint::load(&sibling(&path, "prev")).unwrap();
        assert_eq!(prev.checkpoint, first);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_commit_at_every_section_falls_back_to_prev() {
        let dir = std::env::temp_dir().join("cxl-sim-ckpt-torn-test");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.ckpt");
        let good = sample();
        let mut newer = sample();
        newer.add_section("delta", vec![42; 16]);
        // Torn at each section index, plus one past the end (crash between
        // the renames). Every case must fall back to the good image.
        for at in 0..=newer.section_count() as u64 {
            let _ = fs::remove_file(&path);
            let _ = fs::remove_file(sibling(&path, "prev"));
            let _ = fs::remove_file(sibling(&path, "tmp"));
            good.commit(&path).unwrap();
            newer.commit_torn(&path, at).unwrap();
            let loaded = Checkpoint::load(&path)
                .unwrap_or_else(|e| panic!("torn at {at}: no valid image: {e}"));
            assert!(loaded.fell_back, "torn at {at} should fall back");
            assert_eq!(loaded.checkpoint, good, "torn at {at} must yield prev");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_commit_with_no_prev_reports_no_valid_checkpoint() {
        let dir = std::env::temp_dir().join("cxl-sim-ckpt-noprev-test");
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.ckpt");
        sample().commit_torn(&path, 0).unwrap();
        assert!(matches!(
            Checkpoint::load(&path),
            Err(RestoreError::NoValidCheckpoint { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fnv64_is_stable_and_input_sensitive() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv64(b"a"), fnv64(b"b"));
        assert_ne!(fnv64(b"ab"), fnv64(b"ba"));
    }

    #[test]
    fn errors_display_useful_messages() {
        let e = RestoreError::ChecksumMismatch {
            section: "llc".into(),
        };
        assert!(e.to_string().contains("llc"));
        let e = RestoreError::VersionSkew {
            found: 2,
            expected: 1,
        };
        assert!(e.to_string().contains('2'));
        let e = CheckpointError::Io {
            context: "writing tmp image".into(),
            source: io::Error::new(io::ErrorKind::Other, "disk on fire"),
        };
        assert!(e.to_string().contains("disk on fire"));
        let e = section_err("ras")(CodecError::Truncated { need: 8, have: 0 });
        assert!(e.to_string().contains("ras"));
    }
}
