//! A set-associative TLB.
//!
//! The TLB determines when the hardware page walker runs and therefore when
//! PTE accessed bits get set — the signal DAMON samples. It is also the
//! target of shootdowns: ANB's hinting-fault protocol and every page
//! migration must invalidate translations, which is a large part of their
//! CPU cost (§2.1, §4.2).

use crate::addr::Vpn;
use serde::{Deserialize, Serialize};

/// TLB geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbConfig {
    /// Total number of entries.
    pub entries: usize,
    /// Associativity.
    pub ways: usize,
}

impl TlbConfig {
    /// A geometry similar to a modern x86 second-level TLB, scaled to the
    /// simulator's reduced footprints.
    pub fn scaled_default() -> TlbConfig {
        TlbConfig {
            entries: 512,
            ways: 8,
        }
    }

    /// A tiny TLB for unit tests.
    pub fn tiny() -> TlbConfig {
        TlbConfig {
            entries: 8,
            ways: 2,
        }
    }
}

/// A single-core, set-associative TLB with per-set LRU replacement.
#[derive(Clone, Debug)]
pub struct Tlb {
    sets: Vec<Vec<Vpn>>,
    ways: usize,
    hits: u64,
    misses: u64,
    invalidations: u64,
}

impl Tlb {
    /// Builds an empty TLB.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a positive multiple of `ways`.
    pub fn new(config: TlbConfig) -> Tlb {
        assert!(config.ways > 0 && config.entries > 0);
        assert_eq!(
            config.entries % config.ways,
            0,
            "entries must be a multiple of ways"
        );
        let n_sets = config.entries / config.ways;
        Tlb {
            sets: vec![Vec::with_capacity(config.ways); n_sets],
            ways: config.ways,
            hits: 0,
            misses: 0,
            invalidations: 0,
        }
    }

    fn set_index(&self, vpn: Vpn) -> usize {
        (vpn.0 as usize) % self.sets.len()
    }

    /// Looks up `vpn`. On a hit the entry becomes most-recently-used and the
    /// method returns `true`. On a miss it returns `false`; the caller is
    /// expected to walk the page table and then [`Tlb::insert`].
    pub fn lookup(&mut self, vpn: Vpn) -> bool {
        let idx = self.set_index(vpn);
        let set = &mut self.sets[idx];
        if let Some(pos) = set.iter().position(|&v| v == vpn) {
            // Move to front: front = most recently used.
            let v = set.remove(pos);
            set.insert(0, v);
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Inserts a translation, evicting the LRU entry of the set if full.
    pub fn insert(&mut self, vpn: Vpn) {
        let idx = self.set_index(vpn);
        let ways = self.ways;
        let set = &mut self.sets[idx];
        if set.contains(&vpn) {
            return;
        }
        if set.len() == ways {
            set.pop();
        }
        set.insert(0, vpn);
    }

    /// Invalidates the translation for `vpn`, if cached (a shootdown for one
    /// page). Returns `true` if an entry was removed.
    pub fn invalidate(&mut self, vpn: Vpn) -> bool {
        let idx = self.set_index(vpn);
        let set = &mut self.sets[idx];
        if let Some(pos) = set.iter().position(|&v| v == vpn) {
            set.remove(pos);
            self.invalidations += 1;
            true
        } else {
            false
        }
    }

    /// Flushes the whole TLB (context switch / full shootdown).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            self.invalidations += set.len() as u64;
            set.clear();
        }
    }

    /// Number of lookup hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of lookup misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of entries invalidated so far.
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }

    /// Number of valid entries currently cached.
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut tlb = Tlb::new(TlbConfig::tiny());
        assert!(!tlb.lookup(Vpn(1)));
        tlb.insert(Vpn(1));
        assert!(tlb.lookup(Vpn(1)));
        assert_eq!(tlb.hits(), 1);
        assert_eq!(tlb.misses(), 1);
    }

    #[test]
    fn lru_eviction_within_set() {
        // tiny: 8 entries, 2 ways -> 4 sets. VPNs 0, 4, 8 all map to set 0.
        let mut tlb = Tlb::new(TlbConfig::tiny());
        tlb.insert(Vpn(0));
        tlb.insert(Vpn(4));
        assert!(tlb.lookup(Vpn(0))); // 0 becomes MRU; 4 is LRU
        tlb.insert(Vpn(8)); // evicts 4
        assert!(tlb.lookup(Vpn(0)));
        assert!(tlb.lookup(Vpn(8)));
        assert!(!tlb.lookup(Vpn(4)), "LRU way was evicted");
    }

    #[test]
    fn invalidate_and_flush() {
        let mut tlb = Tlb::new(TlbConfig::tiny());
        tlb.insert(Vpn(1));
        tlb.insert(Vpn(2));
        assert!(tlb.invalidate(Vpn(1)));
        assert!(!tlb.invalidate(Vpn(1)));
        assert!(!tlb.lookup(Vpn(1)));
        tlb.flush();
        assert_eq!(tlb.occupancy(), 0);
        assert!(!tlb.lookup(Vpn(2)));
        assert_eq!(tlb.invalidations(), 2);
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        let mut tlb = Tlb::new(TlbConfig::tiny());
        tlb.insert(Vpn(3));
        tlb.insert(Vpn(3));
        assert_eq!(tlb.occupancy(), 1);
    }

    #[test]
    #[should_panic(expected = "multiple of ways")]
    fn bad_geometry_panics() {
        let _ = Tlb::new(TlbConfig {
            entries: 7,
            ways: 2,
        });
    }
}
