//! A set-associative TLB.
//!
//! The TLB determines when the hardware page walker runs and therefore when
//! PTE accessed bits get set — the signal DAMON samples. It is also the
//! target of shootdowns: ANB's hinting-fault protocol and every page
//! migration must invalidate translations, which is a large part of their
//! CPU cost (§2.1, §4.2).
//!
//! # Layout
//!
//! Like the LLC, the TLB is one contiguous `Vec<u64>` of `sets × ways`
//! VPN entries with `u64::MAX` as the empty sentinel. Under the default
//! [`ReplacementPolicy::ExactLru`] each set's slice is recency-ordered
//! (way 0 = MRU), reproducing the original nested-`Vec` decisions
//! exactly; [`ReplacementPolicy::TreeLru`] is available opt-in via
//! [`Tlb::with_policy`].

use crate::addr::Vpn;
use crate::cache::{plru_touch, plru_victim, ReplacementPolicy};
use serde::{Deserialize, Serialize};

/// TLB geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbConfig {
    /// Total number of entries.
    pub entries: usize,
    /// Associativity.
    pub ways: usize,
}

impl TlbConfig {
    /// A geometry similar to a modern x86 second-level TLB, scaled to the
    /// simulator's reduced footprints.
    pub fn scaled_default() -> TlbConfig {
        TlbConfig {
            entries: 512,
            ways: 8,
        }
    }

    /// A tiny TLB for unit tests.
    pub fn tiny() -> TlbConfig {
        TlbConfig {
            entries: 8,
            ways: 2,
        }
    }
}

/// Empty-slot sentinel (a VPN never reaches 2^64 − 1: virtual addresses
/// top out 12 shift bits earlier).
const EMPTY: u64 = u64::MAX;

/// A single-core, set-associative TLB with per-set LRU replacement,
/// stored as a single flat entry array.
#[derive(Clone, Debug)]
pub struct Tlb {
    /// `n_sets × ways` VPN slots; see module docs for the layout.
    entries: Vec<u64>,
    /// Per-set pseudo-LRU bit trees; empty unless `policy` is `TreeLru`.
    plru: Vec<u64>,
    policy: ReplacementPolicy,
    n_sets: usize,
    /// `n_sets − 1` when `n_sets` is a power of two (mask indexing), else 0.
    set_mask: usize,
    ways: usize,
    hits: u64,
    misses: u64,
    invalidations: u64,
}

impl Tlb {
    /// Builds an empty TLB with the default exact-LRU policy.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a positive multiple of `ways`.
    pub fn new(config: TlbConfig) -> Tlb {
        Tlb::with_policy(config, ReplacementPolicy::ExactLru)
    }

    /// Builds an empty TLB under an explicit replacement policy.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid, or if `TreeLru` is asked for
    /// with a non-power-of-two associativity.
    pub fn with_policy(config: TlbConfig, policy: ReplacementPolicy) -> Tlb {
        assert!(config.ways > 0 && config.entries > 0);
        assert_eq!(
            config.entries % config.ways,
            0,
            "entries must be a multiple of ways"
        );
        let n_sets = config.entries / config.ways;
        if policy == ReplacementPolicy::TreeLru {
            assert!(
                config.ways.is_power_of_two() && config.ways <= 64,
                "tree pseudo-LRU needs power-of-two associativity ≤ 64"
            );
        }
        Tlb {
            entries: vec![EMPTY; config.entries],
            plru: if policy == ReplacementPolicy::TreeLru {
                vec![0; n_sets]
            } else {
                Vec::new()
            },
            policy,
            n_sets,
            set_mask: if n_sets.is_power_of_two() {
                n_sets - 1
            } else {
                0
            },
            ways: config.ways,
            hits: 0,
            misses: 0,
            invalidations: 0,
        }
    }

    /// The replacement policy this TLB was built with.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// Serializes the entry array (LRU order included), pseudo-LRU trees,
    /// and hit/miss/invalidation counters for a checkpoint. Geometry and
    /// policy are rebuilt from configuration on restore.
    pub fn save(&self, w: &mut crate::checkpoint::StateWriter) {
        w.put_u64_slice(&self.entries);
        w.put_u64_slice(&self.plru);
        w.put_u64(self.hits);
        w.put_u64(self.misses);
        w.put_u64(self.invalidations);
    }

    /// Rebuilds a TLB from a checkpoint section.
    ///
    /// # Errors
    ///
    /// Propagates codec errors; rejects arrays that do not match the
    /// geometry implied by `config`/`policy`.
    pub fn restore(
        config: TlbConfig,
        policy: ReplacementPolicy,
        r: &mut crate::checkpoint::StateReader<'_>,
    ) -> Result<Tlb, crate::checkpoint::CodecError> {
        let mut tlb = Tlb::with_policy(config, policy);
        let entries = r.get_u64_vec()?;
        if entries.len() != tlb.entries.len() {
            return Err(crate::checkpoint::CodecError::BadValue {
                what: "tlb entry count",
                value: entries.len() as u64,
            });
        }
        let plru = r.get_u64_vec()?;
        if plru.len() != tlb.plru.len() {
            return Err(crate::checkpoint::CodecError::BadValue {
                what: "tlb plru tree count",
                value: plru.len() as u64,
            });
        }
        tlb.entries = entries;
        tlb.plru = plru;
        tlb.hits = r.get_u64()?;
        tlb.misses = r.get_u64()?;
        tlb.invalidations = r.get_u64()?;
        Ok(tlb)
    }

    #[inline]
    fn set_index(&self, vpn: Vpn) -> usize {
        if self.set_mask != 0 {
            (vpn.0 as usize) & self.set_mask
        } else {
            (vpn.0 as usize) % self.n_sets
        }
    }

    #[inline]
    fn levels(&self) -> u32 {
        self.ways.trailing_zeros()
    }

    /// Looks up `vpn`. On a hit the entry becomes most-recently-used and the
    /// method returns `true`. On a miss it returns `false`; the caller is
    /// expected to walk the page table and then [`Tlb::insert`].
    #[inline]
    pub fn lookup(&mut self, vpn: Vpn) -> bool {
        let idx = self.set_index(vpn);
        let base = idx * self.ways;
        match self.policy {
            ReplacementPolicy::ExactLru => {
                let set = &mut self.entries[base..base + self.ways];
                for (i, &e) in set.iter().enumerate() {
                    if e == EMPTY {
                        break;
                    }
                    if e == vpn.0 {
                        // Move to front: front = most recently used.
                        set.copy_within(0..i, 1);
                        set[0] = vpn.0;
                        self.hits += 1;
                        return true;
                    }
                }
                self.misses += 1;
                false
            }
            ReplacementPolicy::TreeLru => {
                let levels = self.levels();
                let set = &self.entries[base..base + self.ways];
                for (w, &e) in set.iter().enumerate() {
                    if e == vpn.0 {
                        plru_touch(&mut self.plru[idx], levels, w);
                        self.hits += 1;
                        return true;
                    }
                }
                self.misses += 1;
                false
            }
        }
    }

    /// Records a hit on a VPN that is already most-recently-used, without
    /// re-scanning its set. Correct only when the caller's previous TLB
    /// operation was a `lookup(vpn)` hit or an `insert(vpn)` for the same
    /// VPN with nothing touched in between: a repeated `lookup` would find
    /// the entry at the MRU way and its move-to-front (exact LRU) or
    /// `plru_touch` (tree LRU) would be a no-op, so the only state change
    /// is the hit counter. The staged translate pass uses this for the
    /// second and later accesses of a same-page run.
    #[inline]
    pub fn repeat_hit(&mut self) {
        self.hits += 1;
    }

    /// Records `n` consecutive [`Tlb::repeat_hit`]s in one add. The
    /// sharded translate pass compresses a same-page run into a single
    /// logged operation, so it bills the run's continuation hits in bulk;
    /// the correctness condition is the same as for `repeat_hit`.
    #[inline]
    pub fn repeat_hits(&mut self, n: u64) {
        self.hits += n;
    }

    /// Inserts a translation, evicting the LRU entry of the set if full.
    #[inline]
    pub fn insert(&mut self, vpn: Vpn) {
        let idx = self.set_index(vpn);
        let base = idx * self.ways;
        match self.policy {
            ReplacementPolicy::ExactLru => {
                let set = &mut self.entries[base..base + self.ways];
                let mut len = set.len();
                for (i, &e) in set.iter().enumerate() {
                    if e == vpn.0 {
                        return;
                    }
                    if e == EMPTY {
                        len = i;
                        break;
                    }
                }
                // Full set: the LRU tail entry is simply shifted off the end.
                let shift_upto = if len == set.len() { len - 1 } else { len };
                set.copy_within(0..shift_upto, 1);
                set[0] = vpn.0;
            }
            ReplacementPolicy::TreeLru => {
                let levels = self.levels();
                let mut empty_way = None;
                {
                    let set = &self.entries[base..base + self.ways];
                    for (w, &e) in set.iter().enumerate() {
                        if e == vpn.0 {
                            return;
                        }
                        if e == EMPTY && empty_way.is_none() {
                            empty_way = Some(w);
                        }
                    }
                }
                let way = empty_way.unwrap_or_else(|| plru_victim(self.plru[idx], levels));
                self.entries[base + way] = vpn.0;
                plru_touch(&mut self.plru[idx], levels, way);
            }
        }
    }

    /// Invalidates the translation for `vpn`, if cached (a shootdown for one
    /// page). Returns `true` if an entry was removed.
    pub fn invalidate(&mut self, vpn: Vpn) -> bool {
        let base = self.set_index(vpn) * self.ways;
        let set = &mut self.entries[base..base + self.ways];
        for (i, &e) in set.iter().enumerate() {
            if e == EMPTY && self.policy == ReplacementPolicy::ExactLru {
                break;
            }
            if e == vpn.0 {
                match self.policy {
                    ReplacementPolicy::ExactLru => {
                        set.copy_within(i + 1.., i);
                        set[self.ways - 1] = EMPTY;
                    }
                    ReplacementPolicy::TreeLru => set[i] = EMPTY,
                }
                self.invalidations += 1;
                return true;
            }
        }
        false
    }

    /// Flushes the whole TLB (context switch / full shootdown).
    pub fn flush(&mut self) {
        self.invalidations += self.occupancy() as u64;
        self.entries.fill(EMPTY);
        self.plru.fill(0);
    }

    /// Number of lookup hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of lookup misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of entries invalidated so far.
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }

    /// Number of valid entries currently cached.
    pub fn occupancy(&self) -> usize {
        self.entries.iter().filter(|&&e| e != EMPTY).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut tlb = Tlb::new(TlbConfig::tiny());
        assert!(!tlb.lookup(Vpn(1)));
        tlb.insert(Vpn(1));
        assert!(tlb.lookup(Vpn(1)));
        assert_eq!(tlb.hits(), 1);
        assert_eq!(tlb.misses(), 1);
    }

    #[test]
    fn lru_eviction_within_set() {
        // tiny: 8 entries, 2 ways -> 4 sets. VPNs 0, 4, 8 all map to set 0.
        let mut tlb = Tlb::new(TlbConfig::tiny());
        tlb.insert(Vpn(0));
        tlb.insert(Vpn(4));
        assert!(tlb.lookup(Vpn(0))); // 0 becomes MRU; 4 is LRU
        tlb.insert(Vpn(8)); // evicts 4
        assert!(tlb.lookup(Vpn(0)));
        assert!(tlb.lookup(Vpn(8)));
        assert!(!tlb.lookup(Vpn(4)), "LRU way was evicted");
    }

    #[test]
    fn invalidate_and_flush() {
        let mut tlb = Tlb::new(TlbConfig::tiny());
        tlb.insert(Vpn(1));
        tlb.insert(Vpn(2));
        assert!(tlb.invalidate(Vpn(1)));
        assert!(!tlb.invalidate(Vpn(1)));
        assert!(!tlb.lookup(Vpn(1)));
        tlb.flush();
        assert_eq!(tlb.occupancy(), 0);
        assert!(!tlb.lookup(Vpn(2)));
        assert_eq!(tlb.invalidations(), 2);
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        let mut tlb = Tlb::new(TlbConfig::tiny());
        tlb.insert(Vpn(3));
        tlb.insert(Vpn(3));
        assert_eq!(tlb.occupancy(), 1);
    }

    #[test]
    fn invalidate_middle_entry_keeps_order() {
        // Set 0 holds {8 (MRU), 4, 0 (LRU)} in a 4-way set... tiny is
        // 2-way, so use {4 (MRU), 0 (LRU)}, drop the MRU, insert two more
        // and check the survivor ages out correctly.
        let mut tlb = Tlb::new(TlbConfig::tiny());
        tlb.insert(Vpn(0));
        tlb.insert(Vpn(4));
        assert!(tlb.invalidate(Vpn(4)));
        tlb.insert(Vpn(8)); // set now {8 (MRU), 0}
        tlb.insert(Vpn(12)); // evicts 0 (LRU)
        assert!(!tlb.lookup(Vpn(0)));
        assert!(tlb.lookup(Vpn(8)));
        assert!(tlb.lookup(Vpn(12)));
    }

    #[test]
    fn tree_plru_policy_hits_and_evicts() {
        let mut tlb = Tlb::with_policy(TlbConfig::tiny(), ReplacementPolicy::TreeLru);
        assert_eq!(tlb.policy(), ReplacementPolicy::TreeLru);
        tlb.insert(Vpn(0));
        tlb.insert(Vpn(4));
        assert!(tlb.lookup(Vpn(0))); // 4 becomes the pLRU victim
        tlb.insert(Vpn(8)); // evicts 4
        assert!(tlb.lookup(Vpn(0)));
        assert!(tlb.lookup(Vpn(8)));
        assert!(!tlb.lookup(Vpn(4)));
        assert!(tlb.invalidate(Vpn(8)));
        assert_eq!(tlb.occupancy(), 1);
        tlb.flush();
        assert_eq!(tlb.occupancy(), 0);
    }

    #[test]
    #[should_panic(expected = "multiple of ways")]
    fn bad_geometry_panics() {
        let _ = Tlb::new(TlbConfig {
            entries: 7,
            ways: 2,
        });
    }
}
