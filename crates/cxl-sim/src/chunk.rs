//! SoA access chunks: the batch currency of the chunked run pipeline.
//!
//! An [`AccessChunk`] stores a short burst of accesses as packed `u64`
//! words — 48 bits of virtual address plus write/op-end flag bits — in one
//! contiguous buffer. Workloads fill chunks (see
//! [`AccessStream::fill_chunk`](crate::system::AccessStream::fill_chunk)),
//! the [`System`](crate::system::System) consumes them in a tight batch
//! loop ([`System::access_batch`](crate::system::System::access_batch)),
//! and drivers can double-buffer them so generation of chunk N+1 overlaps
//! simulation of chunk N.
//!
//! The word layout matches the recorded-trace format in `m5-workloads`
//! (flags in the top bits, address in the low 48), so a replayed trace
//! fills a chunk with a single rebase-and-copy pass instead of a decode/
//! re-encode per access.

use crate::addr::VirtAddr;
use crate::system::Access;

/// Bit 63 of a packed access word: the access is a store.
pub const CHUNK_WRITE_BIT: u64 = 1 << 63;
/// Bit 62 of a packed access word: the access completes a client-visible
/// operation (per-op latency percentiles).
pub const CHUNK_OP_END_BIT: u64 = 1 << 62;
/// Low 48 bits of a packed access word: the virtual byte address.
pub const CHUNK_ADDR_MASK: u64 = (1 << 48) - 1;

/// The virtual address packed in `word`.
#[inline]
pub fn word_vaddr(word: u64) -> VirtAddr {
    VirtAddr(word & CHUNK_ADDR_MASK)
}

/// Whether `word` encodes a store.
#[inline]
pub fn word_is_write(word: u64) -> bool {
    word & CHUNK_WRITE_BIT != 0
}

/// Whether `word` completes a client-visible operation.
#[inline]
pub fn word_is_op_end(word: u64) -> bool {
    word & CHUNK_OP_END_BIT != 0
}

/// A fixed-capacity batch of packed accesses.
///
/// Besides its allocation capacity, a chunk carries a *soft limit*
/// (`limit() <= capacity()`): filling stops at the limit, which lets
/// callers cap a fill at an access budget or a co-run quantum boundary
/// without reallocating. [`AccessChunk::clear`] resets the limit to the
/// full capacity.
#[derive(Clone, Debug)]
pub struct AccessChunk {
    words: Vec<u64>,
    cap: usize,
    limit: usize,
}

impl AccessChunk {
    /// An empty chunk holding at most `cap` accesses.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn with_capacity(cap: usize) -> AccessChunk {
        assert!(cap > 0, "chunk capacity must be positive");
        AccessChunk {
            words: Vec::with_capacity(cap),
            cap,
            limit: cap,
        }
    }

    /// Empties the chunk and restores the fill limit to the capacity.
    #[inline]
    pub fn clear(&mut self) {
        self.words.clear();
        self.limit = self.cap;
    }

    /// Allocation capacity in accesses.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Accesses currently stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the chunk holds no accesses.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The current soft fill limit.
    #[inline]
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Caps filling at `limit` accesses total (clamped to the capacity,
    /// never below the current length).
    #[inline]
    pub fn set_limit(&mut self, limit: usize) {
        self.limit = limit.clamp(self.words.len(), self.cap);
    }

    /// How many more accesses fit before the limit.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.limit - self.words.len()
    }

    /// Whether the fill limit has been reached.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.words.len() >= self.limit
    }

    /// Appends one access.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the chunk is full or the address does not
    /// fit in 48 bits.
    #[inline]
    pub fn push(&mut self, a: Access) {
        debug_assert!(!self.is_full(), "chunk overfilled");
        debug_assert!(a.vaddr.0 <= CHUNK_ADDR_MASK, "vaddr overflows 48 bits");
        let mut w = a.vaddr.0;
        if a.is_write {
            w |= CHUNK_WRITE_BIT;
        }
        if a.op_end {
            w |= CHUNK_OP_END_BIT;
        }
        self.words.push(w);
    }

    /// The packed words stored so far.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Decodes the access at index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> Access {
        decode(self.words[i])
    }

    /// Iterates over the stored accesses in order.
    pub fn iter(&self) -> impl Iterator<Item = Access> + '_ {
        self.words.iter().map(|&w| decode(w))
    }

    /// Appends up to [`AccessChunk::remaining`] packed accesses from
    /// `packed` — *region-relative* words in the same bit layout — rebasing
    /// each address onto `base`. Returns how many were appended.
    ///
    /// This is the SoA fast path for recorded traces: one mask-free
    /// add per access (the flags live above bit 48, so adding a 48-bit
    /// base cannot carry into them), no per-access decode/encode.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if a rebased address overflows 48 bits.
    pub fn extend_rebased(&mut self, packed: &[u64], base: VirtAddr) -> usize {
        let n = packed.len().min(self.remaining());
        let b = base.0;
        debug_assert!(b <= CHUNK_ADDR_MASK, "region base overflows 48 bits");
        self.words.extend(packed[..n].iter().map(|&w| {
            debug_assert!(
                (w & CHUNK_ADDR_MASK) + b <= CHUNK_ADDR_MASK,
                "rebased address overflows 48 bits"
            );
            w + b
        }));
        n
    }
}

/// Decodes one packed access word.
#[inline]
pub fn decode(w: u64) -> Access {
    Access {
        vaddr: VirtAddr(w & CHUNK_ADDR_MASK),
        is_write: w & CHUNK_WRITE_BIT != 0,
        op_end: w & CHUNK_OP_END_BIT != 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::AccessStream;

    #[test]
    fn push_get_roundtrip_preserves_flags() {
        let mut c = AccessChunk::with_capacity(4);
        c.push(Access::read(VirtAddr(0x1000)));
        c.push(Access::write(VirtAddr(0x2040)));
        c.push(Access::read(VirtAddr(0x3080)).end_op());
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(0), Access::read(VirtAddr(0x1000)));
        assert_eq!(c.get(1), Access::write(VirtAddr(0x2040)));
        assert_eq!(c.get(2), Access::read(VirtAddr(0x3080)).end_op());
        let all: Vec<Access> = c.iter().collect();
        assert_eq!(all.len(), 3);
        assert_eq!(all[1], c.get(1));
    }

    #[test]
    fn limit_caps_fill_and_clear_restores() {
        let mut c = AccessChunk::with_capacity(8);
        c.set_limit(2);
        assert_eq!(c.remaining(), 2);
        c.push(Access::read(VirtAddr(0)));
        c.push(Access::read(VirtAddr(64)));
        assert!(c.is_full());
        assert_eq!(c.capacity(), 8);
        c.clear();
        assert_eq!(c.limit(), 8);
        assert!(c.is_empty());
        // The limit never drops below the current length.
        c.push(Access::read(VirtAddr(0)));
        c.push(Access::read(VirtAddr(64)));
        c.set_limit(1);
        assert_eq!(c.limit(), 2);
    }

    #[test]
    fn extend_rebased_applies_base_and_keeps_flags() {
        let packed = [
            64u64,
            4096 | CHUNK_WRITE_BIT,
            8192 | CHUNK_OP_END_BIT | CHUNK_WRITE_BIT,
        ];
        let mut c = AccessChunk::with_capacity(2);
        let n = c.extend_rebased(&packed, VirtAddr(1 << 20));
        assert_eq!(n, 2, "fill stops at the limit");
        assert_eq!(c.get(0), Access::read(VirtAddr((1 << 20) + 64)));
        assert_eq!(c.get(1), Access::write(VirtAddr((1 << 20) + 4096)));
    }

    #[test]
    fn default_fill_chunk_matches_next_access() {
        struct Counting(u64);
        impl AccessStream for Counting {
            fn next_access(&mut self) -> Option<Access> {
                if self.0 == 0 {
                    return None;
                }
                self.0 -= 1;
                Some(Access::read(VirtAddr(self.0 * 64)))
            }
        }
        let mut s = Counting(10);
        let mut c = AccessChunk::with_capacity(4);
        assert_eq!(s.fill_chunk(&mut c), 4);
        assert_eq!(c.get(0), Access::read(VirtAddr(9 * 64)));
        c.clear();
        assert_eq!(s.fill_chunk(&mut c), 4);
        c.clear();
        assert_eq!(s.fill_chunk(&mut c), 2, "stream drains to its end");
        c.clear();
        assert_eq!(s.fill_chunk(&mut c), 0);
    }
}
