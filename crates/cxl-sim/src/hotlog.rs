//! The §4.1 hot-page list.
//!
//! Step S1 of the paper's evaluation protocol modifies each page-migration
//! solution to *record* the PFNs of identified hot pages instead of (or in
//! addition to) migrating them; the harness later looks those PFNs up in
//! PAC's access-count table to compute the average access-count ratio.
//! Every solution in this workspace (ANB, DAMON, and the M5-manager) feeds
//! one of these logs.

use crate::addr::{Pfn, Vpn};
use std::collections::HashSet;

/// A capped, deduplicated list of identified hot pages, recorded as
/// `(vpn, pfn-at-identification-time)`.
#[derive(Clone, Debug)]
pub struct HotPageLog {
    entries: Vec<(Vpn, Pfn)>,
    seen: HashSet<Vpn>,
    cap: usize,
}

impl HotPageLog {
    /// A log holding at most `cap` distinct pages (the paper collects up to
    /// 128K).
    pub fn new(cap: usize) -> HotPageLog {
        HotPageLog {
            entries: Vec::new(),
            seen: HashSet::new(),
            cap,
        }
    }

    /// Records an identified hot page. Returns `true` if it was new and
    /// there was room.
    pub fn record(&mut self, vpn: Vpn, pfn: Pfn) -> bool {
        if self.entries.len() >= self.cap || !self.seen.insert(vpn) {
            return false;
        }
        self.entries.push((vpn, pfn));
        true
    }

    /// The recorded `(vpn, pfn)` pairs in identification order.
    pub fn entries(&self) -> &[(Vpn, Pfn)] {
        &self.entries
    }

    /// The recorded PFNs (for PAC lookups, step S4).
    pub fn pfns(&self) -> impl Iterator<Item = Pfn> + '_ {
        self.entries.iter().map(|&(_, p)| p)
    }

    /// Number of distinct pages recorded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The capacity `K`.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Serializes the log (identification order preserved) for a
    /// checkpoint. The dedup set is derived state, rebuilt on restore.
    pub fn save(&self, w: &mut crate::checkpoint::StateWriter) {
        w.put_u64(self.cap as u64);
        w.put_u64(self.entries.len() as u64);
        for &(vpn, pfn) in &self.entries {
            w.put_u64(vpn.0);
            w.put_u64(pfn.0);
        }
    }

    /// Rebuilds a log from a checkpoint section.
    ///
    /// # Errors
    ///
    /// Propagates codec errors from a truncated or corrupt payload.
    pub fn restore(
        r: &mut crate::checkpoint::StateReader<'_>,
    ) -> Result<HotPageLog, crate::checkpoint::CodecError> {
        let cap = r.get_u64()? as usize;
        let n = r.get_u64()? as usize;
        let mut log = HotPageLog::new(cap);
        for _ in 0..n {
            let vpn = Vpn(r.get_u64()?);
            let pfn = Pfn(r.get_u64()?);
            log.seen.insert(vpn);
            log.entries.push((vpn, pfn));
        }
        Ok(log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_dedups_and_caps() {
        let mut log = HotPageLog::new(2);
        assert!(log.record(Vpn(1), Pfn(10)));
        assert!(!log.record(Vpn(1), Pfn(10)), "duplicate ignored");
        assert!(log.record(Vpn(2), Pfn(20)));
        assert!(!log.record(Vpn(3), Pfn(30)), "cap reached");
        assert_eq!(log.len(), 2);
        assert_eq!(log.pfns().collect::<Vec<_>>(), vec![Pfn(10), Pfn(20)]);
        assert_eq!(log.capacity(), 2);
        assert!(!log.is_empty());
    }
}
