//! Physical memory: the two NUMA nodes (DDR and CXL DRAM) and their frame
//! allocators.
//!
//! DDR frames live at the bottom of the 48-bit physical address space and
//! CXL frames start at [`CXL_BASE_PFN`], so a [`Pfn`] alone identifies its
//! node — mirroring a real system where the CXL memory window is a distinct
//! physical range exposed as a remote NUMA node.

use crate::addr::Pfn;
use crate::time::Nanos;
use serde::{Deserialize, Serialize};
use std::fmt;

/// First PFN of the CXL DRAM node (PA `1 << 46`, inside the 48-bit space).
pub const CXL_BASE_PFN: u64 = 1 << 34;

/// Identifier of a memory node in the tiered system.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum NodeId {
    /// The fast tier: locally attached DDR DRAM.
    Ddr,
    /// The slow tier: CXL-attached DRAM (~170 ns extra load latency).
    Cxl,
}

impl NodeId {
    /// Alias for [`NodeId::Ddr`], matching the paper's `bw(DDR)` notation.
    pub const DDR: NodeId = NodeId::Ddr;
    /// Alias for [`NodeId::Cxl`], matching the paper's `bw(CXL)` notation.
    pub const CXL: NodeId = NodeId::Cxl;

    /// Both nodes, fast tier first.
    pub const ALL: [NodeId; 2] = [NodeId::Ddr, NodeId::Cxl];

    /// The node's stable lowercase name (also used as a telemetry label).
    pub const fn label(self) -> &'static str {
        match self {
            NodeId::Ddr => "ddr",
            NodeId::Cxl => "cxl",
        }
    }

    /// The other node of the pair.
    pub fn other(self) -> NodeId {
        match self {
            NodeId::Ddr => NodeId::Cxl,
            NodeId::Cxl => NodeId::Ddr,
        }
    }

    /// The node that owns `pfn`, based on the physical layout.
    pub fn of_pfn(pfn: Pfn) -> NodeId {
        if pfn.0 >= CXL_BASE_PFN {
            NodeId::Cxl
        } else {
            NodeId::Ddr
        }
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeId::Ddr => f.write_str("DDR"),
            NodeId::Cxl => f.write_str("CXL"),
        }
    }
}

/// Static properties of one memory node.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NodeConfig {
    /// Capacity in 4 KiB frames.
    pub capacity_frames: u64,
    /// Loaded read latency of one 64 B access from this node.
    pub access_latency: Nanos,
}

/// Error returned when a node has no free frames left.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutOfFrames {
    /// The node that was full.
    pub node: NodeId,
}

impl fmt::Display for OutOfFrames {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "memory node {} has no free frames", self.node)
    }
}

impl std::error::Error for OutOfFrames {}

/// One memory node: a frame allocator plus its latency parameters.
#[derive(Clone, Debug)]
pub struct MemoryNode {
    id: NodeId,
    base_pfn: u64,
    config: NodeConfig,
    /// Stack of free frame indices (relative to `base_pfn`).
    free: Vec<u64>,
    /// Frame indices pulled out of circulation after a fault mid-copy;
    /// they return to `free` only via [`MemoryNode::scrub`].
    quarantined: Vec<u64>,
    /// Frame indices the RAS layer retired permanently (correctable-error
    /// trending crossed the offline threshold). Unlike quarantine, there is
    /// no way back: scrubbing never touches this set.
    offlined: Vec<u64>,
    allocated: u64,
}

impl MemoryNode {
    /// Creates a node with all frames free.
    pub fn new(id: NodeId, config: NodeConfig) -> MemoryNode {
        let base_pfn = match id {
            NodeId::Ddr => 0,
            NodeId::Cxl => CXL_BASE_PFN,
        };
        // Pop order: lowest frame index first.
        let free = (0..config.capacity_frames).rev().collect();
        MemoryNode {
            id,
            base_pfn,
            config,
            free,
            quarantined: Vec::new(),
            offlined: Vec::new(),
            allocated: 0,
        }
    }

    /// This node's identifier.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Loaded read latency of one 64 B access.
    pub fn access_latency(&self) -> Nanos {
        self.config.access_latency
    }

    /// Capacity in frames.
    pub fn capacity_frames(&self) -> u64 {
        self.config.capacity_frames
    }

    /// Number of frames currently allocated.
    pub fn allocated_frames(&self) -> u64 {
        self.allocated
    }

    /// Number of frames currently free (quarantined and offlined frames are
    /// *not* free: capacity = free + allocated + quarantined + offlined).
    pub fn free_frames(&self) -> u64 {
        self.config.capacity_frames
            - self.allocated
            - self.quarantined.len() as u64
            - self.offlined.len() as u64
    }

    /// Number of frames currently quarantined.
    pub fn quarantined_frames(&self) -> u64 {
        self.quarantined.len() as u64
    }

    /// Number of frames permanently retired by the RAS layer.
    pub fn offlined_frames(&self) -> u64 {
        self.offlined.len() as u64
    }

    /// The free frames, as absolute PFNs (invariant-checker support).
    pub fn free_pfns(&self) -> impl Iterator<Item = Pfn> + '_ {
        self.free.iter().map(move |&idx| Pfn(self.base_pfn + idx))
    }

    /// The quarantined frames, as absolute PFNs.
    pub fn quarantined_pfns(&self) -> impl Iterator<Item = Pfn> + '_ {
        self.quarantined
            .iter()
            .map(move |&idx| Pfn(self.base_pfn + idx))
    }

    /// The permanently offlined frames, as absolute PFNs.
    pub fn offlined_pfns(&self) -> impl Iterator<Item = Pfn> + '_ {
        self.offlined
            .iter()
            .map(move |&idx| Pfn(self.base_pfn + idx))
    }

    /// Allocates one frame.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfFrames`] if the node is full.
    pub fn alloc(&mut self) -> Result<Pfn, OutOfFrames> {
        match self.free.pop() {
            Some(idx) => {
                self.allocated += 1;
                Ok(Pfn(self.base_pfn + idx))
            }
            None => Err(OutOfFrames { node: self.id }),
        }
    }

    /// Frees a previously allocated frame.
    ///
    /// Freeing a frame that does not belong to this node is a simulator
    /// bug, not a recoverable runtime condition: it trips a `debug_assert!`
    /// in debug/test builds. Release builds drop the bogus free instead of
    /// corrupting the free stack (pushing an out-of-range index would later
    /// hand out frames that do not exist).
    pub fn free(&mut self, pfn: Pfn) {
        debug_assert_eq!(
            NodeId::of_pfn(pfn),
            self.id,
            "freeing {pfn:?} on wrong node"
        );
        let idx = pfn.0.wrapping_sub(self.base_pfn);
        debug_assert!(idx < self.config.capacity_frames, "{pfn:?} out of range");
        if NodeId::of_pfn(pfn) != self.id || idx >= self.config.capacity_frames {
            return;
        }
        // A frame in quarantine (or retired by RAS) is not allocated: a
        // stale free of it must not push a second copy of the index onto
        // the free stack — that would double-hand-out the frame and corrupt
        // the allocated count.
        debug_assert!(
            !self.quarantined.contains(&idx),
            "freeing quarantined {pfn:?}"
        );
        debug_assert!(!self.offlined.contains(&idx), "freeing offlined {pfn:?}");
        if self.quarantined.contains(&idx) || self.offlined.contains(&idx) {
            return;
        }
        self.allocated -= 1;
        self.free.push(idx);
    }

    /// Moves an *allocated* frame into quarantine instead of freeing it:
    /// the copy engine faulted on it and its contents are suspect, so it
    /// must not be handed out again until a scrub pass clears it.
    ///
    /// Same bogus-input policy as [`MemoryNode::free`]: wrong-node or
    /// out-of-range frames trip a `debug_assert!` and are dropped in
    /// release builds.
    pub fn quarantine(&mut self, pfn: Pfn) {
        debug_assert_eq!(
            NodeId::of_pfn(pfn),
            self.id,
            "quarantining {pfn:?} on wrong node"
        );
        let idx = pfn.0.wrapping_sub(self.base_pfn);
        debug_assert!(idx < self.config.capacity_frames, "{pfn:?} out of range");
        if NodeId::of_pfn(pfn) != self.id || idx >= self.config.capacity_frames {
            return;
        }
        // Same double-accounting hazard as `free`: a frame already in
        // quarantine or retired is not allocated, so re-quarantining it
        // would corrupt the allocated count and duplicate the index.
        debug_assert!(!self.quarantined.contains(&idx), "re-quarantining {pfn:?}");
        debug_assert!(
            !self.offlined.contains(&idx),
            "quarantining offlined {pfn:?}"
        );
        if self.quarantined.contains(&idx) || self.offlined.contains(&idx) {
            return;
        }
        self.allocated -= 1;
        self.quarantined.push(idx);
    }

    /// Scrubs up to `max` quarantined frames, returning them to the free
    /// list. Returns how many frames were scrubbed. Oldest quarantined
    /// frames are scrubbed first. Frames the RAS layer offlined are a
    /// disjoint set and are never resurrected by scrubbing.
    pub fn scrub(&mut self, max: u64) -> u64 {
        let n = (max as usize).min(self.quarantined.len());
        for idx in self.quarantined.drain(..n) {
            self.free.push(idx);
        }
        n as u64
    }

    /// Serializes the allocator state (free stack, quarantine FIFO,
    /// offlined set, allocated count) for a checkpoint. Stack/queue order
    /// is preserved exactly — frame hand-out order is behavior-bearing.
    pub fn save(&self, w: &mut crate::checkpoint::StateWriter) {
        w.put_u64_slice(&self.free);
        w.put_u64_slice(&self.quarantined);
        w.put_u64_slice(&self.offlined);
        w.put_u64(self.allocated);
    }

    /// Rebuilds a node from a checkpoint section, given its static identity
    /// and configuration (which are not serialized — the restoring process
    /// supplies the same `SystemConfig`).
    ///
    /// # Errors
    ///
    /// Propagates codec errors from a truncated or corrupt payload.
    pub fn restore(
        id: NodeId,
        config: NodeConfig,
        r: &mut crate::checkpoint::StateReader<'_>,
    ) -> Result<MemoryNode, crate::checkpoint::CodecError> {
        let base_pfn = match id {
            NodeId::Ddr => 0,
            NodeId::Cxl => CXL_BASE_PFN,
        };
        Ok(MemoryNode {
            id,
            base_pfn,
            config,
            free: r.get_u64_vec()?,
            quarantined: r.get_u64_vec()?,
            offlined: r.get_u64_vec()?,
            allocated: r.get_u64()?,
        })
    }

    /// Permanently retires a frame that is currently *free* or
    /// *quarantined*: it leaves circulation for good (no scrub brings it
    /// back). Returns `false` — and does nothing — if the frame is
    /// allocated or in flight; the caller must migrate its page off first
    /// and retry once the frame has been freed.
    pub fn offline_frame(&mut self, pfn: Pfn) -> bool {
        debug_assert_eq!(
            NodeId::of_pfn(pfn),
            self.id,
            "offlining {pfn:?} on wrong node"
        );
        let idx = pfn.0.wrapping_sub(self.base_pfn);
        debug_assert!(idx < self.config.capacity_frames, "{pfn:?} out of range");
        if NodeId::of_pfn(pfn) != self.id || idx >= self.config.capacity_frames {
            return false;
        }
        if self.offlined.contains(&idx) {
            return true;
        }
        if let Some(pos) = self.free.iter().position(|&i| i == idx) {
            self.free.swap_remove(pos);
            self.offlined.push(idx);
            return true;
        }
        if let Some(pos) = self.quarantined.iter().position(|&i| i == idx) {
            self.quarantined.swap_remove(pos);
            self.offlined.push(idx);
            return true;
        }
        false
    }
}

/// The two-tier physical memory.
#[derive(Clone, Debug)]
pub struct TieredMemory {
    ddr: MemoryNode,
    cxl: MemoryNode,
}

impl TieredMemory {
    /// Builds the tiered memory from per-node configurations.
    pub fn new(ddr: NodeConfig, cxl: NodeConfig) -> TieredMemory {
        TieredMemory {
            ddr: MemoryNode::new(NodeId::Ddr, ddr),
            cxl: MemoryNode::new(NodeId::Cxl, cxl),
        }
    }

    /// Borrows a node.
    pub fn node(&self, id: NodeId) -> &MemoryNode {
        match id {
            NodeId::Ddr => &self.ddr,
            NodeId::Cxl => &self.cxl,
        }
    }

    /// Mutably borrows a node.
    pub fn node_mut(&mut self, id: NodeId) -> &mut MemoryNode {
        match id {
            NodeId::Ddr => &mut self.ddr,
            NodeId::Cxl => &mut self.cxl,
        }
    }

    /// Allocates a frame on `node`.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfFrames`] if that node is full.
    pub fn alloc_on(&mut self, node: NodeId) -> Result<Pfn, OutOfFrames> {
        self.node_mut(node).alloc()
    }

    /// Frees `pfn` on whichever node owns it.
    pub fn free(&mut self, pfn: Pfn) {
        self.node_mut(NodeId::of_pfn(pfn)).free(pfn);
    }

    /// Quarantines `pfn` on whichever node owns it.
    pub fn quarantine(&mut self, pfn: Pfn) {
        self.node_mut(NodeId::of_pfn(pfn)).quarantine(pfn);
    }

    /// Read latency of an access to `pfn`'s node.
    pub fn latency_of(&self, pfn: Pfn) -> Nanos {
        self.node(NodeId::of_pfn(pfn)).access_latency()
    }

    /// Serializes both nodes for a checkpoint.
    pub fn save(&self, w: &mut crate::checkpoint::StateWriter) {
        self.ddr.save(w);
        self.cxl.save(w);
    }

    /// Rebuilds the tiered memory from a checkpoint section.
    ///
    /// # Errors
    ///
    /// Propagates codec errors from a truncated or corrupt payload.
    pub fn restore(
        ddr: NodeConfig,
        cxl: NodeConfig,
        r: &mut crate::checkpoint::StateReader<'_>,
    ) -> Result<TieredMemory, crate::checkpoint::CodecError> {
        Ok(TieredMemory {
            ddr: MemoryNode::restore(NodeId::Ddr, ddr, r)?,
            cxl: MemoryNode::restore(NodeId::Cxl, cxl, r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(frames: u64, lat: u64) -> NodeConfig {
        NodeConfig {
            capacity_frames: frames,
            access_latency: Nanos(lat),
        }
    }

    #[test]
    fn pfn_node_partition() {
        assert_eq!(NodeId::of_pfn(Pfn(0)), NodeId::Ddr);
        assert_eq!(NodeId::of_pfn(Pfn(CXL_BASE_PFN - 1)), NodeId::Ddr);
        assert_eq!(NodeId::of_pfn(Pfn(CXL_BASE_PFN)), NodeId::Cxl);
        assert_eq!(NodeId::Ddr.other(), NodeId::Cxl);
        assert_eq!(NodeId::Cxl.other(), NodeId::Ddr);
    }

    #[test]
    fn alloc_free_roundtrip() {
        let mut node = MemoryNode::new(NodeId::Cxl, cfg(2, 270));
        let a = node.alloc().unwrap();
        let b = node.alloc().unwrap();
        assert_ne!(a, b);
        assert_eq!(NodeId::of_pfn(a), NodeId::Cxl);
        assert!(node.alloc().is_err());
        node.free(a);
        assert_eq!(node.free_frames(), 1);
        let c = node.alloc().unwrap();
        assert_eq!(c, a, "freed frame is reused");
    }

    #[test]
    fn out_of_frames_error_is_reportable() {
        let mut node = MemoryNode::new(NodeId::Ddr, cfg(0, 100));
        let err = node.alloc().unwrap_err();
        assert_eq!(err.node, NodeId::Ddr);
        assert!(err.to_string().contains("DDR"));
    }

    #[test]
    #[should_panic(expected = "wrong node")]
    fn freeing_on_wrong_node_panics() {
        let mut node = MemoryNode::new(NodeId::Ddr, cfg(4, 100));
        node.free(Pfn(CXL_BASE_PFN));
    }

    #[test]
    fn tiered_latency_depends_on_node() {
        let mut mem = TieredMemory::new(cfg(4, 100), cfg(4, 270));
        let d = mem.alloc_on(NodeId::Ddr).unwrap();
        let c = mem.alloc_on(NodeId::Cxl).unwrap();
        assert_eq!(mem.latency_of(d), Nanos(100));
        assert_eq!(mem.latency_of(c), Nanos(270));
        mem.free(d);
        mem.free(c);
        assert_eq!(mem.node(NodeId::Ddr).allocated_frames(), 0);
        assert_eq!(mem.node(NodeId::Cxl).allocated_frames(), 0);
    }

    #[test]
    fn quarantined_frames_leave_circulation_until_scrubbed() {
        let mut node = MemoryNode::new(NodeId::Cxl, cfg(2, 270));
        let a = node.alloc().unwrap();
        let _b = node.alloc().unwrap();
        node.quarantine(a);
        assert_eq!(node.quarantined_frames(), 1);
        assert_eq!(node.allocated_frames(), 1);
        assert_eq!(node.free_frames(), 0);
        assert!(
            node.alloc().is_err(),
            "quarantined frame must not be handed out"
        );
        assert_eq!(node.quarantined_pfns().collect::<Vec<_>>(), vec![a]);
        assert_eq!(node.scrub(8), 1);
        assert_eq!(node.quarantined_frames(), 0);
        assert_eq!(node.free_frames(), 1);
        assert_eq!(node.alloc().unwrap(), a, "scrubbed frame is reusable");
    }

    #[test]
    fn scrub_is_bounded_and_oldest_first() {
        let mut node = MemoryNode::new(NodeId::Ddr, cfg(4, 100));
        let a = node.alloc().unwrap();
        let b = node.alloc().unwrap();
        let c = node.alloc().unwrap();
        node.quarantine(a);
        node.quarantine(b);
        node.quarantine(c);
        assert_eq!(node.scrub(2), 2);
        assert_eq!(node.quarantined_pfns().collect::<Vec<_>>(), vec![c]);
        assert_eq!(node.scrub(2), 1);
        assert_eq!(node.scrub(2), 0);
    }

    #[test]
    #[should_panic(expected = "wrong node")]
    fn quarantining_on_wrong_node_panics() {
        let mut node = MemoryNode::new(NodeId::Ddr, cfg(4, 100));
        node.quarantine(Pfn(CXL_BASE_PFN));
    }

    #[test]
    fn allocation_order_is_dense_from_zero() {
        let mut node = MemoryNode::new(NodeId::Ddr, cfg(3, 100));
        assert_eq!(node.alloc().unwrap(), Pfn(0));
        assert_eq!(node.alloc().unwrap(), Pfn(1));
        assert_eq!(node.alloc().unwrap(), Pfn(2));
    }

    #[test]
    #[should_panic(expected = "freeing quarantined")]
    fn freeing_a_quarantined_frame_is_rejected() {
        // Regression: a stale free of a quarantined frame used to push the
        // index straight back onto the free stack, handing the suspect
        // frame out again and corrupting the allocated count.
        let mut node = MemoryNode::new(NodeId::Ddr, cfg(4, 100));
        let a = node.alloc().unwrap();
        node.quarantine(a);
        node.free(a);
    }

    #[test]
    #[should_panic(expected = "re-quarantining")]
    fn double_quarantine_is_rejected() {
        let mut node = MemoryNode::new(NodeId::Ddr, cfg(4, 100));
        let a = node.alloc().unwrap();
        node.quarantine(a);
        node.quarantine(a);
    }

    #[test]
    fn offlined_frames_leave_circulation_permanently() {
        let mut node = MemoryNode::new(NodeId::Cxl, cfg(2, 270));
        let a = node.alloc().unwrap();
        node.free(a);
        assert!(node.offline_frame(a), "free frame can be retired");
        assert_eq!(node.offlined_frames(), 1);
        assert_eq!(node.free_frames(), 1);
        // Regression: scrubbing must never resurrect a RAS-offlined frame.
        assert_eq!(node.scrub(u64::MAX), 0);
        assert_eq!(node.offlined_frames(), 1);
        let b = node.alloc().unwrap();
        assert_ne!(b, a, "offlined frame is never handed out again");
        assert!(node.alloc().is_err(), "only the surviving frame remains");
        assert_eq!(node.offlined_pfns().collect::<Vec<_>>(), vec![a]);
    }

    #[test]
    fn offlining_a_quarantined_frame_skips_scrub_forever() {
        let mut node = MemoryNode::new(NodeId::Cxl, cfg(2, 270));
        let a = node.alloc().unwrap();
        node.quarantine(a);
        assert!(node.offline_frame(a), "quarantined frame can be retired");
        assert_eq!(node.quarantined_frames(), 0);
        assert_eq!(node.scrub(u64::MAX), 0, "nothing left to scrub");
        assert_eq!(node.offlined_frames(), 1);
    }

    #[test]
    fn offlining_an_allocated_frame_is_refused() {
        let mut node = MemoryNode::new(NodeId::Cxl, cfg(2, 270));
        let a = node.alloc().unwrap();
        assert!(
            !node.offline_frame(a),
            "in-use frame must be migrated off first"
        );
        assert_eq!(node.offlined_frames(), 0);
        node.free(a);
        assert!(node.offline_frame(a));
        assert!(node.offline_frame(a), "idempotent once retired");
        assert_eq!(node.offlined_frames(), 1);
    }
}
