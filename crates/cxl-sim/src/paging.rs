//! Page tables: virtual-to-physical mappings with x86-style PTE flags.
//!
//! The flag semantics matter for fidelity:
//!
//! * **present** — cleared by ANB's hinting-fault sampling; an access to a
//!   non-present page takes a soft page fault.
//! * **accessed** — set by the hardware page walker *only on a TLB miss*;
//!   DAMON samples and clears it. This is why PTE scanning undercounts hot
//!   pages whose translations stay TLB-resident (§2.1, Solution 2).
//! * **dirty** — set on write; a dirty page costs a writeback when migrated.
//! * **pinned** — pages pinned for DMA etc.; the Promoter must refuse to
//!   migrate them (§5.2).
//! * **cxl-bound** — the user explicitly requested CXL placement; the
//!   Promoter must refuse promotion (§5.2).

use crate::addr::{Pfn, Vpn};
use crate::memory::{NodeId, CXL_BASE_PFN};
use std::fmt;

/// PTE flag bits.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct PteFlags(u8);

impl PteFlags {
    const PRESENT: u8 = 1 << 0;
    const ACCESSED: u8 = 1 << 1;
    const DIRTY: u8 = 1 << 2;
    const PINNED: u8 = 1 << 3;
    const CXL_BOUND: u8 = 1 << 4;

    /// A freshly mapped page: present, not accessed, clean.
    pub fn new_mapped() -> PteFlags {
        PteFlags(Self::PRESENT)
    }

    /// Whether the present bit is set.
    pub fn present(self) -> bool {
        self.0 & Self::PRESENT != 0
    }
    /// Whether the accessed bit is set.
    pub fn accessed(self) -> bool {
        self.0 & Self::ACCESSED != 0
    }
    /// Whether the dirty bit is set.
    pub fn dirty(self) -> bool {
        self.0 & Self::DIRTY != 0
    }
    /// Whether the page is pinned (not migratable).
    pub fn pinned(self) -> bool {
        self.0 & Self::PINNED != 0
    }
    /// Whether the user bound this page to the CXL node.
    pub fn cxl_bound(self) -> bool {
        self.0 & Self::CXL_BOUND != 0
    }

    /// A copy with the present bit set.
    pub fn with_present(self) -> PteFlags {
        PteFlags(self.0 | Self::PRESENT)
    }
    /// A copy with the accessed bit set.
    pub fn with_accessed(self) -> PteFlags {
        PteFlags(self.0 | Self::ACCESSED)
    }
    /// A copy with the dirty bit set.
    pub fn with_dirty(self) -> PteFlags {
        PteFlags(self.0 | Self::DIRTY)
    }

    /// The raw flag byte, for checkpoint serialization.
    pub fn bits(self) -> u8 {
        self.0
    }

    /// Rebuilds flags from a checkpointed byte.
    pub fn from_bits(bits: u8) -> PteFlags {
        PteFlags(bits)
    }

    fn set(&mut self, bit: u8, v: bool) {
        if v {
            self.0 |= bit;
        } else {
            self.0 &= !bit;
        }
    }
}

impl fmt::Debug for PteFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PteFlags({}{}{}{}{})",
            if self.present() { 'P' } else { '-' },
            if self.accessed() { 'A' } else { '-' },
            if self.dirty() { 'D' } else { '-' },
            if self.pinned() { 'N' } else { '-' },
            if self.cxl_bound() { 'X' } else { '-' },
        )
    }
}

/// One page-table entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pte {
    /// The mapped physical frame.
    pub pfn: Pfn,
    /// Flag bits.
    pub flags: PteFlags,
}

impl Pte {
    /// The node that currently backs this page.
    pub fn node(&self) -> NodeId {
        NodeId::of_pfn(self.pfn)
    }

    /// The unmapped-slot sentinel (see [`NO_PFN`]).
    const UNMAPPED: Pte = Pte {
        pfn: Pfn(NO_PFN),
        flags: PteFlags(0),
    };

    #[inline]
    fn is_mapped(&self) -> bool {
        self.pfn.0 != NO_PFN
    }
}

/// Sentinel for "frame backs no page" in [`FrameMap`] (a VPN never reaches
/// 2^64 − 1: virtual addresses top out `PAGE_SHIFT` bits earlier).
const NO_VPN: u64 = u64::MAX;

/// Unmapped-slot sentinel PFN: `Option<Pte>` has no niche (all flag-byte
/// values are inhabited), so storing options would pad every slot to
/// 24 bytes. A sentinel keeps the table at 16 bytes/entry — a third less
/// random-lookup footprint on the access hot path.
const NO_PFN: u64 = u64::MAX;

/// The kernel's rmap as two direct-indexed arrays, one per memory node.
///
/// Both allocators hand out frames densely — DDR from PFN 0 upward, CXL
/// from [`CXL_BASE_PFN`] upward — so `pfn - node_base` is a small dense
/// index and the reverse lookup is a single array read instead of a
/// `HashMap` probe on the migration/tracker path.
#[derive(Clone, Debug, Default)]
struct FrameMap {
    ddr: Vec<u64>,
    cxl: Vec<u64>,
}

impl FrameMap {
    /// The per-node array and dense index for `pfn`.
    #[inline]
    fn slot(&self, pfn: Pfn) -> (&Vec<u64>, usize) {
        match NodeId::of_pfn(pfn) {
            NodeId::Ddr => (&self.ddr, pfn.0 as usize),
            NodeId::Cxl => (&self.cxl, (pfn.0 - CXL_BASE_PFN) as usize),
        }
    }

    #[inline]
    fn slot_mut(&mut self, pfn: Pfn) -> (&mut Vec<u64>, usize) {
        match NodeId::of_pfn(pfn) {
            NodeId::Ddr => (&mut self.ddr, pfn.0 as usize),
            NodeId::Cxl => (&mut self.cxl, (pfn.0 - CXL_BASE_PFN) as usize),
        }
    }

    #[inline]
    fn insert(&mut self, pfn: Pfn, vpn: Vpn) {
        let (arr, i) = self.slot_mut(pfn);
        if i >= arr.len() {
            arr.resize(i + 1, NO_VPN);
        }
        arr[i] = vpn.0;
    }

    #[inline]
    fn remove(&mut self, pfn: Pfn) {
        let (arr, i) = self.slot_mut(pfn);
        if let Some(slot) = arr.get_mut(i) {
            *slot = NO_VPN;
        }
    }

    #[inline]
    fn get(&self, pfn: Pfn) -> Option<Vpn> {
        let (arr, i) = self.slot(pfn);
        match arr.get(i) {
            Some(&v) if v != NO_VPN => Some(Vpn(v)),
            _ => None,
        }
    }
}

/// A flat page table covering a dense virtual address range starting at VPN 0.
///
/// Workload regions are handed out sequentially, so a `Vec` keeps lookups at
/// array-index cost even for multi-hundred-thousand-page footprints.
#[derive(Clone, Debug, Default)]
pub struct PageTable {
    entries: Vec<Pte>,
    /// Reverse map (the kernel's rmap): which VPN a frame currently backs.
    /// Needed by components that identify pages physically — the CXL-side
    /// trackers report PFNs, and the Promoter must find the mapping to
    /// migrate.
    rmap: FrameMap,
    mapped: u64,
}

impl PageTable {
    /// An empty page table.
    pub fn new() -> PageTable {
        PageTable::default()
    }

    /// Number of mapped pages.
    pub fn mapped_pages(&self) -> u64 {
        self.mapped
    }

    /// Highest VPN ever mapped, plus one (the table's extent).
    pub fn extent(&self) -> u64 {
        self.entries.len() as u64
    }

    /// Maps `vpn` to `pfn` with fresh flags.
    ///
    /// Double-mapping is a simulator bug (not a recoverable runtime
    /// condition): it trips a `debug_assert!` in debug/test builds. Release
    /// builds overwrite the stale entry — the old frame leaks, but the page
    /// table stays internally consistent.
    pub fn map(&mut self, vpn: Vpn, pfn: Pfn) {
        let idx = vpn.0 as usize;
        if idx >= self.entries.len() {
            self.entries.resize(idx + 1, Pte::UNMAPPED);
        }
        debug_assert!(!self.entries[idx].is_mapped(), "{vpn:?} already mapped");
        if self.entries[idx].is_mapped() {
            self.unmap(vpn);
        }
        self.entries[idx] = Pte {
            pfn,
            flags: PteFlags::new_mapped(),
        };
        self.rmap.insert(pfn, vpn);
        self.mapped += 1;
    }

    /// Removes the mapping for `vpn`, returning the old entry.
    pub fn unmap(&mut self, vpn: Vpn) -> Option<Pte> {
        let slot = self.entries.get_mut(vpn.0 as usize)?;
        if !slot.is_mapped() {
            return None;
        }
        let pte = std::mem::replace(slot, Pte::UNMAPPED);
        self.rmap.remove(pte.pfn);
        self.mapped -= 1;
        Some(pte)
    }

    /// The VPN currently mapped to `pfn` (reverse lookup), if any.
    #[inline]
    pub fn vpn_of(&self, pfn: Pfn) -> Option<Vpn> {
        self.rmap.get(pfn)
    }

    /// Looks up the entry for `vpn`.
    #[inline]
    pub fn get(&self, vpn: Vpn) -> Option<&Pte> {
        self.entries.get(vpn.0 as usize).filter(|p| p.is_mapped())
    }

    /// Prefetch hint for the entry of `vpn`: a `black_box` touch-load
    /// that pulls the PTE's cache line in without observable effect (the
    /// crate forbids `unsafe`, so no prefetch intrinsic; an out-of-order
    /// core overlaps the fill all the same). The staged translate pass
    /// runs a few accesses ahead of itself: the table is large enough
    /// that a cold [`PageTable::get`] is a likely cache miss, and the
    /// upcoming VPNs are already sitting in the access chunk.
    #[inline]
    pub fn prefetch(&self, vpn: Vpn) {
        if let Some(pte) = self.entries.get(vpn.0 as usize) {
            std::hint::black_box(pte.flags);
        }
    }

    /// Mutably looks up the entry for `vpn`.
    #[inline]
    pub fn get_mut(&mut self, vpn: Vpn) -> Option<&mut Pte> {
        self.entries
            .get_mut(vpn.0 as usize)
            .filter(|p| p.is_mapped())
    }

    /// Repoints `vpn` at a new frame (used by migration). Flags other than
    /// dirty are preserved; the dirty bit is cleared because the copy wrote
    /// the destination frame back to a clean state.
    ///
    /// # Panics
    ///
    /// Panics if `vpn` is not mapped.
    pub fn remap(&mut self, vpn: Vpn, new_pfn: Pfn) -> Pfn {
        let pte = self.get_mut(vpn).expect("remap of unmapped page");
        let old = pte.pfn;
        pte.pfn = new_pfn;
        pte.flags.set(PteFlags::DIRTY, false);
        self.rmap.remove(old);
        self.rmap.insert(new_pfn, vpn);
        old
    }

    /// Clears the present bit (ANB's unmap-for-hinting). Returns `true` if
    /// the page was mapped and present.
    pub fn clear_present(&mut self, vpn: Vpn) -> bool {
        match self.get_mut(vpn) {
            Some(pte) if pte.flags.present() => {
                pte.flags.set(PteFlags::PRESENT, false);
                true
            }
            _ => false,
        }
    }

    /// Sets the present bit back (fault handled).
    pub fn set_present(&mut self, vpn: Vpn) {
        if let Some(pte) = self.get_mut(vpn) {
            pte.flags.set(PteFlags::PRESENT, true);
        }
    }

    /// Sets the accessed bit (hardware page walk on TLB miss).
    pub fn set_accessed(&mut self, vpn: Vpn) {
        if let Some(pte) = self.get_mut(vpn) {
            pte.flags.set(PteFlags::ACCESSED, true);
        }
    }

    /// Reads and clears the accessed bit, returning the old value (DAMON's
    /// per-epoch sample).
    pub fn test_and_clear_accessed(&mut self, vpn: Vpn) -> bool {
        match self.get_mut(vpn) {
            Some(pte) => {
                let was = pte.flags.accessed();
                pte.flags.set(PteFlags::ACCESSED, false);
                was
            }
            None => false,
        }
    }

    /// Overwrites the flag byte for `vpn` in one lookup. The access hot
    /// path reads the PTE once, accumulates its present/accessed/dirty
    /// updates locally, and stores them here only when something actually
    /// changed — the table is large enough that every lookup is a likely
    /// cache miss, and in steady state most flag updates are redundant.
    #[inline]
    pub fn store_flags(&mut self, vpn: Vpn, flags: PteFlags) {
        if let Some(pte) = self.get_mut(vpn) {
            pte.flags = flags;
        }
    }

    /// Sets the dirty bit (write access).
    pub fn set_dirty(&mut self, vpn: Vpn) {
        if let Some(pte) = self.get_mut(vpn) {
            pte.flags.set(PteFlags::DIRTY, true);
        }
    }

    /// Marks `vpn` pinned or unpinned.
    pub fn set_pinned(&mut self, vpn: Vpn, pinned: bool) {
        if let Some(pte) = self.get_mut(vpn) {
            pte.flags.set(PteFlags::PINNED, pinned);
        }
    }

    /// Marks `vpn` as explicitly bound to the CXL node (or not).
    pub fn set_cxl_bound(&mut self, vpn: Vpn, bound: bool) {
        if let Some(pte) = self.get_mut(vpn) {
            pte.flags.set(PteFlags::CXL_BOUND, bound);
        }
    }

    /// Serializes the table (every slot, including unmapped sentinels —
    /// the table's extent is behavior-bearing) for a checkpoint. The rmap
    /// and mapped count are derived state and are rebuilt on restore.
    pub fn save(&self, w: &mut crate::checkpoint::StateWriter) {
        w.put_u64(self.entries.len() as u64);
        for pte in &self.entries {
            w.put_u64(pte.pfn.0);
            w.put_u8(pte.flags.bits());
        }
    }

    /// Rebuilds a table from a checkpoint section.
    ///
    /// # Errors
    ///
    /// Propagates codec errors from a truncated or corrupt payload.
    pub fn restore(
        r: &mut crate::checkpoint::StateReader<'_>,
    ) -> Result<PageTable, crate::checkpoint::CodecError> {
        let n = r.get_u64()? as usize;
        let mut pt = PageTable::new();
        pt.entries.reserve(n.min(1 << 24));
        for _ in 0..n {
            let pfn = Pfn(r.get_u64()?);
            let flags = PteFlags::from_bits(r.get_u8()?);
            pt.entries.push(Pte { pfn, flags });
        }
        for (i, pte) in pt.entries.iter().enumerate() {
            if pte.is_mapped() {
                pt.rmap.insert(pte.pfn, Vpn(i as u64));
                pt.mapped += 1;
            }
        }
        Ok(pt)
    }

    /// Iterates over all mapped pages.
    pub fn iter_mapped(&self) -> impl Iterator<Item = (Vpn, &Pte)> + '_ {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.is_mapped())
            .map(|(i, e)| (Vpn(i as u64), e))
    }

    /// Iterates over mapped pages currently resident on `node`.
    pub fn pages_on(&self, node: NodeId) -> impl Iterator<Item = (Vpn, &Pte)> + '_ {
        self.iter_mapped()
            .filter(move |(_, pte)| pte.node() == node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::CXL_BASE_PFN;

    #[test]
    fn map_get_unmap() {
        let mut pt = PageTable::new();
        pt.map(Vpn(3), Pfn(7));
        assert_eq!(pt.mapped_pages(), 1);
        let pte = pt.get(Vpn(3)).unwrap();
        assert_eq!(pte.pfn, Pfn(7));
        assert!(pte.flags.present());
        assert!(!pte.flags.accessed());
        assert!(pt.get(Vpn(2)).is_none());
        let old = pt.unmap(Vpn(3)).unwrap();
        assert_eq!(old.pfn, Pfn(7));
        assert_eq!(pt.mapped_pages(), 0);
    }

    #[test]
    #[should_panic(expected = "already mapped")]
    fn double_map_panics() {
        let mut pt = PageTable::new();
        pt.map(Vpn(0), Pfn(0));
        pt.map(Vpn(0), Pfn(1));
    }

    #[test]
    fn present_bit_cycle_models_anb_hinting() {
        let mut pt = PageTable::new();
        pt.map(Vpn(1), Pfn(9));
        assert!(pt.clear_present(Vpn(1)));
        assert!(!pt.get(Vpn(1)).unwrap().flags.present());
        // Clearing again reports false: the page is already unmapped.
        assert!(!pt.clear_present(Vpn(1)));
        pt.set_present(Vpn(1));
        assert!(pt.get(Vpn(1)).unwrap().flags.present());
    }

    #[test]
    fn accessed_bit_test_and_clear_models_damon() {
        let mut pt = PageTable::new();
        pt.map(Vpn(5), Pfn(2));
        assert!(!pt.test_and_clear_accessed(Vpn(5)));
        pt.set_accessed(Vpn(5));
        assert!(pt.test_and_clear_accessed(Vpn(5)));
        assert!(!pt.test_and_clear_accessed(Vpn(5)), "bit was cleared");
    }

    #[test]
    fn remap_clears_dirty_and_returns_old_frame() {
        let mut pt = PageTable::new();
        pt.map(Vpn(0), Pfn(CXL_BASE_PFN));
        pt.set_dirty(Vpn(0));
        pt.set_pinned(Vpn(0), true);
        let old = pt.remap(Vpn(0), Pfn(4));
        assert_eq!(old, Pfn(CXL_BASE_PFN));
        let pte = pt.get(Vpn(0)).unwrap();
        assert_eq!(pte.pfn, Pfn(4));
        assert_eq!(pte.node(), NodeId::Ddr);
        assert!(!pte.flags.dirty(), "copy leaves destination clean");
        assert!(pte.flags.pinned(), "other flags preserved");
    }

    #[test]
    fn pages_on_filters_by_node() {
        let mut pt = PageTable::new();
        pt.map(Vpn(0), Pfn(1));
        pt.map(Vpn(1), Pfn(CXL_BASE_PFN + 1));
        pt.map(Vpn(2), Pfn(2));
        let ddr: Vec<_> = pt.pages_on(NodeId::Ddr).map(|(v, _)| v).collect();
        let cxl: Vec<_> = pt.pages_on(NodeId::Cxl).map(|(v, _)| v).collect();
        assert_eq!(ddr, vec![Vpn(0), Vpn(2)]);
        assert_eq!(cxl, vec![Vpn(1)]);
    }

    #[test]
    fn reverse_map_follows_map_remap_unmap() {
        let mut pt = PageTable::new();
        pt.map(Vpn(4), Pfn(7));
        assert_eq!(pt.vpn_of(Pfn(7)), Some(Vpn(4)));
        pt.remap(Vpn(4), Pfn(9));
        assert_eq!(pt.vpn_of(Pfn(7)), None);
        assert_eq!(pt.vpn_of(Pfn(9)), Some(Vpn(4)));
        pt.unmap(Vpn(4));
        assert_eq!(pt.vpn_of(Pfn(9)), None);
    }

    #[test]
    fn flags_debug_is_informative() {
        let mut f = PteFlags::new_mapped();
        f.set(PteFlags::ACCESSED, true);
        assert_eq!(format!("{f:?}"), "PteFlags(PA---)");
    }
}
