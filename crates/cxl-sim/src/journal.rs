//! Write-ahead migration journal: crash-consistent page-migration
//! transactions.
//!
//! Every page migration is a transaction walked through a fixed state
//! machine, with one journal record appended per transition (the journal
//! step counter is the crash-point index used by the sweep harness):
//!
//! ```text
//!            ┌────────┐     ┌────────────────┐     ┌──────────┐     ┌───────────┐
//!  begin ──▶ │ Intent │ ──▶ │ CopyInProgress │ ──▶ │ Remapped │ ──▶ │ Committed │
//!            └────────┘     └────────────────┘     └──────────┘     └───────────┘
//!                 │                  │                   │
//!                 ▼                  ▼                   ▼
//!            ┌─────────┐      ┌────────────┐      ┌────────────┐
//!            │ Aborted │      │ RolledBack │      │ RolledBack │
//!            └─────────┘      └────────────┘      └────────────┘
//! ```
//!
//! * `Intent` — the write-ahead promise: transaction opened, nothing
//!   mutated yet. Recovery aborts it.
//! * `CopyInProgress` — a shadow frame is allocated on the destination and
//!   the copy engine is running; the source mapping is untouched. Recovery
//!   frees the shadow frame and rolls back.
//! * `Remapped` — the page table now points at the shadow frame; the source
//!   frame is still allocated. Recovery inspects the page table: if the
//!   remap landed it rolls *forward* (frees the source, counts the
//!   migration), otherwise it rolls back.
//! * `Committed` / `Aborted` / `RolledBack` — terminal; the transaction is
//!   retired into [`JournalCounters`] immediately so counters and journal
//!   can never disagree.
//!
//! The journal is pure bookkeeping — the mutation mechanics (allocator,
//! page table, TLB, LLC) live on [`crate::system::System`], which also
//! bills each append as kernel time ([`crate::kernel::CostKind::JournalWrite`]):
//! a real write-ahead log costs a cacheline write plus a barrier per
//! record, and charging it keeps the simulator's §4.2-style overhead
//! accounting honest.

use crate::addr::Pfn;
use crate::addr::Vpn;
use crate::memory::NodeId;
use m5_telemetry::SpanId;
use std::fmt;

/// One state of the migration-transaction state machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TxnState {
    /// Transaction opened; nothing mutated yet.
    Intent,
    /// Shadow frame allocated, copy engine running.
    CopyInProgress,
    /// Page table switched to the shadow frame; source not yet freed.
    Remapped,
    /// Terminal: migration complete and counted.
    Committed,
    /// Terminal: gave up before mutating anything (e.g. no free frame).
    Aborted,
    /// Terminal: undone after a mid-flight failure (copy fault, watchdog,
    /// controller reset).
    RolledBack,
}

impl TxnState {
    /// Whether this state ends the transaction.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            TxnState::Committed | TxnState::Aborted | TxnState::RolledBack
        )
    }

    /// The state's stable kebab-case name (also used as a telemetry label).
    pub const fn label(self) -> &'static str {
        match self {
            TxnState::Intent => "intent",
            TxnState::CopyInProgress => "copy-in-progress",
            TxnState::Remapped => "remapped",
            TxnState::Committed => "committed",
            TxnState::Aborted => "aborted",
            TxnState::RolledBack => "rolled-back",
        }
    }
}

impl fmt::Display for TxnState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Identifier of one migration transaction (monotone per journal).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TxnId(pub u64);

/// One migration transaction, as recorded in the journal.
#[derive(Clone, Copy, Debug)]
pub struct MigrationTxn {
    /// Transaction identifier.
    pub id: TxnId,
    /// The page being migrated.
    pub vpn: Vpn,
    /// The frame the page occupied when the transaction opened.
    pub src: Pfn,
    /// The destination node.
    pub dst: NodeId,
    /// The shadow frame, once allocated (set at `CopyInProgress`).
    pub shadow: Option<Pfn>,
    /// Current state.
    pub state: TxnState,
    /// Whether a failed outcome should count one rejected migration (the
    /// counted/uncounted split is a commit-time flag, not two code paths).
    pub counted: bool,
    /// The telemetry span opened for this transaction, ended at the
    /// terminal transition (or during recovery).
    pub span: Option<SpanId>,
}

/// Terminal-state tallies, retired from the journal as transactions close.
/// The invariant checker reconciles the committed counts against
/// [`crate::migration::MigrationStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JournalCounters {
    /// Committed transactions that promoted a page (CXL → DDR).
    pub committed_promotions: u64,
    /// Committed transactions that demoted a page (DDR → CXL).
    pub committed_demotions: u64,
    /// Transactions aborted before mutating anything.
    pub aborted: u64,
    /// Transactions rolled back after a mid-flight failure.
    pub rolled_back: u64,
}

impl JournalCounters {
    /// Committed transactions in either direction.
    pub fn committed(&self) -> u64 {
        self.committed_promotions + self.committed_demotions
    }

    /// Transactions that reached any terminal state.
    pub fn terminal(&self) -> u64 {
        self.committed() + self.aborted + self.rolled_back
    }
}

/// What [`crate::system::System::recover`] did with the journal.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Open transactions inspected.
    pub scanned: u64,
    /// `Intent` transactions aborted (nothing was mutated).
    pub aborted: u64,
    /// Transactions rolled back (shadow frame freed).
    pub rolled_back: u64,
    /// `Remapped` transactions rolled forward to `Committed` (source frame
    /// freed, migration counted).
    pub rolled_forward: u64,
}

impl RecoveryReport {
    /// Whether recovery had nothing to repair.
    pub fn is_clean(&self) -> bool {
        self.scanned == 0
    }
}

/// The write-ahead intent log. Holds the open (in-flight) transactions and
/// the terminal counters; every append bumps the step counter that the
/// crash-point sweep indexes.
#[derive(Clone, Debug, Default)]
pub struct MigrationJournal {
    open: Vec<MigrationTxn>,
    next_id: u64,
    steps: u64,
    counters: JournalCounters,
    fenced: bool,
}

impl MigrationJournal {
    /// An empty journal.
    pub fn new() -> MigrationJournal {
        MigrationJournal::default()
    }

    /// Opens a transaction for moving `vpn` (currently on `src`) to `dst`,
    /// appending its `Intent` record. One journal step.
    pub fn begin(&mut self, vpn: Vpn, src: Pfn, dst: NodeId, counted: bool) -> TxnId {
        let id = TxnId(self.next_id);
        self.next_id += 1;
        self.steps += 1;
        self.open.push(MigrationTxn {
            id,
            vpn,
            src,
            dst,
            shadow: None,
            state: TxnState::Intent,
            counted,
            span: None,
        });
        id
    }

    /// Records the shadow frame allocated for `id` (no journal step: the
    /// frame is part of the following `CopyInProgress` record).
    pub fn set_shadow(&mut self, id: TxnId, shadow: Pfn) {
        if let Some(t) = self.open.iter_mut().find(|t| t.id == id) {
            t.shadow = Some(shadow);
        }
    }

    /// Attaches a telemetry span to `id`.
    pub fn set_span(&mut self, id: TxnId, span: SpanId) {
        if let Some(t) = self.open.iter_mut().find(|t| t.id == id) {
            t.span = Some(span);
        }
    }

    /// Appends a state-transition record for `id`. One journal step.
    /// Terminal transitions retire the transaction into the counters and
    /// return it (so the caller can close its span).
    pub fn transition(&mut self, id: TxnId, state: TxnState) -> Option<MigrationTxn> {
        self.steps += 1;
        let idx = self.open.iter().position(|t| t.id == id)?;
        debug_assert!(
            legal_transition(self.open[idx].state, state),
            "illegal journal transition {} -> {}",
            self.open[idx].state,
            state
        );
        if state.is_terminal() {
            let mut txn = self.open.remove(idx);
            txn.state = state;
            self.count(&txn);
            Some(txn)
        } else {
            self.open[idx].state = state;
            None
        }
    }

    /// Appends a terminal record for a transaction drained via
    /// [`MigrationJournal::take_open`] — the recovery path. One journal
    /// step. Returns the retired transaction.
    pub fn append_terminal(&mut self, mut txn: MigrationTxn, state: TxnState) -> MigrationTxn {
        debug_assert!(state.is_terminal());
        self.steps += 1;
        txn.state = state;
        self.count(&txn);
        txn
    }

    fn count(&mut self, txn: &MigrationTxn) {
        match txn.state {
            TxnState::Committed => match txn.dst {
                NodeId::Ddr => self.counters.committed_promotions += 1,
                NodeId::Cxl => self.counters.committed_demotions += 1,
            },
            TxnState::Aborted => self.counters.aborted += 1,
            TxnState::RolledBack => self.counters.rolled_back += 1,
            _ => unreachable!("count() only sees terminal states"),
        }
    }

    /// Total journal records appended — the crash-point index space.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The open (in-flight) transactions, oldest first.
    pub fn open(&self) -> &[MigrationTxn] {
        &self.open
    }

    /// Terminal-state tallies.
    pub fn counters(&self) -> JournalCounters {
        self.counters
    }

    /// Drains the open transactions for recovery replay.
    pub fn take_open(&mut self) -> Vec<MigrationTxn> {
        std::mem::take(&mut self.open)
    }

    /// Fences the migration engine: a controller reset struck and the
    /// journal must be replayed before the next migration.
    pub fn fence(&mut self) {
        self.fenced = true;
    }

    /// Lifts the fence after recovery.
    pub fn clear_fence(&mut self) {
        self.fenced = false;
    }

    /// Whether the engine is fenced pending recovery.
    pub fn is_fenced(&self) -> bool {
        self.fenced
    }

    /// Serializes the journal for a checkpoint: open transactions (oldest
    /// first), the id/step counters, terminal tallies, and the fence.
    /// Telemetry spans are process-local handles and restore as `None`.
    pub fn save(&self, w: &mut crate::checkpoint::StateWriter) {
        w.put_u64(self.open.len() as u64);
        for t in &self.open {
            w.put_u64(t.id.0);
            w.put_u64(t.vpn.0);
            w.put_u64(t.src.0);
            w.put_u8(match t.dst {
                NodeId::Ddr => 0,
                NodeId::Cxl => 1,
            });
            match t.shadow {
                Some(p) => {
                    w.put_bool(true);
                    w.put_u64(p.0);
                }
                None => w.put_bool(false),
            }
            w.put_u8(match t.state {
                TxnState::Intent => 0,
                TxnState::CopyInProgress => 1,
                TxnState::Remapped => 2,
                TxnState::Committed => 3,
                TxnState::Aborted => 4,
                TxnState::RolledBack => 5,
            });
            w.put_bool(t.counted);
        }
        w.put_u64(self.next_id);
        w.put_u64(self.steps);
        w.put_u64(self.counters.committed_promotions);
        w.put_u64(self.counters.committed_demotions);
        w.put_u64(self.counters.aborted);
        w.put_u64(self.counters.rolled_back);
        w.put_bool(self.fenced);
    }

    /// Rebuilds a journal from a checkpoint section.
    ///
    /// # Errors
    ///
    /// Propagates codec errors from a truncated or corrupt payload.
    pub fn restore(
        r: &mut crate::checkpoint::StateReader<'_>,
    ) -> Result<MigrationJournal, crate::checkpoint::CodecError> {
        let n = r.get_u64()? as usize;
        let mut open = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let id = TxnId(r.get_u64()?);
            let vpn = Vpn(r.get_u64()?);
            let src = Pfn(r.get_u64()?);
            let dst = match r.get_u8()? {
                0 => NodeId::Ddr,
                1 => NodeId::Cxl,
                v => {
                    return Err(crate::checkpoint::CodecError::BadValue {
                        what: "journal dst node",
                        value: v as u64,
                    })
                }
            };
            let shadow = if r.get_bool()? {
                Some(Pfn(r.get_u64()?))
            } else {
                None
            };
            let state = match r.get_u8()? {
                0 => TxnState::Intent,
                1 => TxnState::CopyInProgress,
                2 => TxnState::Remapped,
                3 => TxnState::Committed,
                4 => TxnState::Aborted,
                5 => TxnState::RolledBack,
                v => {
                    return Err(crate::checkpoint::CodecError::BadValue {
                        what: "journal txn state",
                        value: v as u64,
                    })
                }
            };
            let counted = r.get_bool()?;
            open.push(MigrationTxn {
                id,
                vpn,
                src,
                dst,
                shadow,
                state,
                counted,
                span: None,
            });
        }
        Ok(MigrationJournal {
            open,
            next_id: r.get_u64()?,
            steps: r.get_u64()?,
            counters: JournalCounters {
                committed_promotions: r.get_u64()?,
                committed_demotions: r.get_u64()?,
                aborted: r.get_u64()?,
                rolled_back: r.get_u64()?,
            },
            fenced: r.get_bool()?,
        })
    }
}

/// The legal edges of the state machine (see the module diagram).
fn legal_transition(from: TxnState, to: TxnState) -> bool {
    matches!(
        (from, to),
        (TxnState::Intent, TxnState::CopyInProgress)
            | (TxnState::Intent, TxnState::Aborted)
            | (TxnState::CopyInProgress, TxnState::Remapped)
            | (TxnState::CopyInProgress, TxnState::RolledBack)
            | (TxnState::Remapped, TxnState::Committed)
            | (TxnState::Remapped, TxnState::RolledBack)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Pfn = Pfn(crate::memory::CXL_BASE_PFN);

    #[test]
    fn begin_and_commit_walk_the_state_machine() {
        let mut j = MigrationJournal::new();
        let id = j.begin(Vpn(1), SRC, NodeId::Ddr, true);
        assert_eq!(j.steps(), 1);
        assert_eq!(j.open().len(), 1);
        j.set_shadow(id, Pfn(7));
        assert!(j.transition(id, TxnState::CopyInProgress).is_none());
        assert!(j.transition(id, TxnState::Remapped).is_none());
        let done = j.transition(id, TxnState::Committed).unwrap();
        assert_eq!(done.shadow, Some(Pfn(7)));
        assert_eq!(j.steps(), 4);
        assert!(j.open().is_empty());
        assert_eq!(j.counters().committed_promotions, 1);
    }

    #[test]
    fn terminal_states_are_tallied_by_kind() {
        let mut j = MigrationJournal::new();
        let a = j.begin(Vpn(1), SRC, NodeId::Ddr, true);
        j.transition(a, TxnState::Aborted);
        let b = j.begin(Vpn(2), SRC, NodeId::Cxl, false);
        j.transition(b, TxnState::CopyInProgress);
        j.transition(b, TxnState::RolledBack);
        let c = j.begin(Vpn(3), SRC, NodeId::Cxl, true);
        j.transition(c, TxnState::CopyInProgress);
        j.transition(c, TxnState::Remapped);
        j.transition(c, TxnState::Committed);
        let counts = j.counters();
        assert_eq!(counts.aborted, 1);
        assert_eq!(counts.rolled_back, 1);
        assert_eq!(counts.committed_demotions, 1);
        assert_eq!(counts.committed(), 1);
        assert_eq!(counts.terminal(), 3);
    }

    #[test]
    fn fence_and_recovery_drain() {
        let mut j = MigrationJournal::new();
        let id = j.begin(Vpn(9), SRC, NodeId::Ddr, true);
        j.transition(id, TxnState::CopyInProgress);
        j.fence();
        assert!(j.is_fenced());
        let open = j.take_open();
        assert_eq!(open.len(), 1);
        assert_eq!(open[0].state, TxnState::CopyInProgress);
        let retired = j.append_terminal(open.into_iter().next().unwrap(), TxnState::RolledBack);
        assert_eq!(retired.state, TxnState::RolledBack);
        assert_eq!(j.counters().rolled_back, 1);
        j.clear_fence();
        assert!(!j.is_fenced());
    }

    #[test]
    fn states_know_their_terminality_and_labels() {
        for s in [TxnState::Committed, TxnState::Aborted, TxnState::RolledBack] {
            assert!(s.is_terminal());
        }
        for s in [
            TxnState::Intent,
            TxnState::CopyInProgress,
            TxnState::Remapped,
        ] {
            assert!(!s.is_terminal());
        }
        assert_eq!(TxnState::RolledBack.to_string(), "rolled-back");
    }
}
