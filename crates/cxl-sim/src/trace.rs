//! Cache-filtered DRAM access traces.
//!
//! The paper's Figure 7 design-space exploration feeds *cache-filtered,
//! time-stamped DRAM address traces* (collected with Pin + Ramulator) into a
//! standalone tracker simulator. [`TraceCapture`] is the equivalent here: a
//! [`CxlDevice`] that records every CXL DRAM access it snoops, and a compact
//! binary encode/decode path for storing traces.

use crate::addr::CacheLineAddr;
use crate::controller::CxlDevice;
use crate::time::Nanos;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::any::Any;

/// One recorded DRAM access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// The cache-line address (`PA[47:6]`).
    pub line: CacheLineAddr,
    /// Whether this was a writeback (true) or a miss-fill read (false).
    pub is_write: bool,
    /// Simulated timestamp.
    pub ts: Nanos,
}

/// A snoop device that appends every observed access to a trace.
#[derive(Clone, Debug, Default)]
pub struct TraceCapture {
    records: Vec<TraceRecord>,
    limit: Option<usize>,
}

impl TraceCapture {
    /// An unbounded capture.
    pub fn new() -> TraceCapture {
        TraceCapture::default()
    }

    /// A capture that stops recording after `limit` accesses (the trace
    /// stays valid; later accesses are dropped). Storage is reserved up
    /// front so the capped capture never reallocates mid-run.
    pub fn with_limit(limit: usize) -> TraceCapture {
        TraceCapture {
            records: Vec::with_capacity(limit.min(1 << 24)),
            limit: Some(limit),
        }
    }

    /// The recorded accesses, in arrival order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Consumes the capture, returning the trace.
    pub fn into_records(self) -> Vec<TraceRecord> {
        self.records
    }

    /// Number of records captured.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing has been captured.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

impl CxlDevice for TraceCapture {
    fn name(&self) -> &str {
        "trace-capture"
    }

    fn on_access(&mut self, line: CacheLineAddr, is_write: bool, now: Nanos) {
        if let Some(limit) = self.limit {
            if self.records.len() >= limit {
                return;
            }
        }
        self.records.push(TraceRecord {
            line,
            is_write,
            ts: now,
        });
    }

    fn on_access_batch(&mut self, events: &[crate::controller::SnoopEvent]) {
        let take = match self.limit {
            Some(limit) => limit.saturating_sub(self.records.len()).min(events.len()),
            None => events.len(),
        };
        self.records
            .extend(events[..take].iter().map(|e| TraceRecord {
                line: e.line,
                is_write: e.is_write,
                ts: e.now,
            }));
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Encodes a trace into a compact binary buffer (16 bytes per record:
/// 8-byte line address with the write bit folded into bit 63, 8-byte
/// timestamp).
pub fn encode(records: &[TraceRecord]) -> Bytes {
    let mut buf = BytesMut::with_capacity(records.len() * 16);
    for r in records {
        let mut word = r.line.0;
        debug_assert!(word < 1 << 63, "line address overflows encoding");
        if r.is_write {
            word |= 1 << 63;
        }
        buf.put_u64_le(word);
        buf.put_u64_le(r.ts.0);
    }
    buf.freeze()
}

/// Error produced when decoding a malformed trace buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecodeTraceError {
    /// Length of the malformed buffer.
    pub len: usize,
}

impl std::fmt::Display for DecodeTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace buffer length {} is not a multiple of 16",
            self.len
        )
    }
}

impl std::error::Error for DecodeTraceError {}

/// Decodes a buffer produced by [`encode`].
///
/// # Errors
///
/// Returns [`DecodeTraceError`] if the buffer length is not a multiple of
/// the record size.
pub fn decode(mut buf: Bytes) -> Result<Vec<TraceRecord>, DecodeTraceError> {
    if !buf.len().is_multiple_of(16) {
        return Err(DecodeTraceError { len: buf.len() });
    }
    let mut out = Vec::with_capacity(buf.len() / 16);
    while buf.has_remaining() {
        let word = buf.get_u64_le();
        let ts = buf.get_u64_le();
        out.push(TraceRecord {
            line: CacheLineAddr(word & !(1 << 63)),
            is_write: word >> 63 == 1,
            ts: Nanos(ts),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<TraceRecord> {
        vec![
            TraceRecord {
                line: CacheLineAddr(0xdead),
                is_write: false,
                ts: Nanos(100),
            },
            TraceRecord {
                line: CacheLineAddr(0xbeef),
                is_write: true,
                ts: Nanos(370),
            },
        ]
    }

    #[test]
    fn capture_records_in_order() {
        let mut cap = TraceCapture::new();
        for r in sample() {
            cap.on_access(r.line, r.is_write, r.ts);
        }
        assert_eq!(cap.records(), sample().as_slice());
        assert_eq!(cap.len(), 2);
    }

    #[test]
    fn capture_limit_is_enforced() {
        let mut cap = TraceCapture::with_limit(1);
        for r in sample() {
            cap.on_access(r.line, r.is_write, r.ts);
        }
        assert_eq!(cap.len(), 1);
        assert!(!cap.is_empty());
    }

    #[test]
    fn encode_decode_roundtrip() {
        let recs = sample();
        let buf = encode(&recs);
        assert_eq!(buf.len(), 32);
        let back = decode(buf).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn decode_rejects_truncated_buffers() {
        let buf = Bytes::from_static(&[0u8; 15]);
        let err = decode(buf).unwrap_err();
        assert_eq!(err.len, 15);
        assert!(err.to_string().contains("multiple of 16"));
    }
}
