//! Performance-counter model: per-node read bandwidth and page counts.
//!
//! This is the substrate behind the M5-manager's `Monitor` (paper Table 1):
//!
//! | function          | description                              | real tool      |
//! |-------------------|------------------------------------------|----------------|
//! | `nr_pages(node)`  | pages allocated to `node`                | `/proc/zoneinfo` |
//! | `bw(node)`        | consumed *read* bandwidth of `node`      | `pcm`          |
//! | `bw_den(node)`    | `bw(node)` per allocated page            | derived        |
//!
//! Only read bandwidth is reported because with a write-allocate hierarchy
//! every LLC miss — load or store — first performs a DRAM read (§5.2).

use crate::memory::NodeId;
use crate::time::Nanos;
use serde::{Deserialize, Serialize};

/// Per-node traffic counters for one measurement window plus cumulative
/// totals.
#[derive(Clone, Debug, Default)]
pub struct PerfMonitor {
    window_reads: [u64; 2],
    window_writebacks: [u64; 2],
    window_start: Nanos,
    total_reads: [u64; 2],
    total_writebacks: [u64; 2],
}

/// A bandwidth snapshot of one node over a closed window.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BandwidthStats {
    /// 64 B read accesses observed in the window.
    pub reads: u64,
    /// 64 B dirty writebacks observed in the window. Not part of
    /// [`BandwidthStats::bytes_per_sec`] (the Monitor's `bw()` is a read
    /// signal, §5.2), but per-window write traffic is what read/write
    /// asymmetric consumers (the contention model's billing audit) need.
    #[serde(default)]
    pub writebacks: u64,
    /// Window duration.
    pub window: Nanos,
}

impl BandwidthStats {
    /// Read bandwidth in bytes per second. Returns 0 for an empty window —
    /// including the zero-width window produced when the window is read at
    /// the very instant it was opened (an access landing exactly on a
    /// rollover boundary belongs to the *new* window and becomes bandwidth
    /// only once the window has nonzero width). Computed in floating point
    /// so a saturated read counter cannot overflow the 64-byte scaling.
    pub fn bytes_per_sec(&self) -> f64 {
        if self.window == Nanos::ZERO {
            return 0.0;
        }
        self.reads as f64 * 64.0 / self.window.as_secs_f64()
    }

    /// Writeback bandwidth in bytes per second (0 for an empty window).
    pub fn write_bytes_per_sec(&self) -> f64 {
        if self.window == Nanos::ZERO {
            return 0.0;
        }
        self.writebacks as f64 * 64.0 / self.window.as_secs_f64()
    }
}

fn idx(node: NodeId) -> usize {
    match node {
        NodeId::Ddr => 0,
        NodeId::Cxl => 1,
    }
}

impl PerfMonitor {
    /// A monitor with an empty window starting at time zero.
    pub fn new() -> PerfMonitor {
        PerfMonitor::default()
    }

    /// Records one 64 B DRAM read (an LLC miss fill) on `node`.
    #[inline]
    pub fn record_read(&mut self, node: NodeId) {
        self.window_reads[idx(node)] += 1;
        self.total_reads[idx(node)] += 1;
    }

    /// Records one 64 B DRAM write (a dirty writeback) on `node`.
    ///
    /// Windowed as well as totalled: per-window write traffic used to be
    /// dropped on the floor (only cumulative totals existed), which made
    /// the window partition lossy for any consumer billing read and write
    /// traffic asymmetrically.
    #[inline]
    pub fn record_writeback(&mut self, node: NodeId) {
        self.window_writebacks[idx(node)] += 1;
        self.total_writebacks[idx(node)] += 1;
    }

    /// Reads the current window's stats for `node` as of `now` without
    /// closing the window.
    ///
    /// `now` earlier than the window start (a stale timestamp from before
    /// the last rollover) saturates to a zero-width window, which reports
    /// zero bandwidth rather than inventing a rate from a negative span.
    pub fn window(&self, node: NodeId, now: Nanos) -> BandwidthStats {
        BandwidthStats {
            reads: self.window_reads[idx(node)],
            writebacks: self.window_writebacks[idx(node)],
            window: now.saturating_sub(self.window_start),
        }
    }

    /// Closes the measurement window: returns both nodes' stats and starts a
    /// fresh window at `now`. An access recorded *at* `now` before the
    /// rollover call lands in the closed window; one recorded at the same
    /// instant after it lands in the new window — every access is counted
    /// in exactly one window.
    pub fn rollover(&mut self, now: Nanos) -> [BandwidthStats; 2] {
        let out = [self.window(NodeId::Ddr, now), self.window(NodeId::Cxl, now)];
        self.window_reads = [0; 2];
        self.window_writebacks = [0; 2];
        self.window_start = now;
        out
    }

    /// Cumulative 64 B reads served by `node` since construction.
    pub fn total_reads(&self, node: NodeId) -> u64 {
        self.total_reads[idx(node)]
    }

    /// Cumulative 64 B writebacks absorbed by `node` since construction.
    pub fn total_writebacks(&self, node: NodeId) -> u64 {
        self.total_writebacks[idx(node)]
    }

    /// Serializes the window and cumulative counters for a checkpoint.
    pub fn save(&self, w: &mut crate::checkpoint::StateWriter) {
        for i in 0..2 {
            w.put_u64(self.window_reads[i]);
            w.put_u64(self.window_writebacks[i]);
            w.put_u64(self.total_reads[i]);
            w.put_u64(self.total_writebacks[i]);
        }
        w.put_u64(self.window_start.0);
    }

    /// Rebuilds a monitor from a checkpoint section.
    ///
    /// # Errors
    ///
    /// Propagates codec errors from a truncated or corrupt payload.
    pub fn restore(
        r: &mut crate::checkpoint::StateReader<'_>,
    ) -> Result<PerfMonitor, crate::checkpoint::CodecError> {
        let mut pm = PerfMonitor::new();
        for i in 0..2 {
            pm.window_reads[i] = r.get_u64()?;
            pm.window_writebacks[i] = r.get_u64()?;
            pm.total_reads[i] = r.get_u64()?;
            pm.total_writebacks[i] = r.get_u64()?;
        }
        pm.window_start = Nanos(r.get_u64()?);
        Ok(pm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_bandwidth() {
        let mut pm = PerfMonitor::new();
        for _ in 0..1000 {
            pm.record_read(NodeId::Cxl);
        }
        let w = pm.window(NodeId::Cxl, Nanos::from_micros(64));
        assert_eq!(w.reads, 1000);
        // 64 kB in 64 µs = 1 GB/s.
        assert!((w.bytes_per_sec() - 1e9).abs() < 1.0);
    }

    #[test]
    fn rollover_resets_window_but_not_totals() {
        let mut pm = PerfMonitor::new();
        pm.record_read(NodeId::Ddr);
        pm.record_read(NodeId::Ddr);
        let [ddr, cxl] = pm.rollover(Nanos(100));
        assert_eq!(ddr.reads, 2);
        assert_eq!(cxl.reads, 0);
        assert_eq!(pm.window(NodeId::Ddr, Nanos(150)).reads, 0);
        assert_eq!(pm.window(NodeId::Ddr, Nanos(150)).window, Nanos(50));
        assert_eq!(pm.total_reads(NodeId::Ddr), 2);
    }

    #[test]
    fn empty_window_has_zero_bandwidth() {
        let s = BandwidthStats {
            reads: 5,
            writebacks: 3,
            window: Nanos::ZERO,
        };
        assert_eq!(s.bytes_per_sec(), 0.0);
        assert_eq!(s.write_bytes_per_sec(), 0.0);
    }

    #[test]
    fn writebacks_tracked_separately_from_reads() {
        let mut pm = PerfMonitor::new();
        pm.record_writeback(NodeId::Cxl);
        assert_eq!(pm.total_writebacks(NodeId::Cxl), 1);
        assert_eq!(pm.total_reads(NodeId::Cxl), 0);
        assert_eq!(pm.window(NodeId::Cxl, Nanos(10)).reads, 0);
        assert_eq!(pm.window(NodeId::Cxl, Nanos(10)).writebacks, 1);
    }

    #[test]
    fn writebacks_partition_across_windows_like_reads() {
        let mut pm = PerfMonitor::new();
        pm.record_writeback(NodeId::Ddr);
        pm.record_writeback(NodeId::Ddr);
        let [ddr, _] = pm.rollover(Nanos(100));
        assert_eq!(ddr.writebacks, 2);
        assert_eq!(pm.window(NodeId::Ddr, Nanos(150)).writebacks, 0);
        pm.record_writeback(NodeId::Ddr);
        let [ddr2, _] = pm.rollover(Nanos(200));
        assert_eq!(ddr2.writebacks, 1);
        assert_eq!(pm.total_writebacks(NodeId::Ddr), 3);
    }

    /// The window-edge regression: an access recorded at exactly the
    /// rollover instant must land in exactly one window — the closed one
    /// if recorded before the rollover call, the new one if after — and
    /// the zero-width view of the new window must report zero bandwidth,
    /// not NaN/inf or the closed window's traffic.
    #[test]
    fn access_on_the_rollover_boundary_lands_in_exactly_one_window() {
        let mut pm = PerfMonitor::new();
        let boundary = Nanos(1000);
        pm.record_read(NodeId::Cxl); // before the boundary
        pm.record_writeback(NodeId::Cxl);
        let [_, closed] = pm.rollover(boundary);
        assert_eq!((closed.reads, closed.writebacks), (1, 1));

        // Recorded at the boundary instant, after the rollover: new window.
        pm.record_read(NodeId::Cxl);
        let fresh = pm.window(NodeId::Cxl, boundary);
        assert_eq!(fresh.reads, 1);
        assert_eq!(fresh.window, Nanos::ZERO);
        assert_eq!(fresh.bytes_per_sec(), 0.0, "zero-width window: no rate");
        assert!(fresh.bytes_per_sec().is_finite());

        // A stale `now` from before the rollover also saturates to zero.
        let stale = pm.window(NodeId::Cxl, Nanos(500));
        assert_eq!(stale.window, Nanos::ZERO);
        assert_eq!(stale.bytes_per_sec(), 0.0);

        // Once the window has width, the boundary access becomes rate.
        let [_, next] = pm.rollover(Nanos(2000));
        assert_eq!(next.reads, 1);
        assert!(next.bytes_per_sec() > 0.0);
        // Nothing double-counted: totals reconcile with both windows.
        assert_eq!(pm.total_reads(NodeId::Cxl), closed.reads + next.reads);
    }
}
