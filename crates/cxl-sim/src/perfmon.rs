//! Performance-counter model: per-node read bandwidth and page counts.
//!
//! This is the substrate behind the M5-manager's `Monitor` (paper Table 1):
//!
//! | function          | description                              | real tool      |
//! |-------------------|------------------------------------------|----------------|
//! | `nr_pages(node)`  | pages allocated to `node`                | `/proc/zoneinfo` |
//! | `bw(node)`        | consumed *read* bandwidth of `node`      | `pcm`          |
//! | `bw_den(node)`    | `bw(node)` per allocated page            | derived        |
//!
//! Only read bandwidth is reported because with a write-allocate hierarchy
//! every LLC miss — load or store — first performs a DRAM read (§5.2).

use crate::memory::NodeId;
use crate::time::Nanos;
use serde::{Deserialize, Serialize};

/// Per-node traffic counters for one measurement window plus cumulative
/// totals.
#[derive(Clone, Debug, Default)]
pub struct PerfMonitor {
    window_reads: [u64; 2],
    window_start: Nanos,
    total_reads: [u64; 2],
    total_writebacks: [u64; 2],
}

/// A bandwidth snapshot of one node over a closed window.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BandwidthStats {
    /// 64 B read accesses observed in the window.
    pub reads: u64,
    /// Window duration.
    pub window: Nanos,
}

impl BandwidthStats {
    /// Read bandwidth in bytes per second. Returns 0 for an empty window.
    /// Computed in floating point so a saturated read counter cannot
    /// overflow the 64-byte scaling.
    pub fn bytes_per_sec(&self) -> f64 {
        if self.window == Nanos::ZERO {
            return 0.0;
        }
        self.reads as f64 * 64.0 / self.window.as_secs_f64()
    }
}

fn idx(node: NodeId) -> usize {
    match node {
        NodeId::Ddr => 0,
        NodeId::Cxl => 1,
    }
}

impl PerfMonitor {
    /// A monitor with an empty window starting at time zero.
    pub fn new() -> PerfMonitor {
        PerfMonitor::default()
    }

    /// Records one 64 B DRAM read (an LLC miss fill) on `node`.
    pub fn record_read(&mut self, node: NodeId) {
        self.window_reads[idx(node)] += 1;
        self.total_reads[idx(node)] += 1;
    }

    /// Records one 64 B DRAM write (a dirty writeback) on `node`.
    pub fn record_writeback(&mut self, node: NodeId) {
        self.total_writebacks[idx(node)] += 1;
    }

    /// Reads the current window's stats for `node` as of `now` without
    /// closing the window.
    pub fn window(&self, node: NodeId, now: Nanos) -> BandwidthStats {
        BandwidthStats {
            reads: self.window_reads[idx(node)],
            window: now.saturating_sub(self.window_start),
        }
    }

    /// Closes the measurement window: returns both nodes' stats and starts a
    /// fresh window at `now`.
    pub fn rollover(&mut self, now: Nanos) -> [BandwidthStats; 2] {
        let out = [self.window(NodeId::Ddr, now), self.window(NodeId::Cxl, now)];
        self.window_reads = [0; 2];
        self.window_start = now;
        out
    }

    /// Cumulative 64 B reads served by `node` since construction.
    pub fn total_reads(&self, node: NodeId) -> u64 {
        self.total_reads[idx(node)]
    }

    /// Cumulative 64 B writebacks absorbed by `node` since construction.
    pub fn total_writebacks(&self, node: NodeId) -> u64 {
        self.total_writebacks[idx(node)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_bandwidth() {
        let mut pm = PerfMonitor::new();
        for _ in 0..1000 {
            pm.record_read(NodeId::Cxl);
        }
        let w = pm.window(NodeId::Cxl, Nanos::from_micros(64));
        assert_eq!(w.reads, 1000);
        // 64 kB in 64 µs = 1 GB/s.
        assert!((w.bytes_per_sec() - 1e9).abs() < 1.0);
    }

    #[test]
    fn rollover_resets_window_but_not_totals() {
        let mut pm = PerfMonitor::new();
        pm.record_read(NodeId::Ddr);
        pm.record_read(NodeId::Ddr);
        let [ddr, cxl] = pm.rollover(Nanos(100));
        assert_eq!(ddr.reads, 2);
        assert_eq!(cxl.reads, 0);
        assert_eq!(pm.window(NodeId::Ddr, Nanos(150)).reads, 0);
        assert_eq!(pm.window(NodeId::Ddr, Nanos(150)).window, Nanos(50));
        assert_eq!(pm.total_reads(NodeId::Ddr), 2);
    }

    #[test]
    fn empty_window_has_zero_bandwidth() {
        let s = BandwidthStats {
            reads: 5,
            window: Nanos::ZERO,
        };
        assert_eq!(s.bytes_per_sec(), 0.0);
    }

    #[test]
    fn writebacks_tracked_separately_from_reads() {
        let mut pm = PerfMonitor::new();
        pm.record_writeback(NodeId::Cxl);
        assert_eq!(pm.total_writebacks(NodeId::Cxl), 1);
        assert_eq!(pm.total_reads(NodeId::Cxl), 0);
        assert_eq!(pm.window(NodeId::Cxl, Nanos(10)).reads, 0);
    }
}
