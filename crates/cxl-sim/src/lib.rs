//! # cxl-sim — a tiered-memory (DDR + CXL) system simulator
//!
//! This crate is the substrate for the M5 reproduction. It models, in
//! software, every hardware and kernel component the ASPLOS'25 paper
//! *"M5: Mastering Page Migration and Memory Management for CXL-based
//! Tiered Memory Systems"* depends on:
//!
//! * a two-tier physical memory ([`memory`]): fast DDR DRAM and slow CXL DRAM,
//!   with per-node latency and read-bandwidth accounting,
//! * x86-style paging ([`paging`]) with present/accessed/dirty bits, page
//!   pinning, and NUMA placement,
//! * per-core TLBs ([`tlb`]) whose miss behaviour drives the accessed-bit
//!   semantics that DAMON and ANB rely on,
//! * a set-associative, write-allocate last-level cache ([`cache`]) that
//!   cache-filters application accesses so that profilers and trackers only
//!   observe true DRAM traffic,
//! * a CXL controller snoop bus ([`controller`]) where near-memory devices
//!   (PAC, WAC, HPT, HWT — implemented in the `m5-profilers` and `m5-core`
//!   crates) observe every access to CXL DRAM,
//! * a page-migration engine ([`migration`]) with the cost model of Linux
//!   `migrate_pages()`, made crash-consistent by a write-ahead migration
//!   journal ([`journal`]) whose transactions can be rolled back or
//!   replayed after a controller reset ([`system::System::recover`]),
//! * a Multi-Generational LRU ([`mglru`]) used to pick demotion victims,
//! * a deterministic fault injector ([`faults`]) that schedules CXL latency
//!   spikes, controller stalls, poisoned lines, SRAM counter corruption,
//!   migration copy failures and DDR pressure so robustness can be tested
//!   reproducibly,
//! * a kernel-time ledger ([`kernel`]) that bills PTE scans, TLB shootdowns,
//!   hinting faults, migrations and manager work against application time,
//!   reproducing the co-located-core interference methodology of the paper's
//!   §4.2, and
//! * a composed machine ([`system`]) with a run loop ([`system::run`]) that
//!   drives a workload through the whole stack and produces a
//!   [`report::RunReport`].
//!
//! ## Quick example
//!
//! ```
//! use cxl_sim::prelude::*;
//!
//! let mut system = System::new(SystemConfig::small());
//! let region = system.alloc_region(64, Placement::AllOnCxl).unwrap();
//! // Touch the first byte of every page.
//! for page in 0..64u64 {
//!     let outcome = system.access(region.base.offset(page * PAGE_SIZE as u64), false);
//!     assert!(outcome.latency > Nanos(0));
//! }
//! assert_eq!(system.nr_pages(NodeId::CXL), 64);
//! ```
//!
//! The [`system::run`] driver additionally understands
//! [`system::MigrationDaemon`]s (ANB, DAMON, or the M5-manager) and periodic
//! wakeups.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod cache;
pub mod checkpoint;
pub mod chunk;
pub mod config;
pub mod contention;
pub mod controller;
pub mod faults;
pub mod hotlog;
pub mod journal;
pub mod kernel;
pub mod memory;
pub mod mglru;
pub mod migration;
pub mod oplog;
pub mod paging;
pub mod perfmon;
pub mod ras;
pub mod report;
pub mod system;
pub mod time;
pub mod tlb;
pub mod trace;

pub use m5_telemetry as telemetry;

/// Convenience re-exports of the types needed to assemble and drive a system.
pub mod prelude {
    pub use crate::addr::{
        CacheLineAddr, Pfn, PhysAddr, VirtAddr, Vpn, WordIndex, PAGE_SIZE, WORDS_PER_PAGE,
        WORD_SIZE,
    };
    pub use crate::cache::LlcConfig;
    pub use crate::checkpoint::{
        Checkpoint, CheckpointError, CodecError, LoadedCheckpoint, RestoreError, StateReader,
        StateWriter,
    };
    pub use crate::chunk::AccessChunk;
    pub use crate::config::{Placement, SystemConfig};
    pub use crate::contention::{Contention, ContentionConfig, LinkParams, TrafficClass};
    pub use crate::controller::{CxlDevice, DeviceHandle};
    pub use crate::faults::{
        DeviceFault, FaultClass, FaultEvent, FaultKind, FaultPlan, ScheduledFault, SimError,
    };
    pub use crate::journal::{
        JournalCounters, MigrationJournal, MigrationTxn, RecoveryReport, TxnId, TxnState,
    };
    pub use crate::kernel::{CostKind, KernelCosts};
    pub use crate::memory::NodeId;
    pub use crate::perfmon::BandwidthStats;
    pub use crate::ras::{EvacuationReport, NodeHealth, RasConfig, RasState};
    pub use crate::report::{HealthReport, RunReport};
    pub use crate::system::{
        Access, AccessOutcome, AccessStream, BatchPause, ChunkedRun, MigrationDaemon,
        RasServiceReport, System, SystemStats,
    };
    pub use crate::time::Nanos;
    pub use m5_telemetry::{
        JsonlSink, MemorySink, MetricsSnapshot, SpanId, SummarySink, Telemetry,
    };
}
