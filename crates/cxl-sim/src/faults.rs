//! Deterministic fault injection for the CXL tier (robustness harness).
//!
//! Real CXL memory expansion is a *device*: it can run slow (thermal
//! throttling, link retraining), go mute (controller resets), hand back
//! poisoned cache lines (ECC), or corrupt its near-memory SRAM state
//! (PAC/WAC/HPT/HWT counters are not protected like host DRAM). A manager
//! that only works on a healthy device is not a manager. This module gives
//! the simulator a way to schedule those failures — reproducibly — so the
//! rest of the stack can prove it degrades instead of crashing.
//!
//! The design has three layers:
//!
//! * [`FaultPlan`] — *what* goes wrong and *when*, as a sorted schedule of
//!   [`ScheduledFault`]s. Plans are built explicitly ([`FaultPlan::with`])
//!   or pseudo-randomly from a seed ([`FaultPlan::chaos`]). A plan is pure
//!   data: two runs with the same workload seed and the same plan produce
//!   identical [`crate::report::RunReport`]s.
//! * [`FaultInjector`] — the runtime consulted by
//!   [`crate::system::System`] on every access and migration. It arms
//!   scheduled faults as simulated time passes, answers "is a stall window
//!   active?"-style queries, and keeps a per-class ledger for the report.
//! * [`DeviceFault`] — the command delivered to near-memory devices
//!   ([`crate::controller::CxlDevice::on_fault`]) so trackers and
//!   profilers can flip, saturate, or kill their SRAM counters.
//!
//! Everything is driven by the *simulated* clock, never wall time, and the
//! empty plan ([`FaultPlan::none`]) is the default everywhere — a run
//! without faults is byte-identical to a run on a build that predates this
//! module.

use crate::addr::VirtAddr;
use crate::memory::OutOfFrames;
use crate::migration::MigrateError;
use crate::time::Nanos;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// The taxonomy of injectable faults, used for counting and reporting.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// CXL access latency inflated for a window (link retraining, thermal
    /// throttling).
    LatencySpike,
    /// The controller stops forwarding snoops for a window: near-memory
    /// devices observe nothing (transient controller stall/reset).
    ControllerStall,
    /// A CXL DRAM read returns a poisoned cache line (uncorrectable ECC);
    /// the kernel's memory-failure handling recovers it.
    PoisonedLine,
    /// A single SRAM counter bit flips in every attached device.
    CounterBitFlip,
    /// Every SRAM counter in every attached device saturates at once.
    CounterSaturation,
    /// A near-memory device fails permanently and returns garbage.
    DeviceFailure,
    /// `migrate_pages()`' copy phase fails transiently (DMA error).
    MigrationCopyFail,
    /// DDR allocations fail artificially for a window (external memory
    /// pressure on the fast tier).
    DdrPressure,
    /// The CXL controller resets mid-migration: in-flight transactions are
    /// lost and the migration engine is fenced until
    /// [`crate::system::System::recover`] replays the journal.
    ControllerReset,
    /// A CXL DRAM read was corrected by ECC: harmless in isolation, but
    /// the RAS layer trends the per-frame count and soft-offlines frames
    /// that keep correcting.
    CorrectableEcc,
    /// The CXL link renegotiates to a degraded rate; accesses to the node
    /// slow down by a multiplicative factor until the node is retired.
    LinkDegrade,
    /// The operator (or fabric manager) announces an orderly hot-remove:
    /// the node must be evacuated live and taken offline.
    HotRemove,
    /// The next checkpoint commit crashes mid-write, leaving a torn
    /// snapshot on disk. Consumed by the checkpointing harness (not the
    /// `System` hot path): the commit is truncated at a manifest section
    /// boundary so restore must either reject it and fall back or — for a
    /// crash between the commit renames — find the previous snapshot
    /// still valid.
    TornCheckpoint,
}

impl FaultClass {
    /// All classes, in display order. The RAS classes are appended *after*
    /// the original nine — and [`FaultClass::TornCheckpoint`] after those —
    /// so [`FaultPlan::chaos`]'s per-class RNG draws for the earlier
    /// classes are unchanged for a given seed.
    pub const ALL: [FaultClass; 13] = [
        FaultClass::LatencySpike,
        FaultClass::ControllerStall,
        FaultClass::PoisonedLine,
        FaultClass::CounterBitFlip,
        FaultClass::CounterSaturation,
        FaultClass::DeviceFailure,
        FaultClass::MigrationCopyFail,
        FaultClass::DdrPressure,
        FaultClass::ControllerReset,
        FaultClass::CorrectableEcc,
        FaultClass::LinkDegrade,
        FaultClass::HotRemove,
        FaultClass::TornCheckpoint,
    ];

    fn index(self) -> usize {
        match self {
            FaultClass::LatencySpike => 0,
            FaultClass::ControllerStall => 1,
            FaultClass::PoisonedLine => 2,
            FaultClass::CounterBitFlip => 3,
            FaultClass::CounterSaturation => 4,
            FaultClass::DeviceFailure => 5,
            FaultClass::MigrationCopyFail => 6,
            FaultClass::DdrPressure => 7,
            FaultClass::ControllerReset => 8,
            FaultClass::CorrectableEcc => 9,
            FaultClass::LinkDegrade => 10,
            FaultClass::HotRemove => 11,
            FaultClass::TornCheckpoint => 12,
        }
    }

    fn from_index(i: u64) -> Option<FaultClass> {
        FaultClass::ALL.get(i as usize).copied()
    }

    /// The class's stable kebab-case name (also used as a telemetry label).
    pub const fn label(self) -> &'static str {
        match self {
            FaultClass::LatencySpike => "latency-spike",
            FaultClass::ControllerStall => "controller-stall",
            FaultClass::PoisonedLine => "poisoned-line",
            FaultClass::CounterBitFlip => "counter-bit-flip",
            FaultClass::CounterSaturation => "counter-saturation",
            FaultClass::DeviceFailure => "device-failure",
            FaultClass::MigrationCopyFail => "migration-copy-fail",
            FaultClass::DdrPressure => "ddr-pressure",
            FaultClass::ControllerReset => "controller-reset",
            FaultClass::CorrectableEcc => "correctable-ecc",
            FaultClass::LinkDegrade => "link-degrade",
            FaultClass::HotRemove => "hot-remove",
            FaultClass::TornCheckpoint => "torn-checkpoint",
        }
    }
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A fault command delivered to attached [`crate::controller::CxlDevice`]s.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeviceFault {
    /// Flip bit `bit` of SRAM counter slot `slot` (devices reduce both
    /// modulo their own geometry).
    SramBitFlip {
        /// Counter slot index (device reduces modulo its SRAM size).
        slot: u64,
        /// Bit position to flip (device reduces modulo its counter width).
        bit: u32,
    },
    /// Saturate every SRAM counter to its maximum value.
    SramSaturate,
    /// Permanent failure: the device stops tracking and serves garbage.
    Fail,
    /// ECC corrected a read of CXL frame `pfn` (a raw frame index the RAS
    /// layer reduces modulo the node's capacity, like `SramBitFlip::slot`).
    /// Routed to [`crate::ras::RasState`], never to snoop devices.
    CorrectableEcc {
        /// Frame index on the CXL node (reduced modulo capacity).
        pfn: u64,
    },
    /// The CXL link retrained to `factor` percent of nominal latency
    /// (`factor >= 100`; 150 means reads take 1.5× as long). Persistent
    /// until the node is retired. Routed to the RAS layer.
    LinkDegrade {
        /// New access latency as a percentage of nominal (>= 100).
        factor: u32,
    },
    /// Orderly hot-remove announcement: the RAS layer must evacuate the
    /// node live and take it offline. Routed to the RAS layer.
    HotRemovePrepare,
}

impl DeviceFault {
    /// The report class of this device fault.
    pub fn class(self) -> FaultClass {
        match self {
            DeviceFault::SramBitFlip { .. } => FaultClass::CounterBitFlip,
            DeviceFault::SramSaturate => FaultClass::CounterSaturation,
            DeviceFault::Fail => FaultClass::DeviceFailure,
            DeviceFault::CorrectableEcc { .. } => FaultClass::CorrectableEcc,
            DeviceFault::LinkDegrade { .. } => FaultClass::LinkDegrade,
            DeviceFault::HotRemovePrepare => FaultClass::HotRemove,
        }
    }

    /// Whether this fault targets the memory device's RAS machinery (and is
    /// therefore delivered to [`crate::ras::RasState`]) rather than the
    /// attached near-memory snoop devices.
    pub fn is_ras(self) -> bool {
        matches!(
            self,
            DeviceFault::CorrectableEcc { .. }
                | DeviceFault::LinkDegrade { .. }
                | DeviceFault::HotRemovePrepare
        )
    }
}

/// What a [`ScheduledFault`] does when it triggers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Add `extra` to every CXL DRAM access for `duration`.
    LatencySpike {
        /// Additional latency per CXL access while active.
        extra: Nanos,
        /// Window length.
        duration: Nanos,
    },
    /// Drop all snoops for `duration` (devices observe nothing).
    ControllerStall {
        /// Window length.
        duration: Nanos,
    },
    /// Poison the next `reads` CXL miss fills.
    PoisonLine {
        /// Number of subsequent CXL reads that return poison.
        reads: u32,
    },
    /// Deliver a [`DeviceFault`] to every attached device.
    Device(DeviceFault),
    /// Fail the next `attempts` page-migration copies.
    MigrationCopyFail {
        /// Number of subsequent migration attempts that fail.
        attempts: u32,
    },
    /// Make DDR allocations fail for `duration`.
    DdrPressure {
        /// Window length.
        duration: Nanos,
    },
    /// Reset the CXL controller at migration-journal step `at_step` (the
    /// first append whose step counter reaches it after the fault arms):
    /// the in-flight migration dies at exactly that write-ahead boundary
    /// and the engine is fenced until [`crate::system::System::recover`]
    /// runs. Journal-step addressing — rather than a timestamp — is what
    /// lets the crash-point sweep hit *every* transaction state
    /// deterministically.
    ControllerReset {
        /// Journal step index at which the reset strikes.
        at_step: u64,
    },
    /// Tear the next checkpoint commit: the snapshot write crashes after
    /// `at_section` manifest sections have reached disk (an index `>=` the
    /// section count models a crash between the commit renames — the new
    /// snapshot is complete but never promoted into place). Consumed by
    /// the checkpointing harness via
    /// [`FaultInjector::take_torn_checkpoint`].
    TornCheckpoint {
        /// Manifest section index at which the commit is cut short.
        at_section: u64,
    },
}

impl FaultKind {
    /// The report class of this fault.
    pub fn class(self) -> FaultClass {
        match self {
            FaultKind::LatencySpike { .. } => FaultClass::LatencySpike,
            FaultKind::ControllerStall { .. } => FaultClass::ControllerStall,
            FaultKind::PoisonLine { .. } => FaultClass::PoisonedLine,
            FaultKind::Device(d) => d.class(),
            FaultKind::MigrationCopyFail { .. } => FaultClass::MigrationCopyFail,
            FaultKind::DdrPressure { .. } => FaultClass::DdrPressure,
            FaultKind::ControllerReset { .. } => FaultClass::ControllerReset,
            FaultKind::TornCheckpoint { .. } => FaultClass::TornCheckpoint,
        }
    }
}

/// One fault on the schedule: trigger at simulated instant `at`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScheduledFault {
    /// Simulated instant at (or after) which the fault triggers.
    pub at: Nanos,
    /// What happens.
    pub kind: FaultKind,
}

/// One fault that actually triggered, for the run log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// Simulated instant at which the fault armed.
    pub at: Nanos,
    /// Its class.
    pub class: FaultClass,
}

/// A deterministic schedule of faults. Pure data: cloneable, comparable,
/// and reusable across systems.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    schedule: Vec<ScheduledFault>,
}

impl FaultPlan {
    /// The empty plan: nothing ever goes wrong. This is the default used by
    /// `System::new`, so fault-free runs are unchanged by this module.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// A plan from an explicit schedule (sorted by trigger time; ties keep
    /// insertion order).
    pub fn from_schedule(mut schedule: Vec<ScheduledFault>) -> FaultPlan {
        schedule.sort_by_key(|f| f.at);
        FaultPlan { schedule }
    }

    /// Builder-style: adds one fault and returns the plan.
    pub fn with(mut self, at: Nanos, kind: FaultKind) -> FaultPlan {
        self.schedule.push(ScheduledFault { at, kind });
        self.schedule.sort_by_key(|f| f.at);
        self
    }

    /// A seeded pseudo-random mix of every fault class spread over
    /// `[0, horizon)` — the chaos-harness workhorse. The same `seed` and
    /// `horizon` always produce the same plan.
    pub fn chaos(seed: u64, horizon: Nanos) -> FaultPlan {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x4d35_fa17);
        let mut schedule = Vec::new();
        let span = horizon.0.max(8);
        let window = Nanos(span / 20 + 1);
        for class in FaultClass::ALL {
            // Torn checkpoints are harness-level faults: they only matter to
            // runs that actually checkpoint, and scheduling them here would
            // change every existing chaos plan's RNG stream. Skipped before
            // any draw so plans for a given seed are unchanged.
            if class == FaultClass::TornCheckpoint {
                continue;
            }
            for _ in 0..rng.gen_range(1u32..=3) {
                let at = Nanos(rng.gen_range(0..span));
                let kind = match class {
                    FaultClass::LatencySpike => FaultKind::LatencySpike {
                        extra: Nanos(rng.gen_range(100u64..=1_000)),
                        duration: window,
                    },
                    FaultClass::ControllerStall => FaultKind::ControllerStall { duration: window },
                    FaultClass::PoisonedLine => FaultKind::PoisonLine {
                        reads: rng.gen_range(1u32..=4),
                    },
                    FaultClass::CounterBitFlip => FaultKind::Device(DeviceFault::SramBitFlip {
                        slot: rng.gen(),
                        bit: rng.gen_range(0u32..16),
                    }),
                    FaultClass::CounterSaturation => FaultKind::Device(DeviceFault::SramSaturate),
                    FaultClass::DeviceFailure => FaultKind::Device(DeviceFault::Fail),
                    FaultClass::MigrationCopyFail => FaultKind::MigrationCopyFail {
                        attempts: rng.gen_range(1u32..=8),
                    },
                    FaultClass::DdrPressure => FaultKind::DdrPressure { duration: window },
                    FaultClass::ControllerReset => FaultKind::ControllerReset {
                        at_step: rng.gen_range(1u64..=48),
                    },
                    // CE hits are drawn from a small "weak region" so the
                    // same frame can cross the offline threshold within one
                    // campaign — uniformly random frames almost never repeat.
                    FaultClass::CorrectableEcc => FaultKind::Device(DeviceFault::CorrectableEcc {
                        pfn: rng.gen_range(0u64..8),
                    }),
                    FaultClass::LinkDegrade => FaultKind::Device(DeviceFault::LinkDegrade {
                        factor: rng.gen_range(110u32..=300),
                    }),
                    FaultClass::HotRemove => FaultKind::Device(DeviceFault::HotRemovePrepare),
                    // Skipped above before any RNG draw.
                    FaultClass::TornCheckpoint => continue,
                };
                schedule.push(ScheduledFault { at, kind });
            }
        }
        FaultPlan::from_schedule(schedule)
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.schedule.is_empty()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.schedule.len()
    }

    /// The schedule, sorted by trigger time.
    pub fn schedule(&self) -> &[ScheduledFault] {
        &self.schedule
    }
}

/// The runtime that arms [`FaultPlan`] entries as simulated time passes and
/// answers the `System`'s "what is broken right now?" queries.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    schedule: Vec<ScheduledFault>,
    next: usize,
    spike_extra: Nanos,
    spike_until: Nanos,
    stall_until: Nanos,
    pressure_until: Nanos,
    poison_pending: u32,
    copy_fail_pending: u32,
    reset_steps: Vec<u64>,
    torn_sections: Vec<u64>,
    device_queue: Vec<DeviceFault>,
    ras_queue: Vec<DeviceFault>,
    log: Vec<FaultEvent>,
    counts: [u64; FaultClass::ALL.len()],
    poison_repairs: u64,
}

impl Default for FaultInjector {
    fn default() -> FaultInjector {
        FaultInjector::none()
    }
}

impl FaultInjector {
    /// An injector that never injects.
    pub fn none() -> FaultInjector {
        FaultInjector::from_plan(&FaultPlan::none())
    }

    /// An injector executing `plan`.
    pub fn from_plan(plan: &FaultPlan) -> FaultInjector {
        FaultInjector {
            schedule: plan.schedule.clone(),
            next: 0,
            spike_extra: Nanos::ZERO,
            spike_until: Nanos::ZERO,
            stall_until: Nanos::ZERO,
            pressure_until: Nanos::ZERO,
            poison_pending: 0,
            copy_fail_pending: 0,
            reset_steps: Vec::new(),
            torn_sections: Vec::new(),
            device_queue: Vec::new(),
            ras_queue: Vec::new(),
            log: Vec::new(),
            counts: [0; FaultClass::ALL.len()],
            poison_repairs: 0,
        }
    }

    /// Arms every scheduled fault whose trigger time has passed. Called by
    /// the `System` on each access and migration; cheap when idle.
    #[inline]
    pub fn poll(&mut self, now: Nanos) {
        while let Some(f) = self.schedule.get(self.next) {
            if f.at > now {
                break;
            }
            let f = *f;
            self.next += 1;
            self.counts[f.kind.class().index()] += 1;
            self.log.push(FaultEvent {
                at: now,
                class: f.kind.class(),
            });
            match f.kind {
                FaultKind::LatencySpike { extra, duration } => {
                    self.spike_extra = self.spike_extra.max(extra);
                    self.spike_until = self.spike_until.max(now + duration);
                }
                FaultKind::ControllerStall { duration } => {
                    self.stall_until = self.stall_until.max(now + duration);
                }
                FaultKind::PoisonLine { reads } => {
                    self.poison_pending += reads;
                }
                FaultKind::Device(d) if d.is_ras() => self.ras_queue.push(d),
                FaultKind::Device(d) => self.device_queue.push(d),
                FaultKind::MigrationCopyFail { attempts } => {
                    self.copy_fail_pending += attempts;
                }
                FaultKind::DdrPressure { duration } => {
                    self.pressure_until = self.pressure_until.max(now + duration);
                }
                FaultKind::ControllerReset { at_step } => {
                    self.reset_steps.push(at_step);
                }
                FaultKind::TornCheckpoint { at_section } => {
                    self.torn_sections.push(at_section);
                }
            }
        }
    }

    /// Whether the injector has nothing armed, queued, or in flight at
    /// `now`: no unfired schedule entries, no open latency/stall/pressure
    /// window, and no pending consumable faults. The `System` uses this to
    /// skip per-access fault tracing entirely on fault-free runs.
    #[inline]
    pub fn quiescent(&self, now: Nanos) -> bool {
        self.next >= self.schedule.len()
            && now >= self.spike_until
            && now >= self.stall_until
            && now >= self.pressure_until
            && self.poison_pending == 0
            && self.copy_fail_pending == 0
            && self.reset_steps.is_empty()
            && self.torn_sections.is_empty()
            && self.device_queue.is_empty()
            && self.ras_queue.is_empty()
    }

    /// The trigger time of the earliest scheduled fault [`poll`] has not
    /// yet armed, or `None` when the schedule is exhausted. Combined with
    /// [`quiescent`], this bounds how long the injector is *guaranteed* to
    /// stay quiescent: a quiescent injector cannot open a window, queue a
    /// device fault, or arm a consumable before this instant, so the batch
    /// driver hoists every per-access fault check out of its inner loop up
    /// to it.
    ///
    /// [`poll`]: FaultInjector::poll
    /// [`quiescent`]: FaultInjector::quiescent
    #[inline]
    pub fn next_scheduled(&self) -> Option<Nanos> {
        self.schedule.get(self.next).map(|f| f.at)
    }

    /// Extra latency added to a CXL access at `now` (zero outside spikes).
    #[inline]
    pub fn cxl_extra_latency(&self, now: Nanos) -> Nanos {
        if now < self.spike_until {
            self.spike_extra
        } else {
            Nanos::ZERO
        }
    }

    /// Whether the controller is stalled (snoops dropped) at `now`.
    #[inline]
    pub fn controller_stalled(&self, now: Nanos) -> bool {
        now < self.stall_until
    }

    /// How much longer the current controller stall lasts at `now` (zero
    /// when no stall is active). The migration watchdog compares this to
    /// its deadline to decide between waiting out the stall and rolling
    /// the transaction back.
    pub fn stall_remaining(&self, now: Nanos) -> Nanos {
        if now < self.stall_until {
            Nanos(self.stall_until.0 - now.0)
        } else {
            Nanos::ZERO
        }
    }

    /// Consumes the controller reset armed for the lowest journal step
    /// index `<= step`, if any. Called by the `System` immediately after
    /// each journal append; `step` is the post-append step counter.
    pub fn take_reset(&mut self, step: u64) -> bool {
        let due = self
            .reset_steps
            .iter()
            .enumerate()
            .filter(|(_, &s)| s <= step)
            .min_by_key(|(_, &s)| s)
            .map(|(i, _)| i);
        match due {
            Some(i) => {
                self.reset_steps.swap_remove(i);
                true
            }
            None => false,
        }
    }

    /// Whether any armed controller reset has not yet struck.
    pub fn reset_pending(&self) -> bool {
        !self.reset_steps.is_empty()
    }

    /// Consumes the next armed torn-checkpoint fault, if any, returning the
    /// manifest section index at which the commit must be cut short. Called
    /// by the checkpointing harness immediately before each commit.
    pub fn take_torn_checkpoint(&mut self) -> Option<u64> {
        if self.torn_sections.is_empty() {
            None
        } else {
            Some(self.torn_sections.remove(0))
        }
    }

    /// Whether an armed torn-checkpoint fault has not yet been consumed.
    pub fn torn_checkpoint_pending(&self) -> bool {
        !self.torn_sections.is_empty()
    }

    /// Whether DDR allocations are artificially failing at `now`.
    pub fn ddr_pressure(&self, now: Nanos) -> bool {
        now < self.pressure_until
    }

    /// Consumes one pending poisoned read, if armed.
    pub fn take_poisoned_read(&mut self) -> bool {
        if self.poison_pending > 0 {
            self.poison_pending -= 1;
            true
        } else {
            false
        }
    }

    /// Consumes one pending migration copy failure, if armed.
    pub fn take_copy_failure(&mut self) -> bool {
        if self.copy_fail_pending > 0 {
            self.copy_fail_pending -= 1;
            true
        } else {
            false
        }
    }

    /// Pops the next queued device fault for controller delivery.
    #[inline]
    pub fn pop_device_fault(&mut self) -> Option<DeviceFault> {
        if self.device_queue.is_empty() {
            None
        } else {
            Some(self.device_queue.remove(0))
        }
    }

    /// Pops the next queued RAS fault ([`DeviceFault::is_ras`]) for
    /// delivery to the memory device's [`crate::ras::RasState`].
    #[inline]
    pub fn pop_ras_fault(&mut self) -> Option<DeviceFault> {
        if self.ras_queue.is_empty() {
            None
        } else {
            Some(self.ras_queue.remove(0))
        }
    }

    /// Records one poisoned line recovered by memory-failure handling.
    pub fn note_poison_repaired(&mut self) {
        self.poison_repairs += 1;
    }

    /// Poisoned lines recovered so far.
    pub fn poison_repairs(&self) -> u64 {
        self.poison_repairs
    }

    /// Every fault that has armed so far, in arming order.
    pub fn log(&self) -> &[FaultEvent] {
        &self.log
    }

    /// Total faults armed so far.
    pub fn injected_total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Faults of `class` armed so far.
    pub fn count_of(&self, class: FaultClass) -> u64 {
        self.counts[class.index()]
    }

    /// Serializes the injector's dynamic state for a checkpoint. The
    /// schedule itself is not written — it is pure plan data the restoring
    /// process supplies again — only the arming cursor and everything armed
    /// but not yet consumed.
    pub fn save(&self, w: &mut crate::checkpoint::StateWriter) {
        w.put_u64(self.next as u64);
        w.put_u64(self.spike_extra.0);
        w.put_u64(self.spike_until.0);
        w.put_u64(self.stall_until.0);
        w.put_u64(self.pressure_until.0);
        w.put_u32(self.poison_pending);
        w.put_u32(self.copy_fail_pending);
        w.put_u64_slice(&self.reset_steps);
        w.put_u64_slice(&self.torn_sections);
        w.put_u64(self.device_queue.len() as u64);
        for d in &self.device_queue {
            save_device_fault(*d, w);
        }
        w.put_u64(self.ras_queue.len() as u64);
        for d in &self.ras_queue {
            save_device_fault(*d, w);
        }
        w.put_u64(self.log.len() as u64);
        for e in &self.log {
            w.put_u64(e.at.0);
            w.put_u64(e.class.index() as u64);
        }
        for c in &self.counts {
            w.put_u64(*c);
        }
        w.put_u64(self.poison_repairs);
    }

    /// Rebuilds an injector executing `plan` from a checkpoint section.
    /// The supplied plan must be the one the checkpointed run used; the
    /// arming cursor is validated against its length.
    ///
    /// # Errors
    ///
    /// Propagates codec errors from a truncated or corrupt payload, or a
    /// cursor past the end of `plan`.
    pub fn restore(
        plan: &FaultPlan,
        r: &mut crate::checkpoint::StateReader<'_>,
    ) -> Result<FaultInjector, crate::checkpoint::CodecError> {
        use crate::checkpoint::CodecError;
        let mut inj = FaultInjector::from_plan(plan);
        let next = r.get_u64()?;
        if next as usize > inj.schedule.len() {
            return Err(CodecError::BadValue {
                what: "fault-injector schedule cursor",
                value: next,
            });
        }
        inj.next = next as usize;
        inj.spike_extra = Nanos(r.get_u64()?);
        inj.spike_until = Nanos(r.get_u64()?);
        inj.stall_until = Nanos(r.get_u64()?);
        inj.pressure_until = Nanos(r.get_u64()?);
        inj.poison_pending = r.get_u32()?;
        inj.copy_fail_pending = r.get_u32()?;
        inj.reset_steps = r.get_u64_vec()?;
        inj.torn_sections = r.get_u64_vec()?;
        let n_dev = r.get_u64()?;
        for _ in 0..n_dev {
            inj.device_queue.push(restore_device_fault(r)?);
        }
        let n_ras = r.get_u64()?;
        for _ in 0..n_ras {
            inj.ras_queue.push(restore_device_fault(r)?);
        }
        let n_log = r.get_u64()?;
        for _ in 0..n_log {
            let at = Nanos(r.get_u64()?);
            let idx = r.get_u64()?;
            let class = FaultClass::from_index(idx).ok_or(CodecError::BadValue {
                what: "fault-event class",
                value: idx,
            })?;
            inj.log.push(FaultEvent { at, class });
        }
        for c in &mut inj.counts {
            *c = r.get_u64()?;
        }
        inj.poison_repairs = r.get_u64()?;
        Ok(inj)
    }
}

fn save_device_fault(d: DeviceFault, w: &mut crate::checkpoint::StateWriter) {
    match d {
        DeviceFault::SramBitFlip { slot, bit } => {
            w.put_u8(0);
            w.put_u64(slot);
            w.put_u32(bit);
        }
        DeviceFault::SramSaturate => w.put_u8(1),
        DeviceFault::Fail => w.put_u8(2),
        DeviceFault::CorrectableEcc { pfn } => {
            w.put_u8(3);
            w.put_u64(pfn);
        }
        DeviceFault::LinkDegrade { factor } => {
            w.put_u8(4);
            w.put_u32(factor);
        }
        DeviceFault::HotRemovePrepare => w.put_u8(5),
    }
}

fn restore_device_fault(
    r: &mut crate::checkpoint::StateReader<'_>,
) -> Result<DeviceFault, crate::checkpoint::CodecError> {
    let tag = r.get_u8()?;
    Ok(match tag {
        0 => DeviceFault::SramBitFlip {
            slot: r.get_u64()?,
            bit: r.get_u32()?,
        },
        1 => DeviceFault::SramSaturate,
        2 => DeviceFault::Fail,
        3 => DeviceFault::CorrectableEcc { pfn: r.get_u64()? },
        4 => DeviceFault::LinkDegrade {
            factor: r.get_u32()?,
        },
        5 => DeviceFault::HotRemovePrepare,
        t => {
            return Err(crate::checkpoint::CodecError::BadValue {
                what: "device-fault tag",
                value: t as u64,
            })
        }
    })
}

/// Unified simulator error taxonomy: things that can go wrong on the hot
/// paths and are *recoverable* by the caller (as opposed to invariant
/// violations, which remain `debug_assert!`s).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimError {
    /// An access touched an address no region maps.
    Unmapped(VirtAddr),
    /// A page migration failed.
    Migrate(MigrateError),
    /// A frame allocation failed.
    OutOfFrames(OutOfFrames),
    /// An allocation targeted a node the RAS layer has taken offline.
    NodeOffline(crate::memory::NodeId),
    /// No node in the tier can absorb the request: the survivor's free
    /// list is exhausted (e.g. mid-evacuation drain with a full fast tier).
    CapacityExhausted(crate::memory::NodeId),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Unmapped(a) => write!(f, "access to unmapped address {a:?}"),
            SimError::Migrate(e) => write!(f, "migration failed: {e}"),
            SimError::OutOfFrames(e) => write!(f, "allocation failed: {e}"),
            SimError::NodeOffline(n) => write!(f, "allocation on offline node {}", n.label()),
            SimError::CapacityExhausted(n) => {
                write!(f, "capacity exhausted on survivor node {}", n.label())
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Migrate(e) => Some(e),
            SimError::OutOfFrames(e) => Some(e),
            SimError::Unmapped(_) | SimError::NodeOffline(_) | SimError::CapacityExhausted(_) => {
                None
            }
        }
    }
}

impl From<MigrateError> for SimError {
    fn from(e: MigrateError) -> SimError {
        SimError::Migrate(e)
    }
}

impl From<OutOfFrames> for SimError {
    fn from(e: OutOfFrames) -> SimError {
        SimError::OutOfFrames(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_arms() {
        let mut inj = FaultInjector::none();
        inj.poll(Nanos::from_secs(10));
        assert_eq!(inj.injected_total(), 0);
        assert!(inj.log().is_empty());
        assert_eq!(inj.cxl_extra_latency(Nanos(5)), Nanos::ZERO);
        assert!(!inj.controller_stalled(Nanos(5)));
        assert!(!inj.ddr_pressure(Nanos(5)));
        assert!(!inj.take_poisoned_read());
        assert!(!inj.take_copy_failure());
        assert!(inj.pop_device_fault().is_none());
    }

    #[test]
    fn windows_open_and_close_on_the_simulated_clock() {
        let plan = FaultPlan::none()
            .with(
                Nanos(100),
                FaultKind::LatencySpike {
                    extra: Nanos(500),
                    duration: Nanos(50),
                },
            )
            .with(
                Nanos(100),
                FaultKind::ControllerStall {
                    duration: Nanos(30),
                },
            )
            .with(
                Nanos(100),
                FaultKind::DdrPressure {
                    duration: Nanos(70),
                },
            );
        let mut inj = FaultInjector::from_plan(&plan);
        inj.poll(Nanos(99));
        assert_eq!(inj.injected_total(), 0, "nothing due yet");
        inj.poll(Nanos(100));
        assert_eq!(inj.injected_total(), 3);
        assert_eq!(inj.cxl_extra_latency(Nanos(120)), Nanos(500));
        assert!(inj.controller_stalled(Nanos(120)));
        assert!(inj.ddr_pressure(Nanos(120)));
        // Windows close independently.
        assert!(!inj.controller_stalled(Nanos(130)));
        assert_eq!(inj.cxl_extra_latency(Nanos(150)), Nanos::ZERO);
        assert!(inj.ddr_pressure(Nanos(169)));
        assert!(!inj.ddr_pressure(Nanos(170)));
    }

    #[test]
    fn one_shot_faults_are_consumed() {
        let plan = FaultPlan::none()
            .with(Nanos::ZERO, FaultKind::PoisonLine { reads: 2 })
            .with(Nanos::ZERO, FaultKind::MigrationCopyFail { attempts: 1 })
            .with(Nanos::ZERO, FaultKind::Device(DeviceFault::Fail));
        let mut inj = FaultInjector::from_plan(&plan);
        inj.poll(Nanos::ZERO);
        assert!(inj.take_poisoned_read());
        assert!(inj.take_poisoned_read());
        assert!(!inj.take_poisoned_read());
        assert!(inj.take_copy_failure());
        assert!(!inj.take_copy_failure());
        assert_eq!(inj.pop_device_fault(), Some(DeviceFault::Fail));
        assert!(inj.pop_device_fault().is_none());
        assert_eq!(inj.count_of(FaultClass::PoisonedLine), 1);
        assert_eq!(inj.count_of(FaultClass::DeviceFailure), 1);
    }

    #[test]
    fn chaos_plans_are_seed_deterministic_and_cover_all_classes() {
        let a = FaultPlan::chaos(7, Nanos::from_millis(10));
        let b = FaultPlan::chaos(7, Nanos::from_millis(10));
        assert_eq!(a, b, "same seed, same plan");
        let c = FaultPlan::chaos(8, Nanos::from_millis(10));
        assert_ne!(a, c, "different seed, different plan");
        for class in FaultClass::ALL {
            if class == FaultClass::TornCheckpoint {
                // Harness-level fault: excluded from chaos plans so seeded
                // plans predating it are byte-identical.
                assert!(
                    !a.schedule().iter().any(|f| f.kind.class() == class),
                    "chaos plans must not schedule torn checkpoints"
                );
                continue;
            }
            assert!(
                a.schedule().iter().any(|f| f.kind.class() == class),
                "chaos plan misses {class}"
            );
        }
        // Sorted by trigger time.
        assert!(a.schedule().windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn torn_checkpoints_arm_and_consume_in_order() {
        let plan = FaultPlan::none()
            .with(Nanos(10), FaultKind::TornCheckpoint { at_section: 3 })
            .with(Nanos(20), FaultKind::TornCheckpoint { at_section: 0 });
        let mut inj = FaultInjector::from_plan(&plan);
        assert!(inj.take_torn_checkpoint().is_none());
        inj.poll(Nanos(10));
        assert!(inj.torn_checkpoint_pending());
        assert!(!inj.quiescent(Nanos(15)));
        assert_eq!(inj.take_torn_checkpoint(), Some(3));
        assert!(inj.take_torn_checkpoint().is_none());
        inj.poll(Nanos(25));
        assert_eq!(inj.take_torn_checkpoint(), Some(0));
        assert!(!inj.torn_checkpoint_pending());
        assert!(inj.quiescent(Nanos(25)));
        assert_eq!(inj.count_of(FaultClass::TornCheckpoint), 2);
    }

    #[test]
    fn injector_checkpoint_roundtrip_preserves_armed_state() {
        let plan = FaultPlan::none()
            .with(
                Nanos(50),
                FaultKind::LatencySpike {
                    extra: Nanos(700),
                    duration: Nanos(100),
                },
            )
            .with(Nanos(50), FaultKind::PoisonLine { reads: 3 })
            .with(Nanos(60), FaultKind::ControllerReset { at_step: 9 })
            .with(
                Nanos(60),
                FaultKind::Device(DeviceFault::SramBitFlip { slot: 12, bit: 5 }),
            )
            .with(
                Nanos(60),
                FaultKind::Device(DeviceFault::CorrectableEcc { pfn: 4 }),
            )
            .with(Nanos(70), FaultKind::TornCheckpoint { at_section: 2 })
            .with(Nanos(500), FaultKind::Device(DeviceFault::Fail));
        let mut inj = FaultInjector::from_plan(&plan);
        inj.poll(Nanos(80));
        inj.note_poison_repaired();
        assert!(inj.take_poisoned_read());

        let mut w = crate::checkpoint::StateWriter::new();
        inj.save(&mut w);
        let bytes = w.finish();
        let mut r = crate::checkpoint::StateReader::new(&bytes);
        let restored = FaultInjector::restore(&plan, &mut r).unwrap();
        r.expect_end().unwrap();

        assert_eq!(format!("{inj:?}"), format!("{restored:?}"));
        // The unfired schedule entry still arms after restore.
        let mut restored = restored;
        restored.poll(Nanos(500));
        assert_eq!(
            restored.pop_device_fault(),
            Some(DeviceFault::SramBitFlip { slot: 12, bit: 5 })
        );
        assert_eq!(restored.pop_device_fault(), Some(DeviceFault::Fail));
        assert_eq!(restored.take_torn_checkpoint(), Some(2));
        assert!(restored.take_reset(9));
    }

    #[test]
    fn injector_restore_rejects_cursor_past_schedule() {
        let plan = FaultPlan::none().with(Nanos(1), FaultKind::PoisonLine { reads: 1 });
        let mut inj = FaultInjector::from_plan(&plan);
        inj.poll(Nanos(5));
        let mut w = crate::checkpoint::StateWriter::new();
        inj.save(&mut w);
        let bytes = w.finish();
        // Restoring against the empty plan: cursor 1 > schedule length 0.
        let mut r = crate::checkpoint::StateReader::new(&bytes);
        let err = FaultInjector::restore(&FaultPlan::none(), &mut r).unwrap_err();
        assert!(matches!(
            err,
            crate::checkpoint::CodecError::BadValue {
                what: "fault-injector schedule cursor",
                ..
            }
        ));
    }

    #[test]
    fn controller_resets_fire_at_journal_steps() {
        let plan = FaultPlan::none()
            .with(Nanos::ZERO, FaultKind::ControllerReset { at_step: 3 })
            .with(Nanos::ZERO, FaultKind::ControllerReset { at_step: 7 });
        let mut inj = FaultInjector::from_plan(&plan);
        inj.poll(Nanos::ZERO);
        assert_eq!(inj.count_of(FaultClass::ControllerReset), 2);
        assert!(inj.reset_pending());
        assert!(!inj.take_reset(2), "step 2 is before both resets");
        assert!(inj.take_reset(5), "step 5 consumes the step-3 reset");
        assert!(inj.reset_pending());
        assert!(!inj.take_reset(5));
        assert!(inj.take_reset(7));
        assert!(!inj.reset_pending());
        assert!(!inj.take_reset(100));
    }

    #[test]
    fn stall_remaining_tracks_the_window() {
        let plan = FaultPlan::none().with(
            Nanos(100),
            FaultKind::ControllerStall {
                duration: Nanos(40),
            },
        );
        let mut inj = FaultInjector::from_plan(&plan);
        inj.poll(Nanos(100));
        assert_eq!(inj.stall_remaining(Nanos(110)), Nanos(30));
        assert_eq!(inj.stall_remaining(Nanos(140)), Nanos::ZERO);
        assert_eq!(inj.stall_remaining(Nanos(90)), Nanos(50));
    }

    #[test]
    fn sim_error_displays_and_chains() {
        let e = SimError::from(MigrateError::Pinned);
        assert!(e.to_string().contains("migration failed"));
        assert!(std::error::Error::source(&e).is_some());
        let u = SimError::Unmapped(VirtAddr(0x1000));
        assert!(std::error::Error::source(&u).is_none());
        let o = SimError::from(OutOfFrames {
            node: crate::memory::NodeId::Ddr,
        });
        assert!(o.to_string().contains("allocation failed"));
    }

    #[test]
    fn overlapping_spikes_take_the_max() {
        let plan = FaultPlan::none()
            .with(
                Nanos(0),
                FaultKind::LatencySpike {
                    extra: Nanos(200),
                    duration: Nanos(100),
                },
            )
            .with(
                Nanos(10),
                FaultKind::LatencySpike {
                    extra: Nanos(900),
                    duration: Nanos(20),
                },
            );
        let mut inj = FaultInjector::from_plan(&plan);
        inj.poll(Nanos(10));
        assert_eq!(inj.cxl_extra_latency(Nanos(15)), Nanos(900));
        assert_eq!(inj.count_of(FaultClass::LatencySpike), 2);
    }
}
