//! Page-migration types: errors, statistics, and batching helpers.
//!
//! The migration *mechanics* live on [`crate::system::System`] (they need
//! the page table, TLB, LLC, frame allocators, and the kernel-cost ledger at
//! once); this module defines the shared vocabulary.

use crate::addr::CacheLineAddr;
use crate::addr::Vpn;
use crate::journal::TxnState;
use crate::memory::{NodeId, OutOfFrames};
use crate::time::Nanos;
use std::fmt;

/// Why a page could not be migrated, carrying the failing transaction
/// phase/frame where one exists so degradation stats can distinguish
/// rollback causes.
///
/// `Pinned` and `NodeBound` correspond to the Promoter's safety checks in
/// §5.2: pages pinned for DMA, or explicitly bound to the CXL device by the
/// user, must be rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum MigrateError {
    /// The virtual page is not mapped.
    NotMapped,
    /// The page is already resident on the requested node.
    AlreadyThere,
    /// The page is pinned (e.g. for DMA).
    Pinned,
    /// The user explicitly bound the page to the CXL node.
    NodeBound,
    /// The destination node has no free frame for the shadow copy; the
    /// transaction aborted at `Intent`.
    NoFreeFrame(OutOfFrames),
    /// The destination node has no free frame, but only because frames sit
    /// in quarantine awaiting a scrub — the capacity will come back without
    /// demotion.
    Quarantined {
        /// The node whose free list is exhausted by quarantined frames.
        node: NodeId,
    },
    /// The copy engine faulted mid-copy; the shadow frame (first failing
    /// cache line recorded here) was quarantined and the transaction rolled
    /// back. The source page is intact and the attempt may be retried.
    Copy {
        /// First cache line of the quarantined shadow frame.
        line: CacheLineAddr,
    },
    /// A controller reset struck at a journal-append boundary: the engine
    /// is fenced and the transaction will be resolved by
    /// [`crate::system::System::recover`]. `phase` is the last journal
    /// state the transaction durably reached.
    Remap {
        /// Last durable transaction state before the reset.
        phase: TxnState,
    },
    /// The migration engine is fenced after a controller reset;
    /// [`crate::system::System::recover`] must replay the journal before
    /// new migrations start.
    NeedsRecovery,
    /// The watchdog rolled the transaction back rather than wait out a
    /// controller stall longer than the configured deadline.
    Stalled {
        /// How long the copy phase would have had to wait.
        waited: Nanos,
    },
    /// The destination node is being evacuated (or already offline) by the
    /// RAS layer: no new pages may land on it.
    NodeOffline {
        /// The evacuating/offline destination node.
        node: NodeId,
    },
}

impl MigrateError {
    /// Whether retrying the same migration later can plausibly succeed.
    /// Capacity (`NoFreeFrame`/`Quarantined`), transient device faults
    /// (`Copy`/`Stalled`), and reset recovery (`Remap`/`NeedsRecovery`)
    /// all clear on their own or via demotion/scrub/recovery. The
    /// safety-check rejections are permanent (until the caller changes the
    /// page's state).
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            MigrateError::NoFreeFrame(_)
                | MigrateError::Quarantined { .. }
                | MigrateError::Copy { .. }
                | MigrateError::Remap { .. }
                | MigrateError::NeedsRecovery
                | MigrateError::Stalled { .. }
        )
    }

    /// Stable kebab-case name of the rollback/rejection cause, used as a
    /// telemetry label by the promoter's degradation stats.
    pub const fn cause_label(&self) -> &'static str {
        match self {
            MigrateError::NotMapped => "not-mapped",
            MigrateError::AlreadyThere => "already-there",
            MigrateError::Pinned => "pinned",
            MigrateError::NodeBound => "node-bound",
            MigrateError::NoFreeFrame(_) => "no-free-frame",
            MigrateError::Quarantined { .. } => "quarantined",
            MigrateError::Copy { .. } => "copy-fault",
            MigrateError::Remap { .. } => "reset-fenced",
            MigrateError::NeedsRecovery => "needs-recovery",
            MigrateError::Stalled { .. } => "watchdog-stall",
            MigrateError::NodeOffline { .. } => "node-offline",
        }
    }
}

impl fmt::Display for MigrateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MigrateError::NotMapped => f.write_str("page is not mapped"),
            MigrateError::AlreadyThere => f.write_str("page already resides on the target node"),
            MigrateError::Pinned => f.write_str("page is pinned and cannot be migrated"),
            MigrateError::NodeBound => f.write_str("page is explicitly bound to its node"),
            MigrateError::NoFreeFrame(e) => write!(f, "no free frame for shadow copy: {e}"),
            MigrateError::Quarantined { node } => {
                write!(f, "node {node} frames are quarantined pending scrub")
            }
            MigrateError::Copy { line } => {
                write!(
                    f,
                    "copy engine faulted; shadow frame at {line:?} quarantined"
                )
            }
            MigrateError::Remap { phase } => {
                write!(
                    f,
                    "controller reset during {phase}; journal recovery pending"
                )
            }
            MigrateError::NeedsRecovery => {
                f.write_str("migration engine fenced; journal recovery required")
            }
            MigrateError::Stalled { waited } => {
                write!(f, "watchdog rolled back migration stalled for {waited}")
            }
            MigrateError::NodeOffline { node } => {
                write!(
                    f,
                    "node {node} is evacuating/offline; no new pages may land"
                )
            }
        }
    }
}

impl std::error::Error for MigrateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MigrateError::NoFreeFrame(e) => Some(e),
            _ => None,
        }
    }
}

/// Cumulative migration statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MigrationStats {
    /// Pages moved CXL → DDR.
    pub promotions: u64,
    /// Pages moved DDR → CXL.
    pub demotions: u64,
    /// Migration attempts rejected by safety checks or capacity.
    pub rejected: u64,
}

impl MigrationStats {
    /// Records a completed migration toward `dst`.
    pub fn record(&mut self, dst: NodeId) {
        match dst {
            NodeId::Ddr => self.promotions += 1,
            NodeId::Cxl => self.demotions += 1,
        }
    }

    /// Total pages moved in either direction.
    pub fn total_moved(&self) -> u64 {
        self.promotions + self.demotions
    }
}

/// The outcome of a batched `migrate_pages()`-style call.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BatchOutcome {
    /// Pages successfully migrated.
    pub migrated: Vec<Vpn>,
    /// Pages rejected, with the reason.
    pub rejected: Vec<(Vpn, MigrateError)>,
}

impl BatchOutcome {
    /// Whether every requested page moved.
    pub fn all_migrated(&self) -> bool {
        self.rejected.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_record_by_direction() {
        let mut s = MigrationStats::default();
        s.record(NodeId::Ddr);
        s.record(NodeId::Ddr);
        s.record(NodeId::Cxl);
        assert_eq!(s.promotions, 2);
        assert_eq!(s.demotions, 1);
        assert_eq!(s.total_moved(), 3);
    }

    #[test]
    fn errors_display_and_chain() {
        let e = MigrateError::NoFreeFrame(OutOfFrames { node: NodeId::Ddr });
        assert!(e.to_string().contains("no free frame"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&MigrateError::Pinned).is_none());
        let c = MigrateError::Copy {
            line: CacheLineAddr(0x40),
        };
        assert!(c.to_string().contains("quarantined"));
        let r = MigrateError::Remap {
            phase: TxnState::CopyInProgress,
        };
        assert!(r.to_string().contains("copy-in-progress"));
    }

    #[test]
    fn transient_errors_are_classified() {
        for e in [
            MigrateError::NoFreeFrame(OutOfFrames { node: NodeId::Ddr }),
            MigrateError::Quarantined { node: NodeId::Ddr },
            MigrateError::Copy {
                line: CacheLineAddr(0),
            },
            MigrateError::Remap {
                phase: TxnState::Intent,
            },
            MigrateError::NeedsRecovery,
            MigrateError::Stalled { waited: Nanos(1) },
        ] {
            assert!(e.is_transient(), "{e} should be transient");
        }
        for e in [
            MigrateError::NotMapped,
            MigrateError::AlreadyThere,
            MigrateError::Pinned,
            MigrateError::NodeBound,
            MigrateError::NodeOffline { node: NodeId::Cxl },
        ] {
            assert!(!e.is_transient(), "{e} should be permanent");
        }
    }

    #[test]
    fn cause_labels_are_distinct() {
        let labels = [
            MigrateError::NotMapped.cause_label(),
            MigrateError::AlreadyThere.cause_label(),
            MigrateError::Pinned.cause_label(),
            MigrateError::NodeBound.cause_label(),
            MigrateError::NoFreeFrame(OutOfFrames { node: NodeId::Ddr }).cause_label(),
            MigrateError::Quarantined { node: NodeId::Ddr }.cause_label(),
            MigrateError::Copy {
                line: CacheLineAddr(0),
            }
            .cause_label(),
            MigrateError::Remap {
                phase: TxnState::Intent,
            }
            .cause_label(),
            MigrateError::NeedsRecovery.cause_label(),
            MigrateError::Stalled { waited: Nanos(1) }.cause_label(),
            MigrateError::NodeOffline { node: NodeId::Cxl }.cause_label(),
        ];
        let unique: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(unique.len(), labels.len());
    }

    #[test]
    fn batch_outcome_reports_success() {
        let mut b = BatchOutcome::default();
        assert!(b.all_migrated());
        b.rejected.push((Vpn(1), MigrateError::Pinned));
        assert!(!b.all_migrated());
    }
}
