//! Page-migration types: errors, statistics, and batching helpers.
//!
//! The migration *mechanics* live on [`crate::system::System`] (they need
//! the page table, TLB, LLC, frame allocators, and the kernel-cost ledger at
//! once); this module defines the shared vocabulary.

use crate::addr::Vpn;
use crate::memory::{NodeId, OutOfFrames};
use std::fmt;

/// Why a page could not be migrated.
///
/// `Pinned` and `NodeBound` correspond to the Promoter's safety checks in
/// §5.2: pages pinned for DMA, or explicitly bound to the CXL device by the
/// user, must be rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MigrateError {
    /// The virtual page is not mapped.
    NotMapped,
    /// The page is already resident on the requested node.
    AlreadyThere,
    /// The page is pinned (e.g. for DMA).
    Pinned,
    /// The user explicitly bound the page to the CXL node.
    NodeBound,
    /// The destination node has no free frames.
    DestinationFull(OutOfFrames),
    /// The copy phase failed transiently (modelled DMA/copy-engine error);
    /// the source page is intact and the attempt may be retried.
    CopyFailed,
}

impl MigrateError {
    /// Whether retrying the same migration later can plausibly succeed.
    /// `DestinationFull` clears when demotion frees frames; `CopyFailed` is
    /// transient by definition. The safety-check rejections are permanent
    /// (until the caller changes the page's state).
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            MigrateError::DestinationFull(_) | MigrateError::CopyFailed
        )
    }
}

impl fmt::Display for MigrateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MigrateError::NotMapped => f.write_str("page is not mapped"),
            MigrateError::AlreadyThere => f.write_str("page already resides on the target node"),
            MigrateError::Pinned => f.write_str("page is pinned and cannot be migrated"),
            MigrateError::NodeBound => f.write_str("page is explicitly bound to its node"),
            MigrateError::DestinationFull(e) => write!(f, "destination full: {e}"),
            MigrateError::CopyFailed => f.write_str("page copy failed transiently"),
        }
    }
}

impl std::error::Error for MigrateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MigrateError::DestinationFull(e) => Some(e),
            _ => None,
        }
    }
}

/// Cumulative migration statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MigrationStats {
    /// Pages moved CXL → DDR.
    pub promotions: u64,
    /// Pages moved DDR → CXL.
    pub demotions: u64,
    /// Migration attempts rejected by safety checks or capacity.
    pub rejected: u64,
}

impl MigrationStats {
    /// Records a completed migration toward `dst`.
    pub fn record(&mut self, dst: NodeId) {
        match dst {
            NodeId::Ddr => self.promotions += 1,
            NodeId::Cxl => self.demotions += 1,
        }
    }

    /// Total pages moved in either direction.
    pub fn total_moved(&self) -> u64 {
        self.promotions + self.demotions
    }
}

/// The outcome of a batched `migrate_pages()`-style call.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BatchOutcome {
    /// Pages successfully migrated.
    pub migrated: Vec<Vpn>,
    /// Pages rejected, with the reason.
    pub rejected: Vec<(Vpn, MigrateError)>,
}

impl BatchOutcome {
    /// Whether every requested page moved.
    pub fn all_migrated(&self) -> bool {
        self.rejected.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_record_by_direction() {
        let mut s = MigrationStats::default();
        s.record(NodeId::Ddr);
        s.record(NodeId::Ddr);
        s.record(NodeId::Cxl);
        assert_eq!(s.promotions, 2);
        assert_eq!(s.demotions, 1);
        assert_eq!(s.total_moved(), 3);
    }

    #[test]
    fn errors_display_and_chain() {
        let e = MigrateError::DestinationFull(OutOfFrames { node: NodeId::Ddr });
        assert!(e.to_string().contains("destination full"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&MigrateError::Pinned).is_none());
    }

    #[test]
    fn transient_errors_are_classified() {
        assert!(MigrateError::CopyFailed.is_transient());
        assert!(
            MigrateError::DestinationFull(OutOfFrames { node: NodeId::Ddr }).is_transient()
        );
        for e in [
            MigrateError::NotMapped,
            MigrateError::AlreadyThere,
            MigrateError::Pinned,
            MigrateError::NodeBound,
        ] {
            assert!(!e.is_transient(), "{e} should be permanent");
        }
    }

    #[test]
    fn batch_outcome_reports_success() {
        let mut b = BatchOutcome::default();
        assert!(b.all_migrated());
        b.rejected.push((Vpn(1), MigrateError::Pinned));
        assert!(!b.all_migrated());
    }
}
