//! System configuration and presets.

use crate::cache::LlcConfig;
use crate::contention::ContentionConfig;
use crate::kernel::CostModel;
use crate::memory::NodeConfig;
use crate::ras::RasConfig;
use crate::time::Nanos;
use crate::tlb::TlbConfig;
use serde::{Deserialize, Serialize};

/// Where a freshly allocated region's pages are placed.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Placement {
    /// Every page on the CXL node — the paper's starting condition (§7.2):
    /// all benchmark pages are cgroup-allocated to CXL DRAM.
    AllOnCxl,
    /// Every page on the DDR node.
    AllOnDdr,
    /// Pages placed on DDR with probability `ddr_fraction`, else CXL —
    /// random interleaving used by the §5.2 bandwidth-proportionality
    /// validation.
    Interleaved {
        /// Fraction of pages that land on DDR (0.0..=1.0).
        ddr_fraction: f64,
        /// Seed of the placement RNG, for reproducibility.
        seed: u64,
    },
}

/// Full configuration of a simulated machine.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Fast-tier node.
    pub ddr: NodeConfig,
    /// Slow-tier node.
    pub cxl: NodeConfig,
    /// Last-level cache geometry.
    pub llc: LlcConfig,
    /// TLB geometry.
    pub tlb: TlbConfig,
    /// Unit costs of kernel/hardware operations.
    pub costs: CostModel,
    /// Whether daemon kernel work runs on the application's core and stalls
    /// it (the paper's measurement methodology). Default `true`.
    pub colocated_daemon: bool,
    /// Whether a page migration pulls the destination page's 64 lines
    /// through the LLC (cache pollution, §4.1). Default `true`.
    pub migration_pollutes_cache: bool,
    /// Period of full TLB flushes modelling context switches and other
    /// architectural events that passively invalidate translations (§2.1,
    /// Solution 2). `None` disables them. Default: one scheduler timeslice
    /// (1 ms).
    pub tlb_flush_interval: Option<Nanos>,
    /// Migration watchdog deadline: a migration whose copy phase would wait
    /// on a stalled CXL controller for longer than this is rolled back
    /// instead of waiting (retry/backoff is the promoter's job). Default
    /// 200 µs, a few page-copy times.
    pub migration_watchdog: Nanos,
    /// RAS policy: correctable-error trending thresholds, patrol-scrub
    /// width, and the live-evacuation deadline.
    #[serde(default)]
    pub ras: RasConfig,
    /// Contention-aware timing: per-node loaded-latency queueing over the
    /// epoch bandwidth window. Disabled by default — the fixed per-access
    /// cost path stays bit-for-bit intact.
    #[serde(default)]
    pub contention: ContentionConfig,
    /// Minimum quiet-segment block size routed through the staged
    /// struct-of-arrays access engine; smaller blocks run the fused
    /// scalar loop, which the staged passes reproduce byte for byte.
    /// Deadline-bounded blocks (a few hundred accesses between daemon
    /// wakes) favor the scalar loop's single pass over the data; the
    /// staged engine's set-grouped LLC sweep and batched tracker feed
    /// need multi-thousand-access quiet segments to amortize the pass
    /// structure. Default 1024.
    #[serde(default = "default_staged_min_block")]
    pub staged_min_block: usize,
}

fn default_staged_min_block() -> usize {
    1024
}

impl SystemConfig {
    /// The scaled default used by the figure harnesses: 48 MiB DDR,
    /// 192 MiB CXL (an 8 GiB CXL device scaled ~42×), a 1 MiB 16-way LLC.
    ///
    /// Latencies are *loaded* averages: DDR 100 ns; CXL 400 ns. The
    /// paper's device adds 140–170 ns unloaded (≈270 ns total), but its
    /// single DDR4-2666 channel behind a x16 link is shared by 8–20 cores
    /// and runs bandwidth-saturated when a whole footprint lives on it —
    /// the regime in which "no page migration" loses ~2× (§7.2). A
    /// single-stream simulator cannot produce that queueing, so the
    /// loaded latency carries it.
    pub fn scaled_default() -> SystemConfig {
        SystemConfig {
            ddr: NodeConfig {
                capacity_frames: 48 * 256, // 48 MiB
                access_latency: Nanos(100),
            },
            cxl: NodeConfig {
                capacity_frames: 192 * 256, // 192 MiB
                access_latency: Nanos(400),
            },
            llc: LlcConfig::scaled_default(),
            tlb: TlbConfig::scaled_default(),
            costs: CostModel::default(),
            colocated_daemon: true,
            migration_pollutes_cache: true,
            tlb_flush_interval: Some(Nanos::from_millis(1)),
            migration_watchdog: Nanos::from_micros(200),
            ras: RasConfig::default(),
            contention: ContentionConfig::disabled(),
            staged_min_block: default_staged_min_block(),
        }
    }

    /// A tiny machine for unit tests: 256 frames per node, small LLC/TLB.
    pub fn small() -> SystemConfig {
        SystemConfig {
            ddr: NodeConfig {
                capacity_frames: 256,
                access_latency: Nanos(100),
            },
            cxl: NodeConfig {
                capacity_frames: 256,
                access_latency: Nanos(270),
            },
            llc: LlcConfig {
                size_bytes: 64 << 10,
                ways: 4,
            },
            tlb: TlbConfig {
                entries: 64,
                ways: 4,
            },
            costs: CostModel::default(),
            colocated_daemon: true,
            migration_pollutes_cache: true,
            tlb_flush_interval: Some(Nanos::from_millis(1)),
            migration_watchdog: Nanos::from_micros(200),
            ras: RasConfig::default(),
            contention: ContentionConfig::disabled(),
            staged_min_block: default_staged_min_block(),
        }
    }

    /// Returns this config with DDR capacity overridden to `frames` (the
    /// paper caps DDR at ~50 % of each benchmark's footprint).
    pub fn with_ddr_frames(mut self, frames: u64) -> SystemConfig {
        self.ddr.capacity_frames = frames;
        self
    }

    /// Returns this config with CXL capacity overridden to `frames`.
    pub fn with_cxl_frames(mut self, frames: u64) -> SystemConfig {
        self.cxl.capacity_frames = frames;
        self
    }

    /// Returns this config with the daemon moved off the application core.
    pub fn with_isolated_daemon(mut self) -> SystemConfig {
        self.colocated_daemon = false;
        self
    }

    /// Returns this config with the migration watchdog deadline overridden.
    pub fn with_migration_watchdog(mut self, deadline: Nanos) -> SystemConfig {
        self.migration_watchdog = deadline;
        self
    }

    /// Returns this config with the RAS policy overridden.
    pub fn with_ras(mut self, ras: RasConfig) -> SystemConfig {
        self.ras = ras;
        self
    }

    /// Returns this config with the contention model overridden.
    pub fn with_contention(mut self, contention: ContentionConfig) -> SystemConfig {
        self.contention = contention;
        self
    }

    /// Returns this config with the staged-engine block threshold
    /// overridden (tests force it low to exercise the staged passes on
    /// short streams; `usize::MAX` pins the scalar loop).
    pub fn with_staged_min_block(mut self, n: usize) -> SystemConfig {
        self.staged_min_block = n;
        self
    }
}

impl Default for SystemConfig {
    fn default() -> SystemConfig {
        SystemConfig::scaled_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::NodeId;

    #[test]
    fn scaled_default_is_tiered() {
        let c = SystemConfig::scaled_default();
        assert!(c.cxl.access_latency > c.ddr.access_latency);
        assert!(c.cxl.capacity_frames > c.ddr.capacity_frames);
        assert!(c.colocated_daemon);
        let _ = NodeId::ALL;
    }

    #[test]
    fn builders_override_fields() {
        let c = SystemConfig::small()
            .with_ddr_frames(7)
            .with_cxl_frames(9)
            .with_isolated_daemon();
        assert_eq!(c.ddr.capacity_frames, 7);
        assert_eq!(c.cxl.capacity_frames, 9);
        assert!(!c.colocated_daemon);
    }

    #[test]
    fn debug_output_is_complete() {
        let c = SystemConfig::small();
        let dbg = format!("{c:?}");
        assert!(dbg.contains("capacity_frames"));
        assert!(dbg.contains("llc"));
    }
}
