//! Simulated time.
//!
//! All latencies and costs in the simulator are expressed in nanoseconds of
//! simulated time, wrapped in the [`Nanos`] newtype. The [`Clock`] is owned
//! by the [`crate::system::System`] and advanced by memory-access latencies
//! and (when the daemon is co-located with the application core, as in the
//! paper's §6 methodology) by kernel work.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A duration or instant in simulated nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Nanos(pub u64);

impl Nanos {
    /// Zero nanoseconds.
    pub const ZERO: Nanos = Nanos(0);

    /// Constructs from microseconds.
    pub const fn from_micros(us: u64) -> Nanos {
        Nanos(us * 1_000)
    }

    /// Constructs from milliseconds.
    pub const fn from_millis(ms: u64) -> Nanos {
        Nanos(ms * 1_000_000)
    }

    /// Constructs from seconds.
    pub const fn from_secs(s: u64) -> Nanos {
        Nanos(s * 1_000_000_000)
    }

    /// This duration expressed in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This duration expressed in (fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 += rhs.0;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}

impl SubAssign for Nanos {
    fn sub_assign(&mut self, rhs: Nanos) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0 * rhs)
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;
    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, Add::add)
    }
}

impl fmt::Debug for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// The simulated wall clock.
///
/// A single monotonically increasing instant; the run loop advances it by
/// access latencies and billed kernel time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Clock {
    now: Nanos,
}

impl Clock {
    /// A clock at time zero.
    pub fn new() -> Clock {
        Clock::default()
    }

    /// The current simulated instant.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Advances the clock by `d`.
    pub fn advance(&mut self, d: Nanos) {
        self.now += d;
    }

    /// A clock restored to a checkpointed instant.
    pub fn at(now: Nanos) -> Clock {
        Clock { now }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Nanos::from_micros(54), Nanos(54_000));
        assert_eq!(Nanos::from_millis(1), Nanos(1_000_000));
        assert_eq!(Nanos::from_secs(2), Nanos(2_000_000_000));
        assert!((Nanos::from_secs(1).as_secs_f64() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let a = Nanos(100) + Nanos(170);
        assert_eq!(a, Nanos(270));
        assert_eq!(a - Nanos(70), Nanos(200));
        assert_eq!(a * 2, Nanos(540));
        assert_eq!(a / 2, Nanos(135));
        assert_eq!(Nanos(5).saturating_sub(Nanos(9)), Nanos::ZERO);
        let total: Nanos = [Nanos(1), Nanos(2), Nanos(3)].into_iter().sum();
        assert_eq!(total, Nanos(6));
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut c = Clock::new();
        assert_eq!(c.now(), Nanos::ZERO);
        c.advance(Nanos(270));
        c.advance(Nanos::from_micros(54));
        assert_eq!(c.now(), Nanos(54_270));
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(format!("{}", Nanos(5)), "5ns");
        assert_eq!(format!("{}", Nanos(5_000)), "5.000us");
        assert_eq!(format!("{}", Nanos(5_000_000)), "5.000ms");
        assert_eq!(format!("{}", Nanos(5_000_000_000)), "5.000s");
    }
}
