//! Memory RAS (reliability/availability/serviceability): correctable-error
//! trending, predictive page offlining, and live node evacuation.
//!
//! Production CXL devices fail *gradually* — ECC corrects a trickle of bit
//! errors per frame, the link retrains to a degraded rate, the fabric
//! manager announces a hot-remove — and the memory manager is expected to
//! ride the decline out: spot the failing frames before they go
//! uncorrectable, move their pages away, and ultimately drain the whole
//! node live while demand traffic continues. This module holds the *state
//! machine* for that process; the mechanics (migrating pages off, retiring
//! frames, billing patrol-scrub time) live on [`crate::system::System`],
//! which owns the page table and allocators, and the drain policy lives in
//! the M5 manager's epoch loop.
//!
//! Health is tracked per node and moves forward only:
//!
//! ```text
//! Healthy → Degraded → Evacuating → Offline
//! ```
//!
//! * **Healthy → Degraded**: the leaky-bucket error rate crosses
//!   [`RasConfig::degrade_tokens`] (a burst of correctable errors or link
//!   events — a steady trickle leaks away harmlessly).
//! * **Degraded → Evacuating**: the bucket crosses
//!   [`RasConfig::evacuate_tokens`], or a
//!   [`DeviceFault::HotRemovePrepare`] arrives (which forces the
//!   transition from *any* earlier state).
//! * **Evacuating → Offline**: the node's mapped pages have been drained
//!   (or the evacuation deadline expired with residual pages), reported in
//!   an [`EvacuationReport`].
//!
//! Like [`crate::faults::FaultInjector`], the whole layer is **quiescent**
//! when no RAS fault has ever been delivered: fault-free runs take none of
//! these branches and stay byte-identical to a build without this module.

use crate::faults::DeviceFault;
use crate::memory::NodeId;
use crate::time::Nanos;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// RAS policy knobs (part of [`crate::config::SystemConfig`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RasConfig {
    /// Correctable-error count at which a frame is soft-offlined: its page
    /// is migrated off and the frame permanently retired.
    pub ce_offline_threshold: u32,
    /// Leaky-bucket level (tokens; one RAS fault = one token) at which the
    /// node's health degrades.
    pub degrade_tokens: u64,
    /// Bucket level at which the node starts a live evacuation.
    pub evacuate_tokens: u64,
    /// Tokens leaked per simulated millisecond — the rate that separates a
    /// harmless trickle of correctable errors from a failing device.
    pub leak_per_ms: u64,
    /// Frames the patrol scrubber walks per service epoch (each billed
    /// [`crate::kernel::CostKind::RasScrub`] time).
    pub patrol_frames: u64,
    /// Deadline for a live evacuation, measured from the transition into
    /// `Evacuating`; when it expires the node goes `Offline` with whatever
    /// residual pages remain.
    pub evac_deadline: Nanos,
}

impl Default for RasConfig {
    fn default() -> RasConfig {
        RasConfig {
            ce_offline_threshold: 2,
            degrade_tokens: 3,
            evacuate_tokens: 8,
            leak_per_ms: 1,
            patrol_frames: 64,
            evac_deadline: Nanos::from_millis(50),
        }
    }
}

/// Node health, in degradation order. Transitions are forward-only: a node
/// that degraded stays suspect even after its error rate subsides.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NodeHealth {
    /// No concerning error trend.
    #[default]
    Healthy,
    /// Error rate crossed the degrade threshold; watch closely.
    Degraded,
    /// Live evacuation in progress: no new pages may land on the node.
    Evacuating,
    /// Evacuation concluded; the node is out of service.
    Offline,
}

impl NodeHealth {
    /// Stable kebab-case name (also the telemetry label).
    pub const fn label(self) -> &'static str {
        match self {
            NodeHealth::Healthy => "healthy",
            NodeHealth::Degraded => "degraded",
            NodeHealth::Evacuating => "evacuating",
            NodeHealth::Offline => "offline",
        }
    }

    /// Numeric value for health gauges (0 = healthy … 3 = offline).
    pub const fn gauge(self) -> f64 {
        match self {
            NodeHealth::Healthy => 0.0,
            NodeHealth::Degraded => 1.0,
            NodeHealth::Evacuating => 2.0,
            NodeHealth::Offline => 3.0,
        }
    }
}

impl fmt::Display for NodeHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The final accounting of one live node evacuation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EvacuationReport {
    /// The evacuated node.
    pub node: NodeId,
    /// When the node entered `Evacuating`.
    pub started: Nanos,
    /// When the node went `Offline`.
    pub finished: Nanos,
    /// Pages drained off the node during the evacuation.
    pub pages_moved: u64,
    /// Mapped pages still on the node at `Offline` (pinned, node-bound, or
    /// stranded by a full survivor).
    pub residual: u64,
    /// Whether the drain concluded before [`RasConfig::evac_deadline`].
    pub deadline_met: bool,
}

/// Live-evacuation bookkeeping while a node is `Evacuating`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct EvacProgress {
    started: Nanos,
    deadline: Nanos,
    moved: u64,
}

/// Per-node RAS bookkeeping.
#[derive(Clone, Debug, Default)]
struct NodeRas {
    health: NodeHealth,
    /// Per-frame correctable-error counts, keyed by frame index (relative
    /// to the node's base PFN).
    ce_counts: HashMap<u64, u32>,
    total_ce: u64,
    /// Leaky bucket, in milli-tokens (one fault adds 1000).
    bucket_milli: u64,
    bucket_at: Nanos,
    /// Link latency as a percentage of nominal (100 = full speed).
    link_factor: u32,
    /// Frames whose CE count crossed the threshold, awaiting soft-offline.
    pending_offline: Vec<u64>,
    /// Patrol-scrub cursor (frame index of the next walk's first frame).
    patrol_cursor: u64,
    /// Frames permanently retired so far.
    offlined: u64,
    evac: Option<EvacProgress>,
    report: Option<EvacuationReport>,
}

/// What one delivered RAS fault changed — the `System` turns this into
/// telemetry and degradation notes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RasDelta {
    /// A health transition `(from, to)`, if one happened.
    pub transition: Option<(NodeHealth, NodeHealth)>,
    /// The frame index that took a correctable error, if any.
    pub ce_frame: Option<u64>,
    /// Whether that frame just crossed the offline threshold.
    pub crossed_threshold: bool,
}

/// The RAS state machine for the whole tier (all nodes).
///
/// Pure bookkeeping: nothing in here touches the page table, allocators,
/// clock, or telemetry. The `System` delivers faults via
/// [`RasState::record`] and drives offlining/evacuation from its service
/// epoch; the state machine only decides *what* should happen.
#[derive(Clone, Debug)]
pub struct RasState {
    config: RasConfig,
    nodes: [NodeRas; 2],
    /// Total RAS faults ever delivered; zero ⇔ the layer is quiescent.
    events: u64,
}

impl RasState {
    /// A fresh, fully healthy state machine.
    pub fn new(config: RasConfig) -> RasState {
        RasState {
            config,
            nodes: [NodeRas::default(), NodeRas::default()],
            events: 0,
        }
    }

    /// The active policy knobs.
    pub fn config(&self) -> &RasConfig {
        &self.config
    }

    fn node(&self, id: NodeId) -> &NodeRas {
        &self.nodes[match id {
            NodeId::Ddr => 0,
            NodeId::Cxl => 1,
        }]
    }

    fn node_mut(&mut self, id: NodeId) -> &mut NodeRas {
        &mut self.nodes[match id {
            NodeId::Ddr => 0,
            NodeId::Cxl => 1,
        }]
    }

    /// Whether the RAS layer has never seen a fault. Mirrors
    /// [`crate::faults::FaultInjector::quiescent`]: the `System` skips every
    /// RAS branch on its hot paths while this holds, so fault-free runs are
    /// byte-identical to a build without this module.
    #[inline]
    pub fn quiescent(&self) -> bool {
        self.events == 0
    }

    /// Current health of `node`.
    #[inline]
    pub fn health(&self, node: NodeId) -> NodeHealth {
        self.node(node).health
    }

    /// Total correctable errors recorded on `node`.
    pub fn total_ce(&self, node: NodeId) -> u64 {
        self.node(node).total_ce
    }

    /// Correctable-error count of frame `idx` on `node`.
    pub fn ce_count(&self, node: NodeId, idx: u64) -> u32 {
        self.node(node).ce_counts.get(&idx).copied().unwrap_or(0)
    }

    /// Frames permanently retired on `node` so far.
    pub fn offlined_frames(&self, node: NodeId) -> u64 {
        self.node(node).offlined
    }

    /// The completed evacuation's report, once `node` is `Offline`.
    pub fn evacuation_report(&self, node: NodeId) -> Option<&EvacuationReport> {
        self.node(node).report.as_ref()
    }

    /// Pages drained so far by an in-progress evacuation.
    pub fn evacuated_pages(&self, node: NodeId) -> u64 {
        self.node(node).evac.map_or(0, |e| e.moved)
    }

    /// Extra latency a degraded link adds to an access to `node` whose
    /// nominal latency is `base` (zero at full link speed).
    #[inline]
    pub fn extra_latency(&self, node: NodeId, base: Nanos) -> Nanos {
        let factor = self.node(node).link_factor;
        if factor > 100 {
            Nanos(base.0 * u64::from(factor - 100) / 100)
        } else {
            Nanos::ZERO
        }
    }

    /// Leaks the bucket down for elapsed simulated time. Health never
    /// improves — decay only affects how much *further* abuse is needed to
    /// cross the next threshold.
    pub fn decay(&mut self, node: NodeId, now: Nanos) {
        let leak_per_ms = self.config.leak_per_ms;
        let n = self.node_mut(node);
        if now > n.bucket_at {
            let leaked = (now.0 - n.bucket_at.0) * leak_per_ms / 1_000;
            n.bucket_milli = n.bucket_milli.saturating_sub(leaked);
            n.bucket_at = now;
        }
    }

    /// Applies the bucket thresholds (and a forced floor) to `node`'s
    /// health, returning the transition if one happened. `Evacuating` and
    /// `Offline` are never entered here for a node already past them.
    fn retrend(
        &mut self,
        node: NodeId,
        floor: NodeHealth,
        now: Nanos,
    ) -> Option<(NodeHealth, NodeHealth)> {
        let degrade = self.config.degrade_tokens * 1_000;
        let evacuate = self.config.evacuate_tokens * 1_000;
        let deadline = self.config.evac_deadline;
        let n = self.node_mut(node);
        let mut target = if n.bucket_milli >= evacuate {
            NodeHealth::Evacuating
        } else if n.bucket_milli >= degrade {
            NodeHealth::Degraded
        } else {
            NodeHealth::Healthy
        };
        target = target.max(floor);
        if target > n.health {
            let from = n.health;
            n.health = target;
            if target == NodeHealth::Evacuating {
                n.evac = Some(EvacProgress {
                    started: now,
                    deadline: now + deadline,
                    moved: 0,
                });
            }
            Some((from, target))
        } else {
            None
        }
    }

    /// Delivers one RAS fault (already classified by
    /// [`DeviceFault::is_ras`]) to the node it targets — always the CXL
    /// node, where the controller lives. `capacity` is that node's frame
    /// count; raw frame indices are reduced modulo it.
    pub fn record(&mut self, fault: DeviceFault, now: Nanos, capacity: u64) -> RasDelta {
        let node = NodeId::Cxl;
        self.events += 1;
        self.decay(node, now);
        let threshold = self.config.ce_offline_threshold;
        let mut delta = RasDelta::default();
        let mut floor = NodeHealth::Healthy;
        {
            let n = self.node_mut(node);
            n.bucket_milli += 1_000;
            match fault {
                DeviceFault::CorrectableEcc { pfn } => {
                    let idx = if capacity > 0 { pfn % capacity } else { pfn };
                    let count = n.ce_counts.entry(idx).or_insert(0);
                    *count += 1;
                    n.total_ce += 1;
                    delta.ce_frame = Some(idx);
                    if *count == threshold {
                        delta.crossed_threshold = true;
                        if !n.pending_offline.contains(&idx) {
                            n.pending_offline.push(idx);
                        }
                    }
                }
                DeviceFault::LinkDegrade { factor } => {
                    n.link_factor = n.link_factor.max(factor.max(100));
                }
                DeviceFault::HotRemovePrepare => {
                    floor = NodeHealth::Evacuating;
                }
                // Non-RAS faults are routed to snoop devices by the
                // injector and never reach this method.
                DeviceFault::SramBitFlip { .. } | DeviceFault::SramSaturate | DeviceFault::Fail => {
                }
            }
        }
        delta.transition = self.retrend(node, floor, now);
        delta
    }

    /// Harvests the next soft-offline candidates for `node`, at most `max`:
    /// first the queue of frames that crossed the threshold, then a patrol
    /// walk re-checking for frames whose earlier offline attempt failed.
    /// Returns `(candidates, frames_walked)`; the walk advances the patrol
    /// cursor and is what the `System` bills scrub time for.
    pub fn harvest_offline_candidates(
        &mut self,
        node: NodeId,
        capacity: u64,
        max: u64,
    ) -> (Vec<u64>, u64) {
        let threshold = self.config.ce_offline_threshold;
        let patrol = self.config.patrol_frames.min(capacity);
        let n = self.node_mut(node);
        let take = (max as usize).min(n.pending_offline.len());
        let mut out: Vec<u64> = n.pending_offline.drain(..take).collect();
        let mut walked = 0;
        if capacity > 0 {
            for _ in 0..patrol {
                let idx = n.patrol_cursor % capacity;
                n.patrol_cursor = (n.patrol_cursor + 1) % capacity;
                walked += 1;
                if n.ce_counts.get(&idx).is_some_and(|&c| c >= threshold)
                    && !out.contains(&idx)
                    && !n.pending_offline.contains(&idx)
                    && (out.len() as u64) < max
                {
                    out.push(idx);
                }
            }
        }
        (out, walked)
    }

    /// Records that frame `idx` on `node` was permanently retired: its CE
    /// trail is dropped so patrol walks stop re-nominating it.
    pub fn note_offlined(&mut self, node: NodeId, idx: u64) {
        let n = self.node_mut(node);
        n.ce_counts.remove(&idx);
        n.offlined += 1;
    }

    /// Records `pages` drained off `node` by the evacuation.
    pub fn note_evacuated(&mut self, node: NodeId, pages: u64) {
        if let Some(e) = &mut self.node_mut(node).evac {
            e.moved += pages;
        }
    }

    /// Whether `node`'s evacuation deadline has passed at `now`.
    pub fn evac_deadline_passed(&self, node: NodeId, now: Nanos) -> bool {
        self.node(node).evac.is_some_and(|e| now >= e.deadline)
    }

    /// Concludes `node`'s evacuation: the node goes `Offline` and the final
    /// [`EvacuationReport`] is stored (and returned). `residual` is the
    /// count of mapped pages left stranded on the node.
    pub fn complete_evacuation(
        &mut self,
        node: NodeId,
        now: Nanos,
        residual: u64,
    ) -> Option<EvacuationReport> {
        let n = self.node_mut(node);
        let evac = n.evac.take()?;
        let report = EvacuationReport {
            node,
            started: evac.started,
            finished: now,
            pages_moved: evac.moved,
            residual,
            deadline_met: now <= evac.deadline,
        };
        n.health = NodeHealth::Offline;
        n.report = Some(report);
        Some(report)
    }
}

impl NodeRas {
    fn save(&self, w: &mut crate::checkpoint::StateWriter) {
        w.put_u8(match self.health {
            NodeHealth::Healthy => 0,
            NodeHealth::Degraded => 1,
            NodeHealth::Evacuating => 2,
            NodeHealth::Offline => 3,
        });
        // HashMap iteration order is process-local; serialize sorted so
        // the image is deterministic.
        let mut ce: Vec<(u64, u32)> = self.ce_counts.iter().map(|(&k, &v)| (k, v)).collect();
        ce.sort_unstable();
        w.put_u64(ce.len() as u64);
        for (idx, count) in ce {
            w.put_u64(idx);
            w.put_u32(count);
        }
        w.put_u64(self.total_ce);
        w.put_u64(self.bucket_milli);
        w.put_u64(self.bucket_at.0);
        w.put_u32(self.link_factor);
        w.put_u64_slice(&self.pending_offline);
        w.put_u64(self.patrol_cursor);
        w.put_u64(self.offlined);
        match self.evac {
            Some(e) => {
                w.put_bool(true);
                w.put_u64(e.started.0);
                w.put_u64(e.deadline.0);
                w.put_u64(e.moved);
            }
            None => w.put_bool(false),
        }
        match &self.report {
            Some(rep) => {
                w.put_bool(true);
                w.put_u8(match rep.node {
                    NodeId::Ddr => 0,
                    NodeId::Cxl => 1,
                });
                w.put_u64(rep.started.0);
                w.put_u64(rep.finished.0);
                w.put_u64(rep.pages_moved);
                w.put_u64(rep.residual);
                w.put_bool(rep.deadline_met);
            }
            None => w.put_bool(false),
        }
    }

    fn restore(
        r: &mut crate::checkpoint::StateReader<'_>,
    ) -> Result<NodeRas, crate::checkpoint::CodecError> {
        let health = match r.get_u8()? {
            0 => NodeHealth::Healthy,
            1 => NodeHealth::Degraded,
            2 => NodeHealth::Evacuating,
            3 => NodeHealth::Offline,
            v => {
                return Err(crate::checkpoint::CodecError::BadValue {
                    what: "node health",
                    value: v as u64,
                })
            }
        };
        let n_ce = r.get_u64()? as usize;
        let mut ce_counts = HashMap::with_capacity(n_ce.min(1 << 16));
        for _ in 0..n_ce {
            let idx = r.get_u64()?;
            let count = r.get_u32()?;
            ce_counts.insert(idx, count);
        }
        let total_ce = r.get_u64()?;
        let bucket_milli = r.get_u64()?;
        let bucket_at = Nanos(r.get_u64()?);
        let link_factor = r.get_u32()?;
        let pending_offline = r.get_u64_vec()?;
        let patrol_cursor = r.get_u64()?;
        let offlined = r.get_u64()?;
        let evac = if r.get_bool()? {
            Some(EvacProgress {
                started: Nanos(r.get_u64()?),
                deadline: Nanos(r.get_u64()?),
                moved: r.get_u64()?,
            })
        } else {
            None
        };
        let report = if r.get_bool()? {
            Some(EvacuationReport {
                node: match r.get_u8()? {
                    0 => NodeId::Ddr,
                    1 => NodeId::Cxl,
                    v => {
                        return Err(crate::checkpoint::CodecError::BadValue {
                            what: "evacuation node",
                            value: v as u64,
                        })
                    }
                },
                started: Nanos(r.get_u64()?),
                finished: Nanos(r.get_u64()?),
                pages_moved: r.get_u64()?,
                residual: r.get_u64()?,
                deadline_met: r.get_bool()?,
            })
        } else {
            None
        };
        Ok(NodeRas {
            health,
            ce_counts,
            total_ce,
            bucket_milli,
            bucket_at,
            link_factor,
            pending_offline,
            patrol_cursor,
            offlined,
            evac,
            report,
        })
    }
}

impl RasState {
    /// Serializes the whole health ladder for a checkpoint.
    pub fn save(&self, w: &mut crate::checkpoint::StateWriter) {
        for node in &self.nodes {
            node.save(w);
        }
        w.put_u64(self.events);
    }

    /// Rebuilds the state machine from a checkpoint section, given the
    /// active policy (not serialized — supplied by the restoring config).
    ///
    /// # Errors
    ///
    /// Propagates codec errors from a truncated or corrupt payload.
    pub fn restore(
        config: RasConfig,
        r: &mut crate::checkpoint::StateReader<'_>,
    ) -> Result<RasState, crate::checkpoint::CodecError> {
        Ok(RasState {
            config,
            nodes: [NodeRas::restore(r)?, NodeRas::restore(r)?],
            events: r.get_u64()?,
        })
    }
}

impl Default for RasState {
    fn default() -> RasState {
        RasState::new(RasConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ce(pfn: u64) -> DeviceFault {
        DeviceFault::CorrectableEcc { pfn }
    }

    #[test]
    fn fresh_state_is_quiescent_and_healthy() {
        let ras = RasState::default();
        assert!(ras.quiescent());
        for node in NodeId::ALL {
            assert_eq!(ras.health(node), NodeHealth::Healthy);
            assert_eq!(ras.extra_latency(node, Nanos(270)), Nanos::ZERO);
        }
    }

    #[test]
    fn ce_burst_crosses_offline_threshold_once() {
        let mut ras = RasState::default();
        let d1 = ras.record(ce(5), Nanos(10), 64);
        assert_eq!(d1.ce_frame, Some(5));
        assert!(!d1.crossed_threshold);
        let d2 = ras.record(ce(5), Nanos(20), 64);
        assert!(d2.crossed_threshold, "default threshold is 2");
        let d3 = ras.record(ce(5), Nanos(30), 64);
        assert!(!d3.crossed_threshold, "crossing is edge-triggered");
        assert_eq!(ras.total_ce(NodeId::Cxl), 3);
        assert_eq!(ras.ce_count(NodeId::Cxl, 5), 3);
        let (cands, walked) = ras.harvest_offline_candidates(NodeId::Cxl, 64, 8);
        assert_eq!(cands, vec![5]);
        assert_eq!(walked, 64);
        assert!(!ras.quiescent());
    }

    #[test]
    fn frame_indices_reduce_modulo_capacity() {
        let mut ras = RasState::default();
        let d = ras.record(ce(1_000_003), Nanos(0), 64);
        assert_eq!(d.ce_frame, Some(1_000_003 % 64));
    }

    #[test]
    fn bucket_burst_degrades_but_trickle_leaks_away() {
        let mut ras = RasState::default();
        // Three faults in 1 µs: bucket 3 tokens → Degraded.
        for i in 0..3u64 {
            let d = ras.record(ce(i), Nanos(i * 300), 64);
            if i < 2 {
                assert_eq!(d.transition, None);
            } else {
                assert_eq!(
                    d.transition,
                    Some((NodeHealth::Healthy, NodeHealth::Degraded))
                );
            }
        }
        // A trickle on a fresh state: 1 fault every 2 ms leaks fully
        // between events (leak 1 token/ms) and never degrades.
        let mut slow = RasState::default();
        for i in 0..10u64 {
            let d = slow.record(ce(i), Nanos::from_millis(2 * i), 64);
            assert_eq!(d.transition, None, "trickle at event {i}");
        }
        assert_eq!(slow.health(NodeId::Cxl), NodeHealth::Healthy);
    }

    #[test]
    fn health_never_improves() {
        let mut ras = RasState::default();
        for i in 0..3u64 {
            ras.record(ce(i), Nanos(i), 64);
        }
        assert_eq!(ras.health(NodeId::Cxl), NodeHealth::Degraded);
        ras.decay(NodeId::Cxl, Nanos::from_secs(10));
        ras.record(ce(99), Nanos::from_secs(10), 64);
        assert_eq!(ras.health(NodeId::Cxl), NodeHealth::Degraded);
    }

    #[test]
    fn link_degrade_scales_latency_and_takes_the_max() {
        let mut ras = RasState::default();
        ras.record(DeviceFault::LinkDegrade { factor: 150 }, Nanos(0), 64);
        assert_eq!(ras.extra_latency(NodeId::Cxl, Nanos(270)), Nanos(135));
        ras.record(DeviceFault::LinkDegrade { factor: 120 }, Nanos(1), 64);
        assert_eq!(
            ras.extra_latency(NodeId::Cxl, Nanos(270)),
            Nanos(135),
            "a later, milder retrain does not speed the link back up"
        );
        assert_eq!(ras.extra_latency(NodeId::Ddr, Nanos(100)), Nanos::ZERO);
    }

    #[test]
    fn hot_remove_forces_evacuation_and_reports_on_completion() {
        let mut ras = RasState::default();
        let d = ras.record(DeviceFault::HotRemovePrepare, Nanos(1_000), 64);
        assert_eq!(
            d.transition,
            Some((NodeHealth::Healthy, NodeHealth::Evacuating))
        );
        ras.note_evacuated(NodeId::Cxl, 30);
        ras.note_evacuated(NodeId::Cxl, 2);
        assert_eq!(ras.evacuated_pages(NodeId::Cxl), 32);
        assert!(!ras.evac_deadline_passed(NodeId::Cxl, Nanos(2_000)));
        let report = ras
            .complete_evacuation(NodeId::Cxl, Nanos(5_000), 0)
            .unwrap();
        assert_eq!(ras.health(NodeId::Cxl), NodeHealth::Offline);
        assert_eq!(report.pages_moved, 32);
        assert_eq!(report.residual, 0);
        assert!(report.deadline_met);
        assert_eq!(report.started, Nanos(1_000));
        assert_eq!(ras.evacuation_report(NodeId::Cxl), Some(&report));
        // Completing twice is a no-op.
        assert!(ras
            .complete_evacuation(NodeId::Cxl, Nanos(9_000), 0)
            .is_none());
    }

    #[test]
    fn deadline_expiry_marks_report_unmet() {
        let mut ras = RasState::default();
        ras.record(DeviceFault::HotRemovePrepare, Nanos(0), 64);
        let after = RasConfig::default().evac_deadline + Nanos(1);
        assert!(ras.evac_deadline_passed(NodeId::Cxl, after));
        let report = ras.complete_evacuation(NodeId::Cxl, after, 7).unwrap();
        assert!(!report.deadline_met);
        assert_eq!(report.residual, 7);
    }

    #[test]
    fn patrol_walk_is_bounded_and_wraps() {
        let mut ras = RasState::default();
        for _ in 0..2 {
            ras.record(ce(63), Nanos(0), 64);
        }
        // Drain the pending queue, then rely on patrol to re-find it.
        let (first, _) = ras.harvest_offline_candidates(NodeId::Cxl, 64, 8);
        assert_eq!(first, vec![63]);
        // Not offlined (attempt "failed"): the patrol walk re-harvests.
        let (again, walked) = ras.harvest_offline_candidates(NodeId::Cxl, 64, 8);
        assert_eq!(walked, 64);
        assert_eq!(again, vec![63]);
        ras.note_offlined(NodeId::Cxl, 63);
        let (after, _) = ras.harvest_offline_candidates(NodeId::Cxl, 64, 8);
        assert!(after.is_empty(), "retired frames are not re-nominated");
        assert_eq!(ras.offlined_frames(NodeId::Cxl), 1);
    }
}
