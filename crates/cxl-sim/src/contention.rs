//! Contention-aware memory timing: per-node loaded-latency queueing.
//!
//! The fixed per-access node latencies ([`crate::memory::NodeConfig`]) model
//! an *average* loaded latency; real CXL links show latency rising steeply
//! with offered load (the paper's §5.2 bandwidth-proportionality argument,
//! and the silicon-validated CXL-DMSim / CXLMemSim curves). This module adds
//! that behaviour as a strictly opt-in layer with two cooperating parts per
//! node:
//!
//! 1. **A loaded-latency curve** — an M/M/1-style standing queue delay
//!    derived from the previous epoch window's offered bytes (plus a
//!    configurable background load from other tenants sharing the link).
//!    The curve is recomputed only at window rollover (the Monitor's
//!    sampling cadence), so it is a deterministic function of the closed
//!    window, not of wall-clock interleaving.
//! 2. **A token-bucket backlog** — every transfer deposits its link service
//!    time into a per-node bucket that drains one-for-one with simulated
//!    time (scaled down by the background load's share of the link). A
//!    transfer arriving at a non-empty bucket waits out the backlog (capped
//!    at `burst_capacity`), which is what makes migration copies, journal
//!    appends, and RAS patrol traffic *backpressure* demand accesses on the
//!    same link — and vice versa — within a single epoch.
//!
//! Traffic is billed per [`TrafficClass`] so the per-epoch queue-delay
//! ledger conserves exactly: the sum of per-class billed nanoseconds equals
//! the node total (a property test enforces this).
//!
//! With `enabled = false` (the default, [`ContentionConfig::disabled`])
//! nothing here is ever consulted and the fixed-cost path is bit-for-bit
//! identical to builds without this module.

use crate::memory::NodeId;
use crate::time::Nanos;
use serde::{Deserialize, Serialize};

/// Utilizations are clamped below 1.0 so the M/M/1 pole stays finite.
const RHO_MAX: f64 = 0.98;

/// Who a transfer on the shared link is billed to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TrafficClass {
    /// Application demand traffic: LLC miss fills and dirty writebacks.
    Demand,
    /// Page-migration traffic: journaled copy DMA and journal appends.
    Migration,
    /// RAS traffic: patrol-scrub reads (evacuation drains bill as
    /// `Migration` — they ride the journaled migration path).
    Ras,
}

impl TrafficClass {
    /// All classes, in billing-ledger order.
    pub const ALL: [TrafficClass; 3] = [
        TrafficClass::Demand,
        TrafficClass::Migration,
        TrafficClass::Ras,
    ];

    /// Stable lower-case label for telemetry.
    pub fn label(self) -> &'static str {
        match self {
            TrafficClass::Demand => "demand",
            TrafficClass::Migration => "migration",
            TrafficClass::Ras => "ras",
        }
    }

    #[inline]
    fn idx(self) -> usize {
        match self {
            TrafficClass::Demand => 0,
            TrafficClass::Migration => 1,
            TrafficClass::Ras => 2,
        }
    }
}

/// Queueing parameters of one node's memory link.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkParams {
    /// Link capacity in bytes/second. The defaults scale the paper's
    /// hardware by the same ~42× factor as the node capacities: a single
    /// DDR4-2666 channel behind the CXL controller (~21 GB/s) becomes
    /// 0.5 GB/s, the host DDR (~85 GB/s) becomes 2 GB/s.
    pub peak_bytes_per_sec: u64,
    /// Utilization below which the standing queue delay is zero (curve
    /// offset); queueing becomes visible past the knee.
    pub knee: f64,
    /// Scale of the M/M/1 term: `extra = unloaded · slope · (ρ/(1−ρ) −
    /// knee/(1−knee))` for `ρ > knee`.
    pub slope: f64,
    /// Cap on `loaded / unloaded`; bounds the curve near the pole.
    pub max_load_factor: f64,
    /// Link service cost of a write relative to a read, in permille
    /// (1000 = symmetric). CXL writes carry the NDR/DRS round-trip
    /// asymmetry, so they consume more link time than reads.
    pub write_cost_permille: u64,
    /// Fraction of `peak_bytes_per_sec` consumed by other tenants sharing
    /// the link (the offered-load axis of the loaded-latency sweep). Adds
    /// to the measured window utilization and slows the backlog drain.
    pub background_load: f64,
    /// Cap on the token-bucket backlog delay any single transfer can
    /// observe — a burst of migration copies delays demand fills by at
    /// most this much.
    pub burst_capacity: Nanos,
}

impl LinkParams {
    /// Default DDR link: wide, near-symmetric, short burst queue.
    pub fn ddr_default() -> LinkParams {
        LinkParams {
            peak_bytes_per_sec: 2_000_000_000,
            knee: 0.65,
            slope: 0.35,
            max_load_factor: 4.0,
            write_cost_permille: 1000,
            background_load: 0.0,
            burst_capacity: Nanos(500),
        }
    }

    /// Default CXL link: narrow, write-asymmetric, deeper burst queue.
    pub fn cxl_default() -> LinkParams {
        LinkParams {
            peak_bytes_per_sec: 500_000_000,
            knee: 0.65,
            slope: 0.35,
            max_load_factor: 8.0,
            write_cost_permille: 1500,
            background_load: 0.0,
            burst_capacity: Nanos(2_000),
        }
    }
}

/// Contention-model configuration: one [`LinkParams`] per node plus the
/// master switch.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ContentionConfig {
    /// Master switch. `false` (the default) keeps the fixed-cost timing
    /// path bit-for-bit intact — the parameters below are never consulted.
    pub enabled: bool,
    /// Fast-tier link parameters.
    pub ddr: LinkParams,
    /// Slow-tier link parameters.
    pub cxl: LinkParams,
}

impl ContentionConfig {
    /// The default: contention modelling off, legacy fixed costs.
    pub fn disabled() -> ContentionConfig {
        ContentionConfig {
            enabled: false,
            ddr: LinkParams::ddr_default(),
            cxl: LinkParams::cxl_default(),
        }
    }

    /// Contention modelling on with the default link parameters.
    pub fn enabled_default() -> ContentionConfig {
        ContentionConfig {
            enabled: true,
            ..ContentionConfig::disabled()
        }
    }

    /// Returns this config with the CXL background load (offered-load
    /// sweep axis) overridden.
    pub fn with_cxl_background(mut self, load: f64) -> ContentionConfig {
        self.cxl.background_load = load;
        self
    }

    /// The parameters of `node`'s link.
    pub fn link(&self, node: NodeId) -> &LinkParams {
        match node {
            NodeId::Ddr => &self.ddr,
            NodeId::Cxl => &self.cxl,
        }
    }
}

impl Default for ContentionConfig {
    fn default() -> ContentionConfig {
        ContentionConfig::disabled()
    }
}

/// The standing queue delay of a link at `utilization`, on top of
/// `unloaded` latency: zero up to the knee, then an M/M/1-style
/// `ρ/(1−ρ)` rise, capped at `unloaded · (max_load_factor − 1)`.
///
/// Monotone non-decreasing in `utilization` and never negative — the
/// loaded latency never drops below the unloaded floor (property-tested).
pub fn loaded_extra(unloaded: Nanos, utilization: f64, p: &LinkParams) -> Nanos {
    let rho = if utilization.is_finite() {
        utilization.clamp(0.0, RHO_MAX)
    } else {
        RHO_MAX
    };
    let knee = p.knee.clamp(0.0, RHO_MAX);
    if rho <= knee {
        return Nanos::ZERO;
    }
    let q = rho / (1.0 - rho) - knee / (1.0 - knee);
    let extra = unloaded.0 as f64 * p.slope.max(0.0) * q;
    let cap = unloaded.0 as f64 * (p.max_load_factor - 1.0).max(0.0);
    Nanos(extra.min(cap).max(0.0) as u64)
}

/// One node's closed accounting window, returned by
/// [`Contention::rollover`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LinkWindow {
    /// Bytes offered per traffic class in the closed window.
    pub bytes: [u64; 3],
    /// Queue-delay nanoseconds billed per traffic class in the window.
    pub billed_ns: [u64; 3],
    /// Independently-summed total billed ns (must equal the sum of
    /// `billed_ns` — the conservation invariant).
    pub total_ns: u64,
    /// The utilization the *next* window's curve was computed from.
    pub utilization: f64,
}

/// Runtime queue state of one link.
#[derive(Clone, Debug)]
struct Link {
    p: LinkParams,
    unloaded: Nanos,
    /// `background_load` as integer permille, for the deterministic
    /// integer drain computation.
    bg_permille: u64,
    /// Standing queue delay from the loaded-latency curve; recomputed at
    /// each rollover from the closed window.
    cur_extra: Nanos,
    /// The utilization `cur_extra` was computed from.
    cur_util: f64,
    /// Token-bucket backlog: deposited service ns not yet drained.
    backlog: u64,
    last_drain: Nanos,
    win_start: Nanos,
    win_bytes: [u64; 3],
    win_ns: [u64; 3],
    win_total_ns: u64,
    tot_bytes: [u64; 3],
    tot_ns: [u64; 3],
}

impl Link {
    fn new(p: LinkParams, unloaded: Nanos) -> Link {
        let bg = p.background_load.clamp(0.0, RHO_MAX);
        let cur_util = bg;
        Link {
            bg_permille: (bg * 1000.0) as u64,
            cur_extra: loaded_extra(unloaded, cur_util, &p),
            cur_util,
            backlog: 0,
            last_drain: Nanos::ZERO,
            win_start: Nanos::ZERO,
            win_bytes: [0; 3],
            win_ns: [0; 3],
            win_total_ns: 0,
            tot_bytes: [0; 3],
            tot_ns: [0; 3],
            p,
            unloaded,
        }
    }

    /// Link service time of a transfer at full capacity, in ns.
    #[inline]
    fn service_ns(&self, bytes: u64, is_write: bool) -> u64 {
        let base = bytes.saturating_mul(1_000_000_000) / self.p.peak_bytes_per_sec.max(1);
        if is_write {
            base.saturating_mul(self.p.write_cost_permille) / 1000
        } else {
            base
        }
    }

    /// Drains the backlog for time elapsed since the last drain. Our
    /// traffic owns only `1 − background_load` of the link, so the bucket
    /// drains at that fraction of real time.
    #[inline]
    fn drain(&mut self, now: Nanos) {
        let elapsed = now.saturating_sub(self.last_drain).0;
        if elapsed > 0 {
            let drained = elapsed.saturating_mul(1000 - self.bg_permille.min(999)) / 1000;
            self.backlog = self.backlog.saturating_sub(drained);
            self.last_drain = now;
        }
    }

    /// Read-only view of the backlog as of `now`.
    #[inline]
    fn backlog_at(&self, now: Nanos) -> u64 {
        let elapsed = now.saturating_sub(self.last_drain).0;
        let drained = elapsed.saturating_mul(1000 - self.bg_permille.min(999)) / 1000;
        self.backlog.saturating_sub(drained)
    }

    /// Bills a transfer the current queue delay and deposits its service
    /// time. Returns the delay the transfer must wait out.
    fn transfer(&mut self, class: TrafficClass, bytes: u64, is_write: bool, now: Nanos) -> Nanos {
        self.drain(now);
        let delay = self.cur_extra.0 + self.backlog.min(self.p.burst_capacity.0);
        self.backlog += self.service_ns(bytes, is_write);
        let i = class.idx();
        self.win_bytes[i] += bytes;
        self.tot_bytes[i] += bytes;
        self.win_ns[i] += delay;
        self.win_total_ns += delay;
        self.tot_ns[i] += delay;
        Nanos(delay)
    }

    /// A fire-and-forget transfer (asynchronous writeback): consumes link
    /// service — raising the backlog and the window's offered bytes — but
    /// nothing waits on it, so zero delay ns are billed.
    fn post(&mut self, class: TrafficClass, bytes: u64, is_write: bool, now: Nanos) {
        self.drain(now);
        self.backlog += self.service_ns(bytes, is_write);
        let i = class.idx();
        self.win_bytes[i] += bytes;
        self.tot_bytes[i] += bytes;
    }

    fn rollover(&mut self, now: Nanos) -> LinkWindow {
        let out = LinkWindow {
            bytes: self.win_bytes,
            billed_ns: self.win_ns,
            total_ns: self.win_total_ns,
            utilization: self.cur_util,
        };
        let width = now.saturating_sub(self.win_start).0;
        if width > 0 {
            let offered: u64 = self.win_bytes.iter().sum();
            let measured =
                offered as f64 * 1e9 / (self.p.peak_bytes_per_sec.max(1) as f64 * width as f64);
            self.cur_util = measured + self.p.background_load.clamp(0.0, RHO_MAX);
            self.cur_extra = loaded_extra(self.unloaded, self.cur_util, &self.p);
        }
        // A zero-width window (two rollovers at the same instant — e.g. an
        // access landing exactly on a rollover boundary) carries no
        // information: keep the previous curve rather than dividing by
        // zero or zeroing the estimate.
        self.win_start = now;
        self.win_bytes = [0; 3];
        self.win_ns = [0; 3];
        self.win_total_ns = 0;
        out
    }
}

/// The whole contention model: one queue per node.
///
/// All entry points take `now` explicitly — state advances only with the
/// simulated clock, so identical access sequences (chunked, overlapped, or
/// per-access) produce identical queue states.
#[derive(Clone, Debug)]
pub struct Contention {
    enabled: bool,
    links: [Link; 2],
}

#[inline]
fn idx(node: NodeId) -> usize {
    match node {
        NodeId::Ddr => 0,
        NodeId::Cxl => 1,
    }
}

impl Contention {
    /// Builds the model from `cfg`; `unloaded` is the per-node fixed
    /// latency (`[DDR, CXL]`) the curves sit on top of.
    pub fn new(cfg: &ContentionConfig, unloaded: [Nanos; 2]) -> Contention {
        Contention {
            enabled: cfg.enabled,
            links: [
                Link::new(cfg.ddr, unloaded[0]),
                Link::new(cfg.cxl, unloaded[1]),
            ],
        }
    }

    /// Whether the model is active. When `false`, callers must not bill
    /// through it (the [`crate::system::System`] hot path checks a cached
    /// copy of this flag).
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Queue delay for a 64 B demand fill on `node` at `now`; bills the
    /// demand class.
    #[inline]
    pub fn demand_delay(&mut self, node: NodeId, now: Nanos) -> Nanos {
        self.links[idx(node)].transfer(TrafficClass::Demand, 64, false, now)
    }

    /// Accounts an asynchronous 64 B dirty writeback on `node`: consumes
    /// write-asymmetric link service (backpressuring later transfers) but
    /// delays nothing itself.
    #[inline]
    pub fn writeback(&mut self, node: NodeId, now: Nanos) {
        self.links[idx(node)].post(TrafficClass::Demand, 64, true, now);
    }

    /// Queue delay for a bulk transfer (migration page copy, journal
    /// append, RAS patrol batch) of `bytes` on `node`, billed to `class`.
    /// The burst waits out the queue once; its service feeds the backlog
    /// that subsequent demand fills will wait on.
    pub fn bulk_delay(
        &mut self,
        node: NodeId,
        class: TrafficClass,
        bytes: u64,
        is_write: bool,
        now: Nanos,
    ) -> Nanos {
        self.links[idx(node)].transfer(class, bytes, is_write, now)
    }

    /// Closes both nodes' accounting windows at `now`, recomputing each
    /// loaded-latency curve from its closed window. Returns the closed
    /// windows in `[DDR, CXL]` order.
    pub fn rollover(&mut self, now: Nanos) -> [LinkWindow; 2] {
        [self.links[0].rollover(now), self.links[1].rollover(now)]
    }

    /// Outstanding token-bucket backlog of `node` as of `now` (read-only).
    pub fn queue_ns(&self, node: NodeId, now: Nanos) -> u64 {
        self.links[idx(node)].backlog_at(now)
    }

    /// Estimated extra latency the next demand fill on `node` would pay:
    /// standing curve delay plus capped backlog.
    pub fn extra_estimate(&self, node: NodeId, now: Nanos) -> Nanos {
        let l = &self.links[idx(node)];
        Nanos(l.cur_extra.0 + l.backlog_at(now).min(l.p.burst_capacity.0))
    }

    /// Strict upper bound on any [`ContentionModel::demand_delay`] for
    /// `node` until the next [`ContentionModel::rollover`]: the standing
    /// curve delay `cur_extra` is recomputed only at rollover, and the
    /// backlog term is clamped to `burst_capacity` regardless of how much
    /// service piles up. The staged batch engine uses this to bound a
    /// whole segment's per-access latency before touching any state.
    pub fn demand_delay_bound(&self, node: NodeId) -> Nanos {
        let l = &self.links[idx(node)];
        Nanos(l.cur_extra.0 + l.p.burst_capacity.0)
    }

    /// The utilization `node`'s current curve was computed from.
    pub fn utilization(&self, node: NodeId) -> f64 {
        self.links[idx(node)].cur_util
    }

    /// The current open window's per-class billed ns and its
    /// independently-maintained total, for the conservation property test.
    pub fn window_billed(&self, node: NodeId) -> ([u64; 3], u64) {
        let l = &self.links[idx(node)];
        (l.win_ns, l.win_total_ns)
    }

    /// Cumulative per-class billed queue-delay ns on `node`.
    pub fn total_billed(&self, node: NodeId) -> [u64; 3] {
        self.links[idx(node)].tot_ns
    }

    /// Cumulative per-class offered bytes on `node`.
    pub fn total_bytes(&self, node: NodeId) -> [u64; 3] {
        self.links[idx(node)].tot_bytes
    }

    /// The configured parameters of `node`'s link.
    pub fn params(&self, node: NodeId) -> &LinkParams {
        &self.links[idx(node)].p
    }

    /// Serializes both links' dynamic queue state for a checkpoint.
    /// Parameters and the unloaded floor are rebuilt from configuration.
    pub fn save(&self, w: &mut crate::checkpoint::StateWriter) {
        for l in &self.links {
            w.put_u64(l.cur_extra.0);
            w.put_f64(l.cur_util);
            w.put_u64(l.backlog);
            w.put_u64(l.last_drain.0);
            w.put_u64(l.win_start.0);
            for i in 0..3 {
                w.put_u64(l.win_bytes[i]);
                w.put_u64(l.win_ns[i]);
                w.put_u64(l.tot_bytes[i]);
                w.put_u64(l.tot_ns[i]);
            }
            w.put_u64(l.win_total_ns);
        }
    }

    /// Rebuilds the model from a checkpoint section, given the active
    /// configuration and the per-node unloaded latencies.
    ///
    /// # Errors
    ///
    /// Propagates codec errors from a truncated or corrupt payload.
    pub fn restore(
        cfg: &ContentionConfig,
        unloaded: [Nanos; 2],
        r: &mut crate::checkpoint::StateReader<'_>,
    ) -> Result<Contention, crate::checkpoint::CodecError> {
        let mut c = Contention::new(cfg, unloaded);
        for l in &mut c.links {
            l.cur_extra = Nanos(r.get_u64()?);
            l.cur_util = r.get_f64()?;
            l.backlog = r.get_u64()?;
            l.last_drain = Nanos(r.get_u64()?);
            l.win_start = Nanos(r.get_u64()?);
            for i in 0..3 {
                l.win_bytes[i] = r.get_u64()?;
                l.win_ns[i] = r.get_u64()?;
                l.tot_bytes[i] = r.get_u64()?;
                l.tot_ns[i] = r.get_u64()?;
            }
            l.win_total_ns = r.get_u64()?;
        }
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cxl_model(background: f64) -> Contention {
        let cfg = ContentionConfig::enabled_default().with_cxl_background(background);
        Contention::new(&cfg, [Nanos(100), Nanos(270)])
    }

    #[test]
    fn default_is_disabled() {
        let cfg = ContentionConfig::default();
        assert!(!cfg.enabled);
        assert_eq!(cfg, ContentionConfig::disabled());
        assert!(!Contention::new(&cfg, [Nanos(100), Nanos(270)]).enabled());
    }

    #[test]
    fn curve_is_zero_below_knee_and_rises_past_it() {
        let p = LinkParams::cxl_default();
        let u = Nanos(270);
        assert_eq!(loaded_extra(u, 0.0, &p), Nanos::ZERO);
        assert_eq!(loaded_extra(u, p.knee, &p), Nanos::ZERO);
        let at_80 = loaded_extra(u, 0.8, &p);
        let at_95 = loaded_extra(u, 0.95, &p);
        assert!(at_80 > Nanos::ZERO);
        assert!(at_95 > at_80, "{at_95:?} vs {at_80:?}");
        // The cap bounds the pole.
        let at_max = loaded_extra(u, 2.0, &p);
        assert!(at_max.0 <= u.0 * (p.max_load_factor as u64 - 1));
    }

    #[test]
    fn background_load_loads_the_link_from_construction() {
        let calm = cxl_model(0.0).extra_estimate(NodeId::Cxl, Nanos::ZERO);
        let busy = cxl_model(0.9).extra_estimate(NodeId::Cxl, Nanos::ZERO);
        assert_eq!(calm, Nanos::ZERO);
        assert!(busy > Nanos::ZERO, "90% background shows a standing queue");
    }

    #[test]
    fn backlog_drains_with_time() {
        let mut c = cxl_model(0.0);
        // A page copy deposits ~8 µs of service on a 0.5 GB/s link.
        let d0 = c.bulk_delay(NodeId::Cxl, TrafficClass::Migration, 4096, true, Nanos(0));
        assert_eq!(d0, Nanos::ZERO, "empty queue: no delay");
        let d1 = c.demand_delay(NodeId::Cxl, Nanos(100));
        assert!(d1 > Nanos::ZERO, "demand right behind the copy waits");
        assert!(d1.0 <= c.params(NodeId::Cxl).burst_capacity.0);
        // Long after the burst the bucket is dry again.
        let d2 = c.demand_delay(NodeId::Cxl, Nanos(1_000_000));
        assert_eq!(d2, Nanos::ZERO);
    }

    #[test]
    fn writes_cost_more_link_time_than_reads() {
        let mut c = cxl_model(0.0);
        c.writeback(NodeId::Cxl, Nanos::ZERO);
        let wb_backlog = c.queue_ns(NodeId::Cxl, Nanos::ZERO);
        let mut c2 = cxl_model(0.0);
        let _ = c2.demand_delay(NodeId::Cxl, Nanos::ZERO);
        let rd_backlog = c2.queue_ns(NodeId::Cxl, Nanos::ZERO);
        assert!(
            wb_backlog > rd_backlog,
            "write service {wb_backlog} <= read service {rd_backlog}"
        );
    }

    #[test]
    fn window_billing_conserves_across_classes() {
        let mut c = cxl_model(0.8);
        let mut t = 0u64;
        for i in 0..200u64 {
            t += 150;
            match i % 5 {
                0 => {
                    let _ =
                        c.bulk_delay(NodeId::Cxl, TrafficClass::Migration, 4096, true, Nanos(t));
                }
                1 => {
                    let _ = c.bulk_delay(NodeId::Cxl, TrafficClass::Ras, 512, false, Nanos(t));
                }
                2 => c.writeback(NodeId::Cxl, Nanos(t)),
                _ => {
                    let _ = c.demand_delay(NodeId::Cxl, Nanos(t));
                }
            }
            let (per_class, total) = c.window_billed(NodeId::Cxl);
            assert_eq!(per_class.iter().sum::<u64>(), total);
        }
        let w = c.rollover(Nanos(t))[1];
        assert_eq!(w.billed_ns.iter().sum::<u64>(), w.total_ns);
        assert!(w.total_ns > 0, "an 80%-loaded link billed queue delay");
        assert!(w.bytes[TrafficClass::Migration as usize] > 0);
    }

    #[test]
    fn rollover_updates_the_curve_from_offered_load() {
        let mut c = cxl_model(0.0);
        // Saturate the window: 500 MB/s capacity, offer ~64 B/100 ns
        // (640 MB/s) of demand for 100 µs.
        let mut t = 0u64;
        for _ in 0..1000 {
            t += 100;
            let _ = c.demand_delay(NodeId::Cxl, Nanos(t));
        }
        let _ = c.rollover(Nanos(t));
        assert!(
            c.utilization(NodeId::Cxl) > 0.9,
            "util {}",
            c.utilization(NodeId::Cxl)
        );
        assert!(c.extra_estimate(NodeId::Cxl, Nanos(t)) > Nanos::ZERO);
        // An idle window brings the curve back down.
        let _ = c.rollover(Nanos(t + 10_000_000));
        assert!(c.utilization(NodeId::Cxl) < 0.1);
    }

    #[test]
    fn zero_width_rollover_keeps_the_previous_curve() {
        let mut c = cxl_model(0.0);
        let mut t = 0u64;
        for _ in 0..1000 {
            t += 100;
            let _ = c.demand_delay(NodeId::Cxl, Nanos(t));
        }
        let _ = c.rollover(Nanos(t));
        let util = c.utilization(NodeId::Cxl);
        assert!(util > 0.5);
        // Rolling again at the same instant must not zero the estimate.
        let _ = c.rollover(Nanos(t));
        assert_eq!(c.utilization(NodeId::Cxl), util);
    }
}
