//! Property tests for the performance-counter model: the Monitor's whole
//! view of the machine flows through `PerfMonitor::rollover`, so its
//! counters must stay exact and monotone under any interleaving of reads,
//! writebacks, and window rollovers.

use cxl_sim::memory::NodeId;
use cxl_sim::perfmon::{BandwidthStats, PerfMonitor};
use cxl_sim::time::Nanos;
use proptest::prelude::*;

/// One scripted monitor operation.
#[derive(Clone, Debug)]
enum Op {
    Read(NodeId),
    Writeback(NodeId),
    Rollover(u64),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => any::<bool>().prop_map(|c| Op::Read(if c { NodeId::Cxl } else { NodeId::Ddr })),
        2 => any::<bool>().prop_map(|c| Op::Writeback(if c { NodeId::Cxl } else { NodeId::Ddr })),
        1 => (1u64..10_000).prop_map(Op::Rollover),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Totals are monotone, never reset by rollover, and the window reads
    /// handed out across all rollovers partition the cumulative totals.
    #[test]
    fn totals_are_monotone_and_windows_partition_them(ops in prop::collection::vec(op(), 1..300)) {
        let mut pm = PerfMonitor::new();
        let mut now = Nanos::ZERO;
        let mut rolled = [0u64; 2];
        let mut expect_reads = [0u64; 2];
        let mut expect_wb = [0u64; 2];
        let mut prev_totals = [0u64; 2];
        for o in ops {
            match o {
                Op::Read(n) => {
                    pm.record_read(n);
                    expect_reads[n as usize % 2] += 1;
                }
                Op::Writeback(n) => {
                    pm.record_writeback(n);
                    expect_wb[n as usize % 2] += 1;
                }
                Op::Rollover(dt) => {
                    now += Nanos(dt);
                    let [ddr, cxl] = pm.rollover(now);
                    rolled[0] += ddr.reads;
                    rolled[1] += cxl.reads;
                    // A closed window starts the next one empty.
                    prop_assert_eq!(pm.window(NodeId::Ddr, now).reads, 0);
                    prop_assert_eq!(pm.window(NodeId::Cxl, now).window, Nanos::ZERO);
                }
            }
            let totals = [pm.total_reads(NodeId::Ddr), pm.total_reads(NodeId::Cxl)];
            prop_assert!(totals[0] >= prev_totals[0] && totals[1] >= prev_totals[1],
                "totals must be monotone");
            prev_totals = totals;
        }
        let ddr_idx = NodeId::Ddr as usize % 2;
        let cxl_idx = NodeId::Cxl as usize % 2;
        prop_assert_eq!(pm.total_reads(NodeId::Ddr), expect_reads[ddr_idx]);
        prop_assert_eq!(pm.total_reads(NodeId::Cxl), expect_reads[cxl_idx]);
        prop_assert_eq!(pm.total_writebacks(NodeId::Ddr), expect_wb[ddr_idx]);
        prop_assert_eq!(pm.total_writebacks(NodeId::Cxl), expect_wb[cxl_idx]);
        // Every read either left through a rollover or is still in the
        // open window.
        prop_assert_eq!(
            rolled[ddr_idx] + pm.window(NodeId::Ddr, now).reads,
            pm.total_reads(NodeId::Ddr)
        );
        prop_assert_eq!(
            rolled[cxl_idx] + pm.window(NodeId::Cxl, now).reads,
            pm.total_reads(NodeId::Cxl)
        );
    }

    /// Bandwidth is finite and non-negative for any counter value,
    /// including a saturated one — the 64-byte scaling must not overflow.
    #[test]
    fn bandwidth_never_overflows(
        reads in any::<u64>(),
        writebacks in any::<u64>(),
        window in 0u64..u64::MAX,
    ) {
        let s = BandwidthStats { reads, writebacks, window: Nanos(window) };
        let bw = s.bytes_per_sec();
        prop_assert!(bw.is_finite());
        prop_assert!(bw >= 0.0);
        let wbw = s.write_bytes_per_sec();
        prop_assert!(wbw.is_finite());
        prop_assert!(wbw >= 0.0);
    }

    /// Writebacks partition across windows exactly like reads: every
    /// writeback either left through a rollover or is still in the open
    /// window, never both, never neither.
    #[test]
    fn writeback_windows_partition_totals(ops in prop::collection::vec(op(), 1..300)) {
        let mut pm = PerfMonitor::new();
        let mut now = Nanos::ZERO;
        let mut rolled_wb = [0u64; 2];
        for o in ops {
            match o {
                Op::Read(n) => pm.record_read(n),
                Op::Writeback(n) => pm.record_writeback(n),
                Op::Rollover(dt) => {
                    now += Nanos(dt);
                    let [ddr, cxl] = pm.rollover(now);
                    rolled_wb[0] += ddr.writebacks;
                    rolled_wb[1] += cxl.writebacks;
                    prop_assert_eq!(pm.window(NodeId::Ddr, now).writebacks, 0);
                    prop_assert_eq!(pm.window(NodeId::Cxl, now).writebacks, 0);
                }
            }
        }
        let ddr_idx = NodeId::Ddr as usize % 2;
        let cxl_idx = NodeId::Cxl as usize % 2;
        prop_assert_eq!(
            rolled_wb[ddr_idx] + pm.window(NodeId::Ddr, now).writebacks,
            pm.total_writebacks(NodeId::Ddr)
        );
        prop_assert_eq!(
            rolled_wb[cxl_idx] + pm.window(NodeId::Cxl, now).writebacks,
            pm.total_writebacks(NodeId::Cxl)
        );
    }
}

#[test]
fn saturated_counter_reports_finite_bandwidth() {
    let s = BandwidthStats {
        reads: u64::MAX,
        writebacks: u64::MAX,
        window: Nanos(1),
    };
    let bw = s.bytes_per_sec();
    assert!(bw.is_finite() && bw > 0.0);
}

/// A rollover observed through the system wrapper publishes gauges too.
#[test]
fn system_rollover_publishes_gauges() {
    use cxl_sim::prelude::*;
    let mut sys = System::new(SystemConfig::small());
    sys.install_telemetry(Telemetry::enabled());
    let region = sys.alloc_region(4, Placement::AllOnCxl).unwrap();
    for i in 0..64u64 {
        sys.access(region.base.offset(i * 64), false);
    }
    let _ = sys.rollover_bandwidth();
    let snap = sys.telemetry().snapshot();
    assert!(snap.gauge("sim.bw.bytes_per_sec", "cxl").unwrap() > 0.0);
    assert_eq!(snap.gauge("sim.nr_pages", "cxl"), Some(4.0));
    assert_eq!(snap.gauge("sim.nr_pages", "ddr"), Some(0.0));
}
