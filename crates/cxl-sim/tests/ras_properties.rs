//! Property tests for the RAS subsystem: arbitrary interleavings of
//! demand accesses, migrations, correctable-error bursts, hot-remove
//! evacuation, patrol service epochs, scrubbing, and recovery must never
//! lose a page or double-map a frame — [`System::check_invariants`] stays
//! clean and every page stays mapped after every single step.

use cxl_sim::faults::DeviceFault;
use cxl_sim::prelude::*;
use proptest::prelude::*;

const PAGES: u64 = 32;

#[derive(Clone, Debug)]
enum Op {
    /// Try to promote page `i % PAGES` to DDR.
    Promote(u64),
    /// Try to demote page `i % PAGES` to CXL.
    Demote(u64),
    /// Touch a byte of page `i % PAGES` (advances the clock).
    Access(u64),
    /// Inject `1 + n % 3` correctable errors on CXL frame `pfn % 64`.
    CeBurst { pfn: u64, n: u8 },
    /// Degrade the CXL link by `150 + 10 * (n % 20)` percent.
    LinkDegrade(u8),
    /// Announce a hot-remove: the CXL node starts evacuating.
    HotRemove,
    /// One RAS service epoch with drain budget `1 + n % 8`.
    RasService(u8),
    /// Arm `1 + n % 3` migration copy failures.
    InjectCopyFail(u8),
    /// Replay the journal.
    Recover,
    /// Scrub up to 4 quarantined frames per node.
    Scrub,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => any::<u64>().prop_map(Op::Promote),
        3 => any::<u64>().prop_map(Op::Demote),
        4 => any::<u64>().prop_map(Op::Access),
        3 => (any::<u64>(), any::<u8>()).prop_map(|(pfn, n)| Op::CeBurst { pfn, n }),
        1 => any::<u8>().prop_map(Op::LinkDegrade),
        1 => Just(Op::HotRemove),
        4 => any::<u8>().prop_map(Op::RasService),
        1 => any::<u8>().prop_map(Op::InjectCopyFail),
        1 => Just(Op::Recover),
        1 => Just(Op::Scrub),
    ]
}

fn mapped_total(sys: &System) -> u64 {
    sys.page_table().iter_mapped().count() as u64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ras_interleavings_never_lose_or_double_map_a_page(
        ops in prop::collection::vec(op_strategy(), 1..100)
    ) {
        // DDR large enough to absorb a full evacuation, small enough that
        // promotions still contend with the drain for survivor frames.
        let mut sys = System::new(
            SystemConfig::small().with_ddr_frames(48).with_cxl_frames(64),
        );
        let region = sys.alloc_region(PAGES, Placement::AllOnCxl).unwrap();
        let vpns: Vec<Vpn> = region.vpns().collect();

        for op in &ops {
            match op {
                Op::Promote(i) => {
                    let _ = sys.migrate_page(vpns[(*i % PAGES) as usize], NodeId::Ddr);
                }
                Op::Demote(i) => {
                    let _ = sys.migrate_page(vpns[(*i % PAGES) as usize], NodeId::Cxl);
                }
                Op::Access(i) => {
                    sys.access(region.base.offset((*i % PAGES) * PAGE_SIZE as u64), false);
                }
                Op::CeBurst { pfn, n } => {
                    let mut plan = FaultPlan::none();
                    for _ in 0..(1 + n % 3) {
                        plan = plan.with(
                            Nanos::ZERO,
                            FaultKind::Device(DeviceFault::CorrectableEcc { pfn: pfn % 64 }),
                        );
                    }
                    sys.install_fault_plan(&plan);
                }
                Op::LinkDegrade(n) => {
                    sys.install_fault_plan(&FaultPlan::none().with(
                        Nanos::ZERO,
                        FaultKind::Device(DeviceFault::LinkDegrade {
                            factor: 150 + 10 * u32::from(*n % 20),
                        }),
                    ));
                }
                Op::HotRemove => {
                    sys.install_fault_plan(&FaultPlan::none().with(
                        Nanos::ZERO,
                        FaultKind::Device(DeviceFault::HotRemovePrepare),
                    ));
                }
                Op::RasService(n) => {
                    let _ = sys.ras_service(1 + u64::from(*n) % 8);
                }
                Op::InjectCopyFail(n) => {
                    sys.install_fault_plan(&FaultPlan::none().with(
                        Nanos::ZERO,
                        FaultKind::MigrationCopyFail {
                            attempts: 1 + u32::from(*n) % 3,
                        },
                    ));
                }
                Op::Recover => {
                    let _ = sys.recover();
                }
                Op::Scrub => {
                    sys.scrub_quarantine(4);
                }
            }
            let violations = sys.check_invariants();
            prop_assert!(violations.is_empty(), "after {op:?}: {violations:?}");
            prop_assert_eq!(
                mapped_total(&sys), PAGES,
                "page lost or duplicated after {:?}", op
            );
        }

        // Drain: recovery closes any fenced transaction, quarantine must
        // empty (offlined frames left quarantine when they were retired).
        sys.recover();
        let mut rounds = 0;
        while sys.quarantined_frames(NodeId::Ddr) + sys.quarantined_frames(NodeId::Cxl) > 0 {
            prop_assert!(sys.scrub_quarantine(8) > 0, "scrub stopped making progress");
            rounds += 1;
            prop_assert!(rounds < 1_000, "quarantine never drained");
        }
        let violations = sys.check_invariants();
        prop_assert!(violations.is_empty(), "after drain: {violations:?}");

        // No page lost, no frame leaked: every node's allocated frames are
        // exactly its mapped pages, and the region is fully mapped.
        prop_assert!(sys.journal().open().is_empty());
        prop_assert_eq!(mapped_total(&sys), PAGES);
        for node in NodeId::ALL {
            let mapped = sys
                .page_table()
                .iter_mapped()
                .filter(|(_, pte)| pte.node() == node)
                .count() as u64;
            prop_assert_eq!(sys.nr_pages(node), mapped, "{} allocated != mapped", node);
        }
    }
}
