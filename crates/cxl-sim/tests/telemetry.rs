//! Telemetry integration: the in-memory sink's snapshot must exactly
//! reproduce the `RunReport` aggregates (they share one accounting path),
//! fault windows must trace as spans, and a disabled bus must not perturb
//! a run.

use cxl_sim::faults::FaultKind;
use cxl_sim::prelude::*;
use cxl_sim::report::RunReport;
use cxl_sim::system::{run, NoMigration, Region};

struct Stream {
    region: Region,
    n: u64,
    i: u64,
}

impl AccessStream for Stream {
    fn next_access(&mut self) -> Option<Access> {
        if self.i >= self.n {
            return None;
        }
        // Stride through the region line by line, every 4th access a store,
        // every 16th the end of a client-visible op.
        let a = self
            .region
            .base
            .offset(self.i * 64 % self.region.len_bytes());
        let mut acc = if self.i.is_multiple_of(4) {
            Access::write(a)
        } else {
            Access::read(a)
        };
        if self.i % 16 == 15 {
            acc = acc.end_op();
        }
        self.i += 1;
        Some(acc)
    }
}

/// A daemon that exercises the migration engine during the run: promotions,
/// demotions, and a permanent rejection.
struct Exerciser {
    region: Region,
    wake: Nanos,
    ticks: u64,
}

impl MigrationDaemon for Exerciser {
    fn name(&self) -> &str {
        "exerciser"
    }
    fn next_wake(&self) -> Option<Nanos> {
        (self.ticks < 3).then_some(self.wake)
    }
    fn on_tick(&mut self, sys: &mut System) {
        let base = self.region.base.vpn();
        match self.ticks {
            0 => {
                let _ = sys.migrate_page(base, NodeId::Ddr);
                let _ = sys.migrate_page(base.offset(1), NodeId::Ddr);
            }
            1 => {
                let _ = sys.migrate_page(base, NodeId::Cxl);
                // Unmapped page: a finally-rejected request.
                let _ = sys.migrate_page(Vpn(9_999), NodeId::Ddr);
            }
            _ => sys.note_degradation("exerciser: synthetic degradation"),
        }
        self.ticks += 1;
        self.wake = sys.now() + Nanos::from_micros(20);
    }
}

fn faulty_plan() -> FaultPlan {
    FaultPlan::none()
        .with(
            Nanos::from_micros(5),
            FaultKind::LatencySpike {
                extra: Nanos(400),
                duration: Nanos::from_micros(30),
            },
        )
        .with(Nanos::from_micros(10), FaultKind::PoisonLine { reads: 2 })
        .with(
            Nanos::from_micros(40),
            FaultKind::ControllerStall {
                duration: Nanos::from_micros(15),
            },
        )
}

fn seeded_run(telemetry: Option<Telemetry>) -> (System, RunReport) {
    let mut sys = System::with_fault_plan(SystemConfig::small(), &faulty_plan());
    if let Some(t) = telemetry {
        sys.install_telemetry(t);
    }
    let region = sys.alloc_region(16, Placement::AllOnCxl).unwrap();
    let mut wl = Stream {
        region,
        n: 6_000,
        i: 0,
    };
    let mut daemon = Exerciser {
        region,
        wake: Nanos::from_micros(10),
        ticks: 0,
    };
    let report = run(&mut sys, &mut wl, &mut daemon, u64::MAX);
    (sys, report)
}

#[test]
fn snapshot_exactly_reproduces_run_report() {
    let (mut sys, report) = seeded_run(Some(Telemetry::enabled()));
    sys.telemetry_mut().flush();
    let snap = sys.telemetry().snapshot();

    assert_eq!(snap.counter_total("sim.accesses"), report.accesses);
    assert_eq!(snap.counter("sim.llc", "hit"), Some(report.llc_hits));
    assert_eq!(snap.counter("sim.llc", "miss"), Some(report.llc_misses));
    for node in NodeId::ALL {
        assert_eq!(
            snap.counter("sim.dram.reads", node.label()).unwrap_or(0),
            report.reads_on(node),
            "dram reads on {node}"
        );
    }
    assert_eq!(
        snap.counter("sim.migrations", "promoted").unwrap_or(0),
        report.migrations.promotions
    );
    assert_eq!(
        snap.counter("sim.migrations", "demoted").unwrap_or(0),
        report.migrations.demotions
    );
    assert_eq!(
        snap.counter("sim.migrations", "rejected").unwrap_or(0),
        report.migrations.rejected
    );
    assert!(report.migrations.promotions >= 2, "exerciser promoted");
    assert!(report.migrations.rejected >= 1, "exerciser was rejected");

    for kind in CostKind::ALL {
        assert_eq!(
            snap.counter("sim.kernel.ns", kind.label()).unwrap_or(0),
            report.kernel.of(kind).0,
            "kernel ns of {kind}"
        );
        assert_eq!(
            snap.counter("sim.kernel.events", kind.label()).unwrap_or(0),
            report.kernel.events_of(kind),
            "kernel events of {kind}"
        );
    }

    assert_eq!(
        snap.counter_total("sim.faults"),
        report.health.faults_injected
    );
    for (class, n) in &report.health.fault_counts {
        assert_eq!(
            snap.counter("sim.faults", class.label()),
            Some(*n),
            "fault count of {class}"
        );
    }
    assert_eq!(
        snap.counter("sim.poison.repairs", "").unwrap_or(0),
        report.health.poison_repairs
    );
    assert!(report.health.poison_repairs > 0, "poison plan fired");
    assert_eq!(
        snap.counter("sim.degraded", "").unwrap_or(0),
        report.health.degraded.len() as u64
    );

    // Histogram totals equal event counts.
    let lat_total: u64 = ["llc", "ddr", "cxl"]
        .iter()
        .filter_map(|l| snap.histogram("sim.access.latency", l))
        .map(|h| h.count)
        .sum();
    assert_eq!(lat_total, report.accesses);
    assert_eq!(
        snap.histogram("sim.op.latency", "")
            .map(|h| h.count)
            .unwrap_or(0),
        report.op_latency.count()
    );
}

#[test]
fn fault_windows_trace_as_spans() {
    let mut sys = System::with_fault_plan(SystemConfig::small(), &faulty_plan());
    let mut t = Telemetry::enabled();
    let (sink, buf) = MemorySink::new();
    t.add_sink(Box::new(sink));
    sys.install_telemetry(t);
    let region = sys.alloc_region(16, Placement::AllOnCxl).unwrap();
    let mut wl = Stream {
        region,
        n: 6_000,
        i: 0,
    };
    run(&mut sys, &mut wl, &mut NoMigration, u64::MAX);

    let events = buf.lock().unwrap().events.clone();
    let window_events: Vec<_> = events
        .iter()
        .filter(|e| e.name == "sim.fault.window")
        .collect();
    for label in ["latency-spike", "controller-stall"] {
        assert!(
            window_events.iter().any(|e| {
                e.label == label && e.kind == cxl_sim::telemetry::EventKind::SpanStart
            }),
            "missing span start for {label}"
        );
        assert!(
            window_events.iter().any(|e| {
                e.label == label && matches!(e.kind, cxl_sim::telemetry::EventKind::SpanEnd { .. })
            }),
            "missing span end for {label}"
        );
    }
    assert!(
        events.iter().any(|e| e.name == "sim.fault"),
        "fault arming emits instant events"
    );
}

#[test]
fn disabled_telemetry_does_not_perturb_the_run() {
    let (_, with) = seeded_run(Some(Telemetry::enabled()));
    let (_, without) = seeded_run(None);
    assert_eq!(with, without, "telemetry must be observation-only");
}
