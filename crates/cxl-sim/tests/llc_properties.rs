//! Property tests for the LLC and TLB replacement logic — these filters
//! shape everything the profilers and trackers observe, so their
//! invariants get dedicated coverage.

use cxl_sim::addr::{CacheLineAddr, Vpn};
use cxl_sim::cache::{Llc, LlcConfig};
use cxl_sim::tlb::{Tlb, TlbConfig};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Occupancy never exceeds capacity; a line reported as a hit was
    /// inserted earlier and not evicted/invalidated since (tracked by a
    /// reference model per set).
    #[test]
    fn llc_matches_a_reference_lru(ops in prop::collection::vec((0u64..256, any::<bool>(), prop::bool::weighted(0.1)), 1..400)) {
        let config = LlcConfig { size_bytes: 4096, ways: 2 };
        let mut llc = Llc::new(config);
        let sets = config.sets();
        // Reference model: per-set MRU-ordered vec of (addr, dirty).
        let mut model: Vec<Vec<(u64, bool)>> = vec![Vec::new(); sets];
        for (line, write, invalidate) in ops {
            let set = line as usize % sets;
            if invalidate {
                let out = llc.invalidate(CacheLineAddr(line));
                let pos = model[set].iter().position(|&(a, _)| a == line);
                let expect = pos.and_then(|p| {
                    let (a, d) = model[set].remove(p);
                    d.then_some(CacheLineAddr(a))
                });
                prop_assert_eq!(out, expect);
                continue;
            }
            let res = llc.access(CacheLineAddr(line), write);
            let pos = model[set].iter().position(|&(a, _)| a == line);
            match pos {
                Some(p) => {
                    prop_assert!(res.hit, "model says hit for {line}");
                    let (a, d) = model[set].remove(p);
                    model[set].insert(0, (a, d || write));
                }
                None => {
                    prop_assert!(!res.hit, "model says miss for {line}");
                    let wb = if model[set].len() == 2 {
                        let (a, d) = model[set].pop().expect("full set");
                        d.then_some(CacheLineAddr(a))
                    } else {
                        None
                    };
                    prop_assert_eq!(res.writeback, wb);
                    model[set].insert(0, (line, write));
                }
            }
            let expected_occupancy: usize = model.iter().map(Vec::len).sum();
            prop_assert_eq!(llc.occupancy(), expected_occupancy);
        }
    }

    /// TLB: after any sequence of lookups/inserts/invalidations, a second
    /// lookup of a just-inserted VPN hits unless enough conflicting
    /// insertions displaced it; occupancy is bounded; hits+misses equals
    /// lookups.
    #[test]
    fn tlb_accounting_is_consistent(ops in prop::collection::vec((0u64..64, 0u8..3), 1..300)) {
        let mut tlb = Tlb::new(TlbConfig { entries: 16, ways: 2 });
        let mut lookups = 0;
        let mut live: HashSet<u64> = HashSet::new();
        for (vpn, op) in ops {
            match op {
                0 => {
                    lookups += 1;
                    let hit = tlb.lookup(Vpn(vpn));
                    if !hit {
                        tlb.insert(Vpn(vpn));
                        live.insert(vpn);
                    }
                }
                1 => {
                    tlb.insert(Vpn(vpn));
                    live.insert(vpn);
                }
                _ => {
                    tlb.invalidate(Vpn(vpn));
                    live.remove(&vpn);
                }
            }
            prop_assert!(tlb.occupancy() <= 16);
            // The TLB never caches something that was invalidated and not
            // re-inserted (subset check: occupancy can be smaller because
            // of evictions, never larger than the live set).
            prop_assert!(tlb.occupancy() <= live.len().max(16));
        }
        prop_assert_eq!(tlb.hits() + tlb.misses(), lookups);
    }

    /// Latency histogram quantiles are monotone in q and bounded by the
    /// recorded extremes.
    #[test]
    fn histogram_quantiles_are_monotone(samples in prop::collection::vec(1u64..1_000_000, 1..200)) {
        use cxl_sim::report::LatencyHistogram;
        use cxl_sim::time::Nanos;
        let mut h = LatencyHistogram::new();
        let max = *samples.iter().max().expect("non-empty");
        for &s in &samples {
            h.record(Nanos(s));
        }
        let mut prev = 0;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = h.quantile(q).expect("non-empty").0;
            prop_assert!(v >= prev, "quantile not monotone at {q}");
            prop_assert!(v <= max, "quantile above max at {q}");
            prev = v;
        }
    }
}
