//! Property tests for the contention-aware timing model (ISSUE 7):
//!
//! 1. the loaded-latency curve is monotone non-decreasing in offered load
//!    and never dips below the unloaded floor,
//! 2. per-epoch billed queue-delay ns conserve exactly across traffic
//!    classes (the independently-maintained node total always equals the
//!    sum of the per-class ledgers), and
//! 3. the queue state is a deterministic function of the op sequence —
//!    replaying the same seeded schedule reproduces every delay and every
//!    closed window bit-for-bit.

use cxl_sim::contention::{loaded_extra, LinkWindow};
use cxl_sim::prelude::*;
use proptest::prelude::*;

// The vendored proptest only implements `Strategy` for integer ranges, so
// fractional parameters are generated in permille and scaled.
fn link_params() -> impl Strategy<Value = LinkParams> {
    (
        (1_000_000u64..100_000_000_000, 0u64..980, 0u64..4000),
        (1000u64..32_000, 500u64..4000, 0u64..980, 0u64..100_000),
    )
        .prop_map(
            |((peak, knee, slope), (max_lf, wcost, bg, burst))| LinkParams {
                peak_bytes_per_sec: peak,
                knee: knee as f64 / 1000.0,
                slope: slope as f64 / 1000.0,
                max_load_factor: max_lf as f64 / 1000.0,
                write_cost_permille: wcost,
                background_load: bg as f64 / 1000.0,
                burst_capacity: Nanos(burst),
            },
        )
}

/// One scripted operation against a contention model. Time deltas are
/// per-op and non-negative, so the reconstructed schedule is always
/// non-decreasing — as the sim clock is.
#[derive(Clone, Copy, Debug)]
enum Op {
    Demand {
        node: bool,
        dt: u64,
    },
    Writeback {
        node: bool,
        dt: u64,
    },
    Bulk {
        node: bool,
        class: u8,
        bytes: u16,
        write: bool,
        dt: u64,
    },
    Rollover {
        dt: u64,
    },
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (any::<bool>(), 0u64..5_000).prop_map(|(node, dt)| Op::Demand { node, dt }),
        2 => (any::<bool>(), 0u64..5_000).prop_map(|(node, dt)| Op::Writeback { node, dt }),
        2 => (any::<bool>(), 0u8..3, 1u16..8192, any::<bool>(), 0u64..5_000)
            .prop_map(|(node, class, bytes, write, dt)| Op::Bulk { node, class, bytes, write, dt }),
        1 => (1u64..1_000_000).prop_map(|dt| Op::Rollover { dt }),
    ]
}

fn class_of(c: u8) -> TrafficClass {
    TrafficClass::ALL[c as usize % 3]
}

fn node_of(b: bool) -> NodeId {
    if b {
        NodeId::Cxl
    } else {
        NodeId::Ddr
    }
}

/// Replays `ops` against a fresh model, recording every billed delay and
/// every closed window.
fn replay(cfg: &ContentionConfig, ops: &[Op]) -> (Vec<Nanos>, Vec<[LinkWindow; 2]>) {
    let mut c = Contention::new(cfg, [Nanos(100), Nanos(270)]);
    let mut now = Nanos::ZERO;
    let mut delays = Vec::new();
    let mut windows = Vec::new();
    for &o in ops {
        match o {
            Op::Demand { node, dt } => {
                now += Nanos(dt);
                delays.push(c.demand_delay(node_of(node), now));
            }
            Op::Writeback { node, dt } => {
                now += Nanos(dt);
                c.writeback(node_of(node), now);
            }
            Op::Bulk {
                node,
                class,
                bytes,
                write,
                dt,
            } => {
                now += Nanos(dt);
                delays.push(c.bulk_delay(node_of(node), class_of(class), bytes as u64, write, now));
            }
            Op::Rollover { dt } => {
                now += Nanos(dt);
                windows.push(c.rollover(now));
            }
        }
        // Conservation must hold after *every* op, not just at rollover.
        for node in [NodeId::Ddr, NodeId::Cxl] {
            let (per_class, total) = c.window_billed(node);
            assert_eq!(per_class.iter().sum::<u64>(), total);
        }
    }
    windows.push(c.rollover(now + Nanos(1)));
    (delays, windows)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Loaded latency is monotone non-decreasing in offered load and the
    /// loaded value (unloaded + extra) never drops below the unloaded
    /// floor, for any parameter set.
    #[test]
    fn curve_is_monotone_and_floored(
        p in link_params(),
        unloaded in 1u64..100_000,
        lo_pm in 0u64..2000,
        hi_pm in 0u64..2000,
    ) {
        let u = Nanos(unloaded);
        let (lo_pm, hi_pm) = if lo_pm <= hi_pm { (lo_pm, hi_pm) } else { (hi_pm, lo_pm) };
        let (lo, hi) = (lo_pm as f64 / 1000.0, hi_pm as f64 / 1000.0);
        let e_lo = loaded_extra(u, lo, &p);
        let e_hi = loaded_extra(u, hi, &p);
        prop_assert!(e_hi >= e_lo, "extra({hi}) = {e_hi:?} < extra({lo}) = {e_lo:?}");
        // Never below the unloaded floor: extra is non-negative by type
        // (Nanos wraps u64), so loaded = unloaded + extra >= unloaded.
        prop_assert!(u + e_lo >= u);
        // And bounded by the configured cap.
        let cap = (u.0 as f64 * (p.max_load_factor - 1.0).max(0.0)) as u64;
        prop_assert!(e_hi.0 <= cap + 1, "extra {e_hi:?} above cap {cap}");
    }

    /// Per-window billed ns conserve across traffic classes under any op
    /// interleaving: every closed window's class ledgers sum to its
    /// independently-accumulated total, and cumulative totals partition
    /// the same way.
    #[test]
    fn billed_ns_conserve_across_classes(ops in prop::collection::vec(op(), 1..400)) {
        let cfg = ContentionConfig::enabled_default().with_cxl_background(0.7);
        let (_, windows) = replay(&cfg, &ops);
        let mut window_sum = [0u64; 2];
        for pair in &windows {
            for (n, w) in pair.iter().enumerate() {
                prop_assert_eq!(
                    w.billed_ns.iter().sum::<u64>(),
                    w.total_ns,
                    "closed-window class ledgers must sum to the total"
                );
                window_sum[n] += w.total_ns;
            }
        }
        // Cross-check against the cumulative ledger: every billed ns left
        // through exactly one closed window (replay() closes the tail).
        let mut c = Contention::new(&cfg, [Nanos(100), Nanos(270)]);
        let mut now = Nanos::ZERO;
        for &o in &ops {
            match o {
                Op::Demand { node, dt } => { now += Nanos(dt); let _ = c.demand_delay(node_of(node), now); }
                Op::Writeback { node, dt } => { now += Nanos(dt); c.writeback(node_of(node), now); }
                Op::Bulk { node, class, bytes, write, dt } => {
                    now += Nanos(dt);
                    let _ = c.bulk_delay(node_of(node), class_of(class), bytes as u64, write, now);
                }
                Op::Rollover { dt } => { now += Nanos(dt); let _ = c.rollover(now); }
            }
        }
        for (n, node) in [NodeId::Ddr, NodeId::Cxl].into_iter().enumerate() {
            let (open, open_total) = c.window_billed(node);
            prop_assert_eq!(open.iter().sum::<u64>(), open_total);
            prop_assert_eq!(
                c.total_billed(node).iter().sum::<u64>(),
                window_sum[n],
                "cumulative billed ns must equal the sum over closed windows"
            );
        }
    }

    /// The queue is deterministic: replaying an identical op schedule
    /// reproduces every delay and every closed window exactly.
    #[test]
    fn queue_state_is_deterministic(ops in prop::collection::vec(op(), 1..300)) {
        let cfg = ContentionConfig::enabled_default().with_cxl_background(0.5);
        let (d1, w1) = replay(&cfg, &ops);
        let (d2, w2) = replay(&cfg, &ops);
        prop_assert_eq!(d1, d2, "delays must replay bit-for-bit");
        prop_assert_eq!(w1, w2, "windows must replay bit-for-bit");
    }

    /// A disabled config never produces delay through the system path:
    /// `System` guards on the cached flag, so the model is never consulted
    /// — but even if it were, a zero-background disabled-params model
    /// starts with an empty queue.
    #[test]
    fn more_offered_load_never_lowers_the_standing_curve(
        bg_a in 0u64..980,
        bg_b in 0u64..980,
    ) {
        let (bg_a, bg_b) = (bg_a as f64 / 1000.0, bg_b as f64 / 1000.0);
        let (lo, hi) = if bg_a <= bg_b { (bg_a, bg_b) } else { (bg_b, bg_a) };
        let calm = Contention::new(
            &ContentionConfig::enabled_default().with_cxl_background(lo),
            [Nanos(100), Nanos(270)],
        );
        let busy = Contention::new(
            &ContentionConfig::enabled_default().with_cxl_background(hi),
            [Nanos(100), Nanos(270)],
        );
        prop_assert!(
            busy.extra_estimate(NodeId::Cxl, Nanos::ZERO)
                >= calm.extra_estimate(NodeId::Cxl, Nanos::ZERO)
        );
    }
}
