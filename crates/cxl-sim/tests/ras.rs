//! End-to-end tests of the memory RAS subsystem at the `System` level:
//! correctable-error trending into predictive page offlining, live node
//! evacuation with typed allocation/migration errors, graceful survivor
//! exhaustion, degraded-link latency, and — the golden-hygiene contract —
//! full quiescence on fault-free runs.

use cxl_sim::faults::{DeviceFault, FaultKind, FaultPlan, SimError};
use cxl_sim::kernel::CostKind;
use cxl_sim::memory::{NodeId, CXL_BASE_PFN};
use cxl_sim::migration::MigrateError;
use cxl_sim::prelude::*;
use cxl_sim::ras::{NodeHealth, RasConfig};
use cxl_sim::system::Region;
use m5_telemetry::Telemetry;

const PAGES: u64 = 16;

fn device(at: u64, fault: DeviceFault) -> (Nanos, FaultKind) {
    (Nanos(at), FaultKind::Device(fault))
}

fn system_with(faults: &[(Nanos, FaultKind)], ddr_frames: u64) -> (System, Region) {
    let mut plan = FaultPlan::none();
    for (at, kind) in faults {
        plan = plan.with(*at, *kind);
    }
    let mut sys = System::with_fault_plan(
        SystemConfig::small()
            .with_cxl_frames(64)
            .with_ddr_frames(ddr_frames),
        &plan,
    );
    sys.install_telemetry(Telemetry::enabled());
    let region = sys.alloc_region(PAGES, Placement::AllOnCxl).unwrap();
    (sys, region)
}

/// Drives `ras_service` with a small drain budget until the CXL node goes
/// `Offline` (or the round bound trips), interleaving demand accesses so
/// simulated time advances.
fn drive_to_offline(sys: &mut System, region: &Region) {
    let mut rounds = 0;
    while sys.ras().health(NodeId::Cxl) != NodeHealth::Offline {
        for p in 0..PAGES {
            sys.access(region.base.offset(p * PAGE_SIZE as u64), false);
        }
        sys.ras_service(4);
        rounds += 1;
        assert!(rounds < 1_000, "evacuation never concluded");
        assert!(
            sys.check_invariants().is_empty(),
            "round {rounds}: {:?}",
            sys.check_invariants()
        );
    }
}

#[test]
fn ce_trend_soft_offlines_the_frame_and_retires_it() {
    // Two correctable errors on frame 3 cross the default threshold.
    let (mut sys, region) = system_with(
        &[
            device(0, DeviceFault::CorrectableEcc { pfn: 3 }),
            device(0, DeviceFault::CorrectableEcc { pfn: 3 }),
        ],
        64,
    );
    let before = sys.kernel_costs().of(CostKind::RasScrub);
    let report = sys.ras_service(8);
    assert_eq!(report.frames_offlined, 1);
    assert_eq!(sys.offlined_frames(NodeId::Cxl), 1);
    assert_eq!(sys.ras().total_ce(NodeId::Cxl), 2);
    // The page that lived on the failing frame was migrated to the
    // survivor, not lost.
    let vpn = sys.page_table().vpn_of(Pfn(CXL_BASE_PFN + 3));
    assert_eq!(vpn, None, "retired frame no longer maps a page");
    assert_eq!(sys.nr_pages(NodeId::Ddr) + sys.nr_pages(NodeId::Cxl), PAGES);
    // The patrol walk billed scrub time to the RAS cost stream.
    assert!(sys.kernel_costs().of(CostKind::RasScrub) > before);
    // Health stays Healthy: two faults are below the degrade threshold.
    assert_eq!(sys.ras().health(NodeId::Cxl), NodeHealth::Healthy);
    assert!(sys.check_invariants().is_empty());

    sys.telemetry_mut().flush();
    let snap = sys.telemetry().snapshot();
    assert_eq!(snap.counter("sim.ras", "ce"), Some(2));
    assert_eq!(snap.counter("sim.ras", "offline-nominated"), Some(1));
    assert_eq!(snap.counter("sim.ras", "frame-offlined"), Some(1));
    // Every access still works after the offline.
    for p in 0..PAGES {
        sys.access(region.base.offset(p * PAGE_SIZE as u64), false);
    }
}

#[test]
fn hot_remove_drains_the_node_live_and_reports() {
    let (mut sys, region) = system_with(&[device(0, DeviceFault::HotRemovePrepare)], 64);
    drive_to_offline(&mut sys, &region);

    let report = *sys.ras().evacuation_report(NodeId::Cxl).unwrap();
    assert_eq!(report.node, NodeId::Cxl);
    assert_eq!(report.pages_moved, PAGES);
    assert_eq!(report.residual, 0);
    assert!(report.deadline_met);
    assert_eq!(sys.nr_pages(NodeId::Ddr), PAGES);
    assert_eq!(sys.nr_pages(NodeId::Cxl), 0);

    // The offline node rejects new placements with typed errors...
    match sys.alloc_region(1, Placement::AllOnCxl) {
        Err(SimError::NodeOffline(NodeId::Cxl)) => {}
        other => panic!("expected NodeOffline, got {other:?}"),
    }
    let err = sys.migrate_page(Vpn(0), NodeId::Cxl).unwrap_err();
    assert!(matches!(
        err,
        MigrateError::NodeOffline { node: NodeId::Cxl }
    ));
    assert!(!err.is_transient(), "offline is permanent, not a retry");

    // ...while demand access to the drained pages keeps working.
    for p in 0..PAGES {
        sys.access(region.base.offset(p * PAGE_SIZE as u64), false);
    }
    assert!(sys.check_invariants().is_empty());

    sys.telemetry_mut().flush();
    let snap = sys.telemetry().snapshot();
    assert_eq!(snap.counter("sim.ras", "hot-remove"), Some(1));
    assert_eq!(snap.counter("sim.ras", "pages-drained"), Some(PAGES));
    assert_eq!(snap.counter("sim.ras", "evacuations"), Some(1));
    assert_eq!(
        snap.gauge("sim.ras.health", NodeId::Cxl.label()),
        Some(NodeHealth::Offline.gauge())
    );
}

#[test]
fn drain_is_bounded_per_service_call() {
    let (mut sys, _region) = system_with(&[device(0, DeviceFault::HotRemovePrepare)], 64);
    let r = sys.ras_service(4);
    assert_eq!(r.pages_drained, 4, "one call drains at most the budget");
    assert_eq!(sys.nr_pages(NodeId::Cxl), PAGES - 4);
    assert_eq!(sys.ras().health(NodeId::Cxl), NodeHealth::Evacuating);
}

#[test]
fn exhausted_survivor_stalls_gracefully_then_concludes_at_deadline() {
    // DDR too small for the region: the drain stalls with a typed
    // capacity-exhaustion note, and deadline expiry forces the conclusion
    // with residual pages that stay accessible.
    let mut plan = FaultPlan::none();
    plan = plan.with(
        Nanos::ZERO,
        FaultKind::Device(DeviceFault::HotRemovePrepare),
    );
    let mut sys = System::with_fault_plan(
        SystemConfig::small()
            .with_cxl_frames(64)
            .with_ddr_frames(8)
            .with_ras(RasConfig {
                // Each drained page bills ~54 µs of migration time, so
                // filling the 8-frame survivor costs ~430 µs; 1 ms leaves
                // room to stall on the full survivor before expiring.
                evac_deadline: Nanos::from_millis(1),
                ..RasConfig::default()
            }),
        &plan,
    );
    let region = sys.alloc_region(PAGES, Placement::AllOnCxl).unwrap();
    let mut rounds = 0;
    while sys.ras().health(NodeId::Cxl) != NodeHealth::Offline {
        for p in 0..PAGES {
            sys.access(region.base.offset(p * PAGE_SIZE as u64), false);
        }
        sys.ras_service(4);
        rounds += 1;
        assert!(rounds < 1_000, "deadline expiry never concluded");
    }
    let report = *sys.ras().evacuation_report(NodeId::Cxl).unwrap();
    assert!(report.residual > 0, "survivor too small to absorb the node");
    assert!(!report.deadline_met);
    assert_eq!(report.residual, sys.nr_pages(NodeId::Cxl));
    assert_eq!(sys.nr_pages(NodeId::Ddr) + sys.nr_pages(NodeId::Cxl), PAGES);
    let notes = sys.degradations().join("\n");
    assert!(
        notes.contains("capacity exhausted"),
        "missing exhaustion note in: {notes}"
    );
    // Residual pages on the offline node still serve demand accesses.
    for p in 0..PAGES {
        sys.access(region.base.offset(p * PAGE_SIZE as u64), false);
    }
    assert!(sys.check_invariants().is_empty());
}

#[test]
fn degraded_link_inflates_cxl_access_latency() {
    let run = |faults: &[(Nanos, FaultKind)]| {
        let (mut sys, region) = system_with(faults, 64);
        for _ in 0..50 {
            for p in 0..PAGES {
                sys.access(region.base.offset(p * PAGE_SIZE as u64), false);
            }
        }
        sys.now()
    };
    let clean = run(&[]);
    let degraded = run(&[device(0, DeviceFault::LinkDegrade { factor: 300 })]);
    assert!(
        degraded > clean,
        "3x link factor must cost time: {degraded:?} <= {clean:?}"
    );
}

/// Golden hygiene: on a fault-free run the RAS layer must be fully
/// quiescent — no counters, no gauge, no scrub billing, and a service call
/// is a no-op that changes nothing.
#[test]
fn fault_free_runs_leave_the_ras_layer_byte_quiescent() {
    let (mut sys, region) = system_with(&[], 64);
    for _ in 0..20 {
        for p in 0..PAGES {
            sys.access(region.base.offset(p * PAGE_SIZE as u64), false);
        }
        let r = sys.ras_service(8);
        assert_eq!(r, cxl_sim::system::RasServiceReport::default());
    }
    assert!(sys.ras().quiescent());
    assert_eq!(sys.ras().health(NodeId::Cxl), NodeHealth::Healthy);
    assert_eq!(sys.offlined_frames(NodeId::Cxl), 0);
    assert_eq!(sys.kernel_costs().of(CostKind::RasScrub), Nanos::ZERO);
    sys.telemetry_mut().flush();
    let snap = sys.telemetry().snapshot();
    assert_eq!(snap.counter_total("sim.ras"), 0);
    assert_eq!(snap.gauge("sim.ras.health", NodeId::Cxl.label()), None);
}
