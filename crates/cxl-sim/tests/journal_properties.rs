//! Property tests for the transactional migration engine: arbitrary
//! interleavings of migrations, demotions, aging, accesses, and injected
//! faults (copy failures, controller resets) must never leak a frame,
//! double-map a frame, or lose one from quarantine — checked by running
//! [`System::check_invariants`] after every step — and quarantine scrubbing
//! must eventually return every poisoned frame to the allocator.

use cxl_sim::prelude::*;
use proptest::prelude::*;

const PAGES: u64 = 32;

#[derive(Clone, Debug)]
enum Op {
    /// Try to promote page `i % PAGES` to DDR.
    Promote(u64),
    /// Try to demote page `i % PAGES` to CXL.
    Demote(u64),
    /// Promote with demotion-for-room, the Promoter's batch path.
    PromoteBatch(u64),
    /// One MGLRU aging pass.
    Age,
    /// Touch a byte of page `i % PAGES` (advances the clock).
    Access(u64),
    /// Arm `1 + n % 3` migration copy failures.
    InjectCopyFail(u8),
    /// Arm a controller reset `1 + n % 6` journal steps in the future.
    InjectReset(u8),
    /// Replay the journal.
    Recover,
    /// Scrub up to 4 quarantined frames per node.
    Scrub,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => any::<u64>().prop_map(Op::Promote),
        3 => any::<u64>().prop_map(Op::Demote),
        2 => any::<u64>().prop_map(Op::PromoteBatch),
        1 => Just(Op::Age),
        4 => any::<u64>().prop_map(Op::Access),
        2 => any::<u8>().prop_map(Op::InjectCopyFail),
        2 => any::<u8>().prop_map(Op::InjectReset),
        2 => Just(Op::Recover),
        2 => Just(Op::Scrub),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_interleavings_never_leak_or_double_map(
        ops in prop::collection::vec(op_strategy(), 1..100)
    ) {
        // DDR deliberately smaller than the region so promotions hit
        // capacity pressure and the demotion-for-room path.
        let mut sys = System::new(
            SystemConfig::small().with_ddr_frames(12).with_cxl_frames(64),
        );
        let region = sys.alloc_region(PAGES, Placement::AllOnCxl).unwrap();
        let vpns: Vec<Vpn> = region.vpns().collect();

        for op in &ops {
            match op {
                Op::Promote(i) => {
                    let _ = sys.migrate_page(vpns[(*i % PAGES) as usize], NodeId::Ddr);
                }
                Op::Demote(i) => {
                    let _ = sys.migrate_page(vpns[(*i % PAGES) as usize], NodeId::Cxl);
                }
                Op::PromoteBatch(i) => {
                    let _ = sys.promote_with_demotion(&[vpns[(*i % PAGES) as usize]], 2);
                }
                Op::Age => {
                    sys.mglru_age();
                }
                Op::Access(i) => {
                    sys.access(region.base.offset((*i % PAGES) * PAGE_SIZE as u64), false);
                }
                Op::InjectCopyFail(n) => {
                    sys.install_fault_plan(&FaultPlan::none().with(
                        Nanos::ZERO,
                        FaultKind::MigrationCopyFail {
                            attempts: 1 + u32::from(*n) % 3,
                        },
                    ));
                }
                Op::InjectReset(n) => {
                    let at_step = sys.journal().steps() + 1 + u64::from(*n) % 6;
                    sys.install_fault_plan(&FaultPlan::none().with(
                        Nanos::ZERO,
                        FaultKind::ControllerReset { at_step },
                    ));
                }
                Op::Recover => {
                    let _ = sys.recover();
                }
                Op::Scrub => {
                    sys.scrub_quarantine(4);
                }
            }
            let violations = sys.check_invariants();
            prop_assert!(violations.is_empty(), "after {op:?}: {violations:?}");
        }

        // Drain: recovery closes any fenced transaction, and repeated
        // scrubbing must return every quarantined frame to the allocator.
        sys.recover();
        let mut rounds = 0;
        while sys.quarantined_frames(NodeId::Ddr) + sys.quarantined_frames(NodeId::Cxl) > 0 {
            prop_assert!(sys.scrub_quarantine(8) > 0, "scrub stopped making progress");
            rounds += 1;
            prop_assert!(rounds < 1_000, "quarantine never drained");
        }
        let violations = sys.check_invariants();
        prop_assert!(violations.is_empty(), "after drain: {violations:?}");

        // No frame leaked: with the journal empty and quarantine drained,
        // every node's frames are exactly free + mapped.
        prop_assert!(sys.journal().open().is_empty());
        for node in NodeId::ALL {
            let mapped = sys
                .page_table()
                .iter_mapped()
                .filter(|(_, pte)| pte.node() == node)
                .count() as u64;
            prop_assert_eq!(sys.nr_pages(node), mapped, "{} allocated != mapped", node);
        }
    }
}
