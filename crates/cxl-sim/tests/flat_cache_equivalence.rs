//! Differential property tests pinning the flattened LLC/TLB to the old
//! nested-`Vec<Vec<_>>` implementation.
//!
//! The flat structures encode each set's exact-LRU order positionally in a
//! contiguous slice of a single array (MRU at the valid prefix's front,
//! packed dirty bit, `u64::MAX` empty sentinel). These tests drive the
//! real [`Llc`]/[`Tlb`] and a faithful re-implementation of the pre-flat
//! nested data structures through identical random operation streams and
//! demand equality of *every* observable: hit/miss results, writeback
//! victims, counters, and occupancy. The tree-pLRU opt-in policy is
//! checked the same way against a nested reference that reuses the same
//! published tree-bit update rules.

use cxl_sim::addr::{CacheLineAddr, Vpn};
use cxl_sim::cache::{Llc, LlcConfig, ReplacementPolicy};
use cxl_sim::tlb::{Tlb, TlbConfig};
use proptest::prelude::*;

/// The old nested-Vec LLC: one MRU-ordered `Vec<(addr, dirty)>` per set.
struct NestedLlc {
    sets: Vec<Vec<(u64, bool)>>,
    ways: usize,
    hits: u64,
    misses: u64,
    writebacks: u64,
}

impl NestedLlc {
    fn new(config: LlcConfig) -> NestedLlc {
        NestedLlc {
            sets: vec![Vec::new(); config.sets()],
            ways: config.ways,
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    fn set_of(&mut self, line: CacheLineAddr) -> &mut Vec<(u64, bool)> {
        let n = self.sets.len();
        &mut self.sets[(line.0 as usize) % n]
    }

    fn access(&mut self, line: CacheLineAddr, is_write: bool) -> (bool, Option<CacheLineAddr>) {
        let ways = self.ways;
        let set = self.set_of(line);
        if let Some(p) = set.iter().position(|&(a, _)| a == line.0) {
            let (a, d) = set.remove(p);
            set.insert(0, (a, d || is_write));
            self.hits += 1;
            return (true, None);
        }
        let wb = if set.len() == ways {
            let (a, d) = set.pop().expect("full set");
            d.then_some(CacheLineAddr(a))
        } else {
            None
        };
        set.insert(0, (line.0, is_write));
        self.misses += 1;
        if wb.is_some() {
            self.writebacks += 1;
        }
        (false, wb)
    }

    fn fill(&mut self, line: CacheLineAddr, dirty: bool) -> Option<CacheLineAddr> {
        let ways = self.ways;
        let set = self.set_of(line);
        if let Some(p) = set.iter().position(|&(a, _)| a == line.0) {
            let (a, d) = set.remove(p);
            set.insert(0, (a, d || dirty));
            return None;
        }
        let wb = if set.len() == ways {
            let (a, d) = set.pop().expect("full set");
            d.then_some(CacheLineAddr(a))
        } else {
            None
        };
        set.insert(0, (line.0, dirty));
        if wb.is_some() {
            self.writebacks += 1;
        }
        wb
    }

    fn invalidate(&mut self, line: CacheLineAddr) -> Option<CacheLineAddr> {
        let set = self.set_of(line);
        let p = set.iter().position(|&(a, _)| a == line.0)?;
        let (a, d) = set.remove(p);
        if d {
            self.writebacks += 1;
            Some(CacheLineAddr(a))
        } else {
            None
        }
    }

    fn contains(&self, line: CacheLineAddr) -> bool {
        self.sets[(line.0 as usize) % self.sets.len()]
            .iter()
            .any(|&(a, _)| a == line.0)
    }

    fn occupancy(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

/// The old nested-Vec TLB: one MRU-ordered `Vec<u64>` per set.
struct NestedTlb {
    sets: Vec<Vec<u64>>,
    ways: usize,
    hits: u64,
    misses: u64,
    invalidations: u64,
}

impl NestedTlb {
    fn new(config: TlbConfig) -> NestedTlb {
        NestedTlb {
            sets: vec![Vec::new(); config.entries / config.ways],
            ways: config.ways,
            hits: 0,
            misses: 0,
            invalidations: 0,
        }
    }

    fn set_of(&mut self, vpn: Vpn) -> &mut Vec<u64> {
        let n = self.sets.len();
        &mut self.sets[(vpn.0 as usize) % n]
    }

    fn lookup(&mut self, vpn: Vpn) -> bool {
        let set = self.set_of(vpn);
        if let Some(p) = set.iter().position(|&v| v == vpn.0) {
            let v = set.remove(p);
            set.insert(0, v);
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    fn insert(&mut self, vpn: Vpn) {
        let ways = self.ways;
        let set = self.set_of(vpn);
        if set.contains(&vpn.0) {
            return;
        }
        if set.len() == ways {
            set.pop();
        }
        set.insert(0, vpn.0);
    }

    fn invalidate(&mut self, vpn: Vpn) -> bool {
        let set = self.set_of(vpn);
        match set.iter().position(|&v| v == vpn.0) {
            Some(p) => {
                set.remove(p);
                self.invalidations += 1;
                true
            }
            None => false,
        }
    }

    fn flush(&mut self) {
        self.invalidations += self.occupancy() as u64;
        for s in &mut self.sets {
            s.clear();
        }
    }

    fn occupancy(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

/// Reference tree-pLRU bit rules, matching the flat cache's published
/// scheme: each internal node's bit points toward the *colder* child;
/// touching a way flips the bits on its root path away from it.
fn ref_plru_touch(tree: &mut u64, levels: u32, way: usize) {
    let mut node = 1usize;
    for level in (0..levels).rev() {
        let bit = (way >> level) & 1;
        if bit == 0 {
            *tree |= 1 << node;
        } else {
            *tree &= !(1 << node);
        }
        node = node * 2 + bit;
    }
}

fn ref_plru_victim(tree: u64, levels: u32) -> usize {
    let mut node = 1usize;
    let mut way = 0usize;
    for _ in 0..levels {
        let bit = ((tree >> node) & 1) as usize;
        way = way * 2 + bit;
        node = node * 2 + bit;
    }
    way
}

/// A nested-storage tree-pLRU cache: per-set `Vec<Option<(addr, dirty)>>`
/// plus a tree-bit word, sharing the reference bit rules above.
struct NestedPlruLlc {
    sets: Vec<Vec<Option<(u64, bool)>>>,
    trees: Vec<u64>,
    levels: u32,
    writebacks: u64,
}

impl NestedPlruLlc {
    fn new(config: LlcConfig) -> NestedPlruLlc {
        NestedPlruLlc {
            sets: vec![vec![None; config.ways]; config.sets()],
            trees: vec![0; config.sets()],
            levels: config.ways.trailing_zeros(),
            writebacks: 0,
        }
    }

    fn access(&mut self, line: CacheLineAddr, is_write: bool) -> (bool, Option<CacheLineAddr>) {
        let idx = (line.0 as usize) % self.sets.len();
        let set = &mut self.sets[idx];
        let mut empty = None;
        for (w, e) in set.iter_mut().enumerate() {
            match e {
                Some((a, d)) if *a == line.0 => {
                    *d = *d || is_write;
                    ref_plru_touch(&mut self.trees[idx], self.levels, w);
                    return (true, None);
                }
                None if empty.is_none() => empty = Some(w),
                _ => {}
            }
        }
        let (way, wb) = match empty {
            Some(w) => (w, None),
            None => {
                let w = ref_plru_victim(self.trees[idx], self.levels);
                let (a, d) = set[w].expect("victim resident");
                if d {
                    self.writebacks += 1;
                    (w, Some(CacheLineAddr(a)))
                } else {
                    (w, None)
                }
            }
        };
        set[way] = Some((line.0, is_write));
        ref_plru_touch(&mut self.trees[idx], self.levels, way);
        (false, wb)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Flat exact-LRU LLC ≡ nested reference under interleaved demand
    /// accesses, migration fills, and invalidations, across geometries.
    #[test]
    fn flat_llc_equals_nested_llc(
        ways_sel in 0usize..3,
        ops in prop::collection::vec((0u64..192, any::<bool>(), 0u8..8), 1..500),
    ) {
        let config = match ways_sel {
            0 => LlcConfig { size_bytes: 2048, ways: 1 },
            1 => LlcConfig { size_bytes: 4096, ways: 2 },
            _ => LlcConfig { size_bytes: 8192, ways: 4 },
        };
        let mut flat = Llc::new(config);
        let mut nested = NestedLlc::new(config);
        for (addr, write, op) in ops {
            let line = CacheLineAddr(addr);
            match op {
                // Mostly demand accesses, some fills, some invalidations.
                0..=4 => {
                    let got = flat.access(line, write);
                    let (hit, wb) = nested.access(line, write);
                    prop_assert_eq!(got.hit, hit, "hit diverged at {}", addr);
                    prop_assert_eq!(got.writeback, wb, "writeback diverged at {}", addr);
                }
                5..=6 => {
                    prop_assert_eq!(flat.fill(line, write), nested.fill(line, write));
                }
                _ => {
                    prop_assert_eq!(flat.invalidate(line), nested.invalidate(line));
                }
            }
            prop_assert_eq!(flat.contains(line), nested.contains(line));
            prop_assert_eq!(flat.occupancy(), nested.occupancy());
        }
        prop_assert_eq!(flat.hits(), nested.hits);
        prop_assert_eq!(flat.misses(), nested.misses);
        prop_assert_eq!(flat.writebacks(), nested.writebacks);
    }

    /// Flat exact-LRU TLB ≡ nested reference under lookups, inserts,
    /// invalidations, and full flushes.
    #[test]
    fn flat_tlb_equals_nested_tlb(
        ways_sel in 0usize..2,
        ops in prop::collection::vec((0u64..96, 0u8..8), 1..500),
    ) {
        let config = match ways_sel {
            0 => TlbConfig { entries: 16, ways: 2 },
            _ => TlbConfig { entries: 64, ways: 4 },
        };
        let mut flat = Tlb::new(config);
        let mut nested = NestedTlb::new(config);
        for (v, op) in ops {
            let vpn = Vpn(v);
            match op {
                0..=3 => {
                    let got = flat.lookup(vpn);
                    prop_assert_eq!(got, nested.lookup(vpn), "lookup diverged at {}", v);
                    if !got {
                        flat.insert(vpn);
                        nested.insert(vpn);
                    }
                }
                4..=5 => {
                    flat.insert(vpn);
                    nested.insert(vpn);
                }
                6 => {
                    prop_assert_eq!(flat.invalidate(vpn), nested.invalidate(vpn));
                }
                _ => {
                    flat.flush();
                    nested.flush();
                }
            }
            prop_assert_eq!(flat.occupancy(), nested.occupancy());
        }
        prop_assert_eq!(flat.hits(), nested.hits);
        prop_assert_eq!(flat.misses(), nested.misses);
        prop_assert_eq!(flat.invalidations(), nested.invalidations);
    }

    /// The opt-in tree-pLRU policy matches a nested-storage reference that
    /// shares only the published bit-update rules.
    #[test]
    fn flat_plru_llc_equals_nested_plru(
        ops in prop::collection::vec((0u64..192, any::<bool>()), 1..500),
    ) {
        let config = LlcConfig { size_bytes: 8192, ways: 4 };
        let mut flat = Llc::with_policy(config, ReplacementPolicy::TreeLru);
        let mut nested = NestedPlruLlc::new(config);
        for (addr, write) in ops {
            let line = CacheLineAddr(addr);
            let got = flat.access(line, write);
            let (hit, wb) = nested.access(line, write);
            prop_assert_eq!(got.hit, hit, "pLRU hit diverged at {}", addr);
            prop_assert_eq!(got.writeback, wb, "pLRU writeback diverged at {}", addr);
        }
        prop_assert_eq!(flat.writebacks(), nested.writebacks);
    }
}
