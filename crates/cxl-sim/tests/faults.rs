//! Chaos harness for the fault injector: every injected fault class must
//! degrade the system observably but gracefully — never a panic — and runs
//! must stay deterministic per (workload seed, fault seed) pair.

use cxl_sim::addr::{CacheLineAddr, PAGE_SIZE};
use cxl_sim::controller::CxlDevice;
use cxl_sim::faults::{DeviceFault, FaultKind, FaultPlan};
use cxl_sim::kernel::CostKind;
use cxl_sim::memory::NodeId;
use cxl_sim::migration::MigrateError;
use cxl_sim::prelude::*;
use cxl_sim::report::RunReport;
use cxl_sim::system::{run, AccessStream, NoMigration};
use cxl_sim::time::Nanos;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::any::Any;

const PAGES: u64 = 64;
const ACCESSES: u64 = 50_000;

struct UniformStream {
    base: VirtAddr,
    rng: SmallRng,
    remaining: u64,
}

impl AccessStream for UniformStream {
    fn next_access(&mut self) -> Option<Access> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let page = self.rng.gen_range(0..PAGES);
        let word = self.rng.gen_range(0u64..64) * 64;
        Some(Access::read(
            self.base.offset(page * PAGE_SIZE as u64 + word),
        ))
    }
}

fn fresh_system(plan: &FaultPlan) -> (System, UniformStream) {
    let mut sys = System::with_fault_plan(
        SystemConfig::small()
            .with_cxl_frames(256)
            .with_ddr_frames(128),
        plan,
    );
    let region = sys.alloc_region(PAGES, Placement::AllOnCxl).unwrap();
    let wl = UniformStream {
        base: region.base,
        rng: SmallRng::seed_from_u64(7),
        remaining: ACCESSES,
    };
    (sys, wl)
}

fn run_with(plan: &FaultPlan) -> RunReport {
    let (mut sys, mut wl) = fresh_system(plan);
    run(&mut sys, &mut wl, &mut NoMigration, u64::MAX)
}

/// A probe device that just counts what the controller shows it.
#[derive(Default)]
struct Probe {
    seen: u64,
    failed: bool,
}

impl CxlDevice for Probe {
    fn name(&self) -> &str {
        "probe"
    }

    fn on_access(&mut self, _line: CacheLineAddr, _is_write: bool, _now: Nanos) {
        self.seen += 1;
    }

    fn on_fault(&mut self, fault: DeviceFault) {
        if matches!(fault, DeviceFault::Fail) {
            self.failed = true;
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[test]
fn empty_plan_matches_plain_construction() {
    let baseline = run_with(&FaultPlan::none());
    let (mut sys, mut wl) = {
        let mut sys = System::new(
            SystemConfig::small()
                .with_cxl_frames(256)
                .with_ddr_frames(128),
        );
        let region = sys.alloc_region(PAGES, Placement::AllOnCxl).unwrap();
        let wl = UniformStream {
            base: region.base,
            rng: SmallRng::seed_from_u64(7),
            remaining: ACCESSES,
        };
        (sys, wl)
    };
    let plain = run(&mut sys, &mut wl, &mut NoMigration, u64::MAX);
    assert_eq!(baseline, plain, "FaultPlan::none() must be invisible");
    assert!(baseline.health.is_clean());
}

#[test]
fn chaos_runs_are_deterministic_per_seed() {
    let plan = FaultPlan::chaos(42, Nanos(2_000_000));
    let a = run_with(&plan);
    let b = run_with(&plan);
    assert_eq!(a, b, "same workload seed + same fault plan => same report");
    assert!(a.health.faults_injected > 0, "chaos plan actually fired");
}

#[test]
fn every_chaos_seed_survives_without_panicking() {
    for seed in 0..8 {
        let plan = FaultPlan::chaos(seed, Nanos(2_000_000));
        let report = run_with(&plan);
        assert_eq!(report.accesses, ACCESSES, "run completed under seed {seed}");
    }
}

#[test]
fn latency_spike_inflates_run_time() {
    let clean = run_with(&FaultPlan::none());
    let spiked = run_with(&FaultPlan::none().with(
        Nanos::ZERO,
        FaultKind::LatencySpike {
            extra: Nanos(500),
            duration: Nanos(u64::MAX / 2),
        },
    ));
    assert!(
        spiked.total_time > clean.total_time,
        "spiked {} <= clean {}",
        spiked.total_time,
        clean.total_time
    );
    assert_eq!(spiked.health.faults_injected, 1);
}

#[test]
fn controller_stall_blinds_devices() {
    let stall_plan = FaultPlan::none().with(
        Nanos::ZERO,
        FaultKind::ControllerStall {
            duration: Nanos(u64::MAX / 2),
        },
    );
    let (mut sys, mut wl) = fresh_system(&stall_plan);
    let h = sys.attach_device(Probe::default());
    let _ = run(&mut sys, &mut wl, &mut NoMigration, u64::MAX);
    let stalled_seen = sys.device::<Probe>(h).unwrap().seen;
    assert_eq!(stalled_seen, 0, "stalled controller must not snoop");

    let (mut sys, mut wl) = fresh_system(&FaultPlan::none());
    let h = sys.attach_device(Probe::default());
    let _ = run(&mut sys, &mut wl, &mut NoMigration, u64::MAX);
    assert!(sys.device::<Probe>(h).unwrap().seen > 0);
}

#[test]
fn poisoned_reads_are_repaired_not_fatal() {
    let plan = FaultPlan::none().with(Nanos::ZERO, FaultKind::PoisonLine { reads: 3 });
    let report = run_with(&plan);
    assert_eq!(report.accesses, ACCESSES);
    assert_eq!(report.health.poison_repairs, 3);
    assert!(
        report.kernel.of(CostKind::DaemonOther) > Nanos::ZERO,
        "memory-failure handling billed"
    );
}

#[test]
fn device_failure_reaches_attached_devices() {
    let plan = FaultPlan::none().with(Nanos::ZERO, FaultKind::Device(DeviceFault::Fail));
    let (mut sys, mut wl) = fresh_system(&plan);
    let h = sys.attach_device(Probe::default());
    let _ = run(&mut sys, &mut wl, &mut NoMigration, u64::MAX);
    assert!(sys.device::<Probe>(h).unwrap().failed);
}

#[test]
fn copy_failure_is_a_transient_rejection() {
    let plan = FaultPlan::none().with(Nanos::ZERO, FaultKind::MigrationCopyFail { attempts: 2 });
    let (mut sys, _) = fresh_system(&plan);
    let err = sys.migrate_page(Vpn(0), NodeId::Ddr).unwrap_err();
    assert!(matches!(err, MigrateError::Copy { .. }));
    assert!(err.is_transient());
    let err = sys.migrate_page(Vpn(0), NodeId::Ddr).unwrap_err();
    assert!(matches!(err, MigrateError::Copy { .. }));
    // Each failed copy quarantined its shadow frame on the destination.
    assert_eq!(sys.quarantined_frames(NodeId::Ddr), 2);
    // The budget of two failed attempts is spent; the third succeeds.
    sys.migrate_page(Vpn(0), NodeId::Ddr).unwrap();
    assert_eq!(sys.migration_stats().rejected, 2);
    assert_eq!(sys.migration_stats().promotions, 1);
    assert!(sys.check_invariants().is_empty());
    // Scrubbing returns both poisoned frames to the allocator.
    assert_eq!(sys.scrub_quarantine(16), 2);
    assert_eq!(sys.quarantined_frames(NodeId::Ddr), 0);
}

#[test]
fn ddr_pressure_rejects_promotions_until_it_clears() {
    let plan = FaultPlan::none().with(
        Nanos::ZERO,
        FaultKind::DdrPressure {
            duration: Nanos(1_000),
        },
    );
    let (mut sys, _) = fresh_system(&plan);
    let err = sys.migrate_page(Vpn(0), NodeId::Ddr).unwrap_err();
    assert!(matches!(err, MigrateError::NoFreeFrame(_)));
    assert!(err.is_transient());
    // Demotions to CXL are unaffected by DDR pressure, and once simulated
    // time passes the window the promotion goes through.
    while sys.now() <= Nanos(1_000) {
        sys.access(VirtAddr(0), false);
    }
    sys.migrate_page(Vpn(0), NodeId::Ddr).unwrap();
}

#[test]
fn unmapped_access_is_a_typed_error_not_a_panic() {
    let (mut sys, _) = fresh_system(&FaultPlan::none());
    let far = VirtAddr(PAGES * PAGE_SIZE as u64 + 123);
    let err = sys.try_access(far, false).unwrap_err();
    assert!(err.to_string().contains("unmapped"));
}
