//! Policy presets — the configurations evaluated in §7.2.
//!
//! The paper deliberately uses a *simple* policy (fscale `y = xⁿ` with `n`
//! between 3 and 6, `f_default` around 1) to demonstrate that HPT/HWT are
//! effective even without sophistication. These presets reproduce the
//! Figure 8/9 configurations.

use crate::hpt::HptConfig;
use crate::hwt::HwtConfig;
use crate::manager::elector::{ElectorConfig, FScale};
use crate::manager::nominator::NominatorMode;
use crate::manager::M5Config;
use crate::tracker_impl::TrackerAlgo;

/// The simple Elector policy of §7.2: `fscale(x) = xⁿ` with `n = 4`.
pub fn simple_elector() -> ElectorConfig {
    ElectorConfig {
        fscale: FScale::Power { n: 4.0 },
        ..ElectorConfig::default()
    }
}

/// M5 with the HPT-only Nominator and the CM-Sketch(32K) tracker — the
/// paper's headline configuration (`M5(HPT)` in Figure 9).
pub fn simple_hpt_policy() -> M5Config {
    M5Config {
        hpt: Some(HptConfig {
            algo: TrackerAlgo::cm_sketch_32k(),
            ..HptConfig::default()
        }),
        hwt: None,
        mode: NominatorMode::HptOnly,
        elector: simple_elector(),
        ..M5Config::default()
    }
}

/// M5 with the HWT-driven Nominator (`M5(HWT)` in Figure 9) — Guideline 4:
/// best for sparse-hot-page applications such as Redis and CacheLib.
pub fn simple_hwt_policy() -> M5Config {
    M5Config {
        hpt: None,
        hwt: Some(HwtConfig::default()),
        mode: NominatorMode::HwtDriven,
        elector: simple_elector(),
        ..M5Config::default()
    }
}

/// M5 with the HPT-driven Nominator (`M5(HPT+HWT)` in Figure 9) —
/// Guideline 3: best for mixed dense/sparse workloads such as roms and
/// Liblinear.
pub fn simple_hpt_hwt_policy() -> M5Config {
    M5Config {
        hpt: Some(HptConfig::default()),
        hwt: Some(HwtConfig::default()),
        mode: NominatorMode::HptDriven,
        elector: simple_elector(),
        ..M5Config::default()
    }
}

/// M5 with a Space-Saving(50) HPT — the FPGA-synthesizable alternative of
/// Figure 8.
pub fn space_saving_50_policy() -> M5Config {
    M5Config {
        hpt: Some(HptConfig {
            algo: TrackerAlgo::space_saving_50(),
            ..HptConfig::default()
        }),
        hwt: None,
        mode: NominatorMode::HptOnly,
        elector: simple_elector(),
        ..M5Config::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::M5Manager;

    #[test]
    fn presets_construct_valid_managers() {
        for (cfg, name) in [
            (simple_hpt_policy(), "m5-hpt"),
            (simple_hwt_policy(), "m5-hwt"),
            (simple_hpt_hwt_policy(), "m5-hpt+hwt"),
            (space_saving_50_policy(), "m5-hpt"),
        ] {
            use cxl_sim::system::MigrationDaemon;
            let m = M5Manager::new(cfg);
            assert_eq!(m.name(), name);
        }
    }

    #[test]
    fn space_saving_preset_uses_50_entries() {
        let cfg = space_saving_50_policy();
        assert_eq!(
            cfg.hpt.unwrap().algo,
            TrackerAlgo::SpaceSaving { entries: 50 }
        );
    }
}
