//! # m5-core — the M5 platform (§5): Track, Filter, and Migrate
//!
//! The paper's contribution, reproduced on top of the `cxl-sim` substrate:
//!
//! * [`hpt::HotPageTracker`] and [`hwt::HotWordTracker`] — near-memory
//!   devices in the CXL controller that cost-efficiently track the top-K
//!   hot 4 KiB pages and 64 B words using a CM-Sketch (or Space-Saving)
//!   top-K tracker. They observe every CXL DRAM access at zero host-CPU
//!   cost; only *querying* them costs the host an MMIO round trip.
//! * [`manager`] — the M5-manager, four user-space components plus a thin
//!   in-kernel Promoter:
//!   [`manager::monitor::Monitor`] (Table 1: `nr_pages`/`bw`/`bw_den`),
//!   [`manager::nominator::Nominator`] (`_HPA`/`_HWA`, HPT-only /
//!   HPT-driven / HWT-driven modes),
//!   [`manager::elector::Elector`] (Algorithm 1 with a pluggable
//!   `fscale`), and [`manager::promoter::Promoter`] (safety-checked
//!   `migrate_pages()`).
//! * [`manager::M5Manager`] — the composed migration daemon, pluggable
//!   into `cxl_sim::system::run` next to ANB and DAMON.
//! * [`policy`] — the §7.2 policy presets: the simple `y = xⁿ` fscale
//!   policy with CM-Sketch(32K) or Space-Saving(50) trackers, and the
//!   HPT-only / HPT-driven / HWT-driven nominator configurations of
//!   Figure 9.
//!
//! ```
//! use cxl_sim::prelude::*;
//! use m5_core::manager::{M5Config, M5Manager};
//! use m5_core::policy;
//!
//! let mut sys = System::new(SystemConfig::small());
//! let region = sys.alloc_region(32, Placement::AllOnCxl).unwrap();
//! let mut m5 = M5Manager::new(policy::simple_hpt_policy());
//! # let _ = (region, &mut m5);
//! // drive with cxl_sim::system::run(&mut sys, &mut workload, &mut m5, ..)
//! # let _: Option<M5Config> = None;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hpt;
pub mod hwt;
pub mod manager;
pub mod policy;
pub mod tracker_impl;
