//! The algorithm selection shared by HPT and HWT.

use m5_trackers::topk::{CmSketchTopK, SpaceSavingTopK, TopKAlgorithm};
use serde::{Deserialize, Serialize};

/// Which streaming algorithm backs a tracker (the Figure 7/8 design axis).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrackerAlgo {
    /// CM-Sketch with `rows × (entries/rows)` counters plus a K-entry CAM.
    CmSketch {
        /// Hash rows `H` (the paper fixes 4; 2–16 is a secondary effect).
        rows: usize,
        /// Total counters `N = H × W`.
        entries: usize,
    },
    /// Space-Saving with `entries` monitored counters.
    SpaceSaving {
        /// Monitored counters `N`.
        entries: usize,
    },
}

impl TrackerAlgo {
    /// The paper's full-system HPT configuration: CM-Sketch with N = 32K.
    pub fn cm_sketch_32k() -> TrackerAlgo {
        TrackerAlgo::CmSketch {
            rows: 4,
            entries: 32 * 1024,
        }
    }

    /// The FPGA-synthesizable Space-Saving configuration: N = 50.
    pub fn space_saving_50() -> TrackerAlgo {
        TrackerAlgo::SpaceSaving { entries: 50 }
    }

    /// Instantiates the tracker with `k` reported entries.
    pub fn build(self, k: usize, seed: u64) -> TrackerImpl {
        match self {
            TrackerAlgo::CmSketch { rows, entries } => {
                TrackerImpl::Cm(CmSketchTopK::with_total_entries(rows, entries, k, seed))
            }
            TrackerAlgo::SpaceSaving { entries } => {
                TrackerImpl::Ss(SpaceSavingTopK::new(entries, k))
            }
        }
    }
}

/// A concrete tracker instance.
#[derive(Clone, Debug)]
pub enum TrackerImpl {
    /// CM-Sketch-based.
    Cm(CmSketchTopK),
    /// Space-Saving-based.
    Ss(SpaceSavingTopK),
}

impl TrackerImpl {
    /// Serializes the tracker's SRAM contents — the sketch counter array
    /// plus the sorted CAM, or the Space-Saving monitored set — for a
    /// checkpoint. Construction parameters (geometry, seed, `k`) are not
    /// written: the restoring side rebuilds the tracker from its own
    /// [`TrackerAlgo`] and loads only the dynamic state into it.
    pub fn save(&self, w: &mut cxl_sim::checkpoint::StateWriter) {
        match self {
            TrackerImpl::Cm(t) => {
                w.put_u8(0);
                w.put_u32_slice(t.sketch().counters());
                w.put_u64(t.sketch().updates());
                let cam = t.cam().entries();
                w.put_u64(cam.len() as u64);
                for e in cam {
                    w.put_u64(e.addr);
                    w.put_u64(e.count);
                }
            }
            TrackerImpl::Ss(t) => {
                w.put_u8(1);
                let entries = t.inner().entries();
                w.put_u64(entries.len() as u64);
                for e in entries {
                    w.put_u64(e.addr);
                    w.put_u64(e.count);
                    w.put_u64(e.error);
                }
                w.put_u64(t.inner().total());
            }
        }
    }

    /// Loads checkpointed SRAM contents into a tracker rebuilt with the
    /// original construction parameters.
    ///
    /// # Errors
    ///
    /// Returns a [`cxl_sim::checkpoint::CodecError`] when the payload is
    /// truncated, describes the other algorithm variant, or fails the
    /// underlying geometry/ordering validation.
    pub fn load(
        &mut self,
        r: &mut cxl_sim::checkpoint::StateReader<'_>,
    ) -> Result<(), cxl_sim::checkpoint::CodecError> {
        use cxl_sim::checkpoint::CodecError;
        let tag = r.get_u8()?;
        match (tag, &mut *self) {
            (0, TrackerImpl::Cm(t)) => {
                let counters = r.get_u32_vec()?;
                let updates = r.get_u64()?;
                let n = r.get_u64()? as usize;
                let mut cam = Vec::with_capacity(n.min(r.remaining()));
                for _ in 0..n {
                    cam.push(m5_trackers::cam::CamEntry {
                        addr: r.get_u64()?,
                        count: r.get_u64()?,
                    });
                }
                if !t.load_state(&counters, updates, &cam) {
                    return Err(CodecError::BadValue {
                        what: "cm-sketch tracker state",
                        value: counters.len() as u64,
                    });
                }
            }
            (1, TrackerImpl::Ss(t)) => {
                let n = r.get_u64()? as usize;
                let mut entries = Vec::with_capacity(n.min(r.remaining()));
                for _ in 0..n {
                    entries.push(m5_trackers::spacesaving::SsEntry {
                        addr: r.get_u64()?,
                        count: r.get_u64()?,
                        error: r.get_u64()?,
                    });
                }
                let total = r.get_u64()?;
                if !t.load_state(&entries, total) {
                    return Err(CodecError::BadValue {
                        what: "space-saving tracker state",
                        value: entries.len() as u64,
                    });
                }
            }
            (tag, _) => {
                return Err(CodecError::BadValue {
                    what: "tracker algorithm tag",
                    value: tag as u64,
                });
            }
        }
        Ok(())
    }
}

impl TopKAlgorithm for TrackerImpl {
    fn record(&mut self, addr: u64) {
        match self {
            TrackerImpl::Cm(t) => t.record(addr),
            TrackerImpl::Ss(t) => t.record(addr),
        }
    }

    fn record_batch(&mut self, addrs: &[u64]) {
        match self {
            // Native row-major sketch sweep; Space-Saving has no batched
            // datapath (each update reads the previous one's state) and
            // takes the default loop.
            TrackerImpl::Cm(t) => t.record_batch(addrs),
            TrackerImpl::Ss(t) => t.record_batch(addrs),
        }
    }

    fn top_k(&self) -> Vec<(u64, u64)> {
        match self {
            TrackerImpl::Cm(t) => t.top_k(),
            TrackerImpl::Ss(t) => t.top_k(),
        }
    }

    fn reset(&mut self) {
        match self {
            TrackerImpl::Cm(t) => t.reset(),
            TrackerImpl::Ss(t) => t.reset(),
        }
    }

    fn entries(&self) -> usize {
        match self {
            TrackerImpl::Cm(t) => t.entries(),
            TrackerImpl::Ss(t) => t.entries(),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            TrackerImpl::Cm(t) => t.name(),
            TrackerImpl::Ss(t) => t.name(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_build_the_paper_configurations() {
        let cm = TrackerAlgo::cm_sketch_32k().build(5, 0);
        assert_eq!(cm.entries(), 32 * 1024);
        assert_eq!(cm.name(), "cm-sketch");
        let ss = TrackerAlgo::space_saving_50().build(5, 0);
        assert_eq!(ss.entries(), 50);
        assert_eq!(ss.name(), "space-saving");
    }

    #[test]
    fn both_variants_track_through_the_trait() {
        for algo in [TrackerAlgo::cm_sketch_32k(), TrackerAlgo::space_saving_50()] {
            let mut t = algo.build(3, 1);
            for _ in 0..10 {
                t.record(42);
            }
            t.record(7);
            let top = t.top_k();
            assert_eq!(top[0].0, 42, "{}", t.name());
            t.reset();
            assert!(t.top_k().is_empty() || t.top_k()[0].1 == 0);
        }
    }
}
