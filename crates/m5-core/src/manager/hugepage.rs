//! Huge-page extension (paper §8, "Hot huge pages").
//!
//! Applications that allocate 2 MiB huge pages need hotness at 2 MiB
//! granularity. The paper sketches two routes; this module implements the
//! first: derive hot 2 MiB page addresses by aggregating HPT's hot 4 KiB
//! page addresses (exactly as hot 4 KiB pages are derived from hot 64 B
//! words in §5.2), then consult the OS about which candidates actually
//! belong to allocated huge pages before migrating.

use cxl_sim::addr::Pfn;
use std::collections::HashMap;

/// 4 KiB pages per 2 MiB huge page.
pub const SUBPAGES_PER_HUGE: u64 = 512;

/// A 2 MiB huge-page frame number (`PFN >> 9`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HugePfn(pub u64);

impl HugePfn {
    /// The huge frame containing `pfn`.
    pub fn of(pfn: Pfn) -> HugePfn {
        HugePfn(pfn.0 / SUBPAGES_PER_HUGE)
    }

    /// The first 4 KiB frame of this huge page.
    pub fn base(self) -> Pfn {
        Pfn(self.0 * SUBPAGES_PER_HUGE)
    }
}

/// One aggregated candidate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HugePageEntry {
    /// The candidate huge frame.
    pub huge: HugePfn,
    /// Summed hotness of the contributing 4 KiB pages.
    pub count: u64,
    /// Number of distinct hot 4 KiB pages observed inside it (coverage:
    /// 1..=512). Low coverage with high count = a "sparse" huge page, the
    /// 2 MiB analogue of Observation 2.
    pub coverage: u32,
}

/// Aggregates epochs of HPT output into 2 MiB candidates.
#[derive(Clone, Debug, Default)]
pub struct HugePageAggregator {
    entries: HashMap<HugePfn, (u64, std::collections::HashSet<u64>)>,
}

impl HugePageAggregator {
    /// An empty aggregator.
    pub fn new() -> HugePageAggregator {
        HugePageAggregator::default()
    }

    /// Folds one epoch of hot 4 KiB pages into the candidates.
    pub fn observe(&mut self, hot_pages: &[(Pfn, u64)]) {
        for &(pfn, count) in hot_pages {
            let e = self.entries.entry(HugePfn::of(pfn)).or_default();
            e.0 += count;
            e.1.insert(pfn.0 % SUBPAGES_PER_HUGE);
        }
    }

    /// Number of candidate huge pages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The `k` hottest candidates, filtered by `is_huge_backed` — the
    /// OS-consultation step §8 requires (a candidate range might be
    /// backed by 4 KiB mappings, in which case 4 KiB migration applies
    /// instead).
    pub fn hottest(
        &self,
        k: usize,
        mut is_huge_backed: impl FnMut(HugePfn) -> bool,
    ) -> Vec<HugePageEntry> {
        let mut v: Vec<HugePageEntry> = self
            .entries
            .iter()
            .filter(|(&h, _)| is_huge_backed(h))
            .map(|(&huge, (count, cover))| HugePageEntry {
                huge,
                count: *count,
                coverage: cover.len() as u32,
            })
            .collect();
        v.sort_unstable_by(|a, b| b.count.cmp(&a.count).then(a.huge.cmp(&b.huge)));
        v.truncate(k);
        v
    }

    /// Clears the aggregation (per migration epoch).
    pub fn reset(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pfn_in(huge: u64, sub: u64) -> Pfn {
        Pfn(huge * SUBPAGES_PER_HUGE + sub)
    }

    #[test]
    fn huge_pfn_mapping() {
        assert_eq!(HugePfn::of(Pfn(0)), HugePfn(0));
        assert_eq!(HugePfn::of(Pfn(511)), HugePfn(0));
        assert_eq!(HugePfn::of(Pfn(512)), HugePfn(1));
        assert_eq!(HugePfn(3).base(), Pfn(1536));
    }

    #[test]
    fn aggregates_counts_and_coverage() {
        let mut agg = HugePageAggregator::new();
        agg.observe(&[
            (pfn_in(7, 0), 100),
            (pfn_in(7, 1), 50),
            (pfn_in(7, 0), 25), // same subpage again: counts add, coverage doesn't
            (pfn_in(9, 3), 10),
        ]);
        let top = agg.hottest(10, |_| true);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].huge, HugePfn(7));
        assert_eq!(top[0].count, 175);
        assert_eq!(top[0].coverage, 2);
        assert_eq!(top[1].huge, HugePfn(9));
    }

    #[test]
    fn os_consultation_filters_non_huge_ranges() {
        let mut agg = HugePageAggregator::new();
        agg.observe(&[(pfn_in(1, 0), 10), (pfn_in(2, 0), 99)]);
        // The OS says only huge frame 1 is actually a huge-page mapping.
        let top = agg.hottest(10, |h| h == HugePfn(1));
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].huge, HugePfn(1));
    }

    #[test]
    fn sparse_huge_pages_are_visible_through_coverage() {
        let mut agg = HugePageAggregator::new();
        // Huge page 4: one scorching subpage. Huge page 5: 100 warm ones.
        agg.observe(&[(pfn_in(4, 9), 1000)]);
        let warm: Vec<(Pfn, u64)> = (0..100).map(|s| (pfn_in(5, s), 8)).collect();
        agg.observe(&warm);
        let top = agg.hottest(2, |_| true);
        assert_eq!(top[0].huge, HugePfn(4), "hotter by count");
        assert_eq!(top[0].coverage, 1, "...but sparse");
        assert_eq!(top[1].coverage, 100, "the dense alternative is visible");
        agg.reset();
        assert!(agg.is_empty());
    }
}
