//! The M5-manager (§5.2): Monitor, Nominator, Elector, Promoter, composed
//! into a [`MigrationDaemon`] for the simulator's run loop.
//!
//! Everything except the Promoter's final `migrate_pages()` call runs in
//! user space in the paper's implementation; for the simulator the
//! distinction shows up only in the cost model (manager work is billed as
//! [`CostKind::ManagerQuery`], and is tiny compared to what ANB and DAMON
//! burn — that is Observation 3 turned into a design).

pub mod adaptive;
pub mod elector;
pub mod hugepage;
pub mod monitor;
pub mod nominator;
pub mod promoter;

use crate::hpt::{HotPageTracker, HptConfig};
use crate::hwt::{HotWordTracker, HwtConfig};
use cxl_sim::controller::DeviceHandle;
use cxl_sim::hotlog::HotPageLog;
use cxl_sim::kernel::CostKind;
use cxl_sim::system::{MigrationDaemon, System};
use cxl_sim::time::Nanos;
use elector::{Elector, ElectorConfig};
use monitor::Monitor;
use nominator::{Nominator, NominatorMode};
use promoter::{Promoter, PromoterConfig, PromoterStats};

/// Full M5 configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct M5Config {
    /// HPT device configuration (`None` omits the device; required unless
    /// the nominator is HWT-driven).
    pub hpt: Option<HptConfig>,
    /// HWT device configuration (`None` omits the device; required for the
    /// HPT-driven and HWT-driven nominators).
    pub hwt: Option<HwtConfig>,
    /// Nominator mechanism.
    pub mode: NominatorMode,
    /// Elector policy.
    pub elector: ElectorConfig,
    /// Promoter settings.
    pub promoter: PromoterConfig,
    /// Pages nominated (and promoted) per migration epoch.
    pub promote_batch: usize,
    /// §4.1 record-only mode: identify but never migrate.
    pub record_only: bool,
    /// Hot-page log capacity.
    pub hot_log_cap: usize,
    /// Migration time quota: skip promotion while cumulative migration
    /// time exceeds this fraction of elapsed time. At the simulator's
    /// compressed time scale, unthrottled `migrate_pages()` (~54 µs/page)
    /// would otherwise dominate short runs; real deployments amortise it
    /// over hours. Matches the DAMON baseline's quota for fairness.
    pub migration_time_budget: f64,
}

impl Default for M5Config {
    fn default() -> M5Config {
        M5Config {
            hpt: Some(HptConfig::default()),
            hwt: None,
            mode: NominatorMode::HptOnly,
            elector: ElectorConfig::default(),
            promoter: PromoterConfig::default(),
            promote_batch: 32,
            record_only: false,
            hot_log_cap: 128 * 1024,
            migration_time_budget: 0.25,
        }
    }
}

/// The composed M5-manager daemon.
#[derive(Debug)]
pub struct M5Manager {
    config: M5Config,
    monitor: Monitor,
    nominator: Nominator,
    elector: Elector,
    promoter: Promoter,
    hpt: Option<DeviceHandle>,
    hwt: Option<DeviceHandle>,
    wake: Option<Nanos>,
    log: HotPageLog,
    epochs: u64,
    migrate_epochs: u64,
}

impl M5Manager {
    /// Builds a manager from `config`.
    ///
    /// # Panics
    ///
    /// Panics if the nominator mode requires a tracker the config omits.
    pub fn new(config: M5Config) -> M5Manager {
        assert!(
            !config.mode.needs_hpt() || config.hpt.is_some(),
            "nominator mode {:?} requires an HPT",
            config.mode
        );
        assert!(
            !config.mode.needs_hwt() || config.hwt.is_some(),
            "nominator mode {:?} requires an HWT",
            config.mode
        );
        M5Manager {
            monitor: Monitor::new(),
            nominator: Nominator::new(config.mode),
            elector: Elector::new(config.elector),
            promoter: Promoter::new(config.promoter),
            hpt: None,
            hwt: None,
            wake: None,
            log: HotPageLog::new(config.hot_log_cap),
            epochs: 0,
            migrate_epochs: 0,
            config,
        }
    }

    /// The identified-hot-page log (§4.1's list).
    pub fn hot_log(&self) -> &HotPageLog {
        &self.log
    }

    /// Promoter statistics.
    pub fn promoter_stats(&self) -> PromoterStats {
        self.promoter.stats()
    }

    /// Manager epochs run so far.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Epochs in which the Elector chose to migrate.
    pub fn migrate_epochs(&self) -> u64 {
        self.migrate_epochs
    }

    fn query_trackers(
        &mut self,
        sys: &mut System,
    ) -> (Vec<(cxl_sim::addr::Pfn, u64)>, Vec<(cxl_sim::addr::CacheLineAddr, u64)>) {
        let query_cost = sys.config().costs.tracker_query;
        let hot_pages = match self.hpt {
            Some(h) => {
                sys.daemon_bill(CostKind::ManagerQuery, query_cost);
                sys.device_mut::<HotPageTracker>(h)
                    .map(|d| d.query())
                    .unwrap_or_default()
            }
            None => Vec::new(),
        };
        let hot_words = match self.hwt {
            Some(h) => {
                sys.daemon_bill(CostKind::ManagerQuery, query_cost);
                sys.device_mut::<HotWordTracker>(h)
                    .map(|d| d.query())
                    .unwrap_or_default()
            }
            None => Vec::new(),
        };
        (hot_pages, hot_words)
    }
}

impl MigrationDaemon for M5Manager {
    fn name(&self) -> &str {
        match (self.config.mode, self.config.record_only) {
            (NominatorMode::HptOnly, false) => "m5-hpt",
            (NominatorMode::HptDriven, false) => "m5-hpt+hwt",
            (NominatorMode::HwtDriven, false) => "m5-hwt",
            (NominatorMode::HptOnly, true) => "m5-hpt-record",
            (NominatorMode::HptDriven, true) => "m5-hpt+hwt-record",
            (NominatorMode::HwtDriven, true) => "m5-hwt-record",
        }
    }

    fn on_start(&mut self, sys: &mut System) {
        if let Some(cfg) = self.config.hpt {
            self.hpt = Some(sys.attach_device(HotPageTracker::new(cfg)));
        }
        if let Some(cfg) = self.config.hwt {
            self.hwt = Some(sys.attach_device(HotWordTracker::new(cfg)));
        }
        self.wake = Some(sys.now() + self.config.elector.min_period);
    }

    fn next_wake(&self) -> Option<Nanos> {
        self.wake
    }

    fn on_tick(&mut self, sys: &mut System) {
        self.epochs += 1;
        let stats = self.monitor.sample(sys);
        let decision = self.elector.decide(&stats);
        if decision.migrate {
            self.migrate_epochs += 1;
            let (hot_pages, hot_words) = self.query_trackers(sys);
            self.nominator.refresh(&hot_pages, &hot_words);
            // Oversample, then keep only candidates still resident on CXL:
            // tracker output is one epoch behind the page table, so some
            // reported frames have already moved or been freed.
            let mut nominated = Vec::with_capacity(self.config.promote_batch);
            for e in self.nominator.nominate(self.config.promote_batch * 4) {
                let live_on_cxl = sys
                    .page_table()
                    .vpn_of(e.pfn)
                    .and_then(|vpn| sys.page_table().get(vpn))
                    .is_some_and(|pte| pte.node() == cxl_sim::memory::NodeId::Cxl);
                if live_on_cxl {
                    nominated.push(e);
                    if nominated.len() >= self.config.promote_batch {
                        break;
                    }
                } else {
                    self.nominator.retire(e.pfn);
                }
            }
            for e in &nominated {
                if let Some(vpn) = sys.page_table().vpn_of(e.pfn) {
                    self.log.record(vpn, e.pfn);
                }
            }
            // Time quota: truncate this epoch's batch to the allowance
            // (each promotion implies a matching demotion at capacity, so
            // the allowance reserves 2x the per-page cost).
            let spent = sys.kernel_costs().of(CostKind::Migration).0 as f64;
            let allowed = self.config.migration_time_budget * sys.now().0.max(1) as f64 - spent;
            let per_page = sys.config().costs.migrate_per_page.0.max(1) as f64 * 2.0;
            nominated.truncate((allowed / per_page).max(0.0) as usize);
            if !self.config.record_only && !nominated.is_empty() {
                self.promoter.promote(sys, &nominated);
                for e in &nominated {
                    self.nominator.retire(e.pfn);
                }
            }
        }
        self.wake = Some(sys.now() + decision.period);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxl_sim::memory::NodeId;
    use cxl_sim::prelude::*;
    use cxl_sim::system::run;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    struct SkewedStream {
        base: VirtAddr,
        pages: u64,
        hot: u64,
        rng: SmallRng,
        remaining: u64,
    }

    impl AccessStream for SkewedStream {
        fn next_access(&mut self) -> Option<Access> {
            if self.remaining == 0 {
                return None;
            }
            self.remaining -= 1;
            let page = if self.rng.gen::<f64>() < 0.9 {
                self.rng.gen_range(0..self.hot)
            } else {
                self.rng.gen_range(self.hot..self.pages)
            };
            let off = self.rng.gen_range(0u64..64) * 64;
            Some(Access::read(self.base.offset(page * 4096 + off)))
        }
    }

    fn setup(config: M5Config) -> (System, SkewedStream, M5Manager) {
        let mut sys =
            System::new(SystemConfig::small().with_cxl_frames(1024).with_ddr_frames(256));
        let region = sys.alloc_region(512, Placement::AllOnCxl).unwrap();
        let wl = SkewedStream {
            base: region.base,
            pages: 512,
            hot: 16,
            rng: SmallRng::seed_from_u64(3),
            remaining: 300_000,
        };
        (sys, wl, M5Manager::new(config))
    }

    #[test]
    fn m5_hpt_promotes_the_hot_set() {
        let (mut sys, mut wl, mut m5) = setup(M5Config::default());
        let report = run(&mut sys, &mut wl, &mut m5, u64::MAX);
        assert!(report.migrations.promotions > 0);
        assert!(m5.epochs() > 0);
        assert!(!m5.hot_log().is_empty());
        let hot_on_ddr = (0..16)
            .filter(|&p| sys.page_table().get(Vpn(p)).unwrap().node() == NodeId::Ddr)
            .count();
        assert!(hot_on_ddr >= 12, "only {hot_on_ddr}/16 hot pages on DDR");
        // M5 takes no hinting faults — that is the whole point.
        assert_eq!(report.hinting_faults, 0);
    }

    #[test]
    fn m5_identification_cost_is_tiny() {
        let (mut sys, mut wl, mut m5) = setup(M5Config::default());
        let report = run(&mut sys, &mut wl, &mut m5, u64::MAX);
        let ident = report.kernel.identification_total();
        assert!(
            ident.0 < report.total_time.0 / 50,
            "manager overhead {} should be <2% of {}",
            ident,
            report.total_time
        );
    }

    #[test]
    fn hwt_driven_mode_runs_without_hpt() {
        let config = M5Config {
            hpt: None,
            hwt: Some(HwtConfig::default()),
            mode: NominatorMode::HwtDriven,
            ..M5Config::default()
        };
        let (mut sys, mut wl, mut m5) = setup(config);
        assert_eq!(m5.name(), "m5-hwt");
        let report = run(&mut sys, &mut wl, &mut m5, u64::MAX);
        assert!(report.migrations.promotions > 0, "hot words drive promotion");
    }

    #[test]
    fn hpt_plus_hwt_mode_attaches_both_devices() {
        let config = M5Config {
            hpt: Some(HptConfig::default()),
            hwt: Some(HwtConfig::default()),
            mode: NominatorMode::HptDriven,
            ..M5Config::default()
        };
        let (mut sys, mut wl, mut m5) = setup(config);
        let _ = run(&mut sys, &mut wl, &mut m5, 50_000);
        assert_eq!(m5.name(), "m5-hpt+hwt");
        assert!(m5.migrate_epochs() > 0);
    }

    #[test]
    fn record_only_never_migrates() {
        let config = M5Config {
            record_only: true,
            ..M5Config::default()
        };
        let (mut sys, mut wl, mut m5) = setup(config);
        let report = run(&mut sys, &mut wl, &mut m5, u64::MAX);
        assert_eq!(report.migrations.promotions, 0);
        assert!(!m5.hot_log().is_empty());
        assert_eq!(m5.name(), "m5-hpt-record");
    }

    #[test]
    fn migration_budget_caps_migration_time() {
        let config = M5Config {
            migration_time_budget: 0.05,
            ..M5Config::default()
        };
        let (mut sys, mut wl, mut m5) = setup(config);
        let report = run(&mut sys, &mut wl, &mut m5, u64::MAX);
        let spent = report.kernel.of(cxl_sim::kernel::CostKind::Migration).0 as f64;
        let elapsed = report.total_time.0 as f64;
        // One over-budget batch can overshoot slightly; 2x headroom.
        assert!(
            spent <= 0.05 * elapsed * 2.0,
            "migration {spent}ns exceeds 5% of {elapsed}ns"
        );
    }

    #[test]
    #[should_panic(expected = "requires an HWT")]
    fn misconfigured_mode_panics() {
        let _ = M5Manager::new(M5Config {
            hwt: None,
            mode: NominatorMode::HptDriven,
            ..M5Config::default()
        });
    }
}
