//! The M5-manager (§5.2): Monitor, Nominator, Elector, Promoter, composed
//! into a [`MigrationDaemon`] for the simulator's run loop.
//!
//! Everything except the Promoter's final `migrate_pages()` call runs in
//! user space in the paper's implementation; for the simulator the
//! distinction shows up only in the cost model (manager work is billed as
//! [`CostKind::ManagerQuery`], and is tiny compared to what ANB and DAMON
//! burn — that is Observation 3 turned into a design).

pub mod adaptive;
pub mod elector;
pub mod hugepage;
pub mod monitor;
pub mod nominator;
pub mod promoter;

use crate::hpt::{HotPageTracker, HptConfig};
use crate::hwt::{HotWordTracker, HwtConfig};
use cxl_sim::addr::{CacheLineAddr, Pfn, Vpn};
use cxl_sim::controller::DeviceHandle;
use cxl_sim::hotlog::HotPageLog;
use cxl_sim::kernel::CostKind;
use cxl_sim::memory::{NodeId, CXL_BASE_PFN};
use cxl_sim::system::{MigrationDaemon, System};
use cxl_sim::time::Nanos;
use elector::{Elector, ElectorConfig};
use monitor::Monitor;
use nominator::{Nominator, NominatorMode};
use promoter::{Promoter, PromoterConfig, PromoterStats};
use std::fmt;

/// Consecutive garbage query results a tracker may return before the
/// manager declares it failed and falls back to software identification.
const TRACKER_STRIKE_LIMIT: u8 = 2;

/// A rejected [`M5Config`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ConfigError {
    /// The nominator mode needs an HPT but `hpt` is `None`.
    MissingHpt(NominatorMode),
    /// The nominator mode needs an HWT but `hwt` is `None`.
    MissingHwt(NominatorMode),
    /// `promote_batch` is zero: the manager would never nominate anything.
    ZeroPromoteBatch,
    /// `migration_time_budget` is not a finite fraction in `(0, 1]`.
    BadMigrationBudget(f64),
    /// `hot_log_cap` is zero: every identified page would be dropped.
    ZeroHotLogCap,
    /// `congestion_knee` is not a finite factor greater than 1.0.
    BadCongestionKnee(f64),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::MissingHpt(mode) => {
                write!(f, "nominator mode {mode:?} requires an HPT")
            }
            ConfigError::MissingHwt(mode) => {
                write!(f, "nominator mode {mode:?} requires an HWT")
            }
            ConfigError::ZeroPromoteBatch => write!(f, "promote_batch must be nonzero"),
            ConfigError::BadMigrationBudget(b) => {
                write!(
                    f,
                    "migration_time_budget {b} must be a finite fraction in (0, 1]"
                )
            }
            ConfigError::ZeroHotLogCap => write!(f, "hot_log_cap must be nonzero"),
            ConfigError::BadCongestionKnee(k) => {
                write!(f, "congestion_knee {k} must be a finite factor > 1.0")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// One epoch's sanitized tracker output: hot pages from the HPT and hot
/// words from the HWT (either may be empty).
type TrackerOutput = (Vec<(Pfn, u64)>, Vec<(CacheLineAddr, u64)>);

/// Full M5 configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct M5Config {
    /// HPT device configuration (`None` omits the device; required unless
    /// the nominator is HWT-driven).
    pub hpt: Option<HptConfig>,
    /// HWT device configuration (`None` omits the device; required for the
    /// HPT-driven and HWT-driven nominators).
    pub hwt: Option<HwtConfig>,
    /// Nominator mechanism.
    pub mode: NominatorMode,
    /// Elector policy.
    pub elector: ElectorConfig,
    /// Promoter settings.
    pub promoter: PromoterConfig,
    /// Pages nominated (and promoted) per migration epoch.
    pub promote_batch: usize,
    /// §4.1 record-only mode: identify but never migrate.
    pub record_only: bool,
    /// Hot-page log capacity.
    pub hot_log_cap: usize,
    /// Migration time quota: skip promotion while cumulative migration
    /// time exceeds this fraction of elapsed time. At the simulator's
    /// compressed time scale, unthrottled `migrate_pages()` (~54 µs/page)
    /// would otherwise dominate short runs; real deployments amortise it
    /// over hours. Matches the DAMON baseline's quota for fairness.
    pub migration_time_budget: f64,
    /// Congestion backoff threshold: when the Monitor reports CXL's loaded
    /// latency at or above this multiple of its unloaded latency, the epoch
    /// halves its promotion batch — page copies share the congested link
    /// with demand traffic, and a storm of them is exactly what made the
    /// link slow. Inert when the contention model is disabled (loaded ==
    /// unloaded, factor 1.0 < any valid knee).
    pub congestion_knee: f64,
}

impl Default for M5Config {
    fn default() -> M5Config {
        M5Config {
            hpt: Some(HptConfig::default()),
            hwt: None,
            mode: NominatorMode::HptOnly,
            elector: ElectorConfig::default(),
            promoter: PromoterConfig::default(),
            promote_batch: 32,
            record_only: false,
            hot_log_cap: 128 * 1024,
            migration_time_budget: 0.25,
            congestion_knee: 2.0,
        }
    }
}

impl M5Config {
    /// Checks internal consistency, returning the first problem found.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.mode.needs_hpt() && self.hpt.is_none() {
            return Err(ConfigError::MissingHpt(self.mode));
        }
        if self.mode.needs_hwt() && self.hwt.is_none() {
            return Err(ConfigError::MissingHwt(self.mode));
        }
        if self.promote_batch == 0 {
            return Err(ConfigError::ZeroPromoteBatch);
        }
        if !self.migration_time_budget.is_finite()
            || self.migration_time_budget <= 0.0
            || self.migration_time_budget > 1.0
        {
            return Err(ConfigError::BadMigrationBudget(self.migration_time_budget));
        }
        if self.hot_log_cap == 0 {
            return Err(ConfigError::ZeroHotLogCap);
        }
        if !self.congestion_knee.is_finite() || self.congestion_knee <= 1.0 {
            return Err(ConfigError::BadCongestionKnee(self.congestion_knee));
        }
        Ok(())
    }
}

/// The composed M5-manager daemon.
#[derive(Debug)]
pub struct M5Manager {
    config: M5Config,
    monitor: Monitor,
    nominator: Nominator,
    elector: Elector,
    promoter: Promoter,
    hpt: Option<DeviceHandle>,
    hwt: Option<DeviceHandle>,
    wake: Option<Nanos>,
    log: HotPageLog,
    epochs: u64,
    migrate_epochs: u64,
    ras_drain_epochs: u64,
    name: String,
    fallback: bool,
    hpt_strikes: u8,
    hwt_strikes: u8,
    /// The previous epoch's CXL congestion factor (loaded/unloaded
    /// latency). The RAS evacuation drain runs *before* this epoch's
    /// Monitor sample, so it is shaped by the last sample instead — one
    /// epoch of lag, against a signal that builds over many epochs.
    last_congestion: f64,
}

impl M5Manager {
    /// Builds a manager from `config`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `config` fails [`M5Config::validate`].
    pub fn try_new(config: M5Config) -> Result<M5Manager, ConfigError> {
        config.validate()?;
        let name = match (config.mode, config.record_only) {
            (NominatorMode::HptOnly, false) => "m5-hpt",
            (NominatorMode::HptDriven, false) => "m5-hpt+hwt",
            (NominatorMode::HwtDriven, false) => "m5-hwt",
            (NominatorMode::HptOnly, true) => "m5-hpt-record",
            (NominatorMode::HptDriven, true) => "m5-hpt+hwt-record",
            (NominatorMode::HwtDriven, true) => "m5-hwt-record",
        };
        Ok(M5Manager {
            monitor: Monitor::new(),
            nominator: Nominator::new(config.mode),
            elector: Elector::new(config.elector),
            promoter: Promoter::new(config.promoter),
            hpt: None,
            hwt: None,
            wake: None,
            log: HotPageLog::new(config.hot_log_cap),
            epochs: 0,
            migrate_epochs: 0,
            ras_drain_epochs: 0,
            name: name.to_string(),
            fallback: false,
            hpt_strikes: 0,
            hwt_strikes: 0,
            last_congestion: 1.0,
            config,
        })
    }

    /// Builds a manager from `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; use [`M5Manager::try_new`]
    /// to handle the error instead.
    pub fn new(config: M5Config) -> M5Manager {
        M5Manager::try_new(config).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Whether tracker failure pushed the manager into software-only
    /// identification.
    pub fn in_software_fallback(&self) -> bool {
        self.fallback
    }

    /// The identified-hot-page log (§4.1's list).
    pub fn hot_log(&self) -> &HotPageLog {
        &self.log
    }

    /// Promoter statistics.
    pub fn promoter_stats(&self) -> PromoterStats {
        self.promoter.stats()
    }

    /// Manager epochs run so far.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Epochs in which the Elector chose to migrate.
    pub fn migrate_epochs(&self) -> u64 {
        self.migrate_epochs
    }

    /// Epochs whose RAS prologue drained at least one page off an
    /// evacuating node. A live evacuation spreads over many epochs (the
    /// drain is bounded by the promotion budget), so demand traffic never
    /// waits behind more than one bounded drain per epoch.
    pub fn ras_drain_epochs(&self) -> u64 {
        self.ras_drain_epochs
    }

    /// Serializes the manager for a checkpoint: component state, epoch
    /// counters, the hot-page log, and the attached trackers' SRAM
    /// contents. The `System` checkpoint deliberately excludes devices
    /// (they belong to whoever attached them), so the manager section
    /// carries them. Pair with [`M5Manager::restore`].
    pub fn save(&self, sys: &System, w: &mut cxl_sim::checkpoint::StateWriter) {
        w.put_str(&format!("{:?}", self.config));
        self.monitor.save(w);
        self.nominator.save(w);
        self.elector.save(w);
        self.promoter.save(w);
        match self.wake {
            Some(n) => {
                w.put_bool(true);
                w.put_u64(n.0);
            }
            None => w.put_bool(false),
        }
        self.log.save(w);
        w.put_u64(self.epochs);
        w.put_u64(self.migrate_epochs);
        w.put_u64(self.ras_drain_epochs);
        w.put_str(&self.name);
        w.put_bool(self.fallback);
        w.put_u8(self.hpt_strikes);
        w.put_u8(self.hwt_strikes);
        w.put_f64(self.last_congestion);
        match self.hpt.and_then(|h| sys.device::<HotPageTracker>(h)) {
            Some(d) => {
                w.put_bool(true);
                d.save(w);
            }
            None => w.put_bool(false),
        }
        match self.hwt.and_then(|h| sys.device::<HotWordTracker>(h)) {
            Some(d) => {
                w.put_bool(true);
                d.save(w);
            }
            None => w.put_bool(false),
        }
    }

    /// Rebuilds a manager from a checkpoint section, re-attaching fresh
    /// tracker devices to `sys` (which must itself have been restored from
    /// the matching checkpoint — its device table starts empty) and
    /// reloading their SRAM contents. `on_start` must NOT be called on the
    /// returned manager: the checkpointed run already started, and the
    /// restored `wake` deadline continues its epoch schedule. Drive it with
    /// [`cxl_sim::system::ChunkedRun::resume`] or a manual wakeup loop.
    ///
    /// # Errors
    ///
    /// Returns a [`cxl_sim::checkpoint::CodecError`] when `config` differs
    /// from the checkpointed one, fails validation, or the payload is
    /// truncated or internally inconsistent.
    pub fn restore(
        config: M5Config,
        sys: &mut System,
        r: &mut cxl_sim::checkpoint::StateReader<'_>,
    ) -> Result<M5Manager, cxl_sim::checkpoint::CodecError> {
        use cxl_sim::checkpoint::CodecError;
        let saved = r.get_str()?;
        if saved != format!("{config:?}") {
            return Err(CodecError::BadValue {
                what: "m5 config mismatch",
                value: saved.len() as u64,
            });
        }
        let mut m = M5Manager::try_new(config).map_err(|_| CodecError::BadValue {
            what: "m5 config invalid",
            value: 0,
        })?;
        m.monitor = Monitor::restore(r)?;
        m.nominator = Nominator::restore(r)?;
        m.elector = Elector::restore(config.elector, r)?;
        m.promoter = Promoter::restore(config.promoter, r)?;
        m.wake = if r.get_bool()? {
            Some(Nanos(r.get_u64()?))
        } else {
            None
        };
        m.log = HotPageLog::restore(r)?;
        m.epochs = r.get_u64()?;
        m.migrate_epochs = r.get_u64()?;
        m.ras_drain_epochs = r.get_u64()?;
        m.name = r.get_str()?;
        m.fallback = r.get_bool()?;
        m.hpt_strikes = r.get_u8()?;
        m.hwt_strikes = r.get_u8()?;
        m.last_congestion = r.get_f64()?;
        if let Some(cfg) = config.hpt {
            m.hpt = Some(sys.attach_device(HotPageTracker::new(cfg)));
        }
        if r.get_bool()? {
            let h = m.hpt.ok_or(CodecError::BadValue {
                what: "hpt state without an hpt config",
                value: 0,
            })?;
            sys.device_mut::<HotPageTracker>(h)
                .ok_or(CodecError::BadValue {
                    what: "hpt device lookup",
                    value: 0,
                })?
                .load(r)?;
        }
        if let Some(cfg) = config.hwt {
            m.hwt = Some(sys.attach_device(HotWordTracker::new(cfg)));
        }
        if r.get_bool()? {
            let h = m.hwt.ok_or(CodecError::BadValue {
                what: "hwt state without an hwt config",
                value: 0,
            })?;
            sys.device_mut::<HotWordTracker>(h)
                .ok_or(CodecError::BadValue {
                    what: "hwt device lookup",
                    value: 0,
                })?
                .load(r)?;
        }
        Ok(m)
    }

    fn query_trackers(&mut self, sys: &mut System) -> TrackerOutput {
        let query_cost = sys.config().costs.tracker_query;
        let cxl_frames = sys.config().cxl.capacity_frames;
        let pfn_ok = |pfn: Pfn| pfn.0 >= CXL_BASE_PFN && pfn.0 < CXL_BASE_PFN + cxl_frames;
        // Report batches are traced as spans so a JSONL consumer can line
        // up tracker output with the epoch that consumed it.
        let span = sys.telemetry().is_enabled().then(|| {
            let now = sys.now().0;
            sys.telemetry_mut().span_start(now, "m5.tracker.report", "")
        });

        let mut hot_pages = match self.hpt {
            Some(h) => {
                sys.daemon_bill(CostKind::ManagerQuery, query_cost);
                let (observed, out) = sys
                    .device_mut::<HotPageTracker>(h)
                    .map(|d| (d.observed(), d.query()))
                    .unwrap_or_default();
                let t = sys.telemetry_mut();
                t.counter_add("m5.tracker.queries", "hpt", 1);
                t.gauge_set("m5.tracker.observed", "hpt", observed as f64);
                t.gauge_set("m5.tracker.batch", "hpt", out.len() as f64);
                out
            }
            None => Vec::new(),
        };
        // Health check: a healthy HPT only ever reports frames inside the
        // CXL node it snoops, with counts far below saturation. Anything
        // else is a wedged or corrupted device; discard the batch and
        // strike the tracker.
        if hot_pages
            .iter()
            .any(|&(pfn, c)| !pfn_ok(pfn) || c == u64::MAX)
        {
            hot_pages.clear();
            self.hpt_strikes = self.hpt_strikes.saturating_add(1);
            sys.telemetry_mut()
                .counter_add("m5.tracker.strikes", "hpt", 1);
            if self.hpt_strikes >= TRACKER_STRIKE_LIMIT {
                self.engage_fallback(sys, "hpt");
            }
        }

        let mut hot_words = match self.hwt {
            Some(h) => {
                sys.daemon_bill(CostKind::ManagerQuery, query_cost);
                let (observed, out) = sys
                    .device_mut::<HotWordTracker>(h)
                    .map(|d| (d.observed(), d.query()))
                    .unwrap_or_default();
                let t = sys.telemetry_mut();
                t.counter_add("m5.tracker.queries", "hwt", 1);
                t.gauge_set("m5.tracker.observed", "hwt", observed as f64);
                t.gauge_set("m5.tracker.batch", "hwt", out.len() as f64);
                out
            }
            None => Vec::new(),
        };
        if hot_words
            .iter()
            .any(|&(line, c)| !pfn_ok(line.pfn()) || c == u64::MAX)
        {
            hot_words.clear();
            self.hwt_strikes = self.hwt_strikes.saturating_add(1);
            sys.telemetry_mut()
                .counter_add("m5.tracker.strikes", "hwt", 1);
            if self.hwt_strikes >= TRACKER_STRIKE_LIMIT {
                self.engage_fallback(sys, "hwt");
            }
        }
        if let Some(s) = span {
            let now = sys.now().0;
            sys.telemetry_mut().span_end(now, s);
        }
        (hot_pages, hot_words)
    }

    /// Switches to software-only hot-page identification after a tracker
    /// strikes out. The near-memory devices stay attached but are no longer
    /// queried; candidates come from PTE accessed-bit scans instead, and
    /// the mode change is recorded in the run report via the daemon name
    /// and the system's degradation log.
    fn engage_fallback(&mut self, sys: &mut System, which: &'static str) {
        if self.fallback {
            return;
        }
        self.fallback = true;
        if sys.telemetry().is_enabled() {
            let now = sys.now().0;
            let t = sys.telemetry_mut();
            t.counter_add("m5.fallback", which, 1);
            t.event(now, "m5.fallback", which);
        }
        sys.note_degradation(format!(
            "{}: {which} returned garbage {TRACKER_STRIKE_LIMIT}x; \
             falling back to software-only identification",
            self.name
        ));
        self.name.push_str("+sw-fallback");
        // Word-granular signals are gone; rank pages like HptOnly.
        self.nominator = Nominator::new(NominatorMode::HptOnly);
    }

    /// Software-only identification: scan the accessed bits of every PTE
    /// resident on CXL (billed like any other PTE scan). Granularity and
    /// cost match CPU-driven baselines — exactly the degradation the paper
    /// argues against, but correctness survives tracker loss.
    fn software_scan(&mut self, sys: &mut System) -> Vec<(Pfn, u64)> {
        let scanned: Vec<(Vpn, Pfn)> = sys
            .page_table()
            .pages_on(NodeId::Cxl)
            .map(|(vpn, pte)| (vpn, pte.pfn))
            .collect();
        let per_entry = sys.config().costs.pte_scan_per_entry;
        sys.daemon_bill(
            CostKind::PteScan,
            Nanos(per_entry.0.saturating_mul(scanned.len() as u64)),
        );
        scanned
            .into_iter()
            .filter(|&(vpn, _)| sys.page_table_mut().test_and_clear_accessed(vpn))
            .map(|(_, pfn)| (pfn, 1))
            .collect()
    }
}

impl MigrationDaemon for M5Manager {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_start(&mut self, sys: &mut System) {
        if let Some(cfg) = self.config.hpt {
            self.hpt = Some(sys.attach_device(HotPageTracker::new(cfg)));
        }
        if let Some(cfg) = self.config.hwt {
            self.hwt = Some(sys.attach_device(HotWordTracker::new(cfg)));
        }
        self.wake = Some(sys.now() + self.config.elector.min_period);
    }

    fn next_wake(&self) -> Option<Nanos> {
        self.wake
    }

    fn on_tick(&mut self, sys: &mut System) {
        self.epochs += 1;
        // Crash-recovery prologue: a controller reset mid-migration leaves
        // the engine fenced, and every migrate call would fail with
        // `NeedsRecovery` until the journal is replayed. Recover first so
        // the epoch proceeds on a consistent page table, and note the
        // degradation so the run report shows the reset was survived.
        if sys.needs_recovery() {
            let r = sys.recover();
            if sys.telemetry().is_enabled() {
                let now = sys.now().0;
                let t = sys.telemetry_mut();
                t.counter_add("m5.recovery", "replays", 1);
                t.event(now, "m5.recovery", "journal replayed");
            }
            sys.note_degradation(format!(
                "{}: controller reset recovered — {} txns scanned, \
                 {} aborted, {} rolled back, {} rolled forward",
                self.name, r.scanned, r.aborted, r.rolled_back, r.rolled_forward
            ));
        }
        // Return a few poisoned frames to circulation each epoch; the scrub
        // is bounded so one epoch never pays for a large backlog at once.
        sys.scrub_quarantine(8);
        // RAS prologue: patrol-scrub the CE trend, soft-offline failing
        // frames, and — while the CXL node is evacuating — drain a bounded
        // batch of pages to the survivor. The drain reuses the epoch's
        // promotion budget: promoting pages *toward* a dying tier is
        // pointless, so the budget reverses direction instead. Drain copies
        // ride the same congested link as demand traffic, so the previous
        // epoch's congestion sample halves the drain budget past the knee,
        // exactly as the backoff below halves the promotion batch.
        let mut drain_budget = self.config.promote_batch as u64;
        if self.last_congestion >= self.config.congestion_knee {
            drain_budget = (drain_budget / 2).max(1);
            sys.telemetry_mut()
                .counter_add("m5.congestion", "drain-backoff", 1);
        }
        let ras = sys.ras_service(drain_budget);
        if ras.pages_drained > 0 {
            self.ras_drain_epochs += 1;
        }
        let evacuating = sys.ras().health(NodeId::Cxl) >= cxl_sim::ras::NodeHealth::Evacuating;
        let stats = self.monitor.sample(sys);
        self.last_congestion = stats.congestion(NodeId::Cxl);
        // Congestion backoff: page copies ride the same CXL link as demand
        // traffic, so when the Monitor sees the loaded latency past the
        // knee, halve this epoch's promotion batch rather than pile more
        // copy traffic onto an already-queueing link. With the contention
        // model disabled loaded == unloaded and this never fires.
        let mut batch = self.config.promote_batch;
        if stats.congestion(NodeId::Cxl) >= self.config.congestion_knee {
            batch = (batch / 2).max(1);
            sys.telemetry_mut()
                .counter_add("m5.congestion", "backoff", 1);
        }
        let mut decision = self.elector.decide(&stats);
        if evacuating {
            // Suspend the promotion flow for the rest of the evacuation:
            // demotions would be rejected (`MigrateError::NodeOffline`) and
            // tracker output describes a node that is going away.
            decision.migrate = false;
            // Drain at the fastest epoch cadence. The elector's adaptive
            // period stretches toward `max_period` exactly when CXL looks
            // cold — which an evacuating node always does — and a stretched
            // period would starve the drain against the RAS deadline.
            decision.period = self.config.elector.min_period;
        }
        sys.telemetry_mut().counter_add(
            "m5.epochs",
            if decision.migrate { "migrate" } else { "hold" },
            1,
        );
        if decision.migrate {
            self.migrate_epochs += 1;
            let span = sys.telemetry().is_enabled().then(|| {
                let now = sys.now().0;
                sys.telemetry_mut().span_start(now, "m5.epoch", "migrate")
            });
            let (hot_pages, hot_words) = if self.fallback {
                (Vec::new(), Vec::new())
            } else {
                self.query_trackers(sys)
            };
            // query_trackers may have just engaged the fallback.
            let hot_pages = if self.fallback {
                self.software_scan(sys)
            } else {
                hot_pages
            };
            self.nominator.refresh(&hot_pages, &hot_words);
            // Oversample, then keep only candidates still resident on CXL:
            // tracker output is one epoch behind the page table, so some
            // reported frames have already moved or been freed.
            let mut nominated = Vec::with_capacity(batch);
            for e in self.nominator.nominate(batch * 4) {
                let live_on_cxl = sys
                    .page_table()
                    .vpn_of(e.pfn)
                    .and_then(|vpn| sys.page_table().get(vpn))
                    .is_some_and(|pte| pte.node() == NodeId::Cxl);
                if live_on_cxl {
                    nominated.push(e);
                    if nominated.len() >= batch {
                        break;
                    }
                } else {
                    self.nominator.retire(e.pfn);
                }
            }
            for e in &nominated {
                if let Some(vpn) = sys.page_table().vpn_of(e.pfn) {
                    self.log.record(vpn, e.pfn);
                }
            }
            // Time quota: truncate this epoch's batch to the allowance
            // (each promotion implies a matching demotion at capacity, so
            // the allowance reserves 2x the per-page cost).
            let spent = sys.kernel_costs().of(CostKind::Migration).0 as f64;
            let allowed = self.config.migration_time_budget * sys.now().0.max(1) as f64 - spent;
            let per_page = sys.config().costs.migrate_per_page.0.max(1) as f64 * 2.0;
            nominated.truncate((allowed / per_page).max(0.0) as usize);
            if !self.config.record_only && !nominated.is_empty() {
                self.promoter.promote(sys, &nominated);
                for e in &nominated {
                    self.nominator.retire(e.pfn);
                }
            }
            if let Some(s) = span {
                let now = sys.now().0;
                sys.telemetry_mut().span_end(now, s);
            }
        }
        self.wake = Some(sys.now() + decision.period);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxl_sim::memory::NodeId;
    use cxl_sim::prelude::*;
    use cxl_sim::system::run;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    struct SkewedStream {
        base: VirtAddr,
        pages: u64,
        hot: u64,
        rng: SmallRng,
        remaining: u64,
    }

    impl AccessStream for SkewedStream {
        fn next_access(&mut self) -> Option<Access> {
            if self.remaining == 0 {
                return None;
            }
            self.remaining -= 1;
            let page = if self.rng.gen::<f64>() < 0.9 {
                self.rng.gen_range(0..self.hot)
            } else {
                self.rng.gen_range(self.hot..self.pages)
            };
            let off = self.rng.gen_range(0u64..64) * 64;
            Some(Access::read(self.base.offset(page * 4096 + off)))
        }
    }

    fn setup(config: M5Config) -> (System, SkewedStream, M5Manager) {
        let mut sys = System::new(
            SystemConfig::small()
                .with_cxl_frames(1024)
                .with_ddr_frames(256),
        );
        let region = sys.alloc_region(512, Placement::AllOnCxl).unwrap();
        let wl = SkewedStream {
            base: region.base,
            pages: 512,
            hot: 16,
            rng: SmallRng::seed_from_u64(3),
            remaining: 300_000,
        };
        (sys, wl, M5Manager::new(config))
    }

    #[test]
    fn m5_hpt_promotes_the_hot_set() {
        let (mut sys, mut wl, mut m5) = setup(M5Config::default());
        let report = run(&mut sys, &mut wl, &mut m5, u64::MAX);
        assert!(report.migrations.promotions > 0);
        assert!(m5.epochs() > 0);
        assert!(!m5.hot_log().is_empty());
        let hot_on_ddr = (0..16)
            .filter(|&p| sys.page_table().get(Vpn(p)).unwrap().node() == NodeId::Ddr)
            .count();
        assert!(hot_on_ddr >= 12, "only {hot_on_ddr}/16 hot pages on DDR");
        // M5 takes no hinting faults — that is the whole point.
        assert_eq!(report.hinting_faults, 0);
    }

    #[test]
    fn m5_identification_cost_is_tiny() {
        let (mut sys, mut wl, mut m5) = setup(M5Config::default());
        let report = run(&mut sys, &mut wl, &mut m5, u64::MAX);
        let ident = report.kernel.identification_total();
        assert!(
            ident.0 < report.total_time.0 / 50,
            "manager overhead {} should be <2% of {}",
            ident,
            report.total_time
        );
    }

    #[test]
    fn hwt_driven_mode_runs_without_hpt() {
        let config = M5Config {
            hpt: None,
            hwt: Some(HwtConfig::default()),
            mode: NominatorMode::HwtDriven,
            ..M5Config::default()
        };
        let (mut sys, mut wl, mut m5) = setup(config);
        assert_eq!(m5.name(), "m5-hwt");
        let report = run(&mut sys, &mut wl, &mut m5, u64::MAX);
        assert!(
            report.migrations.promotions > 0,
            "hot words drive promotion"
        );
    }

    #[test]
    fn hpt_plus_hwt_mode_attaches_both_devices() {
        let config = M5Config {
            hpt: Some(HptConfig::default()),
            hwt: Some(HwtConfig::default()),
            mode: NominatorMode::HptDriven,
            ..M5Config::default()
        };
        let (mut sys, mut wl, mut m5) = setup(config);
        let _ = run(&mut sys, &mut wl, &mut m5, 50_000);
        assert_eq!(m5.name(), "m5-hpt+hwt");
        assert!(m5.migrate_epochs() > 0);
    }

    #[test]
    fn record_only_never_migrates() {
        let config = M5Config {
            record_only: true,
            ..M5Config::default()
        };
        let (mut sys, mut wl, mut m5) = setup(config);
        let report = run(&mut sys, &mut wl, &mut m5, u64::MAX);
        assert_eq!(report.migrations.promotions, 0);
        assert!(!m5.hot_log().is_empty());
        assert_eq!(m5.name(), "m5-hpt-record");
    }

    #[test]
    fn migration_budget_caps_migration_time() {
        let config = M5Config {
            migration_time_budget: 0.05,
            ..M5Config::default()
        };
        let (mut sys, mut wl, mut m5) = setup(config);
        let report = run(&mut sys, &mut wl, &mut m5, u64::MAX);
        let spent = report.kernel.of(cxl_sim::kernel::CostKind::Migration).0 as f64;
        let elapsed = report.total_time.0 as f64;
        // One over-budget batch can overshoot slightly; 2x headroom.
        assert!(
            spent <= 0.05 * elapsed * 2.0,
            "migration {spent}ns exceeds 5% of {elapsed}ns"
        );
    }

    #[test]
    fn manager_telemetry_mirrors_component_stats() {
        let (mut sys, mut wl, mut m5) = setup(M5Config::default());
        let mut t = Telemetry::enabled();
        let (sink, buf) = MemorySink::new();
        t.add_sink(Box::new(sink));
        sys.install_telemetry(t);
        let report = run(&mut sys, &mut wl, &mut m5, u64::MAX);

        let snap = sys.telemetry().snapshot();
        assert_eq!(snap.counter_total("m5.epochs"), m5.epochs());
        assert_eq!(
            snap.counter("m5.epochs", "migrate").unwrap_or(0),
            m5.migrate_epochs()
        );
        assert_eq!(
            snap.counter("m5.tracker.queries", "hpt").unwrap_or(0),
            m5.migrate_epochs(),
            "one HPT query per migrate epoch"
        );
        let stats = m5.promoter_stats();
        assert_eq!(
            snap.counter("m5.promoter", "promoted").unwrap_or(0),
            stats.promoted
        );
        assert_eq!(
            snap.counter("m5.promoter", "retried").unwrap_or(0),
            stats.retried
        );
        assert_eq!(
            snap.counter("m5.promoter", "gave-up").unwrap_or(0),
            stats.gave_up
        );
        assert_eq!(stats.promoted, report.migrations.promotions);
        assert!(
            snap.gauge("m5.tracker.observed", "hpt").is_some(),
            "occupancy gauge published"
        );
        assert!(snap.gauge("sim.bw.bytes_per_sec", "cxl").is_some());
        assert!(snap.gauge("sim.nr_pages", "ddr").is_some());

        // Migration epochs and tracker report batches trace as spans.
        let events = buf.lock().unwrap().events.clone();
        use cxl_sim::telemetry::EventKind;
        for name in ["m5.epoch", "m5.tracker.report"] {
            assert!(
                events
                    .iter()
                    .any(|e| e.name == name && e.kind == EventKind::SpanStart),
                "missing span start for {name}"
            );
            assert!(
                events
                    .iter()
                    .any(|e| e.name == name && matches!(e.kind, EventKind::SpanEnd { .. })),
                "missing span end for {name}"
            );
        }
    }

    #[test]
    fn controller_reset_is_recovered_next_epoch() {
        use cxl_sim::faults::{FaultKind, FaultPlan};
        // Fence the engine mid-transaction (step 2 is the CopyInProgress
        // append of the very first migration): the manager must replay the
        // journal on its next epoch and keep promoting afterwards.
        let plan = FaultPlan::none().with(Nanos::ZERO, FaultKind::ControllerReset { at_step: 2 });
        let mut sys = System::with_fault_plan(
            SystemConfig::small()
                .with_cxl_frames(1024)
                .with_ddr_frames(256),
            &plan,
        );
        let region = sys.alloc_region(512, Placement::AllOnCxl).unwrap();
        let mut wl = SkewedStream {
            base: region.base,
            pages: 512,
            hot: 16,
            rng: SmallRng::seed_from_u64(3),
            remaining: 300_000,
        };
        let mut m5 = M5Manager::new(M5Config::default());
        let report = run(&mut sys, &mut wl, &mut m5, u64::MAX);
        assert!(!sys.needs_recovery(), "manager replayed the journal");
        assert!(
            report.migrations.promotions > 0,
            "migrations resumed after recovery"
        );
        assert!(
            report
                .health
                .degraded
                .iter()
                .any(|d| d.contains("controller reset recovered")),
            "recovery recorded as a degradation: {:?}",
            report.health.degraded
        );
        assert!(sys.check_invariants().is_empty());
    }

    #[test]
    fn misconfigured_mode_is_a_typed_error() {
        let bad = M5Config {
            hwt: None,
            mode: NominatorMode::HptDriven,
            ..M5Config::default()
        };
        assert_eq!(
            bad.validate(),
            Err(ConfigError::MissingHwt(NominatorMode::HptDriven))
        );
        assert!(M5Manager::try_new(bad).is_err());
        assert!(M5Config::default().validate().is_ok());
        assert_eq!(
            M5Config {
                promote_batch: 0,
                ..M5Config::default()
            }
            .validate(),
            Err(ConfigError::ZeroPromoteBatch)
        );
        assert_eq!(
            M5Config {
                migration_time_budget: -1.0,
                ..M5Config::default()
            }
            .validate(),
            Err(ConfigError::BadMigrationBudget(-1.0))
        );
        assert_eq!(
            M5Config {
                congestion_knee: 1.0,
                ..M5Config::default()
            }
            .validate(),
            Err(ConfigError::BadCongestionKnee(1.0))
        );
        assert_eq!(
            M5Config {
                congestion_knee: f64::NAN,
                ..M5Config::default()
            }
            .validate()
            .is_err(),
            true
        );
    }

    #[test]
    fn congestion_backoff_fires_only_under_contention() {
        // A heavily background-loaded CXL link pushes the loaded latency
        // past the 2.0x knee, and the manager records backoff epochs; the
        // identical run with contention disabled records none.
        for (background, expect_backoff) in [(0.95, true), (0.0, false)] {
            let contention = if expect_backoff {
                ContentionConfig::enabled_default().with_cxl_background(background)
            } else {
                ContentionConfig::disabled()
            };
            let mut sys = System::new(
                SystemConfig::small()
                    .with_cxl_frames(1024)
                    .with_ddr_frames(256)
                    .with_contention(contention),
            );
            sys.install_telemetry(Telemetry::enabled());
            let region = sys.alloc_region(512, Placement::AllOnCxl).unwrap();
            let mut wl = SkewedStream {
                base: region.base,
                pages: 512,
                hot: 16,
                rng: SmallRng::seed_from_u64(3),
                remaining: 100_000,
            };
            let mut m5 = M5Manager::new(M5Config::default());
            let _ = run(&mut sys, &mut wl, &mut m5, u64::MAX);
            let backoffs = sys
                .telemetry()
                .snapshot()
                .counter("m5.congestion", "backoff")
                .unwrap_or(0);
            if expect_backoff {
                assert!(backoffs > 0, "saturated link must trigger backoff");
            } else {
                assert_eq!(backoffs, 0, "fixed-cost path must never back off");
            }
        }
    }

    #[test]
    fn evacuation_drain_budget_is_shaped_by_congestion() {
        // ROADMAP item 4: the congestion backoff must shape the RAS
        // evacuation drain budget too, not just the promotion batch. The
        // drain runs before the epoch's Monitor sample, so the shaping uses
        // the previous epoch's congestion — a saturated link records
        // drain-backoff epochs from the second epoch on, and the identical
        // uncontended run records none.
        for expect_backoff in [true, false] {
            let contention = if expect_backoff {
                ContentionConfig::enabled_default().with_cxl_background(0.95)
            } else {
                ContentionConfig::disabled()
            };
            let mut sys = System::new(
                SystemConfig::small()
                    .with_cxl_frames(1024)
                    .with_ddr_frames(256)
                    .with_contention(contention),
            );
            sys.install_telemetry(Telemetry::enabled());
            let region = sys.alloc_region(512, Placement::AllOnCxl).unwrap();
            let mut wl = SkewedStream {
                base: region.base,
                pages: 512,
                hot: 16,
                rng: SmallRng::seed_from_u64(3),
                remaining: 100_000,
            };
            let mut m5 = M5Manager::new(M5Config::default());
            let _ = run(&mut sys, &mut wl, &mut m5, u64::MAX);
            let backoffs = sys
                .telemetry()
                .snapshot()
                .counter("m5.congestion", "drain-backoff")
                .unwrap_or(0);
            if expect_backoff {
                assert!(backoffs > 0, "saturated link must shape the drain");
                assert!(
                    backoffs < m5.epochs(),
                    "first epoch has no congestion sample yet"
                );
            } else {
                assert_eq!(backoffs, 0, "fixed-cost path must never shape");
            }
        }
    }

    fn drive(
        sys: &mut System,
        m5: &mut M5Manager,
        run: &mut cxl_sim::system::ChunkedRun,
        wl: &mut SkewedStream,
        target: u64,
    ) {
        let mut chunk = cxl_sim::chunk::AccessChunk::with_capacity(512);
        while run.accesses() < target {
            chunk.clear();
            let left = (target - run.accesses()).min(512) as usize;
            chunk.set_limit(left);
            if wl.fill_chunk(&mut chunk) == 0 {
                break;
            }
            run.drive(sys, m5, &chunk, target);
        }
    }

    fn checkpoint_all(
        sys: &mut System,
        m5: &M5Manager,
        run: &cxl_sim::system::ChunkedRun,
    ) -> cxl_sim::checkpoint::Checkpoint {
        let mut cp = sys.checkpoint();
        let mut w = cxl_sim::checkpoint::StateWriter::new();
        m5.save(sys, &mut w);
        cp.add_section("m5", w.finish());
        let mut w = cxl_sim::checkpoint::StateWriter::new();
        run.save(&mut w);
        cp.add_section("run", w.finish());
        cp
    }

    #[test]
    fn manager_restore_continues_identically() {
        use cxl_sim::checkpoint::{Checkpoint, StateReader};
        use cxl_sim::faults::FaultPlan;
        use cxl_sim::system::ChunkedRun;
        let make_config = || {
            SystemConfig::small()
                .with_cxl_frames(1024)
                .with_ddr_frames(256)
        };
        let make_wl = |base: VirtAddr| SkewedStream {
            base,
            pages: 512,
            hot: 16,
            rng: SmallRng::seed_from_u64(3),
            remaining: 120_000,
        };
        let m5cfg = M5Config::default();
        let plan = FaultPlan::none();

        // A: the uninterrupted reference run.
        let mut sys_a = System::new(make_config());
        let region = sys_a.alloc_region(512, Placement::AllOnCxl).unwrap();
        let mut wl_a = make_wl(region.base);
        let mut m5_a = M5Manager::new(m5cfg);
        let mut run_a = ChunkedRun::begin(&mut sys_a, &mut m5_a);
        drive(&mut sys_a, &mut m5_a, &mut run_a, &mut wl_a, 120_000);
        let cp_a = checkpoint_all(&mut sys_a, &m5_a, &run_a);

        // B: same run, checkpointed at the midpoint and restored into an
        // entirely fresh System + manager + run driver.
        let mut sys_b = System::new(make_config());
        let region_b = sys_b.alloc_region(512, Placement::AllOnCxl).unwrap();
        let mut wl_b = make_wl(region_b.base);
        let mut m5_b = M5Manager::new(m5cfg);
        let mut run_b = ChunkedRun::begin(&mut sys_b, &mut m5_b);
        drive(&mut sys_b, &mut m5_b, &mut run_b, &mut wl_b, 60_000);
        let mid = checkpoint_all(&mut sys_b, &m5_b, &run_b);
        drop((sys_b, m5_b, run_b));

        let mid = Checkpoint::decode(&mid.encode()).unwrap();
        let mut sys_b2 = System::restore(make_config(), &plan, &mid).unwrap();
        let mut r = StateReader::new(mid.section("m5").unwrap());
        let mut m5_b2 = M5Manager::restore(m5cfg, &mut sys_b2, &mut r).unwrap();
        r.expect_end().unwrap();
        let mut r = StateReader::new(mid.section("run").unwrap());
        let mut run_b2 = ChunkedRun::resume(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(run_b2.accesses(), 60_000);

        drive(&mut sys_b2, &mut m5_b2, &mut run_b2, &mut wl_b, 120_000);
        let cp_b = checkpoint_all(&mut sys_b2, &m5_b2, &run_b2);

        // The full serialized state — system, manager, tracker SRAM, run
        // driver — must be byte-identical to the uninterrupted run's.
        assert_eq!(cp_a.encode(), cp_b.encode());
        assert!(sys_b2.check_invariants().is_empty());
        assert_eq!(m5_a.epochs(), m5_b2.epochs());
        assert_eq!(m5_a.promoter_stats(), m5_b2.promoter_stats());
        let report_a = run_a.finish(&mut sys_a, &m5_a);
        let report_b = run_b2.finish(&mut sys_b2, &m5_b2);
        assert_eq!(format!("{report_a:?}"), format!("{report_b:?}"));
        assert!(report_a.migrations.promotions > 0, "the run did real work");
    }

    #[test]
    fn manager_restore_rejects_config_and_mode_skew() {
        use cxl_sim::checkpoint::{StateReader, StateWriter};
        let (mut sys, _wl, m5) = setup(M5Config::default());
        let mut w = StateWriter::new();
        m5.save(&sys, &mut w);
        let buf = w.finish();
        // A different promote batch is a different manager: rejected.
        let skewed = M5Config {
            promote_batch: 16,
            ..M5Config::default()
        };
        let mut r = StateReader::new(&buf);
        assert!(M5Manager::restore(skewed, &mut sys, &mut r).is_err());
        // The matching config restores cleanly.
        let mut sys2 = System::new(
            SystemConfig::small()
                .with_cxl_frames(1024)
                .with_ddr_frames(256),
        );
        let mut r = StateReader::new(&buf);
        let m5b = M5Manager::restore(M5Config::default(), &mut sys2, &mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(m5b.name(), m5.name());
        assert_eq!(m5b.epochs(), m5.epochs());
    }

    #[test]
    #[should_panic(expected = "requires an HWT")]
    fn misconfigured_mode_panics() {
        let _ = M5Manager::new(M5Config {
            hwt: None,
            mode: NominatorMode::HptDriven,
            ..M5Config::default()
        });
    }
}
