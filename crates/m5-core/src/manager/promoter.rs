//! Promoter — the in-kernel interface between the user-space Elector and
//! `migrate_pages()` (§5.2).
//!
//! Receives the Nominator's hot-page addresses (PFNs), translates them to
//! mappings via the reverse map, checks that each page can be safely
//! migrated — pages pinned for DMA or explicitly bound to the CXL node are
//! rejected — and invokes the batched migration.

use super::nominator::HpaEntry;
use cxl_sim::addr::Vpn;
use cxl_sim::kernel::CostKind;
use cxl_sim::migration::{BatchOutcome, MigrateError};
use cxl_sim::system::System;
use cxl_sim::time::Nanos;

/// Promoter tuning knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PromoterConfig {
    /// Cold pages demoted per capacity miss (the paper demotes the same
    /// number of pages as promoted once DDR fills, §7.2).
    pub demote_batch: usize,
    /// Retry rounds for transiently rejected pages (destination full,
    /// failed copy) before giving up on them for this epoch.
    pub max_retries: u32,
    /// Daemon-side wait before the first retry round; doubles each round.
    pub retry_backoff: Nanos,
}

impl Default for PromoterConfig {
    fn default() -> PromoterConfig {
        PromoterConfig {
            demote_batch: 32,
            max_retries: 2,
            retry_backoff: Nanos(10_000),
        }
    }
}

/// Cumulative Promoter statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PromoterStats {
    /// Pages handed to `migrate_pages()` and moved.
    pub promoted: u64,
    /// Candidates dropped because their frame was no longer mapped (stale
    /// tracker output).
    pub stale: u64,
    /// Candidates rejected by the safety checks (pinned / node-bound).
    pub rejected_unsafe: u64,
    /// Candidates rejected for capacity or residency reasons.
    pub rejected_other: u64,
    /// Transiently rejected pages re-submitted to `migrate_pages()`.
    pub retried: u64,
    /// Pages still transiently rejected after the last retry round.
    pub gave_up: u64,
}

/// The Promoter component.
#[derive(Clone, Copy, Debug, Default)]
pub struct Promoter {
    config: PromoterConfig,
    stats: PromoterStats,
}

impl Promoter {
    /// Builds a Promoter.
    pub fn new(config: PromoterConfig) -> Promoter {
        Promoter {
            config,
            stats: PromoterStats::default(),
        }
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> PromoterStats {
        self.stats
    }

    /// Serializes the cumulative statistics for a checkpoint (the
    /// configuration is rebuilt by the restoring side).
    pub fn save(&self, w: &mut cxl_sim::checkpoint::StateWriter) {
        w.put_u64(self.stats.promoted);
        w.put_u64(self.stats.stale);
        w.put_u64(self.stats.rejected_unsafe);
        w.put_u64(self.stats.rejected_other);
        w.put_u64(self.stats.retried);
        w.put_u64(self.stats.gave_up);
    }

    /// Rebuilds a Promoter from a checkpoint section.
    ///
    /// # Errors
    ///
    /// Propagates codec errors from a truncated payload.
    pub fn restore(
        config: PromoterConfig,
        r: &mut cxl_sim::checkpoint::StateReader<'_>,
    ) -> Result<Promoter, cxl_sim::checkpoint::CodecError> {
        Ok(Promoter {
            config,
            stats: PromoterStats {
                promoted: r.get_u64()?,
                stale: r.get_u64()?,
                rejected_unsafe: r.get_u64()?,
                rejected_other: r.get_u64()?,
                retried: r.get_u64()?,
                gave_up: r.get_u64()?,
            },
        })
    }

    /// Promotes the nominated pages, returning the batch outcome. The proc
    /// write that hands the addresses into the kernel is billed as manager
    /// work.
    pub fn promote(&mut self, sys: &mut System, nominated: &[HpaEntry]) -> BatchOutcome {
        let cost = sys.config().costs.mmio_reg_access;
        sys.daemon_bill(CostKind::ManagerQuery, cost);

        // PFN → VPN translation; trackers may report frames whose mapping
        // changed since the epoch started.
        let mut vpns: Vec<Vpn> = Vec::with_capacity(nominated.len());
        for e in nominated {
            match sys.page_table().vpn_of(e.pfn) {
                Some(vpn) => vpns.push(vpn),
                None => self.stats.stale += 1,
            }
        }

        // Every round below runs through the *uncounted* migration path:
        // a page retried three times is still one migration request, and
        // must appear at most once in `MigrationStats::rejected` (and hence
        // in the RunReport/HealthReport merge). The final outcomes are
        // settled once, after the retry loop.
        let mut out = sys.promote_with_demotion_uncounted(&vpns, self.config.demote_batch);

        // Bounded retry with exponential backoff: transient rejections
        // (destination full under pressure, a flaky page copy) are worth a
        // second attempt this epoch; permanent ones (pinned, bound) are not.
        let mut backoff = self.config.retry_backoff;
        let mut retried = 0u64;
        for _ in 0..self.config.max_retries {
            let (transient, fatal): (Vec<_>, Vec<_>) = out
                .rejected
                .into_iter()
                .partition(|(_, e)| e.is_transient());
            out.rejected = fatal;
            if transient.is_empty() {
                break;
            }
            let again: Vec<Vpn> = transient.iter().map(|&(v, _)| v).collect();
            retried += again.len() as u64;
            sys.daemon_bill(CostKind::DaemonOther, backoff);
            backoff = Nanos(backoff.0.saturating_mul(2));
            let retry = sys.promote_with_demotion_uncounted(&again, self.config.demote_batch);
            out.migrated.extend(retry.migrated);
            out.rejected.extend(retry.rejected);
        }
        sys.note_rejected_migrations(out.rejected.len() as u64);
        let gave_up = out
            .rejected
            .iter()
            .filter(|(_, e)| e.is_transient())
            .count() as u64;

        let stale = (nominated.len() - vpns.len()) as u64;
        let mut rejected_unsafe = 0u64;
        let mut rejected_other = 0u64;
        for (_, err) in &out.rejected {
            match err {
                MigrateError::Pinned | MigrateError::NodeBound => rejected_unsafe += 1,
                _ => rejected_other += 1,
            }
        }
        self.stats.promoted += out.migrated.len() as u64;
        self.stats.retried += retried;
        self.stats.gave_up += gave_up;
        self.stats.rejected_unsafe += rejected_unsafe;
        self.stats.rejected_other += rejected_other;
        if retried > 0 || gave_up > 0 {
            sys.note_promoter_retries(retried, gave_up);
        }
        if sys.telemetry().is_enabled() {
            let t = sys.telemetry_mut();
            t.counter_add("m5.promoter", "promoted", out.migrated.len() as u64);
            t.counter_add("m5.promoter", "stale", stale);
            t.counter_add("m5.promoter", "rejected-unsafe", rejected_unsafe);
            t.counter_add("m5.promoter", "rejected-other", rejected_other);
            t.counter_add("m5.promoter", "retried", retried);
            t.counter_add("m5.promoter", "gave-up", gave_up);
            // Per-cause breakdown of the final rejections, so degradation
            // dashboards can tell a rollback (copy fault, watchdog stall,
            // reset fence) from a capacity miss or a safety check.
            for (_, err) in &out.rejected {
                t.counter_add("m5.promoter.cause", err.cause_label(), 1);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxl_sim::addr::Pfn;
    use cxl_sim::memory::NodeId;
    use cxl_sim::prelude::*;

    fn entry(pfn: Pfn) -> HpaEntry {
        HpaEntry {
            pfn,
            count: 10,
            mask: 0,
        }
    }

    #[test]
    fn promotes_mapped_candidates() {
        let mut sys = System::new(SystemConfig::small());
        let r = sys.alloc_region(4, Placement::AllOnCxl).unwrap();
        let pfns: Vec<Pfn> = r
            .vpns()
            .map(|v| sys.page_table().get(v).unwrap().pfn)
            .collect();
        let mut p = Promoter::new(PromoterConfig::default());
        let out = p.promote(&mut sys, &[entry(pfns[0]), entry(pfns[1])]);
        assert_eq!(out.migrated.len(), 2);
        assert_eq!(sys.nr_pages(NodeId::DDR), 2);
        assert_eq!(p.stats().promoted, 2);
    }

    #[test]
    fn rejects_pinned_and_bound_pages() {
        let mut sys = System::new(SystemConfig::small());
        let r = sys.alloc_region(2, Placement::AllOnCxl).unwrap();
        let a = r.base.vpn();
        let b = a.offset(1);
        let pfn_a = sys.page_table().get(a).unwrap().pfn;
        let pfn_b = sys.page_table().get(b).unwrap().pfn;
        sys.page_table_mut().set_pinned(a, true);
        sys.page_table_mut().set_cxl_bound(b, true);
        let mut p = Promoter::new(PromoterConfig::default());
        let out = p.promote(&mut sys, &[entry(pfn_a), entry(pfn_b)]);
        assert!(out.migrated.is_empty());
        assert_eq!(p.stats().rejected_unsafe, 2);
        assert_eq!(sys.nr_pages(NodeId::DDR), 0);
    }

    #[test]
    fn stale_pfns_are_dropped_not_fatal() {
        let mut sys = System::new(SystemConfig::small());
        let _ = sys.alloc_region(1, Placement::AllOnCxl).unwrap();
        let mut p = Promoter::new(PromoterConfig::default());
        // A frame nothing maps: e.g. an unallocated CXL frame.
        let out = p.promote(&mut sys, &[entry(Pfn(cxl_sim::memory::CXL_BASE_PFN + 99))]);
        assert!(out.migrated.is_empty());
        assert_eq!(p.stats().stale, 1);
    }

    #[test]
    fn transient_rejections_are_retried_then_surrendered() {
        // DDR holds one pinned page, so demotion can never make room:
        // every promotion attempt fails with DestinationFull (transient).
        let mut sys = System::new(SystemConfig::small().with_ddr_frames(1));
        let d = sys.alloc_region(1, Placement::AllOnDdr).unwrap();
        sys.page_table_mut().set_pinned(d.base.vpn(), true);
        let r = sys.alloc_region(2, Placement::AllOnCxl).unwrap();
        let pfns: Vec<Pfn> = r
            .vpns()
            .map(|v| sys.page_table().get(v).unwrap().pfn)
            .collect();
        let mut p = Promoter::new(PromoterConfig::default());
        let out = p.promote(&mut sys, &[entry(pfns[0]), entry(pfns[1])]);
        assert!(out.migrated.is_empty());
        assert!(p.stats().retried > 0, "transient rejects were retried");
        assert_eq!(p.stats().gave_up, 2, "both pages surrendered in the end");
        assert_eq!(p.stats().promoted, 0);
    }

    #[test]
    fn overlapping_fault_window_counts_each_rejection_once() {
        // Regression test: when a DDR-pressure fault window overlaps a
        // migration epoch, every promotion attempt inside the window fails
        // with DestinationFull, and the Promoter retries each page
        // `max_retries` times (each retry round calling the promote+demote
        // path, which itself re-attempts after demoting). Before the
        // migrate_page_uncounted/note_rejected_migrations split, every one
        // of those attempts bumped `MigrationStats::rejected`, so a single
        // rejected *request* could show up 6+ times in the RunReport /
        // HealthReport merge. The invariant: one nominated page == at most
        // one rejected migration.
        use cxl_sim::faults::{FaultKind, FaultPlan};
        let plan = FaultPlan::none().with(
            Nanos::ZERO,
            FaultKind::DdrPressure {
                duration: Nanos::from_secs(1),
            },
        );
        let mut sys = System::with_fault_plan(SystemConfig::small(), &plan);
        let r = sys.alloc_region(2, Placement::AllOnCxl).unwrap();
        let pfns: Vec<Pfn> = r
            .vpns()
            .map(|v| sys.page_table().get(v).unwrap().pfn)
            .collect();
        // Arm the pressure window.
        sys.access(r.base, false);
        let mut p = Promoter::new(PromoterConfig::default());
        let out = p.promote(&mut sys, &[entry(pfns[0]), entry(pfns[1])]);
        assert!(out.migrated.is_empty(), "pressure window blocks promotion");
        assert!(p.stats().retried > 0, "transient rejects were retried");
        assert_eq!(p.stats().gave_up, 2);
        assert_eq!(
            sys.migration_stats().rejected,
            2,
            "2 requests rejected must count exactly 2, not once per attempt"
        );
    }

    #[test]
    fn rejection_causes_are_broken_out_in_telemetry() {
        use cxl_sim::faults::{FaultKind, FaultPlan};
        let plan = FaultPlan::none().with(
            Nanos::ZERO,
            FaultKind::DdrPressure {
                duration: Nanos::from_secs(1),
            },
        );
        let mut sys = System::with_fault_plan(SystemConfig::small(), &plan);
        sys.install_telemetry(Telemetry::enabled());
        let r = sys.alloc_region(3, Placement::AllOnCxl).unwrap();
        sys.page_table_mut().set_pinned(r.base.vpn(), true);
        let pfns: Vec<Pfn> = r
            .vpns()
            .map(|v| sys.page_table().get(v).unwrap().pfn)
            .collect();
        // Arm the pressure window.
        sys.access(r.base, false);
        let mut p = Promoter::new(PromoterConfig::default());
        let entries: Vec<HpaEntry> = pfns.iter().map(|&f| entry(f)).collect();
        let out = p.promote(&mut sys, &entries);
        assert!(out.migrated.is_empty());
        let snap = sys.telemetry().snapshot();
        assert_eq!(snap.counter("m5.promoter.cause", "pinned"), Some(1));
        assert_eq!(snap.counter("m5.promoter.cause", "no-free-frame"), Some(2));
    }

    #[test]
    fn capacity_pressure_triggers_demotion() {
        let mut sys = System::new(SystemConfig::small().with_ddr_frames(2));
        let r = sys.alloc_region(4, Placement::AllOnCxl).unwrap();
        let pfns: Vec<Pfn> = r
            .vpns()
            .map(|v| sys.page_table().get(v).unwrap().pfn)
            .collect();
        let mut p = Promoter::new(PromoterConfig::default());
        let entries: Vec<HpaEntry> = pfns.iter().map(|&f| entry(f)).collect();
        let out = p.promote(&mut sys, &entries);
        // All four requested; DDR holds only 2, so demotions made room.
        assert!(out.migrated.len() >= 2);
        assert!(sys.migration_stats().demotions > 0 || out.migrated.len() == 4);
        assert_eq!(sys.nr_pages(NodeId::DDR), 2);
    }
}
