//! Nominator — turning tracker output into a ranked migration candidate
//! list (§5.2).
//!
//! Maintains the `_HPA` structure: one entry per hot page with a 64-bit
//! word mask. Three modes:
//!
//! * **HPT-only** — nominate straight from HPT's hot pages.
//! * **HPT-driven** — hot-word addresses from `_HWA` set mask bits of the
//!   matching `_HPA` entries; pages of similar hotness are ranked dense
//!   before sparse (Guideline 3: good for mixed dense/sparse workloads
//!   like roms and liblinear).
//! * **HWT-driven** — `_HPA` is built *solely* from hot words: each word's
//!   page gets an entry, its mask accumulating matched words and serving
//!   as the hotness signal (Guideline 4: good for sparse-only workloads
//!   like Redis and CacheLib).

use cxl_sim::addr::{CacheLineAddr, Pfn};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Which nomination mechanism to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NominatorMode {
    /// Hot pages straight from HPT.
    HptOnly,
    /// HPT pages annotated with HWT word masks; dense ranked first.
    HptDriven,
    /// Pages derived purely from HWT hot words.
    HwtDriven,
}

impl NominatorMode {
    /// Whether this mode needs an HPT attached.
    pub fn needs_hpt(self) -> bool {
        !matches!(self, NominatorMode::HwtDriven)
    }

    /// Whether this mode needs an HWT attached.
    pub fn needs_hwt(self) -> bool {
        !matches!(self, NominatorMode::HptOnly)
    }
}

/// One `_HPA` entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HpaEntry {
    /// The hot page.
    pub pfn: Pfn,
    /// The page's hotness (HPT estimate, or accumulated hot-word counts in
    /// HWT-driven mode).
    pub count: u64,
    /// Bit `i` set ⇔ word `i` of the page appeared in `_HWA`.
    pub mask: u64,
}

impl HpaEntry {
    /// Number of distinct hot words observed in this page.
    pub fn hot_words(&self) -> u32 {
        self.mask.count_ones()
    }
}

/// The Nominator component.
///
/// In HWT-driven mode `_HPA` is *persistent*: each epoch's hot words fold
/// into it and existing counts decay by half. The device CAM is drained
/// fresh every query, so pages whose words stopped being hot (e.g.
/// because they migrated off CXL and left the tracker's view) fade out of
/// `_HPA` within a few epochs, while pages with only a thin per-epoch
/// word signal accumulate until they surface — this is what "periodically
/// updated by HPT and HWT" (§5.2) has to mean at word granularity, where
/// one epoch rarely carries enough counts to rank pages on its own.
#[derive(Clone, Debug)]
pub struct Nominator {
    mode: NominatorMode,
    hpa: Vec<HpaEntry>,
    /// Persistent HWT-driven accumulation: pfn → (decaying count, mask).
    hwa_acc: HashMap<Pfn, (u64, u64)>,
}

impl Nominator {
    /// Builds a Nominator in `mode`.
    pub fn new(mode: NominatorMode) -> Nominator {
        Nominator {
            mode,
            hpa: Vec::new(),
            hwa_acc: HashMap::new(),
        }
    }

    /// The configured mode.
    pub fn mode(&self) -> NominatorMode {
        self.mode
    }

    /// The current `_HPA` contents (after [`Nominator::refresh`]).
    pub fn hpa(&self) -> &[HpaEntry] {
        &self.hpa
    }

    /// Rebuilds `_HPA` from this epoch's tracker output: `hot_pages` from
    /// HPT and `hot_words` from HWT (either may be empty depending on the
    /// mode).
    pub fn refresh(&mut self, hot_pages: &[(Pfn, u64)], hot_words: &[(CacheLineAddr, u64)]) {
        self.hpa.clear();
        match self.mode {
            NominatorMode::HptOnly => {
                self.hpa
                    .extend(hot_pages.iter().map(|&(pfn, count)| HpaEntry {
                        pfn,
                        count,
                        mask: 0,
                    }));
            }
            NominatorMode::HptDriven => {
                let mut index: HashMap<Pfn, usize> = HashMap::with_capacity(hot_pages.len());
                for &(pfn, count) in hot_pages {
                    index.insert(pfn, self.hpa.len());
                    self.hpa.push(HpaEntry {
                        pfn,
                        count,
                        mask: 0,
                    });
                }
                // Search _HPA with the PFNs derived from hot-word addresses;
                // on a match, set the bit indexed by the in-page word.
                for &(line, _) in hot_words {
                    if let Some(&i) = index.get(&line.pfn()) {
                        self.hpa[i].mask |= 1u64 << line.word_index().0;
                    }
                }
            }
            NominatorMode::HwtDriven => {
                // Decay the persistent accumulation, then fold this
                // epoch's hot words in.
                self.hwa_acc.retain(|_, (count, _)| {
                    *count /= 2;
                    *count > 0
                });
                for &(line, wcount) in hot_words {
                    let e = self.hwa_acc.entry(line.pfn()).or_insert((0, 0));
                    e.0 += wcount;
                    e.1 |= 1u64 << line.word_index().0;
                }
                self.hpa
                    .extend(self.hwa_acc.iter().map(|(&pfn, &(count, mask))| HpaEntry {
                        pfn,
                        count,
                        mask,
                    }));
            }
        }
    }

    /// Drops `pfn` from the persistent HWT-driven accumulation. The
    /// manager retires every candidate it acted on: a promoted page's old
    /// frame is dead (its words left the tracker's view), and a rejected
    /// one (pinned/bound) must not crowd the next nomination either.
    pub fn retire(&mut self, pfn: Pfn) {
        self.hwa_acc.remove(&pfn);
    }

    /// Serializes the nominator — mode tag, the current `_HPA` contents,
    /// and the persistent HWT-driven accumulation (sorted by PFN so the
    /// encoding is deterministic regardless of hash-map iteration order) —
    /// for a checkpoint.
    pub fn save(&self, w: &mut cxl_sim::checkpoint::StateWriter) {
        w.put_u8(match self.mode {
            NominatorMode::HptOnly => 0,
            NominatorMode::HptDriven => 1,
            NominatorMode::HwtDriven => 2,
        });
        w.put_u64(self.hpa.len() as u64);
        for e in &self.hpa {
            w.put_u64(e.pfn.0);
            w.put_u64(e.count);
            w.put_u64(e.mask);
        }
        let mut acc: Vec<(Pfn, (u64, u64))> = self.hwa_acc.iter().map(|(&p, &v)| (p, v)).collect();
        acc.sort_unstable_by_key(|&(p, _)| p);
        w.put_u64(acc.len() as u64);
        for (pfn, (count, mask)) in acc {
            w.put_u64(pfn.0);
            w.put_u64(count);
            w.put_u64(mask);
        }
    }

    /// Rebuilds a nominator from a checkpoint section. The saved mode is
    /// restored as-is: after a tracker failure the live nominator runs in
    /// `HptOnly` regardless of the configured mode, and a restore must
    /// continue from exactly that state.
    ///
    /// # Errors
    ///
    /// Propagates codec errors from a truncated payload or an unknown mode
    /// tag.
    pub fn restore(
        r: &mut cxl_sim::checkpoint::StateReader<'_>,
    ) -> Result<Nominator, cxl_sim::checkpoint::CodecError> {
        let mode = match r.get_u8()? {
            0 => NominatorMode::HptOnly,
            1 => NominatorMode::HptDriven,
            2 => NominatorMode::HwtDriven,
            tag => {
                return Err(cxl_sim::checkpoint::CodecError::BadValue {
                    what: "nominator mode tag",
                    value: tag as u64,
                })
            }
        };
        let n = r.get_u64()? as usize;
        let mut hpa = Vec::with_capacity(n.min(r.remaining()));
        for _ in 0..n {
            hpa.push(HpaEntry {
                pfn: Pfn(r.get_u64()?),
                count: r.get_u64()?,
                mask: r.get_u64()?,
            });
        }
        let n = r.get_u64()? as usize;
        let mut hwa_acc = HashMap::with_capacity(n.min(r.remaining()));
        for _ in 0..n {
            let pfn = Pfn(r.get_u64()?);
            let count = r.get_u64()?;
            let mask = r.get_u64()?;
            hwa_acc.insert(pfn, (count, mask));
        }
        Ok(Nominator { mode, hpa, hwa_acc })
    }

    /// The top `limit` candidates under the mode's ranking.
    pub fn nominate(&self, limit: usize) -> Vec<HpaEntry> {
        let mut v = self.hpa.clone();
        match self.mode {
            NominatorMode::HptOnly => {
                v.sort_unstable_by(|a, b| b.count.cmp(&a.count).then(a.pfn.cmp(&b.pfn)));
            }
            NominatorMode::HwtDriven => {
                // §5.2: in HWT-driven mode "the 64-bit mask serves as an
                // access count" — rank by how many distinct hot words hit
                // the page, then by accumulated word counts. A page with
                // many hot words (a dense hot structure like a KV index)
                // outranks one carried by a single scorching word.
                v.sort_unstable_by(|a, b| {
                    b.hot_words()
                        .cmp(&a.hot_words())
                        .then(b.count.cmp(&a.count))
                        .then(a.pfn.cmp(&b.pfn))
                });
            }
            NominatorMode::HptDriven => {
                // Rank by hotness magnitude (log₂ bucket) first, then prefer
                // dense pages among similarly hot ones (§4.1: migrating
                // dense hot pages beats migrating sparse ones of similar
                // hotness).
                let bucket = |c: u64| 64 - c.leading_zeros();
                v.sort_unstable_by(|a, b| {
                    bucket(b.count)
                        .cmp(&bucket(a.count))
                        .then(b.hot_words().cmp(&a.hot_words()))
                        .then(b.count.cmp(&a.count))
                        .then(a.pfn.cmp(&b.pfn))
                });
            }
        }
        v.truncate(limit);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxl_sim::addr::WordIndex;
    use cxl_sim::memory::CXL_BASE_PFN;

    fn pfn(i: u64) -> Pfn {
        Pfn(CXL_BASE_PFN + i)
    }

    fn word(page: u64, w: u8) -> CacheLineAddr {
        pfn(page).word(WordIndex(w)).cache_line()
    }

    #[test]
    fn hpt_only_ranks_by_count() {
        let mut n = Nominator::new(NominatorMode::HptOnly);
        n.refresh(&[(pfn(1), 10), (pfn(2), 30), (pfn(3), 20)], &[]);
        let out = n.nominate(2);
        assert_eq!(out[0].pfn, pfn(2));
        assert_eq!(out[1].pfn, pfn(3));
        assert_eq!(out[0].mask, 0);
    }

    #[test]
    fn hpt_driven_sets_mask_bits_from_words() {
        let mut n = Nominator::new(NominatorMode::HptDriven);
        n.refresh(
            &[(pfn(1), 100), (pfn(2), 100)],
            &[
                (word(1, 0), 50),
                (word(1, 63), 40),
                (word(2, 7), 90),
                (word(9, 3), 10), // no matching _HPA entry: dropped
            ],
        );
        let hpa = n.hpa();
        let e1 = hpa.iter().find(|e| e.pfn == pfn(1)).unwrap();
        assert_eq!(e1.mask, 1 | (1 << 63));
        assert_eq!(e1.hot_words(), 2);
        let e2 = hpa.iter().find(|e| e.pfn == pfn(2)).unwrap();
        assert_eq!(e2.hot_words(), 1);
    }

    #[test]
    fn hpt_driven_prefers_dense_among_similar_hotness() {
        let mut n = Nominator::new(NominatorMode::HptDriven);
        // Pages 1 and 2 in the same log₂ hotness bucket; page 2 is denser.
        n.refresh(
            &[(pfn(1), 100), (pfn(2), 98)],
            &[
                (word(1, 0), 9),
                (word(2, 1), 9),
                (word(2, 2), 9),
                (word(2, 3), 9),
            ],
        );
        let out = n.nominate(2);
        assert_eq!(out[0].pfn, pfn(2), "denser page wins the tie");
        // But a much hotter sparse page still beats a cooler dense one.
        n.refresh(
            &[(pfn(1), 1000), (pfn(2), 90)],
            &[(word(2, 1), 9), (word(2, 2), 9), (word(2, 3), 9)],
        );
        assert_eq!(n.nominate(1)[0].pfn, pfn(1));
    }

    #[test]
    fn hwt_driven_builds_hpa_from_words_alone() {
        let mut n = Nominator::new(NominatorMode::HwtDriven);
        n.refresh(
            &[], // no HPT in this mode
            &[(word(5, 0), 40), (word(5, 1), 30), (word(6, 9), 50)],
        );
        let out = n.nominate(10);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].pfn, pfn(5), "two hot words beat one");
        assert_eq!(out[0].count, 70);
        assert_eq!(out[0].hot_words(), 2);
        assert_eq!(out[1].pfn, pfn(6));
    }

    #[test]
    fn refresh_replaces_previous_epoch() {
        let mut n = Nominator::new(NominatorMode::HptOnly);
        n.refresh(&[(pfn(1), 10)], &[]);
        n.refresh(&[(pfn(2), 20)], &[]);
        assert_eq!(n.hpa().len(), 1);
        assert_eq!(n.nominate(10)[0].pfn, pfn(2));
    }

    #[test]
    fn mode_requirements() {
        assert!(NominatorMode::HptOnly.needs_hpt());
        assert!(!NominatorMode::HptOnly.needs_hwt());
        assert!(NominatorMode::HptDriven.needs_hpt());
        assert!(NominatorMode::HptDriven.needs_hwt());
        assert!(!NominatorMode::HwtDriven.needs_hpt());
        assert!(NominatorMode::HwtDriven.needs_hwt());
    }
}
