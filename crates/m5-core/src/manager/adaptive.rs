//! Adaptive `f_default` tuning — the extension §7.2 leaves open.
//!
//! The paper picks `f_default` by trying a few values per benchmark and
//! keeping the best ("we do not use any adaptive algorithm to determine
//! f_default for a given benchmark (i.e., out of our intended scope)").
//! This module closes that gap with a multiplicative-increase /
//! multiplicative-decrease controller on the Monitor's own success
//! signal: if total consumed bandwidth (the performance proxy of §5.2)
//! grew since the last adjustment window, keep pushing `f_default` the
//! same direction; if it shrank, reverse direction. The controller
//! settles around the frequency where more migration stops paying.

use serde::{Deserialize, Serialize};

/// Controller configuration.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveFDefaultConfig {
    /// Initial `f_default` in Hz.
    pub initial_hz: f64,
    /// Multiplicative step per adjustment (e.g. 1.25).
    pub step: f64,
    /// Lower bound on `f_default`.
    pub min_hz: f64,
    /// Upper bound on `f_default`.
    pub max_hz: f64,
    /// Elector epochs per adjustment window.
    pub epochs_per_window: u32,
}

impl Default for AdaptiveFDefaultConfig {
    fn default() -> AdaptiveFDefaultConfig {
        AdaptiveFDefaultConfig {
            initial_hz: 100.0,
            step: 1.25,
            min_hz: 1.0,
            max_hz: 2_000.0,
            epochs_per_window: 8,
        }
    }
}

/// The MIMD controller state.
#[derive(Clone, Copy, Debug)]
pub struct AdaptiveFDefault {
    config: AdaptiveFDefaultConfig,
    current_hz: f64,
    direction_up: bool,
    epochs_in_window: u32,
    window_bw_sum: f64,
    prev_window_bw: Option<f64>,
    adjustments: u64,
}

impl AdaptiveFDefault {
    /// Builds a controller.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (non-positive bounds or a
    /// step ≤ 1).
    pub fn new(config: AdaptiveFDefaultConfig) -> AdaptiveFDefault {
        assert!(config.step > 1.0, "step must exceed 1");
        assert!(
            0.0 < config.min_hz
                && config.min_hz <= config.initial_hz
                && config.initial_hz <= config.max_hz,
            "need 0 < min <= initial <= max"
        );
        assert!(config.epochs_per_window > 0);
        AdaptiveFDefault {
            current_hz: config.initial_hz,
            direction_up: true,
            epochs_in_window: 0,
            window_bw_sum: 0.0,
            prev_window_bw: None,
            adjustments: 0,
            config,
        }
    }

    /// The current `f_default` to feed the Elector.
    pub fn f_default_hz(&self) -> f64 {
        self.current_hz
    }

    /// Adjustments performed so far.
    pub fn adjustments(&self) -> u64 {
        self.adjustments
    }

    /// Feeds one Elector epoch's total consumed bandwidth (`bw_tot`,
    /// bytes/s). At each window boundary the controller compares windows
    /// and steers `f_default`. Returns `true` if an adjustment happened.
    pub fn observe_epoch(&mut self, bw_tot: f64) -> bool {
        self.window_bw_sum += bw_tot;
        self.epochs_in_window += 1;
        if self.epochs_in_window < self.config.epochs_per_window {
            return false;
        }
        let window_bw = self.window_bw_sum / self.epochs_in_window as f64;
        self.epochs_in_window = 0;
        self.window_bw_sum = 0.0;

        if let Some(prev) = self.prev_window_bw {
            // Performance ∝ bw_tot (§5.2): keep direction while improving.
            if window_bw < prev {
                self.direction_up = !self.direction_up;
            }
            let factor = if self.direction_up {
                self.config.step
            } else {
                1.0 / self.config.step
            };
            self.current_hz =
                (self.current_hz * factor).clamp(self.config.min_hz, self.config.max_hz);
            self.adjustments += 1;
        }
        self.prev_window_bw = Some(window_bw);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(epochs: u32) -> AdaptiveFDefault {
        AdaptiveFDefault::new(AdaptiveFDefaultConfig {
            epochs_per_window: epochs,
            ..AdaptiveFDefaultConfig::default()
        })
    }

    #[test]
    fn no_adjustment_mid_window() {
        let mut c = controller(4);
        for _ in 0..3 {
            assert!(!c.observe_epoch(1e9));
        }
        assert!(c.observe_epoch(1e9), "window boundary");
        assert_eq!(c.adjustments(), 0, "first window only sets the baseline");
    }

    #[test]
    fn rising_bandwidth_keeps_pushing_up() {
        let mut c = controller(1);
        let start = c.f_default_hz();
        c.observe_epoch(1e9); // baseline
        c.observe_epoch(2e9); // improved -> keep direction (up)
        assert!(c.f_default_hz() > start);
        c.observe_epoch(3e9);
        assert!(c.f_default_hz() > start * 1.5);
    }

    #[test]
    fn falling_bandwidth_reverses_direction() {
        let mut c = controller(1);
        c.observe_epoch(2e9); // baseline
        c.observe_epoch(3e9); // up
        let peak = c.f_default_hz();
        c.observe_epoch(1e9); // worse -> reverse (down)
        assert!(c.f_default_hz() < peak);
        c.observe_epoch(0.5e9); // still worse -> reverse again (up)
        assert!(c.f_default_hz() >= peak / c.config.step / c.config.step);
    }

    #[test]
    fn respects_bounds() {
        let mut c = AdaptiveFDefault::new(AdaptiveFDefaultConfig {
            initial_hz: 100.0,
            step: 10.0,
            min_hz: 50.0,
            max_hz: 200.0,
            epochs_per_window: 1,
        });
        c.observe_epoch(1e9);
        for i in 0..20 {
            // Monotonically "improving" keeps pushing up; clamp at max.
            c.observe_epoch(2e9 + i as f64);
        }
        assert!(c.f_default_hz() <= 200.0);
        for i in 0..20 {
            c.observe_epoch(1e9 - i as f64 * 1e7);
        }
        assert!(c.f_default_hz() >= 50.0);
    }

    #[test]
    #[should_panic(expected = "step must exceed 1")]
    fn degenerate_step_panics() {
        let _ = AdaptiveFDefault::new(AdaptiveFDefaultConfig {
            step: 1.0,
            ..AdaptiveFDefaultConfig::default()
        });
    }
}
