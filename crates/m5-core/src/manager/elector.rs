//! Elector — the sample migration policy of Algorithm 1.
//!
//! Decides *how often* to act (scaling the default frequency by
//! `fscale(bw_den(CXL) / bw_den(DDR))`, Guideline 1) and *whether* to act
//! (migrate while `rel_bw_den(DDR)` keeps rising, Guideline 2 — previously
//! migrated pages are still paying off).

use super::monitor::TierStats;
use cxl_sim::memory::NodeId;
use cxl_sim::time::Nanos;
use serde::{Deserialize, Serialize};

/// The monotonically increasing frequency-scaling function of Algorithm 1,
/// line 2 (`y = xⁿ` or `y = n·eˣ`).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum FScale {
    /// `y = xⁿ`.
    Power {
        /// The exponent `n` (the paper tries 3–6).
        n: f64,
    },
    /// `y = n · eˣ`.
    Exponential {
        /// The multiplier `n`.
        n: f64,
    },
}

impl FScale {
    /// Applies the scaling function to `x` (clamped at 0).
    pub fn apply(&self, x: f64) -> f64 {
        let x = x.max(0.0);
        match *self {
            FScale::Power { n } => x.powf(n),
            FScale::Exponential { n } => n * x.exp(),
        }
    }
}

/// Elector tuning knobs.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ElectorConfig {
    /// The default migration frequency `f_default` in Hz (tunable; the
    /// paper simply tries a few reasonable values like 1).
    pub f_default_hz: f64,
    /// The frequency-scaling function.
    pub fscale: FScale,
    /// Shortest allowed period between manager wakeups.
    pub min_period: Nanos,
    /// Longest allowed period between manager wakeups.
    pub max_period: Nanos,
    /// Substitute ratio when `bw_den(DDR)` is zero (nothing resident or
    /// nothing hot on DDR yet — treat CXL as maximally denser).
    pub cold_start_ratio: f64,
}

impl Default for ElectorConfig {
    fn default() -> ElectorConfig {
        ElectorConfig {
            f_default_hz: 100.0,
            fscale: FScale::Power { n: 4.0 },
            min_period: Nanos::from_millis(2),
            max_period: Nanos::from_millis(20),
            cold_start_ratio: 4.0,
        }
    }
}

/// One Elector decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ElectorDecision {
    /// Whether to invoke the Promoter this period.
    pub migrate: bool,
    /// Time until the next wakeup.
    pub period: Nanos,
}

/// The Elector component (Algorithm 1 state).
#[derive(Clone, Copy, Debug)]
pub struct Elector {
    config: ElectorConfig,
    prev_rel_bw_den_ddr: Option<f64>,
}

impl Elector {
    /// Builds an Elector.
    pub fn new(config: ElectorConfig) -> Elector {
        Elector {
            config,
            prev_rel_bw_den_ddr: None,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ElectorConfig {
        &self.config
    }

    /// Runs one iteration of Algorithm 1's loop body on fresh stats.
    pub fn decide(&mut self, stats: &TierStats) -> ElectorDecision {
        // Line 2: T = 1 / (fscale(bw_den(CXL)/bw_den(DDR)) * f_default).
        let den_ddr = stats.bw_den(NodeId::Ddr);
        let den_cxl = stats.bw_den(NodeId::Cxl);
        let ratio = if den_ddr > 0.0 {
            den_cxl / den_ddr
        } else {
            self.config.cold_start_ratio
        };
        let f = (self.config.fscale.apply(ratio) * self.config.f_default_hz).max(1e-9);
        let period_ns = (1e9 / f).round().clamp(
            self.config.min_period.0 as f64,
            self.config.max_period.0 as f64,
        );

        // Lines 4–8: migrate while rel_bw_den(DDR) keeps increasing — the
        // previous batch contributed to DDR bandwidth (Guideline 2) — or
        // while CXL pages are denser than DDR pages (Guideline 1 says to
        // migrate as soon and aggressively as possible in that regime).
        let rel = stats.rel_bw_den(NodeId::Ddr);
        let improving = match self.prev_rel_bw_den_ddr {
            None => true,
            Some(prev) => rel > prev,
        };
        let migrate = improving || ratio > 1.0;
        self.prev_rel_bw_den_ddr = Some(rel);

        ElectorDecision {
            migrate,
            period: Nanos(period_ns as u64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(ddr_pages: u64, cxl_pages: u64, bw_ddr: f64, bw_cxl: f64) -> TierStats {
        TierStats::new([ddr_pages, cxl_pages], [bw_ddr, bw_cxl])
    }

    #[test]
    fn fscale_functions() {
        assert!((FScale::Power { n: 3.0 }.apply(2.0) - 8.0).abs() < 1e-12);
        assert!((FScale::Exponential { n: 2.0 }.apply(0.0) - 2.0).abs() < 1e-12);
        assert_eq!(FScale::Power { n: 2.0 }.apply(-5.0), 0.0, "clamped at 0");
    }

    #[test]
    fn hotter_cxl_shortens_the_period() {
        let mut e = Elector::new(ElectorConfig::default());
        // CXL denser than DDR: ratio 4 -> very fast.
        let fast = e.decide(&stats(100, 100, 1e9, 4e9));
        // DDR denser: ratio 0.25 -> slow.
        let slow = e.decide(&stats(100, 100, 4e9, 1e9));
        assert!(fast.period < slow.period, "{:?} vs {:?}", fast, slow);
        assert!(fast.migrate, "Guideline 1: denser CXL must migrate");
    }

    #[test]
    fn first_decision_always_migrates() {
        let mut e = Elector::new(ElectorConfig::default());
        let d = e.decide(&stats(100, 100, 5e9, 1e9));
        assert!(d.migrate);
    }

    #[test]
    fn stops_when_ddr_density_share_declines_and_cxl_is_colder() {
        let mut e = Elector::new(ElectorConfig::default());
        // Start: DDR strongly denser (ratio < 1).
        e.decide(&stats(100, 100, 8e9, 1e9));
        // DDR's relative density *fell* and CXL is still colder: stop.
        let d = e.decide(&stats(100, 100, 4e9, 1e9));
        assert!(
            !d.migrate,
            "declining rel_bw_den(DDR) with cold CXL must pause"
        );
    }

    #[test]
    fn resumes_when_ddr_density_share_rises() {
        let mut e = Elector::new(ElectorConfig::default());
        e.decide(&stats(100, 100, 4e9, 1e9));
        e.decide(&stats(100, 100, 2e9, 1e9)); // declined -> pause
        let d = e.decide(&stats(100, 100, 6e9, 1e9)); // rose again
        assert!(d.migrate, "Guideline 2: rising rel_bw_den(DDR) resumes");
    }

    #[test]
    fn period_respects_bounds() {
        let cfg = ElectorConfig::default();
        let mut e = Elector::new(cfg);
        // Enormous ratio: clamped at min.
        let d = e.decide(&stats(1000, 10, 1.0, 1e12));
        assert_eq!(d.period, cfg.min_period);
        // Tiny ratio: clamped at max.
        let d = e.decide(&stats(10, 1000, 1e12, 1.0));
        assert_eq!(d.period, cfg.max_period);
    }

    #[test]
    fn cold_start_with_empty_ddr_is_aggressive() {
        let mut e = Elector::new(ElectorConfig::default());
        let d = e.decide(&stats(0, 1000, 0.0, 3e9));
        assert!(d.migrate);
        assert_eq!(d.period, ElectorConfig::default().min_period);
    }
}
