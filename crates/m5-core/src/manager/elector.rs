//! Elector — the sample migration policy of Algorithm 1.
//!
//! Decides *how often* to act (scaling the default frequency by
//! `fscale(bw_den(CXL) / bw_den(DDR))`, Guideline 1) and *whether* to act
//! (migrate while `rel_bw_den(DDR)` keeps rising, Guideline 2 — previously
//! migrated pages are still paying off).

use super::monitor::TierStats;
use cxl_sim::memory::NodeId;
use cxl_sim::time::Nanos;
use serde::{Deserialize, Serialize};

/// The monotonically increasing frequency-scaling function of Algorithm 1,
/// line 2 (`y = xⁿ` or `y = n·eˣ`).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum FScale {
    /// `y = xⁿ`.
    Power {
        /// The exponent `n` (the paper tries 3–6).
        n: f64,
    },
    /// `y = n · eˣ`.
    Exponential {
        /// The multiplier `n`.
        n: f64,
    },
}

impl FScale {
    /// Applies the scaling function to `x` (clamped at 0).
    pub fn apply(&self, x: f64) -> f64 {
        let x = x.max(0.0);
        match *self {
            FScale::Power { n } => x.powf(n),
            FScale::Exponential { n } => n * x.exp(),
        }
    }
}

/// Elector tuning knobs.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ElectorConfig {
    /// The default migration frequency `f_default` in Hz (tunable; the
    /// paper simply tries a few reasonable values like 1).
    pub f_default_hz: f64,
    /// The frequency-scaling function.
    pub fscale: FScale,
    /// Shortest allowed period between manager wakeups.
    pub min_period: Nanos,
    /// Longest allowed period between manager wakeups.
    pub max_period: Nanos,
    /// Substitute ratio when `bw_den(DDR)` is zero (nothing resident or
    /// nothing hot on DDR yet — treat CXL as maximally denser).
    pub cold_start_ratio: f64,
    /// Congestion factor (the Monitor's loaded/unloaded CXL latency ratio)
    /// at or above which a sample counts toward the sustained-congestion
    /// period stretch. Matches the manager's promotion-backoff knee by
    /// default.
    pub congestion_knee: f64,
    /// Consecutive congested samples before the decided period starts
    /// stretching toward `max_period`. A short burst of queueing should not
    /// slow identification; a link that stays saturated for this many
    /// epochs will not be helped by more migration traffic.
    pub congestion_sustain: u32,
}

impl Default for ElectorConfig {
    fn default() -> ElectorConfig {
        ElectorConfig {
            f_default_hz: 100.0,
            fscale: FScale::Power { n: 4.0 },
            min_period: Nanos::from_millis(2),
            max_period: Nanos::from_millis(20),
            cold_start_ratio: 4.0,
            congestion_knee: 2.0,
            congestion_sustain: 3,
        }
    }
}

/// One Elector decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ElectorDecision {
    /// Whether to invoke the Promoter this period.
    pub migrate: bool,
    /// Time until the next wakeup.
    pub period: Nanos,
}

/// The Elector component (Algorithm 1 state).
#[derive(Clone, Copy, Debug)]
pub struct Elector {
    config: ElectorConfig,
    prev_rel_bw_den_ddr: Option<f64>,
    /// Consecutive samples with CXL congestion at or past the knee.
    congested_epochs: u32,
}

impl Elector {
    /// Builds an Elector.
    pub fn new(config: ElectorConfig) -> Elector {
        Elector {
            config,
            prev_rel_bw_den_ddr: None,
            congested_epochs: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ElectorConfig {
        &self.config
    }

    /// Runs one iteration of Algorithm 1's loop body on fresh stats.
    pub fn decide(&mut self, stats: &TierStats) -> ElectorDecision {
        // Line 2: T = 1 / (fscale(bw_den(CXL)/bw_den(DDR)) * f_default).
        let den_ddr = stats.bw_den(NodeId::Ddr);
        let den_cxl = stats.bw_den(NodeId::Cxl);
        let ratio = if den_ddr > 0.0 {
            den_cxl / den_ddr
        } else {
            self.config.cold_start_ratio
        };
        let f = (self.config.fscale.apply(ratio) * self.config.f_default_hz).max(1e-9);
        let mut period_ns = (1e9 / f).round().clamp(
            self.config.min_period.0 as f64,
            self.config.max_period.0 as f64,
        );

        // Sustained-congestion stretch: when the CXL link has queued past
        // the knee for `congestion_sustain` consecutive samples, double the
        // period once per further congested sample, saturating at
        // `max_period`. Page copies ride the same link as demand traffic,
        // so a link that stays saturated is not going to be improved by
        // waking the migration machinery more often — relax the cadence
        // until the congestion clears. A single calm sample resets the
        // curve, and with the contention model disabled the congestion
        // factor reads 1.0, below any valid knee, so this never fires.
        if stats.congestion(NodeId::Cxl) >= self.config.congestion_knee {
            self.congested_epochs = self.congested_epochs.saturating_add(1);
        } else {
            self.congested_epochs = 0;
        }
        let sustain = self.config.congestion_sustain.max(1);
        if self.congested_epochs >= sustain {
            let excess = (self.congested_epochs - sustain + 1).min(32);
            period_ns = (period_ns * 2f64.powi(excess as i32)).min(self.config.max_period.0 as f64);
        }

        // Lines 4–8: migrate while rel_bw_den(DDR) keeps increasing — the
        // previous batch contributed to DDR bandwidth (Guideline 2) — or
        // while CXL pages are denser than DDR pages (Guideline 1 says to
        // migrate as soon and aggressively as possible in that regime).
        let rel = stats.rel_bw_den(NodeId::Ddr);
        let improving = match self.prev_rel_bw_den_ddr {
            None => true,
            Some(prev) => rel > prev,
        };
        let migrate = improving || ratio > 1.0;
        self.prev_rel_bw_den_ddr = Some(rel);

        ElectorDecision {
            migrate,
            period: Nanos(period_ns as u64),
        }
    }

    /// Serializes the Algorithm 1 loop state (previous relative density
    /// sample and the sustained-congestion counter) for a checkpoint. The
    /// configuration is not written; the restoring side rebuilds it.
    pub fn save(&self, w: &mut cxl_sim::checkpoint::StateWriter) {
        match self.prev_rel_bw_den_ddr {
            Some(v) => {
                w.put_bool(true);
                w.put_f64(v);
            }
            None => w.put_bool(false),
        }
        w.put_u32(self.congested_epochs);
    }

    /// Rebuilds an Elector from a checkpoint section.
    ///
    /// # Errors
    ///
    /// Propagates codec errors from a truncated or corrupt payload.
    pub fn restore(
        config: ElectorConfig,
        r: &mut cxl_sim::checkpoint::StateReader<'_>,
    ) -> Result<Elector, cxl_sim::checkpoint::CodecError> {
        let prev = if r.get_bool()? {
            Some(r.get_f64()?)
        } else {
            None
        };
        Ok(Elector {
            config,
            prev_rel_bw_den_ddr: prev,
            congested_epochs: r.get_u32()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(ddr_pages: u64, cxl_pages: u64, bw_ddr: f64, bw_cxl: f64) -> TierStats {
        TierStats::new([ddr_pages, cxl_pages], [bw_ddr, bw_cxl])
    }

    #[test]
    fn fscale_functions() {
        assert!((FScale::Power { n: 3.0 }.apply(2.0) - 8.0).abs() < 1e-12);
        assert!((FScale::Exponential { n: 2.0 }.apply(0.0) - 2.0).abs() < 1e-12);
        assert_eq!(FScale::Power { n: 2.0 }.apply(-5.0), 0.0, "clamped at 0");
    }

    #[test]
    fn hotter_cxl_shortens_the_period() {
        let mut e = Elector::new(ElectorConfig::default());
        // CXL denser than DDR: ratio 4 -> very fast.
        let fast = e.decide(&stats(100, 100, 1e9, 4e9));
        // DDR denser: ratio 0.25 -> slow.
        let slow = e.decide(&stats(100, 100, 4e9, 1e9));
        assert!(fast.period < slow.period, "{:?} vs {:?}", fast, slow);
        assert!(fast.migrate, "Guideline 1: denser CXL must migrate");
    }

    #[test]
    fn first_decision_always_migrates() {
        let mut e = Elector::new(ElectorConfig::default());
        let d = e.decide(&stats(100, 100, 5e9, 1e9));
        assert!(d.migrate);
    }

    #[test]
    fn stops_when_ddr_density_share_declines_and_cxl_is_colder() {
        let mut e = Elector::new(ElectorConfig::default());
        // Start: DDR strongly denser (ratio < 1).
        e.decide(&stats(100, 100, 8e9, 1e9));
        // DDR's relative density *fell* and CXL is still colder: stop.
        let d = e.decide(&stats(100, 100, 4e9, 1e9));
        assert!(
            !d.migrate,
            "declining rel_bw_den(DDR) with cold CXL must pause"
        );
    }

    #[test]
    fn resumes_when_ddr_density_share_rises() {
        let mut e = Elector::new(ElectorConfig::default());
        e.decide(&stats(100, 100, 4e9, 1e9));
        e.decide(&stats(100, 100, 2e9, 1e9)); // declined -> pause
        let d = e.decide(&stats(100, 100, 6e9, 1e9)); // rose again
        assert!(d.migrate, "Guideline 2: rising rel_bw_den(DDR) resumes");
    }

    #[test]
    fn period_respects_bounds() {
        let cfg = ElectorConfig::default();
        let mut e = Elector::new(cfg);
        // Enormous ratio: clamped at min.
        let d = e.decide(&stats(1000, 10, 1.0, 1e12));
        assert_eq!(d.period, cfg.min_period);
        // Tiny ratio: clamped at max.
        let d = e.decide(&stats(10, 1000, 1e12, 1.0));
        assert_eq!(d.period, cfg.max_period);
    }

    #[test]
    fn sustained_congestion_stretches_the_period_toward_max() {
        let cfg = ElectorConfig {
            max_period: Nanos::from_millis(160),
            ..ElectorConfig::default()
        };
        let mut e = Elector::new(cfg);
        // Balanced tiers: ratio 1.0, base period 1/f_default = 10 ms —
        // interior, so the stretch (not the clamp) is what moves it.
        let calm = stats(100, 100, 2e9, 2e9);
        let congested = calm.with_latency([100.0, 400.0], [100.0, 1200.0]); // 3.0x
        let base = e.decide(&calm).period;
        assert_eq!(base, Nanos::from_millis(10));
        // Two congested samples: under the sustain threshold, no stretch.
        assert_eq!(e.decide(&congested).period, base);
        assert_eq!(e.decide(&congested).period, base);
        // From the third on, the period doubles per congested sample until
        // it saturates at max_period.
        assert_eq!(e.decide(&congested).period, Nanos::from_millis(20));
        assert_eq!(e.decide(&congested).period, Nanos::from_millis(40));
        assert_eq!(e.decide(&congested).period, Nanos::from_millis(80));
        assert_eq!(e.decide(&congested).period, Nanos::from_millis(160));
        assert_eq!(e.decide(&congested).period, Nanos::from_millis(160));
        // One calm sample resets the whole curve.
        assert_eq!(e.decide(&calm).period, base);
        assert_eq!(e.decide(&congested).period, base);
    }

    #[test]
    fn idle_link_never_stretches() {
        // congestion() == 1.0 (the disabled-contention reading) stays below
        // the 2.0 knee forever: the decided period is exactly the
        // pre-stretch value no matter how long the run.
        let mut e = Elector::new(ElectorConfig::default());
        let calm = stats(100, 100, 2e9, 2e9).with_latency([100.0, 400.0], [100.0, 400.0]);
        let base = e.decide(&calm).period;
        for _ in 0..20 {
            assert_eq!(e.decide(&calm).period, base);
        }
    }

    #[test]
    fn checkpoint_roundtrip_preserves_the_stretch_curve() {
        let cfg = ElectorConfig {
            max_period: Nanos::from_millis(160),
            ..ElectorConfig::default()
        };
        let mut a = Elector::new(cfg);
        let congested = stats(100, 100, 2e9, 2e9).with_latency([100.0, 400.0], [100.0, 1200.0]);
        for _ in 0..4 {
            let _ = a.decide(&congested);
        }
        let mut w = cxl_sim::checkpoint::StateWriter::new();
        a.save(&mut w);
        let buf = w.finish();
        let mut r = cxl_sim::checkpoint::StateReader::new(&buf);
        let mut b = Elector::restore(cfg, &mut r).unwrap();
        r.expect_end().unwrap();
        // Both continue from the same point on the curve.
        assert_eq!(a.decide(&congested), b.decide(&congested));
        assert_eq!(a.decide(&congested), b.decide(&congested));
    }

    #[test]
    fn cold_start_with_empty_ddr_is_aggressive() {
        let mut e = Elector::new(ElectorConfig::default());
        let d = e.decide(&stats(0, 1000, 0.0, 3e9));
        assert!(d.migrate);
        assert_eq!(d.period, ElectorConfig::default().min_period);
    }
}
