//! Monitor — Table 1's utilization statistics.
//!
//! `nr_pages(node)` comes from the zone allocator (`/proc/zoneinfo`),
//! `bw(node)` from pcm-style uncore counters (read bandwidth only: with a
//! write-allocate hierarchy every LLC miss performs a DRAM read first), and
//! `bw_den(node) = bw(node) / nr_pages(node)` measures how densely hot a
//! node's resident pages are.

use cxl_sim::kernel::CostKind;
use cxl_sim::memory::NodeId;
use cxl_sim::system::System;

/// One sampled snapshot of the tiered system's utilization.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TierStats {
    nr_pages: [u64; 2],
    bw: [f64; 2],
    /// Configured unloaded access latency per node, ns (0 when unsampled).
    lat_unloaded: [f64; 2],
    /// Current loaded access latency per node, ns — equals the unloaded
    /// value when the contention model is disabled or the link is idle.
    lat_loaded: [f64; 2],
}

fn idx(node: NodeId) -> usize {
    match node {
        NodeId::Ddr => 0,
        NodeId::Cxl => 1,
    }
}

impl TierStats {
    /// Builds a snapshot from raw samples (`[DDR, CXL]` order). Latencies
    /// default to zero (no congestion signal); see
    /// [`TierStats::with_latency`].
    pub fn new(nr_pages: [u64; 2], bw: [f64; 2]) -> TierStats {
        TierStats {
            nr_pages,
            bw,
            lat_unloaded: [0.0; 2],
            lat_loaded: [0.0; 2],
        }
    }

    /// Returns this snapshot with per-node latency samples attached
    /// (`[DDR, CXL]` order, nanoseconds).
    pub fn with_latency(mut self, unloaded: [f64; 2], loaded: [f64; 2]) -> TierStats {
        self.lat_unloaded = unloaded;
        self.lat_loaded = loaded;
        self
    }

    /// Current loaded access latency of `node` in nanoseconds.
    pub fn loaded_latency(&self, node: NodeId) -> f64 {
        self.lat_loaded[idx(node)]
    }

    /// Congestion factor of `node`: loaded latency over unloaded latency.
    /// 1.0 means an idle link; 2.0 means queueing has doubled the access
    /// time. Returns 1.0 when no latency sample was attached, so consumers
    /// see "no congestion" rather than a division by zero.
    pub fn congestion(&self, node: NodeId) -> f64 {
        let unloaded = self.lat_unloaded[idx(node)];
        if unloaded == 0.0 {
            1.0
        } else {
            self.lat_loaded[idx(node)] / unloaded
        }
    }

    /// Pages allocated to `node`.
    pub fn nr_pages(&self, node: NodeId) -> u64 {
        self.nr_pages[idx(node)]
    }

    /// Consumed read bandwidth of `node` in bytes/second.
    pub fn bw(&self, node: NodeId) -> f64 {
        self.bw[idx(node)]
    }

    /// Bandwidth density: `bw(node)` per allocated page (0 when empty).
    pub fn bw_den(&self, node: NodeId) -> f64 {
        let pages = self.nr_pages(node);
        if pages == 0 {
            0.0
        } else {
            self.bw(node) / pages as f64
        }
    }

    /// Total consumed bandwidth, `bw(DDR) + bw(CXL)` — proportional to
    /// application performance for a given phase (§5.2).
    pub fn bw_tot(&self) -> f64 {
        self.bw[0] + self.bw[1]
    }

    /// `bw_den(node) / bw_tot` — normalised so that execution-phase changes
    /// in overall intensity do not masquerade as placement changes
    /// (Algorithm 1, line 5).
    pub fn rel_bw_den(&self, node: NodeId) -> f64 {
        let tot = self.bw_tot();
        if tot == 0.0 {
            0.0
        } else {
            self.bw_den(node) / tot
        }
    }
}

/// The Monitor component: samples [`TierStats`] from the live system.
#[derive(Clone, Copy, Debug, Default)]
pub struct Monitor {
    samples: u64,
}

impl Monitor {
    /// A fresh monitor.
    pub fn new() -> Monitor {
        Monitor::default()
    }

    /// Samples the current window's statistics and starts a new window.
    /// Bills the host the cost of reading the counters.
    ///
    /// The tick is driven from the system's merged epoch-boundary view
    /// (`System::merged_view`): under the sharded driver this is the sync
    /// point where every shard's effects are already applied, so the
    /// manager sees one coherent snapshot regardless of shard count.
    pub fn sample(&mut self, sys: &mut System) -> TierStats {
        self.samples += 1;
        // Reading pcm counters + /proc/zoneinfo.
        let cost = sys.config().costs.mmio_reg_access;
        sys.daemon_bill(CostKind::ManagerQuery, cost * 2);
        // `merged_view` rolls the bandwidth window over and publishes the
        // per-node bandwidth and occupancy gauges on the telemetry bus.
        let v = sys.merged_view();
        TierStats {
            nr_pages: v.nr_pages,
            bw: [v.bw[0].bytes_per_sec(), v.bw[1].bytes_per_sec()],
            lat_unloaded: [v.lat_unloaded[0].0 as f64, v.lat_unloaded[1].0 as f64],
            lat_loaded: [v.lat_loaded[0].0 as f64, v.lat_loaded[1].0 as f64],
        }
    }

    /// Samples taken so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Serializes the monitor (its sample count) for a checkpoint.
    pub fn save(&self, w: &mut cxl_sim::checkpoint::StateWriter) {
        w.put_u64(self.samples);
    }

    /// Rebuilds a monitor from a checkpoint section.
    ///
    /// # Errors
    ///
    /// Propagates codec errors from a truncated payload.
    pub fn restore(
        r: &mut cxl_sim::checkpoint::StateReader<'_>,
    ) -> Result<Monitor, cxl_sim::checkpoint::CodecError> {
        Ok(Monitor {
            samples: r.get_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        // 100 DDR pages at 2 GB/s, 400 CXL pages at 4 GB/s.
        let s = TierStats::new([100, 400], [2e9, 4e9]);
        assert_eq!(s.nr_pages(NodeId::Ddr), 100);
        assert!((s.bw(NodeId::Cxl) - 4e9).abs() < 1.0);
        assert!((s.bw_den(NodeId::Ddr) - 2e7).abs() < 1.0);
        assert!((s.bw_den(NodeId::Cxl) - 1e7).abs() < 1.0);
        assert!((s.bw_tot() - 6e9).abs() < 1.0);
        // DDR's pages are denser: rel_bw_den(DDR) > rel_bw_den(CXL).
        assert!(s.rel_bw_den(NodeId::Ddr) > s.rel_bw_den(NodeId::Cxl));
    }

    #[test]
    fn empty_nodes_do_not_divide_by_zero() {
        let s = TierStats::new([0, 0], [0.0, 0.0]);
        assert_eq!(s.bw_den(NodeId::Ddr), 0.0);
        assert_eq!(s.rel_bw_den(NodeId::Cxl), 0.0);
        assert_eq!(s.bw_tot(), 0.0);
        // No latency sample attached: congestion reads as "idle", not NaN.
        assert_eq!(s.congestion(NodeId::Cxl), 1.0);
    }

    #[test]
    fn congestion_is_loaded_over_unloaded() {
        let s = TierStats::new([10, 10], [1e9, 1e9]).with_latency([100.0, 400.0], [100.0, 900.0]);
        assert_eq!(s.congestion(NodeId::Ddr), 1.0);
        assert!((s.congestion(NodeId::Cxl) - 2.25).abs() < 1e-12);
        assert_eq!(s.loaded_latency(NodeId::Cxl), 900.0);
    }

    #[test]
    fn sampling_a_live_system_rolls_the_window() {
        use cxl_sim::prelude::*;
        let mut sys = System::new(SystemConfig::small());
        let r = sys.alloc_region(8, Placement::AllOnCxl).unwrap();
        for i in 0..512u64 {
            sys.access(r.base.offset(i * 64), false);
        }
        let mut mon = Monitor::new();
        let s = mon.sample(&mut sys);
        assert_eq!(s.nr_pages(NodeId::CXL), 8);
        assert!(
            s.bw(NodeId::CXL) > 0.0,
            "cold misses consumed CXL bandwidth"
        );
        assert_eq!(s.bw(NodeId::DDR), 0.0);
        // The next window starts empty.
        let s2 = mon.sample(&mut sys);
        assert_eq!(s2.bw(NodeId::CXL), 0.0);
        assert_eq!(mon.samples(), 2);
        assert!(sys.kernel_costs().of(CostKind::ManagerQuery) > Nanos::ZERO);
        // Fixed-cost path: loaded == unloaded, congestion factor 1.0.
        assert_eq!(s.congestion(NodeId::CXL), 1.0);
    }

    #[test]
    fn sampling_a_contended_system_reports_congestion() {
        use cxl_sim::prelude::*;
        let cfg = SystemConfig::small()
            .with_contention(ContentionConfig::enabled_default().with_cxl_background(0.9));
        let mut sys = System::new(cfg);
        let mut mon = Monitor::new();
        let s = mon.sample(&mut sys);
        assert!(
            s.congestion(NodeId::CXL) > 1.0,
            "a 90%-background-loaded CXL link must read as congested, got {}",
            s.congestion(NodeId::CXL)
        );
        assert_eq!(s.congestion(NodeId::DDR), 1.0);
    }
}
