//! HWT — the Hot-Word Tracker (§5.1).
//!
//! Identical to [`crate::hpt::HotPageTracker`] except that it tracks 64 B
//! word addresses (`PA[47:6]`) without the PFN conversion. Hot-word
//! addresses let the Nominator distinguish dense from sparse hot pages —
//! the capability CPU-driven solutions lack entirely (Observation 2).

use crate::tracker_impl::{TrackerAlgo, TrackerImpl};
use cxl_sim::addr::CacheLineAddr;
use cxl_sim::controller::CxlDevice;
use cxl_sim::faults::DeviceFault;
use cxl_sim::time::Nanos;
use m5_trackers::topk::TopKAlgorithm;
use std::any::Any;

/// HWT configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HwtConfig {
    /// The streaming algorithm and its size.
    pub algo: TrackerAlgo,
    /// Number of hot words reported per query.
    pub k: usize,
    /// Hash seed.
    pub seed: u64,
    /// Whether a query resets the sketch and CAM for a fresh epoch
    /// (§5.1). Default `true`; cross-epoch accumulation happens in the
    /// manager's `_HWA` structure (see the Nominator), not in the device,
    /// so the CAM cannot be pinned by stale winners.
    pub reset_on_query: bool,
}

impl Default for HwtConfig {
    fn default() -> HwtConfig {
        HwtConfig {
            algo: TrackerAlgo::cm_sketch_32k(),
            k: 256,
            seed: 0x4a57,
            reset_on_query: true,
        }
    }
}

/// The Hot-Word Tracker device.
#[derive(Clone, Debug)]
pub struct HotWordTracker {
    tracker: TrackerImpl,
    reset_on_query: bool,
    observed: u64,
    queries: u64,
    k: usize,
    dead: bool,
    saturated: bool,
    flip_mask: u64,
    /// Batched-snoop key scratch; transient, not checkpointed.
    key_scratch: Vec<u64>,
}

impl HotWordTracker {
    /// Builds an HWT.
    pub fn new(config: HwtConfig) -> HotWordTracker {
        HotWordTracker {
            tracker: config.algo.build(config.k, config.seed),
            reset_on_query: config.reset_on_query,
            observed: 0,
            queries: 0,
            k: config.k,
            dead: false,
            saturated: false,
            flip_mask: 0,
            key_scratch: Vec::new(),
        }
    }

    /// Whether an injected [`DeviceFault::Fail`] killed this tracker.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// All-ones MMIO readback of a wedged device (see
    /// [`crate::hpt::HotPageTracker`]).
    fn garbage(&self) -> Vec<(CacheLineAddr, u64)> {
        (0..self.k)
            .map(|i| (CacheLineAddr(u64::MAX - i as u64), u64::MAX))
            .collect()
    }

    /// Accesses observed since the last query.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Queries served so far.
    pub fn queries(&self) -> u64 {
        self.queries
    }

    /// The current top-K hot words without resetting.
    pub fn peek(&self) -> Vec<(CacheLineAddr, u64)> {
        if self.dead {
            return self.garbage();
        }
        self.tracker
            .top_k()
            .into_iter()
            .map(|(a, c)| (CacheLineAddr(a), if self.saturated { u64::MAX } else { c }))
            .collect()
    }

    /// Serves a host query: returns the top-K hot words and resets.
    pub fn query(&mut self) -> Vec<(CacheLineAddr, u64)> {
        self.queries += 1;
        self.observed = 0;
        if self.dead {
            return self.garbage();
        }
        let top = if self.reset_on_query {
            self.tracker.drain_top_k()
        } else {
            self.tracker.top_k()
        };
        let saturated = self.saturated;
        self.saturated = false;
        top.into_iter()
            .map(|(a, c)| (CacheLineAddr(a), if saturated { u64::MAX } else { c }))
            .collect()
    }

    /// The underlying algorithm's name.
    pub fn algo_name(&self) -> &'static str {
        self.tracker.name()
    }

    /// Serializes the device's dynamic state (tracker SRAM plus the fault
    /// flags) for a checkpoint; see [`crate::hpt::HotPageTracker::save`].
    pub fn save(&self, w: &mut cxl_sim::checkpoint::StateWriter) {
        self.tracker.save(w);
        w.put_u64(self.observed);
        w.put_u64(self.queries);
        w.put_bool(self.dead);
        w.put_bool(self.saturated);
        w.put_u64(self.flip_mask);
    }

    /// Loads checkpointed state into a freshly constructed device.
    ///
    /// # Errors
    ///
    /// Propagates codec errors from a truncated payload or a tracker state
    /// that fails geometry validation.
    pub fn load(
        &mut self,
        r: &mut cxl_sim::checkpoint::StateReader<'_>,
    ) -> Result<(), cxl_sim::checkpoint::CodecError> {
        self.tracker.load(r)?;
        self.observed = r.get_u64()?;
        self.queries = r.get_u64()?;
        self.dead = r.get_bool()?;
        self.saturated = r.get_bool()?;
        self.flip_mask = r.get_u64()?;
        Ok(())
    }
}

impl CxlDevice for HotWordTracker {
    fn name(&self) -> &str {
        "hwt"
    }

    fn on_access(&mut self, line: CacheLineAddr, _is_write: bool, _now: Nanos) {
        if self.dead {
            return;
        }
        self.observed += 1;
        self.tracker.record(line.0 ^ self.flip_mask);
    }

    fn on_access_batch(&mut self, events: &[cxl_sim::controller::SnoopEvent]) {
        if self.dead {
            return;
        }
        // Same hoisting argument as the HPT: faults never land mid-batch.
        self.observed += events.len() as u64;
        self.key_scratch.clear();
        self.key_scratch
            .extend(events.iter().map(|e| e.line.0 ^ self.flip_mask));
        let mut keys = std::mem::take(&mut self.key_scratch);
        self.tracker.record_batch(&keys);
        keys.clear(); // scratch is dead between batches; keep state canonical
        self.key_scratch = keys;
    }

    fn on_fault(&mut self, fault: DeviceFault) {
        match fault {
            DeviceFault::SramBitFlip { slot: _, bit } => self.flip_mask ^= 1 << (bit % 48),
            DeviceFault::SramSaturate => self.saturated = true,
            DeviceFault::Fail => self.dead = true,
            // RAS faults target the memory/link layer, not the tracker
            // SRAM; the injector routes them to the RAS queue, never here.
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxl_sim::addr::{Pfn, WordIndex};
    use cxl_sim::memory::CXL_BASE_PFN;

    #[test]
    fn distinguishes_words_within_a_page() {
        let mut hwt = HotWordTracker::new(HwtConfig::default());
        let pfn = Pfn(CXL_BASE_PFN);
        let hot_word = pfn.word(WordIndex(5)).cache_line();
        let cold_word = pfn.word(WordIndex(6)).cache_line();
        for _ in 0..50 {
            hwt.on_access(hot_word, false, Nanos::ZERO);
        }
        hwt.on_access(cold_word, false, Nanos::ZERO);
        let top = hwt.peek();
        assert_eq!(top[0].0, hot_word);
        assert!(top[0].1 >= 50);
        assert_eq!(hwt.observed(), 51);
    }

    #[test]
    fn query_drains() {
        let mut hwt = HotWordTracker::new(HwtConfig::default());
        hwt.on_access(CacheLineAddr(9), false, Nanos::ZERO);
        assert_eq!(hwt.query()[0].0, CacheLineAddr(9));
        assert!(hwt.peek().is_empty());
        assert_eq!(hwt.queries(), 1);
    }
}
