//! HPT — the Hot-Page Tracker (§5.1).
//!
//! A top-K tracker in the CXL controller fed by the same snooped address
//! stream as PAC, keyed by PFN. Tracking costs the host CPU nothing; a
//! query returns the top-K hot pages and resets both the sketch and the
//! CAM so the next epoch starts fresh.

use crate::tracker_impl::{TrackerAlgo, TrackerImpl};
use cxl_sim::addr::{CacheLineAddr, Pfn};
use cxl_sim::controller::CxlDevice;
use cxl_sim::faults::DeviceFault;
use cxl_sim::time::Nanos;
use m5_trackers::topk::TopKAlgorithm;
use std::any::Any;

/// HPT configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HptConfig {
    /// The streaming algorithm and its size.
    pub algo: TrackerAlgo,
    /// Number of hot pages reported per query.
    pub k: usize,
    /// Hash seed.
    pub seed: u64,
    /// Whether a query resets the sketch and CAM for a fresh epoch (§5.1
    /// says the units "can be reset immediately after the query"). Page
    /// streams are dense enough for per-epoch tracking, so the default is
    /// `true`.
    pub reset_on_query: bool,
}

impl Default for HptConfig {
    fn default() -> HptConfig {
        HptConfig {
            algo: TrackerAlgo::cm_sketch_32k(),
            k: 32,
            seed: 0x4897,
            reset_on_query: true,
        }
    }
}

/// The Hot-Page Tracker device.
#[derive(Clone, Debug)]
pub struct HotPageTracker {
    tracker: TrackerImpl,
    reset_on_query: bool,
    observed: u64,
    queries: u64,
    k: usize,
    dead: bool,
    saturated: bool,
    flip_mask: u64,
    /// Batched-snoop key scratch; transient, not checkpointed.
    key_scratch: Vec<u64>,
}

impl HotPageTracker {
    /// Builds an HPT.
    pub fn new(config: HptConfig) -> HotPageTracker {
        HotPageTracker {
            tracker: config.algo.build(config.k, config.seed),
            reset_on_query: config.reset_on_query,
            observed: 0,
            queries: 0,
            k: config.k,
            dead: false,
            saturated: false,
            flip_mask: 0,
            key_scratch: Vec::new(),
        }
    }

    /// Whether an injected [`DeviceFault::Fail`] killed this tracker.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// What a wedged device's MMIO window reads back: all-ones entries. The
    /// manager's health check recognises these as garbage and falls back to
    /// software-only identification.
    fn garbage(&self) -> Vec<(Pfn, u64)> {
        (0..self.k)
            .map(|i| (Pfn(u64::MAX - i as u64), u64::MAX))
            .collect()
    }

    /// Accesses observed since the last query.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Queries served so far.
    pub fn queries(&self) -> u64 {
        self.queries
    }

    /// The current top-K hot pages without resetting (debug/tests).
    pub fn peek(&self) -> Vec<(Pfn, u64)> {
        if self.dead {
            return self.garbage();
        }
        self.tracker
            .top_k()
            .into_iter()
            .map(|(a, c)| (Pfn(a), if self.saturated { u64::MAX } else { c }))
            .collect()
    }

    /// Serves a host query: returns the top-K hot pages and resets the
    /// tracker for the next epoch.
    pub fn query(&mut self) -> Vec<(Pfn, u64)> {
        self.queries += 1;
        self.observed = 0;
        if self.dead {
            return self.garbage();
        }
        let top = if self.reset_on_query {
            self.tracker.drain_top_k()
        } else {
            self.tracker.top_k()
        };
        let saturated = self.saturated;
        self.saturated = false;
        top.into_iter()
            .map(|(a, c)| (Pfn(a), if saturated { u64::MAX } else { c }))
            .collect()
    }

    /// The underlying algorithm's name.
    pub fn algo_name(&self) -> &'static str {
        self.tracker.name()
    }

    /// Serializes the device's dynamic state (tracker SRAM plus the fault
    /// flags) for a checkpoint. `k` and `reset_on_query` are configuration,
    /// rebuilt by the restoring side's [`HotPageTracker::new`].
    pub fn save(&self, w: &mut cxl_sim::checkpoint::StateWriter) {
        self.tracker.save(w);
        w.put_u64(self.observed);
        w.put_u64(self.queries);
        w.put_bool(self.dead);
        w.put_bool(self.saturated);
        w.put_u64(self.flip_mask);
    }

    /// Loads checkpointed state into a freshly constructed device.
    ///
    /// # Errors
    ///
    /// Propagates codec errors from a truncated payload or a tracker state
    /// that fails geometry validation.
    pub fn load(
        &mut self,
        r: &mut cxl_sim::checkpoint::StateReader<'_>,
    ) -> Result<(), cxl_sim::checkpoint::CodecError> {
        self.tracker.load(r)?;
        self.observed = r.get_u64()?;
        self.queries = r.get_u64()?;
        self.dead = r.get_bool()?;
        self.saturated = r.get_bool()?;
        self.flip_mask = r.get_u64()?;
        Ok(())
    }
}

impl CxlDevice for HotPageTracker {
    fn name(&self) -> &str {
        "hpt"
    }

    fn on_access(&mut self, line: CacheLineAddr, _is_write: bool, _now: Nanos) {
        if self.dead {
            return;
        }
        self.observed += 1;
        self.tracker.record(line.pfn().0 ^ self.flip_mask);
    }

    fn on_access_batch(&mut self, events: &[cxl_sim::controller::SnoopEvent]) {
        if self.dead {
            return;
        }
        // `dead` and `flip_mask` only change at fault delivery, which never
        // lands mid-batch, so hoisting the checks and the key mapping out
        // of the record loop is state-identical to the per-event path.
        self.observed += events.len() as u64;
        self.key_scratch.clear();
        self.key_scratch
            .extend(events.iter().map(|e| e.line.pfn().0 ^ self.flip_mask));
        let mut keys = std::mem::take(&mut self.key_scratch);
        self.tracker.record_batch(&keys);
        keys.clear(); // scratch is dead between batches; keep state canonical
        self.key_scratch = keys;
    }

    fn on_fault(&mut self, fault: DeviceFault) {
        match fault {
            // Address-path corruption: every subsequent record lands on a
            // wrong key.
            DeviceFault::SramBitFlip { slot: _, bit } => self.flip_mask ^= 1 << (bit % 48),
            DeviceFault::SramSaturate => self.saturated = true,
            DeviceFault::Fail => self.dead = true,
            // RAS faults target the memory/link layer, not the tracker
            // SRAM; the injector routes them to the RAS queue, never here.
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxl_sim::addr::WordIndex;
    use cxl_sim::memory::CXL_BASE_PFN;

    fn touch(hpt: &mut HotPageTracker, page: u64, times: u64) {
        for i in 0..times {
            let w = WordIndex((i % 64) as u8);
            hpt.on_access(
                Pfn(CXL_BASE_PFN + page).word(w).cache_line(),
                false,
                Nanos::ZERO,
            );
        }
    }

    #[test]
    fn tracks_hot_pages_across_word_offsets() {
        let mut hpt = HotPageTracker::new(HptConfig::default());
        touch(&mut hpt, 1, 100);
        touch(&mut hpt, 2, 10);
        let top = hpt.peek();
        assert_eq!(top[0].0, Pfn(CXL_BASE_PFN + 1));
        assert!(top[0].1 >= 100);
        assert_eq!(hpt.observed(), 110);
    }

    #[test]
    fn query_resets_for_next_epoch() {
        let mut hpt = HotPageTracker::new(HptConfig::default());
        touch(&mut hpt, 3, 50);
        let first = hpt.query();
        assert_eq!(first[0].0, Pfn(CXL_BASE_PFN + 3));
        assert!(hpt.peek().is_empty());
        assert_eq!(hpt.observed(), 0);
        assert_eq!(hpt.queries(), 1);
        // A fresh epoch tracks fresh pages.
        touch(&mut hpt, 4, 5);
        assert_eq!(hpt.query()[0].0, Pfn(CXL_BASE_PFN + 4));
    }

    #[test]
    fn space_saving_variant_works() {
        let mut hpt = HotPageTracker::new(HptConfig {
            algo: TrackerAlgo::space_saving_50(),
            k: 5,
            seed: 0,
            reset_on_query: true,
        });
        touch(&mut hpt, 7, 30);
        assert_eq!(hpt.algo_name(), "space-saving");
        assert_eq!(hpt.peek()[0].0, Pfn(CXL_BASE_PFN + 7));
    }
}
