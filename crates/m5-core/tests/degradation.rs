//! Graceful-degradation harness: killing the near-memory trackers mid-run
//! must push the M5-manager into software-only identification — the run
//! completes, the mode switch shows up in the report, and nothing panics.

use cxl_sim::faults::{DeviceFault, FaultKind, FaultPlan};
use cxl_sim::memory::NodeId;
use cxl_sim::prelude::*;
use cxl_sim::system::{run, AccessStream};
use cxl_sim::time::Nanos;
use m5_core::manager::{M5Config, M5Manager};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

struct SkewedStream {
    base: VirtAddr,
    pages: u64,
    hot: u64,
    rng: SmallRng,
    remaining: u64,
}

impl AccessStream for SkewedStream {
    fn next_access(&mut self) -> Option<Access> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let page = if self.rng.gen::<f64>() < 0.9 {
            self.rng.gen_range(0..self.hot)
        } else {
            self.rng.gen_range(self.hot..self.pages)
        };
        let off = self.rng.gen_range(0u64..64) * 64;
        Some(Access::read(self.base.offset(page * 4096 + off)))
    }
}

fn setup(plan: &FaultPlan) -> (System, SkewedStream, M5Manager) {
    let mut sys = System::with_fault_plan(
        SystemConfig::small()
            .with_cxl_frames(1024)
            .with_ddr_frames(256),
        plan,
    );
    let region = sys.alloc_region(512, Placement::AllOnCxl).unwrap();
    let wl = SkewedStream {
        base: region.base,
        pages: 512,
        hot: 16,
        rng: SmallRng::seed_from_u64(3),
        remaining: 300_000,
    };
    (sys, wl, M5Manager::new(M5Config::default()))
}

#[test]
fn tracker_failure_falls_back_to_software_identification() {
    // Kill every attached device early in the run: the HPT starts
    // returning garbage, the manager strikes it out and switches to PTE
    // accessed-bit scanning.
    let plan = FaultPlan::none().with(Nanos(1_000), FaultKind::Device(DeviceFault::Fail));
    let (mut sys, mut wl, mut m5) = setup(&plan);
    let report = run(&mut sys, &mut wl, &mut m5, u64::MAX);

    assert_eq!(
        report.accesses, 300_000,
        "run completed despite tracker loss"
    );
    assert!(m5.in_software_fallback());
    assert_eq!(report.daemon, "m5-hpt+sw-fallback");
    assert_eq!(report.health.degraded.len(), 1);
    assert!(report.health.degraded[0].contains("software-only"));
    // Software identification still finds and promotes hot pages — worse,
    // but working (it bills real PTE-scan time, unlike the trackers).
    assert!(report.migrations.promotions > 0);
    assert!(report.kernel.of(cxl_sim::kernel::CostKind::PteScan) > Nanos::ZERO);
    let hot_on_ddr = (0..16)
        .filter(|&p| sys.page_table().get(Vpn(p)).unwrap().node() == NodeId::Ddr)
        .count();
    assert!(
        hot_on_ddr > 0,
        "fallback still promotes some of the hot set"
    );
}

#[test]
fn healthy_run_records_clean_health() {
    let (mut sys, mut wl, mut m5) = setup(&FaultPlan::none());
    let report = run(&mut sys, &mut wl, &mut m5, u64::MAX);
    assert!(!m5.in_software_fallback());
    assert_eq!(report.daemon, "m5-hpt");
    assert!(report.health.degraded.is_empty());
    assert_eq!(report.health.faults_injected, 0);
}

#[test]
fn chaos_plans_never_crash_the_manager() {
    for seed in 0..4 {
        let plan = FaultPlan::chaos(seed, Nanos(5_000_000));
        let (mut sys, mut wl, mut m5) = setup(&plan);
        let report = run(&mut sys, &mut wl, &mut m5, u64::MAX);
        assert_eq!(report.accesses, 300_000, "seed {seed} completed");
    }
}

#[test]
fn chaos_manager_runs_are_deterministic() {
    let plan = FaultPlan::chaos(9, Nanos(5_000_000));
    let once = || {
        let (mut sys, mut wl, mut m5) = setup(&plan);
        run(&mut sys, &mut wl, &mut m5, u64::MAX)
    };
    assert_eq!(once(), once());
}
