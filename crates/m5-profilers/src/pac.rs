//! PAC — the Page Access Counter (§3).
//!
//! An address-to-PFN converter snoops every access address flowing from the
//! CXL IP to the memory controllers and right-shifts `PA[47:6]` by 6 bits;
//! an SRAM unit holds one `L`-bit saturating counter per monitored 4 KiB
//! page; saturated counters are accumulated into a 64-bit access-count
//! table and reset, so the final per-page counts are **exact** — unlike
//! PEBS-style sampling, PAC observes every DRAM access.

use crate::count_table::AccessCountTable;
use crate::mmio::MmioWindow;
use cxl_sim::addr::{CacheLineAddr, Pfn};
use cxl_sim::controller::CxlDevice;
use cxl_sim::faults::DeviceFault;
use cxl_sim::memory::CXL_BASE_PFN;
use cxl_sim::system::System;
use cxl_sim::time::Nanos;
use std::any::Any;

/// PAC configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PacConfig {
    /// Counter width `L` in bits (16 in the paper: saturates only after
    /// ~20 s even for memory-intensive workloads).
    pub counter_bits: u32,
    /// First monitored PFN.
    pub base: Pfn,
    /// Number of monitored pages.
    pub pages: u64,
}

impl PacConfig {
    /// A PAC covering the system's whole CXL node with 16-bit counters.
    pub fn covering_cxl(sys: &System) -> PacConfig {
        PacConfig {
            counter_bits: 16,
            base: Pfn(CXL_BASE_PFN),
            pages: sys.config().cxl.capacity_frames,
        }
    }
}

/// The Page Access Counter device.
#[derive(Clone, Debug)]
pub struct Pac {
    config: PacConfig,
    max: u64,
    sram: Vec<u64>,
    table: AccessCountTable,
    counted: u64,
    out_of_range: u64,
    mmio: MmioWindow,
    dead: bool,
}

impl Pac {
    /// Builds a PAC.
    ///
    /// # Panics
    ///
    /// Panics if `counter_bits` is 0 or greater than 63, or if `pages` is 0.
    pub fn new(config: PacConfig) -> Pac {
        assert!(
            (1..=63).contains(&config.counter_bits),
            "counter width must be 1..=63 bits"
        );
        assert!(config.pages > 0, "must monitor at least one page");
        Pac {
            max: (1u64 << config.counter_bits) - 1,
            sram: vec![0; config.pages as usize],
            table: AccessCountTable::new(),
            counted: 0,
            out_of_range: 0,
            // Each page's counter is L bits; model the SRAM in whole bytes.
            mmio: MmioWindow::new(config.pages * config.counter_bits.div_ceil(8) as u64),
            dead: false,
            config,
        }
    }

    /// Whether an injected [`DeviceFault::Fail`] killed this PAC.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// The configuration.
    pub fn config(&self) -> &PacConfig {
        &self.config
    }

    fn index_of(&self, pfn: Pfn) -> Option<usize> {
        let rel = pfn.0.checked_sub(self.config.base.0)?;
        (rel < self.config.pages).then_some(rel as usize)
    }

    /// The exact access count of `pfn` (SRAM residue plus spilled table
    /// value); `0` for unmonitored pages.
    pub fn count(&self, pfn: Pfn) -> u64 {
        match self.index_of(pfn) {
            Some(idx) => self.sram[idx] + self.table.get(pfn.0),
            None => 0,
        }
    }

    /// Total accesses counted (all monitored pages).
    pub fn total_counted(&self) -> u64 {
        self.counted
    }

    /// Accesses that fell outside the monitored range.
    pub fn out_of_range(&self) -> u64 {
        self.out_of_range
    }

    /// D2H/D2D spill writes performed by saturation handling.
    pub fn spill_writes(&self) -> u64 {
        self.table.spill_writes()
    }

    /// Iterates `(pfn, count)` over monitored pages with nonzero counts.
    pub fn iter_counts(&self) -> impl Iterator<Item = (Pfn, u64)> + '_ {
        self.sram.iter().enumerate().filter_map(move |(i, &c)| {
            let pfn = Pfn(self.config.base.0 + i as u64);
            let total = c + self.table.get(pfn.0);
            (total > 0).then_some((pfn, total))
        })
    }

    /// The `k` hottest pages, hottest first (ties broken by PFN).
    pub fn hottest(&self, k: usize) -> Vec<(Pfn, u64)> {
        let mut v: Vec<(Pfn, u64)> = self.iter_counts().collect();
        v.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    /// Sum of the counts of the top `k` pages — the denominator of the
    /// paper's average access-count ratio (§4.1, step S5).
    pub fn top_k_sum(&self, k: usize) -> u64 {
        self.hottest(k).iter().map(|&(_, c)| c).sum()
    }

    /// Sum of the counts of an arbitrary set of pages — the numerator of
    /// the access-count ratio (§4.1, step S4: look up each identified PFN).
    pub fn sum_counts_of<I: IntoIterator<Item = Pfn>>(&self, pfns: I) -> u64 {
        pfns.into_iter().map(|p| self.count(p)).sum()
    }

    /// Simulates a full software readout of the SRAM through the 1 MiB MMIO
    /// window, returning `(base-register writes, counter reads)`.
    pub fn simulate_full_readout(&mut self) -> (u64, u64) {
        self.mmio.reset_traffic();
        let stride = self.config.counter_bits.div_ceil(8) as u64;
        self.mmio.read_range(0, self.config.pages * stride, stride);
        (self.mmio.reg_writes(), self.mmio.reads())
    }

    /// Clears all counters and the spill table.
    pub fn reset(&mut self) {
        self.sram.fill(0);
        self.table.clear();
        self.counted = 0;
        self.out_of_range = 0;
    }
}

impl CxlDevice for Pac {
    fn name(&self) -> &str {
        "pac"
    }

    fn on_access(&mut self, line: CacheLineAddr, _is_write: bool, _now: Nanos) {
        if self.dead {
            return;
        }
        let pfn = line.pfn();
        match self.index_of(pfn) {
            Some(idx) => {
                self.counted += 1;
                self.sram[idx] += 1;
                if self.sram[idx] >= self.max {
                    self.table.spill(pfn.0, self.sram[idx]);
                    self.sram[idx] = 0;
                }
            }
            None => self.out_of_range += 1,
        }
    }

    fn on_fault(&mut self, fault: DeviceFault) {
        match fault {
            DeviceFault::SramBitFlip { slot, bit } => {
                let idx = (slot % self.sram.len() as u64) as usize;
                self.sram[idx] ^= 1 << (bit % self.config.counter_bits);
            }
            DeviceFault::SramSaturate => self.sram.fill(self.max),
            DeviceFault::Fail => self.dead = true,
            // RAS faults target the memory/link layer, not the profiler
            // SRAM; the injector routes them to the RAS queue, never here.
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxl_sim::addr::WordIndex;

    fn small_pac(bits: u32) -> Pac {
        Pac::new(PacConfig {
            counter_bits: bits,
            base: Pfn(CXL_BASE_PFN),
            pages: 16,
        })
    }

    fn touch(pac: &mut Pac, page: u64, times: u64) {
        let line = Pfn(CXL_BASE_PFN + page).word(WordIndex(0)).cache_line();
        for _ in 0..times {
            pac.on_access(line, false, Nanos::ZERO);
        }
    }

    #[test]
    fn counts_are_exact() {
        let mut pac = small_pac(16);
        touch(&mut pac, 0, 123);
        touch(&mut pac, 3, 7);
        assert_eq!(pac.count(Pfn(CXL_BASE_PFN)), 123);
        assert_eq!(pac.count(Pfn(CXL_BASE_PFN + 3)), 7);
        assert_eq!(pac.count(Pfn(CXL_BASE_PFN + 1)), 0);
        assert_eq!(pac.total_counted(), 130);
    }

    #[test]
    fn saturation_spills_to_table_and_counts_stay_exact() {
        // 4-bit counters saturate at 15.
        let mut pac = small_pac(4);
        touch(&mut pac, 2, 100);
        assert_eq!(
            pac.count(Pfn(CXL_BASE_PFN + 2)),
            100,
            "exact despite spills"
        );
        assert_eq!(pac.spill_writes(), 100 / 15);
    }

    #[test]
    fn different_words_of_one_page_count_to_that_page() {
        let mut pac = small_pac(16);
        let pfn = Pfn(CXL_BASE_PFN + 5);
        for w in 0..64u8 {
            pac.on_access(pfn.word(WordIndex(w)).cache_line(), false, Nanos::ZERO);
        }
        assert_eq!(pac.count(pfn), 64);
    }

    #[test]
    fn out_of_range_accesses_are_ignored_but_counted() {
        let mut pac = small_pac(16);
        // DDR access: PFN below the CXL base.
        pac.on_access(Pfn(1).word(WordIndex(0)).cache_line(), false, Nanos::ZERO);
        // Beyond the monitored window.
        pac.on_access(
            Pfn(CXL_BASE_PFN + 100).word(WordIndex(0)).cache_line(),
            false,
            Nanos::ZERO,
        );
        assert_eq!(pac.total_counted(), 0);
        assert_eq!(pac.out_of_range(), 2);
    }

    #[test]
    fn hottest_and_ratio_helpers() {
        let mut pac = small_pac(16);
        touch(&mut pac, 0, 50);
        touch(&mut pac, 1, 30);
        touch(&mut pac, 2, 10);
        let top = pac.hottest(2);
        assert_eq!(top[0], (Pfn(CXL_BASE_PFN), 50));
        assert_eq!(top[1], (Pfn(CXL_BASE_PFN + 1), 30));
        assert_eq!(pac.top_k_sum(2), 80);
        // A "warm page" list achieves a lower sum than the true top-2.
        let warm = pac.sum_counts_of([Pfn(CXL_BASE_PFN + 1), Pfn(CXL_BASE_PFN + 2)]);
        assert_eq!(warm, 40);
    }

    #[test]
    fn readout_traffic_scales_with_sram_size() {
        let mut big = Pac::new(PacConfig {
            counter_bits: 16,
            base: Pfn(CXL_BASE_PFN),
            pages: 2 * 1024 * 1024, // 4 MiB of 16-bit counters
        });
        let (switches, reads) = big.simulate_full_readout();
        assert_eq!(reads, 2 * 1024 * 1024);
        assert_eq!(switches, 3, "4 MiB through a 1 MiB window");
    }

    #[test]
    fn injected_faults_corrupt_but_never_crash() {
        let mut pac = small_pac(4);
        touch(&mut pac, 1, 3);
        // A bit flip perturbs one counter but keeps the device running.
        pac.on_fault(DeviceFault::SramBitFlip { slot: 1, bit: 1 });
        touch(&mut pac, 1, 1);
        assert!(pac.count(Pfn(CXL_BASE_PFN + 1)) != 4, "counter corrupted");
        // Saturation pegs every counter; candidates stay in range.
        pac.on_fault(DeviceFault::SramSaturate);
        touch(&mut pac, 2, 1);
        for (pfn, _) in pac.hottest(100) {
            let rel = pfn.0 - CXL_BASE_PFN;
            assert!(rel < 16, "candidate {pfn:?} outside monitored range");
        }
        // A dead PAC stops counting silently.
        pac.on_fault(DeviceFault::Fail);
        assert!(pac.is_dead());
        let before = pac.total_counted();
        touch(&mut pac, 3, 10);
        assert_eq!(pac.total_counted(), before);
    }

    #[test]
    fn reset_clears_counts() {
        let mut pac = small_pac(4);
        touch(&mut pac, 0, 99);
        pac.reset();
        assert_eq!(pac.count(Pfn(CXL_BASE_PFN)), 0);
        assert_eq!(pac.total_counted(), 0);
        assert_eq!(pac.iter_counts().count(), 0);
    }
}
