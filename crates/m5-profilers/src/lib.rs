//! # m5-profilers — PAC and WAC, the exact CXL-side access profilers
//!
//! Behavioural models of the paper's §3 profiling hardware:
//!
//! * [`pac::Pac`] — the **Page Access Counter**: snoops every access address
//!   from the CXL IP to the memory controllers, right-shifts `PA[47:6]` by 6
//!   to obtain the PFN, and counts accesses per 4 KiB page in an SRAM unit
//!   of `L`-bit saturating counters. Saturated counters spill into a 64-bit
//!   access-count table (in host or device memory) and reset, so final
//!   counts are exact.
//! * [`wac::Wac`] — the **Word Access Counter**: same datapath without the
//!   PFN conversion; counts accesses per 64 B word. Because a full-device
//!   word-granular table would need 8 GB for 256 GB of DRAM, WAC monitors a
//!   configurable region window (128 MB with 4-bit counters in the paper)
//!   that software re-aims between intervals.
//! * [`counter_cache::CounterCache`] — scalability mode 1 (§3): the SRAM
//!   unit acts as a cache over the access-count table, evicting counters
//!   with D2H/D2D writebacks on misses.
//! * [`mmio::MmioWindow`] — the software interface model: a 1 MiB MMIO
//!   window plus a base-address register paging through the 4 MiB SRAM,
//!   with traffic accounting so harnesses can bill readout cost.
//!
//! Both profilers implement [`cxl_sim::controller::CxlDevice`], so they
//! attach directly to a simulated system:
//!
//! ```
//! use cxl_sim::prelude::*;
//! use m5_profilers::pac::{Pac, PacConfig};
//!
//! let mut sys = System::new(SystemConfig::small());
//! let region = sys.alloc_region(4, Placement::AllOnCxl).unwrap();
//! let pac = Pac::new(PacConfig::covering_cxl(&sys));
//! let handle = sys.attach_device(pac);
//!
//! sys.access(region.base, false);
//! let pac: &Pac = sys.device(handle).unwrap();
//! assert_eq!(pac.total_counted(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod count_table;
pub mod counter_cache;
pub mod mmio;
pub mod pac;
pub mod wac;
