//! The 64-bit access-count table.
//!
//! When an SRAM counter saturates (or is evicted in counter-cache mode),
//! PAC/WAC accumulate its value into a 64-bit counter in a table allocated
//! in host or device memory, written via D2H/D2D accesses (§3). The table
//! is sparse in practice, so it is modelled as a hash map; every spill is
//! counted so harnesses can reason about the writeback traffic.

use std::collections::HashMap;

/// A sparse table of 64-bit accumulated counts, keyed by an index (a PFN
/// offset for PAC, a word offset for WAC).
#[derive(Clone, Debug, Default)]
pub struct AccessCountTable {
    counts: HashMap<u64, u64>,
    spill_writes: u64,
}

impl AccessCountTable {
    /// An empty table.
    pub fn new() -> AccessCountTable {
        AccessCountTable::default()
    }

    /// Accumulates `amount` into the counter at `idx` (one D2H/D2D write).
    pub fn spill(&mut self, idx: u64, amount: u64) {
        if amount == 0 {
            return;
        }
        *self.counts.entry(idx).or_default() += amount;
        self.spill_writes += 1;
    }

    /// The accumulated count at `idx`.
    pub fn get(&self, idx: u64) -> u64 {
        self.counts.get(&idx).copied().unwrap_or(0)
    }

    /// Number of D2H/D2D spill writes performed.
    pub fn spill_writes(&self) -> u64 {
        self.spill_writes
    }

    /// Number of distinct indices with nonzero accumulated counts.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Iterates over `(index, accumulated count)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().map(|(&i, &c)| (i, c))
    }

    /// Clears the table.
    pub fn clear(&mut self) {
        self.counts.clear();
        self.spill_writes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spills_accumulate() {
        let mut t = AccessCountTable::new();
        t.spill(7, 65_535);
        t.spill(7, 65_535);
        t.spill(9, 3);
        assert_eq!(t.get(7), 131_070);
        assert_eq!(t.get(9), 3);
        assert_eq!(t.get(8), 0);
        assert_eq!(t.spill_writes(), 3);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn zero_spills_are_free() {
        let mut t = AccessCountTable::new();
        t.spill(1, 0);
        assert!(t.is_empty());
        assert_eq!(t.spill_writes(), 0);
    }

    #[test]
    fn clear_resets_everything() {
        let mut t = AccessCountTable::new();
        t.spill(1, 5);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.spill_writes(), 0);
        assert_eq!(t.iter().count(), 0);
    }
}
