//! WAC — the Word Access Counter (§3).
//!
//! The same datapath as PAC but without the address-to-PFN conversion: one
//! saturating counter per 64 B word. Exact word-granular counting of a
//! whole 256 GB device would need 8 GB of counters, so WAC monitors a
//! configurable *region window* (128 MB with 4-bit counters in the paper)
//! that software re-aims across intervals or runs. Counts spilled to the
//! 64-bit access-count table are keyed by absolute word address, so
//! multi-window profiles accumulate correctly.

use crate::count_table::AccessCountTable;
use cxl_sim::addr::{CacheLineAddr, Pfn, WORDS_PER_PAGE};
use cxl_sim::controller::CxlDevice;
use cxl_sim::faults::DeviceFault;
use cxl_sim::memory::CXL_BASE_PFN;
use cxl_sim::system::System;
use cxl_sim::time::Nanos;
use std::any::Any;
use std::collections::HashMap;

/// WAC configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WacConfig {
    /// Counter width in bits (4 in the paper's 128 MB window mode).
    pub counter_bits: u32,
    /// First monitored word (cache-line address).
    pub window_base: CacheLineAddr,
    /// Number of monitored words.
    pub window_words: u64,
}

impl WacConfig {
    /// A WAC whose window covers the system's whole CXL node (possible at
    /// simulated scale; real hardware would sweep 128 MB windows).
    pub fn covering_cxl(sys: &System) -> WacConfig {
        WacConfig {
            counter_bits: 4,
            window_base: Pfn(CXL_BASE_PFN).base().cache_line(),
            window_words: sys.config().cxl.capacity_frames * WORDS_PER_PAGE as u64,
        }
    }

    /// The paper's hardware window: 128 MB of words with 4-bit counters,
    /// starting at `base`.
    pub fn paper_window(base: CacheLineAddr) -> WacConfig {
        WacConfig {
            counter_bits: 4,
            window_base: base,
            window_words: (128 << 20) / 64,
        }
    }
}

/// The Word Access Counter device.
#[derive(Clone, Debug)]
pub struct Wac {
    config: WacConfig,
    max: u64,
    sram: Vec<u8>,
    table: AccessCountTable,
    counted: u64,
    out_of_window: u64,
    dead: bool,
}

impl Wac {
    /// Builds a WAC.
    ///
    /// # Panics
    ///
    /// Panics if `counter_bits` is 0 or greater than 8 (the windowed SRAM
    /// model stores at most a byte per word), or if the window is empty.
    pub fn new(config: WacConfig) -> Wac {
        assert!(
            (1..=8).contains(&config.counter_bits),
            "word counters are 1..=8 bits"
        );
        assert!(config.window_words > 0, "window must be non-empty");
        Wac {
            max: (1u64 << config.counter_bits) - 1,
            sram: vec![0; config.window_words as usize],
            table: AccessCountTable::new(),
            counted: 0,
            out_of_window: 0,
            dead: false,
            config,
        }
    }

    /// Whether an injected [`DeviceFault::Fail`] killed this WAC.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// The configuration.
    pub fn config(&self) -> &WacConfig {
        &self.config
    }

    fn index_of(&self, line: CacheLineAddr) -> Option<usize> {
        let rel = line.0.checked_sub(self.config.window_base.0)?;
        (rel < self.config.window_words).then_some(rel as usize)
    }

    /// Re-aims the window at `base`, first spilling all SRAM residues into
    /// the table so no counts are lost (the multi-interval mode of §3).
    pub fn aim(&mut self, base: CacheLineAddr) {
        self.flush_sram();
        self.config.window_base = base;
    }

    /// Spills every nonzero SRAM counter into the table and clears the SRAM.
    pub fn flush_sram(&mut self) {
        for (i, c) in self.sram.iter_mut().enumerate() {
            if *c > 0 {
                self.table
                    .spill(self.config.window_base.0 + i as u64, *c as u64);
                *c = 0;
            }
        }
    }

    /// The exact access count of `line` (SRAM residue + table).
    pub fn word_count(&self, line: CacheLineAddr) -> u64 {
        let sram = self.index_of(line).map_or(0, |idx| self.sram[idx] as u64);
        sram + self.table.get(line.0)
    }

    /// Total word accesses counted.
    pub fn total_counted(&self) -> u64 {
        self.counted
    }

    /// Accesses that fell outside the current window.
    pub fn out_of_window(&self) -> u64 {
        self.out_of_window
    }

    /// Iterates `(line, count)` over words with nonzero counts, merging the
    /// current window's SRAM with spilled history.
    pub fn iter_counts(&self) -> impl Iterator<Item = (CacheLineAddr, u64)> + '_ {
        let mut merged: HashMap<u64, u64> = self.table.iter().collect();
        for (i, &c) in self.sram.iter().enumerate() {
            if c > 0 {
                *merged
                    .entry(self.config.window_base.0 + i as u64)
                    .or_default() += c as u64;
            }
        }
        merged.into_iter().map(|(a, c)| (CacheLineAddr(a), c))
    }

    /// The `k` hottest words, hottest first (ties broken by address).
    pub fn hottest(&self, k: usize) -> Vec<(CacheLineAddr, u64)> {
        let mut v: Vec<(CacheLineAddr, u64)> = self.iter_counts().collect();
        v.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    /// Sum of the counts of the top `k` words.
    pub fn top_k_sum(&self, k: usize) -> u64 {
        self.hottest(k).iter().map(|&(_, c)| c).sum()
    }

    /// Sum of the counts of an arbitrary word set.
    pub fn sum_counts_of<I: IntoIterator<Item = CacheLineAddr>>(&self, lines: I) -> u64 {
        lines.into_iter().map(|l| self.word_count(l)).sum()
    }

    /// Number of *unique* words accessed in each page — the Figure 4
    /// access-sparsity metric. Returns `(pfn → unique words)` for every
    /// page with at least one counted word.
    pub fn unique_words_per_page(&self) -> HashMap<Pfn, u32> {
        let mut out: HashMap<Pfn, u32> = HashMap::new();
        for (line, _) in self.iter_counts() {
            *out.entry(line.pfn()).or_default() += 1;
        }
        out
    }

    /// Clears all counters and history.
    pub fn reset(&mut self) {
        self.sram.fill(0);
        self.table.clear();
        self.counted = 0;
        self.out_of_window = 0;
    }
}

impl CxlDevice for Wac {
    fn name(&self) -> &str {
        "wac"
    }

    fn on_access(&mut self, line: CacheLineAddr, _is_write: bool, _now: Nanos) {
        if self.dead {
            return;
        }
        match self.index_of(line) {
            Some(idx) => {
                self.counted += 1;
                self.sram[idx] += 1;
                if self.sram[idx] as u64 >= self.max {
                    self.table.spill(line.0, self.sram[idx] as u64);
                    self.sram[idx] = 0;
                }
            }
            None => self.out_of_window += 1,
        }
    }

    fn on_fault(&mut self, fault: DeviceFault) {
        match fault {
            DeviceFault::SramBitFlip { slot, bit } => {
                let idx = (slot % self.sram.len() as u64) as usize;
                self.sram[idx] ^= 1 << (bit % self.config.counter_bits);
            }
            DeviceFault::SramSaturate => self.sram.fill(self.max as u8),
            DeviceFault::Fail => self.dead = true,
            // RAS faults target the memory/link layer, not the profiler
            // SRAM; the injector routes them to the RAS queue, never here.
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxl_sim::addr::WordIndex;

    fn base() -> CacheLineAddr {
        Pfn(CXL_BASE_PFN).base().cache_line()
    }

    fn wac_with_words(words: u64, bits: u32) -> Wac {
        Wac::new(WacConfig {
            counter_bits: bits,
            window_base: base(),
            window_words: words,
        })
    }

    #[test]
    fn exact_counts_despite_4bit_saturation() {
        let mut wac = wac_with_words(256, 4);
        let line = base();
        for _ in 0..1000 {
            wac.on_access(line, false, Nanos::ZERO);
        }
        assert_eq!(wac.word_count(line), 1000);
        assert_eq!(wac.total_counted(), 1000);
        assert!(wac.table.spill_writes() >= 1000 / 15);
    }

    #[test]
    fn injected_faults_corrupt_but_never_crash() {
        let mut wac = wac_with_words(256, 4);
        let line = base();
        for _ in 0..3 {
            wac.on_access(line, false, Nanos::ZERO);
        }
        wac.on_fault(DeviceFault::SramBitFlip { slot: 0, bit: 0 });
        assert_ne!(wac.word_count(line), 3, "counter corrupted");
        wac.on_fault(DeviceFault::SramSaturate);
        wac.on_access(line, false, Nanos::ZERO);
        // Saturated counters still report candidates inside the window only.
        for (l, _) in wac.hottest(1000) {
            assert!(l.0 - base().0 < 256, "candidate outside window");
        }
        wac.on_fault(DeviceFault::Fail);
        assert!(wac.is_dead());
        let before = wac.total_counted();
        wac.on_access(line, false, Nanos::ZERO);
        assert_eq!(wac.total_counted(), before);
    }

    #[test]
    fn unique_words_per_page_measures_sparsity() {
        let mut wac = wac_with_words(64 * 4, 4);
        let pfn0 = Pfn(CXL_BASE_PFN);
        let pfn1 = Pfn(CXL_BASE_PFN + 1);
        // Page 0: sparse, only 3 unique words (one touched repeatedly).
        for w in [0u8, 5, 9] {
            for _ in 0..10 {
                wac.on_access(pfn0.word(WordIndex(w)).cache_line(), false, Nanos::ZERO);
            }
        }
        // Page 1: dense, all 64 words.
        for w in 0..64u8 {
            wac.on_access(pfn1.word(WordIndex(w)).cache_line(), false, Nanos::ZERO);
        }
        let uniq = wac.unique_words_per_page();
        assert_eq!(uniq[&pfn0], 3);
        assert_eq!(uniq[&pfn1], 64);
    }

    #[test]
    fn window_reaim_preserves_history() {
        let mut wac = wac_with_words(64, 4);
        let first = base();
        for _ in 0..7 {
            wac.on_access(first, false, Nanos::ZERO);
        }
        // Accesses beyond the window are not counted...
        let far = CacheLineAddr(base().0 + 1000);
        wac.on_access(far, false, Nanos::ZERO);
        assert_eq!(wac.out_of_window(), 1);
        // ...until the window is re-aimed there.
        wac.aim(CacheLineAddr(base().0 + 1000));
        for _ in 0..3 {
            wac.on_access(far, false, Nanos::ZERO);
        }
        assert_eq!(wac.word_count(far), 3);
        assert_eq!(wac.word_count(first), 7, "history preserved via table");
    }

    #[test]
    fn hottest_orders_by_count() {
        let mut wac = wac_with_words(64, 8);
        let a = base();
        let b = CacheLineAddr(base().0 + 1);
        for _ in 0..5 {
            wac.on_access(a, false, Nanos::ZERO);
        }
        for _ in 0..9 {
            wac.on_access(b, false, Nanos::ZERO);
        }
        assert_eq!(wac.hottest(2), vec![(b, 9), (a, 5)]);
        assert_eq!(wac.top_k_sum(1), 9);
        assert_eq!(wac.sum_counts_of([a, b]), 14);
    }

    #[test]
    fn paper_window_is_128mb() {
        let cfg = WacConfig::paper_window(base());
        assert_eq!(cfg.window_words, 2 * 1024 * 1024);
        assert_eq!(cfg.counter_bits, 4);
    }

    #[test]
    fn reset_clears_everything() {
        let mut wac = wac_with_words(4, 4);
        wac.on_access(base(), false, Nanos::ZERO);
        wac.reset();
        assert_eq!(wac.total_counted(), 0);
        assert_eq!(wac.word_count(base()), 0);
    }
}
