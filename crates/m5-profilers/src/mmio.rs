//! The MMIO software interface model.
//!
//! CXL.io exposes a 2 MiB MMIO region: 1 MiB maps a window of the 4 MiB
//! SRAM counter array and 1 MiB maps configuration/control registers (§3).
//! To reach all counters, software programs a base-address register and
//! reads `base + offset`. This module models the *traffic*, not the data —
//! the profiler structs already hold the counters — so harnesses can bill
//! the readout cost precisely (window switches are register writes, counter
//! reads are MMIO reads).

/// Size of the counter window in bytes (1 MiB).
pub const WINDOW_BYTES: u64 = 1 << 20;

/// An MMIO window with a base register paging over `total_bytes` of SRAM.
#[derive(Clone, Debug)]
pub struct MmioWindow {
    total_bytes: u64,
    base: u64,
    reg_writes: u64,
    reads: u64,
}

impl MmioWindow {
    /// A window over an SRAM unit of `total_bytes` (e.g. 4 MiB for PAC).
    pub fn new(total_bytes: u64) -> MmioWindow {
        MmioWindow {
            total_bytes,
            base: 0,
            reg_writes: 0,
            reads: 0,
        }
    }

    /// The currently programmed window base.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Reads the counter word at absolute SRAM byte `addr`, reprogramming
    /// the base register first if `addr` falls outside the current window.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is beyond the SRAM unit.
    pub fn read_at(&mut self, addr: u64) {
        assert!(addr < self.total_bytes, "MMIO read past SRAM end");
        if addr < self.base || addr >= self.base + WINDOW_BYTES {
            self.base = addr - (addr % WINDOW_BYTES);
            self.reg_writes += 1;
        }
        self.reads += 1;
    }

    /// Reads a contiguous `[start, start + len)` byte range, accounting for
    /// every window switch; `stride` is the counter width in bytes.
    pub fn read_range(&mut self, start: u64, len: u64, stride: u64) {
        let mut addr = start;
        while addr < start + len {
            self.read_at(addr);
            addr += stride;
        }
    }

    /// Base-register writes performed so far.
    pub fn reg_writes(&self) -> u64 {
        self.reg_writes
    }

    /// Counter reads performed so far.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Resets the traffic counters (not the base register).
    pub fn reset_traffic(&mut self) {
        self.reg_writes = 0;
        self.reads = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_within_window_need_no_reprogramming() {
        let mut w = MmioWindow::new(4 << 20);
        w.read_at(0);
        w.read_at(WINDOW_BYTES - 2);
        assert_eq!(w.reads(), 2);
        assert_eq!(w.reg_writes(), 0, "first window starts at base 0");
    }

    #[test]
    fn crossing_windows_writes_base_register() {
        let mut w = MmioWindow::new(4 << 20);
        w.read_at(WINDOW_BYTES); // second window
        assert_eq!(w.reg_writes(), 1);
        assert_eq!(w.base(), WINDOW_BYTES);
        w.read_at(WINDOW_BYTES + 4); // same window
        assert_eq!(w.reg_writes(), 1);
        w.read_at(0); // back to the first
        assert_eq!(w.reg_writes(), 2);
    }

    #[test]
    fn full_sram_scan_switches_four_times_minus_initial() {
        // 4 MiB of 16-bit counters read through a 1 MiB window: 3 switches
        // beyond the initial window.
        let mut w = MmioWindow::new(4 << 20);
        w.read_range(0, 4 << 20, 2);
        assert_eq!(w.reads(), (4 << 20) / 2);
        assert_eq!(w.reg_writes(), 3);
    }

    #[test]
    #[should_panic(expected = "past SRAM end")]
    fn out_of_range_read_panics() {
        let mut w = MmioWindow::new(1024);
        w.read_at(1024);
    }

    #[test]
    fn traffic_reset() {
        let mut w = MmioWindow::new(4 << 20);
        w.read_at(WINDOW_BYTES * 2);
        w.reset_traffic();
        assert_eq!(w.reads(), 0);
        assert_eq!(w.reg_writes(), 0);
        assert_eq!(w.base(), WINDOW_BYTES * 2, "base survives reset");
    }
}
