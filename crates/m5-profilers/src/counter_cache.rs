//! Scalability mode 1 (§3): the SRAM unit as a *cache* of counters.
//!
//! When CXL DRAM is too large for one counter per page to fit in SRAM, the
//! controller caches a subset. A miss evicts a victim counter: its value is
//! written to the access-count table with a D2H/D2D access, and the new
//! counter starts at 1. Counting stays exact; the cost is writeback traffic
//! proportional to the miss rate.

use crate::count_table::AccessCountTable;
use cxl_sim::addr::{CacheLineAddr, Pfn};
use cxl_sim::controller::CxlDevice;
use cxl_sim::time::Nanos;
use std::any::Any;
use std::collections::{HashMap, VecDeque};

/// A bounded cache of per-page counters backed by the access-count table.
#[derive(Clone, Debug)]
pub struct CounterCache {
    capacity: usize,
    counts: HashMap<u64, u64>,
    /// FIFO eviction order (a round-robin victim pointer in hardware).
    order: VecDeque<u64>,
    table: AccessCountTable,
    hits: u64,
    misses: u64,
}

impl CounterCache {
    /// A cache holding at most `capacity` counters.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> CounterCache {
        assert!(capacity > 0, "cache needs capacity");
        CounterCache {
            capacity,
            counts: HashMap::with_capacity(capacity),
            order: VecDeque::with_capacity(capacity),
            table: AccessCountTable::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Records one access to the counter at `idx`.
    pub fn record(&mut self, idx: u64) {
        if let Some(c) = self.counts.get_mut(&idx) {
            *c += 1;
            self.hits += 1;
            return;
        }
        self.misses += 1;
        if self.counts.len() == self.capacity {
            // Evict the FIFO victim: write its count back, then reuse.
            if let Some(victim) = self.order.pop_front() {
                if let Some(c) = self.counts.remove(&victim) {
                    self.table.spill(victim, c);
                }
            }
        }
        self.counts.insert(idx, 1);
        self.order.push_back(idx);
    }

    /// The exact count for `idx` (cached residue plus table history).
    pub fn count(&self, idx: u64) -> u64 {
        self.counts.get(&idx).copied().unwrap_or(0) + self.table.get(idx)
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses (each one a potential eviction writeback).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// D2H/D2D writebacks performed by evictions.
    pub fn writebacks(&self) -> u64 {
        self.table.spill_writes()
    }

    /// Number of counters currently cached.
    pub fn cached(&self) -> usize {
        self.counts.len()
    }
}

/// A PAC variant whose SRAM is a [`CounterCache`] — attachable to the CXL
/// controller like the plain [`crate::pac::Pac`].
#[derive(Clone, Debug)]
pub struct CachedPac {
    base: Pfn,
    cache: CounterCache,
    counted: u64,
}

impl CachedPac {
    /// A cached PAC monitoring PFNs at or above `base` with `capacity`
    /// SRAM counters.
    pub fn new(base: Pfn, capacity: usize) -> CachedPac {
        CachedPac {
            base,
            cache: CounterCache::new(capacity),
            counted: 0,
        }
    }

    /// The exact count of `pfn`.
    pub fn count(&self, pfn: Pfn) -> u64 {
        self.cache.count(pfn.0)
    }

    /// Total accesses counted.
    pub fn total_counted(&self) -> u64 {
        self.counted
    }

    /// The underlying cache (for hit/miss statistics).
    pub fn cache(&self) -> &CounterCache {
        &self.cache
    }
}

impl CxlDevice for CachedPac {
    fn name(&self) -> &str {
        "pac-cached"
    }

    fn on_access(&mut self, line: CacheLineAddr, _is_write: bool, _now: Nanos) {
        let pfn = line.pfn();
        if pfn.0 >= self.base.0 {
            self.counted += 1;
            self.cache.record(pfn.0);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxl_sim::addr::WordIndex;
    use cxl_sim::memory::CXL_BASE_PFN;

    #[test]
    fn counting_is_exact_under_thrashing() {
        // Capacity 2, but 5 hot indices: constant eviction.
        let mut cc = CounterCache::new(2);
        let mut truth = HashMap::<u64, u64>::new();
        for round in 0..100u64 {
            for idx in 0..5 {
                let reps = 1 + (idx + round) % 3;
                for _ in 0..reps {
                    cc.record(idx);
                    *truth.entry(idx).or_default() += 1;
                }
            }
        }
        for (&idx, &c) in &truth {
            assert_eq!(cc.count(idx), c, "idx {idx}");
        }
        assert!(cc.writebacks() > 0, "thrashing must evict");
        assert!(cc.cached() <= 2);
    }

    #[test]
    fn hits_avoid_writebacks() {
        let mut cc = CounterCache::new(4);
        for _ in 0..100 {
            cc.record(1);
        }
        assert_eq!(cc.hits(), 99);
        assert_eq!(cc.misses(), 1);
        assert_eq!(cc.writebacks(), 0);
    }

    #[test]
    fn cached_pac_device_counts_like_pac() {
        let mut pac = CachedPac::new(Pfn(CXL_BASE_PFN), 2);
        for page in 0..4u64 {
            for _ in 0..=page {
                pac.on_access(
                    Pfn(CXL_BASE_PFN + page).word(WordIndex(0)).cache_line(),
                    false,
                    Nanos::ZERO,
                );
            }
        }
        for page in 0..4u64 {
            assert_eq!(pac.count(Pfn(CXL_BASE_PFN + page)), page + 1);
        }
        assert_eq!(pac.total_counted(), 10);
        // DDR traffic is ignored.
        pac.on_access(Pfn(0).word(WordIndex(0)).cache_line(), false, Nanos::ZERO);
        assert_eq!(pac.total_counted(), 10);
    }
}
