//! Property tests for the SRAM counter cache (§3 scalability mode 1):
//! counting must stay exact under arbitrary thrashing, occupancy must
//! respect capacity, and eviction must follow FIFO order.

use m5_profilers::counter_cache::CounterCache;
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The cache + spill table together always report the exact count, no
    /// matter how small the cache or how adversarial the access pattern.
    #[test]
    fn counting_stays_exact(
        capacity in 1usize..8,
        accesses in prop::collection::vec(0u64..32, 1..500),
    ) {
        let mut cc = CounterCache::new(capacity);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &idx in &accesses {
            cc.record(idx);
            *truth.entry(idx).or_default() += 1;
            prop_assert!(cc.cached() <= capacity, "occupancy respects capacity");
        }
        for (&idx, &want) in &truth {
            prop_assert_eq!(cc.count(idx), want, "idx {}", idx);
        }
        // An index never touched reads zero.
        prop_assert_eq!(cc.count(999), 0);
        // Every access is classified exactly once, and only misses can
        // trigger eviction writebacks.
        prop_assert_eq!(cc.hits() + cc.misses(), accesses.len() as u64);
        prop_assert!(cc.writebacks() <= cc.misses());
        prop_assert!(cc.writebacks() >= cc.misses().saturating_sub(capacity as u64),
            "all but the resident counters' first misses spilled");
    }

    /// Hit/miss counters are monotone over the run.
    #[test]
    fn hit_and_miss_counters_are_monotone(
        accesses in prop::collection::vec(0u64..16, 1..200),
    ) {
        let mut cc = CounterCache::new(4);
        let (mut h, mut m) = (0, 0);
        for &idx in &accesses {
            cc.record(idx);
            prop_assert!(cc.hits() >= h && cc.misses() >= m);
            prop_assert!(cc.hits() - h + cc.misses() - m == 1,
                "each record is exactly one hit or one miss");
            h = cc.hits();
            m = cc.misses();
        }
    }
}

/// Pins the FIFO eviction order: the oldest *inserted* counter is the
/// victim, regardless of how recently it was hit.
#[test]
fn eviction_follows_fifo_insertion_order() {
    let mut cc = CounterCache::new(2);
    cc.record(1); // miss, insert 1
    cc.record(2); // miss, insert 2
    cc.record(1); // hit — FIFO ignores recency, 1 is still the victim
    assert_eq!((cc.hits(), cc.misses()), (1, 2));

    cc.record(3); // miss: evicts 1 (oldest insertion), not 2
    assert_eq!(cc.misses(), 3);
    cc.record(2); // must still be resident -> hit
    assert_eq!(cc.hits(), 2, "2 survived the eviction");
    cc.record(1); // was evicted -> miss, evicts 2 now
    assert_eq!(cc.misses(), 4);
    cc.record(3); // still resident -> hit
    assert_eq!(cc.hits(), 3, "3 survived");

    // Counts remain exact through all of it.
    assert_eq!(cc.count(1), 3);
    assert_eq!(cc.count(2), 2);
    assert_eq!(cc.count(3), 2);
    assert_eq!(cc.writebacks(), 2, "two evictions spilled to the table");
}
