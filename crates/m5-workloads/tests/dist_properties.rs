//! Statistical properties of the distribution primitives.
//!
//! The alias-table `ZipfSampler` replaced a CDF binary search; the swap
//! is *statistically* equivalent (same Zipf(θ) law, different RNG→rank
//! mapping), which is exactly what regenerating `golden_spec` relied on.
//! The chi-square proptest here is the standing evidence: across random
//! (n, θ) the empirical rank counts match the exact normalized Zipf
//! probabilities. `Scatter::map` bijectivity is pinned the same way over
//! random (n, seed).

use m5_workloads::dist::{Scatter, ZipfSampler};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

const DRAWS: u64 = 30_000;

/// Pearson chi-square statistic of `counts` against `expected`, with
/// low-expectation bins (< 5) merged into their neighbour so the χ²
/// approximation holds.
fn chi_square(counts: &[u64], expected: &[f64]) -> (f64, usize) {
    let mut stat = 0.0;
    let mut df = 0usize;
    let mut obs_acc = 0.0;
    let mut exp_acc = 0.0;
    for (&c, &e) in counts.iter().zip(expected) {
        obs_acc += c as f64;
        exp_acc += e;
        if exp_acc >= 5.0 {
            stat += (obs_acc - exp_acc) * (obs_acc - exp_acc) / exp_acc;
            df += 1;
            obs_acc = 0.0;
            exp_acc = 0.0;
        }
    }
    if exp_acc > 0.0 {
        stat += (obs_acc - exp_acc) * (obs_acc - exp_acc) / exp_acc;
        df += 1;
    }
    // Degrees of freedom = merged bins - 1 (totals are constrained equal).
    (stat, df.saturating_sub(1).max(1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Empirical alias-sampler counts match the exact Zipf(θ) pmf
    /// `p_i = (i+1)^-θ / H` under a chi-square test. The acceptance
    /// threshold `df + 8·sqrt(2·df) + 16` sits far beyond the ~3σ tail
    /// of χ²(df) (mean df, variance 2df), so a correct sampler passes
    /// with overwhelming probability while a mis-built table (e.g. a
    /// mispaired alias column) fails loudly.
    #[test]
    fn alias_sampler_matches_exact_zipf_pmf(
        n in 2u64..129,
        theta_unit in any::<f64>(),
    ) {
        let theta = theta_unit * 1.3;
        let z = ZipfSampler::new(n, theta);
        let mut rng = SmallRng::seed_from_u64(n ^ theta.to_bits());
        let mut counts = vec![0u64; n as usize];
        for _ in 0..DRAWS {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        let h: f64 = (1..=n).map(|k| (k as f64).powf(-theta)).sum();
        let expected: Vec<f64> = (1..=n)
            .map(|k| DRAWS as f64 * (k as f64).powf(-theta) / h)
            .collect();
        let (stat, df) = chi_square(&counts, &expected);
        let threshold = df as f64 + 8.0 * (2.0 * df as f64).sqrt() + 16.0;
        prop_assert!(
            stat < threshold,
            "chi2 {stat:.1} >= {threshold:.1} (df {df}, n {n}, theta {theta})"
        );
    }

    /// `Scatter::map` is a bijection on `0..n` for arbitrary (n, seed):
    /// every image is in range and no two ranks collide.
    #[test]
    fn scatter_map_is_bijective(
        n in 1u64..4097,
        seed in any::<u64>(),
    ) {
        let s = Scatter::new(n, seed);
        let mut seen = std::collections::HashSet::with_capacity(n as usize);
        for i in 0..n {
            let m = s.map(i);
            prop_assert!(m < n, "map({i}) = {m} out of range (n {n})");
            prop_assert!(seen.insert(m), "collision at rank {i} (n {n}, seed {seed:#x})");
        }
    }
}
