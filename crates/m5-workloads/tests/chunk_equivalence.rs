//! `fill_chunk` ≡ repeated `next_access` for every registered workload.
//!
//! The chunked run pipeline is only byte-identical to the per-access loop
//! if batching never changes the access sequence. This property holds by
//! construction for the default `fill_chunk` (it *is* a `next_access`
//! loop); these tests pin it for the native bulk implementations — the
//! recorded-trace rebase copy in `ReplayWorkload` and the quantum-aware
//! delegation in `CoRunner` — at arbitrary chunk capacities.

use cxl_sim::addr::VirtAddr;
use cxl_sim::chunk::AccessChunk;
use cxl_sim::system::{Access, AccessStream};
use m5_workloads::access::ReplayWorkload;
use m5_workloads::corun::CoRunner;
use m5_workloads::registry::Benchmark;
use proptest::prelude::*;
use std::sync::OnceLock;

const ACCESSES: u64 = 4096;
const SEED: u64 = 0xC0FFEE;
const BASE: VirtAddr = VirtAddr(0x40_0000);

/// Every registered workload, built once (graph generation is cached but
/// trace recording still costs; the proptests only replay cursors).
fn traces() -> &'static Vec<(Benchmark, ReplayWorkload)> {
    static TRACES: OnceLock<Vec<(Benchmark, ReplayWorkload)>> = OnceLock::new();
    TRACES.get_or_init(|| {
        Benchmark::FIGURE4
            .iter()
            .map(|&b| (b, b.spec().build(BASE, ACCESSES, SEED)))
            .collect()
    })
}

fn drain_next<S: AccessStream>(s: &mut S) -> Vec<Access> {
    std::iter::from_fn(|| s.next_access()).collect()
}

fn drain_chunks<S: AccessStream>(s: &mut S, cap: usize) -> Vec<Access> {
    let mut chunk = AccessChunk::with_capacity(cap);
    let mut out = Vec::new();
    loop {
        chunk.clear();
        if s.fill_chunk(&mut chunk) == 0 {
            break;
        }
        out.extend(chunk.iter());
    }
    out
}

/// Forwards only `next_access`, so `fill_chunk` takes the trait's default
/// implementation — the reference the native paths are compared against.
struct DefaultImpl<S>(S);

impl<S: AccessStream> AccessStream for DefaultImpl<S> {
    fn next_access(&mut self) -> Option<Access> {
        self.0.next_access()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Native `ReplayWorkload::fill_chunk` produces the identical sequence
    /// for every benchmark at any chunk capacity.
    #[test]
    fn replay_fill_chunk_matches_next_access(cap in 1usize..3001) {
        for (b, wl) in traces() {
            let reference = drain_next(&mut wl.fresh());
            let batched = drain_chunks(&mut wl.fresh(), cap);
            prop_assert_eq!(
                &batched, &reference,
                "{:?} diverged at cap {}", b, cap
            );
        }
    }

    /// The native path also matches the trait's default implementation
    /// (same stream, `fill_chunk` forced through the `next_access` loop).
    #[test]
    fn replay_fill_chunk_matches_default_impl(cap in 1usize..3001) {
        let (_, wl) = &traces()[0];
        let via_default = drain_chunks(&mut DefaultImpl(wl.fresh()), cap);
        let via_native = drain_chunks(&mut wl.fresh(), cap);
        prop_assert_eq!(via_native, via_default);
    }

    /// `CoRunner::fill_chunk` respects quantum boundaries exactly: the
    /// interleaved sequence matches per-access round-robin for any
    /// (quantum, chunk capacity) pair, including streams of unequal
    /// length draining mid-chunk.
    #[test]
    fn corun_fill_chunk_matches_next_access(
        cap in 1usize..701,
        quantum in 1u32..98,
    ) {
        let picks = [Benchmark::Mcf, Benchmark::Redis, Benchmark::Pr];
        let streams = || -> Vec<ReplayWorkload> {
            traces()
                .iter()
                .filter(|(b, _)| picks.contains(b))
                .enumerate()
                // Disjoint bases per instance, like the Figure 11 co-run
                // setup; the traces already have unequal lengths, so some
                // streams drain mid-chunk.
                .map(|(i, (_, wl))| wl.rebased(VirtAddr(BASE.0 + ((i as u64) << 28))))
                .collect()
        };
        let reference = drain_next(&mut CoRunner::new(streams(), quantum));
        let batched = drain_chunks(&mut CoRunner::new(streams(), quantum), cap);
        prop_assert_eq!(batched, reference);
    }
}
