//! # m5-workloads — the paper's twelve memory-intensive benchmarks
//!
//! Synthetic-but-faithful generators for every workload in the paper's
//! Table 3, plus the Memcached and CacheLib variants of Figure 4:
//!
//! * [`kv`] — a slab-allocated in-memory KV store driven by a YCSB-A
//!   client (50/50 read/update): the Redis / Memcached / CacheLib proxies.
//!   Small objects scattered across slab pages produce the sparse-page
//!   behaviour of Figure 4; uniform key popularity produces Redis's
//!   equilibrium behaviour of Figure 9.
//! * [`spec`] — proxies for the four most memory-intensive SPECrate 2017
//!   benchmarks: `mcf` (pointer chasing), `cactuBSSN` and `fotonik3d`
//!   (dense 3-D stencil sweeps), `roms` (an ocean-model grid with the
//!   heavily skewed plane-access distribution of Figure 10).
//! * [`graph`] — real implementations of the six GAP kernels (BFS, PR, CC,
//!   SSSP, BC, TC) over synthetic R-MAT graphs, instrumented so every
//!   data-structure touch becomes a simulated memory access.
//! * [`liblinear`] — sparse mini-batch SGD over a KDD-like design matrix.
//! * [`registry`] — the named benchmark table mapping the paper's twelve
//!   workloads to ready-to-run generators at simulator scale.
//! * [`access`] — the replayable trace container all generators produce:
//!   generate once, replay bit-identically under every migration daemon.
//!
//! ```
//! use cxl_sim::prelude::*;
//! use m5_workloads::registry::Benchmark;
//!
//! let spec = Benchmark::Redis.spec();
//! let mut sys = System::new(SystemConfig::scaled_default());
//! let region = sys
//!     .alloc_region(spec.footprint_pages, Placement::AllOnCxl)
//!     .unwrap();
//! let mut workload = spec.build(region.base, 1_000, 42);
//! let report = cxl_sim::system::run(
//!     &mut sys,
//!     &mut workload,
//!     &mut cxl_sim::system::NoMigration,
//!     u64::MAX,
//! );
//! assert!(report.accesses >= 1_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod corun;
pub mod dist;
pub mod graph;
pub mod kv;
pub mod liblinear;
pub mod registry;
pub mod spec;
pub mod stats;
