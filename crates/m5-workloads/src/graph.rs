//! The GAP benchmark suite substrate: a CSR graph, an R-MAT generator,
//! and real implementations of the six kernels (BFS, PR, CC, SSSP, BC,
//! TC), instrumented so that every data-structure touch is emitted as a
//! simulated memory access.
//!
//! The paper runs GAP on the Twitter graph (undirected; BFS/CC/TC/PR) and
//! the Google web graph (directed; BC/SSSP). We substitute synthetic
//! R-MAT graphs (the generator GAP itself uses for its synthetic inputs)
//! with the classic Graph500 parameters, which reproduce the power-law
//! degree skew that makes PR dense-but-skewed and BFS/CC/TC sparser in
//! page terms.
//!
//! ## Memory layout (region-relative)
//!
//! | array     | element | semantics                         |
//! |-----------|---------|-----------------------------------|
//! | `offsets` | u32     | CSR row starts (n+1)              |
//! | `targets` | u32     | CSR adjacency                     |
//! | `prop_a`  | u64     | rank / parent / component / dist / sigma |
//! | `prop_b`  | u64     | next-rank / delta                 |
//! | `prop_c`  | u64     | centrality accumulators           |
//! | `visited` | bits    | BFS/SSSP frontier membership      |

use crate::access::{AccessRecorder, ReplayWorkload};
use cxl_sim::addr::{VirtAddr, PAGE_SIZE};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const PAGE: u64 = PAGE_SIZE as u64;

/// A compressed-sparse-row graph.
#[derive(Clone, Debug)]
pub struct CsrGraph {
    offsets: Vec<u32>,
    targets: Vec<u32>,
}

impl CsrGraph {
    /// Builds a CSR graph from an edge list over `n` vertices. Adjacency
    /// lists come out sorted (TC relies on that).
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> CsrGraph {
        let mut degree = vec![0u32; n];
        for &(s, _) in edges {
            degree[s as usize] += 1;
        }
        let mut offsets = vec![0u32; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + degree[i];
        }
        let mut targets = vec![0u32; edges.len()];
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        for &(s, t) in edges {
            targets[cursor[s as usize] as usize] = t;
            cursor[s as usize] += 1;
        }
        for v in 0..n {
            targets[offsets[v] as usize..offsets[v + 1] as usize].sort_unstable();
        }
        CsrGraph { offsets, targets }
    }

    /// An R-MAT graph (Graph500 parameters a=0.57, b=0.19, c=0.19) with
    /// `1 << scale` vertices and ~`avg_degree` edges per vertex,
    /// symmetrized (undirected).
    pub fn rmat(scale: u32, avg_degree: usize, seed: u64) -> CsrGraph {
        let n = 1usize << scale;
        let m = n * avg_degree / 2;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut edges = Vec::with_capacity(m * 2);
        for _ in 0..m {
            let (mut s, mut t) = (0u32, 0u32);
            for _ in 0..scale {
                s <<= 1;
                t <<= 1;
                let r: f64 = rng.gen();
                if r < 0.57 {
                    // top-left quadrant
                } else if r < 0.76 {
                    t |= 1;
                } else if r < 0.95 {
                    s |= 1;
                } else {
                    s |= 1;
                    t |= 1;
                }
            }
            if s != t {
                edges.push((s, t));
                edges.push((t, s));
            }
        }
        CsrGraph::from_edges(n, &edges)
    }

    /// A uniform-random directed graph (the Google web-graph stand-in for
    /// BC and SSSP).
    pub fn uniform(n: usize, avg_degree: usize, seed: u64) -> CsrGraph {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut edges = Vec::with_capacity(n * avg_degree);
        for _ in 0..n * avg_degree {
            let s = rng.gen_range(0..n as u32);
            let t = rng.gen_range(0..n as u32);
            if s != t {
                edges.push((s, t));
            }
        }
        CsrGraph::from_edges(n, &edges)
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges (CSR entries).
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// The sorted adjacency list of `v`.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.targets[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
    }

    /// The out-degree of `v`.
    pub fn degree(&self, v: u32) -> usize {
        self.neighbors(v).len()
    }
}

/// Region-relative byte addresses of the graph's arrays.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GraphLayout {
    offsets_at: u64,
    targets_at: u64,
    prop_a_at: u64,
    prop_b_at: u64,
    prop_c_at: u64,
    visited_at: u64,
    /// Total pages the layout occupies.
    pub total_pages: u64,
}

fn page_align(x: u64) -> u64 {
    x.div_ceil(PAGE) * PAGE
}

impl GraphLayout {
    /// Lays the arrays of `g` out contiguously, page-aligned.
    pub fn for_graph(g: &CsrGraph) -> GraphLayout {
        let n = g.num_vertices() as u64;
        let m = g.num_edges() as u64;
        let offsets_at = 0;
        let targets_at = page_align(offsets_at + (n + 1) * 4);
        let prop_a_at = page_align(targets_at + m * 4);
        let prop_b_at = page_align(prop_a_at + n * 8);
        let prop_c_at = page_align(prop_b_at + n * 8);
        let visited_at = page_align(prop_c_at + n * 8);
        let end = page_align(visited_at + n.div_ceil(8));
        GraphLayout {
            offsets_at,
            targets_at,
            prop_a_at,
            prop_b_at,
            prop_c_at,
            visited_at,
            total_pages: end / PAGE,
        }
    }

    fn offset(&self, v: u32) -> u64 {
        self.offsets_at + v as u64 * 4
    }
    fn target(&self, e: u64) -> u64 {
        self.targets_at + e * 4
    }
    fn prop_a(&self, v: u32) -> u64 {
        self.prop_a_at + v as u64 * 8
    }
    fn prop_b(&self, v: u32) -> u64 {
        self.prop_b_at + v as u64 * 8
    }
    fn prop_c(&self, v: u32) -> u64 {
        self.prop_c_at + v as u64 * 8
    }
    fn visited(&self, v: u32) -> u64 {
        self.visited_at + v as u64 / 8
    }
}

/// Reads `v`'s CSR row bounds, emitting the two offset reads.
fn row(g: &CsrGraph, l: &GraphLayout, rec: &mut AccessRecorder, v: u32) -> (u64, u64) {
    rec.read(l.offset(v));
    rec.read(l.offset(v + 1));
    (
        g.offsets[v as usize] as u64,
        g.offsets[v as usize + 1] as u64,
    )
}

/// PageRank (pull-based), emitting offset/target/rank reads and next-rank
/// writes. Returns the final ranks (scaled by 2⁳² into u64 arithmetic to
/// keep the trace deterministic across platforms).
pub fn pagerank(
    g: &CsrGraph,
    l: &GraphLayout,
    rec: &mut AccessRecorder,
    budget: u64,
    max_iters: usize,
) -> Vec<u64> {
    let n = g.num_vertices();
    let scale = 1u64 << 32;
    let mut rank = vec![scale / n as u64; n];
    let mut next = vec![0u64; n];
    let mut contrib = vec![0u64; n];
    for _ in 0..max_iters {
        // Dangling (degree-0) vertices redistribute their mass uniformly,
        // as in the GAP reference implementation.
        let mut dangling = 0u64;
        for v in 0..n as u32 {
            let d = g.degree(v) as u64;
            match rank[v as usize].checked_div(d) {
                Some(c) => contrib[v as usize] = c,
                None => {
                    dangling += rank[v as usize];
                    contrib[v as usize] = 0;
                }
            }
        }
        let dangling_share = dangling / n as u64;
        for v in 0..n as u32 {
            let (s, e) = row(g, l, rec, v);
            let mut sum = 0u64;
            for edge in s..e {
                rec.read(l.target(edge));
                let u = g.targets[edge as usize];
                rec.read(l.prop_a(u));
                sum += contrib[u as usize];
            }
            // next = 0.15/n + 0.85 * (sum + dangling share), fixed-point.
            next[v as usize] = (scale * 15 / 100) / n as u64 + (sum + dangling_share) * 85 / 100;
            rec.write(l.prop_b(v));
            if rec.len() as u64 >= budget {
                return rank;
            }
        }
        std::mem::swap(&mut rank, &mut next);
    }
    rank
}

/// Breadth-first search from `source`; returns the parent array (u32::MAX
/// = unreached).
pub fn bfs(
    g: &CsrGraph,
    l: &GraphLayout,
    rec: &mut AccessRecorder,
    budget: u64,
    source: u32,
) -> Vec<u32> {
    let n = g.num_vertices();
    let mut parent = vec![u32::MAX; n];
    parent[source as usize] = source;
    rec.write(l.visited(source));
    rec.write(l.prop_a(source));
    let mut frontier = vec![source];
    while !frontier.is_empty() && (rec.len() as u64) < budget {
        let mut next = Vec::new();
        for &v in &frontier {
            let (s, e) = row(g, l, rec, v);
            for edge in s..e {
                rec.read(l.target(edge));
                let u = g.targets[edge as usize];
                rec.read(l.visited(u));
                if parent[u as usize] == u32::MAX {
                    parent[u as usize] = v;
                    rec.write(l.visited(u));
                    rec.write(l.prop_a(u));
                    next.push(u);
                }
            }
            if rec.len() as u64 >= budget {
                break;
            }
        }
        frontier = next;
    }
    parent
}

/// Connected components by label propagation; returns the component
/// labels.
pub fn connected_components(
    g: &CsrGraph,
    l: &GraphLayout,
    rec: &mut AccessRecorder,
    budget: u64,
) -> Vec<u32> {
    let n = g.num_vertices();
    let mut comp: Vec<u32> = (0..n as u32).collect();
    for v in 0..n as u32 {
        rec.write(l.prop_a(v));
    }
    loop {
        let mut changed = false;
        for v in 0..n as u32 {
            let (s, e) = row(g, l, rec, v);
            rec.read(l.prop_a(v));
            let mut best = comp[v as usize];
            for edge in s..e {
                rec.read(l.target(edge));
                let u = g.targets[edge as usize];
                rec.read(l.prop_a(u));
                best = best.min(comp[u as usize]);
            }
            if best < comp[v as usize] {
                comp[v as usize] = best;
                rec.write(l.prop_a(v));
                changed = true;
            }
            if rec.len() as u64 >= budget {
                return comp;
            }
        }
        if !changed {
            return comp;
        }
    }
}

/// Deterministic edge weight in 1..=15 derived from the edge's endpoints.
fn edge_weight(s: u32, t: u32) -> u64 {
    (crate::dist::hash_slot(s as u64, t as u64, 0x77) % 15) + 1
}

/// Single-source shortest paths (Bellman-Ford over active frontiers);
/// returns the distance array.
pub fn sssp(
    g: &CsrGraph,
    l: &GraphLayout,
    rec: &mut AccessRecorder,
    budget: u64,
    source: u32,
) -> Vec<u64> {
    let n = g.num_vertices();
    let mut dist = vec![u64::MAX; n];
    dist[source as usize] = 0;
    rec.write(l.prop_a(source));
    let mut frontier = vec![source];
    while !frontier.is_empty() && (rec.len() as u64) < budget {
        let mut next = Vec::new();
        for &v in &frontier {
            let (s, e) = row(g, l, rec, v);
            rec.read(l.prop_a(v));
            for edge in s..e {
                rec.read(l.target(edge));
                let u = g.targets[edge as usize];
                rec.read(l.prop_a(u));
                let cand = dist[v as usize].saturating_add(edge_weight(v, u));
                if cand < dist[u as usize] {
                    dist[u as usize] = cand;
                    rec.write(l.prop_a(u));
                    next.push(u);
                }
            }
            if rec.len() as u64 >= budget {
                break;
            }
        }
        next.sort_unstable();
        next.dedup();
        frontier = next;
    }
    dist
}

/// Betweenness centrality (Brandes) from `sources.len()` roots; returns
/// the centrality accumulators (×2²⁰ fixed point).
pub fn betweenness(
    g: &CsrGraph,
    l: &GraphLayout,
    rec: &mut AccessRecorder,
    budget: u64,
    sources: &[u32],
) -> Vec<u64> {
    let n = g.num_vertices();
    let mut centrality = vec![0u64; n];
    for &src in sources {
        if rec.len() as u64 >= budget {
            break;
        }
        // Forward phase: BFS computing path counts (sigma = prop_a).
        let mut sigma = vec![0u64; n];
        let mut depth = vec![u32::MAX; n];
        sigma[src as usize] = 1;
        depth[src as usize] = 0;
        rec.write(l.prop_a(src));
        let mut stack: Vec<u32> = Vec::new();
        let mut frontier = vec![src];
        let mut level = 0;
        while !frontier.is_empty() && (rec.len() as u64) < budget {
            stack.extend_from_slice(&frontier);
            let mut next = Vec::new();
            for &v in &frontier {
                let (s, e) = row(g, l, rec, v);
                for edge in s..e {
                    rec.read(l.target(edge));
                    let u = g.targets[edge as usize];
                    rec.read(l.prop_a(u));
                    if depth[u as usize] == u32::MAX {
                        depth[u as usize] = level + 1;
                        next.push(u);
                    }
                    if depth[u as usize] == level + 1 {
                        sigma[u as usize] += sigma[v as usize];
                        rec.write(l.prop_a(u));
                    }
                }
            }
            frontier = next;
            level += 1;
        }
        // Backward phase: dependency accumulation (delta = prop_b).
        let mut delta = vec![0u64; n];
        for &v in stack.iter().rev() {
            let (s, e) = row(g, l, rec, v);
            for edge in s..e {
                rec.read(l.target(edge));
                let u = g.targets[edge as usize];
                if depth[u as usize] == depth[v as usize] + 1 && sigma[u as usize] > 0 {
                    rec.read(l.prop_a(u));
                    rec.read(l.prop_b(u));
                    let share = (sigma[v as usize] << 20) / sigma[u as usize].max(1);
                    delta[v as usize] += (share * ((1 << 20) + delta[u as usize])) >> 20;
                    rec.write(l.prop_b(v));
                }
            }
            if v != src {
                centrality[v as usize] += delta[v as usize];
                rec.read(l.prop_c(v));
                rec.write(l.prop_c(v));
            }
            if rec.len() as u64 >= budget {
                break;
            }
        }
    }
    centrality
}

/// Triangle counting by sorted adjacency intersection; returns the count.
pub fn triangle_count(g: &CsrGraph, l: &GraphLayout, rec: &mut AccessRecorder, budget: u64) -> u64 {
    let n = g.num_vertices();
    let mut triangles = 0u64;
    for v in 0..n as u32 {
        let (vs, ve) = row(g, l, rec, v);
        for edge in vs..ve {
            rec.read(l.target(edge));
            let u = g.targets[edge as usize];
            if u <= v {
                continue;
            }
            // Merge-walk both sorted lists, emitting the sequential reads.
            let (us, ue) = row(g, l, rec, u);
            let (mut i, mut j) = (vs, us);
            while i < ve && j < ue {
                rec.read(l.target(i));
                rec.read(l.target(j));
                let (a, b) = (g.targets[i as usize], g.targets[j as usize]);
                // Only count each triangle once (w > u > v).
                if a == b {
                    if a > u {
                        triangles += 1;
                    }
                    i += 1;
                    j += 1;
                } else if a < b {
                    i += 1;
                } else {
                    j += 1;
                }
            }
            if rec.len() as u64 >= budget {
                return triangles;
            }
        }
    }
    triangles
}

/// Which GAP kernel to trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GapKernel {
    /// Breadth-first search (repeated from random sources).
    Bfs,
    /// PageRank.
    Pr,
    /// Connected components.
    Cc,
    /// Single-source shortest paths (repeated from random sources).
    Sssp,
    /// Betweenness centrality.
    Bc,
    /// Triangle counting.
    Tc,
}

/// Generates a trace of ~`target_accesses` for `kernel` over `g`.
pub fn generate(
    kernel: GapKernel,
    g: &CsrGraph,
    base: VirtAddr,
    target_accesses: u64,
    seed: u64,
) -> ReplayWorkload {
    let l = GraphLayout::for_graph(g);
    let mut rec = AccessRecorder::with_capacity(target_accesses as usize + 64);
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = g.num_vertices() as u32;
    match kernel {
        GapKernel::Pr => {
            while (rec.len() as u64) < target_accesses {
                pagerank(g, &l, &mut rec, target_accesses, 32);
            }
        }
        GapKernel::Cc => {
            while (rec.len() as u64) < target_accesses {
                connected_components(g, &l, &mut rec, target_accesses);
            }
        }
        GapKernel::Tc => {
            while (rec.len() as u64) < target_accesses {
                triangle_count(g, &l, &mut rec, target_accesses);
            }
        }
        GapKernel::Bfs => {
            while (rec.len() as u64) < target_accesses {
                bfs(g, &l, &mut rec, target_accesses, rng.gen_range(0..n));
            }
        }
        GapKernel::Sssp => {
            while (rec.len() as u64) < target_accesses {
                sssp(g, &l, &mut rec, target_accesses, rng.gen_range(0..n));
            }
        }
        GapKernel::Bc => {
            while (rec.len() as u64) < target_accesses {
                let sources: Vec<u32> = (0..8).map(|_| rng.gen_range(0..n)).collect();
                betweenness(g, &l, &mut rec, target_accesses, &sources);
            }
        }
    }
    rec.into_workload(format!("{kernel:?}").to_lowercase(), base)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A triangle plus a pendant: 0-1-2-0, 2-3.
    fn toy() -> CsrGraph {
        let edges = [
            (0, 1),
            (1, 0),
            (1, 2),
            (2, 1),
            (2, 0),
            (0, 2),
            (2, 3),
            (3, 2),
        ];
        CsrGraph::from_edges(4, &edges)
    }

    #[test]
    fn csr_structure() {
        let g = toy();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 8);
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        assert_eq!(g.degree(3), 1);
    }

    #[test]
    fn rmat_has_power_law_ish_degrees() {
        let g = CsrGraph::rmat(10, 8, 42);
        assert_eq!(g.num_vertices(), 1024);
        assert!(g.num_edges() > 6_000);
        let max_deg = (0..1024u32).map(|v| g.degree(v)).max().unwrap();
        let avg = g.num_edges() / 1024;
        assert!(
            max_deg > avg * 8,
            "hub degree {max_deg} should dwarf the average {avg}"
        );
    }

    #[test]
    fn bfs_reaches_exactly_the_connected_component() {
        let g = toy();
        let l = GraphLayout::for_graph(&g);
        let mut rec = AccessRecorder::new();
        let parent = bfs(&g, &l, &mut rec, u64::MAX, 0);
        assert!(parent.iter().all(|&p| p != u32::MAX), "toy is connected");
        assert_eq!(parent[0], 0);
        assert!(!rec.is_empty());
    }

    #[test]
    fn cc_labels_match_components() {
        // Two components: {0,1,2,3} and {4,5}.
        let mut edges = vec![
            (0, 1),
            (1, 0),
            (1, 2),
            (2, 1),
            (2, 0),
            (0, 2),
            (2, 3),
            (3, 2),
        ];
        edges.push((4, 5));
        edges.push((5, 4));
        let g = CsrGraph::from_edges(6, &edges);
        let l = GraphLayout::for_graph(&g);
        let mut rec = AccessRecorder::new();
        let comp = connected_components(&g, &l, &mut rec, u64::MAX);
        assert_eq!(comp[0], comp[3]);
        assert_eq!(comp[4], comp[5]);
        assert_ne!(comp[0], comp[4]);
    }

    #[test]
    fn triangle_count_is_exact_on_the_toy() {
        let g = toy();
        let l = GraphLayout::for_graph(&g);
        let mut rec = AccessRecorder::new();
        assert_eq!(triangle_count(&g, &l, &mut rec, u64::MAX), 1);
    }

    #[test]
    fn sssp_distances_satisfy_triangle_inequality() {
        let g = CsrGraph::rmat(8, 6, 7);
        let l = GraphLayout::for_graph(&g);
        let mut rec = AccessRecorder::new();
        let dist = sssp(&g, &l, &mut rec, u64::MAX, 0);
        assert_eq!(dist[0], 0);
        for v in 0..g.num_vertices() as u32 {
            if dist[v as usize] == u64::MAX {
                continue;
            }
            for &u in g.neighbors(v) {
                assert!(
                    dist[u as usize] <= dist[v as usize] + edge_weight(v, u),
                    "relaxation left an improvable edge {v}->{u}"
                );
            }
        }
    }

    #[test]
    fn pagerank_conserves_mass_approximately() {
        let g = CsrGraph::rmat(8, 6, 3);
        let l = GraphLayout::for_graph(&g);
        let mut rec = AccessRecorder::new();
        let ranks = pagerank(&g, &l, &mut rec, u64::MAX, 10);
        let total: u64 = ranks.iter().sum();
        let expect = 1u64 << 32;
        let err = (total as f64 - expect as f64).abs() / expect as f64;
        // Fixed-point truncation plus dangling-vertex leakage stays small.
        assert!(err < 0.2, "rank mass error {err}");
        assert!(rec.len() > 1000);
    }

    #[test]
    fn betweenness_finds_the_bridge() {
        // Path graph 0-1-2: vertex 1 carries all shortest paths.
        let edges = [(0, 1), (1, 0), (1, 2), (2, 1)];
        let g = CsrGraph::from_edges(3, &edges);
        let l = GraphLayout::for_graph(&g);
        let mut rec = AccessRecorder::new();
        let c = betweenness(&g, &l, &mut rec, u64::MAX, &[0, 1, 2]);
        assert!(c[1] > c[0]);
        assert!(c[1] > c[2]);
    }

    #[test]
    fn traces_stay_within_layout_and_budget() {
        let g = CsrGraph::rmat(9, 8, 5);
        let l = GraphLayout::for_graph(&g);
        for kernel in [
            GapKernel::Bfs,
            GapKernel::Pr,
            GapKernel::Cc,
            GapKernel::Sssp,
            GapKernel::Bc,
            GapKernel::Tc,
        ] {
            let wl = generate(kernel, &g, VirtAddr(0), 50_000, 1);
            assert!(wl.len() as u64 >= 50_000, "{kernel:?} under budget");
            assert!(
                wl.len() as u64 <= 50_000 + 10_000,
                "{kernel:?} overshot: {}",
                wl.len()
            );
            assert!(
                wl.max_extent() <= l.total_pages * PAGE,
                "{kernel:?} escaped the layout"
            );
        }
    }
}
