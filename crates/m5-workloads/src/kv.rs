//! A slab-allocated in-memory KV store driven by a YCSB-style client —
//! the Redis, Memcached, and CacheLib proxies.
//!
//! ## Why this reproduces the paper's fingerprints
//!
//! * **Sparse pages (Figure 4).** Values are small objects placed at
//!   scattered word offsets inside slab pages, with allocator metadata and
//!   fragmentation leaving most of each page's 64 words untouched — so a
//!   page typically has ≤16 unique words accessed even after millions of
//!   ops (86 % / 76 % / 74 % of pages for Redis / Memcached / CacheLib in
//!   the paper; the presets differ in slab density to land in those
//!   bands).
//! * **Uniform equilibrium (Figure 9).** YCSB-A over a uniform key
//!   distribution means no page stays hotter than another for long, so a
//!   migration solution that keeps scanning/migrating at equilibrium
//!   (DAMON) only pays costs — while per-op latency accounting exposes the
//!   p99 damage (§4.2).
//! * **A few dense hot structures.** The hash index is touched on every
//!   op, forming a small set of genuinely hot, dense pages — the part of
//!   the footprint worth promoting.

use crate::access::{AccessRecorder, ReplayWorkload};
use crate::dist::{Scatter, ZipfSampler};
use cxl_sim::addr::{VirtAddr, PAGE_SIZE, WORD_SIZE};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Key-popularity distribution of the client.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum KeyDist {
    /// Every key equally likely (the paper's Redis/YCSB-A observation of
    /// uniform random memory accesses).
    Uniform,
    /// Zipfian with exponent `theta` (classic YCSB default 0.99).
    Zipf(f64),
}

/// KV store + client configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KvConfig {
    /// Number of stored objects.
    pub n_keys: u64,
    /// Objects resident per slab page (lower = sparser pages).
    pub objs_per_page: u64,
    /// Maximum 64 B words per object (sizes vary 1..=max per key, like a
    /// real object store's mixed value sizes).
    pub obj_words: u64,
    /// Fraction of reads (YCSB-A: 0.5 read / 0.5 update).
    pub read_fraction: f64,
    /// Key popularity.
    pub key_dist: KeyDist,
    /// RNG seed.
    pub seed: u64,
}

impl KvConfig {
    /// Redis-like: ~7 slots/page × 1–3 words ⇒ typically ≤16 unique words
    /// per page, with uniform key popularity — the paper observes Redis's
    /// memory accesses as uniform random (§7.2). The uniform object tier
    /// makes the dense hash-index pages the only true hot set, which is
    /// why HWT-driven nomination (hot index *words*) shines here
    /// (Guideline 4) and why migration reaches an equilibrium where
    /// further effort is pure overhead.
    pub fn redis(n_keys: u64) -> KvConfig {
        KvConfig {
            n_keys,
            objs_per_page: 7,
            obj_words: 3,
            read_fraction: 0.5,
            key_dist: KeyDist::Uniform,
            seed: 0x4ed1,
        }
    }

    /// Memcached-like: slightly denser slabs (≤16 words typical).
    pub fn memcached(n_keys: u64) -> KvConfig {
        KvConfig {
            n_keys,
            objs_per_page: 8,
            obj_words: 3,
            read_fraction: 0.5,
            key_dist: KeyDist::Uniform,
            seed: 0x4ed2,
        }
    }

    /// CacheLib-like: denser still, mildly skewed trace.
    pub fn cachelib(n_keys: u64) -> KvConfig {
        KvConfig {
            n_keys,
            objs_per_page: 9,
            obj_words: 3,
            read_fraction: 0.5,
            key_dist: KeyDist::Zipf(0.6),
            seed: 0x4ed3,
        }
    }

    /// Slab pages needed for the objects.
    pub fn data_pages(&self) -> u64 {
        self.n_keys.div_ceil(self.objs_per_page)
    }

    /// Hash-index pages (one 8 B bucket per key, 512 buckets/page).
    pub fn index_pages(&self) -> u64 {
        self.n_keys.div_ceil(512)
    }

    /// Total region pages the store occupies.
    pub fn footprint_pages(&self) -> u64 {
        self.data_pages() + self.index_pages()
    }
}

/// Generates a YCSB-A trace of approximately `target_accesses` accesses.
pub fn generate(config: &KvConfig, base: VirtAddr, target_accesses: u64) -> ReplayWorkload {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let zipf = match config.key_dist {
        KeyDist::Zipf(theta) => Some(ZipfSampler::new(config.n_keys, theta)),
        KeyDist::Uniform => None,
    };
    // Popular ranks scattered over object slots, like a real allocator.
    let scatter = Scatter::new(config.n_keys, config.seed ^ 0x5eed);
    let index_base = config.data_pages() * PAGE_SIZE as u64;

    let mut rec = AccessRecorder::with_capacity(target_accesses as usize + 8);
    while (rec.len() as u64) < target_accesses {
        let rank = match &zipf {
            Some(z) => z.sample(&mut rng),
            None => rng.gen_range(0..config.n_keys),
        };
        let key = scatter.map(rank);
        let is_read = rng.gen::<f64>() < config.read_fraction;

        // 1. Hash-index probe: one bucket read.
        rec.read(index_base + key * 8);

        // 2. Object access: this object's words at its slab slot. Object
        // sizes vary per key (1..=obj_words), like mixed value sizes.
        let page = key / config.objs_per_page;
        let slot = key % config.objs_per_page;
        let this_obj_words =
            1 + crate::dist::hash_slot(page, slot, config.seed ^ 0x0b1) % config.obj_words;
        // Deterministic scattered word offset for this slot within the page.
        let word0 = crate::dist::hash_slot(page, slot, config.seed) % (64 - config.obj_words + 1);
        for w in 0..this_obj_words {
            let rel = page * PAGE_SIZE as u64 + (word0 + w) * WORD_SIZE as u64;
            if is_read {
                rec.read(rel);
            } else {
                rec.write(rel);
            }
        }
        rec.mark_op_end();
    }
    let name = format!(
        "kv-{}",
        match config.key_dist {
            KeyDist::Uniform => "uniform",
            KeyDist::Zipf(_) => "zipf",
        }
    );
    rec.into_workload(name, base)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxl_sim::system::AccessStream;
    use std::collections::HashMap;

    #[test]
    fn footprint_accounts_for_data_and_index() {
        let c = KvConfig::redis(7 * 1000);
        assert_eq!(c.data_pages(), 1000);
        assert_eq!(c.index_pages(), 14);
        assert_eq!(c.footprint_pages(), 1014);
    }

    #[test]
    fn trace_stays_within_the_footprint() {
        let c = KvConfig::redis(600);
        let wl = generate(&c, VirtAddr(0), 10_000);
        assert!(wl.len() >= 10_000);
        let extent_pages = wl.max_extent().div_ceil(PAGE_SIZE as u64);
        assert!(
            extent_pages <= c.footprint_pages(),
            "{extent_pages} > {}",
            c.footprint_pages()
        );
    }

    #[test]
    fn ops_are_marked_and_balanced() {
        let c = KvConfig::redis(600);
        let mut wl = generate(&c, VirtAddr(0), 30_000);
        let mut ops = 0u64;
        let mut writes = 0u64;
        let mut total = 0u64;
        while let Some(a) = wl.next_access() {
            total += 1;
            if a.op_end {
                ops += 1;
            }
            if a.is_write {
                writes += 1;
            }
        }
        assert!(ops > 9_000, "one op per ~3 accesses, got {ops}");
        // YCSB-A: half the ops write their obj_words words.
        let wf = writes as f64 / total as f64;
        assert!((0.25..0.45).contains(&wf), "write fraction {wf}");
    }

    /// The headline sparsity property: most slab pages have few unique
    /// words accessed (Figure 4's Redis shape).
    #[test]
    fn redis_slab_pages_are_sparse() {
        let c = KvConfig::redis(6 * 500);
        let mut wl = generate(&c, VirtAddr(0), 200_000);
        let data_bytes = c.data_pages() * PAGE_SIZE as u64;
        let mut words: HashMap<u64, std::collections::HashSet<u64>> = HashMap::new();
        while let Some(a) = wl.next_access() {
            let rel = a.vaddr.0;
            if rel < data_bytes {
                words
                    .entry(rel / PAGE_SIZE as u64)
                    .or_default()
                    .insert((rel / WORD_SIZE as u64) % 64);
            }
        }
        let sparse = words.values().filter(|w| w.len() <= 16).count();
        let frac = sparse as f64 / words.len() as f64;
        assert!(frac > 0.8, "only {frac:.2} of pages are ≤16-word sparse");
    }

    #[test]
    fn presets_differ_in_density() {
        assert!(KvConfig::memcached(1000).objs_per_page > KvConfig::redis(1000).objs_per_page);
        assert_eq!(KvConfig::cachelib(1000).key_dist, KeyDist::Zipf(0.6));
        assert_eq!(KvConfig::redis(1000).key_dist, KeyDist::Uniform);
    }

    #[test]
    fn deterministic_given_seed() {
        let c = KvConfig::redis(600);
        let mut a = generate(&c, VirtAddr(0), 1000);
        let mut b = generate(&c, VirtAddr(0), 1000);
        for _ in 0..1000 {
            assert_eq!(a.next_access(), b.next_access());
        }
    }
}
