//! Co-running multiple workload instances.
//!
//! The paper's Figure 11 scales the working set by co-running up to 64
//! benchmark instances, each in a disjoint physical range. [`CoRunner`]
//! interleaves any number of [`AccessStream`]s in round-robin quanta —
//! the simulator-side analogue of co-scheduled processes sharing the
//! memory system.

use cxl_sim::chunk::AccessChunk;
use cxl_sim::system::{Access, AccessStream};

/// Round-robin interleaver over multiple access streams.
///
/// Each stream gets `quantum` consecutive accesses before the next takes
/// over (modelling scheduler timeslices at access granularity); streams
/// that end are skipped, and the co-run ends when every stream is done.
#[derive(Debug)]
pub struct CoRunner<S> {
    streams: Vec<Option<S>>,
    quantum: u32,
    current: usize,
    issued_in_quantum: u32,
    live: usize,
}

impl<S: AccessStream> CoRunner<S> {
    /// Builds a co-runner over `streams` with the given quantum.
    ///
    /// # Panics
    ///
    /// Panics if `streams` is empty or `quantum` is zero.
    pub fn new(streams: Vec<S>, quantum: u32) -> CoRunner<S> {
        assert!(!streams.is_empty(), "need at least one stream");
        assert!(quantum > 0, "quantum must be positive");
        let live = streams.len();
        CoRunner {
            streams: streams.into_iter().map(Some).collect(),
            quantum,
            current: 0,
            issued_in_quantum: 0,
            live,
        }
    }

    /// Number of streams still producing accesses.
    pub fn live_streams(&self) -> usize {
        self.live
    }

    /// Total number of streams (live or finished).
    pub fn total_streams(&self) -> usize {
        self.streams.len()
    }

    fn advance(&mut self) {
        self.current = (self.current + 1) % self.streams.len();
        self.issued_in_quantum = 0;
    }
}

impl<S: AccessStream> AccessStream for CoRunner<S> {
    fn next_access(&mut self) -> Option<Access> {
        if self.live == 0 {
            return None;
        }
        for _ in 0..self.streams.len() {
            if self.issued_in_quantum >= self.quantum {
                self.advance();
            }
            match &mut self.streams[self.current] {
                Some(s) => match s.next_access() {
                    Some(a) => {
                        self.issued_in_quantum += 1;
                        return Some(a);
                    }
                    None => {
                        self.streams[self.current] = None;
                        self.live -= 1;
                        if self.live == 0 {
                            return None;
                        }
                        self.advance();
                    }
                },
                None => self.advance(),
            }
        }
        // All remaining slots were just exhausted.
        None
    }

    /// Bulk path: delegate whole quantum-sized sub-fills to the current
    /// stream's own `fill_chunk` (a slice copy for replayed traces),
    /// using the chunk's soft limit to stop exactly at quantum
    /// boundaries. Produces the same sequence as repeated `next_access`.
    fn fill_chunk(&mut self, chunk: &mut AccessChunk) -> usize {
        let mut total = 0;
        while self.live > 0 && !chunk.is_full() {
            if self.issued_in_quantum >= self.quantum || self.streams[self.current].is_none() {
                // Rotate to the next live stream (resets the quantum),
                // mirroring next_access's skip loop.
                let mut found = false;
                for _ in 0..self.streams.len() {
                    self.advance();
                    if self.streams[self.current].is_some() {
                        found = true;
                        break;
                    }
                }
                if !found {
                    break;
                }
            }
            let want = (self.quantum - self.issued_in_quantum).min(chunk.remaining() as u32);
            let outer = chunk.limit();
            chunk.set_limit(chunk.len() + want as usize);
            let got = self.streams[self.current]
                .as_mut()
                .expect("current stream is live")
                .fill_chunk(chunk);
            chunk.set_limit(outer);
            self.issued_in_quantum += got as u32;
            total += got;
            if got < want as usize {
                // The inner fill stopped before its sub-limit: the stream
                // is exhausted (the only other stop condition is the
                // limit itself).
                self.streams[self.current] = None;
                self.live -= 1;
                self.advance();
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxl_sim::addr::VirtAddr;

    struct Fixed {
        base: u64,
        n: u64,
        i: u64,
    }

    impl AccessStream for Fixed {
        fn next_access(&mut self) -> Option<Access> {
            if self.i >= self.n {
                return None;
            }
            let a = Access::read(VirtAddr(self.base + self.i * 64));
            self.i += 1;
            Some(a)
        }
    }

    #[test]
    fn interleaves_in_quanta() {
        let mut co = CoRunner::new(
            vec![
                Fixed {
                    base: 0,
                    n: 4,
                    i: 0,
                },
                Fixed {
                    base: 1 << 20,
                    n: 4,
                    i: 0,
                },
            ],
            2,
        );
        let order: Vec<u64> = std::iter::from_fn(|| co.next_access())
            .map(|a| a.vaddr.0 >> 20)
            .collect();
        assert_eq!(order, vec![0, 0, 1, 1, 0, 0, 1, 1]);
        assert_eq!(co.live_streams(), 0);
    }

    #[test]
    fn drains_unequal_streams_completely() {
        let mut co = CoRunner::new(
            vec![
                Fixed {
                    base: 0,
                    n: 1,
                    i: 0,
                },
                Fixed {
                    base: 1 << 20,
                    n: 5,
                    i: 0,
                },
            ],
            3,
        );
        let total = std::iter::from_fn(|| co.next_access()).count();
        assert_eq!(total, 6, "no access lost when a stream ends early");
    }

    #[test]
    fn single_stream_passes_through() {
        let mut co = CoRunner::new(
            vec![Fixed {
                base: 0,
                n: 3,
                i: 0,
            }],
            1,
        );
        assert_eq!(co.total_streams(), 1);
        let total = std::iter::from_fn(|| co.next_access()).count();
        assert_eq!(total, 3);
    }

    #[test]
    #[should_panic(expected = "at least one stream")]
    fn empty_streams_panic() {
        let _ = CoRunner::<Fixed>::new(vec![], 1);
    }
}
